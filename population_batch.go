package regcast

import (
	"context"
	"fmt"
)

// PopulationBatch runs R seed-derived replications of one
// PopulationScenario on the batch layer's worker pool (Replicate) and
// folds them into the same BatchResult the broadcast batches produce,
// so population ensembles flow through Sweep, Report and regcast-bench
// unchanged. The metric mapping is fixed:
//
//   - Completed / CompletedFrac — replications that converged.
//   - Rounds — ConvergedAt, the convergence super-step, over converged
//     runs only (the analogue of FirstAllInformed).
//   - Transmissions — interactions to convergence
//     (ConvergedInteractions) for converged runs; total interactions
//     executed (censored at the step budget) otherwise.
//   - TxPerNode — the same, divided by the agent count.
//   - InformedFrac — the converged indicator (1 or 0) per run, so its
//     mean is the convergence rate.
//   - ChannelsDialed — total interactions executed, converged or not
//     (the work analogue of the dial budget).
//
// The determinism contract matches Batch: replication streams are
// precomputed in replication order from one master seed, results are
// folded in replication order, and the aggregates are bit-identical for
// every ReplicationWorkers value. Replications inherit the Runner's
// engine selection *and* its population fast-path switch — a batch run
// under WithoutPopulationFastPath reproduces the default batch's
// aggregates byte-for-byte (the two paths execute the same trace),
// which is exactly how CI's fast-vs-reference delta is produced.
type PopulationBatch struct {
	// Scenario is the replicated run; its Seed/RNG are ignored in favour
	// of per-replication derived streams (set Seed here or on the batch).
	// Scenarios carrying an Observer are rejected: observers are per-run
	// state, shared across concurrent replications.
	Scenario PopulationScenario

	// Replications is R, the number of runs. Required, >= 1.
	Replications int

	// ReplicationWorkers sets the pool width over whole runs: 0 or 1
	// serial, WorkersAuto (-1) GOMAXPROCS, n > 1 n workers. Aggregates
	// are bit-identical for every value.
	ReplicationWorkers int

	// Runner executes each replication; its zero value is the sequential
	// driver. Per-run engine parallelism stacks with ReplicationWorkers.
	Runner Runner

	// Seed overrides the master seed the replication streams derive
	// from; when 0 the scenario's Seed applies.
	Seed uint64

	// KeepResults retains every replication's PopulationResult (in
	// replication order) in the returned Results slice.
	KeepResults bool
}

func (b PopulationBatch) validate() error {
	if b.Replications <= 0 {
		return fmt.Errorf("regcast: population batch needs Replications >= 1, got %d", b.Replications)
	}
	if b.ReplicationWorkers < WorkersAuto {
		return fmt.Errorf("regcast: population batch ReplicationWorkers %d invalid (use WorkersAuto, 0 or a positive count)", b.ReplicationWorkers)
	}
	if b.Scenario.Observer != nil {
		return fmt.Errorf("regcast: population batch scenarios cannot carry observers (per-run state shared across concurrent replications)")
	}
	if b.Scenario.RNG != nil {
		return fmt.Errorf("regcast: population batch scenarios must use Seed, not RNG: replications re-derive their streams from the master seed")
	}
	return nil
}

// Run executes the batch and returns the aggregate in the broadcast
// batches' BatchResult shape (see the metric mapping above).
// Cancelling ctx aborts outstanding replications and returns ctx.Err().
func (b PopulationBatch) Run(ctx context.Context) (BatchResult, error) {
	return b.run(ctx, nil)
}

// RunKeeping is Run plus the retained per-replication results when
// KeepResults is set (BatchResult.Results cannot hold them: it is typed
// for broadcast runs).
func (b PopulationBatch) RunKeeping(ctx context.Context) (BatchResult, []PopulationResult, error) {
	var kept []PopulationResult
	if b.KeepResults {
		kept = make([]PopulationResult, b.Replications)
	}
	res, err := b.run(ctx, kept)
	return res, kept, err
}

func (b PopulationBatch) run(ctx context.Context, kept []PopulationResult) (BatchResult, error) {
	if err := b.validate(); err != nil {
		return BatchResult{}, err
	}
	seed := b.Seed
	if seed == 0 {
		seed = b.Scenario.Seed
	}

	type outcome struct {
		converged   bool
		convergedAt int
		convInter   int64
		totalInter  int64
	}
	outcomes := make([]outcome, b.Replications)
	err := Replicate(ctx, seed, b.Replications, b.ReplicationWorkers, func(rep int, rng *Rand) error {
		sc := b.Scenario
		sc.RNG = rng
		res, err := b.Runner.RunPopulation(ctx, sc)
		if err != nil {
			return fmt.Errorf("regcast: population batch replication %d: %w", rep, err)
		}
		outcomes[rep] = outcome{
			converged:   res.Converged,
			convergedAt: res.ConvergedAt,
			convInter:   res.ConvergedInteractions,
			totalInter:  res.Interactions,
		}
		if kept != nil {
			kept[rep] = res
		}
		return nil
	})
	if err != nil {
		return BatchResult{}, err
	}

	// Fold strictly in replication order — the same order-sensitivity
	// argument as Batch.Run.
	br := BatchResult{Replications: b.Replications}
	rounds, tx, txPerNode, work, convFrac := newMetricAgg(), newMetricAgg(), newMetricAgg(), newMetricAgg(), newMetricAgg()
	n := float64(b.Scenario.N)
	for rep := range outcomes {
		o := outcomes[rep]
		inter := o.totalInter
		ind := 0.0
		if o.converged {
			br.Completed++
			rounds.add(float64(o.convergedAt))
			inter = o.convInter
			ind = 1
		}
		tx.add(float64(inter))
		if n > 0 {
			txPerNode.add(float64(inter) / n)
		}
		work.add(float64(o.totalInter))
		convFrac.add(ind)
	}
	br.Rounds = rounds.aggregate()
	br.Transmissions = tx.aggregate()
	br.TxPerNode = txPerNode.aggregate()
	br.ChannelsDialed = work.aggregate()
	br.InformedFrac = convFrac.aggregate()
	return br, nil
}
