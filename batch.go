package regcast

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"regcast/internal/stats"
	"regcast/internal/xrand"
)

// Batch runs R seed-derived replications of one broadcast Scenario on a
// worker pool and aggregates their results online — the statistical layer
// of the facade. Replication-level parallelism composes with the sharded
// engine's per-run parallelism: Batch decides how many whole runs are in
// flight (ReplicationWorkers), the Runner decides how many workers each
// run uses internally.
//
// Determinism contract: every replication draws from a PRNG stream that is
// precomputed in replication order from one master seed (xrand.SplitN
// discipline), and results are aggregated in replication order once all
// runs finish. Aggregate results — and any Report serialised from them —
// are therefore bit-identical for every ReplicationWorkers value. Only
// wall-clock time changes.
type Batch struct {
	// Scenario is the replicated run. Each replication executes a copy of
	// it whose randomness is replaced by the replication's derived stream.
	// Exactly one of Scenario and New must be set.
	//
	// A spec scenario (NewScenarioSpec) builds a fresh topology per
	// replication from the replication's stream, so dynamic topologies —
	// OverlaySpec churn, per-run random graphs — replicate without
	// sharing state. An instance scenario (NewScenario) shares its one
	// topology across replications, which is why a dynamic (Stepper)
	// *instance* is rejected: churn would mutate the shared topology,
	// leaking state between runs (and racing under a concurrent pool) —
	// use the equivalent spec instead. Scenarios built with WithRNG or
	// WithObserver are rejected either way: a batch re-seeds every
	// replication, and observers are per-run state (build those through
	// New).
	Scenario Scenario

	// New, when non-nil, builds the scenario for each replication from the
	// replication's derived stream. Since topology variation is covered
	// by spec scenarios (see Scenario), New remains for batches whose
	// *protocol*, options or observers vary per replication. The builder
	// must derive all of the scenario's randomness from rng (typically
	// WithRNG(rng) or WithRNG(rng.Split())); a builder that instead pins
	// an explicit WithSeed makes every replication identical. New may
	// return a spec scenario (e.g. per-replication observers on an
	// OverlaySpec): its topology is then built on the builder's WithRNG
	// stream or explicit WithSeed when given, else on the replication
	// stream. New is called from pool workers and must be safe for
	// concurrent calls with distinct rep values.
	New func(rep int, rng *Rand) (Scenario, error)

	// Replications is R, the number of runs. Required, >= 1.
	Replications int

	// ReplicationWorkers sets the worker-pool width over whole runs:
	// 0 or 1 run the replications serially, WorkersAuto (-1) uses
	// GOMAXPROCS workers, n > 1 uses n workers. Aggregates are
	// bit-identical for every value.
	ReplicationWorkers int

	// Runner executes each replication; its zero value is the classic
	// sequential engine. Per-run engine parallelism (WithWorkers) stacks
	// with ReplicationWorkers — on a many-core box, ReplicationWorkers
	// parallelises the ensemble and the sharded engine parallelises each
	// run.
	Runner Runner

	// Seed overrides the master seed the replication streams derive from.
	// When 0, Scenario batches use the scenario's own seed (so a Batch
	// over NewScenario(..., WithSeed(s)) is fully determined by s); New
	// batches use 0.
	Seed uint64

	// RandomizeSource re-draws the broadcast source per replication from
	// the replication's stream (uniform over the topology's alive nodes)
	// instead of reusing the scenario's fixed source — the standard setup
	// for statistical ensembles, where a fixed source would correlate
	// every run.
	RandomizeSource bool

	// KeepResults retains every replication's full Result (in replication
	// order) in BatchResult.Results. Leave it false for large ensembles:
	// aggregation is online and needs no retention.
	KeepResults bool
}

// Aggregate summarises one metric over a batch's replications: moments
// from an online accumulator and quantiles from a mergeable sketch, both
// fed in replication order (see Batch's determinism contract).
type Aggregate struct {
	// N is the number of replications that contributed to this metric.
	N int `json:"n"`
	// Mean is the arithmetic mean.
	Mean float64 `json:"mean"`
	// Stddev is the sample standard deviation (n-1 denominator).
	Stddev float64 `json:"stddev"`
	// Min and Max are the extreme observations.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// P10, P50 and P90 are sketch-estimated quantiles (exact while the
	// number of distinct values fits the sketch).
	P10 float64 `json:"p10"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
}

// BatchResult aggregates a completed batch. Per-round traces are never
// retained across replications — every metric here is a per-run scalar
// folded into online accumulators.
type BatchResult struct {
	// Replications is the number of runs executed.
	Replications int `json:"replications"`
	// Completed is the number of runs that informed every alive node.
	Completed int `json:"completed"`
	// Rounds aggregates FirstAllInformed over the completed runs only
	// (incomplete runs have no completion round).
	Rounds Aggregate `json:"rounds"`
	// Transmissions aggregates total transmissions over all runs.
	Transmissions Aggregate `json:"transmissions"`
	// TxPerNode aggregates transmissions divided by the run's alive-node
	// count (the id-space size when no node is alive) — per-peer cost,
	// comparable across topologies with and without dead headroom slots.
	TxPerNode Aggregate `json:"tx_per_node"`
	// ChannelsDialed aggregates the model-mandated channel dials.
	ChannelsDialed Aggregate `json:"channels_dialed"`
	// InformedFrac aggregates the informed fraction of alive nodes.
	InformedFrac Aggregate `json:"informed_frac"`
	// Results holds every replication's Result, in replication order, when
	// Batch.KeepResults is set (omitted from JSON either way).
	Results []Result `json:"-"`
}

// CompletedFrac returns the fraction of replications that informed every
// alive node.
func (r BatchResult) CompletedFrac() float64 {
	if r.Replications == 0 {
		return 0
	}
	return float64(r.Completed) / float64(r.Replications)
}

// metricAgg pairs the online accumulator with the quantile sketch for one
// metric.
type metricAgg struct {
	acc  stats.Accumulator
	hist *stats.StreamHist
}

// batchSketchBins is the sketch capacity per metric: exact quantiles up to
// 64 distinct per-run values, bounded memory beyond.
const batchSketchBins = 64

func newMetricAgg() *metricAgg {
	h, err := stats.NewStreamHist(batchSketchBins)
	if err != nil {
		panic(err) // constant capacity is valid by construction
	}
	return &metricAgg{hist: h}
}

func (m *metricAgg) add(x float64) {
	m.acc.Add(x)
	m.hist.Add(x)
}

func (m *metricAgg) aggregate() Aggregate {
	if m.acc.N() == 0 {
		return Aggregate{}
	}
	return Aggregate{
		N:      m.acc.N(),
		Mean:   m.acc.Mean(),
		Stddev: m.acc.Stddev(),
		Min:    m.acc.Min(),
		Max:    m.acc.Max(),
		P10:    m.hist.Quantile(0.10),
		P50:    m.hist.Quantile(0.50),
		P90:    m.hist.Quantile(0.90),
	}
}

// repPlan is one replication's precomputed randomness: the derived stream
// and (for RandomizeSource scenario batches) the source drawn from the
// master before the split, so the master's consumption order is a pure
// function of the batch parameters.
type repPlan struct {
	rng    *xrand.Rand
	source int // -1 when the scenario's own source applies
}

// seed resolves the master seed the replication streams derive from.
func (b Batch) seed() uint64 {
	if b.Seed != 0 {
		return b.Seed
	}
	if b.New == nil {
		return b.Scenario.seed
	}
	return 0
}

// validate rejects batch configurations no pool should run.
func (b Batch) validate() error {
	if b.Replications <= 0 {
		return fmt.Errorf("regcast: batch needs Replications >= 1, got %d", b.Replications)
	}
	if b.ReplicationWorkers < WorkersAuto {
		return fmt.Errorf("regcast: batch ReplicationWorkers %d invalid (use WorkersAuto, 0 or a positive count)", b.ReplicationWorkers)
	}
	hasScenario := b.Scenario.spec != nil || b.Scenario.proto != nil
	if b.New == nil && !hasScenario {
		return fmt.Errorf("regcast: batch needs a Scenario or a New builder")
	}
	if b.New != nil && hasScenario {
		return fmt.Errorf("regcast: batch Scenario and New are mutually exclusive")
	}
	if b.New == nil {
		if err := b.Scenario.validate(); err != nil {
			return err
		}
		if b.Scenario.rng != nil {
			return fmt.Errorf("regcast: batch scenarios must use WithSeed, not WithRNG: replications re-derive their streams from the master seed")
		}
		if len(b.Scenario.observers) > 0 {
			return fmt.Errorf("regcast: batch scenarios cannot carry observers (per-run state shared across concurrent replications); build per-replication observers from Batch.New")
		}
		if b.Scenario.topo != nil && b.Scenario.dynamic() {
			return fmt.Errorf("regcast: batch scenarios cannot share a dynamic (Stepper) topology instance across replications (churn state would leak between runs and race under a concurrent pool); describe the topology with NewScenarioSpec — e.g. OverlaySpec — so each replication builds its own")
		}
	}
	return nil
}

// drawAliveSource draws a source uniformly over the topology's alive
// nodes: rejection sampling from the stream (one draw on fully-alive
// topologies, so the classic one-IntN-per-replication derivation is
// preserved bit-for-bit), falling back after NumNodes misses to a
// deterministic scan from the last draw, which also bounds the
// pathological nobody-alive case.
func drawAliveSource(rng *xrand.Rand, topo Topology) (int, error) {
	n := topo.NumNodes()
	v := 0
	for i := 0; i < n; i++ {
		v = rng.IntN(n)
		if topo.Alive(v) {
			return v, nil
		}
	}
	for i := 0; i < n; i++ {
		if u := (v + i) % n; topo.Alive(u) {
			return u, nil
		}
	}
	return 0, fmt.Errorf("regcast: batch cannot randomize the source: topology has no alive nodes")
}

// plan precomputes every replication's randomness in replication order.
func (b Batch) plan() ([]repPlan, error) {
	master := xrand.New(b.seed())
	plans := make([]repPlan, b.Replications)
	for r := range plans {
		plans[r].source = -1
		// Instance scenarios draw the source from the master before the
		// split (the classic derivation, preserved bit-for-bit); spec
		// scenarios have no topology yet — their source is drawn from the
		// replication stream after the per-replication build (runRep).
		if b.New == nil && b.RandomizeSource && b.Scenario.topo != nil {
			src, err := drawAliveSource(master, b.Scenario.topo)
			if err != nil {
				return nil, err
			}
			plans[r].source = src
		}
		plans[r].rng = master.Split()
	}
	return plans, nil
}

// runRep executes one replication.
func (b Batch) runRep(ctx context.Context, rep int, p repPlan) (Result, error) {
	var sc Scenario
	switch {
	case b.New != nil:
		var err error
		sc, err = b.New(rep, p.rng)
		if err != nil {
			return Result{}, fmt.Errorf("regcast: batch replication %d: %w", rep, err)
		}
		if sc.spec == nil && sc.topo == nil {
			return Result{}, fmt.Errorf("regcast: batch replication %d: New returned a scenario without a topology", rep)
		}
		if sc.topo == nil {
			// New returned a spec scenario (the composition for
			// per-replication observers on a dynamic topology). Build it on
			// a builder-chosen WithRNG stream or an explicit WithSeed seed
			// when given; otherwise on the replication stream — the default
			// a builder that just forwards the scenario expects.
			buildRNG := sc.rng
			if buildRNG == nil && sc.seedSet {
				buildRNG = NewRand(sc.seed)
			}
			if buildRNG == nil {
				buildRNG = p.rng
			}
			sc, err = sc.materialize(rep, buildRNG)
			if err != nil {
				return Result{}, fmt.Errorf("regcast: batch replication %d: %w", rep, err)
			}
		}
	case b.Scenario.topo == nil:
		// Spec scenario: build this replication's topology from the
		// replication stream (materialize carries the stream forward for
		// the run itself).
		var err error
		sc, err = b.Scenario.materialize(rep, p.rng)
		if err != nil {
			return Result{}, fmt.Errorf("regcast: batch replication %d: %w", rep, err)
		}
	default:
		sc = b.Scenario
		sc.rng = p.rng
		if p.source >= 0 {
			sc.source = p.source
		}
	}
	// For per-replication-built scenarios (New or spec), the randomized
	// source is drawn from the replication stream after the build, over
	// the topology that actually exists this replication; instance
	// scenarios received their master-drawn source through the plan.
	if b.RandomizeSource && (b.New != nil || b.Scenario.topo == nil) {
		src, err := drawAliveSource(p.rng, sc.topo)
		if err != nil {
			return Result{}, fmt.Errorf("regcast: batch replication %d: %w", rep, err)
		}
		sc.source = src
	}
	res, err := b.Runner.Run(ctx, sc)
	if err != nil {
		return Result{}, fmt.Errorf("regcast: batch replication %d: %w", rep, err)
	}
	return res, nil
}

// repOutcome is the fixed-size extract of one replication a batch
// aggregates — the reason per-round traces and per-node arrays never need
// to be retained across the ensemble.
type repOutcome struct {
	transmissions int64
	dials         int64
	informed      int
	alive         int
	nodes         int // len(InformedAt): the topology's node count
	allInformed   bool
	firstAll      int
}

// Run executes the batch. Cancelling ctx aborts outstanding replications
// and returns ctx.Err(). On success, the returned aggregates are
// bit-identical for every ReplicationWorkers value.
func (b Batch) Run(ctx context.Context) (BatchResult, error) {
	if err := b.validate(); err != nil {
		return BatchResult{}, err
	}
	plans, err := b.plan()
	if err != nil {
		return BatchResult{}, err
	}
	outcomes := make([]repOutcome, b.Replications)
	var kept []Result
	if b.KeepResults {
		kept = make([]Result, b.Replications)
	}
	err = runPool(ctx, b.Replications, b.ReplicationWorkers, func(rep int) error {
		res, err := b.runRep(ctx, rep, plans[rep])
		if err != nil {
			return err
		}
		outcomes[rep] = repOutcome{
			transmissions: res.Transmissions,
			dials:         res.ChannelsDialed,
			informed:      res.Informed,
			alive:         res.AliveNodes,
			nodes:         len(res.InformedAt),
			allInformed:   res.AllInformed,
			firstAll:      res.FirstAllInformed,
		}
		if b.KeepResults {
			kept[rep] = res
		}
		return nil
	})
	if err != nil {
		return BatchResult{}, err
	}

	// Aggregate strictly in replication order: online accumulators are
	// order-sensitive in floating point, and this fixed order is what
	// makes the aggregates independent of the pool width.
	br := BatchResult{Replications: b.Replications}
	rounds, tx, txPerNode, dials, informed := newMetricAgg(), newMetricAgg(), newMetricAgg(), newMetricAgg(), newMetricAgg()
	for rep := range outcomes {
		o := outcomes[rep]
		tx.add(float64(o.transmissions))
		dials.add(float64(o.dials))
		if o.alive > 0 {
			informed.add(float64(o.informed) / float64(o.alive))
		}
		// Per-node cost divides by the alive population, not the id-space
		// size: overlay topologies carry dead headroom slots in
		// len(InformedAt), which would understate the per-peer cost (on
		// fully-alive topologies the two denominators coincide).
		if o.alive > 0 {
			txPerNode.add(float64(o.transmissions) / float64(o.alive))
		} else if o.nodes > 0 {
			txPerNode.add(float64(o.transmissions) / float64(o.nodes))
		}
		if o.allInformed {
			br.Completed++
			rounds.add(float64(o.firstAll))
		}
	}
	br.Rounds = rounds.aggregate()
	br.Transmissions = tx.aggregate()
	br.TxPerNode = txPerNode.aggregate()
	br.ChannelsDialed = dials.aggregate()
	br.InformedFrac = informed.aggregate()
	br.Results = kept
	return br, nil
}

// Replicate runs fn for reps replications on the batch layer's worker
// pool, handing each call an independent PRNG stream precomputed in
// replication order from seed (the same discipline Batch uses). It is the
// primitive for replication ensembles that are not a single broadcast
// Scenario — per-run graph generation, protocol engines outside the
// Runner, custom per-replication analyses. workers follows
// ReplicationWorkers semantics (0/1 serial, WorkersAuto = GOMAXPROCS,
// n > 1 = n workers); fn is called from pool workers and must be safe for
// concurrent calls with distinct rep values. Determinism is fn's side of
// the contract: derive all randomness from rng and write results into
// per-rep slots, then reduce in replication order after Replicate returns.
func Replicate(ctx context.Context, seed uint64, reps, workers int, fn func(rep int, rng *Rand) error) error {
	if reps < 0 {
		return fmt.Errorf("regcast: Replicate reps %d < 0", reps)
	}
	if workers < WorkersAuto {
		return fmt.Errorf("regcast: Replicate workers %d invalid (use WorkersAuto, 0 or a positive count)", workers)
	}
	rngs := xrand.New(seed).SplitN(reps)
	return runPool(ctx, reps, workers, func(rep int) error {
		return fn(rep, rngs[rep])
	})
}

// runPool executes fn(0..reps-1) on a pool of the given width. The error
// returned is deterministic: the one from the lowest-indexed failing
// replication (dispatch is in index order, so a replication below the
// first observed failure is never skipped). Context cancellation surfaces
// as ctx.Err().
func runPool(ctx context.Context, reps, workers int, fn func(rep int) error) error {
	w := workers
	if w == WorkersAuto {
		w = runtime.GOMAXPROCS(0)
	}
	if w > reps {
		w = reps
	}
	errs := make([]error, reps)
	firstErr := func() error {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return ctx.Err()
	}

	if w <= 1 {
		for rep := 0; rep < reps; rep++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if errs[rep] = fn(rep); errs[rep] != nil {
				return firstErr()
			}
		}
		return firstErr()
	}

	idx := make(chan int)
	done := make(chan struct{}, w)
	stop := make(chan struct{})
	var stopOnce sync.Once
	for i := 0; i < w; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for rep := range idx {
				if errs[rep] = fn(rep); errs[rep] != nil {
					stopOnce.Do(func() { close(stop) })
					return
				}
			}
		}()
	}
dispatch:
	for rep := 0; rep < reps; rep++ {
		select {
		case idx <- rep:
		case <-stop:
			break dispatch
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	for i := 0; i < w; i++ {
		<-done
	}
	return firstErr()
}
