package regcast_test

import (
	"context"
	"runtime"
	"testing"

	"regcast"
	"regcast/internal/baseline"
)

// TestImplicitMemoryGuard is the memory-wall regression gate: a full
// push broadcast on a one-million-node implicit hypercube must stay
// within a fixed allocation budget. The budget (48 MB, ~48 B/node) is
// far below the 84 MB the dense dim-20 hypercube spends on its CSR
// adjacency alone, so the test fails loudly if the engine ever starts
// materialising implicit topologies — the exact regression the implicit
// fast path exists to prevent.
func TestImplicitMemoryGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	const dim = 20 // 1,048,576 nodes
	n := 1 << dim
	proto, err := baseline.NewPush(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := regcast.NewScenarioSpec(regcast.HypercubeSpec{Dim: dim}, proto,
		regcast.WithSeed(1), regcast.WithStopEarly())
	if err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := regcast.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	if !res.AllInformed {
		t.Fatalf("broadcast incomplete: %d/%d informed", res.Informed, n)
	}
	alloc := after.TotalAlloc - before.TotalAlloc
	const budget = 48 << 20
	t.Logf("n=%d: %.1f MB allocated (%.1f B/node)", n, float64(alloc)/(1<<20), float64(alloc)/float64(n))
	if alloc > budget {
		t.Errorf("implicit 1M-node broadcast allocated %.1f MB, budget %d MB — is the implicit path materialising adjacency?",
			float64(alloc)/(1<<20), budget>>20)
	}
}
