package regcast

import (
	"fmt"

	"regcast/internal/graph"
	"regcast/internal/p2p/overlay"
	"regcast/internal/phonecall"
)

// TopologySpec describes how to construct a Topology instead of holding
// one — the declarative form that lets a single Scenario value stand for
// a whole family of networks. A Batch over a spec scenario builds one
// fresh topology per replication (so dynamic, churning topologies
// replicate safely: no state leaks between runs), and a Sweep can carry
// specs as axis values.
//
// Build must derive every bit of randomness it needs from rng — the
// convention is one rng.Split() per internal consumer, mirroring the
// master.Split() idiom of hand-written programs — and must not retain or
// advance rng beyond that. rep is the replication index (0 for a direct
// Runner.Run); specs whose construction is deterministic may ignore both.
// Build is called from batch pool workers and must be safe for concurrent
// calls with distinct rep values — in particular, a spec for a *dynamic*
// (Stepper) topology must build a fresh instance per call: returning one
// cached churning instance would leak state between replications and
// race under a concurrent pool, exactly what the batch layer's
// fixed-Stepper rejection exists to prevent.
type TopologySpec interface {
	Build(rep int, rng *Rand) (Topology, error)
}

// fixedSpec wraps an existing Topology instance as a constant spec.
type fixedSpec struct{ topo Topology }

func (s fixedSpec) Build(int, *Rand) (Topology, error) { return s.topo, nil }

// FixedTopology wraps a concrete Topology instance as a constant
// TopologySpec: Build returns the same instance for every replication.
// NewScenario uses it implicitly, which is why the instance-based API is
// a special case of the spec-based one. Note that a fixed *dynamic*
// (Stepper) topology cannot be replicated in a Batch — churn would leak
// between runs — while a dynamic spec such as OverlaySpec can.
func FixedTopology(topo Topology) TopologySpec { return fixedSpec{topo: topo} }

// RegularGraphSpec builds a simple random d-regular graph on n nodes —
// the paper's standard topology — freshly per replication.
type RegularGraphSpec struct {
	N, D int
}

// Build implements TopologySpec.
func (s RegularGraphSpec) Build(rep int, rng *Rand) (Topology, error) {
	g, err := graph.RandomRegular(s.N, s.D, rng.Split())
	if err != nil {
		return nil, err
	}
	return Static(g), nil
}

// ConfigurationModelSpec builds a random d-regular multigraph by the
// pairing model of the paper's §1.2; with Erased set, self-loops are
// dropped and parallel edges collapsed (degrees then at most D).
type ConfigurationModelSpec struct {
	N, D   int
	Erased bool
}

// Build implements TopologySpec.
func (s ConfigurationModelSpec) Build(rep int, rng *Rand) (Topology, error) {
	gen := graph.ConfigurationModel
	if s.Erased {
		gen = graph.ErasedConfigurationModel
	}
	g, err := gen(s.N, s.D, rng.Split())
	if err != nil {
		return nil, err
	}
	return Static(g), nil
}

// GnpSpec builds an Erdős–Rényi random graph G(n, p) per replication.
type GnpSpec struct {
	N int
	P float64
}

// Build implements TopologySpec.
func (s GnpSpec) Build(rep int, rng *Rand) (Topology, error) {
	g, err := graph.Gnp(s.N, s.P, rng.Split())
	if err != nil {
		return nil, err
	}
	return Static(g), nil
}

// HypercubeSpec builds the Dim-dimensional hypercube on 2^Dim nodes. The
// construction is deterministic; replications differ only in their run
// randomness.
type HypercubeSpec struct {
	Dim int
}

// Build implements TopologySpec.
func (s HypercubeSpec) Build(int, *Rand) (Topology, error) {
	g, err := graph.Hypercube(s.Dim)
	if err != nil {
		return nil, err
	}
	return Static(g), nil
}

// TorusSpec builds the Rows×Cols 2D torus (4-regular). The construction
// is deterministic; replications differ only in their run randomness.
type TorusSpec struct {
	Rows, Cols int
}

// Build implements TopologySpec.
func (s TorusSpec) Build(int, *Rand) (Topology, error) {
	g, err := graph.Torus(s.Rows, s.Cols)
	if err != nil {
		return nil, err
	}
	return Static(g), nil
}

// OverlaySpec builds the paper's headline setting: a maintained d-regular
// peer-to-peer overlay, optionally churning between rounds. Each
// replication gets a fresh overlay of N alive peers of even degree D
// (seeded from an exact random d-regular graph) with Headroom spare id
// slots for joins (0 means N). When any churn parameter is set, a churner
// drives Binomial(alive, LeaveProb) departures and Binomial(alive,
// JoinProb) arrivals plus MixSteps switch-chain rewiring steps after
// every round, and the topology implements Stepper.
//
// The overlay maintains an epoch-stamped CSR view incrementally under
// Join/Leave/Mix, so runs on it — churning or not — execute on the
// engines' zero-interface fast path, bit-identical to the reference
// interface path (see DESIGN.md, "Topology specs and the epoch
// contract").
type OverlaySpec struct {
	N, D     int
	Headroom int

	JoinProb  float64
	LeaveProb float64
	MixSteps  int
}

// churns reports whether the spec attaches a churner.
func (s OverlaySpec) churns() bool {
	return s.JoinProb > 0 || s.LeaveProb > 0 || s.MixSteps > 0
}

// overlayTopology is a built OverlaySpec: the overlay plus its churner.
// It exposes the overlay's whole API (CheckInvariants, Snapshot, ...)
// through the embedded pointer, and phonecall's CSRViewer/AliveCounter
// with it.
type overlayTopology struct {
	*overlay.Overlay
	ch *overlay.Churner
}

// Step implements Stepper.
func (o overlayTopology) Step(round int) []int { return o.ch.Step(round) }

var (
	_ Stepper             = overlayTopology{}
	_ phonecall.CSRViewer = overlayTopology{}
)

// Build implements TopologySpec: one rng.Split() seeds the overlay, a
// second the churner (drawn even when no churner is attached, so the
// stream shape does not depend on the churn parameters).
func (s OverlaySpec) Build(rep int, rng *Rand) (Topology, error) {
	headroom := s.Headroom
	if headroom == 0 {
		headroom = s.N
	}
	ovRNG, chRNG := rng.Split(), rng.Split()
	ov, err := overlay.New(s.N, s.D, headroom, ovRNG)
	if err != nil {
		return nil, fmt.Errorf("regcast: OverlaySpec: %w", err)
	}
	if !s.churns() {
		return ov, nil
	}
	ch, err := overlay.NewChurner(ov, s.JoinProb, s.LeaveProb, s.MixSteps, chRNG)
	if err != nil {
		return nil, fmt.Errorf("regcast: OverlaySpec: %w", err)
	}
	return overlayTopology{ov, ch}, nil
}
