package regcast

import (
	"fmt"

	"regcast/internal/graph"
	"regcast/internal/p2p/overlay"
	"regcast/internal/phonecall"
)

// TopologySpec describes how to construct a Topology instead of holding
// one — the declarative form that lets a single Scenario value stand for
// a whole family of networks. A Batch over a spec scenario builds one
// fresh topology per replication (so dynamic, churning topologies
// replicate safely: no state leaks between runs), and a Sweep can carry
// specs as axis values.
//
// Build must derive every bit of randomness it needs from rng — the
// convention is one rng.Split() per internal consumer, mirroring the
// master.Split() idiom of hand-written programs — and must not retain or
// advance rng beyond that. rep is the replication index (0 for a direct
// Runner.Run); specs whose construction is deterministic may ignore both.
// Build is called from batch pool workers and must be safe for concurrent
// calls with distinct rep values — in particular, a spec for a *dynamic*
// (Stepper) topology must build a fresh instance per call: returning one
// cached churning instance would leak state between replications and
// race under a concurrent pool, exactly what the batch layer's
// fixed-Stepper rejection exists to prevent.
type TopologySpec interface {
	Build(rep int, rng *Rand) (Topology, error)
}

// SpecNodeCount returns the node-id-space size spec would build, without
// building it, or -1 when the spec does not declare one. Every spec in
// this package answers; cmds use it to size output without paying for
// construction.
func SpecNodeCount(spec TopologySpec) int {
	if nc, ok := spec.(interface{ NodeCount() int }); ok {
		return nc.NodeCount()
	}
	return -1
}

// SpecImplicit reports whether spec builds an implicit (computed-
// adjacency) topology — one the engine drives through ImplicitViewer
// arithmetic instead of materialised CSR arrays. Specs without an
// Implicit method are dense.
func SpecImplicit(spec TopologySpec) bool {
	if im, ok := spec.(interface{ Implicit() bool }); ok {
		return im.Implicit()
	}
	return false
}

// fixedSpec wraps an existing Topology instance as a constant spec.
type fixedSpec struct{ topo Topology }

func (s fixedSpec) Build(int, *Rand) (Topology, error) { return s.topo, nil }

func (s fixedSpec) NodeCount() int { return s.topo.NumNodes() }

// FixedTopology wraps a concrete Topology instance as a constant
// TopologySpec: Build returns the same instance for every replication.
// NewScenario uses it implicitly, which is why the instance-based API is
// a special case of the spec-based one. Note that a fixed *dynamic*
// (Stepper) topology cannot be replicated in a Batch — churn would leak
// between runs — while a dynamic spec such as OverlaySpec can.
func FixedTopology(topo Topology) TopologySpec { return fixedSpec{topo: topo} }

// RegularGraphSpec builds a simple random d-regular graph on n nodes —
// the paper's standard topology — freshly per replication.
type RegularGraphSpec struct {
	N, D int
}

// Build implements TopologySpec.
func (s RegularGraphSpec) Build(rep int, rng *Rand) (Topology, error) {
	g, err := graph.RandomRegular(s.N, s.D, rng.Split())
	if err != nil {
		return nil, err
	}
	return Static(g), nil
}

// NodeCount implements the SpecNodeCount query.
func (s RegularGraphSpec) NodeCount() int { return s.N }

// ConfigurationModelSpec builds a random d-regular multigraph by the
// pairing model of the paper's §1.2; with Erased set, self-loops are
// dropped and parallel edges collapsed (degrees then at most D).
type ConfigurationModelSpec struct {
	N, D   int
	Erased bool
}

// Build implements TopologySpec.
func (s ConfigurationModelSpec) Build(rep int, rng *Rand) (Topology, error) {
	gen := graph.ConfigurationModel
	if s.Erased {
		gen = graph.ErasedConfigurationModel
	}
	g, err := gen(s.N, s.D, rng.Split())
	if err != nil {
		return nil, err
	}
	return Static(g), nil
}

// NodeCount implements the SpecNodeCount query.
func (s ConfigurationModelSpec) NodeCount() int { return s.N }

// GnpSpec builds an Erdős–Rényi random graph G(n, p) per replication.
type GnpSpec struct {
	N int
	P float64
}

// Build implements TopologySpec.
func (s GnpSpec) Build(rep int, rng *Rand) (Topology, error) {
	g, err := graph.Gnp(s.N, s.P, rng.Split())
	if err != nil {
		return nil, err
	}
	return Static(g), nil
}

// NodeCount implements the SpecNodeCount query.
func (s GnpSpec) NodeCount() int { return s.N }

// HypercubeSpec builds the Dim-dimensional hypercube on 2^Dim nodes. The
// construction is deterministic; replications differ only in their run
// randomness.
//
// By default the topology is implicit: adjacency is the bit-flip
// arithmetic NeighborAt(v, i) = v XOR 2^i and no neighbour array is
// built, which is what takes a single box past the materialised path's
// memory wall (Dim ≤ 26 dense, ≤ 30 implicit). Set Dense to materialise
// the CSR arrays instead. The two are interchangeable: the dense
// generator is defined as Materialize over the implicit family, so runs
// are bit-identical wherever both fit.
type HypercubeSpec struct {
	Dim   int
	Dense bool
}

// Build implements TopologySpec.
func (s HypercubeSpec) Build(int, *Rand) (Topology, error) {
	if s.Dense {
		g, err := graph.Hypercube(s.Dim)
		if err != nil {
			return nil, err
		}
		return Static(g), nil
	}
	h, err := graph.NewImplicitHypercube(s.Dim)
	if err != nil {
		return nil, err
	}
	return phonecall.NewImplicit(h), nil
}

// NodeCount implements the SpecNodeCount query.
func (s HypercubeSpec) NodeCount() int { return 1 << s.Dim }

// Implicit reports whether Build returns a computed-adjacency topology.
func (s HypercubeSpec) Implicit() bool { return !s.Dense }

// TorusSpec builds the Rows×Cols 2D torus (4-regular). The construction
// is deterministic; replications differ only in their run randomness.
// Implicit by default (neighbour order up, down, left, right per cell);
// set Dense to materialise — the dense generator is Materialize over the
// implicit family, so the two run bit-identically.
type TorusSpec struct {
	Rows, Cols int
	Dense      bool
}

// Build implements TopologySpec.
func (s TorusSpec) Build(int, *Rand) (Topology, error) {
	if s.Dense {
		g, err := graph.Torus(s.Rows, s.Cols)
		if err != nil {
			return nil, err
		}
		return Static(g), nil
	}
	t, err := graph.NewImplicitTorus(s.Rows, s.Cols)
	if err != nil {
		return nil, err
	}
	return phonecall.NewImplicit(t), nil
}

// NodeCount implements the SpecNodeCount query.
func (s TorusSpec) NodeCount() int { return s.Rows * s.Cols }

// Implicit reports whether Build returns a computed-adjacency topology.
func (s TorusSpec) Implicit() bool { return !s.Dense }

// GnpStreamSpec builds a seeded streaming G(n, p): a directed
// Erdős–Rényi graph whose rows are regenerated on demand by replaying a
// per-row PRNG stream (counter-mode seeding), storing one degree counter
// per node instead of the adjacency — 4 B/node where GnpSpec pays
// ~8(1+np) B/node. Each replication draws a fresh graph seed from rng,
// mirroring GnpSpec's fresh graph per replication. Set Dense to
// materialise the same graph into CSR arrays; for equal (rep, rng) the
// dense and implicit variants build identical adjacency, so runs are
// bit-identical.
//
// The digraph view matches the phone-call model: each caller dials from
// its own out-arc list. Unlike GnpSpec the underlying graph is directed
// (arcs (v,w) and (w,v) are independent), so the two specs are distinct
// families, not dense/implicit twins of one another.
type GnpStreamSpec struct {
	N     int
	P     float64
	Dense bool
}

// Build implements TopologySpec.
func (s GnpStreamSpec) Build(rep int, rng *Rand) (Topology, error) {
	f, err := graph.NewGnpStream(s.N, s.P, rng.Uint64())
	if err != nil {
		return nil, err
	}
	if s.Dense {
		g, err := graph.Materialize(f)
		if err != nil {
			return nil, err
		}
		return Static(g), nil
	}
	return phonecall.NewImplicit(f), nil
}

// NodeCount implements the SpecNodeCount query.
func (s GnpStreamSpec) NodeCount() int { return s.N }

// Implicit reports whether Build returns a computed-adjacency topology.
func (s GnpStreamSpec) Implicit() bool { return !s.Dense }

// RegularStreamSpec builds a seeded streaming d-regular multigraph
// (D even): the union of D/2 pseudorandom-permutation 2-factors, with
// O(1) arithmetic adjacency and zero per-node storage — the regenerable
// stand-in for RegularGraphSpec at scales where pairing-model
// construction (O(n·d) memory) is unaffordable. Each replication draws
// a fresh seed from rng. Set Dense to materialise the same multigraph;
// dense and implicit runs are bit-identical for equal (rep, rng).
type RegularStreamSpec struct {
	N, D  int
	Dense bool
}

// Build implements TopologySpec.
func (s RegularStreamSpec) Build(rep int, rng *Rand) (Topology, error) {
	f, err := graph.NewRegularStream(s.N, s.D, rng.Uint64())
	if err != nil {
		return nil, err
	}
	if s.Dense {
		g, err := graph.Materialize(f)
		if err != nil {
			return nil, err
		}
		return Static(g), nil
	}
	return phonecall.NewImplicit(f), nil
}

// NodeCount implements the SpecNodeCount query.
func (s RegularStreamSpec) NodeCount() int { return s.N }

// Implicit reports whether Build returns a computed-adjacency topology.
func (s RegularStreamSpec) Implicit() bool { return !s.Dense }

// OverlaySpec builds the paper's headline setting: a maintained d-regular
// peer-to-peer overlay, optionally churning between rounds. Each
// replication gets a fresh overlay of N alive peers of even degree D
// (seeded from an exact random d-regular graph) with Headroom spare id
// slots for joins (0 means N). When any churn parameter is set, a churner
// drives Binomial(alive, LeaveProb) departures and Binomial(alive,
// JoinProb) arrivals plus MixSteps switch-chain rewiring steps after
// every round, and the topology implements Stepper.
//
// The overlay maintains an epoch-stamped CSR view incrementally under
// Join/Leave/Mix, so runs on it — churning or not — execute on the
// engines' zero-interface fast path, bit-identical to the reference
// interface path (see DESIGN.md, "Topology specs and the epoch
// contract").
type OverlaySpec struct {
	N, D     int
	Headroom int

	JoinProb  float64
	LeaveProb float64
	MixSteps  int
}

// NodeCount implements the SpecNodeCount query: the id-space size is N
// alive peers plus the headroom slots (Headroom 0 means N).
func (s OverlaySpec) NodeCount() int {
	if s.Headroom == 0 {
		return 2 * s.N
	}
	return s.N + s.Headroom
}

// churns reports whether the spec attaches a churner.
func (s OverlaySpec) churns() bool {
	return s.JoinProb > 0 || s.LeaveProb > 0 || s.MixSteps > 0
}

// overlayTopology is a built OverlaySpec: the overlay plus its churner.
// It exposes the overlay's whole API (CheckInvariants, Snapshot, ...)
// through the embedded pointer, and phonecall's CSRViewer/AliveCounter
// with it.
type overlayTopology struct {
	*overlay.Overlay
	ch *overlay.Churner
}

// Step implements Stepper.
func (o overlayTopology) Step(round int) []int { return o.ch.Step(round) }

var (
	_ Stepper             = overlayTopology{}
	_ phonecall.CSRViewer = overlayTopology{}
)

// Build implements TopologySpec: one rng.Split() seeds the overlay, a
// second the churner (drawn even when no churner is attached, so the
// stream shape does not depend on the churn parameters).
func (s OverlaySpec) Build(rep int, rng *Rand) (Topology, error) {
	headroom := s.Headroom
	if headroom == 0 {
		headroom = s.N
	}
	ovRNG, chRNG := rng.Split(), rng.Split()
	ov, err := overlay.New(s.N, s.D, headroom, ovRNG)
	if err != nil {
		return nil, fmt.Errorf("regcast: OverlaySpec: %w", err)
	}
	if !s.churns() {
		return ov, nil
	}
	ch, err := overlay.NewChurner(ov, s.JoinProb, s.LeaveProb, s.MixSteps, chRNG)
	if err != nil {
		return nil, fmt.Errorf("regcast: OverlaySpec: %w", err)
	}
	return overlayTopology{ov, ch}, nil
}
