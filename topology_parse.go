package regcast

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseTopologySpec parses the string form of a TopologySpec:
//
//	family:key=value,key=value,...
//
// so every topology family — including the implicit ones that break the
// memory wall — is reachable from any command line or config file
// without code changes. Families and their keys:
//
//	regular:n=4096,d=8                    RegularGraphSpec
//	config:n=4096,d=8[,erased]            ConfigurationModelSpec
//	gnp:n=4096,p=0.004                    GnpSpec
//	hypercube:dim=27[,dense]              HypercubeSpec (implicit unless dense)
//	torus:rows=64,cols=64[,dense]         TorusSpec (implicit unless dense)
//	gnp-stream:n=4096,p=0.004[,dense]     GnpStreamSpec (implicit unless dense)
//	regular-stream:n=4096,d=8[,dense]     RegularStreamSpec (implicit unless dense)
//	overlay:n=4096,d=8[,headroom=0,join=0.01,leave=0.01,mix=8]  OverlaySpec
//
// Boolean keys may be given bare (`dense`) or explicitly (`dense=true`).
// Validation of the parameter values themselves (ranges, parity) stays
// with each spec's Build, which is where the programmatic API reports
// them; ParseTopologySpec only rejects unknown families, unknown keys,
// and malformed values.
func ParseTopologySpec(s string) (TopologySpec, error) {
	family := s
	params := ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		family, params = s[:i], s[i+1:]
	}
	p, err := parseSpecParams(params)
	if err != nil {
		return nil, fmt.Errorf("regcast: topology spec %q: %w", s, err)
	}
	var spec TopologySpec
	switch family {
	case "regular":
		spec = RegularGraphSpec{N: p.intKey("n"), D: p.intKey("d")}
	case "config":
		spec = ConfigurationModelSpec{N: p.intKey("n"), D: p.intKey("d"), Erased: p.boolKey("erased")}
	case "gnp":
		spec = GnpSpec{N: p.intKey("n"), P: p.floatKey("p")}
	case "hypercube":
		spec = HypercubeSpec{Dim: p.intKey("dim"), Dense: p.boolKey("dense")}
	case "torus":
		spec = TorusSpec{Rows: p.intKey("rows"), Cols: p.intKey("cols"), Dense: p.boolKey("dense")}
	case "gnp-stream":
		spec = GnpStreamSpec{N: p.intKey("n"), P: p.floatKey("p"), Dense: p.boolKey("dense")}
	case "regular-stream":
		spec = RegularStreamSpec{N: p.intKey("n"), D: p.intKey("d"), Dense: p.boolKey("dense")}
	case "overlay":
		spec = OverlaySpec{
			N:         p.intKey("n"),
			D:         p.intKey("d"),
			Headroom:  p.intKey("headroom"),
			JoinProb:  p.floatKey("join"),
			LeaveProb: p.floatKey("leave"),
			MixSteps:  p.intKey("mix"),
		}
	default:
		return nil, fmt.Errorf("regcast: topology spec %q: unknown family %q (want regular, config, gnp, hypercube, torus, gnp-stream, regular-stream or overlay)", s, family)
	}
	if p.err != nil {
		return nil, fmt.Errorf("regcast: topology spec %q: %w", s, p.err)
	}
	if len(p.vals) > 0 {
		for k := range p.vals {
			return nil, fmt.Errorf("regcast: topology spec %q: unknown key %q for family %q", s, k, family)
		}
	}
	return spec, nil
}

// specParams accumulates key lookups and defers value errors so the
// family cases above read declaratively; consumed keys are removed, and
// whatever is left is unknown.
type specParams struct {
	vals map[string]string
	err  error
}

func parseSpecParams(s string) (*specParams, error) {
	p := &specParams{vals: map[string]string{}}
	if s == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			v = "true" // bare key: boolean shorthand
		}
		k = strings.TrimSpace(k)
		if k == "" {
			return nil, fmt.Errorf("empty parameter key in %q", s)
		}
		if _, dup := p.vals[k]; dup {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		p.vals[k] = strings.TrimSpace(v)
	}
	return p, nil
}

func (p *specParams) take(key string) (string, bool) {
	v, ok := p.vals[key]
	if ok {
		delete(p.vals, key)
	}
	return v, ok
}

func (p *specParams) intKey(key string) int {
	v, ok := p.take(key)
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("key %q: %q is not an integer", key, v)
	}
	return n
}

func (p *specParams) floatKey(key string) float64 {
	v, ok := p.take(key)
	if !ok {
		return 0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("key %q: %q is not a number", key, v)
	}
	return f
}

func (p *specParams) boolKey(key string) bool {
	v, ok := p.take(key)
	if !ok {
		return false
	}
	b, err := strconv.ParseBool(v)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("key %q: %q is not a boolean", key, v)
	}
	return b
}
