package regcast_test

import (
	"testing"

	"regcast"
)

// TestReportRegressionsAgainst pins the -max-regress comparison: cells
// matched by label, only worsened means reported, worst first, zero
// baselines and unmatched cells skipped, wall-clock ignored.
func TestReportRegressionsAgainst(t *testing.T) {
	cell := func(label string, rounds, txPerNode float64) regcast.CellReport {
		return regcast.CellReport{
			Label:     label,
			Rounds:    regcast.Aggregate{Mean: rounds},
			TxPerNode: regcast.Aggregate{Mean: txPerNode},
		}
	}
	base := &regcast.Report{Schema: regcast.ReportSchema, Cells: []regcast.CellReport{
		cell("a", 10, 20),
		cell("b", 10, 20),
		cell("c", 0, 0),    // zero baseline: nothing to compare against
		cell("gone", 5, 5), // dropped from the current grid
	}}
	cur := &regcast.Report{Schema: regcast.ReportSchema, Cells: []regcast.CellReport{
		cell("a", 11, 18),   // rounds +10%, tx/node improved
		cell("b", 10, 30),   // tx/node +50%
		cell("c", 99, 99),   // baseline was zero: skipped
		cell("new", 50, 50), // not in the baseline: skipped
	}}
	regs := cur.RegressionsAgainst(base)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %+v, want 2", len(regs), regs)
	}
	if regs[0].Label != "b" || regs[0].Metric != "tx_per_node" || regs[0].Pct != 50 {
		t.Errorf("worst regression = %+v, want b/tx_per_node/+50%%", regs[0])
	}
	if regs[1].Label != "a" || regs[1].Metric != "rounds" {
		t.Errorf("second regression = %+v, want a/rounds", regs[1])
	}
	if got := regs[1].Pct; got < 9.99 || got > 10.01 {
		t.Errorf("rounds regression pct = %v, want ~10", got)
	}
	if again := cur.RegressionsAgainst(base); len(again) != 2 || again[0] != regs[0] {
		t.Errorf("comparison is not deterministic: %+v vs %+v", again, regs)
	}
}
