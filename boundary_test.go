package regcast_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// forbiddenSimImports are the simulation packages main programs must reach
// only through the public regcast facade. CI enforces the same boundary
// with go list; this test keeps it visible in a plain `go test ./...`.
var forbiddenSimImports = []string{
	"regcast/internal/phonecall",
	"regcast/internal/runtime",
	"regcast/internal/experiments",
}

// TestNoSimulationInternalImportsInMains parses every Go file under cmd/
// and examples/ and fails if one imports a simulation-internal package
// directly: the whole point of the facade is that programs select engines
// and observe runs through the regcast package alone.
func TestNoSimulationInternalImportsInMains(t *testing.T) {
	fset := token.NewFileSet()
	for _, root := range []string{"cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return err
				}
				for _, bad := range forbiddenSimImports {
					if p == bad || strings.HasPrefix(p, bad+"/") {
						t.Errorf("%s imports %s directly; use the regcast facade", path, p)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
}
