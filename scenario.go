package regcast

import (
	"fmt"
)

// Scenario is one fully described broadcast: a topology, a protocol
// schedule, a fault model, and the observation hooks. Build it with
// NewScenario (around a concrete Topology instance) or NewScenarioSpec
// (around a declarative TopologySpec); the zero value is not runnable. A
// Scenario is engine-agnostic — the Runner decides how it executes.
//
// Internally a Scenario always holds a TopologySpec; NewScenario wraps
// its instance as a constant spec (FixedTopology), which is why the two
// constructors behave identically under a single Run. They differ under
// replication: a Batch re-Builds a spec scenario's topology per
// replication (so churning topologies replicate safely and per-run
// graphs need no builder callback), while a constant-spec scenario
// shares its one instance across replications.
type Scenario struct {
	spec  TopologySpec
	topo  Topology // the instance: set for constant specs, else materialised per run
	proto Protocol

	source      int
	seed        uint64
	seedSet     bool // WithSeed was applied (vs. the default seed 1)
	rng         *Rand
	dial        DialStrategy
	avoidRecent int

	channelFailure  float64
	messageLoss     float64
	geometricFaults bool

	stopEarly    bool
	recordRounds bool
	trackEdgeUse bool

	observers []Observer
}

// anyScenario marks Scenario as a member of the sealed AnyScenario
// union accepted by Runner.Run.
func (Scenario) anyScenario() {}

// ScenarioOption customises a Scenario under construction.
type ScenarioOption func(*Scenario)

// WithSource sets the node that creates the message in round 0 (default 0).
func WithSource(v int) ScenarioOption { return func(s *Scenario) { s.source = v } }

// WithSeed seeds the run's randomness (default 1). Every Run of the same
// Scenario and engine reproduces the same trace.
func WithSeed(seed uint64) ScenarioOption {
	return func(s *Scenario) { s.seed, s.seedSet = seed, true }
}

// WithRNG drives the run from an existing stream instead of a fresh seed —
// the master.Split() idiom of programs that also generate their topology
// from the master seed. The stream advances across runs and is not
// synchronised, so a WithRNG scenario must not be Run concurrently with
// itself and repeated Runs differ; use WithSeed for repeatable traces and
// for scenarios shared between goroutines.
func WithRNG(rng *Rand) ScenarioOption { return func(s *Scenario) { s.rng = rng } }

// WithDialStrategy selects the neighbour-selection discipline (default
// DialUniform). DialQuasirandom requires a push-only (PullFree) protocol
// and is incompatible with WithAvoidRecent; NewScenario rejects both
// combinations.
func WithDialStrategy(d DialStrategy) ScenarioOption { return func(s *Scenario) { s.dial = d } }

// WithAvoidRecent enables the sequentialised model of the paper's footnote
// 2: one dial per round, excluding the partners dialled in the last r
// rounds.
func WithAvoidRecent(r int) ScenarioOption { return func(s *Scenario) { s.avoidRecent = r } }

// WithChannelFailure sets the probability that a dialled channel fails to
// establish.
func WithChannelFailure(p float64) ScenarioOption { return func(s *Scenario) { s.channelFailure = p } }

// WithMessageLoss sets the probability that an individual transmission is
// lost in transit (lost transmissions still count as transmissions).
func WithMessageLoss(p float64) ScenarioOption { return func(s *Scenario) { s.messageLoss = p } }

// WithGeometricFaults switches the simulation engines to the
// randomness-efficient fault sampler: instead of one Bernoulli draw per
// channel-failure/message-loss decision, each PRNG stream draws
// Geometric(p) skip counters — one draw per fault event. The fault
// processes are distribution-identical and every determinism contract
// still holds (same seed => same trace, worker-count independence), but
// the stream is consumed in a different order, so traces are NOT
// comparable with the default Bernoulli mode — that is why this is an
// explicit opt-in. Simulation engines only; the goroutine-per-node
// engine rejects it.
func WithGeometricFaults() ScenarioOption { return func(s *Scenario) { s.geometricFaults = true } }

// WithStopEarly stops the run as soon as every alive node is informed,
// instead of measuring the full schedule's transmission cost.
func WithStopEarly() ScenarioOption { return func(s *Scenario) { s.stopEarly = true } }

// WithRecordRounds retains per-round metrics in Result.PerRound. Prefer
// WithObserver for long runs: observers consume the same RoundStats online
// without the O(rounds) retention.
func WithRecordRounds() ScenarioOption { return func(s *Scenario) { s.recordRounds = true } }

// WithTrackEdgeUse enables the unused-edge census of the paper's Lemma 4
// (RoundStats.UnusedEdgeNodes). Implies WithRecordRounds requirements:
// simulation engines only, static topology.
func WithTrackEdgeUse() ScenarioOption { return func(s *Scenario) { s.trackEdgeUse = true } }

// WithObserver streams per-round metrics to obs during the run. Repeating
// the option registers several observers; they are invoked in registration
// order, from the engine's coordinating goroutine only.
func WithObserver(obs Observer) ScenarioOption {
	return func(s *Scenario) { s.observers = append(s.observers, obs) }
}

// NewScenario validates and assembles a broadcast scenario on the given
// topology instance and protocol schedule. The instance is held as a
// constant spec (FixedTopology): every run — and every replication of a
// Batch — executes on this one topology.
func NewScenario(topo Topology, proto Protocol, opts ...ScenarioOption) (Scenario, error) {
	if topo == nil {
		return Scenario{}, fmt.Errorf("regcast: scenario requires a Topology")
	}
	return assemble(Scenario{spec: FixedTopology(topo), topo: topo, proto: proto, seed: 1}, opts)
}

// NewScenarioSpec validates and assembles a broadcast scenario on a
// declarative topology spec. The topology is built when the scenario
// runs: once per Runner.Run (from the scenario's own stream), or once per
// replication of a Batch (from the replication's derived stream) — which
// is what lets churning topologies such as OverlaySpec replicate without
// sharing state, appear in sweep grids, and randomise per-run graphs
// without a Batch.New builder. Topology-dependent validation (source
// range and liveness) necessarily happens at build time.
func NewScenarioSpec(spec TopologySpec, proto Protocol, opts ...ScenarioOption) (Scenario, error) {
	if spec == nil {
		return Scenario{}, fmt.Errorf("regcast: scenario requires a TopologySpec")
	}
	s := Scenario{spec: spec, proto: proto, seed: 1}
	// A constant spec is unwrapped eagerly, making
	// NewScenarioSpec(FixedTopology(t), ...) exactly equivalent to
	// NewScenario(t, ...): instance-dependent validation runs at
	// construction, and the batch layer's shared-instance rules (e.g. the
	// dynamic-Stepper rejection) see the instance.
	if fs, ok := spec.(fixedSpec); ok {
		s.topo = fs.topo
		if s.topo == nil {
			return Scenario{}, fmt.Errorf("regcast: scenario requires a Topology")
		}
	}
	return assemble(s, opts)
}

// assemble applies the options and runs construction-time validation.
func assemble(s Scenario, opts []ScenarioOption) (Scenario, error) {
	for _, opt := range opts {
		opt(&s)
	}
	if err := s.validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// validate checks every constraint that does not need a topology
// instance, plus the instance-dependent ones (validateTopo) when the
// instance is already known — so misconfiguration fails at construction
// time with a descriptive error rather than deep in an engine. Spec
// scenarios re-run validateTopo after each materialisation.
func (s *Scenario) validate() error {
	if s.spec == nil {
		return fmt.Errorf("regcast: scenario requires a Topology")
	}
	if s.proto == nil {
		return fmt.Errorf("regcast: scenario requires a Protocol")
	}
	if s.topo != nil {
		if err := s.validateTopo(); err != nil {
			return err
		}
	} else if s.source < 0 {
		return fmt.Errorf("regcast: source %d < 0", s.source)
	}
	if s.channelFailure < 0 || s.channelFailure > 1 {
		return fmt.Errorf("regcast: channel failure probability %v out of [0,1]", s.channelFailure)
	}
	if s.messageLoss < 0 || s.messageLoss > 1 {
		return fmt.Errorf("regcast: message loss probability %v out of [0,1]", s.messageLoss)
	}
	if s.avoidRecent < 0 {
		return fmt.Errorf("regcast: avoid-recent memory %d < 0", s.avoidRecent)
	}
	if s.dial != DialUniform && s.dial != DialQuasirandom {
		return fmt.Errorf("regcast: unknown dial strategy %d", int(s.dial))
	}
	if s.dial == DialQuasirandom {
		// The quasirandom model defines cursor advancement for dialling
		// (pushing) nodes only; a pull round would advance the cursors of
		// uninformed nodes too, which the model leaves undefined. Fail fast
		// instead of simulating something the model does not describe.
		if s.avoidRecent > 0 {
			return fmt.Errorf("regcast: DialQuasirandom is incompatible with WithAvoidRecent: " +
				"the quasirandom cursor replaces dial memory")
		}
		if pf, ok := s.proto.(PullFree); !ok || !pf.NeverPulls() {
			return fmt.Errorf("regcast: DialQuasirandom requires a push-only protocol "+
				"(one implementing PullFree with NeverPulls() == true); %q may pull, and pull rounds "+
				"are undefined in the quasirandom model", s.proto.Name())
		}
	}
	return nil
}

// validateTopo checks the constraints that need a topology instance.
func (s *Scenario) validateTopo() error {
	n := s.topo.NumNodes()
	if s.source < 0 || s.source >= n {
		return fmt.Errorf("regcast: source %d out of range [0,%d)", s.source, n)
	}
	if !s.topo.Alive(s.source) {
		return fmt.Errorf("regcast: source %d is not alive", s.source)
	}
	return nil
}

// materialize builds a spec scenario's topology for replication rep from
// rng and returns the runnable copy: the built instance installed, the
// same stream carried forward for the run itself, and the instance-
// dependent validation re-run. Constant-spec scenarios (topo already
// set) are returned unchanged.
func (s Scenario) materialize(rep int, rng *Rand) (Scenario, error) {
	if s.topo != nil {
		return s, nil
	}
	topo, err := s.spec.Build(rep, rng)
	if err != nil {
		return Scenario{}, err
	}
	if topo == nil {
		return Scenario{}, fmt.Errorf("regcast: TopologySpec built a nil topology")
	}
	s.topo = topo
	s.rng = rng
	if err := s.validateTopo(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// runRNG returns the stream the run draws from: the explicit WithRNG
// stream, or a fresh seed-derived one.
func (s *Scenario) runRNG() *Rand {
	if s.rng != nil {
		return s.rng
	}
	return NewRand(s.seed)
}

// runSeed returns a uint64 seed for engines that derive their own streams
// (the goroutine-per-node runtime and the transport engines).
func (s *Scenario) runSeed() uint64 {
	if s.rng != nil {
		return s.rng.Uint64()
	}
	return s.seed
}

// observer returns the fan-out observer for the run (nil when none are
// registered, which keeps the engines' nil-observer fast path).
func (s *Scenario) observer() Observer {
	switch len(s.observers) {
	case 0:
		return nil
	case 1:
		return s.observers[0]
	default:
		return multiObserver(s.observers)
	}
}

// dynamic reports whether the topology churns between rounds.
func (s *Scenario) dynamic() bool {
	_, ok := s.topo.(Stepper)
	return ok
}
