package regcast_test

import (
	"context"
	"fmt"
	"testing"

	"regcast"
)

// Population-engine scale benchmarks: the fast-path (compiled tables,
// incremental occupancy, batched draws) vs reference (per-pair
// interface dispatch, O(n) measure scan) micro-grid behind the
// EXPERIMENTS.md speedup table. Both paths run the identical trace —
// the two-path contract is pinned by internal/population's matrix
// tests — so the ratio is pure wall-clock. MaxSteps is fixed (the 1M
// runs never converge inside it), making every iteration the same
// amount of simulated work. Run with:
//
//	go test -bench BenchmarkPopulation -benchtime 3x .
//
// Like the other scale benchmarks, the grid skips itself under -short:
// CI's machine-readable population numbers come from cmd/regcast-bench's
// populations grid instead.

// benchPopSizes returns the agent counts to sweep, skipping under
// -short (CI smoke).
func benchPopSizes(b *testing.B) []int {
	b.Helper()
	if testing.Short() {
		b.Skip("population scale benchmarks skipped under -short (100k/1M-agent sweeps)")
	}
	return []int{100_000, 1_000_000}
}

// benchPopulation runs one (scenario, path, workers) cell.
func benchPopulation(b *testing.B, sc regcast.PopulationScenario, fast bool, workers int) {
	b.Helper()
	opts := []regcast.RunnerOption{regcast.WithWorkers(workers)}
	if !fast {
		opts = append(opts, regcast.WithoutPopulationFastPath())
	}
	r := regcast.NewRunner(opts...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i) + 1
		if _, err := r.RunPopulation(context.Background(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

// pathName labels the fast/reference axis.
func pathName(fast bool) string {
	if fast {
		return "fast"
	}
	return "ref"
}

// BenchmarkPopulationLeader sweeps leader election — 25 state bits, so
// the fast path engages the hand-fused ApplyPairs batch kernel plus
// batched draws (no table, no counts).
func BenchmarkPopulationLeader(b *testing.B) {
	for _, n := range benchPopSizes(b) {
		le, err := regcast.NewLeaderElection(n)
		if err != nil {
			b.Fatal(err)
		}
		sc := regcast.PopulationScenario{
			N: n, Pair: le, Init: regcast.InitAllLeaders, MaxSteps: 30,
		}
		for _, fast := range []bool{true, false} {
			for _, workers := range []int{0, 4} {
				b.Run(fmt.Sprintf("n=%d/%s/workers=%d", n, pathName(fast), workers),
					func(b *testing.B) { benchPopulation(b, sc, fast, workers) })
			}
		}
	}
}

// BenchmarkPopulationMajority sweeps approximate majority — 3 states,
// deterministic transitions, so the fast path engages everything: the
// compiled transition table, the incremental occupancy measure, and
// batched draws.
func BenchmarkPopulationMajority(b *testing.B) {
	for _, n := range benchPopSizes(b) {
		sc := regcast.PopulationScenario{
			N: n, Pair: regcast.NewApproxMajority(),
			Init: regcast.InitMajority(0.51), MaxSteps: 30,
		}
		for _, fast := range []bool{true, false} {
			for _, workers := range []int{0, 4} {
				b.Run(fmt.Sprintf("n=%d/%s/workers=%d", n, pathName(fast), workers),
					func(b *testing.B) { benchPopulation(b, sc, fast, workers) })
			}
		}
	}
}
