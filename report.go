package regcast

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// ReportSchema is the versioned identifier stamped into every Report;
// bump the suffix when the serialised shape changes incompatibly, so
// downstream consumers (CI artifacts, perf-trajectory tooling) can detect
// what they are parsing.
const ReportSchema = "regcast.bench/v1"

// Param is one axis setting of a report cell.
type Param struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

// CellReport is the serialised aggregate of one grid cell's batch.
type CellReport struct {
	Index         int       `json:"index"`
	Label         string    `json:"label"`
	Params        []Param   `json:"params,omitempty"`
	Replications  int       `json:"replications"`
	Completed     int       `json:"completed"`
	CompletedFrac float64   `json:"completed_frac"`
	Rounds        Aggregate `json:"rounds"`
	Transmissions Aggregate `json:"transmissions"`
	TxPerNode     Aggregate `json:"tx_per_node"`
	InformedFrac  Aggregate `json:"informed_frac"`
	// WallClockMS is the cell's wall-clock time; present only when the
	// sweep ran with Timing (it is machine-dependent, so deterministic
	// reports omit it).
	WallClockMS float64 `json:"wall_clock_ms,omitempty"`
	// AllocBPerOp is the cell's heap allocation per replication
	// (runtime.MemStats TotalAlloc delta over the cell, divided by its
	// replication count — topology construction included); present only
	// when the sweep ran with MemStats. Like wall-clock it is
	// environment-dependent (GC timing, pool width), so deterministic
	// reports omit it; it is the bench trajectory's memory-wall metric.
	AllocBPerOp uint64 `json:"alloc_b_per_op,omitempty"`
	// HeapSysBytes is the heap the process held from the OS after the
	// cell ran (runtime.MemStats HeapSys); present only with MemStats.
	HeapSysBytes uint64 `json:"heap_sys_bytes,omitempty"`
}

// Report is the stable, machine-readable output of a Sweep: one cell per
// grid point, in grid order. Serialisation is deterministic — fixed field
// order, no timestamps, no map iteration — so for a fixed seed and grid
// (and Timing off) the bytes are identical across runs and across
// ReplicationWorkers values.
type Report struct {
	Schema string       `json:"schema"`
	Name   string       `json:"name"`
	Seed   uint64       `json:"seed"`
	Cells  []CellReport `json:"cells"`
}

// WriteJSON serialises the report as indented JSON with a trailing
// newline.
func (r *Report) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ReadReport parses a serialised JSON Report and verifies its schema
// stamp. A schema mismatch is an error — that is the one condition the
// CI baseline comparison is allowed to fail on (wall-clock drift is
// reported, never fatal).
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("regcast: parsing report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("regcast: report schema %q incompatible with this build's %q", r.Schema, ReportSchema)
	}
	return &r, nil
}

// csvHeader is the fixed column set of the CSV form; kept in lockstep with
// writeCSVRow.
var csvHeader = []string{
	"index", "label", "replications", "completed", "completed_frac",
	"rounds_mean", "rounds_stddev", "rounds_p10", "rounds_p50", "rounds_p90",
	"transmissions_mean", "transmissions_stddev", "transmissions_p50",
	"tx_per_node_mean", "tx_per_node_p50",
	"informed_frac_mean", "informed_frac_min",
	"wall_clock_ms", "alloc_b_per_op", "heap_sys_bytes",
}

// WriteCSV serialises the report as one CSV row per cell with a fixed
// header — the flat form for spreadsheets and plotting scripts; the JSON
// form carries the full aggregates.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, c := range r.Cells {
		row := []string{
			strconv.Itoa(c.Index),
			c.Label,
			strconv.Itoa(c.Replications),
			strconv.Itoa(c.Completed),
			fnum(c.CompletedFrac),
			fnum(c.Rounds.Mean), fnum(c.Rounds.Stddev), fnum(c.Rounds.P10), fnum(c.Rounds.P50), fnum(c.Rounds.P90),
			fnum(c.Transmissions.Mean), fnum(c.Transmissions.Stddev), fnum(c.Transmissions.P50),
			fnum(c.TxPerNode.Mean), fnum(c.TxPerNode.P50),
			fnum(c.InformedFrac.Mean), fnum(c.InformedFrac.Min),
			fnum(c.WallClockMS),
			strconv.FormatUint(c.AllocBPerOp, 10),
			strconv.FormatUint(c.HeapSysBytes, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// fnum renders a float with Go's shortest round-trip formatting — the
// same deterministic representation encoding/json uses.
func fnum(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// String returns a short human-readable summary (cells and name), not the
// serialised form; use WriteJSON/WriteCSV for machine consumption.
func (r *Report) String() string {
	return fmt.Sprintf("regcast.Report{%s: %d cells, seed %d}", r.Name, len(r.Cells), r.Seed)
}

// Regression is one report-cell metric that got worse relative to a
// baseline report: the mean moved up by Pct percent.
type Regression struct {
	// Label is the cell's grid label (cells are matched by label).
	Label string
	// Metric names the regressed aggregate: "rounds" or "tx_per_node".
	Metric string
	// Base and Current are the baseline and current means.
	Base, Current float64
	// Pct is the relative increase in percent (100 × (Current-Base)/Base).
	Pct float64
}

// RegressionsAgainst compares the report cell-by-cell against a baseline
// on the deterministic mean metrics a bench gate can act on — completion
// rounds and transmissions per node — and returns every worsening, worst
// first. Cells are matched by label; cells present in only one report and
// baseline means of zero are skipped (nothing to compare against).
// Wall-clock is deliberately not considered: it is machine noise, the
// gate is for algorithmic regressions.
func (r *Report) RegressionsAgainst(base *Report) []Regression {
	baseByLabel := make(map[string]CellReport, len(base.Cells))
	for _, c := range base.Cells {
		baseByLabel[c.Label] = c
	}
	var regs []Regression
	for _, c := range r.Cells {
		b, ok := baseByLabel[c.Label]
		if !ok {
			continue
		}
		for _, m := range []struct {
			name      string
			base, cur float64
		}{
			{"rounds", b.Rounds.Mean, c.Rounds.Mean},
			{"tx_per_node", b.TxPerNode.Mean, c.TxPerNode.Mean},
		} {
			if m.base <= 0 || m.cur <= m.base {
				continue
			}
			regs = append(regs, Regression{
				Label:   c.Label,
				Metric:  m.name,
				Base:    m.base,
				Current: m.cur,
				Pct:     100 * (m.cur - m.base) / m.base,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Pct != regs[j].Pct {
			return regs[i].Pct > regs[j].Pct
		}
		return regs[i].Label+regs[i].Metric < regs[j].Label+regs[j].Metric
	})
	return regs
}
