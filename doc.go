// Package regcast reproduces "Efficient Randomised Broadcasting in Random
// Regular Networks with Applications in Peer-to-Peer Systems" (Berenbrink,
// Elsässer, Friedetzky; PODC 2008 / Distributed Computing 2016) as a Go
// library, and is itself the public API: programs describe a broadcast as
// a Scenario (topology + protocol + fault model, via functional options),
// execute it with a Runner that selects among five engines behind one
// Run(ctx, Scenario) call, and consume per-round metrics online through
// the streaming Observer interface instead of retaining full traces.
//
//	g, _ := regcast.NewRegularGraph(1<<14, 8, regcast.NewRand(1))
//	proto, _ := regcast.NewFourChoice(1<<14, 8) // the paper's schedule
//	scenario, _ := regcast.NewScenario(regcast.Static(g), proto,
//		regcast.WithSeed(42),
//		regcast.WithObserver(regcast.ObserverFuncs{
//			Round: func(rs regcast.RoundStats) { fmt.Println(rs.Round, rs.Informed) },
//		}))
//	res, _ := regcast.Run(ctx, scenario, regcast.WithWorkers(regcast.WorkersAuto))
//
// Engines: EngineSequential (the classic single-stream simulator),
// EngineSharded (the parallel engine — bit-identical results for every
// worker count at a fixed shard count), EngineGoroutinePerNode (one
// goroutine per node, barrier-synchronised; internal/runtime),
// EngineGossipTransport and EngineTCPTransport (anti-entropy gossip over
// in-memory mailboxes or real loopback sockets; internal/transport).
// Scenario construction fails fast on model violations — e.g.
// DialQuasirandom with a protocol that may pull.
//
// Topologies come in two forms: a concrete instance (NewScenario) or a
// declarative TopologySpec (NewScenarioSpec; topology_spec.go) that
// builds the network at run time — RegularGraphSpec,
// ConfigurationModelSpec, GnpSpec, HypercubeSpec, TorusSpec, and
// OverlaySpec, the paper's churning p2p overlay. Spec scenarios build a
// fresh topology per Batch replication, so dynamic topologies replicate
// and sweep like static graphs, and overlay topologies keep the
// engines' zero-interface CSR fast path even under churn via
// epoch-stamped CSR views (see DESIGN.md).
//
// Above the engines sits the batch layer (batch.go, sweep.go,
// report.go): Batch runs R seed-derived replications of a Scenario on a
// worker pool of whole runs and aggregates them online (Replicate is
// the same pool for non-Scenario ensembles), Sweep crosses parameter
// axes into an ordered grid of Batches, and Report serialises the grid
// as versioned JSON/CSV — the format cmd/regcast-bench writes and CI
// uploads. Replication streams are precomputed in replication order and
// results folded in replication order, so batch aggregates are
// bit-identical for every ReplicationWorkers value; replication-level
// parallelism composes with the sharded engine's per-run workers.
//
// The phone-call rounds above are one Scheduler (SchedulerRounds); the
// facade also ships SchedulerInteractions, the population-protocol
// model, where time advances one uniformly random pairwise interaction
// at a time (internal/population): describe an ensemble of agents as a
// PopulationScenario (a PairProtocol such as NewLeaderElection, or a
// RingProtocol such as NewHermanRing) and execute it with
// RunPopulation; PopulationBatch folds convergence ensembles into the
// same BatchResult the broadcast batches produce, so Sweep (via
// BuildPopulation) and cmd/regcast-bench grid them unchanged. Both
// scheduler families run on the shared deterministic sharded
// super-step contract (internal/sched) — fixed shard count, per-shard
// split PRNG streams, shard-order merge — so traces are bit-identical
// for every worker count.
//
// The population engine auto-engages a compiled fast path that runs the
// bit-identical trace to its reference interpreter: protocols declaring
// a small state space (TablePairProtocol, RingTableProtocol) have their
// transition function compiled into a dense lookup table, protocols
// whose measure factors through state occupancy (CountsPairProtocol,
// e.g. NewApproxMajority) get an incrementally-maintained occupancy
// vector in place of the O(n) scan, and wide protocols can supply a
// fused batch kernel (BatchPairProtocol); pair draws are always batched
// into preallocated PairDraw buffers on the exact reference streams.
// WithoutPopulationFastPath (flag -pop-fastpath=false) forces the
// reference components for cross-validation and A/B benchmarks.
//
// Behind the facade: the four-choice phased broadcast protocols
// (internal/core), the random phone call simulator with its sharded
// parallel round engine (internal/phonecall), random-regular-graph
// generation and analysis (internal/graph, internal/spectral), the
// strictly-oblivious lower-bound machinery (internal/oblivious), baseline
// gossip protocols (internal/baseline), a churning P2P overlay and a
// replicated database built on broadcast (internal/p2p), and the
// per-theorem experiment harness (internal/experiments) — every one of
// its replication ensembles routes through the batch layer, and its
// registry is re-exported by the public regcast/experiments package
// (the harness consumes this facade, so the root package cannot
// re-export it without a cycle).
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate one experiment each and guard
// the nil-observer fast path at zero allocations per round.
package regcast
