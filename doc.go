// Package regcast reproduces "Efficient Randomised Broadcasting in Random
// Regular Networks with Applications in Peer-to-Peer Systems" (Berenbrink,
// Elsässer, Friedetzky; PODC 2008 / Distributed Computing 2016) as a Go
// library: the four-choice phased broadcast protocols (internal/core), the
// random phone call simulator with its sharded parallel round engine
// (internal/phonecall), random-regular-graph
// generation and analysis (internal/graph, internal/spectral), the
// strictly-oblivious lower-bound machinery (internal/oblivious), baseline
// gossip protocols (internal/baseline), a churning P2P overlay and a
// replicated database built on broadcast (internal/p2p), a goroutine-per-
// node runtime (internal/runtime), real transports (internal/transport),
// and the per-theorem experiment harness (internal/experiments).
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate one experiment each.
package regcast
