//go:build race

package regcast_test

// raceEnabled: see race_off_test.go.
const raceEnabled = true
