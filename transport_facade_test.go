package regcast_test

import (
	"context"
	"testing"

	"regcast"
	"regcast/internal/baseline"
)

// transportSmoke runs one rumour through a real transport engine via the
// public Runner and checks the round trip: scenario in, spread metrics
// out, every node informed.
func transportSmoke(t *testing.T, engine regcast.Engine) {
	t.Helper()
	const n, d, k = 12, 4, 2
	g, err := regcast.NewRegularGraph(n, d, regcast.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	proto, err := baseline.NewPushPull(n, k)
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	scenario, err := regcast.NewScenario(regcast.Static(g), proto,
		regcast.WithSeed(8),
		regcast.WithRecordRounds(),
		regcast.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	res, err := regcast.Run(context.Background(), scenario, regcast.WithEngine(engine))
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != engine {
		t.Fatalf("Result.Engine = %v, want %v", res.Engine, engine)
	}
	if !res.AllInformed {
		t.Fatalf("%v: rumour reached only %d/%d nodes in %d ticks", engine, res.Informed, n, res.Rounds)
	}
	if res.Transmissions <= 0 {
		t.Errorf("%v: no packets counted", engine)
	}
	if res.FirstAllInformed < 1 || res.FirstAllInformed > proto.Horizon() {
		t.Errorf("%v: FirstAllInformed = %d out of (0, %d]", engine, res.FirstAllInformed, proto.Horizon())
	}
	for v, at := range res.InformedAt {
		if at == regcast.Uninformed {
			t.Errorf("%v: node %d never marked informed", engine, v)
		}
	}
	// The observer stream must mirror the retained trace here too.
	if len(obs.rounds) != len(res.PerRound) {
		t.Errorf("%v: observer saw %d rounds, result retained %d", engine, len(obs.rounds), len(res.PerRound))
	}
	if len(obs.informedAt) != n {
		t.Errorf("%v: OnInformed fired for %d/%d nodes", engine, len(obs.informedAt), n)
	}
}

// TestGossipTransportRoundTrip proves the facade reaches the in-memory
// gossip transport: a Scenario run end-to-end over channel mailboxes.
func TestGossipTransportRoundTrip(t *testing.T) {
	transportSmoke(t, regcast.EngineGossipTransport)
}

// TestTCPTransportRoundTrip proves the facade reaches real TCP sockets:
// the same Scenario, JSON packets on loopback connections.
func TestTCPTransportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping loopback TCP smoke test")
	}
	transportSmoke(t, regcast.EngineTCPTransport)
}
