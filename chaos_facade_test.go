package regcast_test

import (
	"context"
	"flag"
	"testing"
	"time"

	"regcast"
	"regcast/internal/baseline"
)

// TestDaemonTransportRoundTrip proves the facade reaches the resilient
// gossip daemon: persistent per-peer connections, dial scheduler, dedup.
func TestDaemonTransportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping daemon transport smoke test")
	}
	transportSmoke(t, regcast.EngineDaemonTransport)
}

// TestChaosRunLedger runs a scenario over the daemon with a 20% seeded
// drop plan and checks the public contract: the rumour still reaches
// every node, the health snapshot comes back on Result.Transport, faults
// actually fired, and the ledger balances exactly.
func TestChaosRunLedger(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping chaos run")
	}
	const n, d, k = 12, 4, 2
	g, err := regcast.NewRegularGraph(n, d, regcast.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	proto, err := baseline.NewPushPull(n, k)
	if err != nil {
		t.Fatal(err)
	}
	scenario, err := regcast.NewScenario(regcast.Static(g), proto, regcast.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := regcast.Run(context.Background(), scenario,
		regcast.WithEngine(regcast.EngineDaemonTransport),
		regcast.WithTransportFaults(regcast.FaultConfig{Seed: 21, Drop: 0.2}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("rumour reached only %d/%d nodes under 20%% drops", res.Informed, n)
	}
	h := res.Transport
	if h == nil {
		t.Fatal("Result.Transport missing for the daemon engine")
	}
	if h.Faults == nil {
		t.Fatal("fault ledger missing from Result.Transport")
	}
	if h.Faults.Dropped == 0 {
		t.Error("drop plan injected zero drops")
	}
	if gap := h.LedgerGap(); gap != 0 {
		t.Errorf("LedgerGap = %d, want 0 (sent = delivered + deduped + dropped)", gap)
	}
	if len(h.Peers) != n {
		t.Errorf("health snapshot has %d peer rows, want %d", len(h.Peers), n)
	}
}

// TestFaultsRejectNonTransportEngines pins the Run-time guard.
func TestFaultsRejectNonTransportEngines(t *testing.T) {
	const n, d = 16, 4
	g, err := regcast.NewRegularGraph(n, d, regcast.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	proto, err := baseline.NewPushPull(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	scenario, err := regcast.NewScenario(regcast.Static(g), proto, regcast.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regcast.Run(context.Background(), scenario,
		regcast.WithTransportFaults(regcast.FaultConfig{Drop: 0.1})); err == nil {
		t.Error("sequential engine accepted a fault plan")
	}
}

func parseTransportFlags(t *testing.T, args ...string) (*regcast.TransportFlags, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := regcast.AddTransportFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f, f.Validate()
}

func TestTransportFlags(t *testing.T) {
	f, err := parseTransportFlags(t,
		"-chaos", "-chaos-drop", "0.3", "-chaos-delay-prob", "0.1", "-chaos-delay", "3ms",
		"-chaos-partition", "1:4", "-chaos-crash", "2:1:5")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Daemon {
		t.Error("-chaos did not imply -daemon")
	}
	cfg := f.FaultConfig(8, 11)
	if cfg == nil {
		t.Fatal("FaultConfig nil with -chaos on")
	}
	if cfg.Seed != 11 {
		t.Errorf("Seed = %d, want run seed 11 when -chaos-seed is 0", cfg.Seed)
	}
	if cfg.Drop != 0.3 || cfg.DelayProb != 0.1 || cfg.Delay != 3*time.Millisecond {
		t.Errorf("probabilities not threaded: %+v", cfg)
	}
	if len(cfg.Partitions) != 1 || cfg.Partitions[0].From != 1 || cfg.Partitions[0].Until != 4 ||
		len(cfg.Partitions[0].A) != 4 {
		t.Errorf("partition window wrong: %+v", cfg.Partitions)
	}
	if len(cfg.Crashes) != 1 || cfg.Crashes[0] != (regcast.CrashWindow{Node: 2, From: 1, Until: 5}) {
		t.Errorf("crash window wrong: %+v", cfg.Crashes)
	}
	if opts := f.RunnerOptions(8, 11); len(opts) == 0 {
		t.Error("RunnerOptions empty with -chaos on")
	}

	// Plain -daemon: engine selection, no fault plan.
	f, err = parseTransportFlags(t, "-daemon")
	if err != nil {
		t.Fatal(err)
	}
	if cfg := f.FaultConfig(8, 1); cfg != nil {
		t.Error("FaultConfig non-nil without -chaos")
	}
	if opts := f.RunnerOptions(8, 1); len(opts) != 1 {
		t.Errorf("RunnerOptions = %d options for plain -daemon, want 1", len(opts))
	}

	// Off: no options at all.
	f, err = parseTransportFlags(t)
	if err != nil {
		t.Fatal(err)
	}
	if opts := f.RunnerOptions(8, 1); len(opts) != 0 {
		t.Error("RunnerOptions non-empty with transport flags off")
	}
}

func TestTransportFlagsValidation(t *testing.T) {
	bad := [][]string{
		{"-chaos", "-chaos-drop", "1.5"},
		{"-chaos", "-chaos-dup", "-0.1"},
		{"-mailbox", "-3"},
		{"-chaos", "-chaos-partition", "nope"},
		{"-chaos", "-chaos-partition", "5:2"},
		{"-chaos", "-chaos-crash", "1:2"},
		{"-chaos", "-chaos-crash", "x:1:2"},
	}
	for _, args := range bad {
		if _, err := parseTransportFlags(t, args...); err == nil {
			t.Errorf("flags %v validated", args)
		}
	}
}
