module regcast

go 1.22
