// Package experiments is the public face of the paper-reproduction
// experiment harness: every theorem, phase-level lemma and cited
// comparison of the source paper has a registered Experiment whose Run
// method regenerates its EXPERIMENTS.md tables.
//
// It lives beside the regcast facade rather than inside it because the
// harness itself is a facade *consumer*: since the batch-replication
// redesign, internal/experiments drives every replication ensemble
// through regcast.Batch and regcast.Replicate, so the root package cannot
// also re-export the registry without an import cycle. Programs that only
// run broadcasts never need this package; programs that regenerate paper
// tables (cmd/experiments, the bench harness) import it alongside
// regcast.
package experiments

import (
	"regcast"

	"regcast/internal/experiments"
)

// Experiment is one registered, reproducible measurement; its Run method
// regenerates the corresponding EXPERIMENTS.md tables.
type Experiment = experiments.Experiment

// Options selects the experiment profile: the master seed, the
// Quick/Full sweep sizes, the per-run engine (Workers, phonecall
// semantics) and the replication-pool width (ReplicationWorkers, batch
// semantics).
type Options = experiments.Options

// All returns every registered experiment ordered by numeric ID.
func All() []Experiment { return experiments.All() }

// ByID looks an experiment up by its DESIGN.md identifier ("E1", ...).
func ByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// FromFlags builds harness options from the shared command-line flags,
// keeping every command's engine selection on the facade's single
// definition. replicationWorkers follows Batch.ReplicationWorkers
// semantics (0/1 serial, regcast.WorkersAuto = GOMAXPROCS, n > 1 fixed).
func FromFlags(f *regcast.CommonFlags, quick bool, replicationWorkers int) Options {
	return Options{
		Seed:               f.Seed,
		Quick:              quick,
		Workers:            f.Workers,
		ReplicationWorkers: replicationWorkers,
	}
}
