package regcast_test

import (
	"context"
	"fmt"
	"testing"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/core"
)

// implicitPair is one algebraic-adjacency family in both materialisations:
// the implicit spec and its Dense twin. Both Build paths consume the
// scenario stream identically, so with equal seeds the two must replay
// bit-identical traces — the tentpole contract of the implicit fast path.
type implicitPair struct {
	name            string
	implicit, dense regcast.TopologySpec
}

func implicitPairs() []implicitPair {
	return []implicitPair{
		{"hypercube", regcast.HypercubeSpec{Dim: 8}, regcast.HypercubeSpec{Dim: 8, Dense: true}},
		{"torus", regcast.TorusSpec{Rows: 16, Cols: 16}, regcast.TorusSpec{Rows: 16, Cols: 16, Dense: true}},
		{"gnp-stream", regcast.GnpStreamSpec{N: 400, P: 16.0 / 400}, regcast.GnpStreamSpec{N: 400, P: 16.0 / 400, Dense: true}},
		{"regular-stream", regcast.RegularStreamSpec{N: 300, D: 6}, regcast.RegularStreamSpec{N: 300, D: 6, Dense: true}},
	}
}

// fingerprint reduces a Result to the fields the bit-identity contract
// covers.
func fingerprint(res regcast.Result) [6]uint64 {
	return [6]uint64{
		uint64(res.Rounds), uint64(int64(res.FirstAllInformed)), uint64(res.Informed),
		uint64(res.Transmissions), uint64(res.ChannelsDialed), hashTrace(res.InformedAt),
	}
}

// TestImplicitMatchesDenseTraces pins that every implicit family replays
// the exact trace of its materialised twin, across protocols, engines and
// worker counts — including the forced reference path, so the implicit
// fast path, the CSR fast path and the interface path all agree.
func TestImplicitMatchesDenseTraces(t *testing.T) {
	engines := []struct {
		name string
		opts []regcast.RunnerOption
	}{
		{"sequential", nil},
		{"sharded-w1", []regcast.RunnerOption{regcast.WithWorkers(1)}},
		{"sharded-w4", []regcast.RunnerOption{regcast.WithWorkers(4)}},
		{"no-fast-path", []regcast.RunnerOption{regcast.WithoutFastPath()}},
	}
	protos := []struct {
		name string
		mk   func(n int) (regcast.Protocol, error)
	}{
		{"push", func(n int) (regcast.Protocol, error) { return baseline.NewPush(n, 1) }},
		{"four-choice", func(n int) (regcast.Protocol, error) { return core.New(n, 8) }},
	}
	for _, pair := range implicitPairs() {
		n := regcast.SpecNodeCount(pair.implicit)
		if n <= 0 {
			t.Fatalf("%s: SpecNodeCount = %d", pair.name, n)
		}
		if !regcast.SpecImplicit(pair.implicit) || regcast.SpecImplicit(pair.dense) {
			t.Fatalf("%s: Implicit() flags inverted", pair.name)
		}
		for _, pr := range protos {
			proto, err := pr.mk(n)
			if err != nil {
				t.Fatal(err)
			}
			run := func(spec regcast.TopologySpec, opts []regcast.RunnerOption) regcast.Result {
				sc, err := regcast.NewScenarioSpec(spec, proto, regcast.WithSeed(17))
				if err != nil {
					t.Fatal(err)
				}
				res, err := regcast.Run(context.Background(), sc, opts...)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			for _, eng := range engines {
				label := fmt.Sprintf("%s/%s/%s", pair.name, pr.name, eng.name)
				imp := fingerprint(run(pair.implicit, eng.opts))
				dense := fingerprint(run(pair.dense, eng.opts))
				if imp != dense {
					t.Errorf("%s: implicit %v != dense %v", label, imp, dense)
				}
			}
		}
	}
}

// TestImplicitMatchesDenseUnderFaults extends the bit-identity pin to
// the fault samplers: channel failure and message loss draw from the run
// stream in dial order, so the implicit path must consume the stream
// exactly as the CSR path does even when dials fail.
func TestImplicitMatchesDenseUnderFaults(t *testing.T) {
	for _, pair := range implicitPairs() {
		n := regcast.SpecNodeCount(pair.implicit)
		proto, err := baseline.NewPushPull(n, 2)
		if err != nil {
			t.Fatal(err)
		}
		run := func(spec regcast.TopologySpec, opts ...regcast.RunnerOption) regcast.Result {
			sc, err := regcast.NewScenarioSpec(spec, proto,
				regcast.WithSeed(23),
				regcast.WithChannelFailure(0.15),
				regcast.WithMessageLoss(0.1))
			if err != nil {
				t.Fatal(err)
			}
			res, err := regcast.Run(context.Background(), sc, opts...)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		for _, workers := range []int{0, 4} {
			var opts []regcast.RunnerOption
			if workers > 0 {
				opts = append(opts, regcast.WithWorkers(workers))
			}
			imp := fingerprint(run(pair.implicit, opts...))
			dense := fingerprint(run(pair.dense, opts...))
			if imp != dense {
				t.Errorf("%s/w%d faults: implicit %v != dense %v", pair.name, workers, imp, dense)
			}
		}
	}
}

// TestImplicitEdgeCensusFallback pins the edge-use census on implicit
// topologies: an implicit view has no CSR slots to enumerate, so
// WithTrackEdgeUse must fall back to the reference path — and the
// per-round |U(t)| series must equal the dense run's.
func TestImplicitEdgeCensusFallback(t *testing.T) {
	pair := implicitPairs()[0] // hypercube dim 8
	n := regcast.SpecNodeCount(pair.implicit)
	proto, err := core.New(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	run := func(spec regcast.TopologySpec) regcast.Result {
		sc, err := regcast.NewScenarioSpec(spec, proto,
			regcast.WithSeed(5), regcast.WithRecordRounds(), regcast.WithTrackEdgeUse())
		if err != nil {
			t.Fatal(err)
		}
		res, err := regcast.Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	imp, dense := run(pair.implicit), run(pair.dense)
	if fingerprint(imp) != fingerprint(dense) {
		t.Fatalf("census run: implicit %v != dense %v", fingerprint(imp), fingerprint(dense))
	}
	if len(imp.PerRound) == 0 || len(imp.PerRound) != len(dense.PerRound) {
		t.Fatalf("per-round lengths: implicit %d, dense %d", len(imp.PerRound), len(dense.PerRound))
	}
	sawCensus := false
	for r := range imp.PerRound {
		if imp.PerRound[r].UnusedEdgeNodes != dense.PerRound[r].UnusedEdgeNodes {
			t.Fatalf("round %d: |U(t)| implicit %d, dense %d",
				r, imp.PerRound[r].UnusedEdgeNodes, dense.PerRound[r].UnusedEdgeNodes)
		}
		if imp.PerRound[r].UnusedEdgeNodes > 0 {
			sawCensus = true
		}
	}
	if !sawCensus {
		t.Fatal("census never reported an unused-edge node; the fallback did not track anything")
	}
}

// TestParseTopologySpecRoundTrips checks the string form builds the same
// topologies the programmatic specs do, and that malformed specs are
// rejected with the offending detail.
func TestParseTopologySpecRoundTrips(t *testing.T) {
	good := []struct {
		in       string
		n        int
		implicit bool
	}{
		{"regular:n=512,d=8", 512, false},
		{"config:n=256,d=6,erased", 256, false},
		{"gnp:n=300,p=0.05", 300, false},
		{"hypercube:dim=9", 512, true},
		{"hypercube:dim=9,dense", 512, false},
		{"torus:rows=8,cols=16", 128, true},
		{"torus:rows=8,cols=16,dense=true", 128, false},
		{"gnp-stream:n=200,p=0.1", 200, true},
		{"regular-stream:n=200,d=4", 200, true},
		{"overlay:n=128,d=8,join=0.01,leave=0.01,mix=4", 256, false},
	}
	for _, tc := range good {
		spec, err := regcast.ParseTopologySpec(tc.in)
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if got := regcast.SpecNodeCount(spec); got != tc.n {
			t.Errorf("%q: SpecNodeCount = %d, want %d", tc.in, got, tc.n)
		}
		if got := regcast.SpecImplicit(spec); got != tc.implicit {
			t.Errorf("%q: SpecImplicit = %v, want %v", tc.in, got, tc.implicit)
		}
		topo, err := spec.Build(0, regcast.NewRand(1))
		if err != nil {
			t.Errorf("%q: Build: %v", tc.in, err)
			continue
		}
		if topo.NumNodes() != tc.n {
			t.Errorf("%q: built %d nodes, want %d", tc.in, topo.NumNodes(), tc.n)
		}
	}
	bad := []string{
		"",                              // no family
		"mesh:n=100",                    // unknown family
		"hypercube:dim=9,n=512",         // unknown key for the family
		"hypercube:dim=abc",             // malformed int
		"gnp:n=100,p=lots",              // malformed float
		"torus:rows=8,rows=9",           // duplicate key
		"hypercube:dim=9,dense=perhaps", // malformed bool
		"regular:=8",                    // empty key
	}
	for _, in := range bad {
		if _, err := regcast.ParseTopologySpec(in); err == nil {
			t.Errorf("%q: accepted", in)
		}
	}

	// The parsed spec replays the exact trace of the programmatic one.
	proto, err := baseline.NewPush(512, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(spec regcast.TopologySpec) [6]uint64 {
		sc, err := regcast.NewScenarioSpec(spec, proto, regcast.WithSeed(4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := regcast.Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(res)
	}
	parsed, err := regcast.ParseTopologySpec("hypercube:dim=9")
	if err != nil {
		t.Fatal(err)
	}
	if run(parsed) != run(regcast.HypercubeSpec{Dim: 9}) {
		t.Error("parsed hypercube spec diverged from the programmatic spec")
	}
}
