package regcast_test

import (
	"os"
	"regexp"
	"testing"
)

// TestDocReferencesExist cross-checks doc.go: every file it names
// (README.md, DESIGN.md, EXPERIMENTS.md, bench_test.go, ...) and every
// package directory it mentions must actually exist, so the package
// documentation can never dangle again.
func TestDocReferencesExist(t *testing.T) {
	src, err := os.ReadFile("doc.go")
	if err != nil {
		t.Fatal(err)
	}

	fileRe := regexp.MustCompile(`[A-Za-z0-9_]+\.(?:md|go)`)
	files := fileRe.FindAllString(string(src), -1)
	if len(files) == 0 {
		t.Fatal("doc.go names no files; the cross-check is vacuous")
	}
	seen := map[string]bool{}
	for _, f := range files {
		if seen[f] {
			continue
		}
		seen[f] = true
		if _, err := os.Stat(f); err != nil {
			t.Errorf("doc.go references %s, which does not exist: %v", f, err)
		}
	}
	for _, want := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "bench_test.go"} {
		if !seen[want] {
			t.Errorf("doc.go no longer references %s; keep the guided-tour pointers", want)
		}
	}

	pkgRe := regexp.MustCompile(`internal/[a-z0-9/]+`)
	for _, dir := range pkgRe.FindAllString(string(src), -1) {
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			t.Errorf("doc.go references package %s, which is not a directory", dir)
		}
	}
}
