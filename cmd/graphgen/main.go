// Command graphgen generates a random regular graph (configuration model
// or simple Steger–Wormald) and reports its structural statistics:
// degrees, self-loops, parallel edges, connectivity, diameter estimate,
// spectral expansion, and a push-broadcast probe run through the regcast
// facade (so -workers selects the engine exactly as in broadcast-sim).
//
// Usage:
//
//	graphgen -n 4096 -d 8 -model simple
//	graphgen -n 1024 -d 6 -model pairing -seed 7 -workers -1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/graph"
	"regcast/internal/spectral"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n      = flag.Int("n", 4096, "number of nodes")
		d      = flag.Int("d", 8, "degree")
		model  = flag.String("model", "simple", "generator: simple|pairing|erased")
		common = regcast.AddCommonFlags(flag.CommandLine)
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		return err
	}

	master := common.Rand()
	var (
		g   *regcast.Graph
		err error
	)
	switch *model {
	case "simple":
		g, err = graph.RandomRegular(*n, *d, master.Split())
	case "pairing":
		g, err = graph.ConfigurationModel(*n, *d, master.Split())
	case "erased":
		g, err = graph.ErasedConfigurationModel(*n, *d, master.Split())
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		return err
	}

	fmt.Printf("model: %s, n=%d, d=%d, edges=%d\n", *model, g.NumNodes(), *d, g.NumEdges())
	fmt.Printf("degrees: min=%d max=%d regular(d)=%v\n", g.MinDegree(), g.MaxDegree(), g.IsRegular(*d))
	fmt.Printf("self-loops: %d, surplus parallel edges: %d, simple: %v\n",
		g.SelfLoopCount(), g.MultiEdgeCount(), g.IsSimple())
	_, comps := g.ConnectedComponents()
	fmt.Printf("connected: %v (%d components)\n", comps == 1, comps)
	if comps == 1 {
		if diam, err := g.DiameterLowerBound(0); err == nil {
			fmt.Printf("diameter (double-sweep lower bound): %d\n", diam)
		}
		l2, err := spectral.SecondEigenvalue(g, 200, master.Split())
		if err != nil {
			return err
		}
		bound := spectral.AlonBoppanaBound(*d)
		fmt.Printf("|λ2| ≈ %.3f, 2√(d−1) = %.3f, ratio %.3f\n", l2, bound, l2/bound)
	}

	// Broadcast probe: a plain push rumour from node 0, run through the
	// facade so the engine follows -workers. Rounds-to-completion is a
	// cheap functional check of the generated topology (≈ log n + ln n on
	// a good expander, never finishing on a disconnected graph).
	probe, err := baseline.NewPush(g.NumNodes(), 1)
	if err != nil {
		return err
	}
	scenario, err := regcast.NewScenario(regcast.Static(g), probe,
		regcast.WithRNG(master.Split()), regcast.WithStopEarly())
	if err != nil {
		return err
	}
	res, err := regcast.Run(context.Background(), scenario, common.RunnerOptions()...)
	if err != nil {
		return err
	}
	fmt.Printf("broadcast probe (push, 1 dial/round): informed %d/%d", res.Informed, res.AliveNodes)
	if res.AllInformed {
		fmt.Printf(" in %d rounds\n", res.FirstAllInformed)
	} else {
		fmt.Printf(" after %d rounds (incomplete)\n", res.Rounds)
	}
	return nil
}
