// Command broadcast-sim runs one broadcast on a random d-regular graph
// under a chosen protocol and prints a per-round trace plus a summary.
// The trace is streamed through the regcast Observer API as the engine
// produces it, not retained and dumped afterwards.
//
// Usage:
//
//	broadcast-sim -n 4096 -d 8 -protocol fourchoice -seed 1 -trace
//	broadcast-sim -n 1000000 -d 16 -protocol push -workers -1   # sharded engine
//	broadcast-sim -topology hypercube:dim=27 -protocol push -stop-early -mem
//	broadcast-sim -scheduler interactions -n 1024 -trace        # population demo
//	broadcast-sim -n 32 -d 6 -daemon                            # gossip daemon over sockets
//	broadcast-sim -n 32 -d 6 -chaos -chaos-drop 0.2             # + seeded fault injection
//
// Protocols: fourchoice (auto variant), algorithm1, algorithm2, seq
// (sequentialised four-choice), push, pull, pushpull. With
// -scheduler interactions the command instead runs the self-stabilizing
// leader-election population protocol on an -n agent clique from the
// all-leaders adversarial start, tracing super-steps.
//
// The shared -topology flag overrides -n/-d with any parseable topology
// spec (regcast.ParseTopologySpec); implicit families (hypercube, torus,
// gnp-stream, regular-stream) never materialise adjacency, which is what
// makes 100M+-node runs fit one box.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/core"
	"regcast/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "broadcast-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 4096, "number of nodes")
		d         = flag.Int("d", 8, "degree of the random regular graph")
		protoSel  = flag.String("protocol", "fourchoice", "protocol: fourchoice|algorithm1|algorithm2|seq|push|pull|pushpull")
		alpha     = flag.Float64("alpha", core.DefaultAlpha, "phase-length constant α for the four-choice schedules")
		choices   = flag.Int("choices", core.Choices, "dials per round for the four-choice schedules (ablation)")
		failure   = flag.Float64("failure", 0, "channel establishment failure probability")
		loss      = flag.Float64("loss", 0, "per-transmission message loss probability")
		source    = flag.Int("source", 0, "source node id")
		trace     = flag.Bool("trace", false, "print a per-round trace")
		stopEarly = flag.Bool("stop-early", false, "stop as soon as every node is informed (skip the schedule's tail)")
		mem       = flag.Bool("mem", false, "report allocation totals (runtime.MemStats) for the run")
		common    = regcast.AddCommonFlags(flag.CommandLine)
		tflags    = regcast.AddTransportFlags(flag.CommandLine)
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		return err
	}
	if err := tflags.Validate(); err != nil {
		return err
	}
	if common.Scheduler() == regcast.SchedulerInteractions {
		return runPopulation(*n, *trace, common)
	}

	var memBefore runtime.MemStats
	if *mem {
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}

	master := common.Rand()
	spec := common.TopologySpec()
	if tflags.Daemon && spec != nil {
		return fmt.Errorf("-daemon/-chaos need the dense -n/-d graph (transport engines require a Static topology)")
	}
	if spec != nil {
		if nn := regcast.SpecNodeCount(spec); nn > 0 {
			*n = nn // protocol horizons are functions of n
		}
	}
	var g *regcast.Graph
	var err error
	if spec == nil {
		g, err = regcast.NewRegularGraph(*n, *d, master.Split())
		if err != nil {
			return err
		}
	}

	var proto regcast.Protocol
	avoidRecent := 0
	opts := []core.Option{core.WithAlpha(*alpha), core.WithChoices(*choices)}
	switch *protoSel {
	case "fourchoice":
		proto, err = core.New(*n, *d, opts...)
	case "algorithm1":
		proto, err = core.NewAlgorithm1(*n, opts...)
	case "algorithm2":
		proto, err = core.NewAlgorithm2(*n, opts...)
	case "seq":
		var base *core.FourChoice
		base, err = core.NewAlgorithm1(*n, opts...)
		if err == nil {
			seq := core.NewSequentialised(base)
			proto = seq
			avoidRecent = seq.Memory()
		}
	case "push":
		proto, err = baseline.NewPush(*n, 1)
	case "pull":
		proto, err = baseline.NewPull(*n, 1)
	case "pushpull":
		proto, err = baseline.NewPushPull(*n, 1)
	default:
		return fmt.Errorf("unknown protocol %q", *protoSel)
	}
	if err != nil {
		return err
	}

	if spec == nil {
		fmt.Printf("graph: G(%d,%d) simple=%v connected=%v\n", *n, *d, g.IsSimple(), g.IsConnected())
	} else {
		kind := "dense"
		if regcast.SpecImplicit(spec) {
			kind = "implicit"
		}
		fmt.Printf("topology: %s (%s, n=%d)\n", common.Topology, kind, *n)
	}
	fmt.Printf("protocol: %s (choices=%d horizon=%d)\n", proto.Name(), proto.Choices(), proto.Horizon())

	sopts := []regcast.ScenarioOption{
		regcast.WithSource(*source),
		regcast.WithRNG(master.Split()),
		regcast.WithChannelFailure(*failure),
		regcast.WithMessageLoss(*loss),
		regcast.WithAvoidRecent(avoidRecent),
	}
	if *stopEarly {
		sopts = append(sopts, regcast.WithStopEarly())
	}
	var fractions []float64
	if *trace {
		fmt.Println("round  newly  informed  transmissions")
		sopts = append(sopts, regcast.WithObserver(regcast.ObserverFuncs{
			Round: func(rm regcast.RoundStats) {
				fmt.Printf("%5d  %5d  %8d  %13d\n", rm.Round, rm.NewlyInformed, rm.Informed, rm.Transmissions)
				fractions = append(fractions, float64(rm.Informed)/float64(*n))
			},
		}))
	}
	var scenario regcast.Scenario
	if spec == nil {
		scenario, err = regcast.NewScenario(regcast.Static(g), proto, sopts...)
	} else {
		scenario, err = regcast.NewScenarioSpec(spec, proto, sopts...)
	}
	if err != nil {
		return err
	}
	start := time.Now()
	ropts := append(common.RunnerOptions(), tflags.RunnerOptions(*n, common.Seed)...)
	res, err := regcast.Run(context.Background(), scenario, ropts...)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if *trace {
		if chart, err := viz.Chart(64, 12, viz.Series{Name: "informed fraction", Values: fractions}); err == nil {
			fmt.Println()
			fmt.Print(chart)
		}
	}
	fmt.Printf("completed: %v (informed %d/%d)\n", res.AllInformed, res.Informed, res.AliveNodes)
	if res.FirstAllInformed > 0 {
		fmt.Printf("all informed after round: %d\n", res.FirstAllInformed)
	}
	fmt.Printf("transmissions: %d (%.2f per node)\n", res.Transmissions, float64(res.Transmissions)/float64(*n))
	fmt.Printf("channels dialled: %d\n", res.ChannelsDialed)
	fmt.Printf("wall clock: %s\n", elapsed.Round(time.Millisecond))
	if res.Transport != nil {
		printTransportHealth(res.Transport)
	}
	if *mem {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		alloc := after.TotalAlloc - memBefore.TotalAlloc
		fmt.Printf("memory: %.1f MB allocated (%.1f B/node), heap sys %.1f MB\n",
			float64(alloc)/(1<<20), float64(alloc)/float64(*n), float64(after.HeapSys)/(1<<20))
	}
	return nil
}

// printTransportHealth renders the daemon's metrics ledger and, under
// -chaos, the fault-injection ledger.
func printTransportHealth(h *regcast.TransportHealth) {
	fmt.Printf("daemon: sends=%d delivered=%d deduped=%d dropped=%d ledger-gap=%d\n",
		h.Sends, h.Delivered, h.Deduped, h.DroppedTotal(), h.LedgerGap())
	fmt.Printf("daemon: dials=%d redials=%d dial-fails=%d retries=%d evictions=%d wire-lost=%d\n",
		h.Dials, h.Redials, h.DialFails, h.Retries, h.BudgetEvictions, h.WireLost())
	states := map[string]int{}
	for _, p := range h.Peers {
		states[p.StateStr]++
	}
	fmt.Printf("daemon: peers %v\n", states)
	if f := h.Faults; f != nil {
		fmt.Printf("chaos: in=%d forwarded=%d dropped=%d partition-drops=%d crash-drops=%d dup=%d delayed=%d reordered=%d\n",
			f.In, f.Forwarded, f.Dropped, f.PartitionDrops, f.CrashDrops, f.Duplicated, f.Delayed, f.Reordered)
	}
}

// runPopulation is the -scheduler interactions path: one leader-election
// run on an n-agent clique from the all-leaders adversarial start,
// honouring -seed, -workers and -trace.
func runPopulation(n int, trace bool, common *regcast.CommonFlags) error {
	le, err := regcast.NewLeaderElection(n)
	if err != nil {
		return err
	}
	sc := regcast.PopulationScenario{
		N:    n,
		Pair: le,
		Init: regcast.InitAllLeaders,
		Seed: common.Seed,
	}
	fmt.Printf("population: %s on an n=%d clique, all-leaders start\n", le.Name(), n)
	var fractions []float64
	if trace {
		fmt.Println(" step  interactions  changed  leaders")
		sc.Observer = superStepPrinter{n: n, fractions: &fractions}
	}
	res, err := regcast.RunPopulation(context.Background(), sc, common.RunnerOptions()...)
	if err != nil {
		return err
	}
	if trace && len(fractions) > 1 {
		if chart, err := viz.Chart(64, 12, viz.Series{Name: "leader fraction", Values: fractions}); err == nil {
			fmt.Println()
			fmt.Print(chart)
		}
	}
	fmt.Printf("converged: %v (final leaders %d)\n", res.Converged, res.Measure)
	if res.Converged {
		fmt.Printf("convergence: super-step %d after %d interactions\n", res.ConvergedAt, res.ConvergedInteractions)
	}
	fmt.Printf("total: %d super-steps, %d interactions\n", res.Steps, res.Interactions)
	return nil
}

// superStepPrinter streams the population trace as the engine produces it.
type superStepPrinter struct {
	n         int
	fractions *[]float64
}

func (p superStepPrinter) OnSuperStep(s regcast.SuperStepStats) {
	fmt.Printf("%5d  %12d  %7d  %7d\n", s.Step, s.Interactions, s.Changed, s.Measure)
	*p.fractions = append(*p.fractions, float64(s.Measure)/float64(p.n))
}
