// Command regcast-bench runs a named sweep grid through the batch
// replication engine and writes the machine-readable regcast.Report —
// the repo's perf-trajectory format (CI uploads the JSON as the
// BENCH_ci.json artifact on every push to main).
//
// Usage:
//
//	regcast-bench -grid ci                          # the CI smoke grid, JSON to stdout
//	regcast-bench -grid scaling -o BENCH.json       # the E1-shaped n-sweep
//	regcast-bench -grid faults -format csv          # flat CSV for plotting
//	regcast-bench -grid protocols -rep-workers -1   # replications on a GOMAXPROCS pool
//	regcast-bench -grid degrees -timing             # include per-cell wall-clock
//	regcast-bench -grid ci -timing -o BENCH_ci.json -baseline BENCH_seed.json
//	                                                # ...and diff against a checked-in report
//
// With -baseline, the fresh report is compared cell-by-cell against the
// given JSON report and a markdown delta table is emitted (to stdout when
// -o diverts the report to a file, else to stderr) — the CI job appends
// it to the run summary. Only a schema mismatch is fatal; wall-clock
// drift is reported, never failed on, because it is machine noise.
//
// Determinism: for a fixed -seed, grid and flag set (without -timing),
// the output bytes are identical across runs and across every
// -rep-workers value — -rep-workers and -workers only change wall-clock
// time. -timing adds machine-dependent per-cell wall-clock fields and is
// meant for perf-trajectory artifacts, not for byte comparison.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/core"
)

// protoFactory builds a protocol for an n-node d-regular network; the
// protocol axis of every grid carries these as its values.
type protoFactory func(n, d int) (regcast.Protocol, error)

var protocols = map[string]protoFactory{
	"four-choice": func(n, d int) (regcast.Protocol, error) { return regcast.NewFourChoice(n, d) },
	"push":        func(n, d int) (regcast.Protocol, error) { return baseline.NewPush(n, 1) },
	"pull":        func(n, d int) (regcast.Protocol, error) { return baseline.NewPull(n, 1) },
	"push-pull":   func(n, d int) (regcast.Protocol, error) { return baseline.NewPushPull(n, 1) },
	"algorithm1":  func(n, d int) (regcast.Protocol, error) { return core.NewAlgorithm1(n) },
}

// protoAxis builds the protocol axis from registered factory names.
func protoAxis(names ...string) regcast.Axis {
	ax := regcast.Axis{Name: "protocol"}
	for _, name := range names {
		ax.Values = append(ax.Values, regcast.Val(name, protocols[name]))
	}
	return ax
}

// buildCell is the shared Build function of every grid: it reads the
// point's n / degree / protocol / fault axes (absent axes fall back to the
// given defaults), generates the cell's graph from the point seed, and
// returns a source-randomised batch over the scenario.
func buildCell(p regcast.Point, defaults cellDefaults) (regcast.Batch, error) {
	n, d := defaults.n, defaults.d
	mk := defaults.proto
	var failure, loss float64
	for _, prm := range p.Params() {
		switch prm.Axis {
		case "n":
			n = p.Value("n").(int)
		case "d":
			d = p.Value("d").(int)
		case "protocol":
			mk = p.Value("protocol").(protoFactory)
		case "failure":
			failure = p.Value("failure").(float64)
		case "loss":
			loss = p.Value("loss").(float64)
		}
	}
	rng := regcast.NewRand(p.Seed)
	g, err := regcast.NewRegularGraph(n, d, rng.Split())
	if err != nil {
		return regcast.Batch{}, err
	}
	proto, err := mk(n, d)
	if err != nil {
		return regcast.Batch{}, err
	}
	sc, err := regcast.NewScenario(regcast.Static(g), proto,
		regcast.WithSeed(rng.Uint64()),
		regcast.WithChannelFailure(failure),
		regcast.WithMessageLoss(loss))
	if err != nil {
		return regcast.Batch{}, err
	}
	return regcast.Batch{Scenario: sc, RandomizeSource: true}, nil
}

type cellDefaults struct {
	n, d  int
	proto protoFactory
}

// grid describes one named sweep preset.
type grid struct {
	about string
	reps  int // default replication count
	axes  []regcast.Axis
	def   cellDefaults
}

// grids are the named presets. "ci" is deliberately small: it is the
// benchmark smoke CI runs on every push.
var grids = map[string]grid{
	"ci": {
		about: "CI smoke: tiny n × {push, four-choice}",
		reps:  3,
		axes:  []regcast.Axis{regcast.Vals("n", 256, 512), protoAxis("push", "four-choice")},
		def:   cellDefaults{d: 8, proto: protocols["four-choice"]},
	},
	"scaling": {
		about: "the E1-shaped sweep: four-choice completion vs n",
		reps:  5,
		axes:  []regcast.Axis{regcast.Vals("n", 1<<10, 1<<11, 1<<12, 1<<13, 1<<14), protoAxis("four-choice")},
		def:   cellDefaults{d: 8, proto: protocols["four-choice"]},
	},
	"protocols": {
		about: "protocol comparison at one size",
		reps:  5,
		axes:  []regcast.Axis{protoAxis("push", "pull", "push-pull", "four-choice")},
		def:   cellDefaults{n: 1 << 12, d: 8, proto: protocols["four-choice"]},
	},
	"faults": {
		about: "channel-failure × message-loss fault grid on four-choice",
		reps:  5,
		axes: []regcast.Axis{
			regcast.Vals("failure", 0.0, 0.1, 0.2),
			regcast.Vals("loss", 0.0, 0.1, 0.2),
		},
		def: cellDefaults{n: 1 << 11, d: 8, proto: protocols["four-choice"]},
	},
	"degrees": {
		// d starts at 8: the four-choice model needs d >= 5 (core.New).
		about: "topology axis: degree sweep of the random regular graph",
		reps:  5,
		axes:  []regcast.Axis{regcast.Vals("d", 8, 16, 32, 64), protoAxis("four-choice")},
		def:   cellDefaults{n: 1 << 12, d: 8, proto: protocols["four-choice"]},
	},
}

func gridNames() string {
	names := make([]string, 0, len(grids))
	for name := range grids {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "regcast-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		gridName = flag.String("grid", "ci", "sweep grid to run: "+gridNames())
		reps     = flag.Int("reps", 0, "replications per cell (0 = the grid's default)")
		repWork  = flag.Int("rep-workers", 0,
			"replication-pool workers over whole runs: 0/1 = serial, -1 = GOMAXPROCS, n = n workers (never changes results)")
		format   = flag.String("format", "json", "output format: json|csv")
		out      = flag.String("o", "", "output file (default stdout)")
		timing   = flag.Bool("timing", false, "record per-cell wall-clock (machine-dependent; breaks byte-determinism)")
		baseline = flag.String("baseline", "", "baseline report (JSON) to diff the fresh report against; fails only on schema mismatch")
		common   = regcast.AddCommonFlags(flag.CommandLine)
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		return err
	}
	if *repWork < regcast.WorkersAuto {
		return fmt.Errorf("-rep-workers %d invalid (use -1, 0 or a positive count)", *repWork)
	}
	g, ok := grids[*gridName]
	if !ok {
		return fmt.Errorf("unknown grid %q (have %s)", *gridName, gridNames())
	}
	replications := g.reps
	if *reps > 0 {
		replications = *reps
	}

	sweep := regcast.Sweep{
		Name:               *gridName,
		Seed:               common.Seed,
		Axes:               g.axes,
		Replications:       replications,
		ReplicationWorkers: *repWork,
		Runner:             common.Runner(),
		Timing:             *timing,
		Build:              func(p regcast.Point) (regcast.Batch, error) { return buildCell(p, g.def) },
	}
	report, err := sweep.Run(context.Background())
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = report.WriteJSON(w)
	case "csv":
		err = report.WriteCSV(w)
	default:
		err = fmt.Errorf("unknown format %q (json|csv)", *format)
	}
	if err != nil {
		return err
	}
	if *baseline != "" {
		return diffBaseline(report, *baseline, *out != "")
	}
	return nil
}

// diffBaseline compares the fresh report against a checked-in baseline
// and emits a markdown delta table. Wall-clock drift is informational;
// only an unreadable or schema-incompatible baseline is an error.
func diffBaseline(cur *regcast.Report, path string, stdoutFree bool) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	defer f.Close()
	base, err := regcast.ReadReport(f)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	w := io.Writer(os.Stderr)
	if stdoutFree {
		w = os.Stdout
	}
	writeComparison(w, base, cur, path)
	return nil
}

// fmtClock renders a cell's wall-clock (absent in deterministic reports).
func fmtClock(ms float64) string {
	if ms <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", ms)
}

// writeComparison renders the per-cell delta table (markdown, suitable
// for a CI job summary). Cells are matched by label; added and dropped
// cells are listed, not failed on.
func writeComparison(w io.Writer, base, cur *regcast.Report, basePath string) {
	fmt.Fprintf(w, "### regcast-bench grid %q vs baseline %s\n\n", cur.Name, basePath)
	fmt.Fprintln(w, "| cell | rounds mean (base → now) | tx/node mean (base → now) | wall-clock ms (base → now) | Δ wall-clock |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	baseByLabel := make(map[string]regcast.CellReport, len(base.Cells))
	for _, c := range base.Cells {
		baseByLabel[c.Label] = c
	}
	seen := make(map[string]bool, len(cur.Cells))
	for _, c := range cur.Cells {
		b, ok := baseByLabel[c.Label]
		if !ok {
			fmt.Fprintf(w, "| %s | (new cell) | %.2f | %s | - |\n", c.Label, c.TxPerNode.Mean, fmtClock(c.WallClockMS))
			continue
		}
		seen[c.Label] = true
		delta := "-"
		if b.WallClockMS > 0 && c.WallClockMS > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(c.WallClockMS-b.WallClockMS)/b.WallClockMS)
		}
		fmt.Fprintf(w, "| %s | %.2f → %.2f | %.2f → %.2f | %s → %s | %s |\n",
			c.Label, b.Rounds.Mean, c.Rounds.Mean, b.TxPerNode.Mean, c.TxPerNode.Mean,
			fmtClock(b.WallClockMS), fmtClock(c.WallClockMS), delta)
	}
	for _, b := range base.Cells {
		if !seen[b.Label] {
			fmt.Fprintf(w, "| %s | (dropped from grid) | - | - | - |\n", b.Label)
		}
	}
	fmt.Fprintln(w)
}
