// Command regcast-bench runs a named sweep grid through the batch
// replication engine and writes the machine-readable regcast.Report —
// the repo's perf-trajectory format (CI uploads the JSON as the
// BENCH_ci.json artifact on every push to main).
//
// Usage:
//
//	regcast-bench -grid ci                          # the CI smoke grid, JSON to stdout
//	regcast-bench -grid scaling -o BENCH.json       # the E1-shaped n-sweep
//	regcast-bench -grid faults -format csv          # flat CSV for plotting
//	regcast-bench -grid protocols -rep-workers -1   # replications on a GOMAXPROCS pool
//	regcast-bench -grid degrees -timing             # include per-cell wall-clock
//	regcast-bench -grid topologies                  # declarative topology-family axis
//	regcast-bench -grid topologies-implicit -mem    # implicit vs dense pairs with B/op
//	regcast-bench -grid ci -topology hypercube:dim=14
//	                                                # override the grid's default topology
//	regcast-bench -grid churn                       # overlay join/leave-rate axis
//	regcast-bench -grid ci -timing -o BENCH_ci.json -baseline BENCH_seed.json
//	                                                # ...and diff against a checked-in report
//	regcast-bench -grid ci -baseline BENCH_seed.json -max-regress 20
//	                                                # ...and gate on mean-metric regressions
//
// With -baseline, the fresh report is compared cell-by-cell against the
// given JSON report and a markdown delta table is emitted (to stdout when
// -o diverts the report to a file, else to stderr) — the CI job appends
// it to the run summary. A schema mismatch is fatal (exit 1); wall-clock
// drift is reported, never failed on, because it is machine noise. With
// -max-regress <pct> on top, a cell whose mean completion rounds or
// tx/node worsened by more than pct percent exits with code 3 — a
// distinct code so callers can treat algorithmic regressions as warnings
// (the CI bench job does) without masking hard failures.
//
// Determinism: for a fixed -seed, grid and flag set (without -timing),
// the output bytes are identical across runs and across every
// -rep-workers value — -rep-workers and -workers only change wall-clock
// time. -timing adds machine-dependent per-cell wall-clock fields and is
// meant for perf-trajectory artifacts, not for byte comparison.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/core"
)

// protoFactory builds a protocol for an n-node d-regular network; the
// protocol axis of every grid carries these as its values.
type protoFactory func(n, d int) (regcast.Protocol, error)

var protocols = map[string]protoFactory{
	"four-choice": func(n, d int) (regcast.Protocol, error) { return regcast.NewFourChoice(n, d) },
	"push":        func(n, d int) (regcast.Protocol, error) { return baseline.NewPush(n, 1) },
	"pull":        func(n, d int) (regcast.Protocol, error) { return baseline.NewPull(n, 1) },
	"push-pull":   func(n, d int) (regcast.Protocol, error) { return baseline.NewPushPull(n, 1) },
	"algorithm1":  func(n, d int) (regcast.Protocol, error) { return core.NewAlgorithm1(n) },
}

// protoAxis builds the protocol axis from registered factory names.
func protoAxis(names ...string) regcast.Axis {
	ax := regcast.Axis{Name: "protocol"}
	for _, name := range names {
		ax.Values = append(ax.Values, regcast.Val(name, protocols[name]))
	}
	return ax
}

// buildCell is the shared Build function of every grid: it reads the
// point's n / degree / protocol / fault / topology / churn axes (absent
// axes fall back to the given defaults) and returns a source-randomised
// batch over the scenario.
//
// Without a topology-shaped axis the cell generates one random regular
// graph from the point seed and replicates on it — the classic derivation,
// preserved byte-for-byte for the pre-existing grids. A "topology" axis
// carries a declarative regcast.TopologySpec instead, and a "churn" axis
// a per-round join/leave rate realised as an OverlaySpec; either way the
// batch builds a fresh topology per replication from the spec.
func buildCell(p regcast.Point, defaults cellDefaults) (regcast.Batch, error) {
	n, d := defaults.n, defaults.d
	mk := defaults.proto
	var failure, loss float64
	var spec regcast.TopologySpec
	churn := -1.0
	for _, prm := range p.Params() {
		switch prm.Axis {
		case "n":
			n = p.Value("n").(int)
		case "d":
			d = p.Value("d").(int)
		case "protocol":
			mk = p.Value("protocol").(protoFactory)
		case "failure":
			failure = p.Value("failure").(float64)
		case "loss":
			loss = p.Value("loss").(float64)
		case "topology":
			spec = p.Value("topology").(regcast.TopologySpec)
		case "churn":
			churn = p.Value("churn").(float64)
		}
	}
	if spec == nil && churn < 0 {
		// The shared -topology flag overrides the grid's default topology
		// for cells that don't sweep one themselves; its node count drives
		// the protocol horizons.
		spec = defaults.spec
		if spec != nil {
			if nn := regcast.SpecNodeCount(spec); nn > 0 {
				n = nn
			}
		}
	}
	rng := regcast.NewRand(p.Seed)
	proto, err := mk(n, d)
	if err != nil {
		return regcast.Batch{}, err
	}
	if churn >= 0 {
		spec = regcast.OverlaySpec{N: n, D: d, JoinProb: churn, LeaveProb: churn, MixSteps: 5}
	}
	opts := []regcast.ScenarioOption{
		regcast.WithChannelFailure(failure),
		regcast.WithMessageLoss(loss),
	}
	var sc regcast.Scenario
	if spec != nil {
		sc, err = regcast.NewScenarioSpec(spec, proto,
			append(opts, regcast.WithSeed(rng.Uint64()))...)
	} else {
		var g *regcast.Graph
		g, err = regcast.NewRegularGraph(n, d, rng.Split())
		if err != nil {
			return regcast.Batch{}, err
		}
		sc, err = regcast.NewScenario(regcast.Static(g), proto,
			append(opts, regcast.WithSeed(rng.Uint64()))...)
	}
	if err != nil {
		return regcast.Batch{}, err
	}
	return regcast.Batch{Scenario: sc, RandomizeSource: true}, nil
}

type cellDefaults struct {
	n, d  int
	proto protoFactory
	// spec, when set (the -topology flag), replaces the default random
	// regular graph for every cell without a topology or churn axis.
	spec regcast.TopologySpec
}

// popWorkload is one value of the populations grid's workload axis: a
// population protocol at a concrete size (leader election on an n-clique,
// Herman's ring with k initial tokens, or approximate majority from an
// initial X-fraction).
type popWorkload struct {
	kind   string // "leader" | "herman" | "majority"
	n      int
	tokens int     // herman only: initial equally-spaced tokens
	frac   float64 // majority only: initial X-fraction
}

// buildPopulationCell is the populations grid's BuildPopulation: it
// realises the cell's workload as a PopulationBatch whose convergence
// metrics fold into the standard regcast.bench/v1 cells (rounds = mean
// convergence super-step, transmissions = interactions to convergence).
func buildPopulationCell(p regcast.Point) (regcast.PopulationBatch, error) {
	w := p.Value("workload").(popWorkload)
	sc := regcast.PopulationScenario{N: w.n, Seed: p.Seed}
	switch w.kind {
	case "leader":
		le, err := regcast.NewLeaderElection(w.n)
		if err != nil {
			return regcast.PopulationBatch{}, err
		}
		sc.Pair, sc.Init = le, regcast.InitAllLeaders
	case "herman":
		hm, err := regcast.NewHermanRing(w.n)
		if err != nil {
			return regcast.PopulationBatch{}, err
		}
		init, err := regcast.HermanInitTokens(w.n, w.tokens)
		if err != nil {
			return regcast.PopulationBatch{}, err
		}
		sc.Ring, sc.Init = hm, init
	case "majority":
		sc.Pair, sc.Init = regcast.NewApproxMajority(), regcast.InitMajority(w.frac)
	default:
		return regcast.PopulationBatch{}, fmt.Errorf("unknown population workload %q", w.kind)
	}
	return regcast.PopulationBatch{Scenario: sc}, nil
}

// populationAxis builds the populations grid's workload axis: a
// leader-election n-sweep, a Herman token-count sweep, and an
// approximate-majority margin sweep (the full table+counts fast-path
// workload).
func populationAxis(leaderNs []int, hermanN int, tokens []int, majorityN int, fracs []float64) regcast.Axis {
	ax := regcast.Axis{Name: "workload"}
	for _, n := range leaderNs {
		ax.Values = append(ax.Values, regcast.Val(fmt.Sprintf("leader-n%d", n),
			popWorkload{kind: "leader", n: n}))
	}
	for _, k := range tokens {
		ax.Values = append(ax.Values, regcast.Val(fmt.Sprintf("herman-n%d-k%d", hermanN, k),
			popWorkload{kind: "herman", n: hermanN, tokens: k}))
	}
	for _, f := range fracs {
		ax.Values = append(ax.Values, regcast.Val(fmt.Sprintf("majority-n%d-x%d", majorityN, int(f*100)),
			popWorkload{kind: "majority", n: majorityN, frac: f}))
	}
	return ax
}

// grid describes one named sweep preset.
type grid struct {
	about string
	reps  int // default replication count
	axes  []regcast.Axis
	def   cellDefaults
	pop   bool // population grid: cells build PopulationBatches
}

// grids are the named presets. "ci" is deliberately small: it is the
// benchmark smoke CI runs on every push.
var grids = map[string]grid{
	"ci": {
		about: "CI smoke: tiny n × {push, four-choice}",
		reps:  3,
		axes:  []regcast.Axis{regcast.Vals("n", 256, 512), protoAxis("push", "four-choice")},
		def:   cellDefaults{d: 8, proto: protocols["four-choice"]},
	},
	"scaling": {
		about: "the E1-shaped sweep: four-choice completion vs n",
		reps:  5,
		axes:  []regcast.Axis{regcast.Vals("n", 1<<10, 1<<11, 1<<12, 1<<13, 1<<14), protoAxis("four-choice")},
		def:   cellDefaults{d: 8, proto: protocols["four-choice"]},
	},
	"protocols": {
		about: "protocol comparison at one size",
		reps:  5,
		axes:  []regcast.Axis{protoAxis("push", "pull", "push-pull", "four-choice")},
		def:   cellDefaults{n: 1 << 12, d: 8, proto: protocols["four-choice"]},
	},
	"faults": {
		about: "channel-failure × message-loss fault grid on four-choice",
		reps:  5,
		axes: []regcast.Axis{
			regcast.Vals("failure", 0.0, 0.1, 0.2),
			regcast.Vals("loss", 0.0, 0.1, 0.2),
		},
		def: cellDefaults{n: 1 << 11, d: 8, proto: protocols["four-choice"]},
	},
	"degrees": {
		// d starts at 8: the four-choice model needs d >= 5 (core.New).
		about: "topology axis: degree sweep of the random regular graph",
		reps:  5,
		axes:  []regcast.Axis{regcast.Vals("d", 8, 16, 32, 64), protoAxis("four-choice")},
		def:   cellDefaults{n: 1 << 12, d: 8, proto: protocols["four-choice"]},
	},
	"topologies": {
		// Every family ships as a declarative spec, so each replication
		// builds its own fresh topology (~4096 nodes per family).
		about: "topology-family axis: declarative specs incl. a churning overlay",
		reps:  5,
		axes: []regcast.Axis{
			regcast.TopologyAxis(
				regcast.Val("regular", regcast.RegularGraphSpec{N: 1 << 12, D: 8}),
				regcast.Val("config-model", regcast.ConfigurationModelSpec{N: 1 << 12, D: 8, Erased: true}),
				regcast.Val("gnp", regcast.GnpSpec{N: 1 << 12, P: 8.0 / (1 << 12)}),
				regcast.Val("hypercube", regcast.HypercubeSpec{Dim: 12}),
				regcast.Val("torus", regcast.TorusSpec{Rows: 64, Cols: 64}),
				regcast.Val("overlay-churn", regcast.OverlaySpec{N: 1 << 12, D: 8, JoinProb: 0.005, LeaveProb: 0.005, MixSteps: 5}),
			),
			protoAxis("push-pull"),
		},
		def: cellDefaults{n: 1 << 12, d: 8, proto: protocols["push-pull"]},
	},
	"topologies-implicit": {
		// Implicit vs dense pairs of the algebraic-adjacency families. Each
		// cell draws its own grid seed, so the pairs are statistical — not
		// byte — twins here (bit-identity is pinned by the facade property
		// tests); what this grid tracks is the perf trajectory of the
		// implicit fast path, and with -mem its B/op advantage.
		about: "implicit-adjacency families paired with their materialised twins",
		reps:  3,
		axes: []regcast.Axis{
			regcast.TopologyAxis(
				regcast.Val("hypercube", regcast.HypercubeSpec{Dim: 12}),
				regcast.Val("hypercube-dense", regcast.HypercubeSpec{Dim: 12, Dense: true}),
				regcast.Val("torus", regcast.TorusSpec{Rows: 64, Cols: 64}),
				regcast.Val("torus-dense", regcast.TorusSpec{Rows: 64, Cols: 64, Dense: true}),
				regcast.Val("gnp-stream", regcast.GnpStreamSpec{N: 1 << 12, P: 16.0 / (1 << 12)}),
				regcast.Val("gnp-stream-dense", regcast.GnpStreamSpec{N: 1 << 12, P: 16.0 / (1 << 12), Dense: true}),
				regcast.Val("regular-stream", regcast.RegularStreamSpec{N: 1 << 12, D: 8}),
				regcast.Val("regular-stream-dense", regcast.RegularStreamSpec{N: 1 << 12, D: 8, Dense: true}),
			),
			protoAxis("push-pull"),
		},
		def: cellDefaults{n: 1 << 12, d: 8, proto: protocols["push-pull"]},
	},
	"churn": {
		// Overlay churn-rate sweep: the paper's p2p setting as a grid axis.
		about: "per-round join/leave rate sweep on the maintained overlay",
		reps:  5,
		axes:  []regcast.Axis{regcast.ChurnAxis(0, 0.002, 0.01, 0.02), protoAxis("algorithm1")},
		def:   cellDefaults{n: 1 << 11, d: 8, proto: protocols["algorithm1"]},
	},
	"populations": {
		// The interaction-scheduler grid: convergence metrics instead of
		// broadcast metrics (rounds = mean convergence super-step,
		// transmissions = interactions to convergence), same report schema.
		about: "population protocols: leader n-sweep + Herman tokens + majority margins",
		reps:  5,
		axes: []regcast.Axis{populationAxis(
			[]int{1 << 8, 1 << 9, 1 << 10, 1 << 11},
			101, []int{3, 5, 9, 17},
			1<<11, []float64{0.51, 0.55, 0.75})},
		pop: true,
	},
}

// newSweep assembles the Sweep a named grid describes — factored out of
// run() so tests can execute grids directly with chosen pool widths.
func newSweep(name string, g grid, seed uint64, replications, repWorkers int, runner regcast.Runner, timing bool) regcast.Sweep {
	sweep := regcast.Sweep{
		Name:               name,
		Seed:               seed,
		Axes:               g.axes,
		Replications:       replications,
		ReplicationWorkers: repWorkers,
		Runner:             runner,
		Timing:             timing,
	}
	if g.pop {
		sweep.BuildPopulation = buildPopulationCell
	} else {
		sweep.Build = func(p regcast.Point) (regcast.Batch, error) { return buildCell(p, g.def) }
	}
	return sweep
}

func gridNames() string {
	names := make([]string, 0, len(grids))
	for name := range grids {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

func main() {
	if err := run(); err != nil {
		if errors.Is(err, errRegression) {
			// The breach details were already written with the delta table;
			// exit with the distinct warn-only code.
			os.Exit(exitRegression)
		}
		fmt.Fprintln(os.Stderr, "regcast-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		gridName = flag.String("grid", "ci", "sweep grid to run: "+gridNames())
		reps     = flag.Int("reps", 0, "replications per cell (0 = the grid's default)")
		repWork  = flag.Int("rep-workers", 0,
			"replication-pool workers over whole runs: 0/1 = serial, -1 = GOMAXPROCS, n = n workers (never changes results)")
		format   = flag.String("format", "json", "output format: json|csv")
		out      = flag.String("o", "", "output file (default stdout)")
		timing   = flag.Bool("timing", false, "record per-cell wall-clock (machine-dependent; breaks byte-determinism)")
		mem      = flag.Bool("mem", false, "record per-cell allocation (B/op) and heap-sys (machine-dependent; breaks byte-determinism)")
		baseline = flag.String("baseline", "", "baseline report (JSON) to diff the fresh report against; fails only on schema mismatch")
		maxReg   = flag.Float64("max-regress", -1,
			"with -baseline: exit with code 3 when any cell's mean rounds or tx/node regress past this percentage (negative = report only)")
		common = regcast.AddCommonFlags(flag.CommandLine)
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		return err
	}
	if *repWork < regcast.WorkersAuto {
		return fmt.Errorf("-rep-workers %d invalid (use -1, 0 or a positive count)", *repWork)
	}
	if *maxReg >= 0 && *baseline == "" {
		return fmt.Errorf("-max-regress needs -baseline to compare against")
	}
	g, ok := grids[*gridName]
	if !ok {
		return fmt.Errorf("unknown grid %q (have %s)", *gridName, gridNames())
	}
	replications := g.reps
	if *reps > 0 {
		replications = *reps
	}

	g.def.spec = common.TopologySpec()
	sweep := newSweep(*gridName, g, common.Seed, replications, *repWork, common.Runner(), *timing)
	sweep.MemStats = *mem
	report, err := sweep.Run(context.Background())
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = report.WriteJSON(w)
	case "csv":
		err = report.WriteCSV(w)
	default:
		err = fmt.Errorf("unknown format %q (json|csv)", *format)
	}
	if err != nil {
		return err
	}
	if *baseline != "" {
		return diffBaseline(report, *baseline, *maxReg, *out != "")
	}
	return nil
}

// exitRegression is the exit code of a -max-regress breach, distinct
// from 1 (hard errors like an unreadable or schema-incompatible
// baseline) so CI can treat regressions as warnings while schema drift
// stays fatal. errRegression is the sentinel run() returns for it;
// main maps it to the code at the single process exit point.
const exitRegression = 3

var errRegression = errors.New("bench regression past -max-regress threshold")

// diffBaseline compares the fresh report against a checked-in baseline
// and emits a markdown delta table. Wall-clock drift is informational;
// an unreadable or schema-incompatible baseline is an error, and with
// maxReg >= 0 a mean rounds/tx-per-node regression past that percentage
// exits with code 3 after listing the offending cells.
func diffBaseline(cur *regcast.Report, path string, maxReg float64, stdoutFree bool) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	defer f.Close()
	base, err := regcast.ReadReport(f)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	w := io.Writer(os.Stderr)
	if stdoutFree {
		w = os.Stdout
	}
	writeComparison(w, base, cur, path)
	if maxReg < 0 {
		return nil
	}
	var breached []regcast.Regression
	for _, reg := range cur.RegressionsAgainst(base) {
		if reg.Pct > maxReg {
			breached = append(breached, reg)
		}
	}
	if len(breached) == 0 {
		fmt.Fprintf(w, "No cell regressed past %.1f%% on mean rounds or tx/node.\n\n", maxReg)
		return nil
	}
	fmt.Fprintf(w, "**%d cell metric(s) regressed past %.1f%%:**\n\n", len(breached), maxReg)
	for _, reg := range breached {
		fmt.Fprintf(w, "- %s: %s mean %.3f → %.3f (%+.1f%%)\n", reg.Label, reg.Metric, reg.Base, reg.Current, reg.Pct)
	}
	fmt.Fprintln(w)
	return errRegression
}

// fmtClock renders a cell's wall-clock (absent in deterministic reports).
func fmtClock(ms float64) string {
	if ms <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", ms)
}

// writeComparison renders the per-cell delta table (markdown, suitable
// for a CI job summary). Cells are matched by label; added and dropped
// cells are listed, not failed on.
func writeComparison(w io.Writer, base, cur *regcast.Report, basePath string) {
	fmt.Fprintf(w, "### regcast-bench grid %q vs baseline %s\n\n", cur.Name, basePath)
	fmt.Fprintln(w, "| cell | rounds mean (base → now) | tx/node mean (base → now) | wall-clock ms (base → now) | Δ wall-clock |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	baseByLabel := make(map[string]regcast.CellReport, len(base.Cells))
	for _, c := range base.Cells {
		baseByLabel[c.Label] = c
	}
	seen := make(map[string]bool, len(cur.Cells))
	for _, c := range cur.Cells {
		b, ok := baseByLabel[c.Label]
		if !ok {
			fmt.Fprintf(w, "| %s | (new cell) | %.2f | %s | - |\n", c.Label, c.TxPerNode.Mean, fmtClock(c.WallClockMS))
			continue
		}
		seen[c.Label] = true
		delta := "-"
		if b.WallClockMS > 0 && c.WallClockMS > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(c.WallClockMS-b.WallClockMS)/b.WallClockMS)
		}
		fmt.Fprintf(w, "| %s | %.2f → %.2f | %.2f → %.2f | %s → %s | %s |\n",
			c.Label, b.Rounds.Mean, c.Rounds.Mean, b.TxPerNode.Mean, c.TxPerNode.Mean,
			fmtClock(b.WallClockMS), fmtClock(c.WallClockMS), delta)
	}
	for _, b := range base.Cells {
		if !seen[b.Label] {
			fmt.Fprintf(w, "| %s | (dropped from grid) | - | - | - |\n", b.Label)
		}
	}
	fmt.Fprintln(w)
}
