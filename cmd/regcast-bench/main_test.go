package main

import (
	"bytes"
	"context"
	"testing"

	"regcast"
)

// TestPopulationsGridDeterministicAcrossRepWorkers runs a shrunk
// populations grid at ReplicationWorkers 0, 1 and 4 and requires the
// serialised reports to be byte-identical — the determinism contract the
// bench output rests on, extended to the interaction scheduler.
func TestPopulationsGridDeterministicAcrossRepWorkers(t *testing.T) {
	g := grid{
		reps: 3,
		axes: []regcast.Axis{populationAxis([]int{128, 256}, 51, []int{3, 5}, 256, []float64{0.6})},
		pop:  true,
	}
	var want []byte
	for i, workers := range []int{0, 1, 4} {
		sweep := newSweep("populations-test", g, 7, g.reps, workers, regcast.NewRunner(), false)
		report, err := sweep.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = buf.Bytes()
			if len(report.Cells) != 5 {
				t.Fatalf("%d cells, want 5", len(report.Cells))
			}
			for _, c := range report.Cells {
				if c.Completed == 0 {
					t.Fatalf("cell %s: no replication converged", c.Label)
				}
			}
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("rep-workers=%d report differs from rep-workers=0:\n%s\nvs\n%s", workers, buf.Bytes(), want)
		}
	}
}

// TestBroadcastGridStillDeterministic guards the pre-existing grids'
// byte-determinism through the factored-out sweep constructor.
func TestBroadcastGridStillDeterministic(t *testing.T) {
	g := grid{
		reps: 2,
		axes: []regcast.Axis{regcast.Vals("n", 128), protoAxis("push")},
		def:  cellDefaults{d: 8, proto: protocols["push"]},
	}
	var want []byte
	for i, workers := range []int{0, 4} {
		sweep := newSweep("ci-test", g, 3, g.reps, workers, regcast.NewRunner(), false)
		report, err := sweep.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("rep-workers=%d report differs from rep-workers=0", workers)
		}
	}
}
