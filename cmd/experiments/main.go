// Command experiments regenerates the paper-reproduction tables recorded
// in EXPERIMENTS.md.
//
// Usage:
//
//	experiments                  # run everything, full profile, plain text
//	experiments -run E2,E4       # a subset
//	experiments -quick           # the fast CI profile
//	experiments -markdown        # GitHub-flavoured Markdown output
//	experiments -parallel        # broadcasts on the sharded engine
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"regcast/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment ids (default: all)")
		quick    = flag.Bool("quick", false, "use the fast profile (smaller sweeps)")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of plain text")
		seed     = flag.Uint64("seed", 1, "master seed")
		parallel = flag.Bool("parallel", false, "run broadcasts on the sharded parallel engine with GOMAXPROCS workers (same as -workers -1)")
		workers  = flag.Int("workers", 0, "engine workers, matching broadcast-sim: 0 = classic sequential engine (unless -parallel), -1 = GOMAXPROCS (sharded), n = n workers (sharded)")
	)
	flag.Parse()
	if *workers < -1 {
		return fmt.Errorf("-workers %d invalid (use -1, 0 or a positive count)", *workers)
	}

	var selected []experiments.Experiment
	if *runIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, Parallel: *parallel}
	if *workers != 0 {
		// Any explicit worker count selects the sharded engine; -1 maps to
		// Options.Workers == 0, i.e. GOMAXPROCS.
		opts.Parallel = true
		if *workers > 0 {
			opts.Workers = *workers
		}
	}
	for _, e := range selected {
		if *markdown {
			fmt.Printf("## %s — %s\n\n", e.ID, e.Title)
			fmt.Printf("**Paper claim.** %s\n\n", e.PaperClaim)
		} else {
			fmt.Printf("=== %s — %s ===\n", e.ID, e.Title)
			fmt.Printf("paper claim: %s\n\n", e.PaperClaim)
		}
		tables, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, tb := range tables {
			if *markdown {
				fmt.Println(tb.Markdown())
			} else {
				fmt.Println(tb.String())
			}
		}
	}
	return nil
}
