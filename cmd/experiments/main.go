// Command experiments regenerates the paper-reproduction tables recorded
// in EXPERIMENTS.md.
//
// Usage:
//
//	experiments                  # run everything, full profile, plain text
//	experiments -run E2,E4       # a subset
//	experiments -quick           # the fast CI profile
//	experiments -markdown        # GitHub-flavoured Markdown output
//	experiments -workers -1      # broadcasts on the sharded engine
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"regcast"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment ids (default: all)")
		quick    = flag.Bool("quick", false, "use the fast profile (smaller sweeps)")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of plain text")
		parallel = flag.Bool("parallel", false, "deprecated alias for -workers -1 (sharded engine, GOMAXPROCS workers)")
		common   = regcast.AddCommonFlags(flag.CommandLine)
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		return err
	}
	if *parallel && common.Workers == 0 {
		common.Workers = regcast.WorkersAuto
	}

	var selected []regcast.Experiment
	if *runIDs == "" {
		selected = regcast.Experiments()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := regcast.ExperimentByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}

	opts := common.ExperimentOptions(*quick)
	for _, e := range selected {
		if *markdown {
			fmt.Printf("## %s — %s\n\n", e.ID, e.Title)
			fmt.Printf("**Paper claim.** %s\n\n", e.PaperClaim)
		} else {
			fmt.Printf("=== %s — %s ===\n", e.ID, e.Title)
			fmt.Printf("paper claim: %s\n\n", e.PaperClaim)
		}
		tables, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, tb := range tables {
			if *markdown {
				fmt.Println(tb.Markdown())
			} else {
				fmt.Println(tb.String())
			}
		}
	}
	return nil
}
