// Command experiments regenerates the paper-reproduction tables recorded
// in EXPERIMENTS.md.
//
// Usage:
//
//	experiments                  # run everything, full profile, plain text
//	experiments -run E2,E4       # a subset
//	experiments -quick           # the fast CI profile
//	experiments -markdown        # GitHub-flavoured Markdown output
//	experiments -workers -1      # each broadcast on the sharded engine
//	experiments -rep-workers -1  # replication ensembles on a GOMAXPROCS pool
//	experiments -scheduler interactions  # the population-protocol family (E21+)
//
// -workers parallelises inside one run (sharding), -rep-workers across
// whole runs (the batch layer); the two compose, and neither changes any
// table — results are a pure function of -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"regcast"
	"regcast/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment ids (default: all)")
		quick    = flag.Bool("quick", false, "use the fast profile (smaller sweeps)")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of plain text")
		parallel = flag.Bool("parallel", false, "deprecated alias for -workers -1 (sharded engine, GOMAXPROCS workers)")
		repWork  = flag.Int("rep-workers", 0,
			"replication-pool workers over whole runs: 0/1 = serial, -1 = GOMAXPROCS, n = n workers (never changes results)")
		common = regcast.AddCommonFlags(flag.CommandLine)
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		return err
	}
	if *repWork < regcast.WorkersAuto {
		return fmt.Errorf("-rep-workers %d invalid (use -1, 0 or a positive count)", *repWork)
	}
	if *parallel && common.Workers == 0 {
		common.Workers = regcast.WorkersAuto
	}

	var selected []experiments.Experiment
	if *runIDs == "" {
		// The default selection follows the -scheduler flag: the rounds
		// family is E1–E20 (the paper's theorems), the interactions family
		// E21+ (the population-protocol experiments). An explicit -run
		// bypasses the filter.
		for _, e := range experiments.All() {
			if e.Scheduler == common.Scheduler() {
				selected = append(selected, e)
			}
		}
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}

	opts := experiments.FromFlags(common, *quick, *repWork)
	for _, e := range selected {
		if *markdown {
			fmt.Printf("## %s — %s\n\n", e.ID, e.Title)
			fmt.Printf("**Paper claim.** %s\n\n", e.PaperClaim)
		} else {
			fmt.Printf("=== %s — %s ===\n", e.ID, e.Title)
			fmt.Printf("paper claim: %s\n\n", e.PaperClaim)
		}
		tables, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, tb := range tables {
			if *markdown {
				fmt.Println(tb.Markdown())
			} else {
				fmt.Println(tb.String())
			}
		}
	}
	return nil
}
