// Command overlay-sim stress-tests the d-regular P2P overlay under churn
// and reports its structural health over time: membership, degree
// integrity, connectivity of snapshots, and spectral expansion drift.
//
// Usage:
//
//	overlay-sim -n 1024 -d 8 -rounds 200 -join 0.02 -leave 0.02 -mix 10
package main

import (
	"flag"
	"fmt"
	"os"

	"regcast/internal/p2p/overlay"
	"regcast/internal/spectral"
	"regcast/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overlay-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n      = flag.Int("n", 1024, "initial number of peers")
		d      = flag.Int("d", 8, "overlay degree (must be even)")
		rounds = flag.Int("rounds", 200, "churn rounds to simulate")
		join   = flag.Float64("join", 0.02, "per-peer join probability per round")
		leave  = flag.Float64("leave", 0.02, "per-peer leave probability per round")
		mix    = flag.Int("mix", 10, "switch-chain steps per round")
		seed   = flag.Uint64("seed", 1, "random seed")
		every  = flag.Int("report", 50, "report snapshot statistics every k rounds")
	)
	flag.Parse()

	master := xrand.New(*seed)
	ov, err := overlay.New(*n, *d, 4*(*n), master.Split())
	if err != nil {
		return err
	}
	ch, err := overlay.NewChurner(ov, *join, *leave, *mix, master.Split())
	if err != nil {
		return err
	}

	fmt.Printf("overlay: n=%d d=%d, churn join=%.3f leave=%.3f, %d mix steps/round\n",
		*n, *d, *join, *leave, *mix)
	fmt.Println("round  alive  joins  leaves  connected  |λ2|/2√(d−1)")
	for r := 1; r <= *rounds; r++ {
		ch.Step(r)
		if r%*every != 0 && r != *rounds {
			continue
		}
		if err := ov.CheckInvariants(); err != nil {
			return fmt.Errorf("round %d: invariant violated: %w", r, err)
		}
		snap, _, err := ov.Snapshot()
		if err != nil {
			return fmt.Errorf("round %d: snapshot: %w", r, err)
		}
		ratio := 0.0
		connected := snap.IsConnected()
		if connected {
			l2, err := spectral.SecondEigenvalue(snap, 120, master.Split())
			if err != nil {
				return err
			}
			ratio = l2 / spectral.AlonBoppanaBound(*d)
		}
		fmt.Printf("%5d  %5d  %5d  %6d  %9v  %12.3f\n",
			r, ov.AliveCount(), ch.Joins, ch.Leaves, connected, ratio)
	}
	fmt.Println("\nall structural invariants held (exact d-regularity through every join/leave)")
	return nil
}
