// Command overlay-sim stress-tests the d-regular P2P overlay under churn
// and reports its structural health over time: membership, degree
// integrity, connectivity of snapshots, and spectral expansion drift. The
// final snapshot additionally gets a four-choice broadcast check run
// through the regcast facade (so -workers selects the engine exactly as
// in broadcast-sim).
//
// Usage:
//
//	overlay-sim -n 1024 -d 8 -rounds 200 -join 0.02 -leave 0.02 -mix 10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"regcast"
	"regcast/internal/core"
	"regcast/internal/p2p/overlay"
	"regcast/internal/spectral"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overlay-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n      = flag.Int("n", 1024, "initial number of peers")
		d      = flag.Int("d", 8, "overlay degree (must be even)")
		rounds = flag.Int("rounds", 200, "churn rounds to simulate")
		join   = flag.Float64("join", 0.02, "per-peer join probability per round")
		leave  = flag.Float64("leave", 0.02, "per-peer leave probability per round")
		mix    = flag.Int("mix", 10, "switch-chain steps per round")
		every  = flag.Int("report", 50, "report snapshot statistics every k rounds")
		common = regcast.AddCommonFlags(flag.CommandLine)
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		return err
	}

	master := common.Rand()
	ov, err := overlay.New(*n, *d, 4*(*n), master.Split())
	if err != nil {
		return err
	}
	ch, err := overlay.NewChurner(ov, *join, *leave, *mix, master.Split())
	if err != nil {
		return err
	}

	fmt.Printf("overlay: n=%d d=%d, churn join=%.3f leave=%.3f, %d mix steps/round\n",
		*n, *d, *join, *leave, *mix)
	fmt.Println("round  alive  joins  leaves  connected  |λ2|/2√(d−1)")
	var lastSnap *regcast.Graph
	for r := 1; r <= *rounds; r++ {
		ch.Step(r)
		if r%*every != 0 && r != *rounds {
			continue
		}
		if err := ov.CheckInvariants(); err != nil {
			return fmt.Errorf("round %d: invariant violated: %w", r, err)
		}
		snap, _, err := ov.Snapshot()
		if err != nil {
			return fmt.Errorf("round %d: snapshot: %w", r, err)
		}
		lastSnap = snap
		ratio := 0.0
		connected := snap.IsConnected()
		if connected {
			l2, err := spectral.SecondEigenvalue(snap, 120, master.Split())
			if err != nil {
				return err
			}
			ratio = l2 / spectral.AlonBoppanaBound(*d)
		}
		fmt.Printf("%5d  %5d  %5d  %6d  %9v  %12.3f\n",
			r, ov.AliveCount(), ch.Joins, ch.Leaves, connected, ratio)
	}
	fmt.Println("\nall structural invariants held (exact d-regularity through every join/leave)")

	// Functional check: the overlay is only healthy if it still spreads
	// rumours fast, so run the paper's four-choice broadcast on the final
	// snapshot through the facade.
	if lastSnap != nil && lastSnap.NumNodes() > 0 {
		proto, err := core.New(lastSnap.NumNodes(), *d)
		if err != nil {
			return err
		}
		scenario, err := regcast.NewScenario(regcast.Static(lastSnap), proto,
			regcast.WithRNG(master.Split()), regcast.WithStopEarly())
		if err != nil {
			return err
		}
		res, err := regcast.Run(context.Background(), scenario, common.RunnerOptions()...)
		if err != nil {
			return err
		}
		if res.AllInformed {
			fmt.Printf("broadcast check on final snapshot (%s): completed in %d rounds, %d transmissions\n",
				proto.Name(), res.FirstAllInformed, res.Transmissions)
		} else {
			fmt.Printf("broadcast check on final snapshot (%s): incomplete — informed %d/%d after %d rounds\n",
				proto.Name(), res.Informed, res.AliveNodes, res.Rounds)
		}
	}
	return nil
}
