package regcast

import "fmt"

// Scheduler selects an engine family: the synchronous phone-call round
// model the paper's broadcast protocols live in, or the
// pairwise-interaction (population-protocol) model. The two families
// share the deterministic sharded super-step substrate (internal/sched)
// and the batch/sweep layers above; they differ in what a step is and
// what a run computes (informed nodes vs a converged configuration).
// Commands expose the choice through the shared -scheduler flag
// (AddCommonFlags).
type Scheduler int

const (
	// SchedulerRounds is the phone-call round model: synchronous rounds,
	// every node dials per the protocol's schedule (Scenario + Runner.Run).
	SchedulerRounds Scheduler = iota
	// SchedulerInteractions is the population-protocol model: uniform
	// random pairwise interactions (or synchronous ring steps) batched into
	// super-steps (PopulationScenario + Runner.RunPopulation).
	SchedulerInteractions
)

// String implements fmt.Stringer, inverse of ParseScheduler.
func (s Scheduler) String() string {
	switch s {
	case SchedulerRounds:
		return "rounds"
	case SchedulerInteractions:
		return "interactions"
	default:
		return fmt.Sprintf("scheduler(%d)", int(s))
	}
}

// ParseScheduler parses the -scheduler flag values "rounds" and
// "interactions".
func ParseScheduler(s string) (Scheduler, error) {
	switch s {
	case "rounds":
		return SchedulerRounds, nil
	case "interactions":
		return SchedulerInteractions, nil
	default:
		return 0, fmt.Errorf("regcast: unknown scheduler %q (use rounds or interactions)", s)
	}
}
