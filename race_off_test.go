//go:build !race

package regcast_test

// raceEnabled reports whether the race detector instruments this build;
// the twin file race_on_test.go carries the true case. Memory-budget
// assertions skip under race: instrumentation inflates every allocation.
const raceEnabled = false
