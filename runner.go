package regcast

import (
	"context"
	"fmt"
	"time"

	"regcast/internal/phonecall"
	"regcast/internal/runtime"
	"regcast/internal/transport"
)

// Engine selects how a Runner executes a Scenario.
type Engine int

const (
	// EngineSequential is the classic single-stream simulator: one PRNG
	// stream consumed in node order, the trace every historical experiment
	// in EXPERIMENTS.md was recorded with.
	EngineSequential Engine = iota
	// EngineSharded is the sharded parallel simulator: nodes partitioned
	// into shards with independent PRNG streams, bit-identical results for
	// every worker count at a fixed shard count.
	EngineSharded
	// EngineGoroutinePerNode runs one goroutine per node with
	// barrier-synchronised rounds (internal/runtime) — the concurrency
	// stress-test of the protocol logic. Static topologies, uniform
	// dialing only.
	EngineGoroutinePerNode
	// EngineGossipTransport executes the scenario as anti-entropy gossip
	// over in-memory channel mailboxes (internal/transport): each tick,
	// every node contacts Choices() random neighbours with push packets
	// and pull requests. Deployment-shaped, so per-tick metrics are
	// measured (not simulated) and wall-clock dependent.
	EngineGossipTransport
	// EngineTCPTransport is EngineGossipTransport over real loopback TCP
	// sockets with JSON packets on the wire (one connection per packet —
	// the simple, fully observable variant).
	EngineTCPTransport
	// EngineDaemonTransport is the resilient gossip daemon: persistent
	// per-peer TCP connections behind a backoff dial scheduler, bounded
	// per-peer send queues with drop accounting, and expiring-bucket
	// rumour dedup. Result.Transport carries its health snapshot, and
	// WithTransportFaults injects reproducible chaos in front of it.
	EngineDaemonTransport
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineSequential:
		return "sequential"
	case EngineSharded:
		return "sharded"
	case EngineGoroutinePerNode:
		return "goroutine-per-node"
	case EngineGossipTransport:
		return "gossip-transport"
	case EngineTCPTransport:
		return "tcp-transport"
	case EngineDaemonTransport:
		return "daemon-transport"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// Runner executes Scenarios on a chosen engine. The zero value runs the
// classic sequential simulator; construct variants with NewRunner. Runners
// are stateless values — one Runner may run many Scenarios, concurrently
// if desired (a Scenario built with WithRNG is the exception: its stream
// is unsynchronised, so never run that one scenario concurrently with
// itself).
type Runner struct {
	engine     Engine
	workers    int
	shards     int
	mailbox    int
	noFastPath bool
	// noPopFastPath disables only the population engine's fast path;
	// noFastPath disables every engine's.
	noPopFastPath bool
	faults        *transport.FaultConfig
}

// RunnerOption customises a Runner.
type RunnerOption func(*Runner)

// WithEngine selects the execution engine explicitly.
func WithEngine(e Engine) RunnerOption { return func(r *Runner) { r.engine = e } }

// WithWorkers selects between the two simulation engines by worker count,
// mirroring the commands' -workers flag: 0 is the classic sequential
// engine, WorkersAuto (-1) the sharded engine with GOMAXPROCS workers, and
// any n >= 1 the sharded engine with n workers. Apply WithEngine after it
// to pick a non-simulation engine instead.
func WithWorkers(n int) RunnerOption {
	return func(r *Runner) {
		r.workers = n
		if n == 0 {
			r.engine = EngineSequential
		} else {
			r.engine = EngineSharded
		}
	}
}

// WithShards fixes the sharded engine's partition count (default
// DefaultShards). The shard count — not the worker count — determines the
// trace, so pin it when comparing runs.
func WithShards(n int) RunnerOption { return func(r *Runner) { r.shards = n } }

// WithMailbox sets the per-node mailbox capacity of the transport engines
// (default 1024 packets).
func WithMailbox(n int) RunnerOption { return func(r *Runner) { r.mailbox = n } }

// WithoutFastPath forces the simulation engines onto the reference
// interface-dispatch path even on a frozen Static topology. The CSR fast
// path is bit-identical to the reference path (golden tests pin this), so
// the switch exists for cross-validation and benchmarking, not as a
// correctness escape hatch.
func WithoutFastPath() RunnerOption { return func(r *Runner) { r.noFastPath = true } }

// WithoutPopulationFastPath forces population scenarios onto the
// reference interface-dispatch path (per-pair Transition calls, O(n)
// measure scans, no compiled tables) while leaving the phone-call
// engines' fast path alone. Like WithoutFastPath, it exists for
// cross-validation and benchmarking — the population fast path is
// pinned bit-identical to the reference path, so results never depend
// on it.
func WithoutPopulationFastPath() RunnerOption {
	return func(r *Runner) { r.noPopFastPath = true }
}

// NewRunner builds a Runner; with no options it runs the classic
// sequential engine.
func NewRunner(opts ...RunnerOption) Runner {
	var r Runner
	for _, opt := range opts {
		opt(&r)
	}
	return r
}

// Result summarises a completed run, independent of the engine that
// produced it.
type Result struct {
	// Engine records which engine executed the run.
	Engine Engine
	// Rounds is the number of rounds (transport engines: ticks) executed.
	Rounds int
	// Informed is the number of informed alive nodes at the end.
	Informed int
	// AliveNodes is the number of alive nodes at the end.
	AliveNodes int
	// AllInformed reports whether every alive node was informed at the end.
	AllInformed bool
	// FirstAllInformed is the earliest round after which every alive node
	// was informed, or -1 if that never happened.
	FirstAllInformed int
	// Transmissions counts message transmissions (transport engines:
	// packets handed to the transport).
	Transmissions int64
	// ChannelsDialed counts the channel dials the model mandates.
	ChannelsDialed int64
	// InformedAt[v] is the round in which v first received the message
	// (Uninformed if never).
	InformedAt []int32
	// PerRound holds per-round metrics when the scenario was built with
	// WithRecordRounds.
	PerRound []RoundStats
	// Transport is the transport engine's health snapshot (nil for the
	// simulation engines): dials, retries, drop accounting, dedup hits,
	// per-peer state, and — under WithTransportFaults — the fault ledger.
	Transport *TransportHealth
}

// AnyScenario is the sealed union of the scenario kinds a Runner can
// execute: Scenario (phone-call broadcast) and PopulationScenario
// (pairwise-interaction protocols), by value or pointer. It exists so
// Runner.Run is the single entry point for every workload — the
// deprecated RunPopulation pair survives as thin wrappers. The interface
// is sealed (the marker method is unexported); external types cannot
// implement it, which is what lets Run's type switch be exhaustive.
type AnyScenario interface {
	anyScenario()
}

// Run executes the scenario with default runner options — the sequential
// engine unless opts say otherwise.
func Run(ctx context.Context, s AnyScenario, opts ...RunnerOption) (Result, error) {
	return NewRunner(opts...).Run(ctx, s)
}

// Run executes one scenario of any kind. Cancelling ctx stops the run at
// the next round boundary and returns ctx.Err() alongside the partial
// result accumulated so far.
//
// A PopulationScenario's PopulationResult is folded into the shared
// Result shape with the same fixed mapping PopulationBatch uses: Rounds
// is the super-steps executed, ChannelsDialed the total interactions
// (the work analogue of the dial budget), AllInformed the converged
// flag; on convergence Informed is N, FirstAllInformed the convergence
// super-step and Transmissions the interactions to convergence,
// otherwise Informed is 0, FirstAllInformed -1 and Transmissions the
// total (budget-censored) interactions. Programs that need the
// population-specific fields (Measure, final states) keep using
// RunPopulation.
func (r Runner) Run(ctx context.Context, s AnyScenario) (Result, error) {
	switch sc := s.(type) {
	case Scenario:
		return r.runScenario(ctx, sc)
	case *Scenario:
		return r.runScenario(ctx, *sc)
	case PopulationScenario:
		pres, err := r.runPopulation(ctx, sc)
		if err != nil {
			return Result{}, err
		}
		return populationResult(r.engine, sc.N, pres), nil
	case *PopulationScenario:
		pres, err := r.runPopulation(ctx, *sc)
		if err != nil {
			return Result{}, err
		}
		return populationResult(r.engine, sc.N, pres), nil
	case nil:
		return Result{}, fmt.Errorf("regcast: nil scenario")
	default:
		// Unreachable while AnyScenario stays sealed.
		return Result{}, fmt.Errorf("regcast: unsupported scenario kind %T", s)
	}
}

// populationResult maps a PopulationResult onto the engine-independent
// Result shape (see Runner.Run for the field-by-field contract).
func populationResult(engine Engine, n int, pres PopulationResult) Result {
	res := Result{
		Engine:           engine,
		Rounds:           pres.Steps,
		AliveNodes:       n,
		AllInformed:      pres.Converged,
		FirstAllInformed: -1,
		Transmissions:    pres.Interactions,
		ChannelsDialed:   pres.Interactions,
	}
	if pres.Converged {
		res.Informed = n
		res.FirstAllInformed = pres.ConvergedAt
		res.Transmissions = pres.ConvergedInteractions
	}
	return res
}

// runScenario executes one phone-call scenario.
func (r Runner) runScenario(ctx context.Context, s Scenario) (Result, error) {
	if err := s.validate(); err != nil {
		return Result{}, err
	}
	if r.workers < WorkersAuto {
		return Result{}, fmt.Errorf("regcast: workers %d invalid (use WorkersAuto, 0 or a positive count)", r.workers)
	}
	// A spec scenario builds its topology now, from its own stream (the
	// WithRNG stream or the seed-derived one), and the run continues on
	// that same stream — the master.Split() idiom with the splits done by
	// the spec. Batch replications bypass this by materialising per
	// replication themselves.
	if s.topo == nil {
		var err error
		if s, err = s.materialize(0, s.runRNG()); err != nil {
			return Result{}, err
		}
	}
	switch r.engine {
	case EngineSequential, EngineSharded:
		if r.faults != nil {
			return Result{}, fmt.Errorf("regcast: WithTransportFaults requires a transport engine, not %v", r.engine)
		}
		return r.runSimulation(ctx, s)
	case EngineGoroutinePerNode:
		if r.faults != nil {
			return Result{}, fmt.Errorf("regcast: WithTransportFaults requires a transport engine, not %v", r.engine)
		}
		return r.runGoroutinePerNode(ctx, s)
	case EngineGossipTransport, EngineTCPTransport, EngineDaemonTransport:
		return r.runTransport(ctx, s)
	default:
		return Result{}, fmt.Errorf("regcast: unknown engine %v", r.engine)
	}
}

// haltFor adapts ctx cancellation to the engines' per-round Halt poll.
func haltFor(ctx context.Context) func() bool {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	return func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
}

// ctxErr reports the cancellation error to attach to a partial result.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// runSimulation drives the sequential or sharded phone-call engine.
func (r Runner) runSimulation(ctx context.Context, s Scenario) (Result, error) {
	workers := 0
	if r.engine == EngineSharded {
		workers = r.workers
		if workers == 0 {
			workers = WorkersAuto
		}
	}
	cfg := phonecall.Config{
		Topology:           s.topo,
		Protocol:           s.proto,
		Source:             s.source,
		RNG:                s.runRNG(),
		ChannelFailureProb: s.channelFailure,
		MessageLossProb:    s.messageLoss,
		GeometricFaults:    s.geometricFaults,
		DialStrategy:       s.dial,
		AvoidRecent:        s.avoidRecent,
		RecordRounds:       s.recordRounds,
		TrackEdgeUse:       s.trackEdgeUse,
		StopEarly:          s.stopEarly,
		Workers:            workers,
		Shards:             r.shards,
		DisableFastPath:    r.noFastPath,
		Observer:           s.observer(),
		Halt:               haltFor(ctx),
	}
	res, err := phonecall.Run(cfg)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Engine:           r.engine,
		Rounds:           res.Rounds,
		Informed:         res.Informed,
		AliveNodes:       res.AliveNodes,
		AllInformed:      res.AllInformed,
		FirstAllInformed: res.FirstAllInformed,
		Transmissions:    res.Transmissions,
		ChannelsDialed:   res.ChannelsDialed,
		InformedAt:       res.InformedAt,
		PerRound:         res.PerRound,
	}, ctxErr(ctx)
}

// runGoroutinePerNode drives internal/runtime: one goroutine per node.
func (r Runner) runGoroutinePerNode(ctx context.Context, s Scenario) (Result, error) {
	if s.dynamic() {
		return Result{}, fmt.Errorf("regcast: the %v engine requires a static topology (churn needs a simulation engine)", r.engine)
	}
	if s.dial != DialUniform {
		return Result{}, fmt.Errorf("regcast: the %v engine supports only DialUniform", r.engine)
	}
	if s.avoidRecent > 0 {
		return Result{}, fmt.Errorf("regcast: the %v engine does not implement dial memory (WithAvoidRecent)", r.engine)
	}
	if s.trackEdgeUse {
		return Result{}, fmt.Errorf("regcast: the %v engine does not implement the edge-use census (WithTrackEdgeUse)", r.engine)
	}
	if s.geometricFaults {
		return Result{}, fmt.Errorf("regcast: the %v engine does not implement geometric fault skipping (WithGeometricFaults)", r.engine)
	}
	obs := s.observer()
	var collector *roundCollector
	if s.recordRounds {
		// The concurrent runtime has no trace retention of its own; feed
		// Result.PerRound from the same streaming path observers use.
		collector = &roundCollector{}
		if obs == nil {
			obs = collector
		} else {
			obs = multiObserver{collector, obs}
		}
	}
	res, err := runtime.Run(runtime.Config{
		Topology:           s.topo,
		Protocol:           s.proto,
		Source:             s.source,
		Seed:               s.runSeed(),
		ChannelFailureProb: s.channelFailure,
		MessageLossProb:    s.messageLoss,
		StopEarly:          s.stopEarly,
		Observer:           obs,
		Halt:               haltFor(ctx),
	})
	if err != nil {
		return Result{}, err
	}
	n := s.topo.NumNodes()
	out := Result{
		Engine:           r.engine,
		Rounds:           res.Rounds,
		Informed:         res.Informed,
		AliveNodes:       n,
		AllInformed:      res.AllInformed,
		FirstAllInformed: res.FirstAllInformed,
		Transmissions:    res.Transmissions,
		ChannelsDialed:   res.ChannelsDialed,
		InformedAt:       res.InformedAt,
	}
	if collector != nil {
		out.PerRound = collector.rounds
	}
	return out, ctxErr(ctx)
}

// runTransport executes the scenario as anti-entropy gossip over a real
// transport. The protocol contributes its fan-out (Choices) and tick
// budget (Horizon); the push/pull schedule itself is the transport
// cluster's continuous anti-entropy, so traces are wall-clock dependent
// and not reproducible from the seed alone.
func (r Runner) runTransport(ctx context.Context, s Scenario) (Result, error) {
	st, ok := s.topo.(phonecall.Static)
	if !ok {
		return Result{}, fmt.Errorf("regcast: the %v engine requires a Static topology", r.engine)
	}
	if s.dial != DialUniform || s.avoidRecent > 0 || s.trackEdgeUse {
		return Result{}, fmt.Errorf("regcast: the %v engine supports only DialUniform without dial memory or edge tracking", r.engine)
	}
	if s.channelFailure != 0 || s.messageLoss != 0 {
		return Result{}, fmt.Errorf("regcast: the %v engine does not simulate channel failure or message loss", r.engine)
	}
	g := st.G
	n := g.NumNodes()
	mailbox := r.mailbox
	if mailbox == 0 {
		mailbox = 1024
	}

	var (
		tr  transport.Transport
		err error
	)
	switch r.engine {
	case EngineTCPTransport:
		tr, err = transport.NewTCP(n, mailbox)
	case EngineDaemonTransport:
		tr, err = transport.NewDaemon(transport.DaemonConfig{
			Nodes:   n,
			Mailbox: mailbox,
			Seed:    s.runSeed(),
		})
	default:
		tr, err = transport.NewInMem(n, mailbox)
	}
	if err != nil {
		return Result{}, err
	}
	var plan *transport.FaultPlan
	if r.faults != nil {
		plan, err = transport.NewFaultPlan(tr, *r.faults)
		if err != nil {
			tr.Close()
			return Result{}, err
		}
		tr = plan
	}
	cluster, err := transport.NewCluster(g, tr, s.proto.Choices(), s.runSeed())
	if err != nil {
		tr.Close()
		return Result{}, err
	}
	defer cluster.Close()

	const rumorID = "regcast/scenario"
	if err := cluster.Insert(s.source, transport.Rumor{ID: rumorID, Payload: "scenario broadcast"}); err != nil {
		return Result{}, err
	}

	obs := s.observer()
	informedAt := make([]int32, n)
	for v := range informedAt {
		informedAt[v] = Uninformed
	}
	informedAt[s.source] = 0
	if obs != nil {
		obs.OnInformed(s.source, 0)
	}

	budget := phonecall.DialBudget(s.topo, s.proto.Choices())

	res := Result{Engine: r.engine, FirstAllInformed: -1, AliveNodes: n}
	informed := 1
	var lastSent int64
	halt := haltFor(ctx)
	for t := 1; t <= s.proto.Horizon(); t++ {
		if halt != nil && halt() {
			break
		}
		if plan != nil {
			// One tick = one fault epoch: partition and crash windows in
			// the plan are tick ranges.
			plan.AdvanceEpoch()
		}
		if err := cluster.Tick(); err != nil {
			return Result{}, err
		}
		waitQuiescent(cluster, rumorID)

		newly := 0
		for v := 0; v < n; v++ {
			if informedAt[v] == Uninformed && cluster.Node(v).Knows(rumorID) {
				informedAt[v] = int32(t)
				if obs != nil {
					obs.OnInformed(v, t)
				}
				newly++
			}
		}
		informed += newly
		sent := cluster.PacketsSent()
		rm := RoundStats{
			Round:         t,
			NewlyInformed: newly,
			Informed:      informed,
			Transmissions: sent - lastSent,
			ChannelsDial:  budget,
		}
		lastSent = sent
		if obs != nil {
			obs.OnRound(rm)
		}
		if s.recordRounds {
			res.PerRound = append(res.PerRound, rm)
		}
		res.Rounds = t
		res.ChannelsDialed += budget
		if informed == n {
			res.FirstAllInformed = t
			break // ticks cost wall-clock time; never run an empty tail
		}
	}
	res.Informed = informed
	res.AllInformed = informed == n
	res.Transmissions = cluster.PacketsSent()
	res.InformedAt = informedAt
	if hr, ok := tr.(transport.HealthReporter); ok {
		// Close first (idempotent; the deferred Close becomes a no-op) so
		// the snapshot is a quiescent, fully-accounted ledger.
		_ = cluster.Close()
		h := hr.Health()
		res.Transport = &h
	}
	return res, ctxErr(ctx)
}

// waitQuiescent lets a tick's packets drain: transports deliver
// asynchronously, so the spread count is only meaningful once it stops
// moving. Returns once (knowers, packets) is stable for two consecutive
// polls or the per-tick deadline passes.
func waitQuiescent(c *transport.Cluster, rumorID string) {
	deadline := time.Now().Add(time.Second)
	prevKnow, prevSent := -1, int64(-1)
	for time.Now().Before(deadline) {
		know := c.CountKnowing(rumorID)
		sent := c.PacketsSent()
		if know == prevKnow && sent == prevSent {
			return
		}
		prevKnow, prevSent = know, sent
		time.Sleep(2 * time.Millisecond)
	}
}
