package regcast

import (
	"regcast/internal/core"
	"regcast/internal/graph"
	"regcast/internal/phonecall"
	"regcast/internal/transport"
	"regcast/internal/xrand"
)

// The facade re-exports the simulation model's core types as aliases, so
// programs build scenarios, implement protocols, and consume results using
// only the regcast import path. The aliased types are identical to the
// internal ones — a Protocol written against the facade runs unchanged on
// every engine.
type (
	// Protocol is a strictly oblivious broadcast schedule; see the
	// documentation on phonecall.Protocol for the model's ground rules.
	Protocol = phonecall.Protocol
	// PullFree is the optional marker for protocols that never pull.
	PullFree = phonecall.PullFree
	// Topology is the engines' view of the network.
	Topology = phonecall.Topology
	// Stepper marks topologies that churn between rounds.
	Stepper = phonecall.Stepper
	// CSRViewer marks topologies that expose an epoch-stamped CSR view —
	// the contract behind the engines' zero-interface fast path. Static
	// graphs and OverlaySpec topologies implement it; custom topologies
	// can too (see the documentation on phonecall.CSRViewer for the
	// epoch and liveness-bitset rules).
	CSRViewer = phonecall.CSRViewer
	// ImplicitViewer marks topologies with computed adjacency — the second
	// viewer contract behind the fast path, for families whose neighbours
	// are arithmetic (hypercube, torus, seeded streaming graphs) so no
	// adjacency array is ever built. See phonecall.ImplicitViewer for the
	// epoch and liveness-bitset rules, which mirror CSRViewer exactly.
	ImplicitViewer = phonecall.ImplicitViewer
	// ImplicitNeighbors is the computable-adjacency surface consumed by
	// ImplicitViewer: Degree and NeighborAt arithmetic that must enumerate
	// exactly what a materialised CSR row would hold.
	ImplicitNeighbors = phonecall.ImplicitNeighbors
	// DialStrategy selects the neighbour-selection discipline.
	DialStrategy = phonecall.DialStrategy
	// RoundStats carries the per-round metrics streamed to observers and
	// recorded in Result.PerRound.
	RoundStats = phonecall.RoundMetrics
	// Observer receives streaming per-round callbacks; see the
	// documentation on phonecall.Observer for the ordering guarantees.
	Observer = phonecall.Observer
	// Graph is an immutable undirected multigraph (see internal/graph for
	// generators beyond RandomRegular).
	Graph = graph.Graph
	// Rand is the deterministic splittable PRNG that drives every engine.
	Rand = xrand.Rand
	// PairDraw is one pre-drawn population interaction (ordered pair plus
	// coin word) — the record type of the population engine's batched draw
	// path and of BatchPairProtocol kernels.
	PairDraw = xrand.PairDraw
)

const (
	// DialUniform is the (modified) random phone call model's discipline: k
	// distinct neighbours chosen uniformly every round.
	DialUniform = phonecall.DialUniform
	// DialQuasirandom is the quasirandom rumor-spreading discipline of
	// Doerr, Friedrich & Sauerwald: successive neighbour-list entries from
	// a random start. Push-only protocols only; NewScenario enforces this.
	DialQuasirandom = phonecall.DialQuasirandom
	// Uninformed is the sentinel receipt round in Result.InformedAt for
	// nodes that never received the message.
	Uninformed = phonecall.Uninformed
	// WorkersAuto selects GOMAXPROCS workers for the sharded engine.
	WorkersAuto = phonecall.WorkersAuto
	// DefaultShards is the sharded engine's default partition count; the
	// shard count (not the worker count) determines the trace.
	DefaultShards = phonecall.DefaultShards
)

// ErrTransportClosed is the sentinel the transport engines' Send returns
// after shutdown (test with errors.Is). Chaos drops are NOT errors —
// gossip tolerates loss, and the daemon degrades gracefully — so this is
// the only send failure a transport-engine run surfaces.
var ErrTransportClosed = transport.ErrClosed

// NewRand returns a deterministic PRNG seeded with seed. Split it to derive
// independent streams (topology generation vs. the run itself).
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

// NewRegularGraph generates a simple random d-regular graph on n nodes —
// the paper's standard topology — from the given stream.
func NewRegularGraph(n, d int, rng *Rand) (*Graph, error) {
	return graph.RandomRegular(n, d, rng)
}

// Static wraps an immutable graph as a Topology.
func Static(g *Graph) Topology { return phonecall.NewStatic(g) }

// ImplicitTopology wraps a computed-adjacency graph family as a
// Topology, the algebraic twin of Static: every node alive, adjacency
// evaluated per draw through the fast path's ImplicitViewer contract,
// no neighbour array ever built. NeighborAt(v, i) for i in
// [0, Degree(v)) must enumerate exactly the multiset a materialised CSR
// row would hold, in the same order, must be goroutine-safe, and must
// not draw shared randomness at query time. The built-in implicit specs
// (HypercubeSpec, TorusSpec, GnpStreamSpec, RegularStreamSpec) route
// through this same wrapper.
func ImplicitTopology(f interface {
	NumNodes() int
	ImplicitNeighbors
}) Topology {
	return phonecall.NewImplicit(f)
}

// NewFourChoice returns the paper's headline protocol for an n-node
// d-regular network: four distinct dials per round on a phased
// push/pull schedule, O(log n) rounds and O(n·log log n) transmissions.
// The variant (Algorithm 1 or 2) is chosen from d as in internal/core;
// use that package directly for explicit variants and ablation options.
func NewFourChoice(n, d int) (Protocol, error) { return core.New(n, d) }
