package regcast_test

import (
	"context"
	"strings"
	"testing"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/core"
)

// TestRunnerWithoutFastPath pins the facade's two-path engine contract:
// the CSR fast path (the default on Static topologies) and the reference
// interface path produce bit-identical results, so forcing the reference
// path must reproduce the exact golden traces of the fast path — on both
// simulation engines.
func TestRunnerWithoutFastPath(t *testing.T) {
	g := goldenGraph(t)
	four, err := core.New(2048, 8)
	if err != nil {
		t.Fatal(err)
	}
	scenario, err := regcast.NewScenario(regcast.Static(g), four, regcast.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := regcast.Run(context.Background(), scenario, regcast.WithoutFastPath())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "seq/fourchoice/no-fast-path", res, golden{46, 23, 2048, 32720, 376832, 0xc5537e0064da52f0})

	res, err = regcast.Run(context.Background(), scenario,
		regcast.WithWorkers(2), regcast.WithShards(16), regcast.WithoutFastPath())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sharded16/fourchoice/no-fast-path", res, golden{46, 23, 2048, 32720, 376832, 0xd6df1d4371527f14})
}

// TestGeometricFaultsThroughFacade covers the compatibility switch end to
// end: deterministic and engine-independent of worker count, different
// from the Bernoulli-mode trace, and rejected by the goroutine-per-node
// engine (which has no geometric sampler).
func TestGeometricFaultsThroughFacade(t *testing.T) {
	g, err := regcast.NewRegularGraph(512, 8, regcast.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	pp, err := baseline.NewPushPull(512, 2)
	if err != nil {
		t.Fatal(err)
	}
	build := func(opts ...regcast.ScenarioOption) regcast.Scenario {
		opts = append([]regcast.ScenarioOption{
			regcast.WithSeed(11),
			regcast.WithChannelFailure(0.1),
			regcast.WithMessageLoss(0.2),
		}, opts...)
		s, err := regcast.NewScenario(regcast.Static(g), pp, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	geom := build(regcast.WithGeometricFaults())

	seq, err := regcast.Run(context.Background(), geom)
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := regcast.Run(context.Background(), geom)
	if err != nil {
		t.Fatal(err)
	}
	if hashTrace(seq.InformedAt) != hashTrace(seq2.InformedAt) || seq.Transmissions != seq2.Transmissions {
		t.Error("geometric-fault run is not reproducible from the seed")
	}

	w1, err := regcast.Run(context.Background(), geom, regcast.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	w4, err := regcast.Run(context.Background(), geom, regcast.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if hashTrace(w1.InformedAt) != hashTrace(w4.InformedAt) || w1.Transmissions != w4.Transmissions {
		t.Error("geometric-fault sharded run depends on the worker count")
	}

	bern, err := regcast.Run(context.Background(), build())
	if err != nil {
		t.Fatal(err)
	}
	if hashTrace(bern.InformedAt) == hashTrace(seq.InformedAt) && bern.Transmissions == seq.Transmissions {
		t.Error("geometric mode reproduced the Bernoulli trace; the switch is not switching anything")
	}

	if _, err := regcast.Run(context.Background(), geom,
		regcast.WithEngine(regcast.EngineGoroutinePerNode)); err == nil ||
		!strings.Contains(err.Error(), "geometric") {
		t.Errorf("goroutine engine accepted WithGeometricFaults (err = %v)", err)
	}
}
