package regcast

import (
	"context"
	"encoding/json"
	"flag"
	"reflect"
	"testing"
)

// TestRunPopulationWorkerIndependent pins the facade-level bit-identity
// guarantee: RunPopulation produces the same result for the sequential
// driver (Workers 0), the one-worker sharded driver, and a four-worker
// sharded driver.
func TestRunPopulationWorkerIndependent(t *testing.T) {
	le, err := NewLeaderElection(250)
	if err != nil {
		t.Fatal(err)
	}
	sc := PopulationScenario{N: 250, Pair: le, Init: InitAllLeaders, Seed: 9}
	var want PopulationResult
	for i, workers := range []int{0, 1, 4} {
		res, err := RunPopulation(context.Background(), sc, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res
			if !res.Converged {
				t.Fatalf("run did not converge in %d steps", res.Steps)
			}
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("workers=%d result differs from workers=0:\n got %+v\nwant %+v", workers, res, want)
		}
	}
}

// TestPopulationBatchReplicationWorkerIndependent pins the batch-level
// guarantee: the JSON-serialised aggregate is byte-identical for every
// ReplicationWorkers value.
func TestPopulationBatchReplicationWorkerIndependent(t *testing.T) {
	le, err := NewLeaderElection(120)
	if err != nil {
		t.Fatal(err)
	}
	base := PopulationBatch{
		Scenario:     PopulationScenario{N: 120, Pair: le, Init: InitLeaderless, Seed: 4},
		Replications: 8,
	}
	var want []byte
	for i, workers := range []int{0, 1, 4} {
		b := base
		b.ReplicationWorkers = workers
		res, err := b.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = buf
			if res.Completed == 0 {
				t.Fatal("no replication converged")
			}
			continue
		}
		if string(buf) != string(want) {
			t.Fatalf("ReplicationWorkers=%d aggregate differs:\n got %s\nwant %s", workers, buf, want)
		}
	}
}

func TestPopulationBatchMetricMapping(t *testing.T) {
	le, err := NewLeaderElection(100)
	if err != nil {
		t.Fatal(err)
	}
	b := PopulationBatch{
		Scenario:     PopulationScenario{N: 100, Pair: le, Init: InitAllLeaders, Seed: 2},
		Replications: 6,
		KeepResults:  true,
	}
	res, kept, err := b.RunKeeping(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 6 {
		t.Fatalf("kept %d results, want 6", len(kept))
	}
	conv := 0
	for _, r := range kept {
		if r.Converged {
			conv++
		}
	}
	if res.Completed != conv {
		t.Fatalf("Completed %d, want converged count %d", res.Completed, conv)
	}
	if res.InformedFrac.Mean != float64(conv)/6 {
		t.Fatalf("InformedFrac mean %v, want convergence rate %v", res.InformedFrac.Mean, float64(conv)/6)
	}
	if res.Rounds.N != conv {
		t.Fatalf("Rounds aggregated %d runs, want converged count %d", res.Rounds.N, conv)
	}
}

func TestPopulationBatchValidation(t *testing.T) {
	le, _ := NewLeaderElection(16)
	sc := PopulationScenario{N: 16, Pair: le, Seed: 1}
	for name, b := range map[string]PopulationBatch{
		"no-reps":  {Scenario: sc},
		"observer": {Scenario: PopulationScenario{N: 16, Pair: le, Observer: observerStub{}}, Replications: 1},
		"rng":      {Scenario: PopulationScenario{N: 16, Pair: le, RNG: NewRand(1)}, Replications: 1},
	} {
		if _, err := b.Run(context.Background()); err == nil {
			t.Errorf("%s: Run accepted an invalid batch", name)
		}
	}
}

type observerStub struct{}

func (observerStub) OnSuperStep(SuperStepStats) {}

// TestSweepBuildPopulation runs a tiny population sweep end-to-end and
// checks the report carries the population cells in the standard schema.
func TestSweepBuildPopulation(t *testing.T) {
	sw := Sweep{
		Name: "population-test",
		Seed: 5,
		Axes: []Axis{Vals("n", 60, 120)},
		BuildPopulation: func(p Point) (PopulationBatch, error) {
			n := p.Value("n").(int)
			le, err := NewLeaderElection(n)
			if err != nil {
				return PopulationBatch{}, err
			}
			return PopulationBatch{
				Scenario: PopulationScenario{N: n, Pair: le, Init: InitAllLeaders, Seed: p.Seed},
			}, nil
		},
		Replications: 4,
	}
	rep, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, ReportSchema)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Replications != 4 {
			t.Fatalf("cell %s ran %d replications, want 4", c.Label, c.Replications)
		}
		if c.Completed == 0 {
			t.Fatalf("cell %s: no replication converged", c.Label)
		}
	}

	// Exactly one of Build and BuildPopulation must be set.
	if _, err := (Sweep{Name: "neither", Axes: sw.Axes}).Run(context.Background()); err == nil {
		t.Error("Sweep.Run accepted a sweep with no build function")
	}
	both := sw
	both.Build = func(p Point) (Batch, error) { return Batch{}, nil }
	if _, err := both.Run(context.Background()); err == nil {
		t.Error("Sweep.Run accepted a sweep with both build functions")
	}
}

func TestSchedulerFlag(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want Scheduler
		ok   bool
	}{
		{nil, SchedulerRounds, true},
		{[]string{"-scheduler", "rounds"}, SchedulerRounds, true},
		{[]string{"-scheduler", "interactions"}, SchedulerInteractions, true},
		{[]string{"-scheduler", "nope"}, 0, false},
	} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		f := AddCommonFlags(fs)
		if err := fs.Parse(tc.args); err != nil {
			t.Fatal(err)
		}
		err := f.Validate()
		if tc.ok != (err == nil) {
			t.Fatalf("args %v: Validate error %v, want ok=%v", tc.args, err, tc.ok)
		}
		if tc.ok && f.Scheduler() != tc.want {
			t.Fatalf("args %v: scheduler %v, want %v", tc.args, f.Scheduler(), tc.want)
		}
	}
	if s, err := ParseScheduler("interactions"); err != nil || s != SchedulerInteractions {
		t.Fatalf("ParseScheduler(interactions) = %v, %v", s, err)
	}
	if got := SchedulerInteractions.String(); got != "interactions" {
		t.Fatalf("String() = %q", got)
	}
}

// TestPopFastPathFlag pins the -pop-fastpath wiring: the default Runner
// keeps the population fast path on, and -pop-fastpath=false routes
// WithoutPopulationFastPath into RunnerOptions.
func TestPopFastPathFlag(t *testing.T) {
	for _, tc := range []struct {
		args    []string
		disable bool
	}{
		{nil, false},
		{[]string{"-pop-fastpath=true"}, false},
		{[]string{"-pop-fastpath=false"}, true},
	} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		f := AddCommonFlags(fs)
		if err := fs.Parse(tc.args); err != nil {
			t.Fatal(err)
		}
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		r := f.Runner()
		if r.noPopFastPath != tc.disable {
			t.Fatalf("args %v: noPopFastPath=%v, want %v", tc.args, r.noPopFastPath, tc.disable)
		}
	}
}
