package regcast_test

import (
	"fmt"
	"sync"
	"testing"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/core"
	"regcast/internal/graph"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// Scale benchmarks for the sharded parallel phone-call engine
// (internal/phonecall/parallel.go). Worker count never changes the
// simulated trace — only the wall-clock time — so the workers=1 entry is
// the exact sequential baseline for the speedup ratios recorded in
// EXPERIMENTS.md. Run with:
//
//	go test -bench BenchmarkSharded -benchtime 3x .
//
// All scale benchmarks skip themselves under -short: the CI benchmark
// smoke must never build a 100k- or 1M-node graph (machine-readable CI
// perf numbers come from cmd/regcast-bench's small grid instead).

var (
	benchGraphMu    sync.Mutex
	benchGraphCache = map[[2]int]*graph.Graph{}
)

// benchGraph builds (and memoises) a random d-regular graph.
func benchGraph(b *testing.B, n, d int) *graph.Graph {
	b.Helper()
	benchGraphMu.Lock()
	defer benchGraphMu.Unlock()
	key := [2]int{n, d}
	if g, ok := benchGraphCache[key]; ok {
		return g
	}
	g, err := graph.RandomRegular(n, d, xrand.New(uint64(n)*31+uint64(d)))
	if err != nil {
		b.Fatal(err)
	}
	benchGraphCache[key] = g
	return g
}

// benchSizes returns the node counts to sweep, skipping the whole scale
// suite under -short (CI smoke): even the smallest scale size is far too
// heavy for a smoke run.
func benchSizes(b *testing.B) []int {
	b.Helper()
	if testing.Short() {
		b.Skip("scale benchmarks skipped under -short (100k/1M-node sweeps)")
	}
	return []int{100_000, 1_000_000}
}

// BenchmarkShardedPush sweeps worker counts on the classic push schedule
// — the heaviest steady-state workload (every informed node transmits
// every round) and the one used for the EXPERIMENTS.md speedup table.
func BenchmarkShardedPush(b *testing.B) {
	const d = 16
	for _, n := range benchSizes(b) {
		g := benchGraph(b, n, d)
		push, err := baseline.NewPush(n, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := phonecall.Run(phonecall.Config{
						Topology:  phonecall.NewStatic(g),
						Protocol:  push,
						RNG:       xrand.New(uint64(i) + 1),
						StopEarly: true,
						Workers:   workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					if !res.AllInformed {
						b.Fatalf("push incomplete: %d/%d", res.Informed, res.AliveNodes)
					}
				}
			})
		}
	}
}

// BenchmarkShardedFourChoice runs the paper's Algorithm 1 at scale on the
// sharded engine — the O(n·log log n) workload whose Phase 2/3 rounds are
// the parallel section's best case (every node dials four channels).
func BenchmarkShardedFourChoice(b *testing.B) {
	const d = 16
	for _, n := range benchSizes(b) {
		g := benchGraph(b, n, d)
		proto, err := core.New(n, d)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := phonecall.Run(phonecall.Config{
						Topology: phonecall.NewStatic(g),
						Protocol: proto,
						RNG:      xrand.New(uint64(i) + 1),
						Workers:  workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					if !res.AllInformed {
						b.Fatalf("four-choice incomplete: %d/%d", res.Informed, res.AliveNodes)
					}
				}
			})
		}
	}
}

// BenchmarkChurnBroadcast100k measures the epoch-aware fast path on the
// paper's headline setting at scale: a 100k-peer maintained overlay with
// per-round join/leave churn, broadcast with Algorithm 1. "csr" is the
// default path — the overlay's epoch-stamped CSR view keeps every round
// on the zero-interface loops, refreshed only when a churn step bumps
// the epoch — and "interface" forces the reference dispatch path that
// churn runs were permanently stuck on before the CSR-view contract.
// Both paths produce bit-identical traces (TestFastPathGoldenChurn), so
// the ratio is pure engine overhead; the EXPERIMENTS.md churn table
// records it. Each iteration rebuilds the overlay outside the timer
// (churn mutates it).
func BenchmarkChurnBroadcast100k(b *testing.B) {
	if testing.Short() {
		b.Skip("scale benchmarks skipped under -short (100k-node overlay)")
	}
	const n, d = 100_000, 8
	const churnRate = 0.001
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		b.Fatal(err)
	}
	for _, path := range []string{"csr", "interface"} {
		for _, workers := range []int{0, 1} {
			b.Run(fmt.Sprintf("path=%s/workers=%d", path, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					master := xrand.New(uint64(i) + 41)
					topo, err := regcast.OverlaySpec{
						N: n, D: d, Headroom: n / 4,
						JoinProb: churnRate, LeaveProb: churnRate, MixSteps: 5,
					}.Build(0, master)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					res, err := phonecall.Run(phonecall.Config{
						Topology:        topo,
						Protocol:        proto,
						RNG:             master.Split(),
						Workers:         workers,
						DisableFastPath: path == "interface",
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Informed < n/2 {
						b.Fatalf("implausible churn broadcast: %d/%d informed", res.Informed, res.AliveNodes)
					}
				}
			})
		}
	}
}

// BenchmarkLegacySequentialPush is the pre-refactor engine (Workers=0) at
// the same sizes, for regression tracking against the sharded path.
func BenchmarkLegacySequentialPush(b *testing.B) {
	const d = 16
	for _, n := range benchSizes(b) {
		g := benchGraph(b, n, d)
		push, err := baseline.NewPush(n, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := phonecall.Run(phonecall.Config{
					Topology:  phonecall.NewStatic(g),
					Protocol:  push,
					RNG:       xrand.New(uint64(i) + 1),
					StopEarly: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllInformed {
					b.Fatalf("push incomplete: %d/%d", res.Informed, res.AliveNodes)
				}
			}
		})
	}
}
