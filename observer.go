package regcast

// ObserverFuncs adapts plain functions to the Observer interface; nil
// fields are skipped. It is the quickest way to stream metrics from a run:
//
//	regcast.WithObserver(regcast.ObserverFuncs{
//		Round: func(rs regcast.RoundStats) { fmt.Println(rs.Round, rs.Informed) },
//	})
type ObserverFuncs struct {
	// Round is invoked as Observer.OnRound.
	Round func(RoundStats)
	// Informed is invoked as Observer.OnInformed.
	Informed func(node, round int)
}

// OnRound implements Observer.
func (o ObserverFuncs) OnRound(rs RoundStats) {
	if o.Round != nil {
		o.Round(rs)
	}
}

// OnInformed implements Observer.
func (o ObserverFuncs) OnInformed(node, round int) {
	if o.Informed != nil {
		o.Informed(node, round)
	}
}

// multiObserver fans callbacks out to several observers in order.
type multiObserver []Observer

func (m multiObserver) OnRound(rs RoundStats) {
	for _, o := range m {
		o.OnRound(rs)
	}
}

func (m multiObserver) OnInformed(node, round int) {
	for _, o := range m {
		o.OnInformed(node, round)
	}
}

// roundCollector buffers streamed RoundStats; the goroutine-per-node
// engine uses it to materialise Result.PerRound on demand.
type roundCollector struct {
	rounds []RoundStats
}

func (c *roundCollector) OnRound(rs RoundStats) { c.rounds = append(c.rounds, rs) }
func (c *roundCollector) OnInformed(int, int)   {}
