package regcast_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"regcast"
)

// batchFixture builds a small scenario every batch test shares.
func batchFixture(t testing.TB, n int, opts ...regcast.ScenarioOption) regcast.Scenario {
	t.Helper()
	g, err := regcast.NewRegularGraph(n, 8, regcast.NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	proto, err := regcast.NewFourChoice(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := regcast.NewScenario(regcast.Static(g), proto, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestBatchDeterminismAcrossReplicationWorkers is the batch layer's core
// contract: for a fixed seed, the aggregate JSON is byte-identical for
// every ReplicationWorkers value. The -race CI step runs this test too,
// exercising the pool under the race detector.
func TestBatchDeterminismAcrossReplicationWorkers(t *testing.T) {
	sc := batchFixture(t, 256, regcast.WithSeed(42))
	marshal := func(rw int) []byte {
		res, err := regcast.Batch{
			Scenario:           sc,
			Replications:       8,
			ReplicationWorkers: rw,
			RandomizeSource:    true,
		}.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	base := marshal(0)
	for _, rw := range []int{1, 4, regcast.WorkersAuto} {
		if got := marshal(rw); !bytes.Equal(got, base) {
			t.Errorf("ReplicationWorkers=%d changes the aggregate JSON:\n%s\nvs (serial)\n%s", rw, got, base)
		}
	}
	if !strings.Contains(string(base), `"replications":8`) {
		t.Errorf("aggregate JSON missing replication count: %s", base)
	}
}

// TestBatchAggregates sanity-checks the aggregate contents on a batch
// where every run completes.
func TestBatchAggregates(t *testing.T) {
	sc := batchFixture(t, 256, regcast.WithSeed(7))
	res, err := regcast.Batch{
		Scenario:        sc,
		Replications:    5,
		RandomizeSource: true,
		KeepResults:     true,
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Replications != 5 || len(res.Results) != 5 {
		t.Fatalf("replications %d, kept %d, want 5/5", res.Replications, len(res.Results))
	}
	if res.Completed != 5 || res.CompletedFrac() != 1 {
		t.Errorf("four-choice at n=256 should complete every run: %d/5", res.Completed)
	}
	if res.Rounds.N != 5 || res.Rounds.Mean <= 0 || res.Rounds.Min > res.Rounds.Mean || res.Rounds.Max < res.Rounds.Mean {
		t.Errorf("implausible rounds aggregate: %+v", res.Rounds)
	}
	if res.Transmissions.Mean <= 0 || res.TxPerNode.Mean <= 0 {
		t.Errorf("implausible transmission aggregates: %+v / %+v", res.Transmissions, res.TxPerNode)
	}
	if res.InformedFrac.Mean != 1 {
		t.Errorf("informed frac %v, want 1", res.InformedFrac.Mean)
	}
	if res.Rounds.P10 > res.Rounds.P50 || res.Rounds.P50 > res.Rounds.P90 {
		t.Errorf("quantiles not monotone: %+v", res.Rounds)
	}
	// Replications re-derive their seeds, so the kept results must not all
	// be the same trace (sources are randomised too).
	same := true
	for _, r := range res.Results[1:] {
		if r.Transmissions != res.Results[0].Transmissions {
			same = false
		}
	}
	if same {
		t.Error("all replications produced identical transmission counts; per-replication seeding is broken")
	}
	// Without KeepResults nothing is retained.
	res2, err := regcast.Batch{Scenario: sc, Replications: 2}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Results != nil {
		t.Error("Results retained without KeepResults")
	}
}

// TestBatchNewBuilder exercises the per-replication scenario builder path
// and its determinism across pool widths.
func TestBatchNewBuilder(t *testing.T) {
	build := func(rep int, rng *regcast.Rand) (regcast.Scenario, error) {
		// Per-replication topology: a fresh graph from the replication
		// stream.
		g, err := regcast.NewRegularGraph(128, 8, rng.Split())
		if err != nil {
			return regcast.Scenario{}, err
		}
		proto, err := regcast.NewFourChoice(128, 8)
		if err != nil {
			return regcast.Scenario{}, err
		}
		return regcast.NewScenario(regcast.Static(g), proto, regcast.WithRNG(rng.Split()))
	}
	run := func(rw int) (regcast.BatchResult, []byte) {
		res, err := regcast.Batch{
			Seed:               9,
			New:                build,
			Replications:       6,
			ReplicationWorkers: rw,
			RandomizeSource:    true,
		}.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return res, buf
	}
	serial, serialJSON := run(0)
	if serial.Completed != 6 {
		t.Errorf("completed %d/6", serial.Completed)
	}
	if _, parallelJSON := run(3); !bytes.Equal(parallelJSON, serialJSON) {
		t.Errorf("New-builder batch differs across pool widths:\n%s\nvs\n%s", parallelJSON, serialJSON)
	}
}

// deadSlotTopo wraps a graph with extra never-alive id slots past the
// graph's nodes — the shape of overlay topologies with headroom.
type deadSlotTopo struct {
	g    *regcast.Graph
	dead int
}

func (t deadSlotTopo) NumNodes() int         { return t.g.NumNodes() + t.dead }
func (t deadSlotTopo) Degree(v int) int      { return t.g.Degree(v) }
func (t deadSlotTopo) Neighbor(v, i int) int { return t.g.Neighbor(v, i) }
func (t deadSlotTopo) Alive(v int) bool      { return v < t.g.NumNodes() }

// stepperTopo is a static graph that claims to churn.
type stepperTopo struct{ regcast.Topology }

func (stepperTopo) Step(round int) []int { return nil }

// TestBatchRandomizeSourceSkipsDeadSlots: on a topology whose id space
// includes dead slots, every randomized source must land on an alive
// node — for every seed, deterministically.
func TestBatchRandomizeSourceSkipsDeadSlots(t *testing.T) {
	g, err := regcast.NewRegularGraph(64, 8, regcast.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	proto, err := regcast.NewFourChoice(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	topo := deadSlotTopo{g: g, dead: 64} // half the id space is dead
	for seed := uint64(1); seed <= 20; seed++ {
		sc, err := regcast.NewScenario(topo, proto, regcast.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := regcast.Batch{
			Scenario:           sc,
			Replications:       4,
			ReplicationWorkers: 2,
			RandomizeSource:    true,
		}.Run(context.Background())
		if err != nil {
			t.Fatalf("seed %d: %v (a dead source slot leaked through RandomizeSource)", seed, err)
		}
		if res.Replications != 4 {
			t.Fatalf("seed %d: %d replications", seed, res.Replications)
		}
	}
}

// TestBatchValidation covers the fail-fast configuration checks.
func TestBatchValidation(t *testing.T) {
	sc := batchFixture(t, 128)
	ctx := context.Background()
	cases := []struct {
		name string
		b    regcast.Batch
		want string
	}{
		{"no replications", regcast.Batch{Scenario: sc}, "Replications"},
		{"no scenario", regcast.Batch{Replications: 3}, "Scenario or a New"},
		{"both scenario and new", regcast.Batch{
			Scenario:     sc,
			New:          func(int, *regcast.Rand) (regcast.Scenario, error) { return sc, nil },
			Replications: 3,
		}, "mutually exclusive"},
		{"bad workers", regcast.Batch{Scenario: sc, Replications: 3, ReplicationWorkers: -2}, "ReplicationWorkers"},
		{"rng scenario", regcast.Batch{
			Scenario:     batchFixture(t, 128, regcast.WithRNG(regcast.NewRand(3))),
			Replications: 3,
		}, "WithSeed"},
		{"observer scenario", regcast.Batch{
			Scenario:     batchFixture(t, 128, regcast.WithObserver(regcast.ObserverFuncs{})),
			Replications: 3,
		}, "observers"},
		{"dynamic topology scenario", func() regcast.Batch {
			g, err := regcast.NewRegularGraph(128, 8, regcast.NewRand(6))
			if err != nil {
				t.Fatal(err)
			}
			proto, err := regcast.NewFourChoice(128, 8)
			if err != nil {
				t.Fatal(err)
			}
			dyn, err := regcast.NewScenario(stepperTopo{regcast.Static(g)}, proto)
			if err != nil {
				t.Fatal(err)
			}
			return regcast.Batch{Scenario: dyn, Replications: 3}
		}(), "Stepper"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := c.b.Run(ctx); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %v, want mention of %q", err, c.want)
			}
		})
	}
}

// TestBatchErrorPropagation: a failing replication surfaces
// deterministically (lowest failing index), whatever the pool width.
func TestBatchErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, rw := range []int{0, 1, 4} {
		err := regcast.Replicate(context.Background(), 1, 16, rw, func(rep int, rng *regcast.Rand) error {
			if rep == 5 || rep == 11 {
				return fmt.Errorf("rep %d: %w", rep, boom)
			}
			return nil
		})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error %v, want boom", rw, err)
		}
		if !strings.Contains(err.Error(), "rep 5") {
			t.Errorf("workers=%d: got %v, want the lowest failing replication (rep 5)", rw, err)
		}
	}
}

// TestBatchContextCancellation: a cancelled context stops the pool and
// surfaces ctx.Err().
func TestBatchContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := regcast.Replicate(ctx, 1, 1000, 2, func(rep int, rng *regcast.Rand) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("cancellation did not stop the pool: %d replications ran", n)
	}
}

// TestReplicateStreamsMatchSplitN pins Replicate's seeding discipline to
// the documented xrand contract: child rep gets the rep-th split of the
// master, independent of pool width.
func TestReplicateStreamsMatchSplitN(t *testing.T) {
	const reps = 5
	want := regcast.NewRand(77).SplitN(reps)
	wantFirst := make([]uint64, reps)
	for i, rng := range want {
		wantFirst[i] = rng.Uint64()
	}
	got := make([]uint64, reps)
	if err := regcast.Replicate(context.Background(), 77, reps, 3, func(rep int, rng *regcast.Rand) error {
		got[rep] = rng.Uint64()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != wantFirst[i] {
			t.Errorf("rep %d stream head %d, want %d", i, got[i], wantFirst[i])
		}
	}
}
