// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics, quantiles, normal-approximation
// confidence intervals, least-squares regression for scaling-exponent fits,
// and fixed-width histograms. The regression fits back the asymptotic
// claims of the paper — e.g. E1 fits completion rounds against log₂ n and
// E2 fits transmissions per node against log log n (see DESIGN.md's
// experiment index for which statistic each experiment uses).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments and order statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean of xs. Zero for samples of size < 2.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := Summarize(xs)
	return 1.96 * s.Stddev / math.Sqrt(float64(s.N))
}

// LinearFit holds the result of an ordinary-least-squares fit y = a + b*x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// FitLine fits y = a + b*x by ordinary least squares. It returns an error if
// the inputs are mismatched, too short, or degenerate (zero x-variance).
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: FitLine length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: FitLine needs >= 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: FitLine degenerate (all x equal)")
	}
	b := sxy / sxx
	fit := LinearFit{Intercept: my - b*mx, Slope: b}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // ys constant and perfectly fit by the horizontal line
	}
	_ = n
	return fit, nil
}

// PowerLawExponent fits y ≈ c * x^e on log-log axes and returns the exponent
// e. All inputs must be positive.
func PowerLawExponent(xs, ys []float64) (float64, error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if i >= len(ys) {
			break
		}
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, fmt.Errorf("stats: PowerLawExponent requires positive data, got (%v, %v)", xs[i], ys[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	fit, err := FitLine(lx, ly)
	if err != nil {
		return 0, err
	}
	return fit.Slope, nil
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // observations below Lo
	Over     int // observations >= Hi
	binWidth float64
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: NewHistogram bins=%d", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: NewHistogram invalid range [%v, %v)", lo, hi)
	}
	return &Histogram{
		Lo:       lo,
		Hi:       hi,
		Counts:   make([]int, bins),
		binWidth: (hi - lo) / float64(bins),
	}, nil
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Counts) { // floating point edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: GeoMean of empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: GeoMean requires positive data, got %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}
