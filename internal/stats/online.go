package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes mean, variance, min and max of a stream online
// (Welford's algorithm), so replication ensembles never need to retain
// their per-run samples. Accumulators merge exactly (Chan et al.'s
// parallel formula), which lets per-shard or per-cell aggregates combine
// into one. The zero value is an empty accumulator ready for use.
//
// Floating-point caveat: Add and Merge are deterministic functions of the
// call order, so two accumulators fed the same values in the same order are
// bit-identical — the property the batch engine's
// aggregate-in-replication-order discipline relies on.
type Accumulator struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
	min  float64
	max  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Merge folds b into a, as if every observation of b had been Added to a
// (up to floating-point association; the combined moments are exact in
// exact arithmetic).
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	na, nb := float64(a.n), float64(b.n)
	d := b.mean - a.mean
	n := na + nb
	a.mean += d * nb / n
	a.m2 += b.m2 + d*d*na*nb/n
	a.n += b.n
}

// N returns the number of observations recorded.
func (a *Accumulator) N() int { return a.n }

// Mean returns the arithmetic mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the sample variance (n-1 denominator; 0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Stddev returns the sample standard deviation.
func (a *Accumulator) Stddev() float64 { return math.Sqrt(a.Variance()) }

// HalfWidth returns the half-width of the normal-approximation
// two-sided confidence interval for the mean at confidence level conf
// (e.g. 0.95): z_{(1+conf)/2} · s / √n, from the Welford state alone.
// It returns +Inf for n < 2 (no variance estimate) and panics on a
// confidence level outside (0, 1). The mean ± HalfWidth interval is
// what adaptive-replication loops compare against a target precision.
func (a *Accumulator) HalfWidth(conf float64) float64 {
	if conf <= 0 || conf >= 1 {
		panic(fmt.Sprintf("stats: HalfWidth confidence %v outside (0, 1)", conf))
	}
	if a.n < 2 {
		return math.Inf(1)
	}
	z := zQuantile((1 + conf) / 2)
	return z * a.Stddev() / math.Sqrt(float64(a.n))
}

// zQuantile is the standard normal quantile function (inverse CDF),
// computed with Acklam's rational approximation (relative error below
// 1.15e-9 over the full open interval) — accurate far beyond what a
// CI half-width needs, with no dependency outside math.
func zQuantile(p float64) float64 {
	// Coefficients of Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// Min returns the smallest observation (0 for an empty accumulator).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 for an empty accumulator).
func (a *Accumulator) Max() float64 { return a.max }

// StreamHist is a mergeable streaming quantile sketch: the fixed-size
// centroid histogram of Ben-Haim & Tom-Tov ("A Streaming Parallel Decision
// Tree Algorithm", JMLR 2010). It retains at most maxBins (value, count)
// centroids, merging the closest adjacent pair when full, and estimates
// quantiles by interpolating the cumulative counts between centroids.
//
// The sketch is exact while the number of distinct values is at most
// maxBins, and deterministic: the state is a pure function of the sequence
// of Add/Merge calls (no randomness, no map iteration), so identical feeds
// produce bit-identical quantiles. It is not safe for concurrent use.
type StreamHist struct {
	maxBins int
	bins    []histBin // sorted by value
	count   int64
}

type histBin struct {
	value float64
	count float64
}

// NewStreamHist creates a sketch that retains at most maxBins centroids.
// Larger values are more accurate and slower; 64 is a good default for
// replication ensembles.
func NewStreamHist(maxBins int) (*StreamHist, error) {
	if maxBins < 2 {
		return nil, fmt.Errorf("stats: NewStreamHist maxBins=%d, need >= 2", maxBins)
	}
	return &StreamHist{maxBins: maxBins}, nil
}

// Add records one observation.
func (h *StreamHist) Add(x float64) {
	h.insert(x, 1)
	h.count++
	h.compact()
}

// insert adds a centroid, keeping bins sorted and collapsing exact value
// duplicates.
func (h *StreamHist) insert(v, c float64) {
	i := sort.Search(len(h.bins), func(i int) bool { return h.bins[i].value >= v })
	if i < len(h.bins) && h.bins[i].value == v {
		h.bins[i].count += c
		return
	}
	h.bins = append(h.bins, histBin{})
	copy(h.bins[i+1:], h.bins[i:])
	h.bins[i] = histBin{value: v, count: c}
}

// compact merges closest adjacent centroids until at most maxBins remain.
// Ties break toward the smallest index, keeping compaction deterministic.
func (h *StreamHist) compact() {
	for len(h.bins) > h.maxBins {
		best, bestGap := 0, math.Inf(1)
		for i := 0; i+1 < len(h.bins); i++ {
			if gap := h.bins[i+1].value - h.bins[i].value; gap < bestGap {
				best, bestGap = i, gap
			}
		}
		a, b := h.bins[best], h.bins[best+1]
		c := a.count + b.count
		h.bins[best] = histBin{value: (a.value*a.count + b.value*b.count) / c, count: c}
		h.bins = append(h.bins[:best+1], h.bins[best+2:]...)
	}
}

// Merge folds o into h. The result is the sketch of the concatenated
// streams (approximately, once either side has compacted).
func (h *StreamHist) Merge(o *StreamHist) {
	if o == nil {
		return
	}
	for _, b := range o.bins {
		h.insert(b.value, b.count)
	}
	h.count += o.count
	h.compact()
}

// N returns the number of observations recorded.
func (h *StreamHist) N() int64 { return h.count }

// Quantile estimates the q-quantile (0 <= q <= 1) of the stream. Each
// centroid is treated as its count of observations at its value, with
// linear interpolation of the cumulative distribution between adjacent
// centroids (half of each centroid's mass lies on either side of it, the
// paper's "trapezoid" reading). Returns NaN for an empty sketch.
func (h *StreamHist) Quantile(q float64) float64 {
	if len(h.bins) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.bins[0].value
	}
	if q >= 1 {
		return h.bins[len(h.bins)-1].value
	}
	target := q * float64(h.count)
	// cum is the mass strictly before the current centroid's value, under
	// the half-before/half-after reading.
	cum := 0.0
	for i, b := range h.bins {
		center := cum + b.count/2
		if target <= center {
			if i == 0 {
				return b.value
			}
			prev := h.bins[i-1]
			prevCenter := cum - prev.count/2
			frac := (target - prevCenter) / (center - prevCenter)
			return prev.value + frac*(b.value-prev.value)
		}
		cum += b.count
	}
	return h.bins[len(h.bins)-1].value
}
