package stats

import (
	"math"
	"testing"
)

func TestAccumulatorMatchesSummarize(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	s := Summarize(xs)
	if a.N() != s.N {
		t.Fatalf("N = %d, want %d", a.N(), s.N)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"mean", a.Mean(), s.Mean},
		{"stddev", a.Stddev(), s.Stddev},
		{"min", a.Min(), s.Min},
		{"max", a.Max(), s.Max},
	} {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Error("zero accumulator not zero-valued")
	}
	a.Add(7)
	if a.N() != 1 || a.Mean() != 7 || a.Variance() != 0 || a.Min() != 7 || a.Max() != 7 {
		t.Errorf("single-observation accumulator wrong: %+v", a)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	xs := []float64{-2, 0, 1, 3, 3, 8, 13, 21, -5, 0.5, 2.5}
	for split := 0; split <= len(xs); split++ {
		var a, b, whole Accumulator
		for i, x := range xs {
			if i < split {
				a.Add(x)
			} else {
				b.Add(x)
			}
			whole.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("split %d: N = %d, want %d", split, a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-12 ||
			math.Abs(a.Variance()-whole.Variance()) > 1e-10 ||
			a.Min() != whole.Min() || a.Max() != whole.Max() {
			t.Errorf("split %d: merged %+v, sequential %+v", split, a, whole)
		}
	}
}

func TestStreamHistExactBelowCapacity(t *testing.T) {
	h, err := NewStreamHist(64)
	if err != nil {
		t.Fatal(err)
	}
	// 1..9 inserted out of order: with all points retained, the median is
	// exactly the middle value.
	for _, x := range []float64{9, 1, 8, 2, 7, 3, 6, 4, 5} {
		h.Add(x)
	}
	if h.N() != 9 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-12 {
		t.Errorf("median = %v, want 5", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 9 {
		t.Errorf("q1 = %v, want 9", got)
	}
}

func TestStreamHistApproximatesQuantiles(t *testing.T) {
	h, err := NewStreamHist(32)
	if err != nil {
		t.Fatal(err)
	}
	// A deterministic non-uniform stream: x^2 over a scrambled order.
	const n = 5000
	for i := 0; i < n; i++ {
		j := (i*2654435761 + 7) % n // fixed permutation-ish scatter
		x := float64(j) / n
		h.Add(x * x)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		want := q * q // quantiles of U^2 with U uniform on [0,1)
		got := h.Quantile(q)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("q%.2f = %v, want ≈ %v", q, got, want)
		}
	}
	// Monotone in q.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev-1e-12 {
			t.Fatalf("quantiles not monotone at q=%v", q)
		}
		prev = v
	}
}

func TestStreamHistMerge(t *testing.T) {
	mk := func() *StreamHist {
		h, err := NewStreamHist(16)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b, whole := mk(), mk(), mk()
	for i := 0; i < 1000; i++ {
		x := float64(i%97) / 97
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		whole.Add(x)
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if got, want := a.Quantile(q), whole.Quantile(q); math.Abs(got-want) > 0.1 {
			t.Errorf("merged q%.1f = %v vs sequential %v", q, got, want)
		}
	}
	a.Merge(nil) // no-op
}

func TestStreamHistDeterministic(t *testing.T) {
	run := func() []float64 {
		h, err := NewStreamHist(8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			h.Add(math.Sin(float64(i)))
		}
		out := []float64{}
		for _, q := range []float64{0.1, 0.5, 0.9} {
			out = append(out, h.Quantile(q))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("identical feeds diverge: %v vs %v", a, b)
		}
	}
}

func TestStreamHistRejectsTinyCapacity(t *testing.T) {
	if _, err := NewStreamHist(1); err == nil {
		t.Error("maxBins=1 accepted")
	}
}

func TestStreamHistEmpty(t *testing.T) {
	h, err := NewStreamHist(4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty sketch quantile not NaN")
	}
}

func TestHalfWidth(t *testing.T) {
	var a Accumulator
	// Known z-quantiles: 1.959964 (95%), 1.644854 (90%), 2.575829 (99%).
	for _, tc := range []struct{ conf, z float64 }{
		{0.95, 1.959964}, {0.90, 1.644854}, {0.99, 2.575829},
	} {
		if got := zQuantile((1 + tc.conf) / 2); math.Abs(got-tc.z) > 1e-5 {
			t.Fatalf("zQuantile for conf %v = %v, want %v", tc.conf, got, tc.z)
		}
	}

	if hw := a.HalfWidth(0.95); !math.IsInf(hw, 1) {
		t.Fatalf("empty accumulator HalfWidth = %v, want +Inf", hw)
	}
	a.Add(3)
	if hw := a.HalfWidth(0.95); !math.IsInf(hw, 1) {
		t.Fatalf("single-sample HalfWidth = %v, want +Inf", hw)
	}

	// 100 samples with stddev s: half-width must equal z·s/10.
	a = Accumulator{}
	for i := 0; i < 100; i++ {
		a.Add(float64(i % 10)) // mean 4.5, known variance
	}
	want := 1.959964 * a.Stddev() / 10
	if got := a.HalfWidth(0.95); math.Abs(got-want) > 1e-6 {
		t.Fatalf("HalfWidth(0.95) = %v, want %v", got, want)
	}
	// Wider confidence must widen the interval.
	if !(a.HalfWidth(0.99) > a.HalfWidth(0.95) && a.HalfWidth(0.95) > a.HalfWidth(0.90)) {
		t.Fatal("HalfWidth is not monotone in the confidence level")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("HalfWidth accepted a confidence level outside (0, 1)")
		}
	}()
	a.HalfWidth(1.0)
}

func TestHalfWidthShrinksWithN(t *testing.T) {
	var small, large Accumulator
	for i := 0; i < 16; i++ {
		small.Add(float64(i % 4))
	}
	for i := 0; i < 1024; i++ {
		large.Add(float64(i % 4))
	}
	if !(large.HalfWidth(0.95) < small.HalfWidth(0.95)/4) {
		t.Fatalf("half-width did not shrink ~1/sqrt(n): n=16 %v vs n=1024 %v",
			small.HalfWidth(0.95), large.HalfWidth(0.95))
	}
}
