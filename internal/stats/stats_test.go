package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if !almostEqual(s.Stddev, math.Sqrt(2.5), 1e-12) {
		t.Errorf("stddev %v want %v", s.Stddev, math.Sqrt(2.5))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Stddev != 0 || s.Median != 7 {
		t.Fatalf("single-element summary %+v", s)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean([2,4]) != 3")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); !almostEqual(q, 2.5, 1e-12) {
		t.Errorf("median = %v", q)
	}
	// Input must not be modified.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
}

func TestQuantileClamps(t *testing.T) {
	xs := []float64{1, 2, 3}
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 3 {
		t.Error("out-of-range q not clamped")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{1}) != 0 {
		t.Error("CI95 of single sample should be 0")
	}
	xs := []float64{10, 12, 9, 11, 10, 12, 9, 11}
	ci := CI95(xs)
	if ci <= 0 || ci > 3 {
		t.Errorf("CI95 = %v, implausible", ci)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("short input not rejected")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x not rejected")
	}
}

func TestFitLineConstantY(t *testing.T) {
	fit, err := FitLine([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 0, 1e-12) || !almostEqual(fit.Intercept, 5, 1e-12) {
		t.Errorf("fit %+v", fit)
	}
}

func TestPowerLawExponent(t *testing.T) {
	// y = 3 x^2
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	e, err := PowerLawExponent(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e, 2, 1e-9) {
		t.Errorf("exponent %v want 2", e)
	}
}

func TestPowerLawExponentRejectsNonPositive(t *testing.T) {
	if _, err := PowerLawExponent([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("negative x accepted")
	}
	if _, err := PowerLawExponent([]float64{1, 2}, []float64{0, 2}); err == nil {
		t.Error("zero y accepted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d", h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(10, 0, 5); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g, 2, 1e-12) {
		t.Errorf("GeoMean = %v", g)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty GeoMean accepted")
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("zero element accepted")
	}
}

func TestSummarizeMatchesQuantile(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e15 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Median == Quantile(xs, 0.5) && s.Min <= s.Median && s.Median <= s.Max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
