package spectral

import (
	"math"
	"testing"

	"regcast/internal/graph"
	"regcast/internal/xrand"
)

func TestSecondEigenvalueCompleteGraph(t *testing.T) {
	// K_n has eigenvalues n-1 (once) and -1 (n-1 times), so |λ₂| = 1.
	g, err := graph.Complete(20)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := SecondEigenvalue(g, 300, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2-1) > 0.01 {
		t.Errorf("K20 |λ₂| = %v, want 1", l2)
	}
}

func TestSecondEigenvalueCycle(t *testing.T) {
	// C_n has eigenvalues 2·cos(2πk/n). For odd n the largest non-trivial
	// magnitude is |2·cos(π(n−1)/n)| = 2·cos(π/n), attained near the
	// bottom of the spectrum (even cycles are bipartite with λ = −2).
	const n = 25
	g, err := graph.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Cos(math.Pi/n)
	l2, err := SecondEigenvalue(g, 2000, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2-want) > 0.02 {
		t.Errorf("C%d |λ₂| = %v, want %v", n, l2, want)
	}
}

func TestSecondEigenvalueBipartite(t *testing.T) {
	// Even cycles are bipartite: the most negative eigenvalue is -2, so the
	// magnitude estimate tends to 2·|cos(...)| close to 2; more simply, the
	// hypercube Q3 is bipartite 3-regular with spectrum {±3, ±1}: |λ₂|=3
	// is the bipartite reflection. Power iteration on 1⊥ must find 3.
	g, err := graph.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := SecondEigenvalue(g, 500, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2-3) > 0.05 {
		t.Errorf("Q3 |λ₂| = %v, want 3 (bipartite -d eigenvalue)", l2)
	}
}

func TestSecondEigenvalueRandomRegularNearFriedman(t *testing.T) {
	// Friedman: |λ₂| ≤ 2√(d−1)(1+o(1)) w.h.p. Allow 25% slack at n=500.
	const n, d = 500, 6
	g, err := graph.RandomRegular(n, d, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := SecondEigenvalue(g, 300, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	bound := AlonBoppanaBound(d)
	if l2 > bound*1.25 {
		t.Errorf("G(%d,%d) |λ₂| = %v exceeds 1.25×2√(d−1) = %v", n, d, l2, bound*1.25)
	}
	// Alon-Boppana also lower-bounds λ₂ asymptotically; sanity: not tiny.
	if l2 < bound*0.6 {
		t.Errorf("G(%d,%d) |λ₂| = %v implausibly small (bound %v)", n, d, l2, bound)
	}
}

func TestSecondEigenvalueErrors(t *testing.T) {
	g, err := graph.Complete(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SecondEigenvalue(g, 0, xrand.New(1)); err == nil {
		t.Error("iters=0 accepted")
	}
	one, err := graph.Complete(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SecondEigenvalue(one, 10, xrand.New(1)); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestAlonBoppanaBound(t *testing.T) {
	if b := AlonBoppanaBound(5); math.Abs(b-4) > 1e-12 {
		t.Errorf("AlonBoppana(5) = %v, want 4", b)
	}
	if AlonBoppanaBound(0) != 0 {
		t.Error("AlonBoppana(0) != 0")
	}
}

func TestCheckMixingOnRandomRegular(t *testing.T) {
	const n, d = 400, 8
	g, err := graph.RandomRegular(n, d, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := SecondEigenvalue(g, 300, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// The mixing lemma holds with the true λ₂; give the estimate 10% slack.
	rep, err := CheckMixing(g, d, l2*1.1, 200, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Errorf("mixing lemma violated %d/%d times (maxdev %v, λ %v)",
			rep.Violations, rep.Trials, rep.MaxDeviation, l2)
	}
	if rep.MaxDeviation <= 0 {
		t.Error("max deviation should be positive")
	}
}

func TestCheckMixingDetectsBadLambda(t *testing.T) {
	const n, d = 200, 6
	g, err := graph.RandomRegular(n, d, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// λ = 0 must be violated by essentially every sampled set.
	rep, err := CheckMixing(g, d, 0, 50, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Error("λ=0 reported as satisfying the mixing lemma")
	}
}

func TestCheckMixingErrors(t *testing.T) {
	g, err := graph.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckMixing(g, 2, 1, 10, xrand.New(1)); err == nil {
		t.Error("tiny graph accepted")
	}
	big, err := graph.Complete(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckMixing(big, 9, 1, 0, xrand.New(1)); err == nil {
		t.Error("trials=0 accepted")
	}
}
