// Package spectral estimates spectral quantities of regular graphs that the
// paper's lower-bound analysis (§2) relies on: the second-largest adjacency
// eigenvalue in absolute value, which for random d-regular graphs is
// 2·√(d−1)·(1+o(1)) by Friedman's theorem, and the Expander Mixing Lemma
// deviation |e(S,S̄) − d·|S|·|S̄|/n| ≤ λ·√(|S|·|S̄|).
package spectral

import (
	"fmt"
	"math"

	"regcast/internal/graph"
	"regcast/internal/xrand"
)

// SecondEigenvalue estimates |λ₂| of the adjacency matrix of a connected
// d-regular graph by power iteration restricted to the subspace orthogonal
// to the all-ones vector (the top eigenvector of a regular graph). The
// estimate converges to the largest |λ| among non-trivial eigenvalues; for
// bipartite graphs this is d itself (λ = −d).
//
// iters controls the number of power iterations; 200 is ample for the
// graph sizes used in this repository.
func SecondEigenvalue(g *graph.Graph, iters int, rng *xrand.Rand) (float64, error) {
	n := g.NumNodes()
	if n < 2 {
		return 0, fmt.Errorf("spectral: graph too small (n=%d)", n)
	}
	if iters <= 0 {
		return 0, fmt.Errorf("spectral: iters=%d must be positive", iters)
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	deflate(x)
	if norm(x) == 0 {
		return 0, fmt.Errorf("spectral: degenerate start vector")
	}
	normalize(x)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		multiplyAdjacency(g, x, y)
		deflate(y)
		lambda = dot(x, y) // Rayleigh quotient estimate before normalising
		ny := norm(y)
		if ny == 0 {
			// x was (numerically) in the kernel; restart from noise.
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			deflate(x)
			normalize(x)
			continue
		}
		for i := range y {
			y[i] /= ny
		}
		x, y = y, x
	}
	// The Rayleigh quotient can be negative (e.g. near-bipartite structure);
	// the quantity of interest is the magnitude.
	_ = lambda
	multiplyAdjacency(g, x, y)
	deflate(y)
	return norm(y), nil
}

// AlonBoppanaBound returns the asymptotic lower bound 2·√(d−1) that random
// regular graphs meet within (1+o(1)) (Friedman's theorem, used in §2).
func AlonBoppanaBound(d int) float64 {
	if d < 1 {
		return 0
	}
	return 2 * math.Sqrt(float64(d-1))
}

// MixingReport holds the outcome of an Expander Mixing Lemma check.
type MixingReport struct {
	Trials       int
	MaxDeviation float64 // max over trials of |e(S,S̄) − d|S||S̄|/n| / √(|S||S̄|)
	Lambda       float64 // the λ estimate used for the bound
	Violations   int     // trials where deviation exceeded λ
}

// CheckMixing samples random vertex subsets of the d-regular graph g and
// verifies the Expander Mixing Lemma deviation against lambda. The lemma
// guarantees deviation ≤ λ for every set, so Violations > 0 means lambda
// underestimates the true λ₂.
func CheckMixing(g *graph.Graph, d int, lambda float64, trials int, rng *xrand.Rand) (MixingReport, error) {
	n := g.NumNodes()
	if n < 4 {
		return MixingReport{}, fmt.Errorf("spectral: graph too small for mixing check (n=%d)", n)
	}
	if trials <= 0 {
		return MixingReport{}, fmt.Errorf("spectral: trials=%d must be positive", trials)
	}
	rep := MixingReport{Trials: trials, Lambda: lambda}
	inSet := make([]bool, n)
	for trial := 0; trial < trials; trial++ {
		for i := range inSet {
			inSet[i] = false
		}
		// Sizes spread across the range [1, n-1].
		size := 1 + rng.IntN(n-1)
		for _, v := range rng.DistinctK(nil, size, n, nil) {
			inSet[v] = true
		}
		cut := float64(g.EdgesBetween(inSet))
		s := float64(size)
		sBar := float64(n - size)
		expect := float64(d) * s * sBar / float64(n)
		dev := math.Abs(cut-expect) / math.Sqrt(s*sBar)
		if dev > rep.MaxDeviation {
			rep.MaxDeviation = dev
		}
		if dev > lambda {
			rep.Violations++
		}
	}
	return rep, nil
}

// multiplyAdjacency computes y = A·x for the (multi)graph's adjacency
// matrix; parallel edges contribute multiplicity and self-loops weight 2
// (consistent with stub counting).
func multiplyAdjacency(g *graph.Graph, x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, w := range g.Neighbors(v) {
			y[v] += x[w]
		}
	}
}

// deflate removes the component along the all-ones vector.
func deflate(x []float64) {
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(x []float64) float64 {
	return math.Sqrt(dot(x, x))
}

func normalize(x []float64) {
	n := norm(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}
