package graph

import (
	"testing"
	"testing/quick"

	"regcast/internal/xrand"
)

func mustRing(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewFromEdgesBasic(t *testing.T) {
	g, err := NewFromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 || g.Degree(2) != 1 {
		t.Fatalf("degrees %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
}

func TestNewFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := NewFromEdges(2, [][2]int32{{0, 2}}); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := NewFromEdges(2, [][2]int32{{-1, 0}}); err == nil {
		t.Error("negative endpoint accepted")
	}
}

func TestSelfLoopDegree(t *testing.T) {
	g, err := NewFromEdges(2, [][2]int32{{0, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 3 { // self-loop contributes 2
		t.Errorf("Degree(0) = %d, want 3", g.Degree(0))
	}
	if g.SelfLoopCount() != 1 {
		t.Errorf("SelfLoopCount = %d", g.SelfLoopCount())
	}
	if g.IsSimple() {
		t.Error("graph with loop reported simple")
	}
}

func TestMultiEdgeCount(t *testing.T) {
	g, err := NewFromEdges(2, [][2]int32{{0, 1}, {0, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.MultiEdgeCount() != 2 {
		t.Errorf("MultiEdgeCount = %d, want 2", g.MultiEdgeCount())
	}
}

func TestNewFromAdjacencySymmetryCheck(t *testing.T) {
	if _, err := NewFromAdjacency([][]int32{{1}, {}}); err == nil {
		t.Error("asymmetric adjacency accepted")
	}
	g, err := NewFromAdjacency([][]int32{{1}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("m=%d", g.NumEdges())
	}
}

func TestNewFromAdjacencySelfLoop(t *testing.T) {
	// A self-loop must appear twice in the node's own list.
	if _, err := NewFromAdjacency([][]int32{{0}}); err == nil {
		t.Error("odd self-loop stub count accepted")
	}
	g, err := NewFromAdjacency([][]int32{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.SelfLoopCount() != 1 {
		t.Errorf("loops=%d", g.SelfLoopCount())
	}
}

func TestRingProperties(t *testing.T) {
	g := mustRing(t, 10)
	if !g.IsRegular(2) {
		t.Error("ring not 2-regular")
	}
	if !g.IsConnected() {
		t.Error("ring not connected")
	}
	d, err := g.DiameterExact()
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Errorf("C10 diameter = %d, want 5", d)
	}
}

func TestCompleteProperties(t *testing.T) {
	g, err := Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(5) || g.NumEdges() != 15 {
		t.Errorf("K6 wrong: deg0=%d m=%d", g.Degree(0), g.NumEdges())
	}
	d, _ := g.DiameterExact()
	if d != 1 {
		t.Errorf("K6 diameter = %d", d)
	}
}

func TestHypercube(t *testing.T) {
	g, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 16 || !g.IsRegular(4) {
		t.Fatalf("Q4 wrong: n=%d", g.NumNodes())
	}
	d, _ := g.DiameterExact()
	if d != 4 {
		t.Errorf("Q4 diameter = %d, want 4", d)
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("dim 0 accepted")
	}
}

func TestTorus(t *testing.T) {
	g, err := Torus(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 20 || !g.IsRegular(4) {
		t.Fatal("torus wrong shape")
	}
	if !g.IsConnected() {
		t.Error("torus disconnected")
	}
	if _, err := Torus(2, 5); err == nil {
		t.Error("degenerate torus accepted")
	}
}

func TestConnectedComponents(t *testing.T) {
	g, err := NewFromEdges(5, [][2]int32{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	comp, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[0] {
		t.Errorf("components %v", comp)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestBFSDistances(t *testing.T) {
	g := mustRing(t, 6)
	dist := g.BFSDistances(0)
	want := []int32{0, 1, 2, 3, 2, 1}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], w)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g, err := NewFromEdges(3, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFSDistances(0)
	if dist[2] != -1 {
		t.Errorf("unreachable node distance %d", dist[2])
	}
	if _, err := g.DiameterExact(); err == nil {
		t.Error("diameter of disconnected graph accepted")
	}
}

func TestDiameterLowerBound(t *testing.T) {
	g := mustRing(t, 20)
	lb, err := g.DiameterLowerBound(0)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := g.DiameterExact()
	if lb > exact {
		t.Errorf("lower bound %d exceeds exact %d", lb, exact)
	}
	if lb != exact { // double sweep is exact on cycles
		t.Errorf("double sweep on C20: %d, exact %d", lb, exact)
	}
}

func TestEdgesBetweenAndWithin(t *testing.T) {
	g := mustRing(t, 6)
	inSet := []bool{true, true, true, false, false, false}
	if cut := g.EdgesBetween(inSet); cut != 2 {
		t.Errorf("cut = %d, want 2", cut)
	}
	if inner := g.EdgesWithin(inSet); inner != 2 {
		t.Errorf("inner = %d, want 2", inner)
	}
	if c := g.NeighborsInSet(0, inSet); c != 1 {
		t.Errorf("NeighborsInSet(0) = %d", c)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := mustRing(t, 6)
	keep := []bool{true, true, true, true, false, false}
	sub, orig, err := g.InducedSubgraph(keep)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 4 || sub.NumEdges() != 3 {
		t.Fatalf("sub n=%d m=%d", sub.NumNodes(), sub.NumEdges())
	}
	if len(orig) != 4 || orig[0] != 0 || orig[3] != 3 {
		t.Errorf("orig mapping %v", orig)
	}
}

func TestClone(t *testing.T) {
	g := mustRing(t, 5)
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone differs")
	}
	c.adj[0] = 99 // mutating the clone must not affect the original
	if g.adj[0] == 99 {
		t.Error("clone shares backing array")
	}
}

func TestDegreeSequence(t *testing.T) {
	g, err := NewFromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	ds := g.DegreeSequence()
	want := []int{3, 1, 1, 1}
	for i, w := range want {
		if ds[i] != w {
			t.Fatalf("degree sequence %v", ds)
		}
	}
	if g.MaxDegree() != 3 || g.MinDegree() != 1 {
		t.Errorf("max=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
}

func TestConfigurationModelDegrees(t *testing.T) {
	rng := xrand.New(1)
	g, err := ConfigurationModel(100, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(6) {
		t.Error("configuration model not 6-regular (stub count must be exact)")
	}
	if g.NumEdges() != 300 {
		t.Errorf("m = %d, want 300", g.NumEdges())
	}
}

func TestConfigurationModelRejectsOddStubs(t *testing.T) {
	if _, err := ConfigurationModel(5, 3, xrand.New(1)); err == nil {
		t.Error("odd n*d accepted")
	}
	if _, err := ConfigurationModel(5, 5, xrand.New(1)); err == nil {
		t.Error("d >= n accepted")
	}
	if _, err := ConfigurationModel(0, 2, xrand.New(1)); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestRandomRegularSimpleAndRegular(t *testing.T) {
	rng := xrand.New(7)
	for _, tc := range []struct{ n, d int }{{50, 3}, {100, 4}, {64, 8}, {200, 12}} {
		g, err := RandomRegular(tc.n, tc.d, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsRegular(tc.d) {
			t.Errorf("n=%d d=%d not regular", tc.n, tc.d)
		}
		if !g.IsSimple() {
			t.Errorf("n=%d d=%d not simple", tc.n, tc.d)
		}
	}
}

func TestRandomRegularConnectedWHP(t *testing.T) {
	// Random d-regular graphs with d >= 3 are connected w.h.p.; across 10
	// seeds at n=200, d=4 a disconnection would be extraordinary.
	for seed := uint64(0); seed < 10; seed++ {
		g, err := RandomRegular(200, 4, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsConnected() {
			t.Fatalf("seed %d: disconnected G(200,4)", seed)
		}
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	g1, err := RandomRegular(60, 4, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RandomRegular(60, 4, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 60; v++ {
		n1, n2 := g1.Neighbors(v), g2.Neighbors(v)
		if len(n1) != len(n2) {
			t.Fatal("degree mismatch")
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatalf("node %d neighbour %d differs", v, i)
			}
		}
	}
}

func TestErasedConfigurationModel(t *testing.T) {
	g, err := ErasedConfigurationModel(100, 6, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSimple() {
		t.Error("erased model produced non-simple graph")
	}
	if g.MaxDegree() > 6 {
		t.Errorf("erased model degree %d exceeds 6", g.MaxDegree())
	}
}

func TestGnpEdgeCases(t *testing.T) {
	g, err := Gnp(10, 0, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("Gnp(p=0) m=%d", g.NumEdges())
	}
	g, err = Gnp(10, 1, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 45 {
		t.Errorf("Gnp(p=1) m=%d, want 45", g.NumEdges())
	}
	if _, err := Gnp(10, 1.5, xrand.New(1)); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := Gnp(-1, 0.5, xrand.New(1)); err == nil {
		t.Error("n<0 accepted")
	}
}

func TestGnpEdgeCountConcentration(t *testing.T) {
	const n, p = 300, 0.05
	want := p * float64(n) * float64(n-1) / 2
	sum := 0.0
	const reps = 20
	for seed := uint64(0); seed < reps; seed++ {
		g, err := Gnp(n, p, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsSimple() {
			t.Fatal("Gnp produced non-simple graph")
		}
		sum += float64(g.NumEdges())
	}
	mean := sum / reps
	if mean < want*0.9 || mean > want*1.1 {
		t.Errorf("Gnp mean edges %v, want about %v", mean, want)
	}
}

func TestCartesianProductWithK5(t *testing.T) {
	// The paper's §5 example: G(n,d) □ K5 is (d+4)-regular on 5n nodes.
	g, err := RandomRegular(20, 3, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	k5, err := Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := CartesianProduct(g, k5)
	if err != nil {
		t.Fatal(err)
	}
	if prod.NumNodes() != 100 || !prod.IsRegular(7) {
		t.Fatalf("product n=%d regular7=%v", prod.NumNodes(), prod.IsRegular(7))
	}
	if !prod.IsConnected() {
		t.Error("product disconnected")
	}
}

func TestCartesianProductRejectsNonSimple(t *testing.T) {
	loop, err := NewFromEdges(1, [][2]int32{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Complete(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CartesianProduct(loop, k2); err == nil {
		t.Error("non-simple factor accepted")
	}
}

func TestConfigurationModelStubUniformityProperty(t *testing.T) {
	// Property: for any valid (n, d, seed) the pairing model yields an exactly
	// d-regular multigraph with nd/2 edges.
	prop := func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw%60) + 8
		d := int(dRaw%5) + 2
		if n*d%2 != 0 {
			n++
		}
		g, err := ConfigurationModel(n, d, xrand.New(seed))
		if err != nil {
			return false
		}
		return g.IsRegular(d) && g.NumEdges() == n*d/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestInducedSubgraphMaskLengthError(t *testing.T) {
	g := mustRing(t, 5)
	if _, _, err := g.InducedSubgraph([]bool{true}); err == nil {
		t.Error("bad mask length accepted")
	}
}
