// Package graph provides the undirected-graph substrate for the broadcast
// simulator: a compact immutable CSR representation, the configuration
// (pairing) model generator for random d-regular graphs exactly as defined
// in §1.2 of Berenbrink, Elsässer & Friedetzky, reference topologies used in
// tests and comparisons, and the structural queries (connectivity, edge
// cuts, degree census) the analysis relies on.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected (multi)graph in compressed sparse row
// form. Self-loops and parallel edges are representable: a self-loop (v,v)
// contributes two entries to v's adjacency list (both endpoints of the
// edge), matching the stub semantics of the configuration model.
type Graph struct {
	offsets []int32 // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int32
}

// NewFromAdjacency builds a Graph from adjacency lists. The lists must be
// symmetric: an edge (v,w) must appear in both adj[v] and adj[w] (twice in
// adj[v] if v == w). Symmetry is validated.
func NewFromAdjacency(adj [][]int32) (*Graph, error) {
	n := len(adj)
	g := &Graph{offsets: make([]int32, n+1)}
	total := 0
	for v, nb := range adj {
		total += len(nb)
		g.offsets[v+1] = g.offsets[v] + int32(len(nb))
	}
	g.adj = make([]int32, 0, total)
	for v, nb := range adj {
		for _, w := range nb {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: node %d has out-of-range neighbour %d", v, w)
			}
			g.adj = append(g.adj, w)
		}
	}
	if err := g.checkSymmetry(); err != nil {
		return nil, err
	}
	return g, nil
}

// NewFromEdges builds a Graph on n nodes from an undirected edge list.
// Each pair contributes one entry to both endpoints' adjacency lists
// (two entries to the list of v for a self-loop (v,v)).
func NewFromEdges(n int, edges [][2]int32) (*Graph, error) {
	deg := make([]int32, n)
	for _, e := range edges {
		for _, v := range e {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: edge endpoint %d out of range [0,%d)", v, n)
			}
		}
		deg[e[0]]++
		deg[e[1]]++
	}
	g := &Graph{offsets: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	g.adj = make([]int32, g.offsets[n])
	cursor := make([]int32, n)
	copy(cursor, g.offsets[:n])
	for _, e := range edges {
		g.adj[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		g.adj[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	return g, nil
}

// checkSymmetry verifies that every (v,w) entry has a matching (w,v) entry.
func (g *Graph) checkSymmetry() error {
	n := g.NumNodes()
	// Count directed entries per unordered pair and compare.
	type pair struct{ a, b int32 }
	counts := make(map[pair]int, len(g.adj))
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			a, b := int32(v), w
			if a > b {
				a, b = b, a
			}
			counts[pair{a, b}]++
		}
	}
	for p, c := range counts {
		if p.a == p.b {
			if c%2 != 0 {
				return fmt.Errorf("graph: self-loop at %d has odd stub count %d", p.a, c)
			}
			continue
		}
		if c%2 != 0 {
			return fmt.Errorf("graph: asymmetric edge (%d,%d)", p.a, p.b)
		}
	}
	return nil
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges (self-loops count once).
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the degree of v (a self-loop contributes 2).
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbor returns the i-th neighbour of v (0 <= i < Degree(v)).
func (g *Graph) Neighbor(v, i int) int {
	return int(g.adj[g.offsets[v]+int32(i)])
}

// Neighbors returns v's adjacency slice. The caller must not modify it.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// CSR exposes the graph's raw compressed-sparse-row arrays: the adjacency
// of v is adj[offsets[v]:offsets[v+1]]. This is the zero-interface view
// hot loops (the phone-call fast path) index directly instead of going
// through Degree/Neighbor calls. The caller must not modify either slice.
func (g *Graph) CSR() (offsets, adj []int32) {
	return g.offsets, g.adj
}

// MinDegree returns the smallest degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	m := g.Degree(0)
	for v := 1; v < n; v++ {
		if d := g.Degree(v); d < m {
			m = d
		}
	}
	return m
}

// MaxDegree returns the largest degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	m := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// IsRegular reports whether all nodes have degree d.
func (g *Graph) IsRegular(d int) bool {
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(v) != d {
			return false
		}
	}
	return true
}

// DegreeSequence returns the multiset of degrees in non-increasing order.
func (g *Graph) DegreeSequence() []int {
	ds := make([]int, g.NumNodes())
	for v := range ds {
		ds[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}

// SelfLoopCount returns the number of self-loop edges.
func (g *Graph) SelfLoopCount() int {
	loops := 0
	for v := 0; v < g.NumNodes(); v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) == v {
				loops++
			}
		}
	}
	return loops / 2 // each loop contributes two stub entries at v
}

// MultiEdgeCount returns the number of surplus parallel edges: for every
// unordered pair {v,w}, v != w, with k >= 2 parallel edges it adds k-1.
func (g *Graph) MultiEdgeCount() int {
	surplus := 0
	seen := make(map[int64]int)
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) <= v { // count each unordered pair once, skip loops
				continue
			}
			key := int64(v)<<32 | int64(w)
			seen[key]++
		}
	}
	for _, k := range seen {
		if k >= 2 {
			surplus += k - 1
		}
	}
	return surplus
}

// IsSimple reports whether the graph has no self-loops and no parallel edges.
func (g *Graph) IsSimple() bool {
	return g.SelfLoopCount() == 0 && g.MultiEdgeCount() == 0
}

// ConnectedComponents returns, for every node, the id of its component
// (ids are dense, starting at 0) together with the number of components.
func (g *Graph) ConnectedComponents() (comp []int32, count int) {
	n := g.NumNodes()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, n)
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := int32(count)
		count++
		comp[start] = id
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(int(v)) {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return comp, count
}

// IsConnected reports whether the graph is connected (an empty graph is
// considered connected).
func (g *Graph) IsConnected() bool {
	if g.NumNodes() == 0 {
		return true
	}
	_, c := g.ConnectedComponents()
	return c == 1
}

// BFSDistances returns hop distances from src (-1 for unreachable nodes).
func (g *Graph) BFSDistances(src int) []int32 {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum finite BFS distance from src and whether
// all nodes were reachable.
func (g *Graph) Eccentricity(src int) (ecc int, allReachable bool) {
	allReachable = true
	for _, d := range g.BFSDistances(src) {
		if d < 0 {
			allReachable = false
			continue
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc, allReachable
}

// DiameterExact computes the exact diameter by running a BFS from every
// node; it is O(n·m) and intended for small graphs. It returns an error if
// the graph is disconnected or empty.
func (g *Graph) DiameterExact() (int, error) {
	n := g.NumNodes()
	if n == 0 {
		return 0, fmt.Errorf("graph: diameter of empty graph")
	}
	diam := 0
	for v := 0; v < n; v++ {
		ecc, ok := g.Eccentricity(v)
		if !ok {
			return 0, fmt.Errorf("graph: diameter of disconnected graph")
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// DiameterLowerBound estimates the diameter with a double BFS sweep: BFS
// from src to the farthest node u, then BFS from u. The result is a lower
// bound on (and in practice close to) the true diameter.
func (g *Graph) DiameterLowerBound(src int) (int, error) {
	if g.NumNodes() == 0 {
		return 0, fmt.Errorf("graph: diameter of empty graph")
	}
	dist := g.BFSDistances(src)
	far, best := src, int32(0)
	for v, d := range dist {
		if d < 0 {
			return 0, fmt.Errorf("graph: diameter of disconnected graph")
		}
		if d > best {
			best = d
			far = v
		}
	}
	ecc, _ := g.Eccentricity(far)
	return ecc, nil
}

// EdgesBetween counts edges with exactly one endpoint in the set marked by
// inSet (|E(S, V\S)| in the paper's notation). Self-loops never cross.
func (g *Graph) EdgesBetween(inSet []bool) int {
	if len(inSet) != g.NumNodes() {
		panic(fmt.Sprintf("graph: EdgesBetween mask length %d != n %d", len(inSet), g.NumNodes()))
	}
	cut := 0
	for v := 0; v < g.NumNodes(); v++ {
		if !inSet[v] {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if !inSet[w] {
				cut++
			}
		}
	}
	return cut
}

// EdgesWithin counts edges with both endpoints in the set marked by inSet
// (self-loops count once).
func (g *Graph) EdgesWithin(inSet []bool) int {
	if len(inSet) != g.NumNodes() {
		panic(fmt.Sprintf("graph: EdgesWithin mask length %d != n %d", len(inSet), g.NumNodes()))
	}
	stubs := 0
	for v := 0; v < g.NumNodes(); v++ {
		if !inSet[v] {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if inSet[w] {
				stubs++
			}
		}
	}
	return stubs / 2
}

// NeighborsInSet returns how many of v's incident stubs lead into the set.
func (g *Graph) NeighborsInSet(v int, inSet []bool) int {
	c := 0
	for _, w := range g.Neighbors(v) {
		if inSet[w] {
			c++
		}
	}
	return c
}

// InducedSubgraph returns the subgraph induced by the nodes with keep[v]
// true, along with the mapping from new ids to original ids.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []int32, error) {
	if len(keep) != g.NumNodes() {
		return nil, nil, fmt.Errorf("graph: InducedSubgraph mask length %d != n %d", len(keep), g.NumNodes())
	}
	newID := make([]int32, g.NumNodes())
	var orig []int32
	for v := range newID {
		newID[v] = -1
		if keep[v] {
			newID[v] = int32(len(orig))
			orig = append(orig, int32(v))
		}
	}
	adj := make([][]int32, len(orig))
	for newV, oldV := range orig {
		for _, w := range g.Neighbors(int(oldV)) {
			if keep[w] {
				adj[newV] = append(adj[newV], newID[w])
			}
		}
	}
	sub, err := NewFromAdjacency(adj)
	if err != nil {
		return nil, nil, err
	}
	return sub, orig, nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	return &Graph{
		offsets: append([]int32(nil), g.offsets...),
		adj:     append([]int32(nil), g.adj...),
	}
}
