package graph

import (
	"testing"
)

// materializedEqual asserts g's CSR rows are element-for-element
// NeighborAt(v, 0..Degree(v)) — the Implicit contract.
func materializedEqual(t *testing.T, im Implicit, g *Graph) {
	t.Helper()
	n := im.NumNodes()
	if g.NumNodes() != n {
		t.Fatalf("node count: implicit %d, materialised %d", n, g.NumNodes())
	}
	for v := 0; v < n; v++ {
		deg := im.Degree(v)
		if g.Degree(v) != deg {
			t.Fatalf("node %d: implicit degree %d, materialised %d", v, deg, g.Degree(v))
		}
		row := g.Neighbors(v)
		for i := 0; i < deg; i++ {
			if got := im.NeighborAt(v, i); got != row[i] {
				t.Fatalf("node %d slot %d: NeighborAt %d, CSR %d", v, i, got, row[i])
			}
		}
	}
}

func TestImplicitHypercubeMatchesDense(t *testing.T) {
	for _, dim := range []int{1, 3, 7, 10} {
		im, err := NewImplicitHypercube(dim)
		if err != nil {
			t.Fatalf("dim %d: %v", dim, err)
		}
		dense, err := Hypercube(dim)
		if err != nil {
			t.Fatalf("dense dim %d: %v", dim, err)
		}
		materializedEqual(t, im, dense)
		if !dense.IsRegular(dim) || !dense.IsConnected() || !dense.IsSimple() {
			t.Fatalf("dim %d: hypercube not a simple connected %d-regular graph", dim, dim)
		}
	}
	if _, err := NewImplicitHypercube(0); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := NewImplicitHypercube(31); err == nil {
		t.Fatal("dim 31 accepted (node ids would overflow int32)")
	}
}

func TestImplicitTorusMatchesDense(t *testing.T) {
	for _, dims := range [][2]int{{3, 3}, {3, 8}, {16, 5}, {32, 32}} {
		im, err := NewImplicitTorus(dims[0], dims[1])
		if err != nil {
			t.Fatalf("%dx%d: %v", dims[0], dims[1], err)
		}
		dense, err := Torus(dims[0], dims[1])
		if err != nil {
			t.Fatalf("dense %dx%d: %v", dims[0], dims[1], err)
		}
		materializedEqual(t, im, dense)
		if !dense.IsRegular(4) || !dense.IsConnected() {
			t.Fatalf("%dx%d: torus not a connected 4-regular graph", dims[0], dims[1])
		}
	}
	if _, err := NewImplicitTorus(2, 5); err == nil {
		t.Fatal("2-row torus accepted (up/down neighbors collide)")
	}
}

func TestMaterializeRejectsInt32Overflow(t *testing.T) {
	// dim 27: 2^27 nodes × 27 stubs > MaxInt32 adjacency slots. The
	// implicit family handles the size; only materialisation must refuse.
	im, err := NewImplicitHypercube(27)
	if err != nil {
		t.Fatalf("implicit dim 27: %v", err)
	}
	if _, err := Materialize(im); err == nil {
		t.Fatal("Materialize accepted 2^27×27 adjacency slots")
	}
}

func TestGnpStreamMatchesMaterialized(t *testing.T) {
	for _, tc := range []struct {
		n    int
		p    float64
		seed uint64
	}{
		{50, 0.3, 1},
		{400, 16.0 / 400, 7},
		{64, 0, 9},
		{10, 1, 3},
	} {
		im, err := NewGnpStream(tc.n, tc.p, tc.seed)
		if err != nil {
			t.Fatalf("n=%d p=%v: %v", tc.n, tc.p, err)
		}
		g, err := Materialize(im)
		if err != nil {
			t.Fatalf("materialize n=%d p=%v: %v", tc.n, tc.p, err)
		}
		materializedEqual(t, im, g)
		// Rows are strictly ascending neighbor lists without v itself.
		for v := 0; v < tc.n; v++ {
			row := g.Neighbors(v)
			for i, w := range row {
				if int(w) == v {
					t.Fatalf("n=%d p=%v: row %d holds a self-loop", tc.n, tc.p, v)
				}
				if i > 0 && row[i-1] >= w {
					t.Fatalf("n=%d p=%v: row %d not strictly ascending", tc.n, tc.p, v)
				}
			}
		}
		if tc.p == 1 {
			for v := 0; v < tc.n; v++ {
				if im.Degree(v) != tc.n-1 {
					t.Fatalf("p=1: node %d degree %d, want %d", v, im.Degree(v), tc.n-1)
				}
			}
		}
		if tc.p == 0 {
			for v := 0; v < tc.n; v++ {
				if im.Degree(v) != 0 {
					t.Fatalf("p=0: node %d degree %d, want 0", v, im.Degree(v))
				}
			}
		}
	}
}

func TestGnpStreamDeterministicAcrossInstances(t *testing.T) {
	a, err := NewGnpStream(200, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGnpStream(200, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 200; v++ {
		if a.Degree(v) != b.Degree(v) {
			t.Fatalf("node %d: degree %d vs %d across instances", v, a.Degree(v), b.Degree(v))
		}
		for i := 0; i < a.Degree(v); i++ {
			if a.NeighborAt(v, i) != b.NeighborAt(v, i) {
				t.Fatalf("node %d slot %d differs across same-seed instances", v, i)
			}
		}
	}
	c, err := NewGnpStream(200, 0.05, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := 0; v < 200 && same; v++ {
		if a.Degree(v) != c.Degree(v) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical degree sequences")
	}
}

func TestRegularStreamPermutationStructure(t *testing.T) {
	for _, tc := range []struct {
		n, d int
		seed uint64
	}{
		{100, 4, 1},
		{257, 8, 5}, // non-power-of-two: exercises cycle-walking
		{64, 2, 9},
		{1000, 6, 11},
	} {
		im, err := NewRegularStream(tc.n, tc.d, tc.seed)
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		// Each 2-factor is a bijection: perm and permInv invert each other,
		// exercised through the public NeighborAt (slot 2j = π_j, 2j+1 = π_j⁻¹).
		for j := 0; j < tc.d/2; j++ {
			seen := make([]bool, tc.n)
			for v := 0; v < tc.n; v++ {
				w := int(im.NeighborAt(v, 2*j))
				if w < 0 || w >= tc.n {
					t.Fatalf("π_%d(%d) = %d out of range", j, v, w)
				}
				if seen[w] {
					t.Fatalf("π_%d not injective at image %d", j, w)
				}
				seen[w] = true
				if back := int(im.NeighborAt(w, 2*j+1)); back != v {
					t.Fatalf("π_%d⁻¹(π_%d(%d)) = %d", j, j, v, back)
				}
			}
		}
		// The materialised multigraph is d-regular and symmetric (the CSR
		// constructor-independent check: w in row v as often as v in row w).
		g, err := Materialize(im)
		if err != nil {
			t.Fatalf("materialize n=%d d=%d: %v", tc.n, tc.d, err)
		}
		materializedEqual(t, im, g)
		if !g.IsRegular(tc.d) {
			t.Fatalf("n=%d d=%d: not %d-regular", tc.n, tc.d, tc.d)
		}
		type arc struct{ v, w int32 }
		count := make(map[arc]int)
		for v := 0; v < tc.n; v++ {
			for _, w := range g.Neighbors(v) {
				count[arc{int32(v), w}]++
			}
		}
		for a, c := range count {
			if count[arc{a.w, a.v}] != c {
				t.Fatalf("asymmetric multiset: (%d,%d)×%d vs (%d,%d)×%d",
					a.v, a.w, c, a.w, a.v, count[arc{a.w, a.v}])
			}
		}
	}
	if _, err := NewRegularStream(100, 3, 1); err == nil {
		t.Fatal("odd degree accepted")
	}
	if _, err := NewRegularStream(4, 4, 1); err == nil {
		t.Fatal("d >= n accepted")
	}
}
