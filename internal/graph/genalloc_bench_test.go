package graph

import (
	"testing"

	"regcast/internal/xrand"
)

// The allocation benchmarks pin the direct-to-CSR generator build path:
// ConfigurationModel, ErasedConfigurationModel and Gnp fill the graph's
// offsets/adj arrays in place instead of materialising a [][2]int32 edge
// list (and, for the erasure, a global edge map) first — measured at
// n = 1M: 113→76 MB/op, 583→122 MB/op and 247→42 MB/op respectively
// (see EXPERIMENTS.md for the full before/after table). They run at full
// scale, so they skip themselves under -short (the CI bench smoke).

func benchGen(b *testing.B, gen func(rng *xrand.Rand) (*Graph, error)) {
	b.Helper()
	if testing.Short() {
		b.Skip("1M-node generator benchmarks are not part of the -short smoke")
	}
	rng := xrand.New(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := gen(rng)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumNodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkConfigurationModelAlloc1M(b *testing.B) {
	benchGen(b, func(rng *xrand.Rand) (*Graph, error) {
		return ConfigurationModel(1<<20, 8, rng)
	})
}

func BenchmarkErasedConfigurationModelAlloc1M(b *testing.B) {
	benchGen(b, func(rng *xrand.Rand) (*Graph, error) {
		return ErasedConfigurationModel(1<<20, 8, rng)
	})
}

func BenchmarkGnpAlloc1M(b *testing.B) {
	benchGen(b, func(rng *xrand.Rand) (*Graph, error) {
		// Mean degree 8, the simulator's standard density.
		return Gnp(1<<20, 8.0/(1<<20), rng)
	})
}
