package graph

import (
	"fmt"
	"math"

	"regcast/internal/xrand"
)

// Implicit is a graph family whose adjacency is computed, not stored.
// Degree(v) and NeighborAt(v, i) for i in [0, Degree(v)) enumerate the
// exact multiset of neighbors the materialised CSR row would hold, in
// the same order — Materialize(im) and an Implicit im are interchangeable
// element-for-element. Implementations must be safe for concurrent use
// (the sharded engine calls NeighborAt from several goroutines) and
// must not draw from any shared randomness at query time: a family that
// needs random bits regenerates them deterministically per row.
//
// Node ids and neighbor ids fit in int32, matching the CSR contract.
type Implicit interface {
	NumNodes() int
	Degree(v int) int
	NeighborAt(v, i int) int32
}

// UniformDegree is an optional Implicit refinement for regular families:
// every node has the same degree. Consumers use it for O(1) dial-budget
// computation instead of an O(n) degree scan.
type UniformDegree interface {
	UniformDegree() int
}

// DegreeArray is an optional Implicit refinement exposing the full
// degree slice (shared, read-only) for families that precompute it.
type DegreeArray interface {
	Degrees() []int32
}

// Materialize builds the CSR graph whose row v is exactly
// NeighborAt(v, 0..Degree(v)) in order. It is the bridge that pins
// implicit families bit-identical to the dense path: the dense
// generators for hypercube and torus are defined as Materialize over
// the implicit family, so the two can never disagree.
func Materialize(im Implicit) (*Graph, error) {
	n := im.NumNodes()
	var stubs int64
	for v := 0; v < n; v++ {
		stubs += int64(im.Degree(v))
	}
	if stubs > math.MaxInt32 {
		return nil, fmt.Errorf("graph: materialising %d nodes needs %d adjacency slots, exceeding int32 CSR offsets — use the implicit family directly", n, stubs)
	}
	g := &Graph{
		offsets: make([]int32, n+1),
		adj:     make([]int32, stubs),
	}
	var off int32
	for v := 0; v < n; v++ {
		g.offsets[v] = off
		deg := im.Degree(v)
		for i := 0; i < deg; i++ {
			g.adj[off] = im.NeighborAt(v, i)
			off++
		}
	}
	g.offsets[n] = off
	return g, nil
}

// ImplicitHypercube is the dim-dimensional hypercube on n = 2^dim nodes
// with O(1) arithmetic adjacency: NeighborAt(v, i) flips bit i.
// dim is capped at 30 so node ids fit int32.
type ImplicitHypercube struct {
	dim int
}

// NewImplicitHypercube returns the implicit dim-dimensional hypercube.
func NewImplicitHypercube(dim int) (*ImplicitHypercube, error) {
	if dim < 1 || dim > 30 {
		return nil, fmt.Errorf("graph: hypercube dimension %d out of range [1,30]", dim)
	}
	return &ImplicitHypercube{dim: dim}, nil
}

func (h *ImplicitHypercube) NumNodes() int      { return 1 << h.dim }
func (h *ImplicitHypercube) Degree(int) int     { return h.dim }
func (h *ImplicitHypercube) UniformDegree() int { return h.dim }
func (h *ImplicitHypercube) NeighborAt(v, i int) int32 {
	return int32(v ^ (1 << i))
}

// ImplicitTorus is the rows×cols 2D torus (wrap-around grid) with O(1)
// arithmetic adjacency. Neighbor order per cell: up, down, left, right.
// Both sides must be ≥ 3 so the four neighbors are distinct.
type ImplicitTorus struct {
	rows, cols int
}

// NewImplicitTorus returns the implicit rows×cols torus.
func NewImplicitTorus(rows, cols int) (*ImplicitTorus, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus sides must be >= 3, got %dx%d", rows, cols)
	}
	if int64(rows)*int64(cols) > math.MaxInt32 {
		return nil, fmt.Errorf("graph: torus %dx%d exceeds int32 node ids", rows, cols)
	}
	return &ImplicitTorus{rows: rows, cols: cols}, nil
}

func (t *ImplicitTorus) NumNodes() int      { return t.rows * t.cols }
func (t *ImplicitTorus) Degree(int) int     { return 4 }
func (t *ImplicitTorus) UniformDegree() int { return 4 }

func (t *ImplicitTorus) NeighborAt(v, i int) int32 {
	r, c := v/t.cols, v%t.cols
	switch i {
	case 0: // up
		r--
		if r < 0 {
			r = t.rows - 1
		}
	case 1: // down
		r++
		if r == t.rows {
			r = 0
		}
	case 2: // left
		c--
		if c < 0 {
			c = t.cols - 1
		}
	default: // right
		c++
		if c == t.cols {
			c = 0
		}
	}
	return int32(r*t.cols + c)
}

// GnpStream is a seeded directed G(n,p): each ordered pair (v, w), v≠w,
// is an arc independently with probability p, and row v is regenerable
// on demand by replaying a per-row PRNG stream (counter-mode seeding:
// rowSeed = mix(seed, v)). Rows are enumerated with geometric skipping,
// so NeighborAt costs O(Degree(v)) worst case and O(i) amortised when
// scanned in order; the fast-path samplers only ever index one slot per
// dial, which for p = Θ(polylog n / n) is O(log n) work per draw.
//
// The digraph view matches the phone-call model (each caller dials from
// its own arc list); Materialize yields the row-for-row identical CSR.
// Degrees are precomputed at construction (4 B/node) — that is the only
// per-node storage.
type GnpStream struct {
	n    int
	p    float64
	seed uint64
	deg  []int32
}

// NewGnpStream builds the seeded streaming G(n,p). Construction costs
// one replay pass to count per-row degrees.
func NewGnpStream(n int, p float64, seed uint64) (*GnpStream, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: Gnp needs n >= 2 nodes, got %d", n)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("graph: edge probability %v outside [0,1]", p)
	}
	g := &GnpStream{n: n, p: p, seed: seed, deg: make([]int32, n)}
	for v := 0; v < n; v++ {
		var r xrand.Rand
		r.Seed(g.rowSeed(v))
		d := 0
		g.rowWalk(&r, v, func(int32) { d++ })
		g.deg[v] = int32(d)
	}
	return g, nil
}

func (g *GnpStream) rowSeed(v int) uint64 {
	// SplitMix64-style mix of (seed, v): distinct rows get decorrelated
	// streams even for adjacent v or seed values.
	x := g.seed ^ (uint64(v)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rowWalk replays row v's arc stream, invoking emit for each neighbor
// in ascending order. The geometric-skip walk draws exactly the same
// variates every replay, so the row is a pure function of (seed, v).
func (g *GnpStream) rowWalk(r *xrand.Rand, v int, emit func(int32)) {
	if g.p <= 0 {
		return
	}
	// Positions 0..n-2 index the candidate set {0..n-1}\{v}.
	pos := -1
	for {
		pos += 1 + r.Geometric(g.p)
		if pos > g.n-2 {
			return
		}
		w := pos
		if w >= v {
			w++
		}
		emit(int32(w))
	}
}

func (g *GnpStream) NumNodes() int    { return g.n }
func (g *GnpStream) Degree(v int) int { return int(g.deg[v]) }
func (g *GnpStream) Degrees() []int32 { return g.deg }

func (g *GnpStream) NeighborAt(v, i int) int32 {
	var r xrand.Rand
	r.Seed(g.rowSeed(v))
	var nb int32
	j := 0
	g.rowWalk(&r, v, func(w int32) {
		if j == i {
			nb = w
		}
		j++
	})
	if i < 0 || i >= j {
		panic(fmt.Sprintf("graph: GnpStream.NeighborAt(%d, %d) out of range [0,%d)", v, i, j))
	}
	return nb
}

// RegularStream is a seeded d-regular multigraph (d even) with O(1)
// regenerable adjacency and zero per-node storage: it is the union of
// d/2 pseudorandom permutation 2-factors. Permutation j is a 4-round
// Feistel network over 2b-bit values (2^(2b) ≥ n) with cycle-walking,
// so π_j and its inverse are both O(1) arithmetic. Row v lists
// π_0(v), π_0⁻¹(v), π_1(v), π_1⁻¹(v), ... — the multiset is symmetric
// (w appears in row v exactly as often as v appears in row w), so the
// family is an undirected d-regular multigraph. Self-loops occur only
// at permutation fixed points (O(d) nodes in expectation).
type RegularStream struct {
	n, d     int
	halfBits uint
	mask     uint64
	keys     [][4]uint64 // one 4-round key schedule per permutation
}

// NewRegularStream builds the seeded streaming d-regular multigraph.
// d must be even, 2 ≤ d < n.
func NewRegularStream(n, d int, seed uint64) (*RegularStream, error) {
	if n < 2 || int64(n) > math.MaxInt32 {
		return nil, fmt.Errorf("graph: regular-stream n %d out of range [2, MaxInt32]", n)
	}
	if d < 2 || d%2 != 0 || d >= n {
		return nil, fmt.Errorf("graph: regular-stream degree %d must be even and in [2, n)", d)
	}
	// Smallest b with 2^(2b) >= n.
	b := uint(1)
	for 1<<(2*b) < n {
		b++
	}
	g := &RegularStream{
		n:        n,
		d:        d,
		halfBits: b,
		mask:     1<<b - 1,
		keys:     make([][4]uint64, d/2),
	}
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		x := s
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x
	}
	for j := range g.keys {
		for rd := 0; rd < 4; rd++ {
			g.keys[j][rd] = next()
		}
	}
	return g, nil
}

func (g *RegularStream) NumNodes() int      { return g.n }
func (g *RegularStream) Degree(int) int     { return g.d }
func (g *RegularStream) UniformDegree() int { return g.d }

// feistelF is the round function: a cheap keyed mix of the b-bit half.
func (g *RegularStream) feistelF(half, key uint64) uint64 {
	x := (half + key) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x & g.mask
}

// encrypt applies the 4-round Feistel permutation over 2b bits.
func (g *RegularStream) encrypt(j int, x uint64) uint64 {
	l, r := x>>g.halfBits, x&g.mask
	for rd := 0; rd < 4; rd++ {
		l, r = r, l^g.feistelF(r, g.keys[j][rd])
	}
	return l<<g.halfBits | r
}

// decrypt inverts encrypt.
func (g *RegularStream) decrypt(j int, x uint64) uint64 {
	l, r := x>>g.halfBits, x&g.mask
	for rd := 3; rd >= 0; rd-- {
		l, r = r^g.feistelF(l, g.keys[j][rd]), l
	}
	return l<<g.halfBits | r
}

// perm is π_j over [0,n): cycle-walk the 2b-bit Feistel permutation
// until it lands back inside the domain. Terminates because a
// permutation's cycle through x re-enters [0,n) at least at x itself.
func (g *RegularStream) perm(j, v int) int32 {
	x := uint64(v)
	for {
		x = g.encrypt(j, x)
		if x < uint64(g.n) {
			return int32(x)
		}
	}
}

// permInv is π_j⁻¹ over [0,n).
func (g *RegularStream) permInv(j, v int) int32 {
	x := uint64(v)
	for {
		x = g.decrypt(j, x)
		if x < uint64(g.n) {
			return int32(x)
		}
	}
}

func (g *RegularStream) NeighborAt(v, i int) int32 {
	j := i >> 1
	if i&1 == 0 {
		return g.perm(j, v)
	}
	return g.permInv(j, v)
}
