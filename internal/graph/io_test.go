package graph

import (
	"bytes"
	"strings"
	"testing"

	"regcast/internal/xrand"
)

func TestWriteDOT(t *testing.T) {
	g, err := NewFromEdges(3, [][2]int32{{0, 1}, {1, 2}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "test graph!"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph test_graph_ {") {
		t.Errorf("bad header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	for _, want := range []string{"0 -- 1;", "1 -- 2;", "2 -- 2;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("missing closing brace")
	}
}

func TestWriteDOTEmptyName(t *testing.T) {
	g, err := Complete(2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph G {") {
		t.Error("default name not applied")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := RandomRegular(64, 6, xrand.New(70))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost shape: n %d→%d m %d→%d",
			g.NumNodes(), back.NumNodes(), g.NumEdges(), back.NumEdges())
	}
	// Degrees must match exactly (edge multiset preserved).
	for v := 0; v < g.NumNodes(); v++ {
		if back.Degree(v) != g.Degree(v) {
			t.Fatalf("degree of %d changed: %d → %d", v, g.Degree(v), back.Degree(v))
		}
	}
}

func TestEdgeListRoundTripWithLoopsAndMultiEdges(t *testing.T) {
	g, err := NewFromEdges(3, [][2]int32{{0, 0}, {0, 1}, {0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.SelfLoopCount() != 1 {
		t.Errorf("loops %d, want 1", back.SelfLoopCount())
	}
	if back.MultiEdgeCount() != 1 {
		t.Errorf("multi-edges %d, want 1", back.MultiEdgeCount())
	}
	if back.Degree(0) != g.Degree(0) {
		t.Errorf("degree(0) %d → %d", g.Degree(0), back.Degree(0))
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("-1 0\n")); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("3 2\n0 1\n")); err == nil {
		t.Error("truncated edge list accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("2 1\n0 5\n")); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
}
