package graph

import (
	"math"
	"testing"
	"testing/quick"

	"regcast/internal/xrand"
)

// TestRandomRegularDiameterNearLogarithmic verifies the "small diameter"
// P2P property the paper's introduction relies on: random d-regular graphs
// have diameter ≈ log_{d-1} n (within a small additive/multiplicative
// band).
func TestRandomRegularDiameterNearLogarithmic(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{512, 4}, {1024, 6}, {2048, 8}} {
		g, err := RandomRegular(tc.n, tc.d, xrand.New(uint64(tc.n)))
		if err != nil {
			t.Fatal(err)
		}
		diam, err := g.DiameterLowerBound(0)
		if err != nil {
			t.Fatal(err)
		}
		ideal := math.Log(float64(tc.n)) / math.Log(float64(tc.d-1))
		if float64(diam) < ideal*0.8 {
			t.Errorf("G(%d,%d) diameter %d below the Moore-bound regime %.1f", tc.n, tc.d, diam, ideal)
		}
		if float64(diam) > ideal*2.5+4 {
			t.Errorf("G(%d,%d) diameter %d far above log_{d-1} n = %.1f", tc.n, tc.d, diam, ideal)
		}
	}
}

// TestEdgeCountConservation: for any mask, inner + cut + outer-inner edges
// must equal the total edge count.
func TestEdgeCountConservation(t *testing.T) {
	g, err := RandomRegular(200, 6, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(bits []bool) bool {
		inSet := make([]bool, g.NumNodes())
		for i := range inSet {
			if len(bits) > 0 {
				inSet[i] = bits[i%len(bits)]
			}
		}
		outSet := make([]bool, g.NumNodes())
		for i := range outSet {
			outSet[i] = !inSet[i]
		}
		inner := g.EdgesWithin(inSet)
		outer := g.EdgesWithin(outSet)
		cut := g.EdgesBetween(inSet)
		cutRev := g.EdgesBetween(outSet)
		return cut == cutRev && inner+outer+cut == g.NumEdges()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestNeighborsInSetSumsToCut: summing per-node cross-set stubs over the
// set gives exactly the cut size.
func TestNeighborsInSetSumsToCut(t *testing.T) {
	g, err := RandomRegular(100, 8, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	inSet := make([]bool, 100)
	rng := xrand.New(5)
	for i := range inSet {
		inSet[i] = rng.Bool(0.3)
	}
	outSet := make([]bool, 100)
	for i := range outSet {
		outSet[i] = !inSet[i]
	}
	sum := 0
	for v := 0; v < 100; v++ {
		if inSet[v] {
			sum += g.NeighborsInSet(v, outSet)
		}
	}
	if cut := g.EdgesBetween(inSet); sum != cut {
		t.Errorf("stub sum %d != cut %d", sum, cut)
	}
}

// TestInducedSubgraphPreservesInternalEdges: the induced subgraph has
// exactly the edges with both endpoints kept.
func TestInducedSubgraphPreservesInternalEdges(t *testing.T) {
	g, err := RandomRegular(80, 6, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	keep := make([]bool, 80)
	for i := 0; i < 40; i++ {
		keep[i] = true
	}
	sub, orig, err := g.InducedSubgraph(keep)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != g.EdgesWithin(keep) {
		t.Errorf("subgraph edges %d != EdgesWithin %d", sub.NumEdges(), g.EdgesWithin(keep))
	}
	// Degrees must match the kept-neighbour counts of the originals.
	for newV, oldV := range orig {
		if sub.Degree(newV) != g.NeighborsInSet(int(oldV), keep) {
			t.Errorf("node %d degree mismatch", oldV)
		}
	}
}

// TestConfigurationModelLoopAndMultiEdgeRates checks the classical pairing
// model expectations: E[self-loops] ≈ (d−1)/2, E[surplus multi-edges] ≈
// (d−1)²/4, independent of n.
func TestConfigurationModelLoopAndMultiEdgeRates(t *testing.T) {
	const n, d, reps = 2048, 6, 30
	var loops, multi float64
	for seed := uint64(0); seed < reps; seed++ {
		g, err := ConfigurationModel(n, d, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		loops += float64(g.SelfLoopCount())
		multi += float64(g.MultiEdgeCount())
	}
	loops /= reps
	multi /= reps
	wantLoops := float64(d-1) / 2         // 2.5
	wantMulti := float64((d-1)*(d-1)) / 4 // 6.25
	if math.Abs(loops-wantLoops) > 1.2 {
		t.Errorf("mean self-loops %.2f, want ≈ %.2f", loops, wantLoops)
	}
	if math.Abs(multi-wantMulti) > 2.5 {
		t.Errorf("mean surplus multi-edges %.2f, want ≈ %.2f", multi, wantMulti)
	}
}

// TestGnpMatchesNaiveGenerator compares the geometric-skipping G(n,p)
// against a direct Bernoulli-per-pair construction statistically.
func TestGnpMatchesNaiveGenerator(t *testing.T) {
	const n, p, reps = 60, 0.2, 40
	want := p * float64(n*(n-1)) / 2
	var skipping float64
	for seed := uint64(0); seed < reps; seed++ {
		g, err := Gnp(n, p, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		skipping += float64(g.NumEdges())
	}
	skipping /= reps
	sd := math.Sqrt(want * (1 - p))
	if math.Abs(skipping-want) > 4*sd/math.Sqrt(reps)+2 {
		t.Errorf("geometric-skipping G(n,p) mean edges %.1f, want ≈ %.1f", skipping, want)
	}
}

// TestHypercubeBipartite: Q_dim has no odd cycles; its BFS layers from any
// vertex 2-colour the graph.
func TestHypercubeBipartite(t *testing.T) {
	g, err := Hypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFSDistances(0)
	for v := 0; v < g.NumNodes(); v++ {
		for _, w := range g.Neighbors(v) {
			if (dist[v]+dist[w])%2 == 0 {
				t.Fatalf("edge (%d,%d) within a BFS parity class", v, w)
			}
		}
	}
}

// TestCartesianProductDegreeSum: deg_{G□H}(u,x) = deg_G(u) + deg_H(x).
func TestCartesianProductDegreeSum(t *testing.T) {
	ring, err := Ring(7)
	if err != nil {
		t.Fatal(err)
	}
	k4, err := Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := CartesianProduct(ring, k4)
	if err != nil {
		t.Fatal(err)
	}
	if prod.NumNodes() != 28 {
		t.Fatalf("n = %d", prod.NumNodes())
	}
	if !prod.IsRegular(2 + 3) {
		t.Error("product not (2+3)-regular")
	}
	if prod.NumEdges() != 7*6+4*7 { // |E_G|·|V_H| + |E_H|·|V_G| = 7·4 + 6·7
		t.Errorf("product edges = %d, want %d", prod.NumEdges(), 7*4+6*7)
	}
}
