package graph

import (
	"testing"

	"regcast/internal/xrand"
)

func BenchmarkRandomRegular16k(b *testing.B) {
	rng := xrand.New(1)
	for i := 0; i < b.N; i++ {
		if _, err := RandomRegular(1<<14, 8, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConfigurationModel16k(b *testing.B) {
	rng := xrand.New(2)
	for i := 0; i < b.N; i++ {
		if _, err := ConfigurationModel(1<<14, 8, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFS16k(b *testing.B) {
	g, err := RandomRegular(1<<14, 8, xrand.New(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BFSDistances(i % g.NumNodes())
	}
}
