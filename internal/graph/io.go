package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format (undirected; parallel
// edges and self-loops appear as repeated lines).
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "G"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %s {\n", sanitizeDOTName(name))
	for v := 0; v < g.NumNodes(); v++ {
		for _, nb := range g.Neighbors(v) {
			if int(nb) < v {
				continue // each undirected edge once; loops kept at v == nb/2 pairs
			}
			if int(nb) == v {
				// A self-loop occupies two stub entries; emit one line per
				// pair.
				continue
			}
			fmt.Fprintf(bw, "  %d -- %d;\n", v, nb)
		}
		// Emit self-loops: two stub entries per loop.
		loops := 0
		for _, nb := range g.Neighbors(v) {
			if int(nb) == v {
				loops++
			}
		}
		for l := 0; l < loops/2; l++ {
			fmt.Fprintf(bw, "  %d -- %d;\n", v, v)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// sanitizeDOTName keeps DOT identifiers to a safe alphabet.
func sanitizeDOTName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	if b.Len() == 0 {
		return "G"
	}
	return b.String()
}

// WriteEdgeList writes a plain-text representation: the first line is
// "n m", followed by one "u v" line per undirected edge. Self-loops appear
// as "v v". The format round-trips through ReadEdgeList.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", g.NumNodes(), g.NumEdges())
	for v := 0; v < g.NumNodes(); v++ {
		skipSelf := 0
		for _, nb := range g.Neighbors(v) {
			switch {
			case int(nb) > v:
				fmt.Fprintf(bw, "%d %d\n", v, nb)
			case int(nb) == v:
				// Two stubs per loop: emit every second occurrence.
				skipSelf++
				if skipSelf%2 == 0 {
					fmt.Fprintf(bw, "%d %d\n", v, v)
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var n, m int
	if _, err := fmt.Fscan(br, &n, &m); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: invalid header n=%d m=%d", n, m)
	}
	edges := make([][2]int32, 0, m)
	for i := 0; i < m; i++ {
		var u, v int32
		if _, err := fmt.Fscan(br, &u, &v); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d/%d: %w", i+1, m, err)
		}
		edges = append(edges, [2]int32{u, v})
	}
	g, err := NewFromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	return g, nil
}
