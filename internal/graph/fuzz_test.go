package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList feeds arbitrary text to the parser: it must either
// return an error or a structurally valid graph, never panic.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("3 2\n0 1\n1 2\n")
	f.Add("1 1\n0 0\n")
	f.Add("0 0\n")
	f.Add("garbage")
	f.Add("2 1\n0 9\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		// A successfully parsed graph must round-trip losslessly.
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read own output: %v", err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: (%d,%d) → (%d,%d)",
				g.NumNodes(), g.NumEdges(), back.NumNodes(), back.NumEdges())
		}
	})
}
