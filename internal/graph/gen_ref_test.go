package graph

import (
	"fmt"
	"testing"

	"regcast/internal/xrand"
)

// This file pins the direct-to-CSR generator builds to the historical
// edge-list derivations: for every seed, the new build paths must produce
// element-identical graphs AND leave the generator in the same stream
// position, so nothing downstream of a generator call (scenario seeding,
// experiment tables, goldens) can shift.

// refConfigurationModel is the historical edge-list ConfigurationModel.
func refConfigurationModel(n, d int, rng *xrand.Rand) (*Graph, error) {
	if err := checkRegularParams(n, d); err != nil {
		return nil, err
	}
	stubs := make([]int32, n*d)
	for i := range stubs {
		stubs[i] = int32(i / d)
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	edges := make([][2]int32, 0, n*d/2)
	for i := 0; i < len(stubs); i += 2 {
		edges = append(edges, [2]int32{stubs[i], stubs[i+1]})
	}
	return NewFromEdges(n, edges)
}

// refErased is the historical map-based erasure over a multigraph.
func refErased(g *Graph, n int) (*Graph, error) {
	type pair struct{ a, b int32 }
	seen := make(map[pair]struct{})
	var edges [][2]int32
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) <= v {
				continue
			}
			p := pair{int32(v), w}
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			edges = append(edges, [2]int32{int32(v), w})
		}
	}
	return NewFromEdges(n, edges)
}

// refGnp is the historical edge-list G(n,p) build.
func refGnp(n int, p float64, rng *xrand.Rand) (*Graph, error) {
	var edges [][2]int32
	if p > 0 {
		if p == 1 {
			for v := 0; v < n; v++ {
				for w := v + 1; w < n; w++ {
					edges = append(edges, [2]int32{int32(v), int32(w)})
				}
			}
		} else {
			gnpWalk(n, p, rng, func(v, w int32) {
				edges = append(edges, [2]int32{v, w})
			})
		}
	}
	return NewFromEdges(n, edges)
}

// sameGraph fails unless a and b have identical CSR contents.
func sameGraph(t *testing.T, label string, a, b *Graph) {
	t.Helper()
	ao, aa := a.CSR()
	bo, ba := b.CSR()
	if len(ao) != len(bo) || len(aa) != len(ba) {
		t.Fatalf("%s: CSR shapes differ: %d/%d offsets, %d/%d adj", label, len(ao), len(bo), len(aa), len(ba))
	}
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatalf("%s: offsets[%d] = %d vs %d", label, i, ao[i], bo[i])
		}
	}
	for i := range aa {
		if aa[i] != ba[i] {
			t.Fatalf("%s: adj[%d] = %d vs %d", label, i, aa[i], ba[i])
		}
	}
}

// sameStream fails unless both generators draw the same next word.
func sameStream(t *testing.T, label string, a, b *xrand.Rand) {
	t.Helper()
	if a.Uint64() != b.Uint64() {
		t.Fatalf("%s: generator stream positions diverged", label)
	}
}

func TestConfigurationModelMatchesEdgeListBuild(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		for _, nd := range [][2]int{{16, 4}, {64, 8}, {101, 6}, {256, 3}} {
			n, d := nd[0], nd[1]
			if n*d%2 != 0 {
				continue
			}
			ra, rb := xrand.New(seed), xrand.New(seed)
			got, err := ConfigurationModel(n, d, ra)
			if err != nil {
				t.Fatal(err)
			}
			want, err := refConfigurationModel(n, d, rb)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("config-model seed=%d n=%d d=%d", seed, n, d)
			sameGraph(t, label, got, want)
			sameStream(t, label, ra, rb)
		}
	}
}

func TestErasedConfigurationModelMatchesMapBuild(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		n, d := 128, 8
		ra, rb := xrand.New(seed), xrand.New(seed)
		got, err := ErasedConfigurationModel(n, d, ra)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := refConfigurationModel(n, d, rb)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refErased(multi, n)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("erased seed=%d", seed)
		sameGraph(t, label, got, want)
		sameStream(t, label, ra, rb)
		if !got.IsSimple() {
			t.Fatalf("%s: erased graph not simple", label)
		}
	}
}

func TestGnpMatchesEdgeListBuild(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		for _, p := range []float64{0, 0.01, 0.1, 0.6, 1} {
			for _, n := range []int{0, 1, 2, 33, 128} {
				ra, rb := xrand.New(seed), xrand.New(seed)
				got, err := Gnp(n, p, ra)
				if err != nil {
					t.Fatal(err)
				}
				want, err := refGnp(n, p, rb)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("gnp seed=%d n=%d p=%v", seed, n, p)
				sameGraph(t, label, got, want)
				sameStream(t, label, ra, rb)
			}
		}
	}
}
