package graph

import (
	"fmt"

	"regcast/internal/xrand"
)

// ConfigurationModel generates a random d-regular multigraph by the pairing
// model of §1.2: every node gets d stubs, the nd stubs are paired uniformly
// at random, and each pair becomes an edge. Self-loops and parallel edges
// may occur (the paper analyses exactly this process); use RandomRegular
// for a simple graph.
//
// n*d must be even and d < n is required for a meaningful topology.
//
// The build is direct-to-CSR: degrees are exactly d, so the offsets are
// known up front and each stub pair is written straight into the
// adjacency array in pair order — no intermediate edge list, which cuts
// allocation from 113 to 76 MB/op at n = 1M (pinned by
// BenchmarkConfigurationModelAlloc1M). The graph is element-identical to
// what routing the pairs through NewFromEdges produces
// (TestConfigurationModelMatchesEdgeListBuild).
func ConfigurationModel(n, d int, rng *xrand.Rand) (*Graph, error) {
	if err := checkRegularParams(n, d); err != nil {
		return nil, err
	}
	stubs := make([]int32, n*d)
	for i := range stubs {
		stubs[i] = int32(i / d)
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := &Graph{offsets: make([]int32, n+1), adj: make([]int32, n*d)}
	for v := 0; v <= n; v++ {
		g.offsets[v] = int32(v * d)
	}
	cursor := make([]int32, n)
	copy(cursor, g.offsets[:n])
	for i := 0; i < len(stubs); i += 2 {
		a, b := stubs[i], stubs[i+1]
		g.adj[cursor[a]] = b
		cursor[a]++
		g.adj[cursor[b]] = a
		cursor[b]++
	}
	return g, nil
}

// RandomRegular generates a uniform-ish random simple d-regular graph using
// the Steger–Wormald algorithm: stubs are paired one at a time, rejecting
// pairs that would create a self-loop or parallel edge; if the process gets
// stuck it restarts. For d = o(n^{1/3}) the resulting distribution is
// asymptotically uniform and restarts are rare.
func RandomRegular(n, d int, rng *xrand.Rand) (*Graph, error) {
	if err := checkRegularParams(n, d); err != nil {
		return nil, err
	}
	const maxRestarts = 1000
	for attempt := 0; attempt < maxRestarts; attempt++ {
		g, ok := tryStegerWormald(n, d, rng)
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: RandomRegular(n=%d, d=%d) failed after %d restarts", n, d, maxRestarts)
}

// tryStegerWormald performs one pass of the pairing-with-rejection process.
// It returns ok=false if the process got stuck (only unsuitable pairs left).
func tryStegerWormald(n, d int, rng *xrand.Rand) (*Graph, bool) {
	// unmatched holds stub ids; stub s belongs to node s/d.
	unmatched := make([]int32, n*d)
	for i := range unmatched {
		unmatched[i] = int32(i)
	}
	adjSet := make(map[int64]struct{}, n*d/2)
	edgeKey := func(a, b int32) int64 {
		if a > b {
			a, b = b, a
		}
		return int64(a)<<32 | int64(b)
	}
	edges := make([][2]int32, 0, n*d/2)
	// A pairing step may need several retries; bound total retries to detect
	// the (rare) stuck state without an expensive suitability scan.
	retryBudget := 50*n*d + 1000
	for len(unmatched) > 0 {
		i := rng.IntN(len(unmatched))
		j := rng.IntN(len(unmatched))
		if i == j {
			continue
		}
		su, sv := unmatched[i], unmatched[j]
		u, v := su/int32(d), sv/int32(d)
		if u == v {
			retryBudget--
			if retryBudget <= 0 {
				return nil, false
			}
			continue
		}
		if _, dup := adjSet[edgeKey(u, v)]; dup {
			retryBudget--
			if retryBudget <= 0 {
				return nil, false
			}
			continue
		}
		adjSet[edgeKey(u, v)] = struct{}{}
		edges = append(edges, [2]int32{u, v})
		// Remove both stubs (remove the larger index first).
		if i < j {
			i, j = j, i
		}
		unmatched[i] = unmatched[len(unmatched)-1]
		unmatched = unmatched[:len(unmatched)-1]
		unmatched[j] = unmatched[len(unmatched)-1]
		unmatched = unmatched[:len(unmatched)-1]
	}
	g, err := NewFromEdges(n, edges)
	if err != nil {
		return nil, false
	}
	return g, true
}

// ErasedConfigurationModel runs the pairing model and then erases
// self-loops and collapses parallel edges, producing a simple graph whose
// degrees are at most d (and typically d for all but O(1) nodes).
//
// The erasure is direct-to-CSR: each surviving edge is identified from
// its smaller endpoint's row with an O(d) scratch dedup (no global edge
// map, no edge list), degrees are counted in a first pass and the
// adjacency filled in a second, in the same edge order the historical
// map-based erasure produced — so the output graph is element-identical
// while peak allocation drops severalfold at n = 1M
// (BenchmarkErasedConfigurationModelAlloc1M).
func ErasedConfigurationModel(n, d int, rng *xrand.Rand) (*Graph, error) {
	g, err := ConfigurationModel(n, d, rng)
	if err != nil {
		return nil, err
	}
	// forEachKept calls f for every surviving edge (v,w), v < w, of node
	// v's row in first-occurrence order: self-loops skipped, lower
	// endpoints skipped (the edge is owned by its smaller endpoint), and
	// parallel copies deduplicated against the ≤ d entries already kept.
	kept := make([]int32, 0, d)
	forEachKept := func(v int, f func(w int32)) {
		kept = kept[:0]
		for _, w := range g.Neighbors(v) {
			if int(w) <= v {
				continue
			}
			dup := false
			for _, x := range kept {
				if x == w {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			kept = append(kept, w)
			f(w)
		}
	}
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		forEachKept(v, func(w int32) {
			deg[v]++
			deg[w]++
		})
	}
	out := &Graph{offsets: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		out.offsets[v+1] = out.offsets[v] + deg[v]
	}
	out.adj = make([]int32, out.offsets[n])
	cursor := make([]int32, n)
	copy(cursor, out.offsets[:n])
	for v := 0; v < n; v++ {
		forEachKept(v, func(w int32) {
			out.adj[cursor[v]] = w
			cursor[v]++
			out.adj[cursor[w]] = int32(v)
			cursor[w]++
		})
	}
	return out, nil
}

// Gnp generates an Erdős–Rényi random graph G(n,p) using geometric skipping
// so the cost is proportional to the number of edges, not n².
//
// The build is direct-to-CSR in two passes over the same skip sequence: a
// throwaway copy of the generator counts degrees, then the caller's
// generator replays the identical stream while the edges are written
// straight into the adjacency array — no [2]int32 edge list, cutting
// allocation from 247 to 42 MB/op at mean degree 8, n = 1M
// (BenchmarkGnpAlloc1M). Because the replay
// consumes exactly the draws the single pass did, the caller's stream
// position and the produced graph are identical to the historical
// edge-list build.
func Gnp(n int, p float64, rng *xrand.Rand) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: Gnp n=%d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: Gnp p=%v out of [0,1]", p)
	}
	if p == 1 {
		// Complete graph, no randomness: row v is every other node in
		// ascending order (the order the lexicographic edge walk yields).
		g := &Graph{offsets: make([]int32, n+1), adj: make([]int32, n*(n-1))}
		for v := 0; v <= n; v++ {
			g.offsets[v] = int32(v * (n - 1))
		}
		for v := 0; v < n; v++ {
			row := g.adj[g.offsets[v]:g.offsets[v+1]]
			i := 0
			for w := 0; w < n; w++ {
				if w != v {
					row[i] = int32(w)
					i++
				}
			}
		}
		return g, nil
	}
	deg := make([]int32, n)
	edgeStubs := int32(0)
	if p > 0 {
		probe := *rng // value copy: replays the exact same stream
		gnpWalk(n, p, &probe, func(v, w int32) {
			deg[v]++
			deg[w]++
			edgeStubs += 2
		})
	}
	g := &Graph{offsets: make([]int32, n+1), adj: make([]int32, edgeStubs)}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	cursor := deg // reuse: overwritten with the fill cursors
	copy(cursor, g.offsets[:n])
	if p > 0 {
		gnpWalk(n, p, rng, func(v, w int32) {
			g.adj[cursor[v]] = w
			cursor[v]++
			g.adj[cursor[w]] = v
			cursor[w]++
		})
	}
	return g, nil
}

// gnpWalk iterates over the n*(n-1)/2 potential edges (v,w), v < w, in
// lexicographic order, skipping a Geometric(p) count between successive
// present edges, and calls f for each present edge. Both Gnp passes run
// this walk with generators in identical states, so the call sequences
// match.
func gnpWalk(n int, p float64, rng *xrand.Rand, f func(v, w int32)) {
	v, w := 0, 0 // current position; w <= v means row finished
	advance := func(steps int) bool {
		for steps > 0 && v < n {
			rowLeft := n - 1 - w
			if steps <= rowLeft {
				w += steps
				return true
			}
			steps -= rowLeft
			v++
			w = v
		}
		return v < n
	}
	if !advance(1 + rng.Geometric(p)) {
		return
	}
	for {
		f(int32(v), int32(w))
		if !advance(1 + rng.Geometric(p)) {
			return
		}
	}
}

// Ring returns the cycle graph C_n.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: Ring needs n >= 3, got %d", n)
	}
	edges := make([][2]int32, n)
	for v := 0; v < n; v++ {
		edges[v] = [2]int32{int32(v), int32((v + 1) % n)}
	}
	return NewFromEdges(n, edges)
}

// Complete returns the complete graph K_n.
func Complete(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: Complete needs n >= 1, got %d", n)
	}
	var edges [][2]int32
	for v := 0; v < n; v++ {
		for w := v + 1; w < n; w++ {
			edges = append(edges, [2]int32{int32(v), int32(w)})
		}
	}
	return NewFromEdges(n, edges)
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
// It is defined as Materialize over the implicit family, so row order
// (ascending bit index) is identical between the two paths by
// construction. Dense materialisation needs 2^dim × dim adjacency
// slots to fit int32 offsets, capping dim at 26 here; the implicit
// family goes to dim 30.
func Hypercube(dim int) (*Graph, error) {
	h, err := NewImplicitHypercube(dim)
	if err != nil {
		return nil, err
	}
	return Materialize(h)
}

// Torus returns the rows×cols 2D torus (4-regular when rows, cols >= 3),
// materialised from the implicit family (row order: up, down, left,
// right per cell) so the two paths agree element-for-element.
func Torus(rows, cols int) (*Graph, error) {
	t, err := NewImplicitTorus(rows, cols)
	if err != nil {
		return nil, err
	}
	return Materialize(t)
}

// CartesianProduct returns the Cartesian product g □ h: nodes are pairs
// (u, x); (u,x)~(v,x) when u~v in g, and (u,x)~(u,y) when x~y in h. The
// paper's §5 counterexample is the product of a random regular graph with
// K5. Both factors must be simple.
func CartesianProduct(g, h *Graph) (*Graph, error) {
	if !g.IsSimple() || !h.IsSimple() {
		return nil, fmt.Errorf("graph: CartesianProduct requires simple factors")
	}
	ng, nh := g.NumNodes(), h.NumNodes()
	id := func(u, x int) int32 { return int32(u*nh + x) }
	var edges [][2]int32
	for u := 0; u < ng; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				for x := 0; x < nh; x++ {
					edges = append(edges, [2]int32{id(u, x), id(int(v), x)})
				}
			}
		}
	}
	for x := 0; x < nh; x++ {
		for _, y := range h.Neighbors(x) {
			if int(y) > x {
				for u := 0; u < ng; u++ {
					edges = append(edges, [2]int32{id(u, x), id(u, int(y))})
				}
			}
		}
	}
	return NewFromEdges(ng*nh, edges)
}

func checkRegularParams(n, d int) error {
	if n <= 0 || d <= 0 {
		return fmt.Errorf("graph: invalid regular-graph parameters n=%d d=%d", n, d)
	}
	if d >= n {
		return fmt.Errorf("graph: degree d=%d must be < n=%d", d, n)
	}
	if n*d%2 != 0 {
		return fmt.Errorf("graph: n*d must be even, got n=%d d=%d", n, d)
	}
	return nil
}
