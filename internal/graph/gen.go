package graph

import (
	"fmt"

	"regcast/internal/xrand"
)

// ConfigurationModel generates a random d-regular multigraph by the pairing
// model of §1.2: every node gets d stubs, the nd stubs are paired uniformly
// at random, and each pair becomes an edge. Self-loops and parallel edges
// may occur (the paper analyses exactly this process); use RandomRegular
// for a simple graph.
//
// n*d must be even and d < n is required for a meaningful topology.
func ConfigurationModel(n, d int, rng *xrand.Rand) (*Graph, error) {
	if err := checkRegularParams(n, d); err != nil {
		return nil, err
	}
	stubs := make([]int32, n*d)
	for i := range stubs {
		stubs[i] = int32(i / d)
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	edges := make([][2]int32, 0, n*d/2)
	for i := 0; i < len(stubs); i += 2 {
		edges = append(edges, [2]int32{stubs[i], stubs[i+1]})
	}
	return NewFromEdges(n, edges)
}

// RandomRegular generates a uniform-ish random simple d-regular graph using
// the Steger–Wormald algorithm: stubs are paired one at a time, rejecting
// pairs that would create a self-loop or parallel edge; if the process gets
// stuck it restarts. For d = o(n^{1/3}) the resulting distribution is
// asymptotically uniform and restarts are rare.
func RandomRegular(n, d int, rng *xrand.Rand) (*Graph, error) {
	if err := checkRegularParams(n, d); err != nil {
		return nil, err
	}
	const maxRestarts = 1000
	for attempt := 0; attempt < maxRestarts; attempt++ {
		g, ok := tryStegerWormald(n, d, rng)
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: RandomRegular(n=%d, d=%d) failed after %d restarts", n, d, maxRestarts)
}

// tryStegerWormald performs one pass of the pairing-with-rejection process.
// It returns ok=false if the process got stuck (only unsuitable pairs left).
func tryStegerWormald(n, d int, rng *xrand.Rand) (*Graph, bool) {
	// unmatched holds stub ids; stub s belongs to node s/d.
	unmatched := make([]int32, n*d)
	for i := range unmatched {
		unmatched[i] = int32(i)
	}
	adjSet := make(map[int64]struct{}, n*d/2)
	edgeKey := func(a, b int32) int64 {
		if a > b {
			a, b = b, a
		}
		return int64(a)<<32 | int64(b)
	}
	edges := make([][2]int32, 0, n*d/2)
	// A pairing step may need several retries; bound total retries to detect
	// the (rare) stuck state without an expensive suitability scan.
	retryBudget := 50*n*d + 1000
	for len(unmatched) > 0 {
		i := rng.IntN(len(unmatched))
		j := rng.IntN(len(unmatched))
		if i == j {
			continue
		}
		su, sv := unmatched[i], unmatched[j]
		u, v := su/int32(d), sv/int32(d)
		if u == v {
			retryBudget--
			if retryBudget <= 0 {
				return nil, false
			}
			continue
		}
		if _, dup := adjSet[edgeKey(u, v)]; dup {
			retryBudget--
			if retryBudget <= 0 {
				return nil, false
			}
			continue
		}
		adjSet[edgeKey(u, v)] = struct{}{}
		edges = append(edges, [2]int32{u, v})
		// Remove both stubs (remove the larger index first).
		if i < j {
			i, j = j, i
		}
		unmatched[i] = unmatched[len(unmatched)-1]
		unmatched = unmatched[:len(unmatched)-1]
		unmatched[j] = unmatched[len(unmatched)-1]
		unmatched = unmatched[:len(unmatched)-1]
	}
	g, err := NewFromEdges(n, edges)
	if err != nil {
		return nil, false
	}
	return g, true
}

// ErasedConfigurationModel runs the pairing model and then erases
// self-loops and collapses parallel edges, producing a simple graph whose
// degrees are at most d (and typically d for all but O(1) nodes).
func ErasedConfigurationModel(n, d int, rng *xrand.Rand) (*Graph, error) {
	g, err := ConfigurationModel(n, d, rng)
	if err != nil {
		return nil, err
	}
	type pair struct{ a, b int32 }
	seen := make(map[pair]struct{})
	var edges [][2]int32
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) <= v { // skip loops (w==v) and count each pair once
				continue
			}
			p := pair{int32(v), w}
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			edges = append(edges, [2]int32{int32(v), w})
		}
	}
	return NewFromEdges(n, edges)
}

// Gnp generates an Erdős–Rényi random graph G(n,p) using geometric skipping
// so the cost is proportional to the number of edges, not n².
func Gnp(n int, p float64, rng *xrand.Rand) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: Gnp n=%d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: Gnp p=%v out of [0,1]", p)
	}
	var edges [][2]int32
	if p > 0 {
		if p == 1 {
			for v := 0; v < n; v++ {
				for w := v + 1; w < n; w++ {
					edges = append(edges, [2]int32{int32(v), int32(w)})
				}
			}
		} else {
			// Iterate over the n*(n-1)/2 potential edges in lexicographic
			// order, skipping a Geometric(p) count between successive edges.
			v, w := 0, 0 // current position; w <= v means row finished
			advance := func(steps int) bool {
				for steps > 0 && v < n {
					rowLeft := n - 1 - w
					if steps <= rowLeft {
						w += steps
						return true
					}
					steps -= rowLeft
					v++
					w = v
				}
				return v < n
			}
			w = 0
			v = 0
			if !advance(1 + rng.Geometric(p)) {
				return buildGnp(n, edges)
			}
			for {
				edges = append(edges, [2]int32{int32(v), int32(w)})
				if !advance(1 + rng.Geometric(p)) {
					break
				}
			}
		}
	}
	return buildGnp(n, edges)
}

func buildGnp(n int, edges [][2]int32) (*Graph, error) {
	return NewFromEdges(n, edges)
}

// Ring returns the cycle graph C_n.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: Ring needs n >= 3, got %d", n)
	}
	edges := make([][2]int32, n)
	for v := 0; v < n; v++ {
		edges[v] = [2]int32{int32(v), int32((v + 1) % n)}
	}
	return NewFromEdges(n, edges)
}

// Complete returns the complete graph K_n.
func Complete(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: Complete needs n >= 1, got %d", n)
	}
	var edges [][2]int32
	for v := 0; v < n; v++ {
		for w := v + 1; w < n; w++ {
			edges = append(edges, [2]int32{int32(v), int32(w)})
		}
	}
	return NewFromEdges(n, edges)
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) (*Graph, error) {
	if dim < 1 || dim > 30 {
		return nil, fmt.Errorf("graph: Hypercube dim=%d out of [1,30]", dim)
	}
	n := 1 << dim
	var edges [][2]int32
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			w := v ^ (1 << b)
			if w > v {
				edges = append(edges, [2]int32{int32(v), int32(w)})
			}
		}
	}
	return NewFromEdges(n, edges)
}

// Torus returns the rows×cols 2D torus (4-regular when rows, cols >= 3).
func Torus(rows, cols int) (*Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: Torus needs rows, cols >= 3, got %d×%d", rows, cols)
	}
	id := func(r, c int) int32 { return int32(r*cols + c) }
	var edges [][2]int32
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			edges = append(edges,
				[2]int32{id(r, c), id(r, (c+1)%cols)},
				[2]int32{id(r, c), id((r+1)%rows, c)},
			)
		}
	}
	return NewFromEdges(rows*cols, edges)
}

// CartesianProduct returns the Cartesian product g □ h: nodes are pairs
// (u, x); (u,x)~(v,x) when u~v in g, and (u,x)~(u,y) when x~y in h. The
// paper's §5 counterexample is the product of a random regular graph with
// K5. Both factors must be simple.
func CartesianProduct(g, h *Graph) (*Graph, error) {
	if !g.IsSimple() || !h.IsSimple() {
		return nil, fmt.Errorf("graph: CartesianProduct requires simple factors")
	}
	ng, nh := g.NumNodes(), h.NumNodes()
	id := func(u, x int) int32 { return int32(u*nh + x) }
	var edges [][2]int32
	for u := 0; u < ng; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				for x := 0; x < nh; x++ {
					edges = append(edges, [2]int32{id(u, x), id(int(v), x)})
				}
			}
		}
	}
	for x := 0; x < nh; x++ {
		for _, y := range h.Neighbors(x) {
			if int(y) > x {
				for u := 0; u < ng; u++ {
					edges = append(edges, [2]int32{id(u, x), id(u, int(y))})
				}
			}
		}
	}
	return NewFromEdges(ng*nh, edges)
}

func checkRegularParams(n, d int) error {
	if n <= 0 || d <= 0 {
		return fmt.Errorf("graph: invalid regular-graph parameters n=%d d=%d", n, d)
	}
	if d >= n {
		return fmt.Errorf("graph: degree d=%d must be < n=%d", d, n)
	}
	if n*d%2 != 0 {
		return fmt.Errorf("graph: n*d must be even, got n=%d d=%d", n, d)
	}
	return nil
}
