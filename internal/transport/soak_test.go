package transport

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// quietKey is the comparable part of a health snapshot, used to detect
// quiescence (two identical consecutive snapshots = nothing in flight).
type quietKey struct {
	h Health
	f FaultStats
}

func healthKey(hr HealthReporter) quietKey {
	h := hr.Health()
	var f FaultStats
	if h.Faults != nil {
		f = *h.Faults
	}
	h.Faults = nil
	h.Peers = nil
	return quietKey{h, f}
}

// settleHealth polls until the transport's counters stop moving.
func settleHealth(t *testing.T, hr HealthReporter) {
	t.Helper()
	deadline := time.Now().Add(stepWait(t, 5*time.Second))
	prev := healthKey(hr)
	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		cur := healthKey(hr)
		if reflect.DeepEqual(cur, prev) {
			return
		}
		prev = cur
	}
	t.Log("settleHealth: counters still moving at deadline; ledger check may be early")
}

// TestChaosSoak is the tentpole's acceptance test: anti-entropy gossip
// over the resilient daemon with deterministic fault injection. For every
// fault regime the rumour must still reach all nodes, and the combined
// plan+daemon ledger must balance exactly — every packet handed to Send
// ends in delivered, deduped, or an accounted drop bucket.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	const (
		n, deg, k = 16, 4, 2
		maxTicks  = 80
	)
	half := make([]int, n/2)
	for i := range half {
		half[i] = i
	}
	cases := []struct {
		name      string
		cfg       FaultConfig
		wantFault func(FaultStats) bool // the regime must actually fire
		wireLoss  bool                  // severed conns may strand written frames
	}{
		{
			name:      "drop20",
			cfg:       FaultConfig{Seed: 90, Drop: 0.20},
			wantFault: func(s FaultStats) bool { return s.Dropped > 0 },
		},
		{
			name:      "delay",
			cfg:       FaultConfig{Seed: 91, DelayProb: 0.30, Delay: 2 * time.Millisecond},
			wantFault: func(s FaultStats) bool { return s.Delayed > 0 },
		},
		{
			name:      "partition-heal",
			cfg:       FaultConfig{Seed: 92, Partitions: []PartitionWindow{{From: 1, Until: 5, A: half}}},
			wantFault: func(s FaultStats) bool { return s.PartitionDrops > 0 },
		},
		{
			name:      "crash-restart",
			cfg:       FaultConfig{Seed: 93, Crashes: []CrashWindow{{Node: 3, From: 1, Until: 4}}},
			wantFault: func(s FaultStats) bool { return s.CrashDrops > 0 },
			wireLoss:  true,
		},
		{
			name: "everything",
			cfg: FaultConfig{
				Seed: 94, Drop: 0.20, Duplicate: 0.05, Reorder: 0.10,
				DelayProb: 0.10, Delay: time.Millisecond,
				Partitions: []PartitionWindow{{From: 2, Until: 4, A: half}},
				Crashes:    []CrashWindow{{Node: 5, From: 1, Until: 3}},
			},
			wantFault: func(s FaultStats) bool { return s.Dropped > 0 && s.Duplicated > 0 },
			wireLoss:  true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := gossipGraph(t, n, deg)
			d, err := NewDaemon(DaemonConfig{
				Nodes: n, Mailbox: 8192, Seed: 5,
				BackoffBase: 5 * time.Millisecond, BackoffMax: 25 * time.Millisecond,
				DedupExpiry: time.Minute,
			})
			if err != nil {
				t.Fatal(err)
			}
			plan, err := NewFaultPlan(d, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			c, err := NewCluster(g, plan, k, 46)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = c.Close() }()
			const rumorID = "chaos-rumor"
			if err := c.Insert(0, Rumor{ID: rumorID, Payload: "survives faults"}); err != nil {
				t.Fatal(err)
			}
			ticks := 0
			for tick := 1; tick <= maxTicks; tick++ {
				plan.AdvanceEpoch() // one tick = one fault epoch
				if err := c.Tick(); err != nil {
					t.Fatal(err)
				}
				// Let the tick's packets drain before counting knowers.
				spreadDeadline := time.Now().Add(stepWait(t, 250*time.Millisecond))
				for time.Now().Before(spreadDeadline) && c.CountKnowing(rumorID) < n {
					time.Sleep(2 * time.Millisecond)
				}
				ticks = tick
				if c.CountKnowing(rumorID) == n {
					break
				}
			}
			if know := c.CountKnowing(rumorID); know != n {
				t.Fatalf("%s: rumour reached %d/%d nodes in %d ticks", tc.name, know, n, ticks)
			}
			settleHealth(t, plan)
			if err := c.Close(); err != nil { // closes plan, then daemon
				t.Fatal(err)
			}
			h := plan.Health()
			js, _ := json.Marshal(h)
			t.Logf("%s: all %d nodes informed in %d ticks; health=%s", tc.name, n, ticks, js)
			if h.Faults == nil {
				t.Fatal("fault ledger missing from health snapshot")
			}
			if !tc.wantFault(*h.Faults) {
				t.Errorf("%s: fault regime never fired: %+v", tc.name, *h.Faults)
			}
			// The ledger: sent = delivered + deduped + dropped, exactly.
			if gap := h.LedgerGap(); gap != 0 {
				t.Errorf("%s: LedgerGap = %d, want 0 (faults %+v)", tc.name, gap, *h.Faults)
			}
			if !tc.wireLoss && h.WireLost() != 0 {
				t.Errorf("%s: WireLost = %d with no severed connections, want 0", tc.name, h.WireLost())
			}
		})
	}
}

// TestChaosSoakCrashExercisesRedial pins the crash-restart acceptance
// detail: severing the crashed node's connection forces the dial
// scheduler to re-establish it after the restart.
func TestChaosSoakCrashExercisesRedial(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	g := gossipGraph(t, 8, 4)
	d, err := NewDaemon(DaemonConfig{
		Nodes: 8, Mailbox: 4096, Seed: 5,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 25 * time.Millisecond,
		DedupExpiry: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// From: 2, not 1 — tick 1 runs fault-free so persistent connections to
	// node 2 exist before the crash severs them.
	plan, err := NewFaultPlan(d, FaultConfig{
		Seed:    95,
		Crashes: []CrashWindow{{Node: 2, From: 2, Until: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(g, plan, 2, 47)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Insert(0, Rumor{ID: "redial-rumor"}); err != nil {
		t.Fatal(err)
	}
	for tick := 1; tick <= 40 && c.CountKnowing("redial-rumor") < 8; tick++ {
		plan.AdvanceEpoch()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if know := c.CountKnowing("redial-rumor"); know != 8 {
		t.Fatalf("rumour reached %d/8 nodes despite crash-restart", know)
	}
	settleHealth(t, plan)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	h := plan.Health()
	if h.Redials == 0 {
		t.Errorf("crash-restart exercised zero redials (dials %d)", h.Dials)
	}
	if gap := h.LedgerGap(); gap != 0 {
		t.Errorf("LedgerGap = %d, want 0", gap)
	}
}
