package transport

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// newPlan wraps a fresh in-memory transport; Cleanup closes the plan
// (and through it the inner transport).
func newPlan(t *testing.T, n int, cfg FaultConfig) *FaultPlan {
	t.Helper()
	inner, err := NewInMem(n, 4096)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewFaultPlan(inner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = plan.Close() })
	return plan
}

func TestFaultConfigValidation(t *testing.T) {
	inner, err := NewInMem(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = inner.Close() }()
	bad := []FaultConfig{
		{Drop: -0.1},
		{Duplicate: 1.5},
		{Reorder: 2},
		{DelayProb: -1},
		{Delay: -time.Second},
		{Partitions: []PartitionWindow{{From: 5, Until: 2}}},
		{Crashes: []CrashWindow{{Node: 0, From: 3, Until: 1}}},
	}
	for i, cfg := range bad {
		if _, err := NewFaultPlan(inner, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewFaultPlan(nil, FaultConfig{}); err == nil {
		t.Error("nil inner transport accepted")
	}
}

// TestFaultPlanDeterministicSchedule is the acceptance criterion: two
// plans with the same seed, fed identical per-pair packet sequences at
// identical epochs, must record identical fault schedules — decisions are
// pure functions, immune to goroutine interleaving.
func TestFaultPlanDeterministicSchedule(t *testing.T) {
	cfg := FaultConfig{
		Seed:        1234,
		Drop:        0.3,
		Duplicate:   0.15,
		Reorder:     0.2,
		DelayProb:   0.1,
		Delay:       time.Millisecond,
		Partitions:  []PartitionWindow{{From: 2, Until: 4, A: []int{0, 1}}},
		Crashes:     []CrashWindow{{Node: 3, From: 1, Until: 3}},
		RecordTrace: true,
	}
	feed := func(p *FaultPlan) {
		for epoch := 0; epoch < 6; epoch++ {
			for i := 0; i < 4; i++ {
				for from := 0; from < 4; from++ {
					to := (from + 1 + i) % 4
					rid := fmt.Sprintf("e%d-i%d-%d", epoch, i, from)
					_ = p.Send(to, Packet{From: from, Kind: KindPush, Rumors: []Rumor{{ID: rid}}})
				}
			}
			p.AdvanceEpoch()
		}
		_ = p.Close()
	}
	a, b := newPlan(t, 4, cfg), newPlan(t, 4, cfg)
	feed(a)
	feed(b)
	ta, tb := a.Trace(), b.Trace()
	if len(ta) == 0 {
		t.Fatal("empty fault trace")
	}
	if !reflect.DeepEqual(ta, tb) {
		t.Fatalf("same-seed fault schedules differ: %d vs %d decisions", len(ta), len(tb))
	}
	if a.Stats() != b.Stats() {
		t.Errorf("same-seed fault stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
	// The schedule must actually exercise multiple fault kinds.
	kinds := map[string]bool{}
	for _, d := range ta {
		kinds[d.Action] = true
	}
	for _, want := range []string{"pass", "drop", "partition-drop", "crash-drop"} {
		if !kinds[want] {
			t.Errorf("trace never recorded %q (kinds seen: %v)", want, kinds)
		}
	}
	// A different seed must yield a different schedule.
	cfg2 := cfg
	cfg2.Seed = 4321
	c := newPlan(t, 4, cfg2)
	feed(c)
	if reflect.DeepEqual(ta, c.Trace()) {
		t.Error("different seeds produced identical fault schedules")
	}
}

func TestFaultPlanDropRate(t *testing.T) {
	plan := newPlan(t, 2, FaultConfig{Seed: 7, Drop: 0.5})
	const total = 2000
	for i := 0; i < total; i++ {
		if err := plan.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
			t.Fatal(err)
		}
	}
	s := plan.Stats()
	if s.In != total || s.Dropped+s.Forwarded != total {
		t.Fatalf("stats don't partition: %+v", s)
	}
	if s.Dropped < 850 || s.Dropped > 1150 {
		t.Errorf("dropped %d of %d at p=0.5, outside [850,1150]", s.Dropped, total)
	}
}

func TestFaultPlanDuplicate(t *testing.T) {
	plan := newPlan(t, 2, FaultConfig{Seed: 7, Duplicate: 1})
	const total = 10
	for i := 0; i < total; i++ {
		if err := plan.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
			t.Fatal(err)
		}
	}
	s := plan.Stats()
	if s.Duplicated != total || s.Forwarded != 2*total {
		t.Errorf("duplicated/forwarded = %d/%d, want %d/%d", s.Duplicated, s.Forwarded, total, 2*total)
	}
}

func TestFaultPlanDelay(t *testing.T) {
	plan := newPlan(t, 2, FaultConfig{Seed: 7, DelayProb: 1, Delay: 5 * time.Millisecond})
	const total = 3
	for i := 0; i < total; i++ {
		if err := plan.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
			t.Fatal(err)
		}
	}
	// Close waits out the in-flight delayed forwards.
	if err := plan.Close(); err != nil {
		t.Fatal(err)
	}
	s := plan.Stats()
	if s.Delayed != total || s.Forwarded != total {
		t.Errorf("delayed/forwarded = %d/%d, want %d/%d", s.Delayed, s.Forwarded, total, total)
	}
}

func TestFaultPlanReorderNeverLosesPackets(t *testing.T) {
	inner, err := NewInMem(2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewFaultPlan(inner, FaultConfig{Seed: 11, Reorder: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	for i := 0; i < total; i++ {
		rid := fmt.Sprintf("r%02d", i)
		if err := plan.Send(1, Packet{From: 0, Kind: KindPush, Rumors: []Rumor{{ID: rid}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := plan.Close(); err != nil { // flushes the final holdover
		t.Fatal(err)
	}
	s := plan.Stats()
	if s.Reordered == 0 {
		t.Fatal("p=0.5 reorder never held a packet")
	}
	if s.Forwarded != total {
		t.Errorf("forwarded = %d, want all %d (holds must flush, never leak)", s.Forwarded, total)
	}
	var got []string
	for p := range inner.Inbox(1) {
		got = append(got, p.Rumors[0].ID)
	}
	if len(got) != total {
		t.Fatalf("inner received %d packets, want %d", len(got), total)
	}
	seen := map[string]bool{}
	inOrder := true
	for i, id := range got {
		seen[id] = true
		if id != fmt.Sprintf("r%02d", i) {
			inOrder = false
		}
	}
	if len(seen) != total {
		t.Error("reorder duplicated or lost packet IDs")
	}
	if inOrder {
		t.Error("reorder left the stream fully ordered despite held packets")
	}
}

func TestFaultPlanPartitionWindow(t *testing.T) {
	plan := newPlan(t, 4, FaultConfig{
		Seed:       7,
		Partitions: []PartitionWindow{{From: 0, Until: 2, A: []int{0, 1}}},
	})
	send := func(from, to int) {
		t.Helper()
		if err := plan.Send(to, Packet{From: from, Kind: KindPullRequest}); err != nil {
			t.Fatal(err)
		}
	}
	send(0, 2) // crosses the cut: drop
	send(2, 0) // crosses the other way: drop
	send(0, 1) // same side: pass
	send(2, 3) // same side: pass
	if s := plan.Stats(); s.PartitionDrops != 2 || s.Forwarded != 2 {
		t.Errorf("partitionDrops/forwarded = %d/%d, want 2/2", s.PartitionDrops, s.Forwarded)
	}
	plan.AdvanceEpoch()
	plan.AdvanceEpoch() // epoch 2: healed
	send(0, 2)
	if s := plan.Stats(); s.PartitionDrops != 2 || s.Forwarded != 3 {
		t.Errorf("after heal: partitionDrops/forwarded = %d/%d, want 2/3", s.PartitionDrops, s.Forwarded)
	}
}

// killerInMem records which peers had their connections severed — the
// connKiller hook a crash window fires on the inner transport.
type killerInMem struct {
	*InMem
	killed []int
}

func (k *killerInMem) DropPeerConns(id int) { k.killed = append(k.killed, id) }

func TestFaultPlanCrashWindow(t *testing.T) {
	mem, err := NewInMem(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	inner := &killerInMem{InMem: mem}
	plan, err := NewFaultPlan(inner, FaultConfig{
		Seed:    7,
		Crashes: []CrashWindow{{Node: 1, From: 1, Until: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = plan.Close() }()
	send := func(from, to int) {
		t.Helper()
		if err := plan.Send(to, Packet{From: from, Kind: KindPullRequest}); err != nil {
			t.Fatal(err)
		}
	}
	send(0, 1) // epoch 0: before the crash, passes
	plan.AdvanceEpoch()
	if !reflect.DeepEqual(inner.killed, []int{1}) {
		t.Errorf("crash start severed conns for %v, want [1]", inner.killed)
	}
	send(0, 1) // to the crashed node: drop
	send(1, 2) // from the crashed node: drop
	send(0, 2) // uninvolved pair: pass
	plan.AdvanceEpoch()
	plan.AdvanceEpoch() // epoch 3: restarted
	send(0, 1)
	s := plan.Stats()
	if s.CrashDrops != 2 || s.Forwarded != 3 {
		t.Errorf("crashDrops/forwarded = %d/%d, want 2/3", s.CrashDrops, s.Forwarded)
	}
}

func TestFaultPlanSendAfterClose(t *testing.T) {
	plan := newPlan(t, 2, FaultConfig{Seed: 1})
	if err := plan.Close(); err != nil {
		t.Fatal(err)
	}
	if err := plan.Send(1, Packet{From: 0}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
	if err := plan.Close(); err != nil {
		t.Error("double close errored")
	}
}
