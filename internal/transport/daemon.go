package transport

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// DaemonConfig parameterises a Daemon. The zero value of every field is
// replaced by a sensible default; only Nodes is required.
type DaemonConfig struct {
	// Nodes is the number of local gossip endpoints (one listener each).
	Nodes int
	// Mailbox is the per-node inbox capacity (default 1024).
	Mailbox int
	// QueueLen is the per-peer bounded send-queue capacity; a full queue
	// drops with backpressure accounting instead of blocking (default 128).
	QueueLen int
	// SendTimeout bounds one write attempt on a peer connection
	// (default 2s).
	SendTimeout time.Duration
	// SendRetries is how many times a broken write is retried on a fresh
	// connection before the packet is dropped and the peer quarantined
	// (default 1).
	SendRetries int
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// BackoffBase is the first quarantine window after a failure; windows
	// double per consecutive failure up to BackoffMax, with ±25% seeded
	// jitter (defaults 25ms / 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxPacket bounds one wire frame; larger frames are rejected at the
	// receiver and the connection dropped (default MaxPacketBytes).
	MaxPacket int
	// MaxConns is the outbound connection budget: when a dial would
	// exceed it, the least-recently-used idle dynamic connection is
	// evicted first (default 512; 0 keeps the default, use a negative
	// value for unlimited).
	MaxConns int
	// DedupExpiry is the dupemap rotation interval (default 1s); rumour
	// content is remembered for DedupGens−1 .. DedupGens intervals.
	DedupExpiry time.Duration
	// DedupGens is the number of dupemap generations (default 4, min 2).
	DedupGens int
	// StaticPeers are pinned: never budget-evicted and immune to
	// RemovePeer. Everything else is a dynamic peer fed by discovery.
	StaticPeers []int
	// Seed drives backoff jitter; fixed seed, reproducible dial schedule.
	Seed uint64
}

// withDefaults fills zero fields.
func (c DaemonConfig) withDefaults() DaemonConfig {
	if c.Mailbox == 0 {
		c.Mailbox = 1024
	}
	if c.QueueLen == 0 {
		c.QueueLen = 128
	}
	if c.SendTimeout == 0 {
		c.SendTimeout = 2 * time.Second
	}
	if c.SendRetries == 0 {
		c.SendRetries = 1
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = time.Second
	}
	if c.MaxPacket == 0 {
		c.MaxPacket = MaxPacketBytes
	}
	if c.MaxConns == 0 {
		c.MaxConns = 512
	} else if c.MaxConns < 0 {
		c.MaxConns = 0 // scheduler convention: 0 = unlimited
	}
	if c.DedupExpiry == 0 {
		c.DedupExpiry = time.Second
	}
	if c.DedupGens == 0 {
		c.DedupGens = 4
	}
	return c
}

// Daemon is the resilient long-lived gossip transport: the promotion of
// TCP from one socket per packet to persistent per-peer connections
// behind a dial scheduler. Each destination owns a peerLink with a
// bounded send queue and a writer goroutine; writers dial lazily, retry
// broken writes on a fresh connection, and quarantine unreachable peers
// with exponential backoff so the rest of a fanout proceeds. Receivers
// decode newline-delimited JSON frames with a hard size bound and
// suppress already-delivered rumour content through an expiring dupemap.
// Every packet outcome is accounted in Metrics — see Health.LedgerGap.
type Daemon struct {
	cfg       DaemonConfig
	listeners []net.Listener
	addrs     []string
	boxes     []chan Packet
	links     []*peerLink
	active    []atomic.Bool // discovery membership (RemovePeer clears)
	down      []atomic.Bool // crash-window flag (SetNodeDown)
	static    []bool
	dedup     *dupemap
	sched     *dialScheduler
	met       Metrics

	mu      sync.Mutex
	closed  bool
	closeCh chan struct{}
	conns   map[net.Conn]struct{} // accepted inbound connections

	wg       sync.WaitGroup // accept loops, readers, dedup rotator
	writerWg sync.WaitGroup // link writers
}

var _ Transport = (*Daemon)(nil)
var _ HealthReporter = (*Daemon)(nil)

// NewDaemon starts listeners and accept loops for cfg.Nodes endpoints.
func NewDaemon(cfg DaemonConfig) (*Daemon, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("transport: NewDaemon(Nodes=%d) invalid", cfg.Nodes)
	}
	if cfg.Mailbox < 0 || cfg.QueueLen < 0 {
		return nil, fmt.Errorf("transport: NewDaemon negative capacity")
	}
	cfg = cfg.withDefaults()
	n := cfg.Nodes
	d := &Daemon{
		cfg:       cfg,
		listeners: make([]net.Listener, n),
		addrs:     make([]string, n),
		boxes:     make([]chan Packet, n),
		links:     make([]*peerLink, n),
		active:    make([]atomic.Bool, n),
		down:      make([]atomic.Bool, n),
		static:    make([]bool, n),
		dedup:     newDupemap(cfg.DedupGens, 0),
		sched:     newDialScheduler(cfg.BackoffBase, cfg.BackoffMax, cfg.MaxConns, cfg.Seed),
		closeCh:   make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	for _, p := range cfg.StaticPeers {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("transport: static peer %d out of range [0,%d)", p, n)
		}
		d.static[p] = true
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = d.Close()
			return nil, fmt.Errorf("transport: daemon listen for node %d: %w", i, err)
		}
		d.listeners[i] = ln
		d.addrs[i] = ln.Addr().String()
		d.boxes[i] = make(chan Packet, cfg.Mailbox)
		d.links[i] = &peerLink{d: d, to: i, queue: make(chan Packet, cfg.QueueLen)}
		d.active[i].Store(true)
	}
	for i := 0; i < n; i++ {
		d.wg.Add(1)
		go d.acceptLoop(i)
	}
	if cfg.DedupExpiry > 0 {
		d.wg.Add(1)
		go d.rotateLoop()
	}
	return d, nil
}

// Addr returns the listen address of a node.
func (d *Daemon) Addr(node int) string { return d.addrs[node] }

// Inbox implements Transport.
func (d *Daemon) Inbox(node int) <-chan Packet { return d.boxes[node] }

// isClosed reports the shutdown flag.
func (d *Daemon) isClosed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// Send implements Transport: route the packet onto the destination's
// bounded queue. Unreachable destinations (removed, down, quarantined,
// queue full) drop with accounting and return nil — gossip tolerates
// loss, and one dead peer must not abort a fanout. Only a shut-down
// daemon returns an error (ErrClosed).
func (d *Daemon) Send(to int, p Packet) error {
	if to < 0 || to >= len(d.links) {
		return fmt.Errorf("transport: Send to %d out of range [0,%d)", to, len(d.links))
	}
	if d.isClosed() {
		return ErrClosed
	}
	d.met.Sends.Add(1)
	if p.From >= 0 && p.From < len(d.down) && d.down[p.From].Load() {
		d.met.DownDrops.Add(1) // a crashed node sends nothing
		return nil
	}
	if d.down[to].Load() {
		d.met.DownDrops.Add(1)
		return nil
	}
	if !d.active[to].Load() {
		d.met.RemovedDrops.Add(1)
		return nil
	}
	if d.sched.quarantined(to, time.Now()) {
		d.met.QuarantineDrops.Add(1)
		return nil
	}
	p.To = to
	l := d.links[to]
	l.qmu.Lock()
	if l.qclosed {
		l.qmu.Unlock()
		// This send passed the closed check before Close flipped it (a
		// send already after Close returns ErrClosed above). It was
		// accepted, then shut down: account it as a shutdown drop so the
		// ledger stays balanced for wrappers that counted the accept.
		d.met.ShutdownDrops.Add(1)
		return nil
	}
	if !l.started {
		l.started = true
		d.writerWg.Add(1)
		go l.writerLoop()
	}
	var full bool
	select {
	case l.queue <- p:
	default:
		full = true
	}
	l.qmu.Unlock()
	if full {
		d.met.QueueDrops.Add(1)
	}
	return nil
}

// AddPeer (re-)admits a peer to the dialable set — the discovery feed's
// join half. Peers start admitted; this is for re-admission after churn.
func (d *Daemon) AddPeer(id int) {
	if id >= 0 && id < len(d.active) {
		d.active[id].Store(true)
	}
}

// RemovePeer withdraws a dynamic peer from the dialable set and closes
// its persistent connection — the discovery feed's leave half. Static
// peers are pinned and ignore removal.
func (d *Daemon) RemovePeer(id int) {
	if id < 0 || id >= len(d.active) || d.static[id] {
		return
	}
	d.active[id].Store(false)
	d.links[id].closeConn()
}

// SetNodeDown marks a node crashed (true) or restarted (false). While
// down, the node neither sends nor receives: packets in either direction
// drop with DownDrops accounting, and its persistent connection is torn
// down so the dial scheduler must re-establish it on restart. Fault plans
// drive this during crash-restart windows.
func (d *Daemon) SetNodeDown(id int, down bool) {
	if id < 0 || id >= len(d.down) {
		return
	}
	d.down[id].Store(down)
	if down {
		d.DropPeerConns(id)
	}
}

// DropPeerConns severs the persistent connection to a peer without
// touching membership — the fault injector's way of breaking a link
// mid-flight so redial/backoff machinery is exercised for real.
func (d *Daemon) DropPeerConns(id int) {
	if id >= 0 && id < len(d.links) {
		d.links[id].closeConn()
	}
}

// RotateDedup expires the oldest dedup generation immediately (tests use
// this for deterministic expiry instead of the wall-clock rotator).
func (d *Daemon) RotateDedup() { d.dedup.Rotate() }

// rotateLoop expires dedup generations on the configured interval.
func (d *Daemon) rotateLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.DedupExpiry)
	defer t.Stop()
	for {
		select {
		case <-d.closeCh:
			return
		case <-t.C:
			d.dedup.Rotate()
		}
	}
}

// acceptLoop accepts inbound connections for node i; each connection
// carries a stream of frames, not one packet.
func (d *Daemon) acceptLoop(i int) {
	defer d.wg.Done()
	for {
		conn, err := d.listeners[i].Accept()
		if err != nil {
			return
		}
		if !d.trackConn(conn) {
			_ = conn.Close()
			return
		}
		d.wg.Add(1)
		go d.readLoop(i, conn)
	}
}

// trackConn registers an accepted connection for shutdown; it reports
// false when the daemon is already closing.
func (d *Daemon) trackConn(conn net.Conn) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.conns[conn] = struct{}{}
	return true
}

// untrackConn forgets a connection whose reader exited.
func (d *Daemon) untrackConn(conn net.Conn) {
	d.mu.Lock()
	delete(d.conns, conn)
	d.mu.Unlock()
	_ = conn.Close()
}

// readLoop decodes newline-delimited JSON frames off one inbound
// connection, with MaxPacket bounding each frame.
func (d *Daemon) readLoop(i int, conn net.Conn) {
	defer d.wg.Done()
	defer d.untrackConn(conn)
	sc := bufio.NewScanner(conn)
	// Scanner's limit is max(cap(buf), max): keep the initial buffer at or
	// under MaxPacket or a small configured bound would be ignored.
	bufCap := 64 << 10
	if d.cfg.MaxPacket < bufCap {
		bufCap = d.cfg.MaxPacket
	}
	sc.Buffer(make([]byte, 0, bufCap), d.cfg.MaxPacket)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var p Packet
		if err := json.Unmarshal(line, &p); err != nil {
			d.met.DecodeDrops.Add(1)
			continue
		}
		d.met.FramesIn.Add(1)
		d.receive(i, p)
	}
	if errors.Is(sc.Err(), bufio.ErrTooLong) {
		// An oversized frame cannot be resynchronised; count it and drop
		// the connection (the sender's link will redial).
		d.met.OversizeDrops.Add(1)
	}
}

// receive is the terminal accounting point for one decoded frame: down
// check, dedup, then mailbox. The dedup key is only recorded after a
// successful mailbox insert — marking content "seen" that was actually
// dropped would suppress its retransmissions for a whole expiry window.
func (d *Daemon) receive(i int, p Packet) {
	if d.down[i].Load() {
		d.met.DownDrops.Add(1)
		return
	}
	key, dedupable := contentKey(i, p)
	if dedupable && d.dedup.Has(key) {
		d.met.Deduped.Add(1)
		return
	}
	select {
	case d.boxes[i] <- p:
		d.met.Delivered.Add(1)
		if dedupable {
			d.dedup.Add(key)
		}
	default:
		d.met.MailboxDrops.Add(1)
	}
}

// Health implements HealthReporter.
func (d *Daemon) Health() Health {
	h := d.met.snapshot()
	h.ConnsOpen = d.sched.openConns()
	now := time.Now()
	h.Peers = make([]PeerHealth, len(d.links))
	for i, l := range d.links {
		state := PeerIdle
		switch {
		case d.down[i].Load():
			state = PeerDown
		case !d.active[i].Load():
			state = PeerRemoved
		case d.sched.quarantined(i, now):
			state = PeerQuarantined
		case l.hasConn():
			state = PeerUp
		}
		h.Peers[i] = PeerHealth{
			Peer:     i,
			State:    state,
			StateStr: state.String(),
			Static:   d.static[i],
			Queued:   len(l.queue),
			Fails:    d.sched.failCount(i),
		}
	}
	return h
}

// Close implements Transport. Shutdown order matters: queues close first
// and writers drain (remaining packets count as ShutdownDrops), then
// connections and listeners fall, then readers finish, and only then do
// the mailboxes close — so no goroutine can deliver into a closed box.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	close(d.closeCh)
	d.mu.Unlock()

	for _, l := range d.links {
		if l == nil {
			continue
		}
		l.qmu.Lock()
		if !l.qclosed {
			l.qclosed = true
			close(l.queue)
		}
		l.qmu.Unlock()
	}
	d.writerWg.Wait()
	for _, l := range d.links {
		if l != nil {
			l.closeConn()
		}
	}
	for _, ln := range d.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	d.mu.Lock()
	for conn := range d.conns {
		_ = conn.Close()
	}
	d.mu.Unlock()
	d.wg.Wait()
	for _, b := range d.boxes {
		if b != nil {
			close(b)
		}
	}
	return nil
}

// peerLink is the persistent outbound link to one destination: a bounded
// queue, a lazily-started writer goroutine, and at most one connection.
type peerLink struct {
	d  *Daemon
	to int

	qmu     sync.Mutex
	queue   chan Packet
	qclosed bool
	started bool

	cmu     sync.Mutex
	conn    net.Conn
	enc     *json.Encoder
	lastUse atomic.Int64 // unix nanos of last successful write (LRU eviction)
}

// hasConn reports whether a connection is currently open.
func (l *peerLink) hasConn() bool {
	l.cmu.Lock()
	defer l.cmu.Unlock()
	return l.conn != nil
}

// closeConn tears down the link's connection (if any) and releases its
// budget slot. Safe from any goroutine; the writer just redials.
func (l *peerLink) closeConn() {
	l.cmu.Lock()
	if l.conn != nil {
		_ = l.conn.Close()
		l.conn = nil
		l.enc = nil
		l.d.sched.releaseSlot()
	}
	l.cmu.Unlock()
}

// writerLoop drains the queue until Close; it owns all writes on this
// link.
func (l *peerLink) writerLoop() {
	defer l.d.writerWg.Done()
	defer l.closeConn()
	for p := range l.queue {
		if l.d.isClosed() {
			l.d.met.ShutdownDrops.Add(1)
			continue
		}
		l.deliver(p)
	}
}

// deliver writes one packet, dialing if needed and retrying a broken
// write on a fresh connection. Exhausted retries quarantine the peer and
// drop the packet with accounting — graceful degradation, not an error.
func (l *peerLink) deliver(p Packet) {
	d := l.d
	if d.sched.quarantined(l.to, time.Now()) {
		d.met.QuarantineDrops.Add(1)
		return
	}
	if !d.active[l.to].Load() {
		d.met.RemovedDrops.Add(1)
		return
	}
	attempts := 0
	for {
		if err := l.ensureConn(); err != nil {
			d.met.WriteDrops.Add(1)
			return
		}
		l.cmu.Lock()
		conn, enc := l.conn, l.enc
		l.cmu.Unlock()
		if conn == nil {
			// Evicted or crashed between ensureConn and here; redial.
			attempts++
			if attempts > d.cfg.SendRetries {
				d.sched.onFailure(l.to, time.Now())
				d.met.WriteDrops.Add(1)
				return
			}
			d.met.Retries.Add(1)
			continue
		}
		_ = conn.SetWriteDeadline(time.Now().Add(d.cfg.SendTimeout))
		if err := enc.Encode(p); err == nil {
			d.met.Written.Add(1)
			l.lastUse.Store(time.Now().UnixNano())
			return
		}
		l.closeConn()
		attempts++
		if attempts > d.cfg.SendRetries {
			d.sched.onFailure(l.to, time.Now())
			d.met.WriteDrops.Add(1)
			return
		}
		d.met.Retries.Add(1)
	}
}

// ensureConn dials the link's destination if no connection is open,
// consulting the scheduler for budget (evicting an idle dynamic link
// when over) and recording history for backoff.
func (l *peerLink) ensureConn() error {
	l.cmu.Lock()
	if l.conn != nil {
		l.cmu.Unlock()
		return nil
	}
	l.cmu.Unlock()
	d := l.d
	if d.sched.acquireSlot(d.evictIdleConn) {
		d.met.BudgetEvictions.Add(1)
	}
	d.met.Dials.Add(1)
	conn, err := net.DialTimeout("tcp", d.addrs[l.to], d.cfg.DialTimeout)
	if err != nil {
		d.sched.releaseSlot()
		d.met.DialFails.Add(1)
		d.sched.onFailure(l.to, time.Now())
		return err
	}
	if d.sched.onSuccess(l.to) {
		d.met.Redials.Add(1)
	}
	l.cmu.Lock()
	if l.conn != nil {
		// Lost a race with another dial on this link (cannot happen while
		// the writer is the only dialer, but stay safe).
		l.cmu.Unlock()
		_ = conn.Close()
		d.sched.releaseSlot()
		return nil
	}
	l.conn = conn
	l.enc = json.NewEncoder(conn)
	l.lastUse.Store(time.Now().UnixNano())
	l.cmu.Unlock()
	return nil
}

// evictIdleConn closes the least-recently-used idle dynamic connection to
// free a budget slot; it reports whether it found a victim.
func (d *Daemon) evictIdleConn() bool {
	var victim *peerLink
	oldest := int64(math.MaxInt64)
	for i, l := range d.links {
		if d.static[i] || !l.hasConn() || len(l.queue) > 0 {
			continue
		}
		if lu := l.lastUse.Load(); lu < oldest {
			oldest, victim = lu, l
		}
	}
	if victim == nil {
		return false
	}
	victim.closeConn()
	return true
}
