package transport

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"regcast/internal/graph"
	"regcast/internal/xrand"
)

// stepWait returns the budget for one blocking wait, honouring the test
// binary's -timeout through t.Deadline: the default is clamped so a stuck
// wait fails this test with slack before the whole binary is killed.
func stepWait(t *testing.T, def time.Duration) time.Duration {
	t.Helper()
	if dl, ok := t.Deadline(); ok {
		if remain := time.Until(dl) - 250*time.Millisecond; remain < def {
			if remain < 10*time.Millisecond {
				return 10 * time.Millisecond
			}
			return remain
		}
	}
	return def
}

// waitCond polls cond until it holds or the deadline-aware budget runs
// out, failing the test with msg on timeout.
func waitCond(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(stepWait(t, 2*time.Second))
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached: %s", msg)
}

func TestKindString(t *testing.T) {
	if KindPush.String() != "push" || KindPullRequest.String() != "pull-request" ||
		KindPullReply.String() != "pull-reply" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestInMemValidation(t *testing.T) {
	if _, err := NewInMem(0, 8); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewInMem(4, 0); err == nil {
		t.Error("mailbox=0 accepted")
	}
}

func TestInMemSendReceive(t *testing.T) {
	tr, err := NewInMem(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	if err := tr.Send(2, Packet{From: 0, Kind: KindPush, Rumors: []Rumor{{ID: "r1", Payload: "x"}}}); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-tr.Inbox(2):
		if p.From != 0 || p.To != 2 || p.Kind != KindPush || len(p.Rumors) != 1 {
			t.Errorf("packet mangled: %+v", p)
		}
	case <-time.After(stepWait(t, time.Second)):
		t.Fatal("packet not delivered")
	}
}

func TestInMemSendErrors(t *testing.T) {
	tr, err := NewInMem(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(5, Packet{}); err == nil {
		t.Error("out-of-range target accepted")
	}
	// Overfill: second send is dropped silently, recorded in Dropped.
	if err := tr.Send(0, Packet{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(0, Packet{}); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", tr.Dropped)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(0, Packet{}); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close = %v, want ErrClosed", err)
	}
	if err := tr.Close(); err != nil {
		t.Error("double close errored")
	}
}

func TestInMemCloseClosesInboxes(t *testing.T) {
	tr, err := NewInMem(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-tr.Inbox(0); open {
		t.Error("inbox still open after Close")
	}
}

func TestTCPValidation(t *testing.T) {
	if _, err := NewTCP(0, 8); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestTCPSendReceive(t *testing.T) {
	tr, err := NewTCP(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	if tr.Addr(0) == "" || tr.Addr(1) == "" {
		t.Fatal("missing listen addresses")
	}
	want := Packet{From: 0, Kind: KindPullRequest}
	if err := tr.Send(1, want); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-tr.Inbox(1):
		if p.From != 0 || p.To != 1 || p.Kind != KindPullRequest {
			t.Errorf("packet mangled: %+v", p)
		}
	case <-time.After(stepWait(t, 2*time.Second)):
		t.Fatal("TCP packet not delivered")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	tr, err := NewTCP(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// The TOCTOU fix: a send racing Close must report the closed
	// transport, never a confusing dial error — deterministically.
	for i := 0; i < 16; i++ {
		if err := tr.Send(0, Packet{}); !errors.Is(err, ErrClosed) {
			t.Errorf("send %d after close = %v, want ErrClosed", i, err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Error("double close errored")
	}
}

func TestTCPOversizePacketRejected(t *testing.T) {
	tr, err := NewTCP(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	tr.maxPacket.Store(128) // shrink the bound so the test stays cheap
	big := Packet{From: 0, Kind: KindPush, Rumors: []Rumor{{ID: "big", Payload: strings.Repeat("x", 1024)}}}
	if err := tr.Send(0, big); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return tr.OversizeDropped() == 1 }, "oversize packet counted")
	// A malformed (but in-bounds) packet lands in the decode counter, not
	// the oversize one.
	conn, err := net.Dial("tcp", tr.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("{not json\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	waitCond(t, func() bool { return tr.DecodeDropped() == 1 }, "malformed packet counted")
	// An in-bounds packet still goes through on the same transport.
	if err := tr.Send(0, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-tr.Inbox(0):
		if p.Kind != KindPullRequest {
			t.Errorf("wrong packet after rejects: %+v", p)
		}
	case <-time.After(stepWait(t, 2*time.Second)):
		t.Fatal("in-bounds packet not delivered after rejects")
	}
}

func gossipGraph(t *testing.T, n, d int) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegular(n, d, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestClusterValidation(t *testing.T) {
	g := gossipGraph(t, 8, 4)
	tr, err := NewInMem(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	if _, err := NewCluster(nil, tr, 2, 1); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewCluster(g, nil, 2, 1); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewCluster(g, tr, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

// driveUntilAllKnow ticks the cluster until every node knows the rumour or
// the deadline passes, returning the number of ticks used.
func driveUntilAllKnow(t *testing.T, c *Cluster, id string, maxTicks int) int {
	t.Helper()
	for tick := 1; tick <= maxTicks; tick++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		deadline := time.After(stepWait(t, time.Second))
		for c.CountKnowing(id) < c.Size() {
			select {
			case <-deadline:
				// settle this tick; go to next
				deadline = nil
			case <-time.After(time.Millisecond):
			}
			if deadline == nil {
				break
			}
		}
		if c.CountKnowing(id) == c.Size() {
			return tick
		}
	}
	t.Fatalf("rumour %q reached %d/%d nodes after %d ticks", id, c.CountKnowing(id), c.Size(), maxTicks)
	return 0
}

func TestGossipOverInMem(t *testing.T) {
	g := gossipGraph(t, 32, 6)
	tr, err := NewInMem(32, 4096)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(g, tr, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Insert(0, Rumor{ID: "update-1", Payload: "hello"}); err != nil {
		t.Fatal(err)
	}
	ticks := driveUntilAllKnow(t, c, "update-1", 40)
	t.Logf("rumour reached all 32 nodes in %d ticks, %d packets", ticks, c.PacketsSent())
	if c.PacketsSent() == 0 {
		t.Error("no packets counted")
	}
	if !c.Node(31).Knows("update-1") {
		t.Error("node 31 missing rumour despite count")
	}
}

func TestGossipOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP gossip in -short mode")
	}
	g := gossipGraph(t, 12, 4)
	tr, err := NewTCP(12, 1024)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(g, tr, 2, 43)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Insert(3, Rumor{ID: "tcp-rumor", Payload: "over sockets"}); err != nil {
		t.Fatal(err)
	}
	ticks := driveUntilAllKnow(t, c, "tcp-rumor", 40)
	t.Logf("TCP rumour reached all 12 nodes in %d ticks", ticks)
}

func TestInsertValidation(t *testing.T) {
	g := gossipGraph(t, 8, 4)
	tr, err := NewInMem(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(g, tr, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Insert(-1, Rumor{ID: "x"}); err == nil {
		t.Error("negative node accepted")
	}
	if err := c.Insert(99, Rumor{ID: "x"}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestMultipleRumorsConverge(t *testing.T) {
	g := gossipGraph(t, 16, 4)
	tr, err := NewInMem(16, 8192)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(g, tr, 2, 44)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ids := []string{"a", "b", "c"}
	for i, id := range ids {
		if err := c.Insert(i*5, Rumor{ID: id, Payload: id}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		driveUntilAllKnow(t, c, id, 60)
	}
	for _, n := range []int{0, 7, 15} {
		if got := len(c.Node(n).Known()); got != len(ids) {
			t.Errorf("node %d knows %d rumours, want %d", n, got, len(ids))
		}
	}
}
