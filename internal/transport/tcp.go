package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
)

// TCP is a loopback-socket transport: every node owns a listener on
// 127.0.0.1, and each Send dials the target and writes one JSON-encoded
// packet. It trades throughput for simplicity and full observability —
// it exists so the examples can demonstrate the protocols over real
// sockets, not to be a high-performance message bus.
type TCP struct {
	listeners []net.Listener
	addrs     []string
	boxes     []chan Packet

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

var _ Transport = (*TCP)(nil)

// NewTCP starts n loopback listeners and their accept loops.
func NewTCP(n, mailbox int) (*TCP, error) {
	if n <= 0 || mailbox <= 0 {
		return nil, fmt.Errorf("transport: NewTCP(n=%d, mailbox=%d) invalid", n, mailbox)
	}
	t := &TCP{
		listeners: make([]net.Listener, n),
		addrs:     make([]string, n),
		boxes:     make([]chan Packet, n),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("transport: listen for node %d: %w", i, err)
		}
		t.listeners[i] = ln
		t.addrs[i] = ln.Addr().String()
		t.boxes[i] = make(chan Packet, mailbox)
	}
	for i := 0; i < n; i++ {
		t.wg.Add(1)
		go t.acceptLoop(i)
	}
	return t, nil
}

// Addr returns the listen address of a node (useful for logging).
func (t *TCP) Addr(node int) string { return t.addrs[node] }

// acceptLoop accepts connections for node i and decodes one packet per
// connection into the node's mailbox.
func (t *TCP) acceptLoop(i int) {
	defer t.wg.Done()
	for {
		conn, err := t.listeners[i].Accept()
		if err != nil {
			// Listener closed: exit. The mailbox is closed by Close once
			// every reader goroutine has drained (closing it here could
			// race with an in-flight reader's send).
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer func() { _ = conn.Close() }()
			var p Packet
			if err := json.NewDecoder(conn).Decode(&p); err != nil {
				return // malformed or truncated packet: drop
			}
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return
			}
			select {
			case t.boxes[i] <- p:
			default:
				// Full mailbox: drop, as a lossy datagram network would.
			}
		}()
	}
}

// Send implements Transport: dial, encode one packet, close.
func (t *TCP) Send(to int, p Packet) error {
	if to < 0 || to >= len(t.addrs) {
		return fmt.Errorf("transport: Send to %d out of range [0,%d)", to, len(t.addrs))
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("transport: Send on closed transport")
	}
	t.mu.Unlock()
	conn, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return fmt.Errorf("transport: dial node %d: %w", to, err)
	}
	defer func() { _ = conn.Close() }()
	p.To = to
	if err := json.NewEncoder(conn).Encode(p); err != nil {
		return fmt.Errorf("transport: encode to node %d: %w", to, err)
	}
	return nil
}

// Inbox implements Transport.
func (t *TCP) Inbox(node int) <-chan Packet { return t.boxes[node] }

// Close implements Transport: stops listeners and waits for all reader
// goroutines to drain.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	for _, ln := range t.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	t.wg.Wait()
	for _, b := range t.boxes {
		close(b)
	}
	return nil
}
