package transport

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// MaxPacketBytes is the default bound on one wire packet. A peer that
// sends more than this per packet is treated as malformed: the packet is
// rejected and counted, and the decoder never buffers unbounded input.
const MaxPacketBytes = 1 << 20

// TCP is a loopback-socket transport: every node owns a listener on
// 127.0.0.1, and each Send dials the target and writes one JSON-encoded
// packet. It trades throughput for simplicity and full observability —
// it exists so the examples can demonstrate the protocols over real
// sockets, not to be a high-performance message bus.
type TCP struct {
	listeners []net.Listener
	addrs     []string
	boxes     []chan Packet
	maxPacket atomic.Int64 // per-packet decode bound (tests shrink it)

	// oversize counts packets rejected because they exceeded maxPacket;
	// decodeErrs counts malformed or truncated packets dropped.
	oversize   atomic.Int64
	decodeErrs atomic.Int64

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

var _ Transport = (*TCP)(nil)

// NewTCP starts n loopback listeners and their accept loops.
func NewTCP(n, mailbox int) (*TCP, error) {
	if n <= 0 || mailbox <= 0 {
		return nil, fmt.Errorf("transport: NewTCP(n=%d, mailbox=%d) invalid", n, mailbox)
	}
	t := &TCP{
		listeners: make([]net.Listener, n),
		addrs:     make([]string, n),
		boxes:     make([]chan Packet, n),
	}
	t.maxPacket.Store(MaxPacketBytes)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("transport: listen for node %d: %w", i, err)
		}
		t.listeners[i] = ln
		t.addrs[i] = ln.Addr().String()
		t.boxes[i] = make(chan Packet, mailbox)
	}
	for i := 0; i < n; i++ {
		t.wg.Add(1)
		go t.acceptLoop(i)
	}
	return t, nil
}

// Addr returns the listen address of a node (useful for logging).
func (t *TCP) Addr(node int) string { return t.addrs[node] }

// OversizeDropped returns how many packets were rejected for exceeding
// MaxPacketBytes.
func (t *TCP) OversizeDropped() int64 { return t.oversize.Load() }

// DecodeDropped returns how many malformed or truncated packets were
// dropped.
func (t *TCP) DecodeDropped() int64 { return t.decodeErrs.Load() }

// acceptLoop accepts connections for node i and decodes one packet per
// connection into the node's mailbox.
func (t *TCP) acceptLoop(i int) {
	defer t.wg.Done()
	for {
		conn, err := t.listeners[i].Accept()
		if err != nil {
			// Listener closed: exit. The mailbox is closed by Close once
			// every reader goroutine has drained (closing it here could
			// race with an in-flight reader's send).
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer func() { _ = conn.Close() }()
			// Bound the decoder: a hostile or buggy peer must not be able
			// to grow this goroutine's buffer without limit. When the limit
			// is exhausted the decode fails with an unexpected EOF and the
			// packet is counted as oversized rather than merely malformed.
			lr := io.LimitReader(conn, t.maxPacket.Load()).(*io.LimitedReader)
			var p Packet
			if err := json.NewDecoder(lr).Decode(&p); err != nil {
				if lr.N == 0 {
					t.oversize.Add(1)
				} else {
					t.decodeErrs.Add(1)
				}
				return
			}
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return
			}
			select {
			case t.boxes[i] <- p:
			default:
				// Full mailbox: drop, as a lossy datagram network would.
			}
		}()
	}
}

// Send implements Transport: dial, encode one packet, close.
func (t *TCP) Send(to int, p Packet) error {
	if to < 0 || to >= len(t.addrs) {
		return fmt.Errorf("transport: Send to %d out of range [0,%d)", to, len(t.addrs))
	}
	if t.isClosed() {
		return ErrClosed
	}
	conn, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		// The closed check above races with Close: a Send that passed it
		// can still lose its listener before the dial lands. Re-check so a
		// post-Close send reports the closed transport, not a confusing
		// connection-refused dial failure.
		if t.isClosed() {
			return ErrClosed
		}
		return fmt.Errorf("transport: dial node %d: %w", to, err)
	}
	defer func() { _ = conn.Close() }()
	p.To = to
	if err := json.NewEncoder(conn).Encode(p); err != nil {
		if t.isClosed() {
			return ErrClosed
		}
		return fmt.Errorf("transport: encode to node %d: %w", to, err)
	}
	return nil
}

// isClosed reports the shutdown flag under the lock.
func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// Inbox implements Transport.
func (t *TCP) Inbox(node int) <-chan Packet { return t.boxes[node] }

// Close implements Transport: stops listeners and waits for all reader
// goroutines to drain.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	for _, ln := range t.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	t.wg.Wait()
	for _, b := range t.boxes {
		close(b)
	}
	return nil
}
