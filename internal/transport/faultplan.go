package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PartitionWindow splits the node set into two sides for an epoch range:
// packets between a member of A and a non-member drop while the window is
// active. Epochs are half-open [From, Until); the chaos driver advances
// them at tick boundaries (AdvanceEpoch), which is what makes a partition
// schedule reproducible over real sockets.
type PartitionWindow struct {
	From, Until int
	A           []int
}

// CrashWindow takes one node down for an epoch range [From, Until): every
// packet to or from it drops, and at window start its persistent
// connection is severed so the dial scheduler has to re-establish it
// after the restart. Node state (its rumour store) survives — this is a
// transport-level crash-restart, the kind the paper's fault model
// tolerates.
type CrashWindow struct {
	Node        int
	From, Until int
}

// FaultConfig is a seeded, reproducible chaos schedule. Each probabilistic
// fault is decided by a pure function of (Seed, from, to, per-pair
// sequence number), never by shared mutable randomness — so two plans
// with the same seed fed the same per-pair packet sequences make
// identical decisions regardless of goroutine interleaving, and a chaos
// run is as replayable as every simulator in this repo.
type FaultConfig struct {
	// Seed drives every probabilistic decision.
	Seed uint64
	// Drop is the per-packet drop probability.
	Drop float64
	// Duplicate is the probability a packet is forwarded twice.
	Duplicate float64
	// Reorder is the probability a packet is held and released after the
	// next packet on its (from,to) pair — a pairwise swap.
	Reorder float64
	// DelayProb and Delay inject latency: with probability DelayProb a
	// packet is forwarded Delay later from a separate goroutine.
	DelayProb float64
	Delay     time.Duration
	// Partitions and Crashes are epoch-scheduled structural faults.
	Partitions []PartitionWindow
	Crashes    []CrashWindow
	// RecordTrace retains every decision for equality checks in tests.
	RecordTrace bool
}

// validate rejects probabilities outside [0,1] and malformed windows.
func (c FaultConfig) validate() error {
	for name, p := range map[string]float64{
		"Drop": c.Drop, "Duplicate": c.Duplicate, "Reorder": c.Reorder, "DelayProb": c.DelayProb,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("transport: FaultConfig.%s = %v out of [0,1]", name, p)
		}
	}
	if c.Delay < 0 {
		return fmt.Errorf("transport: FaultConfig.Delay negative")
	}
	for _, w := range c.Partitions {
		if w.Until < w.From {
			return fmt.Errorf("transport: partition window [%d,%d) inverted", w.From, w.Until)
		}
	}
	for _, w := range c.Crashes {
		if w.Until < w.From {
			return fmt.Errorf("transport: crash window [%d,%d) inverted", w.From, w.Until)
		}
	}
	return nil
}

// FaultDecision is one recorded fault-injection outcome.
type FaultDecision struct {
	From, To int
	Seq      uint64
	Epoch    int
	Action   string // pass|drop|dup|reorder-hold|delay|partition-drop|crash-drop
}

// connKiller is the optional inner-transport hook a crash window uses to
// sever real connections (Daemon implements it).
type connKiller interface {
	DropPeerConns(id int)
}

// FaultPlan wraps any Transport and injects the configured faults on the
// send path. It implements Transport itself, so a gossip Cluster built on
// a FaultPlan-wrapped Daemon runs the real protocol through real sockets
// with deterministic chaos in between. All injected outcomes are
// accounted (FaultStats) so the end-to-end ledger still balances.
type FaultPlan struct {
	inner Transport
	cfg   FaultConfig
	epoch atomic.Int64

	pmu   sync.Mutex
	pairs map[[2]int]*pairState

	// partition membership precomputed per window
	partA []map[int]bool

	in, forwarded, dropped, partDrops, crashDrops, closedDrops atomic.Int64
	duplicated, delayed, reordered                             atomic.Int64

	tmu   sync.Mutex
	trace []FaultDecision

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup // in-flight delayed forwards
}

// pairState carries one directed pair's sequence counter and held packet.
type pairState struct {
	seq  uint64
	held *Packet
}

var _ Transport = (*FaultPlan)(nil)
var _ HealthReporter = (*FaultPlan)(nil)

// NewFaultPlan wraps inner with a seeded fault schedule.
func NewFaultPlan(inner Transport, cfg FaultConfig) (*FaultPlan, error) {
	if inner == nil {
		return nil, fmt.Errorf("transport: NewFaultPlan requires an inner transport")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &FaultPlan{
		inner: inner,
		cfg:   cfg,
		pairs: make(map[[2]int]*pairState),
		partA: make([]map[int]bool, len(cfg.Partitions)),
	}
	for i, w := range cfg.Partitions {
		f.partA[i] = make(map[int]bool, len(w.A))
		for _, v := range w.A {
			f.partA[i][v] = true
		}
	}
	return f, nil
}

// Epoch returns the current fault epoch.
func (f *FaultPlan) Epoch() int { return int(f.epoch.Load()) }

// AdvanceEpoch moves the fault clock one epoch forward. Chaos drivers
// call it at tick boundaries. Crossing into a crash window severs the
// crashed node's connections on a connKiller inner transport; advancing
// also flushes reorder-held packets so a hold never outlives its epoch.
func (f *FaultPlan) AdvanceEpoch() {
	e := int(f.epoch.Add(1))
	for _, w := range f.cfg.Crashes {
		if e == w.From && w.Until > w.From {
			if k, ok := f.inner.(connKiller); ok {
				k.DropPeerConns(w.Node)
			}
		}
	}
	f.flushHeld()
}

// flushHeld forwards every reorder-held packet.
func (f *FaultPlan) flushHeld() {
	f.pmu.Lock()
	var held []*Packet
	for _, ps := range f.pairs {
		if ps.held != nil {
			held = append(held, ps.held)
			ps.held = nil
		}
	}
	f.pmu.Unlock()
	for _, p := range held {
		f.forward(p.To, *p)
	}
}

// crashed reports whether node is inside a crash window at epoch e.
func (f *FaultPlan) crashed(node, e int) bool {
	for _, w := range f.cfg.Crashes {
		if w.Node == node && e >= w.From && e < w.Until {
			return true
		}
	}
	return false
}

// partitioned reports whether (from,to) crosses an active partition at
// epoch e.
func (f *FaultPlan) partitioned(from, to, e int) bool {
	for i, w := range f.cfg.Partitions {
		if e >= w.From && e < w.Until && f.partA[i][from] != f.partA[i][to] {
			return true
		}
	}
	return false
}

// fault salts keep the per-fault coin flips independent.
const (
	saltDrop = iota + 1
	saltDup
	saltReorder
	saltDelay
)

// coin derives a uniform [0,1) draw as a pure function of the plan seed,
// the directed pair, the pair-local sequence number, and the fault salt.
// splitmix64-style finalisation: no shared state, no lock, no
// interleaving sensitivity.
func (f *FaultPlan) coin(from, to int, seq uint64, salt uint64) float64 {
	x := f.cfg.Seed
	x ^= 0x9e3779b97f4a7c15 * (uint64(from)*0x100000001b3 + uint64(to) + 1)
	x ^= seq * 0xbf58476d1ce4e5b9
	x ^= salt * 0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// record appends a decision to the trace when recording is on.
func (f *FaultPlan) record(from, to int, seq uint64, epoch int, action string) {
	if !f.cfg.RecordTrace {
		return
	}
	f.tmu.Lock()
	f.trace = append(f.trace, FaultDecision{From: from, To: to, Seq: seq, Epoch: epoch, Action: action})
	f.tmu.Unlock()
}

// Trace returns a copy of the recorded decisions.
func (f *FaultPlan) Trace() []FaultDecision {
	f.tmu.Lock()
	defer f.tmu.Unlock()
	out := make([]FaultDecision, len(f.trace))
	copy(out, f.trace)
	return out
}

// Send implements Transport: decide this packet's fate, account it, and
// (maybe) forward to the inner transport.
func (f *FaultPlan) Send(to int, p Packet) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.mu.Unlock()
	f.in.Add(1)
	p.To = to
	e := int(f.epoch.Load())

	if f.crashed(p.From, e) || f.crashed(to, e) {
		f.crashDrops.Add(1)
		f.record(p.From, to, 0, e, "crash-drop")
		return nil
	}
	if f.partitioned(p.From, to, e) {
		f.partDrops.Add(1)
		f.record(p.From, to, 0, e, "partition-drop")
		return nil
	}

	key := [2]int{p.From, to}
	f.pmu.Lock()
	ps := f.pairs[key]
	if ps == nil {
		ps = &pairState{}
		f.pairs[key] = ps
	}
	seq := ps.seq
	ps.seq++
	f.pmu.Unlock()

	if f.cfg.Drop > 0 && f.coin(p.From, to, seq, saltDrop) < f.cfg.Drop {
		f.dropped.Add(1)
		f.record(p.From, to, seq, e, "drop")
		return nil
	}
	if f.cfg.Duplicate > 0 && f.coin(p.From, to, seq, saltDup) < f.cfg.Duplicate {
		f.duplicated.Add(1)
		f.record(p.From, to, seq, e, "dup")
		f.forward(to, p)
	}
	if f.cfg.Reorder > 0 && f.coin(p.From, to, seq, saltReorder) < f.cfg.Reorder {
		// Hold this packet; it is released right after the next packet on
		// this pair (a pairwise swap). A previous holdover is released
		// now so at most one packet per pair is ever in limbo.
		f.reordered.Add(1)
		f.record(p.From, to, seq, e, "reorder-hold")
		held := p
		f.pmu.Lock()
		prev := ps.held
		ps.held = &held
		f.pmu.Unlock()
		if prev != nil {
			f.forward(prev.To, *prev)
		}
		return nil
	}
	// A normal packet releases any holdover on its pair after itself.
	f.pmu.Lock()
	prev := ps.held
	ps.held = nil
	f.pmu.Unlock()

	if f.cfg.DelayProb > 0 && f.coin(p.From, to, seq, saltDelay) < f.cfg.DelayProb {
		f.delayed.Add(1)
		f.record(p.From, to, seq, e, "delay")
		f.wg.Add(1)
		go func(to int, p Packet) {
			defer f.wg.Done()
			time.Sleep(f.cfg.Delay)
			f.forward(to, p)
		}(to, p)
		if prev != nil {
			f.forward(prev.To, *prev)
		}
		return nil
	}
	f.record(p.From, to, seq, e, "pass")
	f.forward(to, p)
	if prev != nil {
		f.forward(prev.To, *prev)
	}
	return nil
}

// forward hands a packet to the inner transport with accounting.
func (f *FaultPlan) forward(to int, p Packet) {
	if err := f.inner.Send(to, p); err != nil {
		f.closedDrops.Add(1)
		return
	}
	f.forwarded.Add(1)
}

// Inbox implements Transport.
func (f *FaultPlan) Inbox(node int) <-chan Packet { return f.inner.Inbox(node) }

// Close implements Transport: refuse new sends, wait out delayed
// forwards, flush reorder holds, then close the inner transport.
func (f *FaultPlan) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	f.wg.Wait()
	f.flushHeld()
	return f.inner.Close()
}

// Stats snapshots the plan's fault counters.
func (f *FaultPlan) Stats() FaultStats {
	return FaultStats{
		In:             f.in.Load(),
		Forwarded:      f.forwarded.Load(),
		Dropped:        f.dropped.Load(),
		PartitionDrops: f.partDrops.Load(),
		CrashDrops:     f.crashDrops.Load(),
		ClosedDrops:    f.closedDrops.Load(),
		Duplicated:     f.duplicated.Load(),
		Delayed:        f.delayed.Load(),
		Reordered:      f.reordered.Load(),
	}
}

// Health implements HealthReporter: the inner transport's snapshot (when
// it has one) with this plan's fault ledger attached.
func (f *FaultPlan) Health() Health {
	var h Health
	if hr, ok := f.inner.(HealthReporter); ok {
		h = hr.Health()
	}
	stats := f.Stats()
	h.Faults = &stats
	return h
}
