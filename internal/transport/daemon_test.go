package transport

import (
	"errors"
	"strings"
	"testing"
	"time"

	"regcast/internal/p2p/overlay"
	"regcast/internal/xrand"
)

// newTestDaemon builds a daemon with fast backoff so failure-path tests
// do not sleep for human-scale windows.
func newTestDaemon(t *testing.T, cfg DaemonConfig) *Daemon {
	t.Helper()
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 5 * time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 20 * time.Millisecond
	}
	if cfg.DedupExpiry == 0 {
		cfg.DedupExpiry = time.Minute // tests rotate explicitly
	}
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d
}

func TestDaemonValidation(t *testing.T) {
	if _, err := NewDaemon(DaemonConfig{Nodes: 0}); err == nil {
		t.Error("Nodes=0 accepted")
	}
	if _, err := NewDaemon(DaemonConfig{Nodes: 2, Mailbox: -1}); err == nil {
		t.Error("negative mailbox accepted")
	}
	if _, err := NewDaemon(DaemonConfig{Nodes: 2, StaticPeers: []int{7}}); err == nil {
		t.Error("out-of-range static peer accepted")
	}
}

func TestDaemonSendReceive(t *testing.T) {
	d := newTestDaemon(t, DaemonConfig{Nodes: 2})
	want := Packet{From: 0, Kind: KindPush, Rumors: []Rumor{{ID: "r1", Payload: "x"}}}
	if err := d.Send(1, want); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-d.Inbox(1):
		if p.From != 0 || p.To != 1 || p.Kind != KindPush || len(p.Rumors) != 1 {
			t.Errorf("packet mangled: %+v", p)
		}
	case <-time.After(stepWait(t, 2*time.Second)):
		t.Fatal("packet not delivered")
	}
	// Delivered is bumped just after the mailbox insert; wait it out.
	waitCond(t, func() bool { return d.Health().Delivered == 1 }, "delivery accounted")
	h := d.Health()
	if h.Sends != 1 || h.Dials != 1 {
		t.Errorf("health = sends %d dials %d, want 1/1", h.Sends, h.Dials)
	}
	if gap := h.LedgerGap(); gap != 0 {
		t.Errorf("LedgerGap = %d, want 0", gap)
	}
}

func TestDaemonPersistentConnection(t *testing.T) {
	d := newTestDaemon(t, DaemonConfig{Nodes: 2})
	const msgs = 25
	for i := 0; i < msgs; i++ {
		// Pull requests carry no rumour content, so none of them dedup.
		if err := d.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		select {
		case <-d.Inbox(1):
		case <-time.After(stepWait(t, 2*time.Second)):
			t.Fatalf("only %d/%d packets arrived", i, msgs)
		}
	}
	waitCond(t, func() bool { return d.Health().Delivered == msgs }, "all deliveries accounted")
	h := d.Health()
	if h.Dials != 1 {
		t.Errorf("Dials = %d over %d sends, want 1 persistent connection", h.Dials, msgs)
	}
	if h.Written != msgs || h.FramesIn != msgs {
		t.Errorf("written/framesIn = %d/%d, want %d each", h.Written, h.FramesIn, msgs)
	}
}

func TestDaemonDedupSuppressesRepeatedContent(t *testing.T) {
	d := newTestDaemon(t, DaemonConfig{Nodes: 2, DedupGens: 2})
	push := Packet{From: 0, Kind: KindPush, Rumors: []Rumor{{ID: "r", Payload: "p"}}}
	for i := 0; i < 3; i++ {
		if err := d.Send(1, push); err != nil {
			t.Fatal(err)
		}
	}
	// A pull-reply repeating the same content dedups too (content key is
	// kind-independent).
	if err := d.Send(1, Packet{From: 0, Kind: KindPullReply, Rumors: push.Rumors}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool {
		h := d.Health()
		return h.Delivered+h.Deduped == 4
	}, "4 packets accounted")
	h := d.Health()
	if h.Delivered != 1 || h.Deduped != 3 {
		t.Errorf("delivered/deduped = %d/%d, want 1/3", h.Delivered, h.Deduped)
	}
	// After the dedup ring fully rotates the content is deliverable again.
	for i := 0; i < 2; i++ {
		d.RotateDedup()
	}
	if err := d.Send(1, push); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return d.Health().Delivered == 2 }, "re-delivery after dedup expiry")
}

func TestDaemonRemoveAddPeer(t *testing.T) {
	d := newTestDaemon(t, DaemonConfig{Nodes: 2})
	d.RemovePeer(1)
	if err := d.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	if h := d.Health(); h.RemovedDrops != 1 {
		t.Errorf("RemovedDrops = %d, want 1", h.RemovedDrops)
	}
	if st := d.Health().Peers[1]; st.State != PeerRemoved {
		t.Errorf("peer 1 state = %v, want removed", st.State)
	}
	d.AddPeer(1)
	if err := d.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return d.Health().Delivered == 1 }, "delivery after re-admission")
}

func TestDaemonStaticPeerPinned(t *testing.T) {
	d := newTestDaemon(t, DaemonConfig{Nodes: 2, StaticPeers: []int{1}})
	// Static peers are immune to discovery removal.
	d.RemovePeer(1)
	if err := d.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return d.Health().Delivered == 1 }, "delivery to pinned static peer")
	if !d.Health().Peers[1].Static {
		t.Error("peer 1 not flagged static in health snapshot")
	}
}

func TestDaemonCrashWindowDropsBothDirections(t *testing.T) {
	d := newTestDaemon(t, DaemonConfig{Nodes: 2})
	d.SetNodeDown(1, true)
	if err := d.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	// A crashed node sends nothing either.
	if err := d.Send(0, Packet{From: 1, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	if h := d.Health(); h.DownDrops != 2 {
		t.Errorf("DownDrops = %d, want 2", h.DownDrops)
	}
	if st := d.Health().Peers[1]; st.State != PeerDown {
		t.Errorf("peer 1 state = %v, want down", st.State)
	}
	d.SetNodeDown(1, false)
	if err := d.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return d.Health().Delivered == 1 }, "delivery after restart")
}

func TestDaemonDialFailureQuarantinesPeer(t *testing.T) {
	d := newTestDaemon(t, DaemonConfig{Nodes: 2, BackoffBase: time.Minute, BackoffMax: time.Minute})
	// Kill node 1's listener so the dial gets connection-refused.
	_ = d.listeners[1].Close()
	if err := d.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return d.Health().WriteDrops == 1 }, "write drop after failed dial")
	h := d.Health()
	if h.DialFails == 0 {
		t.Errorf("DialFails = %d, want > 0", h.DialFails)
	}
	if st := h.Peers[1]; st.State != PeerQuarantined || st.Fails == 0 {
		t.Errorf("peer 1 = %+v, want quarantined with fails > 0", st)
	}
	// The quarantine makes further sends cheap drops, not dial storms.
	if err := d.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	h = d.Health()
	if h.QuarantineDrops != 1 {
		t.Errorf("QuarantineDrops = %d, want 1", h.QuarantineDrops)
	}
	if gap := h.LedgerGap(); gap != 0 {
		t.Errorf("LedgerGap = %d under dial failures, want 0", gap)
	}
}

func TestDaemonRedialAfterSeveredConnection(t *testing.T) {
	d := newTestDaemon(t, DaemonConfig{Nodes: 2})
	if err := d.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return d.Health().Delivered == 1 }, "first delivery")
	d.DropPeerConns(1)
	if err := d.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return d.Health().Delivered == 2 }, "delivery after severed connection")
	h := d.Health()
	if h.Dials < 2 || h.Redials < 1 {
		t.Errorf("dials/redials = %d/%d, want >= 2 / >= 1", h.Dials, h.Redials)
	}
}

func TestDaemonConnectionBudgetEvictsIdleLink(t *testing.T) {
	d := newTestDaemon(t, DaemonConfig{Nodes: 3, MaxConns: 1})
	if err := d.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return d.Health().Delivered == 1 }, "first delivery")
	if err := d.Send(2, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return d.Health().Delivered == 2 }, "second delivery")
	h := d.Health()
	if h.BudgetEvictions < 1 {
		t.Errorf("BudgetEvictions = %d, want >= 1", h.BudgetEvictions)
	}
	if h.ConnsOpen > 1 {
		t.Errorf("ConnsOpen = %d over budget 1", h.ConnsOpen)
	}
}

func TestDaemonMailboxBackpressure(t *testing.T) {
	d := newTestDaemon(t, DaemonConfig{Nodes: 2, Mailbox: 1})
	for i := 0; i < 3; i++ {
		if err := d.Send(1, Packet{From: 0, Kind: KindPullRequest}); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, func() bool {
		h := d.Health()
		return h.Delivered+h.MailboxDrops == 3
	}, "3 packets accounted")
	h := d.Health()
	if h.Delivered != 1 || h.MailboxDrops != 2 {
		t.Errorf("delivered/mailboxDrops = %d/%d, want 1/2", h.Delivered, h.MailboxDrops)
	}
	if gap := h.LedgerGap(); gap != 0 {
		t.Errorf("LedgerGap = %d under backpressure, want 0", gap)
	}
}

func TestDaemonOversizeFrameDropped(t *testing.T) {
	d := newTestDaemon(t, DaemonConfig{Nodes: 2, MaxPacket: 256})
	big := Packet{From: 0, Kind: KindPush, Rumors: []Rumor{{ID: "big", Payload: strings.Repeat("x", 1024)}}}
	if err := d.Send(1, big); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return d.Health().OversizeDrops == 1 }, "oversize frame counted")
	h := d.Health()
	if h.Delivered != 0 {
		t.Errorf("oversize frame delivered (Delivered = %d)", h.Delivered)
	}
	// The frame was written but never decoded: it is wire loss, and the
	// ledger still balances.
	if h.WireLost() != 1 {
		t.Errorf("WireLost = %d, want 1", h.WireLost())
	}
	if gap := h.LedgerGap(); gap != 0 {
		t.Errorf("LedgerGap = %d, want 0", gap)
	}
}

func TestDaemonSendAfterClose(t *testing.T) {
	d, err := NewDaemon(DaemonConfig{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Send(0, Packet{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
	if err := d.Close(); err != nil {
		t.Error("double close errored")
	}
	if _, open := <-d.Inbox(0); open {
		t.Error("inbox still open after Close")
	}
}

func TestDaemonGossipClusterLedger(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon gossip in -short mode")
	}
	g := gossipGraph(t, 12, 4)
	d, err := NewDaemon(DaemonConfig{Nodes: 12, Mailbox: 4096, Seed: 9, DedupExpiry: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(g, d, 2, 45)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Insert(0, Rumor{ID: "daemon-rumor", Payload: "persistent"}); err != nil {
		t.Fatal(err)
	}
	ticks := driveUntilAllKnow(t, c, "daemon-rumor", 40)
	// Settle the wire so written == decoded, then close for a final ledger.
	waitCond(t, func() bool {
		h := d.Health()
		return h.Written == h.FramesIn
	}, "wire quiescent")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	h := d.Health()
	t.Logf("daemon gossip: %d ticks, sends=%d delivered=%d deduped=%d dials=%d",
		ticks, h.Sends, h.Delivered, h.Deduped, h.Dials)
	if gap := h.LedgerGap(); gap != 0 {
		t.Errorf("LedgerGap = %d after close, want 0", gap)
	}
	if h.WireLost() != 0 {
		t.Errorf("WireLost = %d on a clean run, want 0", h.WireLost())
	}
	if h.Deduped == 0 {
		t.Error("anti-entropy gossip produced zero dedup hits (dupemap inert?)")
	}
	// Persistent links: far fewer dials than packets.
	if h.Dials >= h.Sends {
		t.Errorf("dials %d >= sends %d: connections are not persistent", h.Dials, h.Sends)
	}
}

// TestDaemonOverlayDiscovery wires the overlay's membership feed into the
// daemon: churn-discovered peers become dialable, departed ones drop.
func TestDaemonOverlayDiscovery(t *testing.T) {
	o, err := overlay.New(8, 4, 4, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	d := newTestDaemon(t, DaemonConfig{Nodes: 12})
	o.OnMembership(func(id int, joined bool) {
		if joined {
			d.AddPeer(id)
		} else {
			d.RemovePeer(id)
		}
	})
	victim := 5
	if err := o.Leave(victim); err != nil {
		t.Fatal(err)
	}
	if err := d.Send(victim, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	if h := d.Health(); h.RemovedDrops != 1 {
		t.Errorf("RemovedDrops = %d after overlay leave, want 1", h.RemovedDrops)
	}
	id, err := o.Join()
	if err != nil {
		t.Fatal(err)
	}
	if id != victim {
		t.Logf("join recycled id %d (victim was %d)", id, victim)
	}
	if err := d.Send(id, Packet{From: 0, Kind: KindPullRequest}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return d.Health().Delivered == 1 }, "delivery to rejoined peer")
}
