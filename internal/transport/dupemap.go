package transport

import (
	"hash/fnv"
	"sort"
	"sync"
)

// dupemap is an expiring duplicate-suppression set in the style of the
// dusk-blockchain dupemap/tmpmap: keys live in a ring of generation
// buckets, lookups probe every generation, inserts go to the current one,
// and Rotate advances the ring and clears the oldest bucket. A key is
// therefore remembered for between (gens−1) and gens rotation intervals
// and then forgotten — which is what makes dedup safe for gossip: even a
// key that slipped in without a delivery (it cannot, see Daemon.receive,
// but defence in depth) only suppresses its content until expiry.
//
// A per-generation capacity bounds memory against key floods: when the
// current bucket is full, an insert forces an early rotation instead of
// growing without limit.
type dupemap struct {
	mu     sync.Mutex
	gens   []map[uint64]struct{}
	cur    int
	maxGen int // per-generation key capacity
}

// newDupemap builds a dupemap with the given generation count (>= 2) and
// per-generation capacity.
func newDupemap(gens, maxGen int) *dupemap {
	if gens < 2 {
		gens = 2
	}
	if maxGen <= 0 {
		maxGen = 1 << 16
	}
	m := &dupemap{gens: make([]map[uint64]struct{}, gens), maxGen: maxGen}
	for i := range m.gens {
		m.gens[i] = make(map[uint64]struct{})
	}
	return m
}

// Has reports whether key is present in any live generation.
func (m *dupemap) Has(key uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, g := range m.gens {
		if _, ok := g[key]; ok {
			return true
		}
	}
	return false
}

// Add records key in the current generation, rotating first if it is at
// capacity.
func (m *dupemap) Add(key uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.gens[m.cur]) >= m.maxGen {
		m.rotateLocked()
	}
	m.gens[m.cur][key] = struct{}{}
}

// Rotate expires the oldest generation and makes it current.
func (m *dupemap) Rotate() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rotateLocked()
}

func (m *dupemap) rotateLocked() {
	m.cur = (m.cur + 1) % len(m.gens)
	m.gens[m.cur] = make(map[uint64]struct{})
}

// contentKey hashes a packet's rumour content for deduplication at
// receiver `to`. Only rumour-bearing packets (push, pull-reply) are
// deduplicable — a pull request carries a question, not content, and
// must never be suppressed. The key is content-addressed: the sorted
// rumour IDs and payloads, independent of sender and kind, so a
// pull-reply repeating an already-delivered push is suppressed too.
// Sorting matters because senders snapshot their rumour map in random
// iteration order.
func contentKey(to int, p Packet) (uint64, bool) {
	if len(p.Rumors) == 0 {
		return 0, false
	}
	parts := make([]string, 0, len(p.Rumors))
	for _, r := range p.Rumors {
		parts = append(parts, r.ID+"\x00"+r.Payload)
	}
	sort.Strings(parts)
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(to) >> (8 * i))
	}
	_, _ = h.Write(b[:])
	for _, s := range parts {
		_, _ = h.Write([]byte(s))
		_, _ = h.Write([]byte{0x1f})
	}
	return h.Sum64(), true
}
