package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"regcast/internal/graph"
	"regcast/internal/xrand"
)

// Node is an anti-entropy gossip participant: it continuously merges
// rumours from its inbox, answers pull requests, and — when ticked —
// contacts k random neighbours with a push packet and a pull request.
// This is the push&pull pattern of the phone call model running over a
// real transport instead of simulated rounds.
type Node struct {
	id    int
	tr    Transport
	peers []int
	k     int

	mu    sync.Mutex
	rng   *xrand.Rand
	known map[string]Rumor

	done chan struct{}
}

// Known returns a snapshot of the rumours this node has heard.
func (n *Node) Known() []Rumor {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Rumor, 0, len(n.known))
	for _, r := range n.known {
		out = append(out, r)
	}
	return out
}

// Knows reports whether the node has heard rumour id.
func (n *Node) Knows(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.known[id]
	return ok
}

// insert merges rumours and reports how many were new.
func (n *Node) insert(rs []Rumor) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	added := 0
	for _, r := range rs {
		if _, ok := n.known[r.ID]; !ok {
			n.known[r.ID] = r
			added++
		}
	}
	return added
}

// snapshotLocked returns all known rumours; callers hold no lock.
func (n *Node) snapshot() []Rumor {
	return n.Known()
}

// pickPeers selects min(k, len(peers)) distinct random neighbours.
func (n *Node) pickPeers() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := n.k
	if k > len(n.peers) {
		k = len(n.peers)
	}
	idx := n.rng.DistinctK(nil, k, len(n.peers), nil)
	out := make([]int, 0, k)
	for _, i := range idx {
		out = append(out, n.peers[i])
	}
	return out
}

// processLoop drains the inbox until the transport closes it.
func (n *Node) processLoop(c *Cluster) {
	defer close(n.done)
	for p := range n.tr.Inbox(n.id) {
		switch p.Kind {
		case KindPush, KindPullReply:
			n.insert(p.Rumors)
		case KindPullRequest:
			reply := Packet{From: n.id, Kind: KindPullReply, Rumors: n.snapshot()}
			if err := n.tr.Send(p.From, reply); err == nil {
				c.sent.Add(1)
			}
		}
	}
}

// Cluster couples gossip nodes over a transport according to a topology.
type Cluster struct {
	nodes []*Node
	tr    Transport
	sent  atomic.Int64
	wg    sync.WaitGroup
}

// NewCluster builds one Node per vertex of g, wired through tr, each
// contacting k random neighbours per tick. Node RNGs derive from seed.
func NewCluster(g *graph.Graph, tr Transport, k int, seed uint64) (*Cluster, error) {
	if g == nil || tr == nil {
		return nil, fmt.Errorf("transport: NewCluster requires graph and transport")
	}
	if k < 1 {
		return nil, fmt.Errorf("transport: NewCluster k=%d must be >= 1", k)
	}
	master := xrand.New(seed)
	c := &Cluster{tr: tr}
	for v := 0; v < g.NumNodes(); v++ {
		peers := make([]int, 0, g.Degree(v))
		for _, w := range g.Neighbors(v) {
			peers = append(peers, int(w))
		}
		n := &Node{
			id:    v,
			tr:    tr,
			peers: peers,
			k:     k,
			rng:   master.Split(),
			known: make(map[string]Rumor),
			done:  make(chan struct{}),
		}
		c.nodes = append(c.nodes, n)
	}
	for _, n := range c.nodes {
		c.wg.Add(1)
		go func(n *Node) {
			defer c.wg.Done()
			n.processLoop(c)
		}(n)
	}
	return c, nil
}

// Node returns the v-th node.
func (c *Cluster) Node(v int) *Node { return c.nodes[v] }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// PacketsSent returns the number of packets successfully handed to the
// transport so far.
func (c *Cluster) PacketsSent() int64 { return c.sent.Load() }

// Insert seeds a rumour at the given node.
func (c *Cluster) Insert(node int, r Rumor) error {
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("transport: Insert at node %d out of range", node)
	}
	c.nodes[node].insert([]Rumor{r})
	return nil
}

// Tick makes every node that knows at least one rumour contact k random
// neighbours with a push packet, and every node (informed or not) issue a
// pull request to k random neighbours — one asynchronous "round".
func (c *Cluster) Tick() error {
	for _, n := range c.nodes {
		rumors := n.snapshot()
		for _, peer := range n.pickPeers() {
			if len(rumors) > 0 {
				if err := n.tr.Send(peer, Packet{From: n.id, Kind: KindPush, Rumors: rumors}); err != nil {
					return fmt.Errorf("transport: push from %d to %d: %w", n.id, peer, err)
				}
				c.sent.Add(1)
			}
			if err := n.tr.Send(peer, Packet{From: n.id, Kind: KindPullRequest}); err != nil {
				return fmt.Errorf("transport: pull-request from %d to %d: %w", n.id, peer, err)
			}
			c.sent.Add(1)
		}
	}
	return nil
}

// CountKnowing returns how many nodes have heard rumour id.
func (c *Cluster) CountKnowing(id string) int {
	count := 0
	for _, n := range c.nodes {
		if n.Knows(id) {
			count++
		}
	}
	return count
}

// Close shuts down the transport and waits for all node loops to finish.
func (c *Cluster) Close() error {
	err := c.tr.Close()
	c.wg.Wait()
	return err
}
