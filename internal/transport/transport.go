// Package transport provides message transports and a small anti-entropy
// gossip node for running push/pull rumour spreading over real channels —
// the deployment-shaped counterpart of the round-based simulator. Two
// transports are provided: an in-memory one (per-node buffered mailboxes)
// and a TCP one (length-delimited JSON over loopback sockets, one packet
// per connection), both behind the same interface.
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by Send after the transport has shut down. Every
// transport returns it (possibly wrapped — test with errors.Is), so
// callers can distinguish "the transport is gone" from a transient
// delivery failure deterministically.
var ErrClosed = errors.New("transport: closed")

// Kind enumerates packet types.
type Kind int

const (
	// KindPush carries the sender's known rumours to the receiver.
	KindPush Kind = iota + 1
	// KindPullRequest asks the receiver to answer with its known rumours.
	KindPullRequest
	// KindPullReply answers a pull request.
	KindPullReply
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPush:
		return "push"
	case KindPullRequest:
		return "pull-request"
	case KindPullReply:
		return "pull-reply"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rumor is one broadcast payload.
type Rumor struct {
	ID      string `json:"id"`
	Payload string `json:"payload"`
}

// Packet is the unit of exchange between nodes.
type Packet struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Kind   Kind    `json:"kind"`
	Rumors []Rumor `json:"rumors,omitempty"`
}

// Transport delivers packets between numbered nodes. Implementations must
// be safe for concurrent Send calls.
type Transport interface {
	// Send delivers p to node `to` (p.To is set by Send).
	Send(to int, p Packet) error
	// Inbox returns the receive channel of a node. The channel is closed
	// when the transport shuts down.
	Inbox(node int) <-chan Packet
	// Close shuts the transport down and releases resources.
	Close() error
}

// InMem is an in-process transport backed by buffered channels.
type InMem struct {
	mu     sync.Mutex
	boxes  []chan Packet
	closed bool
	// Dropped counts sends that found a full mailbox (treated as message
	// loss, which gossip tolerates by design).
	Dropped int
}

var _ Transport = (*InMem)(nil)

// NewInMem creates an in-memory transport for n nodes with the given
// per-node mailbox capacity.
func NewInMem(n, mailbox int) (*InMem, error) {
	if n <= 0 || mailbox <= 0 {
		return nil, fmt.Errorf("transport: NewInMem(n=%d, mailbox=%d) invalid", n, mailbox)
	}
	t := &InMem{boxes: make([]chan Packet, n)}
	for i := range t.boxes {
		t.boxes[i] = make(chan Packet, mailbox)
	}
	return t, nil
}

// Send implements Transport. A full mailbox drops the packet (recorded in
// Dropped) rather than blocking, mirroring a lossy network.
func (t *InMem) Send(to int, p Packet) error {
	if to < 0 || to >= len(t.boxes) {
		return fmt.Errorf("transport: Send to %d out of range [0,%d)", to, len(t.boxes))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	p.To = to
	select {
	case t.boxes[to] <- p:
		return nil
	default:
		t.Dropped++
		return nil
	}
}

// Inbox implements Transport.
func (t *InMem) Inbox(node int) <-chan Packet { return t.boxes[node] }

// Close implements Transport.
func (t *InMem) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	for _, b := range t.boxes {
		close(b)
	}
	return nil
}
