package transport

import (
	"testing"
	"time"
)

func TestDialSchedulerBackoffGrowsAndCaps(t *testing.T) {
	s := newDialScheduler(100*time.Millisecond, time.Second, 0, 1)
	now := time.Now()
	// Windows double per consecutive failure (±25% jitter) up to the cap.
	wantBase := []time.Duration{100, 200, 400, 800, 1000, 1000}
	for i, base := range wantBase {
		got := s.onFailure(0, now)
		lo := time.Duration(float64(base*time.Millisecond) * 0.75)
		hi := time.Duration(float64(base*time.Millisecond) * 1.25)
		if got < lo || got > hi {
			t.Errorf("failure %d: backoff %v outside [%v, %v]", i+1, got, lo, hi)
		}
	}
	if s.failCount(0) != len(wantBase) {
		t.Errorf("failCount = %d, want %d", s.failCount(0), len(wantBase))
	}
}

func TestDialSchedulerQuarantineWindow(t *testing.T) {
	s := newDialScheduler(100*time.Millisecond, time.Second, 0, 1)
	now := time.Now()
	if s.quarantined(0, now) {
		t.Error("fresh peer quarantined")
	}
	backoff := s.onFailure(0, now)
	if !s.quarantined(0, now) {
		t.Error("peer not quarantined right after a failure")
	}
	if s.quarantined(0, now.Add(backoff+time.Millisecond)) {
		t.Error("quarantine outlived its window")
	}
	until := s.quarantineUntil(0)
	if until.Before(now) || until.After(now.Add(2*time.Second)) {
		t.Errorf("quarantineUntil %v implausible", until.Sub(now))
	}
}

func TestDialSchedulerSuccessClearsHistory(t *testing.T) {
	s := newDialScheduler(100*time.Millisecond, time.Second, 0, 1)
	now := time.Now()
	if redial := s.onSuccess(0); redial {
		t.Error("first-ever success reported as redial")
	}
	s.onFailure(0, now)
	s.onFailure(0, now)
	if redial := s.onSuccess(0); !redial {
		t.Error("success after a prior connection not reported as redial")
	}
	if s.failCount(0) != 0 {
		t.Error("success did not clear the failure count")
	}
	if s.quarantined(0, now) {
		t.Error("success did not clear the quarantine window")
	}
}

func TestDialSchedulerBudget(t *testing.T) {
	s := newDialScheduler(time.Millisecond, time.Millisecond, 1, 1)
	if evicted := s.acquireSlot(nil); evicted {
		t.Error("first slot triggered eviction")
	}
	if s.openConns() != 1 {
		t.Errorf("openConns = %d, want 1", s.openConns())
	}
	called := false
	if evicted := s.acquireSlot(func() bool { called = true; return true }); !evicted || !called {
		t.Error("over-budget acquire did not evict")
	}
	// The dial proceeds either way; the budget must never deadlock.
	if evicted := s.acquireSlot(func() bool { return false }); evicted {
		t.Error("failed eviction reported as eviction")
	}
	for i := 0; i < 5; i++ {
		s.releaseSlot()
	}
	if s.openConns() != 0 {
		t.Errorf("openConns = %d after releases, want 0 (never negative)", s.openConns())
	}
}
