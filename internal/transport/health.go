package transport

import "sync/atomic"

// Metrics is the daemon's live counter set. Every packet handed to Send
// ends up in exactly one terminal bucket — delivered, deduped, or one of
// the drop counters — which is what makes the health snapshot a ledger
// rather than a vibe: Health.LedgerGap() must be zero at quiescence, and
// the soak tests assert it under injected faults.
//
// Counters split by pipeline stage:
//
//	send side    Sends → {RemovedDrops, DownDrops, QueueDrops} or enqueue
//	writer       queue → {QuarantineDrops, WriteDrops, ShutdownDrops} or Written
//	wire         Written − FramesIn − DecodeDrops − OversizeDrops = in-flight loss
//	receive side FramesIn → {DownDrops, Deduped, MailboxDrops} or Delivered
type Metrics struct {
	Sends     atomic.Int64 // packets accepted by Send
	Delivered atomic.Int64 // packets placed in a destination mailbox
	Deduped   atomic.Int64 // packets suppressed by the dupemap

	RemovedDrops    atomic.Int64 // destination peer removed by discovery
	DownDrops       atomic.Int64 // source or destination marked down (crash window)
	QueueDrops      atomic.Int64 // per-peer send queue full (backpressure)
	QuarantineDrops atomic.Int64 // peer inside its backoff window
	WriteDrops      atomic.Int64 // dial/write failed after retries
	ShutdownDrops   atomic.Int64 // queued packets discarded at Close
	MailboxDrops    atomic.Int64 // destination mailbox full
	OversizeDrops   atomic.Int64 // frames over MaxPacket, connection dropped
	DecodeDrops     atomic.Int64 // malformed frames

	Written  atomic.Int64 // frames fully written to a peer connection
	FramesIn atomic.Int64 // frames decoded off an inbound connection

	Dials           atomic.Int64 // connection attempts (first dials and redials)
	Redials         atomic.Int64 // successful re-establishments after a drop
	DialFails       atomic.Int64 // failed connection attempts
	Retries         atomic.Int64 // in-place write retries after a broken write
	BudgetEvictions atomic.Int64 // idle connections closed to respect the budget
}

// PeerState enumerates a peer link's lifecycle.
type PeerState int

const (
	// PeerIdle means no connection is open and nothing is queued.
	PeerIdle PeerState = iota
	// PeerUp means a persistent connection is established.
	PeerUp
	// PeerQuarantined means the peer failed recently and sits in its
	// exponential-backoff window; sends are dropped until it expires.
	PeerQuarantined
	// PeerRemoved means discovery withdrew the peer; sends are dropped.
	PeerRemoved
	// PeerDown means a fault plan crashed the peer; sends are dropped
	// until its restart.
	PeerDown
)

// String implements fmt.Stringer.
func (s PeerState) String() string {
	switch s {
	case PeerIdle:
		return "idle"
	case PeerUp:
		return "up"
	case PeerQuarantined:
		return "quarantined"
	case PeerRemoved:
		return "removed"
	case PeerDown:
		return "down"
	default:
		return "unknown"
	}
}

// PeerHealth is one peer's row in the health snapshot.
type PeerHealth struct {
	Peer     int       `json:"peer"`
	State    PeerState `json:"-"`
	StateStr string    `json:"state"`
	Static   bool      `json:"static,omitempty"`
	Queued   int       `json:"queued,omitempty"`
	Fails    int       `json:"fails,omitempty"`
}

// FaultStats is the fault-injection side of the ledger, populated when a
// FaultPlan wraps the transport.
type FaultStats struct {
	In             int64 `json:"in"`             // packets entering the plan
	Forwarded      int64 `json:"forwarded"`      // packets passed to the inner transport
	Dropped        int64 `json:"dropped"`        // random drops
	PartitionDrops int64 `json:"partitionDrops"` // drops across an active partition
	CrashDrops     int64 `json:"crashDrops"`     // drops to/from a crashed node
	ClosedDrops    int64 `json:"closedDrops"`    // inner transport refused (shutdown race)
	Duplicated     int64 `json:"duplicated"`     // extra copies injected
	Delayed        int64 `json:"delayed"`        // packets held back before forwarding
	Reordered      int64 `json:"reordered"`      // packets swapped with their successor
}

// drops sums the plan's terminal drop buckets.
func (f FaultStats) drops() int64 {
	return f.Dropped + f.PartitionDrops + f.CrashDrops + f.ClosedDrops
}

// Health is a point-in-time snapshot of a transport's counters, exposed
// through the facade as regcast.TransportHealth. Snapshot after Close (or
// at quiescence) for an exact ledger.
type Health struct {
	Sends     int64 `json:"sends"`
	Delivered int64 `json:"delivered"`
	Deduped   int64 `json:"deduped"`

	RemovedDrops    int64 `json:"removedDrops"`
	DownDrops       int64 `json:"downDrops"`
	QueueDrops      int64 `json:"queueDrops"`
	QuarantineDrops int64 `json:"quarantineDrops"`
	WriteDrops      int64 `json:"writeDrops"`
	ShutdownDrops   int64 `json:"shutdownDrops"`
	MailboxDrops    int64 `json:"mailboxDrops"`
	OversizeDrops   int64 `json:"oversizeDrops"`
	DecodeDrops     int64 `json:"decodeDrops"`

	Written  int64 `json:"written"`
	FramesIn int64 `json:"framesIn"`

	Dials           int64 `json:"dials"`
	Redials         int64 `json:"redials"`
	DialFails       int64 `json:"dialFails"`
	Retries         int64 `json:"retries"`
	BudgetEvictions int64 `json:"budgetEvictions"`
	ConnsOpen       int   `json:"connsOpen"`

	Peers []PeerHealth `json:"peers,omitempty"`

	// Faults is non-nil when a FaultPlan wraps the transport; its In
	// replaces Sends as the top of the ledger and its drop buckets join
	// DroppedTotal.
	Faults *FaultStats `json:"faults,omitempty"`
}

// HealthReporter is implemented by transports that expose a snapshot.
type HealthReporter interface {
	Health() Health
}

// WireLost is the number of frames fully written to a connection that
// never came back out of a decoder — bytes stranded in kernel buffers or
// rejected at the receiver (oversize and malformed frames are inside this
// bucket; their dedicated counters are diagnostics, not separate ledger
// entries). Connections are only torn down mid-flight by crash windows
// and budget evictions, so clean runs should see zero here.
func (h Health) WireLost() int64 {
	return h.Written - h.FramesIn
}

// DroppedTotal sums every terminal drop bucket, including wire loss and
// (when present) the fault plan's drops. OversizeDrops and DecodeDrops
// are not added — frames that failed to decode never counted as FramesIn,
// so they are already inside WireLost.
func (h Health) DroppedTotal() int64 {
	total := h.RemovedDrops + h.DownDrops + h.QueueDrops + h.QuarantineDrops +
		h.WriteDrops + h.ShutdownDrops + h.MailboxDrops + h.WireLost()
	if h.Faults != nil {
		total += h.Faults.drops()
	}
	return total
}

// LedgerGap is sends (plus fault-injected duplicates) minus every
// accounted outcome. Zero at quiescence means no packet vanished without
// being counted; the chaos soak tests assert exactly that.
func (h Health) LedgerGap() int64 {
	in := h.Sends
	var dup int64
	if h.Faults != nil {
		in = h.Faults.In
		dup = h.Faults.Duplicated
	}
	return in + dup - h.Delivered - h.Deduped - h.DroppedTotal()
}

// snapshot copies the live counters into a Health value.
func (m *Metrics) snapshot() Health {
	return Health{
		Sends:           m.Sends.Load(),
		Delivered:       m.Delivered.Load(),
		Deduped:         m.Deduped.Load(),
		RemovedDrops:    m.RemovedDrops.Load(),
		DownDrops:       m.DownDrops.Load(),
		QueueDrops:      m.QueueDrops.Load(),
		QuarantineDrops: m.QuarantineDrops.Load(),
		WriteDrops:      m.WriteDrops.Load(),
		ShutdownDrops:   m.ShutdownDrops.Load(),
		MailboxDrops:    m.MailboxDrops.Load(),
		OversizeDrops:   m.OversizeDrops.Load(),
		DecodeDrops:     m.DecodeDrops.Load(),
		Written:         m.Written.Load(),
		FramesIn:        m.FramesIn.Load(),
		Dials:           m.Dials.Load(),
		Redials:         m.Redials.Load(),
		DialFails:       m.DialFails.Load(),
		Retries:         m.Retries.Load(),
		BudgetEvictions: m.BudgetEvictions.Load(),
	}
}
