package transport

import "testing"

func TestDupemapHasAddRotate(t *testing.T) {
	m := newDupemap(3, 0)
	if m.Has(1) {
		t.Error("empty map claims key")
	}
	m.Add(1)
	if !m.Has(1) {
		t.Error("key lost right after Add")
	}
	// A key survives gens-1 rotations and expires on the gens-th.
	m.Rotate()
	m.Rotate()
	if !m.Has(1) {
		t.Error("key expired before its generation aged out")
	}
	m.Rotate()
	if m.Has(1) {
		t.Error("key survived full rotation of the ring")
	}
}

func TestDupemapMinimumGenerations(t *testing.T) {
	m := newDupemap(0, 0)
	if len(m.gens) != 2 {
		t.Errorf("gens = %d, want clamp to 2", len(m.gens))
	}
}

func TestDupemapCapacityForcesRotation(t *testing.T) {
	m := newDupemap(2, 4)
	for k := uint64(0); k < 4; k++ {
		m.Add(k)
	}
	// The current generation is full: the next Add must rotate first
	// instead of growing without bound.
	m.Add(99)
	if got := len(m.gens[m.cur]); got != 1 {
		t.Errorf("current generation holds %d keys after forced rotation, want 1", got)
	}
	if !m.Has(0) || !m.Has(99) {
		t.Error("keys lost by forced rotation (previous generation must survive)")
	}
}

func TestContentKeyProperties(t *testing.T) {
	a := Packet{Kind: KindPush, Rumors: []Rumor{{ID: "a", Payload: "1"}, {ID: "b", Payload: "2"}}}
	b := Packet{Kind: KindPullReply, Rumors: []Rumor{{ID: "b", Payload: "2"}, {ID: "a", Payload: "1"}}}
	ka, ok := contentKey(3, a)
	if !ok {
		t.Fatal("rumour-bearing packet not dedupable")
	}
	kb, _ := contentKey(3, b)
	if ka != kb {
		t.Error("content key depends on rumour order or packet kind")
	}
	// Pull requests carry no content and must never be suppressed.
	if _, ok := contentKey(3, Packet{Kind: KindPullRequest}); ok {
		t.Error("pull request marked dedupable")
	}
	// Different receivers track their own seen-set.
	kOther, _ := contentKey(4, a)
	if ka == kOther {
		t.Error("content key ignores the receiver")
	}
	// Different content, different key.
	c := Packet{Kind: KindPush, Rumors: []Rumor{{ID: "a", Payload: "other"}}}
	kc, _ := contentKey(3, c)
	if ka == kc {
		t.Error("distinct payloads collide")
	}
}
