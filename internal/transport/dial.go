package transport

import (
	"sync"
	"time"

	"regcast/internal/xrand"
)

// dialScheduler owns the daemon's outbound connection policy, in the
// style of geth's p2p dialScheduler: a per-peer dial history gates
// redials behind exponential backoff with jitter, and a global connection
// budget caps simultaneously open links, evicting the least-recently-used
// idle dynamic connection when a new dial would exceed it. Static peers
// are pinned — they are never budget-evicted and survive discovery
// removal — while dynamic peers arrive and depart through the discovery
// feed (Daemon.AddPeer / RemovePeer).
type dialScheduler struct {
	mu      sync.Mutex
	rng     *xrand.Rand // jitter source, seeded: schedules are reproducible
	base    time.Duration
	max     time.Duration
	budget  int // max open connections; 0 = unlimited
	open    int
	history map[int]*dialRecord
}

// dialRecord is one peer's dial history entry.
type dialRecord struct {
	fails int       // consecutive failures
	until time.Time // quarantine expiry: no dial before this instant
	ever  bool      // a connection to this peer succeeded at least once
}

func newDialScheduler(base, max time.Duration, budget int, seed uint64) *dialScheduler {
	return &dialScheduler{
		rng:     xrand.New(seed),
		base:    base,
		max:     max,
		budget:  budget,
		history: make(map[int]*dialRecord),
	}
}

func (s *dialScheduler) record(peer int) *dialRecord {
	r := s.history[peer]
	if r == nil {
		r = &dialRecord{}
		s.history[peer] = r
	}
	return r
}

// quarantined reports whether peer sits inside its backoff window.
func (s *dialScheduler) quarantined(peer int, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.history[peer]
	return r != nil && now.Before(r.until)
}

// quarantineUntil returns the end of the peer's current backoff window
// (zero time when none).
func (s *dialScheduler) quarantineUntil(peer int) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r := s.history[peer]; r != nil {
		return r.until
	}
	return time.Time{}
}

// onSuccess clears the peer's failure history and reports whether this
// was a redial (the peer had connected before).
func (s *dialScheduler) onSuccess(peer int) (redial bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.record(peer)
	redial = r.ever
	r.fails = 0
	r.until = time.Time{}
	r.ever = true
	return redial
}

// onFailure bumps the peer's failure count and opens a backoff window of
// base·2^(fails−1), capped at max, with ±25% seeded jitter so a cohort of
// failed peers does not redial in lockstep.
func (s *dialScheduler) onFailure(peer int, now time.Time) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.record(peer)
	r.fails++
	backoff := s.base << uint(min(r.fails-1, 16))
	if backoff > s.max || backoff <= 0 {
		backoff = s.max
	}
	jitter := 0.75 + 0.5*s.rng.Float64()
	backoff = time.Duration(float64(backoff) * jitter)
	r.until = now.Add(backoff)
	return backoff
}

// fails returns the peer's consecutive failure count.
func (s *dialScheduler) failCount(peer int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r := s.history[peer]; r != nil {
		return r.fails
	}
	return 0
}

// acquireSlot accounts a new open connection against the budget. When the
// budget is exhausted it asks evict (called without the scheduler lock)
// to close one idle connection; evict reports whether it freed a slot.
// The dial proceeds either way — the budget bounds steady-state conns,
// it must not deadlock a fully-busy link set.
func (s *dialScheduler) acquireSlot(evict func() bool) (evicted bool) {
	s.mu.Lock()
	over := s.budget > 0 && s.open >= s.budget
	s.mu.Unlock()
	if over && evict != nil {
		evicted = evict()
	}
	s.mu.Lock()
	s.open++
	s.mu.Unlock()
	return evicted
}

// releaseSlot accounts a closed connection.
func (s *dialScheduler) releaseSlot() {
	s.mu.Lock()
	if s.open > 0 {
		s.open--
	}
	s.mu.Unlock()
}

// openConns returns the number of connections currently accounted open.
func (s *dialScheduler) openConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.open
}
