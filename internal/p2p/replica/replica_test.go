package replica

import (
	"fmt"
	"testing"
	"testing/quick"

	"regcast/internal/core"
	"regcast/internal/graph"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

func TestVersionOrdering(t *testing.T) {
	a := Version{Seq: 1, Origin: 0}
	b := Version{Seq: 2, Origin: 0}
	c := Version{Seq: 1, Origin: 5}
	if !a.Less(b) || b.Less(a) {
		t.Error("seq ordering broken")
	}
	if !a.Less(c) || c.Less(a) {
		t.Error("origin tiebreak broken")
	}
	if a.Less(a) {
		t.Error("irreflexivity broken")
	}
}

func TestStoreApplyLWW(t *testing.T) {
	var s Store
	if changed := s.Apply("k", "v1", Version{Seq: 1}); !changed {
		t.Error("first write did not change store")
	}
	if changed := s.Apply("k", "v0", Version{Seq: 0}); changed {
		t.Error("stale write accepted")
	}
	if changed := s.Apply("k", "v1dup", Version{Seq: 1}); changed {
		t.Error("equal-version write accepted")
	}
	if changed := s.Apply("k", "v2", Version{Seq: 2}); !changed {
		t.Error("newer write rejected")
	}
	got, ok := s.Get("k")
	if !ok || got != "v2" {
		t.Errorf("Get = %q, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStoreGetMissing(t *testing.T) {
	var s Store
	if _, ok := s.Get("nope"); ok {
		t.Error("missing key found")
	}
	if s.Fingerprint() != "" {
		t.Error("empty store has nonempty fingerprint")
	}
}

func TestStoreApplyCommutesProperty(t *testing.T) {
	// LWW merge must be order-insensitive: applying writes in any order
	// yields the same fingerprint.
	prop := func(seqs []uint16) bool {
		if len(seqs) == 0 || len(seqs) > 12 {
			return true
		}
		type w struct {
			key string
			val string
			v   Version
		}
		var ws []w
		for i, s := range seqs {
			ws = append(ws, w{
				key: fmt.Sprintf("k%d", int(s)%3),
				val: fmt.Sprintf("v%d", i),
				v:   Version{Seq: uint64(s), Origin: i},
			})
		}
		var fwd, rev Store
		for _, x := range ws {
			fwd.Apply(x.key, x.val, x.v)
		}
		for i := len(ws) - 1; i >= 0; i-- {
			rev.Apply(ws[i].key, ws[i].val, ws[i].v)
		}
		return fwd.Fingerprint() == rev.Fingerprint()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFingerprintDetectsDivergence(t *testing.T) {
	var a, b Store
	a.Apply("k", "x", Version{Seq: 1})
	b.Apply("k", "y", Version{Seq: 2})
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different stores share fingerprint")
	}
}

func clusterTopology(t *testing.T, n, d int, seed uint64) phonecall.Topology {
	t.Helper()
	g, err := graph.RandomRegular(n, d, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return phonecall.NewStatic(g)
}

func TestRunValidation(t *testing.T) {
	topo := clusterTopology(t, 64, 6, 1)
	proto, err := core.NewAlgorithm1(64)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(2)
	if _, err := Run(Config{Topology: topo, Protocol: proto, RNG: rng}, nil); err == nil {
		t.Error("empty writes accepted")
	}
	if _, err := Run(Config{Protocol: proto, RNG: rng}, []Write{{Key: "k"}}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := Run(Config{Topology: topo, Protocol: proto, RNG: rng, ExtraRounds: -1}, []Write{{Key: "k"}}); err == nil {
		t.Error("negative ExtraRounds accepted")
	}
	if _, err := Run(Config{Topology: topo, Protocol: proto, RNG: rng}, []Write{{Key: "k", Round: -1}}); err == nil {
		t.Error("negative write round accepted")
	}
}

func TestSingleWriteConverges(t *testing.T) {
	topo := clusterTopology(t, 128, 6, 3)
	proto, err := core.NewAlgorithm1(128)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Topology: topo, Protocol: proto, RNG: xrand.New(4)},
		[]Write{{Key: "x", Value: "1", Origin: 7, Round: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("single write did not converge: %+v", rep.UpdateResults)
	}
	if !StoresConverged(topo, rep.Stores) {
		t.Error("stores diverged despite full dissemination")
	}
	if got, ok := rep.Stores[0].Get("x"); !ok || got != "1" {
		t.Errorf("replica 0 has x=%q,%v", got, ok)
	}
	if rep.ConvergedAtRound < 1 {
		t.Errorf("ConvergedAtRound = %d", rep.ConvergedAtRound)
	}
}

func TestConcurrentWritesSameKeyConvergeToOneWinner(t *testing.T) {
	topo := clusterTopology(t, 128, 6, 5)
	proto, err := core.NewAlgorithm1(128)
	if err != nil {
		t.Fatal(err)
	}
	writes := []Write{
		{Key: "x", Value: "from-3", Origin: 3, Round: 0},
		{Key: "x", Value: "from-9", Origin: 9, Round: 0},
		{Key: "x", Value: "late", Origin: 20, Round: 5},
	}
	rep, err := Run(Config{Topology: topo, Protocol: proto, RNG: xrand.New(6)}, writes)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("cluster did not converge")
	}
	if !StoresConverged(topo, rep.Stores) {
		t.Fatal("stores diverged")
	}
	// The round-5 write has the highest version, so it must win everywhere.
	if got, _ := rep.Stores[17].Get("x"); got != "late" {
		t.Errorf("winner = %q, want \"late\"", got)
	}
}

func TestStaggeredWorkloadConverges(t *testing.T) {
	topo := clusterTopology(t, 128, 6, 7)
	proto, err := core.NewAlgorithm1(128)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(8)
	var writes []Write
	for i := 0; i < 12; i++ {
		writes = append(writes, Write{
			Key:    fmt.Sprintf("key-%d", i%4),
			Value:  fmt.Sprintf("val-%d", i),
			Origin: rng.IntN(128),
			Round:  i * 3,
		})
	}
	rep, err := Run(Config{Topology: topo, Protocol: proto, RNG: rng}, writes)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		incomplete := 0
		for _, ur := range rep.UpdateResults {
			if !ur.AllInformed {
				incomplete++
			}
		}
		t.Fatalf("%d/%d updates incomplete", incomplete, len(writes))
	}
	if !StoresConverged(topo, rep.Stores) {
		t.Error("stores diverged")
	}
	if rep.TransmissionsPerUpdate <= 0 {
		t.Error("no transmissions recorded")
	}
	if rep.TotalTransmissions != int64(rep.TransmissionsPerUpdate*float64(len(writes))) {
		t.Error("transmission accounting inconsistent")
	}
}

func TestMessageLossDelaysButExtraRoundsAreSimulated(t *testing.T) {
	topo := clusterTopology(t, 64, 6, 9)
	proto, err := core.NewAlgorithm1(64)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		Topology: topo, Protocol: proto, RNG: xrand.New(10),
		MessageLossProb: 0.2, ExtraRounds: 10,
	}, []Write{{Key: "x", Value: "1", Origin: 0, Round: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != proto.Horizon()+10 {
		t.Errorf("Rounds = %d, want %d", rep.Rounds, proto.Horizon()+10)
	}
	// 20% loss should still converge with the four-choice schedule's slack.
	if !rep.Converged {
		t.Errorf("did not converge under 20%% loss: %d informed", rep.UpdateResults[0].Informed)
	}
}

func TestStoresConvergedDetectsDivergence(t *testing.T) {
	topo := clusterTopology(t, 8, 4, 11)
	stores := make([]Store, 8)
	for i := range stores {
		stores[i].Apply("k", "same", Version{Seq: 1})
	}
	if !StoresConverged(topo, stores) {
		t.Error("identical stores reported diverged")
	}
	stores[3].Apply("k", "other", Version{Seq: 2})
	if StoresConverged(topo, stores) {
		t.Error("diverged stores reported converged")
	}
}
