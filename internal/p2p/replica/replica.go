// Package replica implements the paper's motivating application: a
// replicated database whose updates are disseminated by randomised
// broadcasting (Demers et al.'s anti-entropy setting, §1 of the paper).
//
// Every replica holds a last-writer-wins key-value store. A write issued
// at some replica becomes a rumour; all concurrent rumours spread through
// the shared per-round channels of the multi-message phone call engine
// under the four-choice schedule (or any other phonecall.Protocol). Once
// every replica has received every update, all stores converge to the same
// contents — the property the paper's transmission bounds make cheap to
// maintain at scale.
package replica

import (
	"fmt"
	"sort"

	"regcast/internal/phonecall"
)

// Version orders writes: higher Seq wins; ties break by higher Origin (an
// arbitrary but deterministic tiebreak, as in classic LWW registers).
type Version struct {
	Seq    uint64
	Origin int
}

// Less reports whether v orders strictly before w.
func (v Version) Less(w Version) bool {
	if v.Seq != w.Seq {
		return v.Seq < w.Seq
	}
	return v.Origin < w.Origin
}

// Entry is one stored value with its winning version. Deleted keys keep a
// tombstone entry so the deletion wins LWW merges against older writes.
type Entry struct {
	Value     string
	Version   Version
	Tombstone bool
}

// Store is a last-writer-wins key-value store. The zero value is ready to
// use. Store is not safe for concurrent use.
type Store struct {
	entries map[string]Entry
}

// Get returns the current value and whether the key exists (tombstoned
// keys report absent).
func (s *Store) Get(key string) (string, bool) {
	e, ok := s.entries[key]
	if !ok || e.Tombstone {
		return "", false
	}
	return e.Value, true
}

// Apply merges one write into the store; later versions win, equal and
// older versions are ignored. It reports whether the store changed.
func (s *Store) Apply(key, value string, v Version) bool {
	return s.applyEntry(key, Entry{Value: value, Version: v})
}

// Delete merges a deletion (a tombstone) at the given version.
func (s *Store) Delete(key string, v Version) bool {
	return s.applyEntry(key, Entry{Version: v, Tombstone: true})
}

func (s *Store) applyEntry(key string, e Entry) bool {
	if s.entries == nil {
		s.entries = make(map[string]Entry)
	}
	cur, ok := s.entries[key]
	if ok && !cur.Version.Less(e.Version) {
		return false
	}
	s.entries[key] = e
	return true
}

// Len returns the number of live (non-tombstoned) keys.
func (s *Store) Len() int {
	n := 0
	for _, e := range s.entries {
		if !e.Tombstone {
			n++
		}
	}
	return n
}

// Fingerprint returns a canonical representation of the full contents,
// usable for convergence comparison.
func (s *Store) Fingerprint() string {
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		e := s.entries[k]
		if e.Tombstone {
			out += fmt.Sprintf("%s=⊥@%d.%d;", k, e.Version.Seq, e.Version.Origin)
			continue
		}
		out += fmt.Sprintf("%s=%s@%d.%d;", k, e.Value, e.Version.Seq, e.Version.Origin)
	}
	return out
}

// Write is one update issued into the cluster.
type Write struct {
	Key    string
	Value  string
	Origin int // replica issuing the write
	Round  int // round at which the write is issued (>= 0)
	// Delete marks the write as a deletion; Value is ignored and replicas
	// store a tombstone.
	Delete bool
}

// Config configures a cluster simulation.
type Config struct {
	// Topology is the replica network.
	Topology phonecall.Topology
	// Protocol is the dissemination schedule each update follows.
	Protocol phonecall.Protocol
	// RNG drives the simulation (any *xrand.Rand).
	RNG interface{ Uint64() uint64 }
	// ExtraRounds extends the simulation beyond the last write's horizon,
	// e.g. to observe late convergence under failures. Default 0.
	ExtraRounds        int
	ChannelFailureProb float64
	MessageLossProb    float64
}

// Report summarises a cluster run.
type Report struct {
	// Converged is true when every alive replica received every update
	// (hence all stores are identical).
	Converged bool
	// ConvergedAtRound is the earliest round by which the last-finishing
	// update had reached everyone (-1 if never).
	ConvergedAtRound int
	// Rounds is the number of rounds simulated.
	Rounds int
	// TransmissionsPerUpdate is the mean number of per-message
	// transmissions across updates.
	TransmissionsPerUpdate float64
	// TotalTransmissions sums transmissions across updates.
	TotalTransmissions int64
	// UpdateResults holds the per-update dissemination outcomes.
	UpdateResults []phonecall.MessageResult
	// Stores holds the final store of every replica (index = node id).
	Stores []Store
}

// Run simulates the cluster processing the given writes and returns the
// convergence report.
func Run(cfg Config, writes []Write) (Report, error) {
	if len(writes) == 0 {
		return Report{}, fmt.Errorf("replica: no writes to process")
	}
	if cfg.Topology == nil || cfg.Protocol == nil || cfg.RNG == nil {
		return Report{}, fmt.Errorf("replica: Config requires Topology, Protocol and RNG")
	}
	if cfg.ExtraRounds < 0 {
		return Report{}, fmt.Errorf("replica: negative ExtraRounds %d", cfg.ExtraRounds)
	}
	msgs := make([]phonecall.Message, len(writes))
	lastRound := 0
	for i, w := range writes {
		if w.Round < 0 {
			return Report{}, fmt.Errorf("replica: write %d has negative round", i)
		}
		msgs[i] = phonecall.Message{ID: i, Origin: w.Origin, CreatedAt: w.Round}
		if end := w.Round + cfg.Protocol.Horizon(); end > lastRound {
			lastRound = end
		}
	}
	eng, err := phonecall.NewMultiEngine(phonecall.MultiConfig{
		Topology:           cfg.Topology,
		Protocol:           cfg.Protocol,
		Messages:           msgs,
		Rounds:             lastRound + cfg.ExtraRounds,
		RNG:                cfg.RNG,
		ChannelFailureProb: cfg.ChannelFailureProb,
		MessageLossProb:    cfg.MessageLossProb,
	})
	if err != nil {
		return Report{}, fmt.Errorf("replica: %w", err)
	}
	mres := eng.Run()

	rep := Report{
		Converged:        true,
		ConvergedAtRound: -1,
		Rounds:           mres.Rounds,
		UpdateResults:    mres.PerMessage,
	}
	n := cfg.Topology.NumNodes()
	rep.Stores = make([]Store, n)
	for mi, w := range writes {
		recv := eng.ReceivedAt(mi)
		v := Version{Seq: uint64(w.Round)<<20 | uint64(mi), Origin: w.Origin}
		for node := 0; node < n; node++ {
			if recv[node] == phonecall.Uninformed || !cfg.Topology.Alive(node) {
				continue
			}
			if w.Delete {
				rep.Stores[node].Delete(w.Key, v)
			} else {
				rep.Stores[node].Apply(w.Key, w.Value, v)
			}
		}
		mr := mres.PerMessage[mi]
		rep.TotalTransmissions += mr.Transmissions
		if !mr.AllInformed {
			rep.Converged = false
		}
		if mr.FirstAllInformed > rep.ConvergedAtRound {
			rep.ConvergedAtRound = mr.FirstAllInformed
		}
	}
	if !rep.Converged {
		rep.ConvergedAtRound = -1
	}
	rep.TransmissionsPerUpdate = float64(rep.TotalTransmissions) / float64(len(writes))
	return rep, nil
}

// StoresConverged reports whether every alive replica's store fingerprint
// matches (vacuously true for < 2 alive replicas).
func StoresConverged(topo phonecall.Topology, stores []Store) bool {
	ref := ""
	seen := false
	for v := 0; v < topo.NumNodes(); v++ {
		if !topo.Alive(v) {
			continue
		}
		fp := stores[v].Fingerprint()
		if !seen {
			ref, seen = fp, true
			continue
		}
		if fp != ref {
			return false
		}
	}
	return true
}
