package replica

import (
	"fmt"

	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// Entries returns a copy of the store's contents, for synchronisation.
func (s *Store) Entries() map[string]Entry {
	out := make(map[string]Entry, len(s.entries))
	for k, v := range s.entries {
		out[k] = v
	}
	return out
}

// Merge applies every entry of other into s (tombstones included) and
// reports how many keys changed. Merge is idempotent, commutative and
// associative (LWW semantics), so repeated pairwise merges converge.
func (s *Store) Merge(other *Store) int {
	changed := 0
	for k, e := range other.entries {
		if s.applyEntry(k, e) {
			changed++
		}
	}
	return changed
}

// AntiEntropyReport summarises a repair pass.
type AntiEntropyReport struct {
	// Rounds actually executed (<= maxRounds).
	Rounds int
	// Exchanges counts pairwise store synchronisations performed.
	Exchanges int64
	// KeysRepaired counts store entries fixed across all exchanges.
	KeysRepaired int
	// Converged reports whether all alive stores were identical when the
	// pass ended.
	Converged bool
}

// AntiEntropy runs Demers-style anti-entropy repair on the replicas'
// stores: in every round each alive node picks one uniformly random alive
// neighbour and the pair exchanges full stores (merging both ways). It
// stops as soon as all alive stores agree, or after maxRounds.
//
// Rumour broadcasting (the paper's algorithm) does the heavy lifting at
// O(n·log log n) per update; anti-entropy is the cheap backstop that
// repairs the stragglers that failures or churn left behind — the
// combination is exactly the replicated-database architecture of Demers
// et al. that §1 of the paper cites.
func AntiEntropy(topo phonecall.Topology, stores []Store, rng *xrand.Rand, maxRounds int) (AntiEntropyReport, error) {
	if topo == nil || rng == nil {
		return AntiEntropyReport{}, fmt.Errorf("replica: AntiEntropy requires topology and rng")
	}
	if len(stores) != topo.NumNodes() {
		return AntiEntropyReport{}, fmt.Errorf("replica: %d stores for %d nodes", len(stores), topo.NumNodes())
	}
	if maxRounds < 0 {
		return AntiEntropyReport{}, fmt.Errorf("replica: negative maxRounds %d", maxRounds)
	}
	var rep AntiEntropyReport
	for round := 1; round <= maxRounds; round++ {
		if StoresConverged(topo, stores) {
			rep.Converged = true
			return rep, nil
		}
		rep.Rounds = round
		for v := 0; v < topo.NumNodes(); v++ {
			if !topo.Alive(v) || topo.Degree(v) == 0 {
				continue
			}
			w := topo.Neighbor(v, rng.IntN(topo.Degree(v)))
			if !topo.Alive(w) {
				continue
			}
			rep.Exchanges++
			rep.KeysRepaired += stores[v].Merge(&stores[w])
			rep.KeysRepaired += stores[w].Merge(&stores[v])
		}
	}
	rep.Converged = StoresConverged(topo, stores)
	return rep, nil
}
