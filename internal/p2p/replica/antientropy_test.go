package replica

import (
	"fmt"
	"testing"

	"regcast/internal/core"
	"regcast/internal/xrand"
)

func TestMergeSemantics(t *testing.T) {
	var a, b Store
	a.Apply("x", "old", Version{Seq: 1})
	b.Apply("x", "new", Version{Seq: 2})
	b.Apply("y", "only-b", Version{Seq: 1})

	if changed := a.Merge(&b); changed != 2 {
		t.Errorf("Merge changed %d keys, want 2", changed)
	}
	if v, _ := a.Get("x"); v != "new" {
		t.Errorf("x = %q after merge", v)
	}
	if _, ok := a.Get("y"); !ok {
		t.Error("y missing after merge")
	}
	// Merging back must not change b except... b already has newest.
	if changed := b.Merge(&a); changed != 0 {
		t.Errorf("reverse merge changed %d keys, want 0", changed)
	}
	// Idempotence.
	if changed := a.Merge(&b); changed != 0 {
		t.Errorf("repeated merge changed %d keys", changed)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("stores differ after mutual merge")
	}
}

func TestEntriesIsACopy(t *testing.T) {
	var s Store
	s.Apply("k", "v", Version{Seq: 1})
	es := s.Entries()
	es["k"] = Entry{Value: "mutated", Version: Version{Seq: 9}}
	if v, _ := s.Get("k"); v != "v" {
		t.Error("Entries exposed internal map")
	}
}

func TestAntiEntropyValidation(t *testing.T) {
	topo := clusterTopology(t, 16, 4, 40)
	stores := make([]Store, 16)
	rng := xrand.New(1)
	if _, err := AntiEntropy(nil, stores, rng, 5); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := AntiEntropy(topo, stores[:3], rng, 5); err == nil {
		t.Error("store count mismatch accepted")
	}
	if _, err := AntiEntropy(topo, stores, rng, -1); err == nil {
		t.Error("negative maxRounds accepted")
	}
}

func TestAntiEntropyConvergesFromSingleHolder(t *testing.T) {
	const n = 64
	topo := clusterTopology(t, n, 6, 41)
	stores := make([]Store, n)
	stores[0].Apply("k", "v", Version{Seq: 1})
	rep, err := AntiEntropy(topo, stores, xrand.New(2), 50)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("not converged after %d rounds (%d exchanges)", rep.Rounds, rep.Exchanges)
	}
	for i := range stores {
		if v, ok := stores[i].Get("k"); !ok || v != "v" {
			t.Fatalf("replica %d missing k", i)
		}
	}
	if rep.KeysRepaired < n-1 {
		t.Errorf("KeysRepaired = %d, want >= %d", rep.KeysRepaired, n-1)
	}
}

func TestAntiEntropyNoWorkWhenConverged(t *testing.T) {
	topo := clusterTopology(t, 8, 4, 42)
	stores := make([]Store, 8)
	for i := range stores {
		stores[i].Apply("k", "v", Version{Seq: 1})
	}
	rep, err := AntiEntropy(topo, stores, xrand.New(3), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Rounds != 0 || rep.Exchanges != 0 {
		t.Errorf("converged input still did work: %+v", rep)
	}
}

func TestAntiEntropyRepairsLossyBroadcast(t *testing.T) {
	// End-to-end: broadcast under heavy loss leaves stragglers; a short
	// anti-entropy pass completes convergence.
	const n = 128
	topo := clusterTopology(t, n, 6, 43)
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		t.Fatal(err)
	}
	var writes []Write
	for i := 0; i < 5; i++ {
		writes = append(writes, Write{
			Key: fmt.Sprintf("k%d", i), Value: fmt.Sprintf("v%d", i), Origin: i * 20, Round: i,
		})
	}
	rep, err := Run(Config{
		Topology: topo, Protocol: proto, RNG: xrand.New(4), MessageLossProb: 0.6,
	}, writes)
	if err != nil {
		t.Fatal(err)
	}
	ae, err := AntiEntropy(topo, rep.Stores, xrand.New(5), 50)
	if err != nil {
		t.Fatal(err)
	}
	if !ae.Converged {
		t.Fatalf("anti-entropy failed to converge after %d rounds", ae.Rounds)
	}
	if !StoresConverged(topo, rep.Stores) {
		t.Error("stores still diverged")
	}
	for i := 0; i < 5; i++ {
		if v, ok := rep.Stores[100].Get(fmt.Sprintf("k%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Errorf("replica 100 k%d = %q, %v", i, v, ok)
		}
	}
}

func TestAntiEntropyBudgetExhaustion(t *testing.T) {
	// maxRounds=0: no repair happens, convergence reported honestly.
	const n = 32
	topo := clusterTopology(t, n, 4, 44)
	stores := make([]Store, n)
	stores[0].Apply("k", "v", Version{Seq: 1})
	rep, err := AntiEntropy(topo, stores, xrand.New(6), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Converged {
		t.Error("divergent stores reported converged at budget 0")
	}
}
