package replica

import (
	"testing"

	"regcast/internal/core"
	"regcast/internal/xrand"
)

func TestDeleteHidesKey(t *testing.T) {
	var s Store
	s.Apply("k", "v", Version{Seq: 1})
	if !s.Delete("k", Version{Seq: 2}) {
		t.Fatal("delete rejected")
	}
	if _, ok := s.Get("k"); ok {
		t.Error("deleted key still visible")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after delete", s.Len())
	}
}

func TestTombstoneWinsOverOlderWrite(t *testing.T) {
	var s Store
	s.Delete("k", Version{Seq: 5})
	if s.Apply("k", "stale", Version{Seq: 3}) {
		t.Error("stale write resurrected a deleted key")
	}
	if _, ok := s.Get("k"); ok {
		t.Error("key visible after stale write against tombstone")
	}
	// A genuinely newer write revives the key.
	if !s.Apply("k", "fresh", Version{Seq: 7}) {
		t.Error("newer write rejected")
	}
	if v, ok := s.Get("k"); !ok || v != "fresh" {
		t.Errorf("revived key = %q, %v", v, ok)
	}
}

func TestMergePropagatesTombstones(t *testing.T) {
	var a, b Store
	a.Apply("k", "v", Version{Seq: 1})
	b.Delete("k", Version{Seq: 2})
	if changed := a.Merge(&b); changed != 1 {
		t.Fatalf("merge changed %d keys", changed)
	}
	if _, ok := a.Get("k"); ok {
		t.Error("tombstone lost in merge")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprints differ after tombstone merge")
	}
}

func TestFingerprintDistinguishesTombstoneFromEmptyValue(t *testing.T) {
	var del, empty Store
	del.Delete("k", Version{Seq: 1})
	empty.Apply("k", "", Version{Seq: 1})
	if del.Fingerprint() == empty.Fingerprint() {
		t.Error("tombstone and empty value share fingerprint")
	}
}

func TestClusterDeleteConverges(t *testing.T) {
	topo := clusterTopology(t, 128, 6, 60)
	proto, err := core.NewAlgorithm1(128)
	if err != nil {
		t.Fatal(err)
	}
	writes := []Write{
		{Key: "doc", Value: "v1", Origin: 3, Round: 0},
		{Key: "doc", Delete: true, Origin: 90, Round: 4},
	}
	rep, err := Run(Config{Topology: topo, Protocol: proto, RNG: xrand.New(61)}, writes)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("cluster did not converge")
	}
	if !StoresConverged(topo, rep.Stores) {
		t.Fatal("stores diverged")
	}
	for _, node := range []int{0, 64, 127} {
		if _, ok := rep.Stores[node].Get("doc"); ok {
			t.Errorf("replica %d still sees deleted doc", node)
		}
	}
}
