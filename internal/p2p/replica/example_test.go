package replica_test

import (
	"fmt"
	"log"

	"regcast/internal/core"
	"regcast/internal/graph"
	"regcast/internal/p2p/replica"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// Example runs a small replicated database: two conflicting writes and a
// deletion spread as rumours; all replicas converge to the same store.
func Example() {
	const n = 256
	g, err := graph.RandomRegular(n, 8, xrand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		log.Fatal(err)
	}
	topo := phonecall.NewStatic(g)
	rep, err := replica.Run(replica.Config{
		Topology: topo,
		Protocol: proto,
		RNG:      xrand.New(2),
	}, []replica.Write{
		{Key: "title", Value: "draft", Origin: 3, Round: 0},
		{Key: "title", Value: "final", Origin: 200, Round: 4},
		{Key: "scratch", Value: "tmp", Origin: 9, Round: 0},
		{Key: "scratch", Delete: true, Origin: 10, Round: 6},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged:", rep.Converged && replica.StoresConverged(topo, rep.Stores))
	title, _ := rep.Stores[128].Get("title")
	fmt.Println("title:", title)
	_, scratchExists := rep.Stores[128].Get("scratch")
	fmt.Println("scratch still present:", scratchExists)
	// Output:
	// converged: true
	// title: final
	// scratch still present: false
}
