// Package overlay implements the dynamic d-regular peer-to-peer topology
// that motivates the paper: a random-regular-like overlay maintained under
// churn by local edge operations. Joins splice the new peer into d/2
// random edges (preserving exact d-regularity), leaves re-pair the
// departing peer's neighbours, and a switch-chain Mix step (random 2-edge
// swaps, as in Cooper–Dyer–Greenhill) keeps the topology close to a
// uniform random d-regular (multi)graph.
//
// Overlay implements phonecall.Topology, and Churner implements
// phonecall.Stepper, so the broadcast engine runs on a churning overlay
// unchanged (experiment E13).
package overlay

import (
	"fmt"

	"regcast/internal/graph"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// Overlay is a mutable d-regular multigraph with an alive/dead node set.
// Node ids are stable; departed ids are recycled by later joins.
//
// The adjacency is stored in compressed-sparse-row form from the start:
// every id owns a fixed-stride row of d slots in one flat stub array, and
// adj[v] is a slice aliasing that row (length = current degree, capacity
// = d), so each local edge operation updates the CSR view in place. That
// is what makes the overlay a phonecall.CSRViewer — the broadcast
// engine's zero-interface fast path runs directly on these arrays, with
// an alive bitset for liveness and an epoch counter that tells the
// engine when anything changed (see CSRView).
type Overlay struct {
	d         int
	stubs     []int32   // flat (cap × d) backing; row v is stubs[v*d : v*d+deg(v)]
	offsets   []int32   // fixed stride: offsets[v] = v*d (the CSR view's offsets)
	adj       [][]int32 // adj[v] aliases row v of stubs
	alive     []bool
	aliveBits []uint64 // bit v mirrors alive[v] (the CSR view's liveness)
	aliveCnt  int
	epoch     uint64 // bumped by every mutating operation
	rng       *xrand.Rand
	freeIDs   []int32
	watchers  []MembershipFunc
}

// MembershipFunc receives membership events: joined reports whether id
// just joined (true) or left (false). This is the overlay's peer
// discovery feed — the transport daemon subscribes so churn-discovered
// peers become dialable and departed ones stop being dialed.
type MembershipFunc func(id int, joined bool)

var _ phonecall.Topology = (*Overlay)(nil)
var _ phonecall.CSRViewer = (*Overlay)(nil)
var _ phonecall.AliveCounter = (*Overlay)(nil)

// New builds an overlay of n alive peers of even degree d, with headroom
// spare slots for future joins, seeded from an exact random d-regular
// graph.
func New(n, d, headroom int, rng *xrand.Rand) (*Overlay, error) {
	if d%2 != 0 {
		return nil, fmt.Errorf("overlay: degree %d must be even (joins splice d/2 edges)", d)
	}
	if d < 4 {
		return nil, fmt.Errorf("overlay: degree %d too small", d)
	}
	if headroom < 0 {
		return nil, fmt.Errorf("overlay: negative headroom %d", headroom)
	}
	if n <= d {
		return nil, fmt.Errorf("overlay: need n > d, got n=%d d=%d", n, d)
	}
	capacity := n + headroom
	if int64(capacity)*int64(d) > int64(1)<<31-1 {
		return nil, fmt.Errorf("overlay: capacity %d × degree %d overflows the CSR id space", capacity, d)
	}
	g, err := graph.RandomRegular(n, d, rng)
	if err != nil {
		return nil, fmt.Errorf("overlay: seeding topology: %w", err)
	}
	o := &Overlay{
		d:         d,
		stubs:     make([]int32, capacity*d),
		offsets:   make([]int32, capacity+1),
		adj:       make([][]int32, capacity),
		alive:     make([]bool, capacity),
		aliveBits: make([]uint64, (capacity+63)/64),
		rng:       rng,
	}
	for v := 0; v <= capacity; v++ {
		o.offsets[v] = int32(v * d)
	}
	for v := 0; v < capacity; v++ {
		o.adj[v] = o.stubs[v*d : v*d : (v+1)*d] // empty row aliasing its fixed-stride slots
	}
	for v := 0; v < n; v++ {
		o.adj[v] = o.adj[v][:d]
		copy(o.adj[v], g.Neighbors(v))
		o.setAlive(v, true)
	}
	for v := capacity - 1; v >= n; v-- {
		o.freeIDs = append(o.freeIDs, int32(v))
	}
	o.epoch++
	return o, nil
}

// setAlive flips v's membership in the bool array, the bitset and the
// counter together.
func (o *Overlay) setAlive(v int, alive bool) {
	if o.alive[v] == alive {
		return
	}
	o.alive[v] = alive
	if alive {
		o.aliveBits[uint(v)>>6] |= 1 << (uint(v) & 63)
		o.aliveCnt++
	} else {
		o.aliveBits[uint(v)>>6] &^= 1 << (uint(v) & 63)
		o.aliveCnt--
	}
}

// CSRView implements phonecall.CSRViewer. The returned slices are the
// overlay's live storage: every Join/Leave/Mix updates them in place and
// bumps the epoch, so a consumer that re-fetches on epoch change always
// reads the current topology. Rows of dead ids hold stale stubs and must
// not be read (their alive bit is clear); rows of alive ids are exactly
// d slots, matching Degree.
func (o *Overlay) CSRView() (offsets, adj []int32, alive []uint64, epoch uint64) {
	return o.offsets, o.stubs, o.aliveBits, o.epoch
}

// NumNodes implements phonecall.Topology (id-space size incl. dead slots).
func (o *Overlay) NumNodes() int { return len(o.adj) }

// AliveCount returns the number of participating peers.
func (o *Overlay) AliveCount() int { return o.aliveCnt }

// TargetDegree returns d.
func (o *Overlay) TargetDegree() int { return o.d }

// Degree implements phonecall.Topology.
func (o *Overlay) Degree(v int) int { return len(o.adj[v]) }

// Neighbor implements phonecall.Topology.
func (o *Overlay) Neighbor(v, i int) int { return int(o.adj[v][i]) }

// Alive implements phonecall.Topology.
func (o *Overlay) Alive(v int) bool { return o.alive[v] }

// OnMembership subscribes fn to join/leave events. Callbacks fire
// synchronously inside Join and Leave, after the topology mutation is
// complete; they must not mutate the overlay re-entrantly.
func (o *Overlay) OnMembership(fn MembershipFunc) {
	o.watchers = append(o.watchers, fn)
}

// notify fans one membership event out to the subscribers.
func (o *Overlay) notify(id int, joined bool) {
	for _, fn := range o.watchers {
		fn(id, joined)
	}
}

// Join splices a new peer into the overlay and returns its id. The new
// peer takes over d/2 randomly chosen existing edges (u,w), replacing each
// with the pair (u,new),(w,new); all degrees stay exactly d.
func (o *Overlay) Join() (int, error) {
	if len(o.freeIDs) == 0 {
		return -1, fmt.Errorf("overlay: no free slots (capacity %d)", len(o.adj))
	}
	if o.aliveCnt <= o.d {
		return -1, fmt.Errorf("overlay: too few peers (%d) to splice a join", o.aliveCnt)
	}
	id := int(o.freeIDs[len(o.freeIDs)-1])
	o.freeIDs = o.freeIDs[:len(o.freeIDs)-1]
	o.epoch++

	for i := 0; i < o.d/2; i++ {
		u, w := o.randomEdge()
		if u == id || int(w) == id {
			// Don't splice an edge created by an earlier iteration of this
			// very join: that would give the newcomer a self-loop.
			i--
			continue
		}
		o.removeEdge(u, w)
		o.addEdge(u, int32(id))
		o.addEdge(int(w), int32(id))
	}
	o.setAlive(id, true)
	o.notify(id, true)
	return id, nil
}

// Leave removes peer v. Its d dangling stubs are re-paired at random:
// neighbours (n1,n2), (n3,n4), ... get joined directly, so every remaining
// degree is preserved (self-loops can arise and are represented as two
// stub entries, exactly as in the configuration model).
func (o *Overlay) Leave(v int) error {
	if v < 0 || v >= len(o.adj) || !o.alive[v] {
		return fmt.Errorf("overlay: Leave(%d): not an alive peer", v)
	}
	if o.aliveCnt <= o.d+1 {
		return fmt.Errorf("overlay: refusing to shrink below d+1 peers")
	}
	o.epoch++
	// Collect dangling stubs, dropping v's own self-loops entirely.
	dangling := make([]int32, 0, len(o.adj[v]))
	for _, w := range o.adj[v] {
		if int(w) != v {
			dangling = append(dangling, w)
		}
	}
	// Remove v from each neighbour's list (one instance per stub).
	for _, w := range dangling {
		o.removeDirected(int(w), int32(v))
	}
	o.adj[v] = o.adj[v][:0]
	o.setAlive(v, false)
	o.freeIDs = append(o.freeIDs, int32(v))

	// Re-pair the dangling stubs uniformly at random.
	o.rng.Shuffle(len(dangling), func(i, j int) { dangling[i], dangling[j] = dangling[j], dangling[i] })
	for i := 0; i+1 < len(dangling); i += 2 {
		o.addEdge(int(dangling[i]), dangling[i+1])
	}
	o.notify(v, false)
	return nil
}

// Mix performs the given number of switch-chain steps: pick two random
// edges (a,b), (c,e) and replace them with (a,c), (b,e) unless that would
// create a self-loop. This is the degree-preserving Markov chain used for
// overlay maintenance in the P2P literature the paper cites.
func (o *Overlay) Mix(steps int) {
	if steps > 0 {
		o.epoch++
	}
	for s := 0; s < steps; s++ {
		a, b := o.randomEdge()
		c, e := o.randomEdge()
		if a == c || int32(a) == e || b == int32(c) || b == e {
			continue
		}
		o.removeEdge(a, b)
		o.removeEdge(c, e)
		o.addEdge(a, int32(c))
		o.addEdge(int(b), e)
	}
}

// Snapshot freezes the alive part of the overlay into an immutable Graph
// together with the mapping from snapshot ids to overlay ids.
func (o *Overlay) Snapshot() (*graph.Graph, []int32, error) {
	newID := make([]int32, len(o.adj))
	var orig []int32
	for v := range o.adj {
		newID[v] = -1
		if o.alive[v] {
			newID[v] = int32(len(orig))
			orig = append(orig, int32(v))
		}
	}
	adj := make([][]int32, len(orig))
	for nv, ov := range orig {
		for _, w := range o.adj[ov] {
			if o.alive[w] {
				adj[nv] = append(adj[nv], newID[w])
			}
		}
	}
	g, err := graph.NewFromAdjacency(adj)
	if err != nil {
		return nil, nil, fmt.Errorf("overlay: snapshot: %w", err)
	}
	return g, orig, nil
}

// CheckInvariants verifies structural consistency (symmetry, exact degree
// d for alive peers, empty adjacency for dead slots). It is O(n·d) and
// intended for tests and debugging.
func (o *Overlay) CheckInvariants() error {
	counts := make(map[[2]int32]int)
	for v := range o.adj {
		if !o.alive[v] {
			if len(o.adj[v]) != 0 {
				return fmt.Errorf("overlay: dead peer %d has %d stubs", v, len(o.adj[v]))
			}
			continue
		}
		if len(o.adj[v]) != o.d {
			return fmt.Errorf("overlay: peer %d has degree %d, want %d", v, len(o.adj[v]), o.d)
		}
		for _, w := range o.adj[v] {
			if !o.alive[w] {
				return fmt.Errorf("overlay: peer %d adjacent to dead peer %d", v, w)
			}
			a, b := int32(v), w
			if a > b {
				a, b = b, a
			}
			counts[[2]int32{a, b}]++
		}
	}
	for e, c := range counts {
		if c%2 != 0 {
			return fmt.Errorf("overlay: asymmetric edge %v (stub count %d)", e, c)
		}
	}
	return nil
}

// randomEdge returns a uniformly random edge as an ordered stub (u,w).
// Uniformity follows from regularity: pick an alive peer uniformly, then
// one of its stubs uniformly.
func (o *Overlay) randomEdge() (int, int32) {
	for {
		v := o.rng.IntN(len(o.adj))
		if !o.alive[v] || len(o.adj[v]) == 0 {
			continue
		}
		i := o.rng.IntN(len(o.adj[v]))
		return v, o.adj[v][i]
	}
}

// addEdge appends the two stub entries of edge (u,w). A self-loop (u==w)
// appends two entries at u. Rows alias fixed-stride CSR slots, so an
// append past capacity d would silently detach a row from the shared
// backing — the guard turns that (impossible by the degree invariant)
// state into a loud failure instead.
func (o *Overlay) addEdge(u int, w int32) {
	overflow := len(o.adj[u]) >= o.d || len(o.adj[w]) >= o.d
	if u == int(w) {
		overflow = len(o.adj[u])+2 > o.d
	}
	if overflow {
		panic(fmt.Sprintf("overlay: addEdge(%d,%d) would exceed degree %d", u, w, o.d))
	}
	o.adj[u] = append(o.adj[u], w)
	o.adj[w] = append(o.adj[w], int32(u))
}

// removeEdge deletes one instance of edge (u,w): one stub at each side
// (two stubs at u for a self-loop).
func (o *Overlay) removeEdge(u int, w int32) {
	o.removeDirected(u, w)
	o.removeDirected(int(w), int32(u))
}

// removeDirected deletes one occurrence of w from u's list.
func (o *Overlay) removeDirected(u int, w int32) {
	lst := o.adj[u]
	for i, x := range lst {
		if x == w {
			lst[i] = lst[len(lst)-1]
			o.adj[u] = lst[:len(lst)-1]
			return
		}
	}
	panic(fmt.Sprintf("overlay: removeDirected(%d,%d): stub not found", u, w))
}

// Churner drives continuous membership change: every round it performs a
// Binomial(aliveCount, LeaveProb) number of departures and
// Binomial(aliveCount, JoinProb) arrivals, then MixSteps switch-chain
// steps. It implements phonecall.Stepper.
type Churner struct {
	Overlay   *Overlay
	JoinProb  float64
	LeaveProb float64
	MixSteps  int
	rng       *xrand.Rand

	// Joins / Leaves / Rejected count the operations performed (rejected =
	// ops skipped because of capacity or minimum-size limits).
	Joins, Leaves, Rejected int
}

var _ phonecall.Stepper = (*Churner)(nil)

// NewChurner validates parameters and returns a stepper.
func NewChurner(o *Overlay, joinProb, leaveProb float64, mixSteps int, rng *xrand.Rand) (*Churner, error) {
	if o == nil || rng == nil {
		return nil, fmt.Errorf("overlay: NewChurner requires overlay and rng")
	}
	if joinProb < 0 || joinProb > 1 || leaveProb < 0 || leaveProb > 1 {
		return nil, fmt.Errorf("overlay: churn probabilities out of [0,1]: join=%v leave=%v", joinProb, leaveProb)
	}
	if mixSteps < 0 {
		return nil, fmt.Errorf("overlay: negative mix steps %d", mixSteps)
	}
	return &Churner{Overlay: o, JoinProb: joinProb, LeaveProb: leaveProb, MixSteps: mixSteps, rng: rng}, nil
}

// Step implements phonecall.Stepper.
func (c *Churner) Step(round int) []int {
	o := c.Overlay
	leaves := c.rng.Binomial(o.AliveCount(), c.LeaveProb)
	for i := 0; i < leaves; i++ {
		v := c.randomAlive()
		if v < 0 {
			break
		}
		if err := o.Leave(v); err != nil {
			c.Rejected++
			continue
		}
		c.Leaves++
	}
	joins := c.rng.Binomial(o.AliveCount(), c.JoinProb)
	var joined []int
	for i := 0; i < joins; i++ {
		id, err := o.Join()
		if err != nil {
			c.Rejected++
			continue
		}
		c.Joins++
		joined = append(joined, id)
	}
	if c.MixSteps > 0 {
		o.Mix(c.MixSteps)
	}
	return joined
}

// randomAlive picks a uniformly random alive peer (-1 if none).
func (c *Churner) randomAlive() int {
	o := c.Overlay
	if o.AliveCount() == 0 {
		return -1
	}
	for tries := 0; tries < 16*len(o.adj); tries++ {
		v := c.rng.IntN(len(o.adj))
		if o.alive[v] {
			return v
		}
	}
	return -1
}
