package overlay_test

import (
	"fmt"
	"log"

	"regcast/internal/p2p/overlay"
	"regcast/internal/xrand"
)

// Example maintains an exactly 6-regular overlay through joins (including
// a decentralised walk-based join) and leaves.
func Example() {
	o, err := overlay.New(100, 6, 20, xrand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	id, err := o.Join()
	if err != nil {
		log.Fatal(err)
	}
	walkID, err := o.WalkJoin(id, 14) // discover edges by random walks
	if err != nil {
		log.Fatal(err)
	}
	if err := o.Leave(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alive peers:", o.AliveCount())
	fmt.Println("new peer degree:", o.Degree(id))
	fmt.Println("walk-joined degree:", o.Degree(walkID))
	fmt.Println("invariants hold:", o.CheckInvariants() == nil)
	// Output:
	// alive peers: 101
	// new peer degree: 6
	// walk-joined degree: 6
	// invariants hold: true
}
