package overlay

import (
	"testing"

	"regcast/internal/core"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

func newTestOverlay(t *testing.T, n, d, headroom int, seed uint64) *Overlay {
	t.Helper()
	o, err := New(n, d, headroom, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNewValidation(t *testing.T) {
	rng := xrand.New(1)
	if _, err := New(100, 5, 10, rng); err == nil {
		t.Error("odd degree accepted")
	}
	if _, err := New(100, 2, 10, rng); err == nil {
		t.Error("degree 2 accepted")
	}
	if _, err := New(100, 6, -1, rng); err == nil {
		t.Error("negative headroom accepted")
	}
	if _, err := New(4, 6, 0, rng); err == nil {
		t.Error("n <= d accepted")
	}
}

func TestInitialInvariants(t *testing.T) {
	o := newTestOverlay(t, 100, 6, 20, 2)
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if o.AliveCount() != 100 || o.NumNodes() != 120 {
		t.Errorf("alive=%d capacity=%d", o.AliveCount(), o.NumNodes())
	}
	if o.TargetDegree() != 6 {
		t.Errorf("d=%d", o.TargetDegree())
	}
}

func TestJoinPreservesRegularity(t *testing.T) {
	o := newTestOverlay(t, 50, 6, 10, 3)
	for i := 0; i < 10; i++ {
		id, err := o.Join()
		if err != nil {
			t.Fatal(err)
		}
		if !o.Alive(id) {
			t.Fatalf("joined peer %d not alive", id)
		}
		if o.Degree(id) != 6 {
			t.Fatalf("joined peer %d has degree %d", id, o.Degree(id))
		}
	}
	if o.AliveCount() != 60 {
		t.Errorf("alive = %d, want 60", o.AliveCount())
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinExhaustsCapacity(t *testing.T) {
	o := newTestOverlay(t, 20, 4, 1, 4)
	if _, err := o.Join(); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Join(); err == nil {
		t.Error("join beyond capacity accepted")
	}
}

func TestLeavePreservesRegularity(t *testing.T) {
	o := newTestOverlay(t, 60, 6, 0, 5)
	for i := 0; i < 15; i++ {
		// Leave a deterministic-ish alive peer.
		v := -1
		for u := 0; u < o.NumNodes(); u++ {
			if o.Alive(u) {
				v = u
				break
			}
		}
		if err := o.Leave(v); err != nil {
			t.Fatal(err)
		}
		if o.Alive(v) {
			t.Fatalf("left peer %d still alive", v)
		}
	}
	if o.AliveCount() != 45 {
		t.Errorf("alive = %d, want 45", o.AliveCount())
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveRejectsDeadAndTiny(t *testing.T) {
	o := newTestOverlay(t, 10, 4, 0, 6)
	if err := o.Leave(-1); err == nil {
		t.Error("Leave(-1) accepted")
	}
	// Shrink to the minimum then expect refusal.
	for {
		err := o.Leave(firstAlive(o))
		if err != nil {
			break
		}
	}
	if o.AliveCount() < 5 { // d+1 = 5
		t.Errorf("overlay shrank to %d < d+1", o.AliveCount())
	}
}

func firstAlive(o *Overlay) int {
	for v := 0; v < o.NumNodes(); v++ {
		if o.Alive(v) {
			return v
		}
	}
	return -1
}

func TestLeaveThenJoinRecyclesIDs(t *testing.T) {
	o := newTestOverlay(t, 30, 4, 0, 7)
	victim := firstAlive(o)
	if err := o.Leave(victim); err != nil {
		t.Fatal(err)
	}
	id, err := o.Join()
	if err != nil {
		t.Fatal(err)
	}
	if id != victim {
		t.Errorf("join got id %d, want recycled %d", id, victim)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMixPreservesInvariants(t *testing.T) {
	o := newTestOverlay(t, 80, 6, 0, 8)
	o.Mix(1000)
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if o.AliveCount() != 80 {
		t.Errorf("mix changed membership: %d", o.AliveCount())
	}
}

func TestSnapshotMatchesOverlay(t *testing.T) {
	o := newTestOverlay(t, 40, 6, 10, 9)
	for i := 0; i < 5; i++ {
		if _, err := o.Join(); err != nil {
			t.Fatal(err)
		}
		if err := o.Leave(firstAlive(o)); err != nil {
			t.Fatal(err)
		}
	}
	g, orig, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != o.AliveCount() {
		t.Errorf("snapshot size %d != alive %d", g.NumNodes(), o.AliveCount())
	}
	if len(orig) != g.NumNodes() {
		t.Errorf("mapping length %d", len(orig))
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(v) != 6 {
			t.Errorf("snapshot node %d degree %d", v, g.Degree(v))
		}
	}
}

func TestHeavyChurnKeepsInvariants(t *testing.T) {
	o := newTestOverlay(t, 100, 6, 100, 10)
	rng := xrand.New(11)
	for step := 0; step < 500; step++ {
		if rng.Bool(0.5) {
			if _, err := o.Join(); err != nil {
				continue
			}
		} else {
			v := firstAlive(o)
			if rng.Bool(0.5) {
				// pick a random alive peer instead of the first
				for tries := 0; tries < 50; tries++ {
					u := rng.IntN(o.NumNodes())
					if o.Alive(u) {
						v = u
						break
					}
				}
			}
			if err := o.Leave(v); err != nil {
				continue
			}
		}
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestChurnerValidation(t *testing.T) {
	o := newTestOverlay(t, 50, 6, 10, 12)
	rng := xrand.New(13)
	if _, err := NewChurner(nil, 0.1, 0.1, 0, rng); err == nil {
		t.Error("nil overlay accepted")
	}
	if _, err := NewChurner(o, 1.5, 0.1, 0, rng); err == nil {
		t.Error("bad join prob accepted")
	}
	if _, err := NewChurner(o, 0.1, 0.1, -1, rng); err == nil {
		t.Error("negative mix accepted")
	}
}

func TestChurnerStepReportsJoins(t *testing.T) {
	o := newTestOverlay(t, 100, 6, 200, 14)
	ch, err := NewChurner(o, 0.2, 0.05, 5, xrand.New(15))
	if err != nil {
		t.Fatal(err)
	}
	totalJoined := 0
	for round := 1; round <= 20; round++ {
		joined := ch.Step(round)
		totalJoined += len(joined)
		for _, id := range joined {
			if !o.Alive(id) {
				t.Fatalf("reported joiner %d not alive", id)
			}
		}
	}
	if totalJoined == 0 {
		t.Error("no joins in 20 rounds at join prob 0.2")
	}
	if ch.Joins != totalJoined {
		t.Errorf("Joins counter %d != reported %d", ch.Joins, totalJoined)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastSurvivesChurn(t *testing.T) {
	// The paper's robustness claim: the four-choice broadcast tolerates
	// *limited* changes in network size. Peers that join after the pull
	// round are unreachable by design (only active nodes push in Phase 4),
	// so at churn rate q per round the expected shortfall is about
	// q × (rounds after the pull round). At 0.2% churn over a ~43-round
	// schedule that is ≈ 4%; we require ≥ 95% informed. Experiment E13
	// sweeps the churn rate and records the full degradation curve.
	o := newTestOverlay(t, 512, 6, 512, 16)
	ch, err := NewChurner(o, 0.002, 0.002, 10, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	_ = ch // the overlay itself is the Topology; attach churn via wrapper below

	proto, err := core.NewAlgorithm1(512)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phonecall.Run(phonecall.Config{
		Topology: churningTopology{o, ch},
		Protocol: proto,
		Source:   firstAlive(o),
		RNG:      xrand.New(18),
	})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Informed) / float64(res.AliveNodes)
	if frac < 0.95 {
		t.Errorf("under churn only %.1f%% informed", 100*frac)
	}
}

// churningTopology glues an Overlay and its Churner into a single value
// implementing both Topology and Stepper.
type churningTopology struct {
	*Overlay
	ch *Churner
}

func (c churningTopology) Step(round int) []int { return c.ch.Step(round) }

// membershipEvent is one OnMembership callback invocation.
type membershipEvent struct {
	id     int
	joined bool
}

func TestMembershipEvents(t *testing.T) {
	o := newTestOverlay(t, 16, 4, 8, 5)
	var events []membershipEvent
	o.OnMembership(func(id int, joined bool) {
		events = append(events, membershipEvent{id, joined})
	})
	// A second subscriber sees the same feed (fan-out).
	second := 0
	o.OnMembership(func(int, bool) { second++ })

	id, err := o.Join()
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Leave(3); err != nil {
		t.Fatal(err)
	}
	wid, err := o.WalkJoin(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []membershipEvent{{id, true}, {3, false}, {wid, true}}
	if len(events) != len(want) {
		t.Fatalf("saw %d membership events, want %d: %+v", len(events), len(want), events)
	}
	for i, ev := range events {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
	if second != len(want) {
		t.Errorf("second subscriber saw %d events, want %d", second, len(want))
	}
	// Events fire after the mutation: the overlay must already be
	// consistent inside a callback. Verify post-hoc that the final state
	// matches the event log.
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// WalkJoin may recycle the id Leave just freed; only when it picked a
	// different slot must 3 still be dead.
	if wid != 3 && o.Alive(3) {
		t.Error("departed peer 3 still alive")
	}
	if !o.Alive(wid) {
		t.Error("walk-joined peer not alive")
	}
}
