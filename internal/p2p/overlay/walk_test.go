package overlay

import (
	"math"
	"testing"

	"regcast/internal/xrand"
)

func TestRandomWalkValidation(t *testing.T) {
	o := newTestOverlay(t, 40, 4, 0, 90)
	if _, err := o.RandomWalk(-1, 5); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := o.RandomWalk(0, -1); err == nil {
		t.Error("negative length accepted")
	}
	if end, err := o.RandomWalk(7, 0); err != nil || end != 7 {
		t.Errorf("zero-length walk: end=%d err=%v", end, err)
	}
}

func TestRandomWalkStaysOnAlivePeers(t *testing.T) {
	o := newTestOverlay(t, 60, 6, 0, 91)
	for i := 0; i < 50; i++ {
		end, err := o.RandomWalk(0, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !o.Alive(end) {
			t.Fatalf("walk ended on dead peer %d", end)
		}
	}
}

func TestRandomWalkMixesTowardUniform(t *testing.T) {
	// On an expander, an O(log n)-step walk should visit all peers with
	// roughly uniform frequency. Chi-square-ish sanity: no peer collects
	// more than 4× the uniform share over many walks.
	const n, walks = 64, 6400
	o := newTestOverlay(t, n, 6, 0, 92)
	counts := make([]int, o.NumNodes())
	for i := 0; i < walks; i++ {
		end, err := o.RandomWalk(0, 12) // 2·log₂ 64
		if err != nil {
			t.Fatal(err)
		}
		counts[end]++
	}
	uniform := float64(walks) / n
	for v, c := range counts {
		if float64(c) > 4*uniform {
			t.Errorf("peer %d visited %d times (uniform share %.0f)", v, c, uniform)
		}
	}
	if counts[0] == walks {
		t.Error("walk never left the start")
	}
}

func TestWalkJoinPreservesRegularity(t *testing.T) {
	o := newTestOverlay(t, 50, 6, 20, 93)
	walkLen := 2 * int(math.Ceil(math.Log2(50)))
	for i := 0; i < 15; i++ {
		id, err := o.WalkJoin(firstAlive(o), walkLen)
		if err != nil {
			t.Fatal(err)
		}
		if o.Degree(id) != 6 {
			t.Fatalf("walk-joined peer %d has degree %d", id, o.Degree(id))
		}
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if o.AliveCount() != 65 {
		t.Errorf("alive = %d", o.AliveCount())
	}
}

func TestWalkJoinValidation(t *testing.T) {
	o := newTestOverlay(t, 30, 4, 5, 94)
	if _, err := o.WalkJoin(-1, 5); err == nil {
		t.Error("bad contact accepted")
	}
	if _, err := o.WalkJoin(0, 0); err == nil {
		t.Error("zero walk length accepted")
	}
	full := newTestOverlay(t, 20, 4, 0, 95)
	if _, err := full.WalkJoin(0, 5); err == nil {
		t.Error("join without capacity accepted")
	}
}

func TestWalkJoinInterleavedWithLeaves(t *testing.T) {
	o := newTestOverlay(t, 64, 6, 64, 96)
	rng := xrand.New(97)
	for step := 0; step < 200; step++ {
		if rng.Bool(0.5) {
			if _, err := o.WalkJoin(firstAlive(o), 12); err != nil {
				continue
			}
		} else {
			v := firstAlive(o)
			if err := o.Leave(v); err != nil {
				continue
			}
		}
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
