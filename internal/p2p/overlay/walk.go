package overlay

import "fmt"

// RandomWalk performs a simple random walk of the given length from an
// alive peer and returns the endpoint. Walks are the decentralised
// neighbour-discovery primitive of low-diameter P2P constructions
// (Pandurangan, Raghavan & Upfal — reference [32] of the paper): on a
// regular expander, O(log n) steps land on a nearly uniform peer.
func (o *Overlay) RandomWalk(from, length int) (int, error) {
	if from < 0 || from >= len(o.adj) || !o.alive[from] {
		return -1, fmt.Errorf("overlay: RandomWalk from %d: not an alive peer", from)
	}
	if length < 0 {
		return -1, fmt.Errorf("overlay: negative walk length %d", length)
	}
	cur := from
	for step := 0; step < length; step++ {
		deg := len(o.adj[cur])
		if deg == 0 {
			return -1, fmt.Errorf("overlay: walk stranded at degree-0 peer %d", cur)
		}
		cur = int(o.adj[cur][o.rng.IntN(deg)])
	}
	return cur, nil
}

// WalkJoin splices a new peer into the overlay like Join, but discovers
// the d/2 edges to splice by random walks from a known contact peer
// instead of by global uniform edge sampling — the fully decentralised
// variant a real deployment would run. Walk length should be Ω(log n);
// on the expander overlay that suffices for near-uniform edge selection.
func (o *Overlay) WalkJoin(contact, walkLen int) (int, error) {
	if len(o.freeIDs) == 0 {
		return -1, fmt.Errorf("overlay: no free slots (capacity %d)", len(o.adj))
	}
	if o.aliveCnt <= o.d {
		return -1, fmt.Errorf("overlay: too few peers (%d) to splice a join", o.aliveCnt)
	}
	if contact < 0 || contact >= len(o.adj) || !o.alive[contact] {
		return -1, fmt.Errorf("overlay: WalkJoin contact %d: not an alive peer", contact)
	}
	if walkLen < 1 {
		return -1, fmt.Errorf("overlay: walk length %d < 1", walkLen)
	}
	id := int(o.freeIDs[len(o.freeIDs)-1])
	o.freeIDs = o.freeIDs[:len(o.freeIDs)-1]
	o.epoch++

	spliced := 0
	for attempts := 0; spliced < o.d/2 && attempts < 64*o.d; attempts++ {
		// Walk to a near-uniform peer, then take a uniform incident stub:
		// on a d-regular overlay this samples a near-uniform edge.
		u, err := o.RandomWalk(contact, walkLen)
		if err != nil {
			o.freeIDs = append(o.freeIDs, int32(id))
			return -1, err
		}
		if u == id || len(o.adj[u]) == 0 {
			continue
		}
		w := o.adj[u][o.rng.IntN(len(o.adj[u]))]
		if u == id || int(w) == id {
			continue
		}
		o.removeEdge(u, w)
		o.addEdge(u, int32(id))
		o.addEdge(int(w), int32(id))
		spliced++
	}
	if spliced < o.d/2 {
		// Roll forward with uniform sampling rather than leave the peer
		// under-connected (extremely unlikely on a healthy overlay).
		for ; spliced < o.d/2; spliced++ {
			u, w := o.randomEdge()
			if u == id || int(w) == id {
				spliced--
				continue
			}
			o.removeEdge(u, w)
			o.addEdge(u, int32(id))
			o.addEdge(int(w), int32(id))
		}
	}
	o.setAlive(id, true)
	o.notify(id, true)
	return id, nil
}
