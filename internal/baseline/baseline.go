// Package baseline implements the comparator protocols the paper measures
// its contribution against: the standard push, pull, and combined
// push&pull schedules of the random phone call model (Karp et al.), all
// expressed in the same strictly oblivious Protocol interface as the
// four-choice algorithm. A configurable choice count k turns the push
// baseline into the k-choice ablation of experiment E10 (the paper's §5
// open question: are four choices necessary?).
package baseline

import (
	"fmt"
	"math"

	"regcast/internal/phonecall"
)

// Push is the classical push schedule: every informed node pushes in every
// round of the horizon. On complete graphs (and random regular graphs) it
// needs Θ(log n) rounds and Θ(n·log n) transmissions.
type Push struct {
	k       int
	horizon int
	name    string
}

var (
	_ phonecall.Protocol = (*Push)(nil)
	_ phonecall.PullFree = (*Push)(nil)
)

// NewPush builds a push baseline for an estimated network size. The
// horizon is ⌈c·log₂ n⌉ with c = 3, comfortably above the
// log₂ n + ln n + O(1) completion time (Frieze & Grimmett, Pittel).
func NewPush(nEstimate, k int) (*Push, error) {
	if err := checkParams(nEstimate, k); err != nil {
		return nil, err
	}
	h := horizonRounds(nEstimate, 3)
	return &Push{k: k, horizon: h, name: fmt.Sprintf("push(k=%d)", k)}, nil
}

// Name implements phonecall.Protocol.
func (p *Push) Name() string { return p.name }

// Choices implements phonecall.Protocol.
func (p *Push) Choices() int { return p.k }

// Horizon implements phonecall.Protocol.
func (p *Push) Horizon() int { return p.horizon }

// SendPush implements phonecall.Protocol: all informed nodes push always.
func (p *Push) SendPush(t, informedAt int) bool { return true }

// SendPull implements phonecall.Protocol.
func (p *Push) SendPull(t, informedAt int) bool { return false }

// NeverPulls implements phonecall.PullFree.
func (p *Push) NeverPulls() bool { return true }

// Pull is the classical pull schedule: every informed node answers all its
// callers in every round. Once half the graph is informed the uninformed
// count squares down each round, but the opening phase is slow because the
// source must wait to be dialled.
type Pull struct {
	k       int
	horizon int
	name    string
}

var _ phonecall.Protocol = (*Pull)(nil)

// NewPull builds a pull baseline (horizon ⌈4·log₂ n⌉: the pull start-up
// phase is slower than push's).
func NewPull(nEstimate, k int) (*Pull, error) {
	if err := checkParams(nEstimate, k); err != nil {
		return nil, err
	}
	h := horizonRounds(nEstimate, 4)
	return &Pull{k: k, horizon: h, name: fmt.Sprintf("pull(k=%d)", k)}, nil
}

// Name implements phonecall.Protocol.
func (p *Pull) Name() string { return p.name }

// Choices implements phonecall.Protocol.
func (p *Pull) Choices() int { return p.k }

// Horizon implements phonecall.Protocol.
func (p *Pull) Horizon() int { return p.horizon }

// SendPush implements phonecall.Protocol.
func (p *Pull) SendPush(t, informedAt int) bool { return false }

// SendPull implements phonecall.Protocol: all informed nodes pull always.
func (p *Pull) SendPull(t, informedAt int) bool { return true }

// PushPull is the combined schedule of Karp et al.: every informed node
// both pushes and pulls for a fixed horizon of log₃ n + Θ(log log n)
// rounds, after which the message "dies of old age" — the age-based
// termination that gives O(n·log log n) transmissions on complete graphs.
type PushPull struct {
	k       int
	horizon int
	name    string
}

var _ phonecall.Protocol = (*PushPull)(nil)

// NewPushPull builds the combined baseline. The horizon is
// ⌈log₃ n⌉ + ⌈c·log₂ log₂ n⌉ with c = 2 (Karp et al.'s schedule shape:
// the informed set saturates after ~log₃ n rounds and the quadratic pull
// shrinkage finishes within O(log log n) more; every extra round costs up
// to 2n transmissions, so the constant must stay small for the
// O(n·log log n) bound to be visible at laptop scales).
func NewPushPull(nEstimate, k int) (*PushPull, error) {
	if err := checkParams(nEstimate, k); err != nil {
		return nil, err
	}
	logN := math.Log2(float64(nEstimate))
	logLogN := math.Log2(logN)
	if logLogN < 1 {
		logLogN = 1
	}
	h := int(math.Ceil(math.Log(float64(nEstimate))/math.Log(3))) + int(math.Ceil(2*logLogN))
	return &PushPull{k: k, horizon: h, name: fmt.Sprintf("push-pull(k=%d)", k)}, nil
}

// Name implements phonecall.Protocol.
func (p *PushPull) Name() string { return p.name }

// Choices implements phonecall.Protocol.
func (p *PushPull) Choices() int { return p.k }

// Horizon implements phonecall.Protocol.
func (p *PushPull) Horizon() int { return p.horizon }

// SendPush implements phonecall.Protocol.
func (p *PushPull) SendPush(t, informedAt int) bool { return true }

// SendPull implements phonecall.Protocol.
func (p *PushPull) SendPull(t, informedAt int) bool { return true }

func checkParams(nEstimate, k int) error {
	if nEstimate < 2 {
		return fmt.Errorf("baseline: network size estimate %d too small", nEstimate)
	}
	if k < 1 {
		return fmt.Errorf("baseline: choices k=%d must be >= 1", k)
	}
	return nil
}

func horizonRounds(nEstimate int, c float64) int {
	h := int(math.Ceil(c * math.Log2(float64(nEstimate))))
	if h < 4 {
		h = 4
	}
	return h
}
