package baseline

import (
	"testing"

	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// TestBaselinesParallelDeterminism checks the determinism contract of the
// sharded engine for all three baseline schedules: same seed ⇒ identical
// informed-round traces for 1 vs 8 workers.
func TestBaselinesParallelDeterminism(t *testing.T) {
	const n, d = 1 << 10, 8
	g := testGraph(t, n, d, 23)

	push, err := NewPush(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	pull, err := NewPull(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewPushPull(n, 1)
	if err != nil {
		t.Fatal(err)
	}

	for _, proto := range []phonecall.Protocol{push, pull, pp} {
		t.Run(proto.Name(), func(t *testing.T) {
			run := func(workers int) phonecall.Result {
				res, err := phonecall.Run(phonecall.Config{
					Topology: phonecall.NewStatic(g),
					Protocol: proto,
					Source:   11,
					RNG:      xrand.New(987),
					Workers:  workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(1), run(8)
			if a.Transmissions != b.Transmissions || a.FirstAllInformed != b.FirstAllInformed ||
				a.Informed != b.Informed {
				t.Fatalf("worker counts disagree: %+v vs %+v", a, b)
			}
			for v := range a.InformedAt {
				if a.InformedAt[v] != b.InformedAt[v] {
					t.Fatalf("InformedAt[%d]: %d vs %d", v, a.InformedAt[v], b.InformedAt[v])
				}
			}
		})
	}
}
