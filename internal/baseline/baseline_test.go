package baseline

import (
	"testing"

	"regcast/internal/graph"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

func testGraph(t *testing.T, n, d int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegular(n, d, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewPush(1, 1); err == nil {
		t.Error("NewPush(1,1) accepted")
	}
	if _, err := NewPush(100, 0); err == nil {
		t.Error("NewPush k=0 accepted")
	}
	if _, err := NewPull(1, 1); err == nil {
		t.Error("NewPull(1,1) accepted")
	}
	if _, err := NewPushPull(100, -1); err == nil {
		t.Error("NewPushPull k=-1 accepted")
	}
}

func TestPushScheduleShape(t *testing.T) {
	p, err := NewPush(1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Choices() != 1 {
		t.Errorf("Choices = %d", p.Choices())
	}
	if p.Horizon() != 30 { // ceil(3 * 10)
		t.Errorf("Horizon = %d, want 30", p.Horizon())
	}
	if !p.SendPush(1, 0) || !p.SendPush(30, 29) {
		t.Error("push baseline must push in every round")
	}
	if p.SendPull(5, 0) {
		t.Error("push baseline pulled")
	}
	if !p.NeverPulls() {
		t.Error("NeverPulls should be true")
	}
}

func TestPullScheduleShape(t *testing.T) {
	p, err := NewPull(1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.SendPush(3, 0) {
		t.Error("pull baseline pushed")
	}
	if !p.SendPull(3, 0) {
		t.Error("pull baseline did not pull")
	}
}

func TestPushPullScheduleShape(t *testing.T) {
	p, err := NewPushPull(1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.SendPush(1, 0) || !p.SendPull(1, 0) {
		t.Error("push-pull must do both")
	}
	// Karp-style horizon: log₃ n + Θ(log log n) ≈ 7 + 14 for n=1024.
	if p.Horizon() < 10 || p.Horizon() > 40 {
		t.Errorf("push-pull horizon = %d, implausible", p.Horizon())
	}
	// Push-pull's horizon must be well below push's (that is the point of
	// the age-based termination).
	push, err := NewPush(1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Horizon() >= push.Horizon() {
		t.Errorf("push-pull horizon %d >= push horizon %d", p.Horizon(), push.Horizon())
	}
}

func TestPushCompletesOnRegularGraph(t *testing.T) {
	g := testGraph(t, 512, 8, 1)
	p, err := NewPush(512, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phonecall.Run(phonecall.Config{
		Topology: phonecall.NewStatic(g), Protocol: p, RNG: xrand.New(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Errorf("push informed %d/512", res.Informed)
	}
}

func TestPullCompletesOnRegularGraph(t *testing.T) {
	g := testGraph(t, 512, 8, 3)
	p, err := NewPull(512, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phonecall.Run(phonecall.Config{
		Topology: phonecall.NewStatic(g), Protocol: p, RNG: xrand.New(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Errorf("pull informed %d/512", res.Informed)
	}
}

func TestPushPullCompletesAndUsesFewerTransmissionsThanPush(t *testing.T) {
	const n, d = 2048, 12
	g := testGraph(t, n, d, 5)
	push, err := NewPush(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewPushPull(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	var pushTx, ppTx int64
	ppIncomplete := 0
	const reps = 5
	for seed := uint64(0); seed < reps; seed++ {
		a, err := phonecall.Run(phonecall.Config{
			Topology: phonecall.NewStatic(g), Protocol: push, RNG: xrand.New(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := phonecall.Run(phonecall.Config{
			Topology: phonecall.NewStatic(g), Protocol: pp, RNG: xrand.New(seed + 100),
		})
		if err != nil {
			t.Fatal(err)
		}
		pushTx += a.Transmissions
		ppTx += b.Transmissions
		if !a.AllInformed {
			t.Error("push incomplete")
		}
		if !b.AllInformed {
			ppIncomplete++
		}
	}
	if ppIncomplete > 0 {
		t.Errorf("push-pull incomplete in %d/%d runs", ppIncomplete, reps)
	}
	if ppTx >= pushTx {
		t.Errorf("push-pull transmissions %d not below push %d (Karp separation)", ppTx, pushTx)
	}
}

func TestKChoiceAblationMonotoneRounds(t *testing.T) {
	// More choices per round must not slow the broadcast down (in rounds).
	const n, d = 1024, 8
	g := testGraph(t, n, d, 6)
	meanRounds := func(k int) float64 {
		p, err := NewPush(n, k)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		const reps = 5
		for seed := uint64(0); seed < reps; seed++ {
			res, err := phonecall.Run(phonecall.Config{
				Topology: phonecall.NewStatic(g), Protocol: p, RNG: xrand.New(seed), StopEarly: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllInformed {
				t.Fatalf("k=%d incomplete", k)
			}
			total += res.FirstAllInformed
		}
		return float64(total) / reps
	}
	r1, r4 := meanRounds(1), meanRounds(4)
	if r4 >= r1 {
		t.Errorf("4-choice push (%.1f rounds) not faster than 1-choice (%.1f)", r4, r1)
	}
}
