// Package mediancounter implements the self-terminating push&pull rumour
// spreading of Karp, Schindelhauer, Shenker & Vöcking ("Randomized rumor
// spreading", FOCS 2000 — reference [25] of the paper), in the
// counter-based variant: a node that keeps meeting partners who already
// know the rumour concludes the rumour is old and stops propagating it.
//
// Unlike the strictly oblivious schedules in internal/core and
// internal/baseline — whose termination is a fixed horizon computed from
// an estimate of n — the median-counter rule terminates *locally*: no
// global clock w.r.t. the rumour's creation is needed, only a counter
// threshold of order log log n. The cost of that convenience is state, so
// the protocol does not fit the phonecall.Protocol interface and ships
// with its own small engine (same dial semantics: one uniform neighbour
// per round, channels usable in both directions).
//
// Node states follow Karp et al.: A (has not heard the rumour), B (knows
// it and propagates, carrying a counter), C (knows it and stays quiet).
// A B-node increments its counter each round in which it communicated the
// rumour only to partners that already knew it; reaching the threshold
// moves it to C. Uninformed nodes keep dialling, so late pulls still work.
package mediancounter

import (
	"fmt"
	"math"

	"regcast/internal/graph"
	"regcast/internal/xrand"
)

// State is a node's rumour state.
type State int8

const (
	// StateA has not heard the rumour.
	StateA State = iota
	// StateB knows the rumour and propagates it.
	StateB
	// StateC knows the rumour and no longer propagates it.
	StateC
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateA:
		return "A"
	case StateB:
		return "B"
	case StateC:
		return "C"
	default:
		return fmt.Sprintf("state(%d)", int8(s))
	}
}

// Config describes one median-counter run.
type Config struct {
	// Graph is the (static, simple) topology.
	Graph *graph.Graph
	// Source creates the rumour.
	Source int
	// RNG drives the run.
	RNG *xrand.Rand
	// Threshold is the counter value at which a B-node retires to C.
	// Zero selects the default ⌈2·log₂ log₂ n⌉ + 2.
	Threshold int
	// MaxRounds bounds the run as a safety net. Zero selects 8·⌈log₂ n⌉.
	// The protocol is expected to go quiet (no B-nodes) well before.
	MaxRounds int
}

// Result summarises a run.
type Result struct {
	// Rounds executed until the protocol went quiet (or MaxRounds).
	Rounds int
	// QuietAt is the first round after which no B-nodes remained, or -1.
	QuietAt int
	// Informed counts nodes in state B or C at the end.
	Informed int
	// AllInformed reports whether every node heard the rumour.
	AllInformed bool
	// Transmissions counts rumour transmissions (each channel direction
	// that carried the rumour).
	Transmissions int64
	// MaxCounter is the largest counter value any node reached.
	MaxCounter int
}

// Run executes the protocol until no B-nodes remain or MaxRounds elapse.
func Run(cfg Config) (Result, error) {
	if cfg.Graph == nil || cfg.RNG == nil {
		return Result{}, fmt.Errorf("mediancounter: Config requires Graph and RNG")
	}
	n := cfg.Graph.NumNodes()
	if n < 2 {
		return Result{}, fmt.Errorf("mediancounter: graph too small (n=%d)", n)
	}
	if cfg.Source < 0 || cfg.Source >= n {
		return Result{}, fmt.Errorf("mediancounter: source %d out of range [0,%d)", cfg.Source, n)
	}
	threshold := cfg.Threshold
	if threshold == 0 {
		// Θ(log log n) as in Karp et al.; the constant matters because a
		// retired node has paid ~2·threshold transmissions in its quiet
		// period, so the default keeps it at ⌈log log n⌉ + 2.
		logN := math.Log2(float64(n))
		threshold = int(math.Ceil(math.Log2(logN))) + 2
	}
	if threshold < 1 {
		return Result{}, fmt.Errorf("mediancounter: threshold %d < 1", threshold)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 8 * int(math.Ceil(math.Log2(float64(n))))
	}
	if maxRounds < 1 {
		return Result{}, fmt.Errorf("mediancounter: MaxRounds %d < 1", maxRounds)
	}

	state := make([]State, n)
	ctr := make([]int, n)
	state[cfg.Source] = StateB
	ctr[cfg.Source] = 1
	bCount := 1

	dials := make([]int32, n)
	newlyB := make([]int32, 0, 64)
	res := Result{QuietAt: -1, MaxCounter: 1}

	for t := 1; t <= maxRounds && bCount > 0; t++ {
		res.Rounds = t
		// Dial phase: every node picks one uniform neighbour.
		for v := 0; v < n; v++ {
			deg := cfg.Graph.Degree(v)
			if deg == 0 {
				dials[v] = -1
				continue
			}
			dials[v] = int32(cfg.Graph.Neighbor(v, cfg.RNG.IntN(deg)))
		}
		// Exchange phase. For every channel (v dialled w), the rumour can
		// flow v→w (push, if v is B) and w→v (pull answer, if w is B).
		talked := make([]bool, n) // B-node communicated the rumour this round
		fresh := make([]bool, n)  // ... and informed at least one new node
		newlyB = newlyB[:0]
		justInformed := make([]bool, n)
		for v := 0; v < n; v++ {
			w := dials[v]
			if w < 0 {
				continue
			}
			// Push direction: v → w.
			if state[v] == StateB {
				res.Transmissions++
				talked[v] = true
				if state[w] == StateA && !justInformed[w] {
					justInformed[w] = true
					fresh[v] = true
					newlyB = append(newlyB, w)
				}
			}
			// Pull direction: w → v (w answers its caller).
			if state[w] == StateB {
				res.Transmissions++
				talked[int(w)] = true
				if state[v] == StateA && !justInformed[v] {
					justInformed[v] = true
					fresh[w] = true
					newlyB = append(newlyB, int32(v))
				}
			}
		}
		// Counter update: a B-node that communicated the rumour this round
		// without informing anyone new increments its counter ("the rumour
		// looks old"); reaching the threshold retires it to C.
		for v := 0; v < n; v++ {
			if state[v] != StateB || !talked[v] || fresh[v] {
				continue
			}
			ctr[v]++
			if ctr[v] > res.MaxCounter {
				res.MaxCounter = ctr[v]
			}
			if ctr[v] >= threshold {
				state[v] = StateC
				bCount--
			}
		}
		// Receipts: newly informed nodes enter B with counter 1.
		for _, v := range newlyB {
			if state[v] == StateA {
				state[v] = StateB
				ctr[v] = 1
				bCount++
			}
		}
		if bCount == 0 && res.QuietAt < 0 {
			res.QuietAt = t
		}
	}
	if bCount == 0 && res.QuietAt < 0 {
		res.QuietAt = res.Rounds
	}

	for v := 0; v < n; v++ {
		if state[v] != StateA {
			res.Informed++
		}
	}
	res.AllInformed = res.Informed == n
	return res, nil
}
