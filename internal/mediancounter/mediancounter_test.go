package mediancounter

import (
	"math"
	"testing"

	"regcast/internal/graph"
	"regcast/internal/xrand"
)

func testGraph(t *testing.T, n, d int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegular(n, d, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStateString(t *testing.T) {
	if StateA.String() != "A" || StateB.String() != "B" || StateC.String() != "C" {
		t.Error("state names wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state empty")
	}
}

func TestConfigValidation(t *testing.T) {
	g := testGraph(t, 32, 4, 1)
	rng := xrand.New(1)
	if _, err := Run(Config{RNG: rng}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run(Config{Graph: g}); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := Run(Config{Graph: g, RNG: rng, Source: -1}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := Run(Config{Graph: g, RNG: rng, Threshold: -3}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := Run(Config{Graph: g, RNG: rng, MaxRounds: -1}); err == nil {
		t.Error("negative MaxRounds accepted")
	}
}

func TestCompletesAndSelfTerminates(t *testing.T) {
	const n, d = 1 << 11, 8
	g := testGraph(t, n, d, 2)
	incomplete, noisy := 0, 0
	const reps = 5
	for seed := uint64(0); seed < reps; seed++ {
		res, err := Run(Config{Graph: g, Source: int(seed) * 7, RNG: xrand.New(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllInformed {
			incomplete++
		}
		if res.QuietAt < 0 {
			noisy++
		}
	}
	if incomplete > 0 {
		t.Errorf("incomplete in %d/%d runs", incomplete, reps)
	}
	if noisy > 0 {
		t.Errorf("did not self-terminate in %d/%d runs", noisy, reps)
	}
}

func TestQuietMeansNoMoreCost(t *testing.T) {
	// After going quiet the run must end: Rounds == QuietAt.
	g := testGraph(t, 512, 6, 3)
	res, err := Run(Config{Graph: g, RNG: xrand.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuietAt < 0 {
		t.Fatal("never went quiet")
	}
	if res.Rounds != res.QuietAt {
		t.Errorf("ran %d rounds but quiet at %d", res.Rounds, res.QuietAt)
	}
}

func TestSelfTerminationIsLogarithmicish(t *testing.T) {
	// Quiet time should scale like O(log n): ratio to log₂ n bounded.
	for _, n := range []int{512, 2048, 8192} {
		g := testGraph(t, n, 8, uint64(n))
		res, err := Run(Config{Graph: g, RNG: xrand.New(uint64(n) + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if res.QuietAt < 0 {
			t.Fatalf("n=%d never quiet", n)
		}
		ratio := float64(res.QuietAt) / math.Log2(float64(n))
		if ratio > 6 {
			t.Errorf("n=%d quiet at %d rounds (%.1f·log n)", n, res.QuietAt, ratio)
		}
	}
}

func TestTransmissionsPerNodeModest(t *testing.T) {
	// The point of the counter: per-node cost tracks the Θ(log log n)
	// quiet period (≈ 2·(threshold + O(1)) with push+pull answers), well
	// below the ~1.7·log₂ n of a full-schedule push. At n = 2¹² the
	// threshold is 6, so anything above ~2.5× the push bound would mean
	// the quenching is broken; we also check the absolute budget.
	const n, d = 1 << 12, 8
	g := testGraph(t, n, d, 5)
	res, err := Run(Config{Graph: g, RNG: xrand.New(6)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatal("incomplete")
	}
	perNode := float64(res.Transmissions) / float64(n)
	threshold := math.Ceil(math.Log2(math.Log2(n))) + 2
	if perNode > 2*(threshold+4) {
		t.Errorf("median-counter used %.1f tx/node, budget 2·(threshold+4) = %.1f", perNode, 2*(threshold+4))
	}
	if perNode > 1.7*math.Log2(float64(n)) {
		t.Errorf("median-counter (%.1f tx/node) worse than full-schedule push", perNode)
	}
}

func TestThresholdOneQuenchesTooEarly(t *testing.T) {
	// With threshold 1 every wasted round retires a node; dissemination
	// should usually stall below full coverage on a sizeable graph.
	const n = 1 << 12
	g := testGraph(t, n, 8, 7)
	res, err := Run(Config{Graph: g, RNG: xrand.New(8), Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuietAt < 0 {
		t.Error("threshold 1 should terminate quickly")
	}
	if res.Informed == n {
		t.Skip("lucky run informed everyone despite threshold 1")
	}
	if res.Informed <= 1 {
		t.Error("nothing spread at all")
	}
}

func TestMaxCounterBounded(t *testing.T) {
	g := testGraph(t, 1024, 8, 9)
	res, err := Run(Config{Graph: g, RNG: xrand.New(10)})
	if err != nil {
		t.Fatal(err)
	}
	wantMax := int(math.Ceil(2*math.Log2(math.Log2(1024)))) + 2
	if res.MaxCounter > wantMax {
		t.Errorf("MaxCounter %d exceeds threshold %d", res.MaxCounter, wantMax)
	}
	if res.MaxCounter < 1 {
		t.Error("MaxCounter never recorded")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := testGraph(t, 512, 6, 11)
	a, err := Run(Config{Graph: g, RNG: xrand.New(12)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Graph: g, RNG: xrand.New(12)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Transmissions != b.Transmissions || a.QuietAt != b.QuietAt || a.Informed != b.Informed {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestMaxRoundsSafetyNet(t *testing.T) {
	g := testGraph(t, 256, 6, 13)
	res, err := Run(Config{Graph: g, RNG: xrand.New(14), MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 3 {
		t.Errorf("ran %d rounds past MaxRounds", res.Rounds)
	}
}
