package mediancounter_test

import (
	"fmt"
	"log"

	"regcast/internal/graph"
	"regcast/internal/mediancounter"
	"regcast/internal/xrand"
)

// Example spreads a rumour with the self-terminating median-counter
// protocol: no horizon is configured — the nodes detect staleness locally
// and go quiet on their own.
func Example() {
	g, err := graph.RandomRegular(1024, 8, xrand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	res, err := mediancounter.Run(mediancounter.Config{
		Graph: g,
		RNG:   xrand.New(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("everyone informed:", res.AllInformed)
	fmt.Println("went quiet on its own:", res.QuietAt > 0)
	// Output:
	// everyone informed: true
	// went quiet on its own: true
}
