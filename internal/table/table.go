// Package table renders simple column-aligned tables as plain text or
// GitHub-flavoured Markdown. The experiment harness uses it to emit the
// per-experiment result tables recorded in EXPERIMENTS.md: cmd/experiments
// prints the Markdown form (-markdown) that EXPERIMENTS.md embeds, and
// `go test -bench -v` prints the plain-text form for quick inspection.
// Tables are deterministic (no timestamps, no map iteration), so the same
// seed always renders byte-identical output — which is what lets the
// experiment-determinism tests compare rendered tables directly.
package table

import (
	"fmt"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: append([]string(nil), columns...)}
}

// AddRow appends a row. Cells are formatted with fmt.Sprint; a short row is
// padded with empty cells, a long row is truncated to the column count.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = fmt.Sprint(cells[i])
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form footnote rendered below the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// widths returns the display width of each column.
func (t *Table) widths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(w) && len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i, width := range w {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width, cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		copy(cells, row)
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
