package table

import (
	"strings"
	"testing"
)

func TestStringRendering(t *testing.T) {
	tb := New("demo", "n", "rounds")
	tb.AddRow(1024, 17)
	tb.AddRow(2048, 19)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "1024") || !strings.Contains(out, "19") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestColumnAlignment(t *testing.T) {
	tb := New("", "col", "x")
	tb.AddRow("longvalue", 1)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and row must be the same width since the widest cell governs.
	if len(lines[0]) != len(lines[2]) {
		t.Errorf("misaligned:\n%s", out)
	}
}

func TestShortAndLongRows(t *testing.T) {
	tb := New("t", "a", "b")
	tb.AddRow(1)          // short: padded
	tb.AddRow(1, 2, 3, 4) // long: truncated
	if len(tb.Rows[0]) != 2 || len(tb.Rows[1]) != 2 {
		t.Fatalf("row normalisation failed: %v", tb.Rows)
	}
	if tb.Rows[0][1] != "" {
		t.Error("padding cell not empty")
	}
	if tb.Rows[1][1] != "2" {
		t.Error("truncation kept wrong cells")
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("exp", "n", "v")
	tb.AddRow(1, "x")
	tb.AddNote("seed=%d", 42)
	md := tb.Markdown()
	for _, want := range []string{"### exp", "| n | v |", "| --- | --- |", "| 1 | x |", "*seed=42*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestNotesInString(t *testing.T) {
	tb := New("t", "a")
	tb.AddNote("hello %s", "world")
	if !strings.Contains(tb.String(), "note: hello world") {
		t.Error("note missing from plain rendering")
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("empty", "a", "b")
	out := tb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("headers missing:\n%s", out)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") {
		t.Errorf("markdown headers missing:\n%s", md)
	}
}
