package core

import (
	"testing"

	"regcast/internal/graph"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// TestFourChoiceParallelDeterminism is the determinism contract for the
// paper's protocols on the sharded engine: same seed ⇒ identical
// informed-round traces for 1 and 8 workers, for both FourChoice
// variants and the sequentialised footnote-2 model.
func TestFourChoiceParallelDeterminism(t *testing.T) {
	const n, d = 1 << 10, 8
	g, err := graph.RandomRegular(n, d, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	alg1, err := NewAlgorithm1(n)
	if err != nil {
		t.Fatal(err)
	}
	alg2, err := NewAlgorithm2(n)
	if err != nil {
		t.Fatal(err)
	}
	seq := NewSequentialised(alg1)

	cases := []struct {
		name  string
		proto phonecall.Protocol
		avoid int
	}{
		{"algorithm1", alg1, 0},
		{"algorithm2", alg2, 0},
		{"sequentialised", seq, seq.Memory()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) phonecall.Result {
				res, err := phonecall.Run(phonecall.Config{
					Topology:    phonecall.NewStatic(g),
					Protocol:    tc.proto,
					Source:      3,
					RNG:         xrand.New(4242),
					AvoidRecent: tc.avoid,
					Workers:     workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(1), run(8)
			if a.Transmissions != b.Transmissions || a.FirstAllInformed != b.FirstAllInformed {
				t.Fatalf("worker counts disagree: %+v vs %+v", a, b)
			}
			for v := range a.InformedAt {
				if a.InformedAt[v] != b.InformedAt[v] {
					t.Fatalf("InformedAt[%d]: %d vs %d", v, a.InformedAt[v], b.InformedAt[v])
				}
			}
			if !a.AllInformed {
				t.Errorf("%s did not complete on the sharded engine (%d/%d)",
					tc.proto.Name(), a.Informed, a.AliveNodes)
			}
		})
	}
}
