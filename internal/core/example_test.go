package core_test

import (
	"fmt"
	"log"

	"regcast/internal/core"
	"regcast/internal/graph"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// Example broadcasts one message on a random 8-regular graph with the
// paper's four-choice schedule.
func Example() {
	const n, d = 4096, 8
	g, err := graph.RandomRegular(n, d, xrand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	proto, err := core.New(n, d) // picks Algorithm 1 or 2 from d
	if err != nil {
		log.Fatal(err)
	}
	res, err := phonecall.Run(phonecall.Config{
		Topology: phonecall.NewStatic(g),
		Protocol: proto,
		Source:   0,
		RNG:      xrand.New(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("everyone informed:", res.AllInformed)
	fmt.Println("transmissions per node:", res.Transmissions/int64(n))
	// Output:
	// everyone informed: true
	// transmissions per node: 15
}

// ExampleFourChoice_PhaseBoundaries shows how the phased schedule is laid
// out for a given network size estimate.
func ExampleFourChoice_PhaseBoundaries() {
	proto, err := core.NewAlgorithm1(1024, core.WithAlpha(1), core.WithBeta(1))
	if err != nil {
		log.Fatal(err)
	}
	t1, t2, pullEnd, horizon := proto.PhaseBoundaries()
	fmt.Printf("phase 1: rounds 1..%d (newly informed push once)\n", t1)
	fmt.Printf("phase 2: rounds %d..%d (all informed push)\n", t1+1, t2)
	fmt.Printf("phase 3: round %d (informed answer their callers)\n", pullEnd)
	fmt.Printf("phase 4: rounds %d..%d (active nodes push)\n", pullEnd+1, horizon)
	// Output:
	// phase 1: rounds 1..10 (newly informed push once)
	// phase 2: rounds 11..14 (all informed push)
	// phase 3: round 15 (informed answer their callers)
	// phase 4: rounds 16..24 (active nodes push)
}

// ExampleNewSequentialised runs footnote 2's one-dial-per-round variant:
// the same schedule stretched over four times the rounds, with each node
// avoiding its last three partners.
func ExampleNewSequentialised() {
	const n = 1024
	g, err := graph.RandomRegular(n, 8, xrand.New(3))
	if err != nil {
		log.Fatal(err)
	}
	base, err := core.NewAlgorithm1(n)
	if err != nil {
		log.Fatal(err)
	}
	seq := core.NewSequentialised(base)
	res, err := phonecall.Run(phonecall.Config{
		Topology:    phonecall.NewStatic(g),
		Protocol:    seq,
		RNG:         xrand.New(4),
		AvoidRecent: seq.Memory(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dials per round:", seq.Choices())
	fmt.Println("horizon stretch:", seq.Horizon()/base.Horizon())
	fmt.Println("everyone informed:", res.AllInformed)
	// Output:
	// dials per round: 1
	// horizon stretch: 4
	// everyone informed: true
}
