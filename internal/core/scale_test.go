package core

import (
	"testing"

	"regcast/internal/graph"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// TestLargeScaleBroadcast exercises the engine and Algorithm 1 at a
// quarter-million nodes — the scale the sequential engine is designed for.
// Skipped under -short.
func TestLargeScaleBroadcast(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale run in -short mode")
	}
	const n, d = 1 << 18, 8
	g, err := graph.RandomRegular(n, d, xrand.New(80))
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewAlgorithm1(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phonecall.Run(phonecall.Config{
		Topology: phonecall.NewStatic(g),
		Protocol: proto,
		RNG:      xrand.New(81),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("informed %d/%d at n=2^18", res.Informed, n)
	}
	perNode := float64(res.Transmissions) / float64(n)
	// β=0.5 gives ⌈0.5·log₂ 18⌉ = 3 Phase 2 rounds here: 12 + 4 + 4 ≈ 20.
	if perNode > 25 {
		t.Errorf("%.1f tx/node at n=2^18 — loglog budget blown", perNode)
	}
	t.Logf("n=2^18: completed at round %d with %.1f tx/node", res.FirstAllInformed, perNode)
}

// BenchmarkAlgorithm1Broadcast measures a full Algorithm 1 run (graph
// excluded) at n=2^14 — the engine's per-broadcast cost.
func BenchmarkAlgorithm1Broadcast(b *testing.B) {
	const n, d = 1 << 14, 8
	g, err := graph.RandomRegular(n, d, xrand.New(82))
	if err != nil {
		b.Fatal(err)
	}
	proto, err := NewAlgorithm1(n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := phonecall.Run(phonecall.Config{
			Topology: phonecall.NewStatic(g),
			Protocol: proto,
			RNG:      xrand.New(uint64(i)),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllInformed {
			b.Fatal("incomplete")
		}
	}
	b.ReportMetric(float64(n), "nodes")
}
