// Package core implements the paper's contribution: the four-choice phased
// broadcast protocols of Berenbrink, Elsässer & Friedetzky (Algorithms 1
// and 2), which broadcast on random d-regular graphs in O(log n) rounds
// with only O(n·log log n) message transmissions, plus the sequentialised
// one-choice variant of footnote 2.
//
// Both algorithms are strictly address-oblivious: every decision is a pure
// function of the current round t and the round informedAt at which the
// deciding node first received the message. The phase boundaries are fixed
// in advance from an estimate of n (the paper only requires the estimate to
// be accurate to within a constant factor; experiment E13 measures that
// robustness).
//
// Phase structure (log = log₂ throughout; α sizes Phases 1/4, β sizes
// Phases 2/3 — the paper uses one "sufficiently large" α for all phases,
// see DefaultBeta for why the library splits them):
//
//	Phase 1   rounds 1 .. T1 = ⌈α·log n⌉:
//	          a node pushes iff it was informed in the previous round
//	          (the source counts as informed in round 0).
//	Phase 2   rounds T1+1 .. T2 = T1 + L, L = max(1, ⌈β·log log n⌉):
//	          every informed node pushes.
//	Phase 3   Algorithm 1: the single round T2+1; every informed node pulls
//	          (answers all nodes that dialled it).
//	          Algorithm 2: rounds T2+1 .. T1 + 2·L; every informed node
//	          pulls. The schedule ends here.
//	Phase 4   Algorithm 1 only: rounds T2+2 .. 2·T1 + L; nodes informed
//	          during Phase 3 or 4 are "active" and push every round.
//	          Activity is itself a function of (t, informedAt):
//	          active(t) ⇔ informedAt ≥ T2+1 and informedAt < t.
package core

import (
	"fmt"
	"math"

	"regcast/internal/phonecall"
)

// DefaultAlpha is the Phase 1 / Phase 4 length constant used when the
// caller does not override it. The paper only requires α to be a
// sufficiently large constant; α = 2 completes reliably for every n, d
// exercised in EXPERIMENTS.md. Phase 1 and Phase 4 rounds are almost free
// (only newly informed / active nodes transmit), so a generous α here
// costs time headroom, not messages.
const DefaultAlpha = 2.0

// DefaultBeta is the Phase 2 / Phase 3 length constant: those phases run
// for ⌈β·log log n⌉ rounds in which *every* informed node transmits over
// four channels, so their length directly multiplies the O(n·log log n)
// constant. The paper uses a single "sufficiently large" α for all phases
// — a proof device; with α = 2 everywhere the four-choice/push crossover
// would sit beyond any feasible n. β = 0.5 keeps the schedule shape
// (Θ(log log n) full-push rounds) while making the constant small enough
// that the paper's separation is visible at laptop scales (experiment E2).
const DefaultBeta = 0.5

// Choices is the number of distinct neighbours each node dials per round in
// the modified phone call model (the paper's headline modification).
const Choices = 4

// Variant distinguishes the two degree regimes of the paper.
type Variant int

const (
	// Algorithm1 is the small-degree schedule (δ ≤ d ≤ δ·log log n):
	// single pull round followed by a push phase driven by active nodes.
	Algorithm1 Variant = iota + 1
	// Algorithm2 is the large-degree schedule (δ·log log n ≤ d ≤ δ·log n):
	// an extended pull phase and no Phase 4.
	Algorithm2
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Algorithm1:
		return "algorithm1"
	case Algorithm2:
		return "algorithm2"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// FourChoice is the paper's broadcast schedule. It implements
// phonecall.Protocol and is safe for concurrent use (it is immutable).
type FourChoice struct {
	variant Variant
	alpha   float64
	beta    float64
	nEst    int
	choices int

	t1      int // end of Phase 1
	t2      int // end of Phase 2
	pullEnd int // last pull round (== t2+1 for Algorithm 1)
	horizon int
}

var _ phonecall.Protocol = (*FourChoice)(nil)

// Option customises protocol construction.
type Option func(*options)

type options struct {
	alpha   float64
	beta    float64
	choices int
}

// WithAlpha overrides the Phase 1 / Phase 4 length constant α.
func WithAlpha(alpha float64) Option {
	return func(o *options) { o.alpha = alpha }
}

// WithBeta overrides the Phase 2 / Phase 3 length constant β (the number
// of full-push rounds is ⌈β·log log n⌉, floored at 1).
func WithBeta(beta float64) Option {
	return func(o *options) { o.beta = beta }
}

// WithChoices overrides the number of distinct neighbours dialled per
// round. The paper proves the O(n·log log n) bound for 4, conjectures 3
// suffice, and leaves 2 open — experiment E10 sweeps this knob.
func WithChoices(k int) Option {
	return func(o *options) { o.choices = k }
}

// NewAlgorithm1 builds the small-degree schedule from an estimate of the
// network size (accurate to within a constant factor).
func NewAlgorithm1(nEstimate int, opts ...Option) (*FourChoice, error) {
	return build(Algorithm1, nEstimate, opts)
}

// NewAlgorithm2 builds the large-degree schedule from an estimate of the
// network size.
func NewAlgorithm2(nEstimate int, opts ...Option) (*FourChoice, error) {
	return build(Algorithm2, nEstimate, opts)
}

// New selects the variant the paper prescribes for degree d: Algorithm 1
// when d ≤ max(8, 2·log log n) (the δ·log log n regime with δ = 2 and a
// floor for tiny n) and Algorithm 2 otherwise.
func New(nEstimate, d int, opts ...Option) (*FourChoice, error) {
	if d < Choices+1 {
		return nil, fmt.Errorf("core: degree %d too small; the four-choice model needs d >= %d", d, Choices+1)
	}
	threshold := 2 * log2(log2(float64(nEstimate)))
	if threshold < 8 {
		threshold = 8
	}
	if float64(d) <= threshold {
		return NewAlgorithm1(nEstimate, opts...)
	}
	return NewAlgorithm2(nEstimate, opts...)
}

func build(v Variant, nEstimate int, opts []Option) (*FourChoice, error) {
	if nEstimate < 4 {
		return nil, fmt.Errorf("core: network size estimate %d too small", nEstimate)
	}
	o := options{alpha: DefaultAlpha, beta: DefaultBeta, choices: Choices}
	for _, opt := range opts {
		opt(&o)
	}
	if o.alpha <= 0 {
		return nil, fmt.Errorf("core: alpha %v must be positive", o.alpha)
	}
	if o.beta <= 0 {
		return nil, fmt.Errorf("core: beta %v must be positive", o.beta)
	}
	if o.choices < 1 {
		return nil, fmt.Errorf("core: choices %d must be >= 1", o.choices)
	}
	logN := log2(float64(nEstimate))
	logLogN := log2(logN)
	if logLogN < 1 {
		logLogN = 1
	}
	t1 := int(math.Ceil(o.alpha * logN))
	l := int(math.Ceil(o.beta * logLogN))
	if l < 1 {
		l = 1
	}
	p := &FourChoice{variant: v, alpha: o.alpha, beta: o.beta, nEst: nEstimate, choices: o.choices, t1: t1, t2: t1 + l}
	switch v {
	case Algorithm1:
		p.pullEnd = p.t2 + 1
		p.horizon = 2*t1 + l
	case Algorithm2:
		p.pullEnd = t1 + 2*l
		p.horizon = t1 + 2*l
	default:
		return nil, fmt.Errorf("core: unknown variant %d", v)
	}
	if p.horizon <= p.t2 {
		// Guard against degenerate tiny-n schedules.
		p.horizon = p.t2 + 1
		p.pullEnd = p.t2 + 1
	}
	return p, nil
}

// Name implements phonecall.Protocol.
func (p *FourChoice) Name() string {
	return fmt.Sprintf("%d-choice/%s(α=%g,ñ=%d)", p.choices, p.variant, p.alpha, p.nEst)
}

// Choices implements phonecall.Protocol.
func (p *FourChoice) Choices() int { return p.choices }

// Horizon implements phonecall.Protocol.
func (p *FourChoice) Horizon() int { return p.horizon }

// Variant returns which of the paper's two schedules this is.
func (p *FourChoice) Variant() Variant { return p.variant }

// PhaseBoundaries returns (T1, T2, lastPullRound, horizon) for inspection
// by experiments and traces.
func (p *FourChoice) PhaseBoundaries() (t1, t2, pullEnd, horizon int) {
	return p.t1, p.t2, p.pullEnd, p.horizon
}

// Phase returns the phase number (1-4) active in round t, or 0 if t is
// outside the schedule.
func (p *FourChoice) Phase(t int) int {
	switch {
	case t < 1 || t > p.horizon:
		return 0
	case t <= p.t1:
		return 1
	case t <= p.t2:
		return 2
	case t <= p.pullEnd:
		return 3
	default:
		return 4
	}
}

// SendPush implements phonecall.Protocol.
func (p *FourChoice) SendPush(t, informedAt int) bool {
	switch p.Phase(t) {
	case 1:
		// Only nodes that created or first received the message in the
		// previous round push.
		return informedAt == t-1
	case 2:
		return true
	case 4:
		// Active nodes: informed during Phase 3 or later (Algorithm 1 only).
		return informedAt >= p.t2+1 && informedAt < t
	default:
		return false
	}
}

// SendPull implements phonecall.Protocol.
func (p *FourChoice) SendPull(t, informedAt int) bool {
	return p.Phase(t) == 3 && informedAt < t
}

// Sequentialised wraps a FourChoice schedule in the one-dial-per-round
// model of footnote 2: each node dials a single neighbour per round,
// avoiding the partners of the last three rounds (run the engine with
// Config.AvoidRecent = 3). Four consecutive rounds of this model
// correspond to one round of the four-choice model, so the horizon
// stretches by a factor of four.
type Sequentialised struct {
	base *FourChoice
}

var _ phonecall.Protocol = (*Sequentialised)(nil)

// NewSequentialised wraps base in the sequentialised model.
func NewSequentialised(base *FourChoice) *Sequentialised {
	return &Sequentialised{base: base}
}

// Memory returns the number of recent partners a node must avoid (the
// engine's Config.AvoidRecent value for this protocol).
func (s *Sequentialised) Memory() int { return s.base.choices - 1 }

// Name implements phonecall.Protocol.
func (s *Sequentialised) Name() string { return "sequentialised/" + s.base.Name() }

// Choices implements phonecall.Protocol.
func (s *Sequentialised) Choices() int { return 1 }

// Horizon implements phonecall.Protocol.
func (s *Sequentialised) Horizon() int { return s.base.choices * s.base.horizon }

// SendPush implements phonecall.Protocol by mapping each block of k
// sequential rounds onto one base round. A node informed within the
// current block stays silent until the next block begins, preserving the
// base model's "receive in round T, transmit from round T+1" semantics.
func (s *Sequentialised) SendPush(t, informedAt int) bool {
	bt, bia := s.blockOf(t), s.blockOf(informedAt)
	if bia >= bt {
		return false
	}
	return s.base.SendPush(bt, bia)
}

// SendPull implements phonecall.Protocol.
func (s *Sequentialised) SendPull(t, informedAt int) bool {
	bt, bia := s.blockOf(t), s.blockOf(informedAt)
	if bia >= bt {
		return false
	}
	return s.base.SendPull(bt, bia)
}

// blockOf maps a sequential round to its base-model round. Round 0 (the
// message's creation) maps to base round 0.
func (s *Sequentialised) blockOf(t int) int {
	if t <= 0 {
		return 0
	}
	k := s.base.choices
	return (t + k - 1) / k
}

func log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}
