package core

import (
	"testing"
	"testing/quick"

	"regcast/internal/graph"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

func TestBuildValidation(t *testing.T) {
	if _, err := NewAlgorithm1(2); err == nil {
		t.Error("tiny n accepted")
	}
	if _, err := NewAlgorithm1(1024, WithAlpha(0)); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewAlgorithm1(1024, WithAlpha(-1)); err == nil {
		t.Error("negative alpha accepted")
	}
	p, err := NewAlgorithm1(1024)
	if err != nil {
		t.Fatal(err)
	}
	if p.Variant() != Algorithm1 {
		t.Errorf("variant %v", p.Variant())
	}
}

func TestVariantSelection(t *testing.T) {
	if _, err := New(1<<16, 4); err == nil {
		t.Error("degree below five accepted for four-choice model")
	}
	small, err := New(1<<16, 6)
	if err != nil {
		t.Fatal(err)
	}
	if small.Variant() != Algorithm1 {
		t.Errorf("d=6 selected %v, want Algorithm1", small.Variant())
	}
	large, err := New(1<<16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if large.Variant() != Algorithm2 {
		t.Errorf("d=16 selected %v, want Algorithm2", large.Variant())
	}
}

func TestPhaseBoundariesAlgorithm1(t *testing.T) {
	p, err := NewAlgorithm1(1<<10, WithAlpha(1), WithBeta(1)) // log n = 10, log log n ≈ 3.32
	if err != nil {
		t.Fatal(err)
	}
	t1, t2, pullEnd, horizon := p.PhaseBoundaries()
	if t1 != 10 {
		t.Errorf("T1 = %d, want 10", t1)
	}
	if t2 != 14 { // 10 + ceil(3.32)
		t.Errorf("T2 = %d, want 14", t2)
	}
	if pullEnd != 15 {
		t.Errorf("pullEnd = %d, want 15", pullEnd)
	}
	if horizon != 24 { // 2*10 + 4
		t.Errorf("horizon = %d, want 24", horizon)
	}
}

func TestPhaseBoundariesAlgorithm2(t *testing.T) {
	p, err := NewAlgorithm2(1<<10, WithAlpha(1), WithBeta(1))
	if err != nil {
		t.Fatal(err)
	}
	t1, t2, pullEnd, horizon := p.PhaseBoundaries()
	if t1 != 10 || t2 != 14 {
		t.Errorf("T1=%d T2=%d", t1, t2)
	}
	if pullEnd != 18 { // T1 + 2*4
		t.Errorf("pullEnd = %d, want 18", pullEnd)
	}
	if horizon != pullEnd {
		t.Errorf("Algorithm 2 horizon %d != pullEnd %d", horizon, pullEnd)
	}
}

func TestPhaseClassification(t *testing.T) {
	p, err := NewAlgorithm1(1<<10, WithAlpha(1), WithBeta(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, phase int }{
		{0, 0}, {1, 1}, {10, 1}, {11, 2}, {14, 2}, {15, 3}, {16, 4}, {24, 4}, {25, 0},
	}
	for _, c := range cases {
		if got := p.Phase(c.t); got != c.phase {
			t.Errorf("Phase(%d) = %d, want %d", c.t, got, c.phase)
		}
	}
}

func TestSendPushPhase1OnlyNewlyInformed(t *testing.T) {
	p, err := NewAlgorithm1(1<<10, WithAlpha(1), WithBeta(1))
	if err != nil {
		t.Fatal(err)
	}
	if !p.SendPush(1, 0) {
		t.Error("source should push in round 1")
	}
	if p.SendPush(2, 0) {
		t.Error("source pushed twice in Phase 1")
	}
	if !p.SendPush(5, 4) {
		t.Error("node informed in round 4 should push in round 5")
	}
	if p.SendPush(6, 4) {
		t.Error("Phase 1 node pushed more than once")
	}
}

func TestSendPushPhase2AllInformed(t *testing.T) {
	p, err := NewAlgorithm1(1<<10, WithAlpha(1), WithBeta(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, ia := range []int{0, 3, 10, 12} {
		if !p.SendPush(12, ia) { // round 12 is Phase 2... informedAt < t assumed
			if ia < 12 {
				t.Errorf("Phase 2: informedAt=%d did not push", ia)
			}
		}
	}
}

func TestSendPullOnlyPhase3(t *testing.T) {
	p, err := NewAlgorithm1(1<<10, WithAlpha(1), WithBeta(1))
	if err != nil {
		t.Fatal(err)
	}
	if !p.SendPull(15, 0) {
		t.Error("informed node must pull in Phase 3")
	}
	for _, tt := range []int{1, 10, 14, 16, 24} {
		if p.SendPull(tt, 0) {
			t.Errorf("pull outside Phase 3 at round %d", tt)
		}
	}
}

func TestSendPushPhase4OnlyActive(t *testing.T) {
	p, err := NewAlgorithm1(1<<10, WithAlpha(1), WithBeta(1))
	if err != nil {
		t.Fatal(err)
	}
	// Nodes informed before Phase 3 (ia <= 14) are not active.
	if p.SendPush(20, 0) || p.SendPush(20, 14) {
		t.Error("pre-Phase-3 node pushed in Phase 4")
	}
	// Nodes informed in Phase 3 (ia = 15) or Phase 4 are active.
	if !p.SendPush(20, 15) || !p.SendPush(20, 18) {
		t.Error("active node did not push in Phase 4")
	}
}

func TestAlgorithm2NoPhase4(t *testing.T) {
	p, err := NewAlgorithm2(1<<10, WithAlpha(1), WithBeta(1))
	if err != nil {
		t.Fatal(err)
	}
	_, t2, pullEnd, _ := p.PhaseBoundaries()
	for tt := t2 + 1; tt <= pullEnd; tt++ {
		if p.SendPush(tt, 0) {
			t.Errorf("Algorithm 2 pushed in pull phase at round %d", tt)
		}
		if !p.SendPull(tt, 0) {
			t.Errorf("Algorithm 2 did not pull at round %d", tt)
		}
	}
}

func TestStrictObliviousnessProperty(t *testing.T) {
	// Decisions must be pure functions of (t, informedAt): calling twice
	// with identical inputs yields identical outputs (no hidden state).
	p, err := NewAlgorithm1(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(tRaw, iaRaw uint16) bool {
		tt := int(tRaw)%p.Horizon() + 1
		ia := int(iaRaw) % tt
		return p.SendPush(tt, ia) == p.SendPush(tt, ia) &&
			p.SendPull(tt, ia) == p.SendPull(tt, ia)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBroadcastCompletesSmallDegree(t *testing.T) {
	const n, d = 1 << 10, 6
	g, err := graph.RandomRegular(n, d, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewAlgorithm1(n)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	const reps = 5
	for seed := uint64(0); seed < reps; seed++ {
		res, err := phonecall.Run(phonecall.Config{
			Topology: phonecall.NewStatic(g),
			Protocol: p,
			RNG:      xrand.New(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllInformed {
			failures++
		}
	}
	if failures > 0 {
		t.Errorf("Algorithm 1 failed %d/%d runs on G(%d,%d)", failures, reps, n, d)
	}
}

func TestBroadcastCompletesLargeDegree(t *testing.T) {
	const n = 1 << 10
	d := 10 // ≈ log₂ n
	g, err := graph.RandomRegular(n, d, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewAlgorithm2(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phonecall.Run(phonecall.Config{
		Topology: phonecall.NewStatic(g),
		Protocol: p,
		RNG:      xrand.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Errorf("Algorithm 2 informed %d/%d", res.Informed, res.AliveNodes)
	}
}

func TestRobustToNEstimateError(t *testing.T) {
	// The paper requires only a constant-factor estimate of n. Build the
	// schedule for 4n and n/4 and check the broadcast still completes.
	const n, d = 1 << 10, 6
	g, err := graph.RandomRegular(n, d, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, est := range []int{n / 4, n * 4} {
		p, err := NewAlgorithm1(est)
		if err != nil {
			t.Fatal(err)
		}
		res, err := phonecall.Run(phonecall.Config{
			Topology: phonecall.NewStatic(g),
			Protocol: p,
			RNG:      xrand.New(5),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllInformed {
			t.Errorf("estimate %d: informed %d/%d", est, res.Informed, res.AliveNodes)
		}
	}
}

func TestTransmissionsWellBelowPushBaseline(t *testing.T) {
	// The headline claim in miniature: four-choice transmissions per node
	// should be well below log₂ n for moderate n (push pays ~log n).
	const n, d = 1 << 12, 8
	g, err := graph.RandomRegular(n, d, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewAlgorithm1(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phonecall.Run(phonecall.Config{
		Topology: phonecall.NewStatic(g),
		Protocol: p,
		RNG:      xrand.New(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatal("broadcast incomplete")
	}
	perNode := float64(res.Transmissions) / float64(n)
	// α·4·log log n ≈ 2·4·3.6 ≈ 29 is the Phase-2 budget; log₂ n = 12 per
	// node would be the push baseline's growth *rate* — the separation
	// shows up as n grows (benched in E2); here we just sanity-bound.
	if perNode > 60 {
		t.Errorf("four-choice used %.1f transmissions/node, implausibly many", perNode)
	}
}

func TestSequentialisedMapping(t *testing.T) {
	base, err := NewAlgorithm1(1<<10, WithAlpha(1), WithBeta(1))
	if err != nil {
		t.Fatal(err)
	}
	seq := NewSequentialised(base)
	if seq.Choices() != 1 {
		t.Errorf("Choices = %d", seq.Choices())
	}
	if seq.Horizon() != 4*base.Horizon() {
		t.Errorf("Horizon = %d, want %d", seq.Horizon(), 4*base.Horizon())
	}
	if seq.Memory() != 3 {
		t.Errorf("Memory = %d", seq.Memory())
	}
	// Sequential rounds 1-4 map to base round 1: only the source pushes.
	for tt := 1; tt <= 4; tt++ {
		if !seq.SendPush(tt, 0) {
			t.Errorf("source silent in sequential round %d", tt)
		}
	}
	// A node informed in sequential round 2 (block 1) must stay silent for
	// the rest of block 1 and push in block 2 (Phase 1: informed previous
	// base round).
	if seq.SendPush(4, 2) {
		t.Error("node pushed within its own receipt block")
	}
	if !seq.SendPush(5, 2) {
		t.Error("node silent in the block after receipt")
	}
}

func TestSequentialisedBroadcastCompletes(t *testing.T) {
	const n, d = 512, 6
	g, err := graph.RandomRegular(n, d, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewAlgorithm1(n)
	if err != nil {
		t.Fatal(err)
	}
	seq := NewSequentialised(base)
	res, err := phonecall.Run(phonecall.Config{
		Topology:    phonecall.NewStatic(g),
		Protocol:    seq,
		RNG:         xrand.New(9),
		AvoidRecent: seq.Memory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Errorf("sequentialised run informed %d/%d", res.Informed, res.AliveNodes)
	}
}

func TestVariantString(t *testing.T) {
	if Algorithm1.String() != "algorithm1" || Algorithm2.String() != "algorithm2" {
		t.Error("variant names wrong")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant has empty name")
	}
}
