package core

import "testing"

func TestOptionValidation(t *testing.T) {
	if _, err := NewAlgorithm1(1024, WithBeta(0)); err == nil {
		t.Error("beta=0 accepted")
	}
	if _, err := NewAlgorithm1(1024, WithBeta(-0.5)); err == nil {
		t.Error("negative beta accepted")
	}
	if _, err := NewAlgorithm1(1024, WithChoices(0)); err == nil {
		t.Error("choices=0 accepted")
	}
	p, err := NewAlgorithm1(1024, WithChoices(2))
	if err != nil {
		t.Fatal(err)
	}
	if p.Choices() != 2 {
		t.Errorf("Choices = %d", p.Choices())
	}
}

func TestPhase2FlooredAtOneRound(t *testing.T) {
	// Even with a tiny beta the schedule keeps at least one full-push round.
	p, err := NewAlgorithm1(1024, WithBeta(0.01))
	if err != nil {
		t.Fatal(err)
	}
	t1, t2, _, _ := p.PhaseBoundaries()
	if t2-t1 < 1 {
		t.Errorf("Phase 2 has %d rounds", t2-t1)
	}
}

func TestBetaControlsPhase2Length(t *testing.T) {
	short, err := NewAlgorithm1(1<<10, WithAlpha(1), WithBeta(0.5))
	if err != nil {
		t.Fatal(err)
	}
	long, err := NewAlgorithm1(1<<10, WithAlpha(1), WithBeta(3))
	if err != nil {
		t.Fatal(err)
	}
	st1, st2, _, _ := short.PhaseBoundaries()
	_, lt2, _, _ := long.PhaseBoundaries()
	if st2-st1 >= lt2-st1 {
		t.Errorf("beta did not lengthen Phase 2: %d vs %d rounds", st2-st1, lt2-st1)
	}
}

func TestSequentialisedWithNonDefaultChoices(t *testing.T) {
	base, err := NewAlgorithm1(1<<10, WithChoices(3))
	if err != nil {
		t.Fatal(err)
	}
	seq := NewSequentialised(base)
	if seq.Memory() != 2 {
		t.Errorf("Memory = %d, want 2 for k=3", seq.Memory())
	}
	if seq.Horizon() != 3*base.Horizon() {
		t.Errorf("Horizon = %d, want %d", seq.Horizon(), 3*base.Horizon())
	}
}

func TestNameMentionsChoices(t *testing.T) {
	p, err := NewAlgorithm1(1024, WithChoices(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Name(); got[:1] != "3" {
		t.Errorf("Name = %q, want it to lead with the choice count", got)
	}
}
