package runtime

import (
	"testing"

	"regcast/internal/baseline"
	"regcast/internal/core"
	"regcast/internal/graph"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

func testGraph(t *testing.T, n, d int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegular(n, d, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunValidation(t *testing.T) {
	g := testGraph(t, 32, 4, 1)
	push, err := baseline.NewPush(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Protocol: push}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := Run(Config{Topology: phonecall.NewStatic(g)}); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := Run(Config{Topology: phonecall.NewStatic(g), Protocol: push, Source: 99}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := Run(Config{Topology: phonecall.NewStatic(g), Protocol: push, MessageLossProb: 2}); err == nil {
		t.Error("bad loss prob accepted")
	}
}

func TestConcurrentPushCompletes(t *testing.T) {
	g := testGraph(t, 256, 6, 2)
	push, err := baseline.NewPush(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology: phonecall.NewStatic(g), Protocol: push, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("informed %d/256", res.Informed)
	}
	if res.Transmissions == 0 || res.FirstAllInformed < 1 {
		t.Errorf("result implausible: %+v", res)
	}
}

func TestConcurrentFourChoiceCompletes(t *testing.T) {
	const n = 512
	g := testGraph(t, n, 6, 4)
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology: phonecall.NewStatic(g), Protocol: proto, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("four-choice informed %d/%d", res.Informed, n)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := testGraph(t, 128, 6, 6)
	proto, err := core.NewAlgorithm1(128)
	if err != nil {
		t.Fatal(err)
	}
	run := func() Result {
		res, err := Run(Config{Topology: phonecall.NewStatic(g), Protocol: proto, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Transmissions != b.Transmissions {
		t.Errorf("transmissions differ: %d vs %d (scheduling leaked into results)", a.Transmissions, b.Transmissions)
	}
	if a.FirstAllInformed != b.FirstAllInformed {
		t.Errorf("completion round differs: %d vs %d", a.FirstAllInformed, b.FirstAllInformed)
	}
	for v := range a.InformedAt {
		if a.InformedAt[v] != b.InformedAt[v] {
			t.Fatalf("InformedAt[%d] differs: %d vs %d", v, a.InformedAt[v], b.InformedAt[v])
		}
	}
}

func TestStopEarly(t *testing.T) {
	g := testGraph(t, 128, 6, 8)
	push, err := baseline.NewPush(128, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology: phonecall.NewStatic(g), Protocol: push, Seed: 9, StopEarly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatal("incomplete")
	}
	if res.Rounds != res.FirstAllInformed {
		t.Errorf("stopped at %d but completed at %d", res.Rounds, res.FirstAllInformed)
	}
	if res.Rounds >= push.Horizon() {
		t.Errorf("StopEarly ran the full horizon (%d rounds)", res.Rounds)
	}
}

func TestAgreesWithSequentialEngineTransmissions(t *testing.T) {
	// The two engines implement the same model. Algorithm 1's transmission
	// total is dominated by the deterministic Phase 2/3 budget, so across a
	// handful of seeds the means must agree within a few percent.
	const n, d, reps = 512, 6, 8
	g := testGraph(t, n, d, 10)
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		t.Fatal(err)
	}
	var seqTx, conTx float64
	for seed := uint64(0); seed < reps; seed++ {
		sres, err := phonecall.Run(phonecall.Config{
			Topology: phonecall.NewStatic(g), Protocol: proto, RNG: xrand.New(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		cres, err := Run(Config{Topology: phonecall.NewStatic(g), Protocol: proto, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !sres.AllInformed || !cres.AllInformed {
			t.Fatal("incomplete run")
		}
		seqTx += float64(sres.Transmissions)
		conTx += float64(cres.Transmissions)
	}
	if ratio := conTx / seqTx; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("transmissions diverge: concurrent/sequential = %.3f", ratio)
	}
}

func TestAgreesWithSequentialEngineRounds(t *testing.T) {
	// Completion-round comparison uses the 1-choice push baseline, whose
	// completion time is concentrated around log₂ n + ln n (unlike
	// Algorithm 1's bimodal end-of-Phase-1 / start-of-Phase-2 split).
	const n, d, reps = 512, 6, 10
	g := testGraph(t, n, d, 11)
	push, err := baseline.NewPush(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	var seqRounds, conRounds float64
	for seed := uint64(0); seed < reps; seed++ {
		sres, err := phonecall.Run(phonecall.Config{
			Topology: phonecall.NewStatic(g), Protocol: push, RNG: xrand.New(seed), StopEarly: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		cres, err := Run(Config{Topology: phonecall.NewStatic(g), Protocol: push, Seed: seed, StopEarly: true})
		if err != nil {
			t.Fatal(err)
		}
		if !sres.AllInformed || !cres.AllInformed {
			t.Fatal("incomplete run")
		}
		seqRounds += float64(sres.FirstAllInformed)
		conRounds += float64(cres.FirstAllInformed)
	}
	if ratio := conRounds / seqRounds; ratio < 0.8 || ratio > 1.25 {
		t.Errorf("completion rounds diverge: concurrent/sequential = %.2f", ratio)
	}
}

func TestMessageLossStillCounted(t *testing.T) {
	g := testGraph(t, 64, 6, 11)
	push, err := baseline.NewPush(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology: phonecall.NewStatic(g), Protocol: push, Seed: 12, MessageLossProb: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 1 {
		t.Errorf("informed %d with 100%% loss", res.Informed)
	}
	if res.Transmissions != int64(push.Horizon()) {
		t.Errorf("transmissions %d, want %d (source pushes every round)", res.Transmissions, push.Horizon())
	}
}

func TestPullProtocolConcurrent(t *testing.T) {
	// Algorithm 2 exercises the caller-driven pull path.
	const n = 256
	d := 8
	g := testGraph(t, n, d, 13)
	proto, err := core.NewAlgorithm2(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Topology: phonecall.NewStatic(g), Protocol: proto, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("Algorithm 2 concurrent informed %d/%d", res.Informed, n)
	}
}
