// Package runtime executes phone-call protocols with one goroutine per
// node, barrier-synchronised into rounds — the natural Go embodiment of
// synchronous gossip. It runs the exact same strictly oblivious
// phonecall.Protocol values as the sequential engine and produces
// distributionally identical results; because every node draws from its
// own deterministic RNG stream, a run's outcome is reproducible from the
// master seed regardless of goroutine scheduling.
//
// The concurrent runtime exists for two reasons: it validates the
// sequential simulator (see the equivalence tests), and it demonstrates
// that the protocol logic has no hidden global state — each node acts on
// (round, own receipt round) alone, so the same code drops onto real
// message transports (package transport).
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"

	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// Config describes a concurrent run.
type Config struct {
	// Topology must be static for the concurrent runtime (churn requires
	// the sequential engine).
	Topology phonecall.Topology
	// Protocol is any strictly oblivious schedule.
	Protocol phonecall.Protocol
	// Source creates the message in round 0.
	Source int
	// Seed derives every node's private RNG stream.
	Seed uint64
	// ChannelFailureProb and MessageLossProb mirror the sequential engine.
	ChannelFailureProb float64
	MessageLossProb    float64
	// StopEarly ends the run once all nodes are informed.
	StopEarly bool
	// Observer, when non-nil, receives the streaming per-round callbacks of
	// phonecall.Observer, invoked on the coordinator's goroutine (the one
	// that called Run) right after each round's commit barrier — a window
	// in which no node goroutine can write message state, so observers see
	// a frozen, consistent view and need no synchronisation of their own.
	Observer phonecall.Observer
	// Halt, when non-nil, is polled once at the end of every round; a true
	// return stops the run early (context cancellation in the facade).
	Halt func() bool
}

// Result summarises a concurrent run.
type Result struct {
	Rounds           int
	Informed         int
	AllInformed      bool
	FirstAllInformed int
	Transmissions    int64
	// ChannelsDialed is rounds × Σ_v min(k, deg(v)): every node dials every
	// round in the concurrent runtime, mirroring the model's accounting.
	ChannelsDialed int64
	InformedAt     []int32
}

// Run executes the configured broadcast with one goroutine per node.
func Run(cfg Config) (Result, error) {
	if cfg.Topology == nil || cfg.Protocol == nil {
		return Result{}, fmt.Errorf("runtime: Config requires Topology and Protocol")
	}
	if _, dynamic := cfg.Topology.(phonecall.Stepper); dynamic {
		return Result{}, fmt.Errorf("runtime: dynamic topologies are not supported; use the sequential engine")
	}
	n := cfg.Topology.NumNodes()
	if cfg.Source < 0 || cfg.Source >= n {
		return Result{}, fmt.Errorf("runtime: source %d out of range [0,%d)", cfg.Source, n)
	}
	if cfg.ChannelFailureProb < 0 || cfg.ChannelFailureProb > 1 ||
		cfg.MessageLossProb < 0 || cfg.MessageLossProb > 1 {
		return Result{}, fmt.Errorf("runtime: failure probabilities out of [0,1]")
	}
	k := cfg.Protocol.Choices()
	if k < 1 {
		return Result{}, fmt.Errorf("runtime: protocol dials %d < 1 neighbours", k)
	}
	horizon := cfg.Protocol.Horizon()
	if horizon < 1 {
		return Result{}, fmt.Errorf("runtime: protocol horizon %d < 1", horizon)
	}

	r := &runner{
		cfg:     cfg,
		topo:    cfg.Topology,
		proto:   cfg.Protocol,
		n:       n,
		k:       k,
		horizon: horizon,
		barrier: newBarrier(n + 1), // nodes + coordinator
	}
	r.informedAt = make([]int32, n)
	r.nextInformed = make([]int32, n)
	for v := 0; v < n; v++ {
		r.informedAt[v] = phonecall.Uninformed
		r.nextInformed[v] = phonecall.Uninformed
	}
	r.informedAt[cfg.Source] = 0
	r.informedCount.Store(1)
	r.dials = make([]int32, n*k)
	r.dialBudget = phonecall.DialBudget(cfg.Topology, k)
	if cfg.Observer != nil {
		cfg.Observer.OnInformed(cfg.Source, 0)
	}

	master := xrand.New(cfg.Seed)
	rngs := make([]*xrand.Rand, n)
	for v := range rngs {
		rngs[v] = master.Split()
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			r.nodeLoop(v, rngs[v])
		}(v)
	}

	res := r.coordinate()
	wg.Wait()

	res.ChannelsDialed = r.dialBudget * int64(res.Rounds)
	res.InformedAt = append([]int32(nil), r.informedAt...)
	res.Informed = 0
	for v := 0; v < n; v++ {
		if r.informedAt[v] != phonecall.Uninformed {
			res.Informed++
		}
	}
	res.AllInformed = res.Informed == n
	return res, nil
}

// runner holds the shared state of one concurrent run.
type runner struct {
	cfg     Config
	topo    phonecall.Topology
	proto   phonecall.Protocol
	n, k    int
	horizon int

	barrier *barrier

	// informedAt is only written during the commit phase (each node writes
	// its own slot), so the exchange phase may read it freely.
	informedAt []int32
	// nextInformed[v] is CAS-claimed by the first successful delivery to v
	// in the current round.
	nextInformed []int32

	dials         []int32 // n×k, each node writes only its own slots
	dialBudget    int64   // sum of min(k, deg) over all nodes, per round
	transmissions atomic.Int64
	informedCount atomic.Int64
	stop          atomic.Bool
}

// nodeLoop is the per-node goroutine body: three barrier-separated phases
// per round (dial, exchange, commit).
func (r *runner) nodeLoop(v int, rng *xrand.Rand) {
	dialIdx := make([]int, 0, r.k)
	var scratch []int
	for t := 1; t <= r.horizon; t++ {
		// Phase A: dial.
		base := v * r.k
		for j := 0; j < r.k; j++ {
			r.dials[base+j] = phonecall.Uninformed
		}
		deg := r.topo.Degree(v)
		if deg > 0 {
			kk := r.k
			if kk > deg {
				kk = deg
			}
			if cap(scratch) < deg {
				scratch = make([]int, deg)
			}
			dialIdx = rng.DistinctK(dialIdx, kk, deg, scratch)
			for j, idx := range dialIdx {
				w := r.topo.Neighbor(v, idx)
				if r.cfg.ChannelFailureProb > 0 && rng.Bool(r.cfg.ChannelFailureProb) {
					continue
				}
				r.dials[base+j] = int32(w)
			}
		}
		r.barrier.wait()

		// Phase B: exchange. Push: v transmits over its dialled channels.
		// Pull: v evaluates its *callees*' pull decisions (caller-driven
		// evaluation is semantically identical and needs no incoming lists).
		ia := r.informedAt[v]
		if ia != phonecall.Uninformed && int(ia) < t && r.proto.SendPush(t, int(ia)) {
			for j := 0; j < r.k; j++ {
				w := r.dials[base+j]
				if w < 0 {
					continue
				}
				r.transmissions.Add(1)
				if r.cfg.MessageLossProb > 0 && rng.Bool(r.cfg.MessageLossProb) {
					continue
				}
				r.deliver(w, t)
			}
		}
		for j := 0; j < r.k; j++ {
			w := r.dials[base+j]
			if w < 0 {
				continue
			}
			wia := r.informedAt[w]
			if wia == phonecall.Uninformed || int(wia) >= t {
				continue
			}
			if !r.proto.SendPull(t, int(wia)) {
				continue
			}
			r.transmissions.Add(1)
			if r.cfg.MessageLossProb > 0 && rng.Bool(r.cfg.MessageLossProb) {
				continue
			}
			r.deliver(int32(v), t)
		}
		r.barrier.wait()

		// Phase C: commit own receipt, then synchronise with the
		// coordinator's bookkeeping barrier.
		if r.nextInformed[v] != phonecall.Uninformed {
			r.informedAt[v] = r.nextInformed[v]
			r.nextInformed[v] = phonecall.Uninformed
			r.informedCount.Add(1)
		}
		r.barrier.wait()
		if r.stop.Load() {
			return
		}
	}
}

// deliver CAS-claims the receipt slot of w for round t.
func (r *runner) deliver(w int32, t int) {
	if r.informedAt[w] != phonecall.Uninformed {
		return
	}
	ptr := &r.nextInformed[w]
	atomic.CompareAndSwapInt32(ptr, phonecall.Uninformed, int32(t))
}

// coordinate participates in every barrier and tracks completion.
func (r *runner) coordinate() Result {
	res := Result{FirstAllInformed: -1}
	obs := r.cfg.Observer
	var lastTx int64
	for t := 1; t <= r.horizon; t++ {
		r.barrier.wait() // end of dial phase
		r.barrier.wait() // end of exchange phase
		// Commit writes happen between barrier 2 and barrier 3, so the
		// informed counter may only be read once every participant has
		// arrived at barrier 3 — i.e. inside the barrier's action hook,
		// which the last arriver runs while everyone else is parked.
		stopNow := false
		r.barrier.waitWithAction(func() {
			res.Rounds = t
			if int(r.informedCount.Load()) == r.n && res.FirstAllInformed < 0 {
				res.FirstAllInformed = t
			}
			if r.cfg.StopEarly && res.FirstAllInformed > 0 {
				r.stop.Store(true)
				stopNow = true
			}
			if r.cfg.Halt != nil && r.cfg.Halt() {
				r.stop.Store(true)
				stopNow = true
			}
			if t == r.horizon {
				r.stop.Store(true)
			}
		})
		// Observer callbacks run here, on the coordinator's own goroutine,
		// not in the action hook (which executes on an arbitrary last
		// arriver). The window is race-free: released node goroutines are
		// at most in round t+1's dial phase, and the next informedAt write
		// (their commit phase) cannot happen until this goroutine has
		// joined two more barriers. The commit barrier above orders round
		// t's writes before these reads.
		if obs != nil {
			newly := 0
			for v := 0; v < r.n; v++ {
				if r.informedAt[v] == int32(t) {
					obs.OnInformed(v, t)
					newly++
				}
			}
			tx := r.transmissions.Load()
			obs.OnRound(phonecall.RoundMetrics{
				Round:         t,
				NewlyInformed: newly,
				Informed:      int(r.informedCount.Load()),
				Transmissions: tx - lastTx,
				ChannelsDial:  r.dialBudget,
			})
			lastTx = tx
		}
		if stopNow {
			break
		}
	}
	res.Transmissions = r.transmissions.Load()
	return res
}

// barrier is a reusable cyclic barrier for n participants. The last
// participant to arrive may run an action while all others are parked.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    uint64
	action func()
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n participants have arrived.
func (b *barrier) wait() { b.waitWithAction(nil) }

// waitWithAction is wait, and additionally runs action exactly once (in
// the last arriver) before releasing the generation.
func (b *barrier) waitWithAction(action func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if action != nil {
		b.action = action
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		if b.action != nil {
			b.action()
			b.action = nil
		}
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}
