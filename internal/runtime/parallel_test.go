package runtime

import (
	"testing"

	"regcast/internal/core"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// TestAgreesWithShardedEngine cross-validates the three implementations
// of the phone-call model that now coexist in the repo: the
// goroutine-per-node runtime and the sharded engine must produce the same
// mean transmission totals as each other (both are distributionally
// equivalent embodiments of the same protocol semantics).
func TestAgreesWithShardedEngine(t *testing.T) {
	const n, d, reps = 512, 6, 8
	g := testGraph(t, n, d, 12)
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		t.Fatal(err)
	}
	var shardTx, conTx float64
	for seed := uint64(0); seed < reps; seed++ {
		sres, err := phonecall.Run(phonecall.Config{
			Topology: phonecall.NewStatic(g), Protocol: proto, RNG: xrand.New(seed),
			Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		cres, err := Run(Config{Topology: phonecall.NewStatic(g), Protocol: proto, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !sres.AllInformed || !cres.AllInformed {
			t.Fatal("incomplete run")
		}
		shardTx += float64(sres.Transmissions)
		conTx += float64(cres.Transmissions)
	}
	if ratio := conTx / shardTx; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("transmissions diverge: goroutine-per-node/sharded = %.3f", ratio)
	}
}
