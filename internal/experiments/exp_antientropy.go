package experiments

import (
	"fmt"

	"regcast/internal/core"
	"regcast/internal/p2p/replica"
	"regcast/internal/phonecall"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Rumour broadcast + anti-entropy backstop under message loss",
		PaperClaim: "§1 cites Demers et al.: replicated databases pair cheap rumour " +
			"mongering with an anti-entropy backstop. Extension experiment: the " +
			"four-choice broadcast does the O(n·log log n) bulk delivery even under " +
			"loss, and a short pairwise-sync pass repairs the stragglers.",
		Run: runE18,
	})
}

func runE18(o Options) ([]*table.Table, error) {
	n := 512
	updates := 20
	if o.Quick {
		n = 128
		updates = 8
	}
	const d = 8
	master := xrand.New(o.Seed)
	g, err := regular(n, d, master.Split())
	if err != nil {
		return nil, err
	}
	topo := phonecall.NewStatic(g)
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		return nil, err
	}

	tb := table.New(fmt.Sprintf("E18: broadcast + anti-entropy, n=%d d=%d, %d updates", n, d, updates),
		"loss prob", "updates fully delivered", "diverged before repair", "AE rounds", "AE exchanges", "converged after AE")
	for _, loss := range []float64{0, 0.3, 0.6, 0.8} {
		rng := master.Split()
		writes := make([]replica.Write, updates)
		for i := range writes {
			writes[i] = replica.Write{
				Key:    fmt.Sprintf("k%d", i%5),
				Value:  fmt.Sprintf("v%d", i),
				Origin: rng.IntN(n),
				Round:  i * 2,
			}
		}
		rep, err := replica.Run(replica.Config{
			Topology: topo, Protocol: proto, RNG: master.Split(), MessageLossProb: loss,
		}, writes)
		if err != nil {
			return nil, err
		}
		full := 0
		for _, ur := range rep.UpdateResults {
			if ur.AllInformed {
				full++
			}
		}
		diverged := !replica.StoresConverged(topo, rep.Stores)
		ae, err := replica.AntiEntropy(topo, rep.Stores, master.Split(), 100)
		if err != nil {
			return nil, err
		}
		tb.AddRow(f2(loss), fmt.Sprintf("%d/%d", full, updates), diverged,
			ae.Rounds, ae.Exchanges, ae.Converged)
	}
	tb.AddNote("broadcast carries almost everything even at high loss (its schedule has multiplicative slack); anti-entropy needs only a handful of pairwise rounds to finish the job")
	return []*table.Table{tb}, nil
}
