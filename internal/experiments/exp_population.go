package experiments

import (
	"context"
	"fmt"
	"math"

	"regcast"
	"regcast/internal/table"
)

// E21/E22 exercise the population-protocol engine family (the
// SchedulerInteractions side of the facade) on the two exemplar
// workloads from PAPERS.md: self-stabilizing leader election under
// uniform random pairs (arXiv:2505.01210) and Herman's self-stabilizing
// token ring in its synchronous coin-flip variant (arXiv:1504.01130).
// Unlike E1–E20 these validate related-work claims, not theorems of
// BerenbrinkEF08; they are the convergence-time counterpart of the
// broadcast-time experiments.

func init() {
	register(Experiment{
		ID:    "E21",
		Title: "Self-stabilizing leader election: interactions to one leader",
		PaperClaim: "Ranked-timeout leader election (cf. arXiv:2505.01210) converges from " +
			"canonical adversarial starts (all leaders / no leaders) to exactly one leader " +
			"in Θ(n·log n) interactions; interactions/(n·ln n) should stay bounded as n grows.",
		Scheduler: regcast.SchedulerInteractions,
		Run:       runE21,
	})
	register(Experiment{
		ID:    "E24",
		Title: "Approximate majority: consensus time and correctness vs initial margin",
		PaperClaim: "Three-state approximate majority (undecided-state dynamics, Angluin–Aspnes–" +
			"Eisenstat DISC 2007) reaches consensus in O(n·log n) interactions w.h.p., and picks the " +
			"initial majority w.h.p. once the margin exceeds ω(√n·log n); interactions/(n·ln n) should " +
			"stay bounded across the sweep and the picked-majority fraction should rise with the margin.",
		Scheduler: regcast.SchedulerInteractions,
		Run:       runE24,
	})
	register(Experiment{
		ID:    "E22",
		Title: "Herman's token ring: steps to a single circulating token",
		PaperClaim: "Herman's synchronous coin-flip ring (arXiv:1504.01130) converges from any " +
			"odd-token start to one token in O(N²) expected steps; the conjectured worst case " +
			"(3 equally spaced tokens) takes 4N²/27 ≈ 0.148·N² — mean steps/N² should hover at or below that constant.",
		Scheduler: regcast.SchedulerInteractions,
		Run:       runE22,
	})
}

// popSizes is the agent-count sweep for E21.
func popSizes(o Options) []int {
	if o.Quick {
		return []int{1 << 7, 1 << 8, 1 << 9}
	}
	return []int{1 << 7, 1 << 8, 1 << 9, 1 << 10, 1 << 11, 1 << 12}
}

// popReps is the replication count for the population experiments —
// higher than repsFor because each run is cheap and convergence times
// are noisier than broadcast times.
func popReps(o Options) int {
	if o.Quick {
		return 8
	}
	return 32
}

func runE21(o Options) ([]*table.Table, error) {
	reps := popReps(o)
	tb := table.New("E21: leader election, interactions to convergence",
		"n", "start", "super-steps (mean)", "interactions (mean)", "inter/(n·ln n)", "converged")
	starts := []struct {
		name string
		init func(i, n int, coin uint64) regcast.PopulationState
	}{
		{"all-leaders", regcast.InitAllLeaders},
		{"leaderless", regcast.InitLeaderless},
	}
	master := regcast.NewRand(o.Seed)
	for _, n := range popSizes(o) {
		for _, start := range starts {
			le, err := regcast.NewLeaderElection(n)
			if err != nil {
				return nil, err
			}
			res, err := regcast.PopulationBatch{
				Scenario:           regcast.PopulationScenario{N: n, Pair: le, Init: start.init},
				Replications:       reps,
				ReplicationWorkers: o.ReplicationWorkers,
				Runner:             o.runner(),
				Seed:               master.Uint64(),
			}.Run(context.Background())
			if err != nil {
				return nil, err
			}
			nlogn := float64(n) * math.Log(float64(n))
			tb.AddRow(n, start.name, f1(res.Rounds.Mean), f1(res.Transmissions.Mean),
				f2(res.Transmissions.Mean/nlogn), pct(res.CompletedFrac()))
		}
	}
	tb.AddNote("interactions counted at super-step granularity (one super-step = n interactions); " +
		"bounded inter/(n·ln n) across the sweep ⇔ Θ(n·log n) convergence")
	tb.AddNote("worst-case arbitrary starts (poisoned max-seen rank) additionally pay the protocol's " +
		"rank-space factor — the space–time trade-off of arXiv:2505.01210, not swept here")
	return []*table.Table{tb}, nil
}

func runE24(o Options) ([]*table.Table, error) {
	reps := popReps(o)
	tb := table.New("E24: approximate majority, consensus time and correctness",
		"n", "X-fraction", "super-steps (mean)", "interactions (mean)", "inter/(n·ln n)",
		"consensus", "picked majority")
	master := regcast.NewRand(o.Seed)
	for _, n := range popSizes(o) {
		for _, frac := range []float64{0.51, 0.55, 0.75} {
			res, kept, err := regcast.PopulationBatch{
				Scenario: regcast.PopulationScenario{
					N: n, Pair: regcast.NewApproxMajority(), Init: regcast.InitMajority(frac),
				},
				Replications:       reps,
				ReplicationWorkers: o.ReplicationWorkers,
				Runner:             o.runner(),
				Seed:               master.Uint64(),
				KeepResults:        true,
			}.RunKeeping(context.Background())
			if err != nil {
				return nil, err
			}
			picked := 0
			for _, r := range kept {
				if r.Converged && len(r.Final) > 0 && r.Final[0] == regcast.MajorityX {
					picked++
				}
			}
			nlogn := float64(n) * math.Log(float64(n))
			tb.AddRow(n, f2(frac), f1(res.Rounds.Mean), f1(res.Transmissions.Mean),
				f2(res.Transmissions.Mean/nlogn), pct(res.CompletedFrac()),
				pct(float64(picked)/float64(reps)))
		}
	}
	tb.AddNote("three states, deterministic transitions: the protocol table-compiles (16-entry table) " +
		"and its measure folds through the occupancy vector — the canonical full-fast-path workload")
	tb.AddNote("close races (margin O(√n)) may legitimately pick the minority; the w.h.p. guarantee " +
		"needs margin ω(√n·log n)")
	return []*table.Table{tb}, nil
}

func runE22(o Options) ([]*table.Table, error) {
	reps := popReps(o)
	n := 101
	if o.Quick {
		n = 51
	}
	tb := table.New(fmt.Sprintf("E22: Herman's ring N=%d, steps to one token", n),
		"tokens", "steps (mean)", "steps (p90)", "steps/N²", "4N²/27 bound", "converged")
	master := regcast.NewRand(o.Seed)
	bound := 4 * float64(n) * float64(n) / 27
	for _, k := range []int{3, 5, 9, 17} {
		hm, err := regcast.NewHermanRing(n)
		if err != nil {
			return nil, err
		}
		init, err := regcast.HermanInitTokens(n, k)
		if err != nil {
			return nil, err
		}
		res, err := regcast.PopulationBatch{
			Scenario:           regcast.PopulationScenario{N: n, Ring: hm, Init: init},
			Replications:       reps,
			ReplicationWorkers: o.ReplicationWorkers,
			Runner:             o.runner(),
			Seed:               master.Uint64(),
		}.Run(context.Background())
		if err != nil {
			return nil, err
		}
		tb.AddRow(k, f1(res.Rounds.Mean), f1(res.Rounds.P90),
			f3(res.Rounds.Mean/(float64(n)*float64(n))), f1(bound), pct(res.CompletedFrac()))
	}
	tb.AddNote("odd ring keeps the token count odd and non-increasing, so every start converges to 1; " +
		"the k=3 equally-spaced row is the conjectured worst case of arXiv:1504.01130")
	return []*table.Table{tb}, nil
}
