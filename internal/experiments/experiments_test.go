package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	// E1–E15 reproduce the paper's statements; E16+ are registered
	// extensions (§5 counterexample, quasirandom dialing, ...).
	if len(all) < 15 {
		t.Fatalf("registry has %d experiments, want >= 15", len(all))
	}
	// IDs must be ascending without unexplained gaps so docs and benches
	// stay in sync. E23 is deliberately absent from the registry: the
	// implicit-topology experiment is measured by hand with
	// cmd/broadcast-sim (wall-clock and bytes, which the deterministic
	// harness omits) — see the DESIGN.md experiment index.
	next := 1
	for i, e := range all {
		if next == 23 {
			next++ // E23: hand-measured, documented in DESIGN.md/EXPERIMENTS.md
		}
		wantID := "E" + itoa(next)
		if e.ID != wantID {
			t.Errorf("experiment %d has id %s, want %s", i, e.ID, wantID)
		}
		next++
		if e.Title == "" || e.PaperClaim == "" || e.Run == nil {
			t.Errorf("%s is missing metadata", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Error("E1 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 found")
	}
}

// TestAllExperimentsRunQuick executes every experiment in the Quick profile
// and sanity-checks the emitted tables. This is the harness's integration
// test; the scientific assertions live in EXPERIMENTS.md.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run(Options{Seed: 1, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s table %q has no rows", e.ID, tb.Title)
				}
				out := tb.String()
				if !strings.Contains(out, tb.Columns[0]) {
					t.Errorf("%s table %q renders without headers", e.ID, tb.Title)
				}
				md := tb.Markdown()
				if !strings.Contains(md, "| "+tb.Columns[0]) {
					t.Errorf("%s table %q markdown broken", e.ID, tb.Title)
				}
			}
		})
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism sweep in -short mode")
	}
	// A fixed seed must reproduce identical tables (E2 exercises graph
	// generation, protocol runs and fitting).
	e, ok := ByID("E2")
	if !ok {
		t.Fatal("E2 missing")
	}
	a, err := e.Run(Options{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(Options{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("table count differs")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("table %d differs between identical runs:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}
