package experiments

import (
	"context"
	"fmt"
	"math"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/core"
	"regcast/internal/stats"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Algorithm 1 broadcast time vs n (small degree)",
		PaperClaim: "Theorem 2: on G(n,d) with small d, Algorithm 1 informs all nodes " +
			"within O(log n) rounds a.a.s.; completion round should grow linearly in log₂ n.",
		Run: runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "Algorithm 1 transmissions vs n against push/push&pull",
		PaperClaim: "Theorem 2: O(n·log log n) transmissions for the four-choice algorithm " +
			"vs Θ(n·log n) for one-choice push — per-node cost grows like log log n vs log n.",
		Run: runE2,
	})
	register(Experiment{
		ID:    "E3",
		Title: "Algorithm 2 on large degrees (d ≈ log n)",
		PaperClaim: "Theorem 3: for δ·log log n ≤ d ≤ δ·log n, Algorithm 2 broadcasts in " +
			"O(log n) rounds with O(n·log log n) transmissions.",
		Run: runE3,
	})
}

func runE1(o Options) ([]*table.Table, error) {
	const d = 8
	reps := repsFor(o)
	tb := table.New("E1: Algorithm 1 completion time, d=8",
		"n", "log2(n)", "rounds (mean)", "rounds/log2(n)", "horizon", "completed")
	master := xrand.New(o.Seed)
	var xs, ys []float64
	for _, n := range sizes(o) {
		g, err := regular(n, d, master.Split())
		if err != nil {
			return nil, err
		}
		proto, err := core.NewAlgorithm1(n)
		if err != nil {
			return nil, err
		}
		st, err := measure(o, g, proto, master.Uint64(), reps)
		if err != nil {
			return nil, err
		}
		logN := math.Log2(float64(n))
		tb.AddRow(n, f1(logN), f1(st.MeanRounds), f2(st.MeanRounds/logN),
			proto.Horizon(), pct(st.CompletedFrac))
		if st.CompletedFrac > 0 {
			xs = append(xs, logN)
			ys = append(ys, st.MeanRounds)
		}
	}
	if fit, err := stats.FitLine(xs, ys); err == nil {
		tb.AddNote("linear fit rounds ≈ %.2f·log₂(n) + %.1f (R²=%.3f) — O(log n) ⇔ bounded slope",
			fit.Slope, fit.Intercept, fit.R2)
	}
	tb.AddNote("α=%g; completion round is bimodal (end of Phase 1 vs first Phase 2 round), both O(log n)", core.DefaultAlpha)
	return []*table.Table{tb}, nil
}

func runE2(o Options) ([]*table.Table, error) {
	const d = 8
	reps := repsFor(o)
	tb := table.New("E2: transmissions per node, d=8",
		"n", "4-choice tx/n", "push fixed tx/n", "push oracle-stop tx/n", "push&pull tx/n",
		"4choice/loglog", "pushfixed/log")
	master := xrand.New(o.Seed)
	var lln, fc, ln, pu []float64
	for _, n := range sizes(o) {
		g, err := regular(n, d, master.Split())
		if err != nil {
			return nil, err
		}
		four, err := core.NewAlgorithm1(n)
		if err != nil {
			return nil, err
		}
		push, err := baseline.NewPush(n, 1)
		if err != nil {
			return nil, err
		}
		pp, err := baseline.NewPushPull(n, 1)
		if err != nil {
			return nil, err
		}
		stFour, err := measure(o, g, four, master.Uint64(), reps)
		if err != nil {
			return nil, err
		}
		stPushFixed, err := measure(o, g, push, master.Uint64(), reps)
		if err != nil {
			return nil, err
		}
		stPushStop, err := measure(o, g, push, master.Uint64(), reps, regcast.WithStopEarly())
		if err != nil {
			return nil, err
		}
		stPP, err := measure(o, g, pp, master.Uint64(), reps)
		if err != nil {
			return nil, err
		}
		logN := math.Log2(float64(n))
		logLogN := math.Log2(logN)
		tb.AddRow(n, f1(stFour.MeanTxPerNode), f1(stPushFixed.MeanTxPerNode),
			f1(stPushStop.MeanTxPerNode), f1(stPP.MeanTxPerNode),
			f2(stFour.MeanTxPerNode/logLogN), f2(stPushFixed.MeanTxPerNode/logN))
		lln = append(lln, logLogN)
		fc = append(fc, stFour.MeanTxPerNode)
		ln = append(ln, logN)
		pu = append(pu, stPushFixed.MeanTxPerNode)
	}
	if fit, err := stats.FitLine(lln, fc); err == nil {
		if fit.Slope < 1 {
			tb.AddNote("4-choice tx/n is flat at ≈ %.1f across the sweep (⌈β·log log n⌉ is constant here): consistent with O(n·log log n), clearly below any c·log n growth", stats.Mean(fc))
		} else {
			tb.AddNote("4-choice tx/n ≈ %.1f·log log n + %.1f (R²=%.3f): the O(n log log n) shape", fit.Slope, fit.Intercept, fit.R2)
		}
	}
	if fit, err := stats.FitLine(ln, pu); err == nil {
		tb.AddNote("push (fixed schedule) tx/n ≈ %.2f·log n + %.1f (R²=%.3f): the Θ(n log n) baseline", fit.Slope, fit.Intercept, fit.R2)
	}
	tb.AddNote("like-for-like columns are '4-choice' and 'push fixed': both fixed-horizon Monte Carlo schedules, full cost counted")
	tb.AddNote("'push oracle-stop' halts the instant everyone is informed — global knowledge the phone call model does not provide (and still Θ(n·log n): ≈ ln n per node from the saturation tail)")

	budget, err := phaseBudgetTable(o, d)
	if err != nil {
		return nil, err
	}
	return []*table.Table{tb, budget}, nil
}

// phaseBudgetTable decomposes the four-choice transmission total by phase:
// the O(n·log log n) term is exactly the Phase 2 row, everything else is
// O(n).
func phaseBudgetTable(o Options, d int) (*table.Table, error) {
	n := 1 << 14
	if o.Quick {
		n = 1 << 11
	}
	master := xrand.New(o.Seed + 1)
	g, err := regular(n, d, master.Split())
	if err != nil {
		return nil, err
	}
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		return nil, err
	}
	sc, err := regcast.NewScenario(regcast.Static(g), proto,
		regcast.WithRNG(master.Split()), regcast.WithRecordRounds())
	if err != nil {
		return nil, err
	}
	res, err := o.runner().Run(context.Background(), sc)
	if err != nil {
		return nil, err
	}
	var perPhase [5]int64
	var rounds [5]int
	for _, rm := range res.PerRound {
		ph := proto.Phase(rm.Round)
		perPhase[ph] += rm.Transmissions
		rounds[ph]++
	}
	tb := table.New(fmt.Sprintf("E2b: where the transmissions go (Algorithm 1, n=%d d=%d)", n, d),
		"phase", "role", "rounds", "tx", "tx/n", "asymptotic share")
	roles := []string{"", "newly informed push once", "all informed push (×4)", "single pull round", "active nodes push"}
	shares := []string{"", "O(n)", "O(n·log log n) — the headline term", "O(n)", "o(n)"}
	for ph := 1; ph <= 4; ph++ {
		tb.AddRow(ph, roles[ph], rounds[ph], perPhase[ph],
			f1(float64(perPhase[ph])/float64(n)), shares[ph])
	}
	tb.AddNote("total %.1f tx/node; Phase 1's cost is bounded by 4 per *informed* node no matter how long the phase lasts, and Phase 4 only moves if Phase 3 left stragglers", float64(res.Transmissions)/float64(n))
	return tb, nil
}

func runE3(o Options) ([]*table.Table, error) {
	reps := repsFor(o)
	tb := table.New("E3: Algorithm 2, d = ⌈log₂ n⌉",
		"n", "d", "rounds (mean)", "rounds/log2(n)", "tx/n", "tx/n/loglog", "completed")
	master := xrand.New(o.Seed)
	for _, n := range sizes(o) {
		d := int(math.Ceil(math.Log2(float64(n))))
		if (n*d)%2 != 0 {
			d++
		}
		g, err := regular(n, d, master.Split())
		if err != nil {
			return nil, err
		}
		proto, err := core.NewAlgorithm2(n)
		if err != nil {
			return nil, err
		}
		st, err := measure(o, g, proto, master.Uint64(), reps)
		if err != nil {
			return nil, err
		}
		logN := math.Log2(float64(n))
		logLogN := math.Log2(logN)
		tb.AddRow(n, d, f1(st.MeanRounds), f2(st.MeanRounds/logN),
			f1(st.MeanTxPerNode), f2(st.MeanTxPerNode/logLogN), pct(st.CompletedFrac))
	}
	tb.AddNote("Algorithm 2 replaces Phase 4 with an extended pull phase; both ratios should stay bounded as n grows")
	return []*table.Table{tb}, nil
}
