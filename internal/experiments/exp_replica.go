package experiments

import (
	"fmt"
	"math"

	"regcast/internal/core"
	"regcast/internal/p2p/replica"
	"regcast/internal/phonecall"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

func runE15(o Options) ([]*table.Table, error) {
	ns := []int{256, 512, 1024}
	writesCount := 40
	if o.Quick {
		ns = []int{128, 256}
		writesCount = 15
	}
	const d = 8
	master := xrand.New(o.Seed)
	tb := table.New(fmt.Sprintf("E15: replicated DB convergence (%d staggered writes)", writesCount),
		"replicas n", "converged", "rounds to converge", "tx per update / n", "log2(log2 n)")
	for _, n := range ns {
		g, err := regular(n, d, master.Split())
		if err != nil {
			return nil, err
		}
		proto, err := core.NewAlgorithm1(n)
		if err != nil {
			return nil, err
		}
		rng := master.Split()
		writes := make([]replica.Write, writesCount)
		for i := range writes {
			writes[i] = replica.Write{
				Key:    fmt.Sprintf("key-%d", i%8),
				Value:  fmt.Sprintf("v%d", i),
				Origin: rng.IntN(n),
				Round:  i * 2,
			}
		}
		rep, err := replica.Run(replica.Config{
			Topology: phonecall.NewStatic(g),
			Protocol: proto,
			RNG:      master.Split(),
		}, writes)
		if err != nil {
			return nil, err
		}
		converged := rep.Converged && replica.StoresConverged(phonecall.NewStatic(g), rep.Stores)
		logLogN := math.Log2(math.Log2(float64(n)))
		tb.AddRow(n, converged, rep.ConvergedAtRound,
			f1(rep.TransmissionsPerUpdate/float64(n)), f2(logLogN))
	}
	tb.AddNote("per-update cost/n should track log log n (Theorem 2 applied per message); convergence = every replica's LWW store identical")
	return []*table.Table{tb}, nil
}
