package experiments

import (
	"testing"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/xrand"
)

// TestMeasureDeterministicAcrossReplicationWorkers pins the harness's side
// of the batch-layer contract: measure() routes every ensemble through
// regcast.Batch, whose aggregates are bit-identical for every
// ReplicationWorkers value — so the full runStats struct (floats included)
// must compare equal across pool widths.
func TestMeasureDeterministicAcrossReplicationWorkers(t *testing.T) {
	g, err := regular(256, 8, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	push, err := baseline.NewPush(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	var base runStats
	for i, rw := range []int{0, 1, 4, regcast.WorkersAuto} {
		st, err := measure(Options{Workers: 0, ReplicationWorkers: rw}, g, push, 3, 6, regcast.WithStopEarly())
		if err != nil {
			t.Fatal(err)
		}
		if st.Reps != 6 {
			t.Fatalf("rep-workers %d: ran %d reps, want 6", rw, st.Reps)
		}
		if i == 0 {
			base = st
			continue
		}
		if st != base {
			t.Errorf("rep-workers %d changed the statistics: %+v vs %+v", rw, st, base)
		}
	}
}

// TestMeasureEngineSelection checks that both per-run engines run to
// completion under measure and stay deterministic across repeated calls:
// Options.Workers selects the engine (0 sequential, >=1 sharded), and a
// fixed seed must reproduce the exact statistics.
func TestMeasureEngineSelection(t *testing.T) {
	g, err := regular(256, 8, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	push, err := baseline.NewPush(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, regcast.WorkersAuto, 4} {
		a, err := measure(Options{Workers: w}, g, push, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := measure(Options{Workers: w}, g, push, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("Workers=%d: identical measures differ: %+v vs %+v", w, a, b)
		}
		if a.CompletedFrac < 0 || a.CompletedFrac > 1 || a.InformedFrac <= 0 {
			t.Errorf("Workers=%d: implausible stats %+v", w, a)
		}
	}
}

// TestParallelProfileDeterministicAndComplete reruns a representative
// experiment in the parallel profile: results must be identical across
// engine worker counts (the sharded engine's trace is a function of the
// shard count, not the worker count).
func TestParallelProfileDeterministicAndComplete(t *testing.T) {
	e, ok := ByID("E1")
	if !ok {
		t.Fatal("E1 not registered")
	}
	run := func(workers int) string {
		tables, err := e.Run(Options{Seed: 11, Quick: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, tb := range tables {
			out += tb.String()
		}
		return out
	}
	one := run(1)
	if eight := run(8); one != eight {
		t.Errorf("E1 parallel profile differs between 1 and 8 workers:\n%s\nvs\n%s", one, eight)
	}
}

// TestExperimentDeterministicAcrossReplicationWorkers reruns E1 with the
// replication pool at different widths; every table must be byte-identical
// (the acceptance contract of the batch migration).
func TestExperimentDeterministicAcrossReplicationWorkers(t *testing.T) {
	e, ok := ByID("E1")
	if !ok {
		t.Fatal("E1 not registered")
	}
	run := func(rw int) string {
		tables, err := e.Run(Options{Seed: 11, Quick: true, ReplicationWorkers: rw})
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, tb := range tables {
			out += tb.String()
		}
		return out
	}
	serial := run(0)
	for _, rw := range []int{1, 4, regcast.WorkersAuto} {
		if got := run(rw); got != serial {
			t.Errorf("E1 tables differ between ReplicationWorkers=0 and %d:\n%s\nvs\n%s", rw, serial, got)
		}
	}
}
