package experiments

import (
	"testing"

	"regcast/internal/phonecall"
)

// TestEngineWorkers checks the Options → phonecall.Config.Workers mapping.
func TestEngineWorkers(t *testing.T) {
	cases := []struct {
		o    Options
		want int
	}{
		{Options{}, 0},
		{Options{Workers: 8}, 8}, // Workers alone selects the sharded engine
		{Options{Workers: phonecall.WorkersAuto}, phonecall.WorkersAuto},
		{Options{Parallel: true}, phonecall.WorkersAuto},
		{Options{Parallel: true, Workers: 4}, 4},
	}
	for _, tc := range cases {
		if got := engineWorkers(tc.o); got != tc.want {
			t.Errorf("engineWorkers(%+v) = %d, want %d", tc.o, got, tc.want)
		}
	}
}

// TestParallelProfileDeterministicAndComplete reruns a representative
// experiment in the parallel profile: results must be identical across
// repeated runs (seeded) and across worker counts.
func TestParallelProfileDeterministicAndComplete(t *testing.T) {
	e, ok := ByID("E1")
	if !ok {
		t.Fatal("E1 not registered")
	}
	run := func(workers int) string {
		tables, err := e.Run(Options{Seed: 11, Quick: true, Parallel: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, tb := range tables {
			out += tb.String()
		}
		return out
	}
	one := run(1)
	if eight := run(8); one != eight {
		t.Errorf("E1 parallel profile differs between 1 and 8 workers:\n%s\nvs\n%s", one, eight)
	}
}
