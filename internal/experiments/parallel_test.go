package experiments

import (
	"testing"

	"regcast/internal/baseline"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// TestWorkersFieldPassthrough checks that Options.Workers reaches the
// engine untranslated (phonecall.Config.Workers semantics): the old
// Parallel/Workers mapping was deleted in favour of the facade's single
// engine selection, so the value observed on each run's Config must be
// exactly the one given in Options.
func TestWorkersFieldPassthrough(t *testing.T) {
	g, err := regular(128, 8, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	push, err := baseline.NewPush(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, phonecall.WorkersAuto, 4} {
		seen := []int(nil)
		_, err := measure(Options{Workers: w}, g, push, 3, 2, func(c *phonecall.Config) {
			seen = append(seen, c.Workers)
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 2 {
			t.Fatalf("measure ran %d configs, want 2", len(seen))
		}
		for _, got := range seen {
			if got != w {
				t.Errorf("Options{Workers: %d} reached the engine as Config.Workers = %d", w, got)
			}
		}
	}
}

// TestParallelProfileDeterministicAndComplete reruns a representative
// experiment in the parallel profile: results must be identical across
// repeated runs (seeded) and across worker counts.
func TestParallelProfileDeterministicAndComplete(t *testing.T) {
	e, ok := ByID("E1")
	if !ok {
		t.Fatal("E1 not registered")
	}
	run := func(workers int) string {
		tables, err := e.Run(Options{Seed: 11, Quick: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, tb := range tables {
			out += tb.String()
		}
		return out
	}
	one := run(1)
	if eight := run(8); one != eight {
		t.Errorf("E1 parallel profile differs between 1 and 8 workers:\n%s\nvs\n%s", one, eight)
	}
}
