package experiments

import (
	"context"
	"fmt"

	"regcast"
	"regcast/internal/graph"
	"regcast/internal/spectral"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Configuration-model sanity: simplicity, connectivity, expansion",
		PaperClaim: "§1.2: the pairing model yields d-regular multigraphs that are simple " +
			"with probability e^{-Θ(d²)}, connected w.h.p. for d ≥ 3, with second " +
			"eigenvalue ≤ 2√(d−1)·(1+o(1)) (Friedman) and Expander-Mixing behaviour.",
		Run: runE14,
	})
	register(Experiment{
		ID:    "E15",
		Title: "Replicated database: convergence cost per update",
		PaperClaim: "§1: maintaining replicated databases needs huge numbers of broadcasts; " +
			"with the four-choice schedule every update costs O(n·log log n) transmissions " +
			"and all replicas converge within the schedule horizon.",
		Run: runE15,
	})
}

func runE14(o Options) ([]*table.Table, error) {
	n := 1 << 12
	reps := 10
	if o.Quick {
		n = 1 << 10
		reps = 4
	}
	master := xrand.New(o.Seed)

	pairing := table.New(fmt.Sprintf("E14a: pairing-model structure, n=%d (%d graphs per d)", n, reps),
		"d", "mean self-loops", "mean surplus multi-edges", "simple frac", "connected frac")
	for _, d := range []int{4, 8, 16} {
		d := d
		// One pairing-model graph per replication; the per-replication
		// counts land in slots and are reduced in replication order.
		type slot struct {
			loops, multi      float64
			simple, connected bool
		}
		slots := make([]slot, reps)
		err := regcast.Replicate(context.Background(), master.Uint64(), reps, o.ReplicationWorkers,
			func(rep int, rng *regcast.Rand) error {
				g, err := graph.ConfigurationModel(n, d, rng.Split())
				if err != nil {
					return err
				}
				slots[rep] = slot{
					loops:     float64(g.SelfLoopCount()),
					multi:     float64(g.MultiEdgeCount()),
					simple:    g.IsSimple(),
					connected: g.IsConnected(),
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
		var loops, multi, simple, connected float64
		for _, s := range slots {
			loops += s.loops
			multi += s.multi
			if s.simple {
				simple++
			}
			if s.connected {
				connected++
			}
		}
		fr := float64(reps)
		pairing.AddRow(d, f2(loops/fr), f2(multi/fr), f2(simple/fr), f2(connected/fr))
	}
	pairing.AddNote("E[self-loops] ≈ (d−1)/2 and E[multi-edges] ≈ (d−1)²/4 for the pairing model; simplicity probability decays like e^{-Θ(d²)}")

	expansion := table.New(fmt.Sprintf("E14b: expansion of simple G(n,d), n=%d", n),
		"d", "|λ2| (power iteration)", "2√(d-1)", "|λ2|/2√(d-1)", "mixing max-dev/λ2", "mixing violations")
	for _, d := range []int{4, 8, 16} {
		g, err := graph.RandomRegular(n, d, master.Split())
		if err != nil {
			return nil, err
		}
		l2, err := spectral.SecondEigenvalue(g, 200, master.Split())
		if err != nil {
			return nil, err
		}
		bound := spectral.AlonBoppanaBound(d)
		rep, err := spectral.CheckMixing(g, d, l2*1.05, 100, master.Split())
		if err != nil {
			return nil, err
		}
		expansion.AddRow(d, f3(l2), f3(bound), f3(l2/bound), f3(rep.MaxDeviation/l2), rep.Violations)
	}
	expansion.AddNote("Friedman's theorem: the ratio column sits at 1+o(1); mixing deviations never exceed λ2 (violations = 0)")
	return []*table.Table{pairing, expansion}, nil
}
