package experiments

import (
	"fmt"
	"math"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Push completion constant C_d (Fountoulakis–Panagiotou, ref [20])",
		PaperClaim: "§1.1 cites [20]: one-choice push on random d-regular graphs completes " +
			"in (1+o(1))·C_d·ln n rounds with C_d = 1/ln(2(1−1/d)) − 1/(d·ln(1−1/d)). " +
			"Extension experiment: an exact-constant check, not just a shape check.",
		Run: runE19,
	})
}

// pushConstant returns C_d from Fountoulakis & Panagiotou.
func pushConstant(d int) float64 {
	dd := float64(d)
	return 1/math.Log(2*(1-1/dd)) - 1/(dd*math.Log(1-1/dd))
}

func runE19(o Options) ([]*table.Table, error) {
	n := 1 << 15
	reps := 10
	if o.Quick {
		n = 1 << 12
		reps = 4
	}
	master := xrand.New(o.Seed)
	tb := table.New(fmt.Sprintf("E19: push completion rounds vs C_d·ln n, n=%d (%d runs per d)", n, reps),
		"d", "C_d", "C_d·ln n (predicted)", "rounds (measured mean)", "measured/predicted")
	for _, d := range []int{4, 8, 16, 32} {
		g, err := regular(n, d, master.Split())
		if err != nil {
			return nil, err
		}
		push, err := baseline.NewPush(n, 1)
		if err != nil {
			return nil, err
		}
		st, err := measure(o, g, push, master.Uint64(), reps, regcast.WithStopEarly())
		if err != nil {
			return nil, err
		}
		cd := pushConstant(d)
		predicted := cd * math.Log(float64(n))
		tb.AddRow(d, f3(cd), f1(predicted), f1(st.MeanRounds), f3(st.MeanRounds/predicted))
	}
	tb.AddNote("the (1+o(1)) factor means the ratio column should approach 1 from above as n grows; deviations at small d reflect the o(1) term")
	tb.AddNote("as d→∞, C_d → 1/ln 2 + 1 ≈ 2.443, the complete-graph constant of Frieze & Grimmett / Pittel")
	return []*table.Table{tb}, nil
}
