package experiments

import (
	"fmt"

	"regcast/internal/core"
	"regcast/internal/graph"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "§5 counterexample: Cartesian product with K5",
		PaperClaim: "§5: on graphs with expansion and connectivity similar to G(n,d) the " +
			"multiple-choice model may bring no notable improvement; the paper names the " +
			"Cartesian product of a random regular graph with K5. Intuition: the four " +
			"dials of a node in G□K5 frequently land inside its own K5 clique, so the " +
			"extra choices buy far less fresh reach than on G(n,d).",
		Run: runE16,
	})
}

func runE16(o Options) ([]*table.Table, error) {
	// Compare G(n/5, d)□K5 (degree d+4, 5·(n/5) nodes) against a plain
	// random regular graph with the same node count and degree.
	baseN := 1 << 12
	if o.Quick {
		baseN = 1 << 9
	}
	const d = 8
	reps := repsFor(o)
	n := 5 * baseN
	master := xrand.New(o.Seed)

	factor, err := regular(baseN, d, master.Split())
	if err != nil {
		return nil, err
	}
	k5, err := graph.Complete(5)
	if err != nil {
		return nil, err
	}
	product, err := graph.CartesianProduct(factor, k5)
	if err != nil {
		return nil, err
	}
	plain, err := regular(n, d+4, master.Split())
	if err != nil {
		return nil, err
	}

	// The §5 claim is about the *gain from multiple choices* vanishing on
	// the product graph, so measure k=1 vs k=4 on both topologies and
	// compare the gains, plus the Phase 1 reach (per-round growth) that
	// drives them.
	tb := table.New(fmt.Sprintf("E16: choice-gain on G(%d,%d)□K5 vs G(%d,%d)", baseN, d, n, d+4),
		"topology", "k", "rounds (mean)", "tx/n", "completed", "informed frac")
	type cell struct{ rounds, tx float64 }
	results := map[string]map[int]cell{}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"G□K5", product}, {"G(n,d+4)", plain}} {
		results[tc.name] = map[int]cell{}
		for _, k := range []int{1, 4} {
			proto, err := core.NewAlgorithm1(n, core.WithChoices(k))
			if err != nil {
				return nil, err
			}
			st, err := measure(o, tc.g, proto, master.Uint64(), reps)
			if err != nil {
				return nil, err
			}
			results[tc.name][k] = cell{st.MeanRounds, st.MeanTxPerNode}
			tb.AddRow(tc.name, k, f1(st.MeanRounds), f1(st.MeanTxPerNode),
				pct(st.CompletedFrac), f3(st.InformedFrac))
		}
	}
	gain := func(name string) float64 {
		r := results[name]
		if r[4].rounds == 0 {
			return 0
		}
		return r[1].rounds / r[4].rounds
	}
	tb.AddNote("choice-gain (k=1 rounds / k=4 rounds): %.2f on G□K5 vs %.2f on G(n,d+4)", gain("G□K5"), gain("G(n,d+4)"))
	tb.AddNote("in G□K5, 4/(d+4) of every node's stubs point into its own K5 clique (E[clique dials/round] = %.2f with k=4): locally clustered channels re-reach informed nodes", 16.0/float64(d+4))
	tb.AddNote("§5 predicts the multi-choice advantage shrinks on clique-clustered graphs; the asymptotic Ω-effect on transmissions is not separable at this n — we report the finite-size gains as measured")
	return []*table.Table{tb}, nil
}
