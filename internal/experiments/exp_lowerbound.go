package experiments

import (
	"fmt"
	"math"

	"regcast"
	"regcast/internal/oblivious"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Lower bound: one-choice oblivious schedules vs n·log n/log d",
		PaperClaim: "Theorem 1: any strictly oblivious O(log n)-time broadcast in the " +
			"standard (one-choice) phone call model needs Ω(n·log n/log d) transmissions; " +
			"the four-choice algorithm escapes the bound because it is outside that model.",
		Run: runE4,
	})
}

func runE4(o Options) ([]*table.Table, error) {
	n := 1 << 14
	degrees := []int{4, 8, 16, 32}
	if o.Quick {
		n = 1 << 11
		degrees = []int{4, 8, 16}
	}
	reps := repsFor(o)
	logN := int(math.Ceil(math.Log2(float64(n))))
	horizon := 3 * logN

	tb := table.New("E4: transmissions to finish within 3·log₂ n rounds (n="+itoa(n)+")",
		"d", "schedule", "choices", "tx (mean)", "bound n·logn/logd", "tx/bound", "completed")
	master := xrand.New(o.Seed)
	for _, d := range degrees {
		g, err := regular(n, d, master.Split())
		if err != nil {
			return nil, err
		}
		bound := oblivious.TransmissionBound(n, d)

		push, err := oblivious.AlwaysPush(horizon)
		if err != nil {
			return nil, err
		}
		both, err := oblivious.AlwaysBoth(horizon)
		if err != nil {
			return nil, err
		}
		ptp, err := oblivious.PushThenPull(logN, horizon)
		if err != nil {
			return nil, err
		}
		for _, proto := range []regcast.Protocol{push, both, ptp} {
			st, err := measure(o, g, proto, master.Uint64(), reps, regcast.WithStopEarly())
			if err != nil {
				return nil, err
			}
			tb.AddRow(d, proto.Name(), 1, f1(st.MeanTx), f1(bound), f2(st.MeanTx/bound), pct(st.CompletedFrac))
		}
	}
	tb.AddNote("schedules are measured with StopEarly — the cheapest accounting any Monte Carlo run could claim — and every one still pays at least ~1.3× the Ω(n·log n/log d) reference")
	tb.AddNote("push-then-pull is the cheapest one-choice shape (Karp et al.), and its cost/bound ratio stays a constant ≥ 1 across d — the bound is tight up to constants")
	tb.AddNote("the four-choice algorithm is outside this model (it dials 4 neighbours); its escape from the bound is the slope separation in E2")
	return []*table.Table{tb}, nil
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
