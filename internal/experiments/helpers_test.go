package experiments

import (
	"math"
	"testing"
)

func TestBinomCoeff(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {16, 4, 1820}, {10, 3, 120},
		{3, 4, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := binomCoeff(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomTail(t *testing.T) {
	// P[Bin(4, 0.5) >= 2] = (6+4+1)/16 = 0.6875.
	if got := binomTail(4, 0.5, 2); math.Abs(got-0.6875) > 1e-12 {
		t.Errorf("tail = %v, want 0.6875", got)
	}
	if binomTail(10, 0, 1) != 0 {
		t.Error("p=0 tail nonzero")
	}
	if binomTail(10, 1, 1) != 1 {
		t.Error("p=1 tail not 1")
	}
	// P[Bin(d,p) >= 0] = 1.
	if got := binomTail(7, 0.3, 0); math.Abs(got-1) > 1e-9 {
		t.Errorf("tail at 0 = %v", got)
	}
	// Monotone decreasing in i.
	prev := 2.0
	for i := 0; i <= 8; i++ {
		cur := binomTail(8, 0.4, i)
		if cur > prev+1e-12 {
			t.Fatalf("tail not monotone at i=%d", i)
		}
		prev = cur
	}
}

func TestFormatHelpers(t *testing.T) {
	if f1(1.26) != "1.3" || f2(1.267) != "1.27" || f3(1.2678) != "1.268" {
		t.Error("float formatting broken")
	}
	if pct(0.5) != "50%" || pct(1) != "100%" {
		t.Error("pct formatting broken")
	}
	if itoa(42) != "42" {
		t.Error("itoa broken")
	}
}

func TestSizesAndReps(t *testing.T) {
	quick := sizes(Options{Quick: true})
	full := sizes(Options{})
	if len(quick) >= len(full) {
		t.Error("quick profile not smaller")
	}
	if quick[len(quick)-1] >= full[len(full)-1] {
		t.Error("quick profile max size not smaller")
	}
	if repsFor(Options{Quick: true}) >= repsFor(Options{}) {
		t.Error("quick reps not smaller")
	}
}

func TestPushConstantLimit(t *testing.T) {
	// C_d decreases toward 1/ln2 + 1 ≈ 2.443 as d grows.
	limit := 1/math.Ln2 + 1
	if math.Abs(pushConstant(1<<20)-limit) > 0.01 {
		t.Errorf("C_inf = %v, want ≈ %v", pushConstant(1<<20), limit)
	}
	if pushConstant(4) <= pushConstant(8) {
		t.Error("C_d not decreasing in d")
	}
}
