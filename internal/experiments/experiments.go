// Package experiments defines one reproducible experiment per headline
// statement of the paper — every theorem, phase-level lemma, and claimed
// comparison has a registered entry that regenerates its result table (the
// paper is theory-only, so these tables stand in for the tables/figures an
// empirical evaluation section would carry; the DESIGN.md experiment index
// maps each entry to the statement it validates).
//
// All experiments run in two profiles: Quick (used by `go test -bench` and
// CI: smaller sweeps, fewer repetitions) and Full (used by
// cmd/experiments to regenerate EXPERIMENTS.md). Since the batch
// redesign, every replication ensemble in the harness routes through the
// facade's batch layer — regcast.Batch for broadcast ensembles,
// regcast.Replicate for non-broadcast ones (graph structure, the
// median-counter engine) — so Options.ReplicationWorkers parallelises a
// full paper regeneration across whole runs while keeping every table a
// pure function of Options.Seed.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"regcast"
	"regcast/internal/graph"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

// Options selects the experiment profile.
type Options struct {
	// Seed drives all randomness of the experiment.
	Seed uint64
	// Quick shrinks sweeps and repetition counts for benches and CI.
	Quick bool
	// Workers selects the per-run broadcast engine with the facade's
	// -workers semantics — 0 the classic sequential engine, WorkersAuto
	// (-1) the sharded engine with GOMAXPROCS workers, n >= 1 the sharded
	// engine with n workers. The sharded profiles stay reproducible from
	// Seed but differ bit-wise from the sequential one: the sharded engine
	// consumes per-shard PRNG streams, the sequential one a single stream.
	// Worker count never changes results — only the wall-clock time.
	Workers int
	// ReplicationWorkers sets the batch layer's pool width over whole
	// replications (regcast.Batch semantics: 0/1 serial, WorkersAuto =
	// GOMAXPROCS, n > 1 fixed). Replication-level parallelism composes
	// with Workers' per-run sharding and never changes any table — the
	// batch engine aggregates in replication order.
	ReplicationWorkers int
}

// runner returns the per-run engine the profile selects.
func (o Options) runner() regcast.Runner {
	return regcast.NewRunner(regcast.WithWorkers(o.Workers))
}

// Experiment is one registered, reproducible measurement.
type Experiment struct {
	// ID is the experiment identifier used in DESIGN.md and EXPERIMENTS.md
	// (E1, E2, ...).
	ID string
	// Title is a one-line description.
	Title string
	// PaperClaim states what the paper predicts, for the report header.
	PaperClaim string
	// Scheduler is the engine family the experiment exercises: the
	// phone-call round model (the zero value, every paper theorem) or the
	// population-protocol interaction model (E21+). cmd/experiments uses
	// it to filter the default selection by the -scheduler flag.
	Scheduler regcast.Scheduler
	// Run executes the experiment and returns its result tables.
	Run func(o Options) ([]*table.Table, error)
}

// registry holds all experiments keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %s", e.ID))
	}
	registry[e.ID] = e
}

// All returns every registered experiment ordered by numeric ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(out[i].ID, "E%d", &a)
		fmt.Sscanf(out[j].ID, "E%d", &b)
		return a < b
	})
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// runStats aggregates repeated broadcast runs.
type runStats struct {
	Reps          int
	MeanRounds    float64 // mean FirstAllInformed over completing runs
	MeanTx        float64 // mean transmissions over all runs
	MeanTxPerNode float64
	CompletedFrac float64 // fraction of runs with AllInformed
	InformedFrac  float64 // mean informed fraction over all runs
}

// fromBatch converts a batch aggregate into the harness's summary shape.
func fromBatch(res regcast.BatchResult) runStats {
	return runStats{
		Reps:          res.Replications,
		MeanRounds:    res.Rounds.Mean,
		MeanTx:        res.Transmissions.Mean,
		MeanTxPerNode: res.TxPerNode.Mean,
		CompletedFrac: res.CompletedFrac(),
		InformedFrac:  res.InformedFrac.Mean,
	}
}

// measure runs proto on g for reps seed-derived replications through the
// facade's batch engine, with a random source per replication and any
// extra scenario options applied (fault models, stop-early accounting,
// dial strategies). Options.Workers selects the per-run engine and
// Options.ReplicationWorkers the pool width over whole runs; neither
// changes the returned statistics.
func measure(o Options, g *graph.Graph, proto regcast.Protocol, seed uint64, reps int, opts ...regcast.ScenarioOption) (runStats, error) {
	scOpts := append([]regcast.ScenarioOption{regcast.WithSeed(seed)}, opts...)
	sc, err := regcast.NewScenario(regcast.Static(g), proto, scOpts...)
	if err != nil {
		return runStats{}, err
	}
	res, err := regcast.Batch{
		Scenario:           sc,
		Replications:       reps,
		ReplicationWorkers: o.ReplicationWorkers,
		Runner:             o.runner(),
		RandomizeSource:    true,
	}.Run(context.Background())
	if err != nil {
		return runStats{}, err
	}
	return fromBatch(res), nil
}

// sizes returns the n-sweep for the profile.
func sizes(o Options) []int {
	if o.Quick {
		return []int{1 << 9, 1 << 10, 1 << 11, 1 << 12}
	}
	return []int{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16}
}

// repsFor returns the repetition count for the profile.
func repsFor(o Options) int {
	if o.Quick {
		return 3
	}
	return 5
}

// regular generates the experiment's standard topology.
func regular(n, d int, rng *xrand.Rand) (*graph.Graph, error) {
	g, err := graph.RandomRegular(n, d, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: G(%d,%d): %w", n, d, err)
	}
	return g, nil
}

func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }
