package experiments

import (
	"context"
	"math"

	"regcast"
	"regcast/internal/core"
	"regcast/internal/mediancounter"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Title: "Self-terminating median-counter push&pull (Karp et al., ref [25])",
		PaperClaim: "§1.1/§2 build on [25]: the counter-based push&pull terminates locally " +
			"(no global age/horizon needed) in O(log n) rounds with O(n·log log n) " +
			"transmissions. Extension experiment: the stateful comparator the paper's " +
			"strictly oblivious schedules trade away for obliviousness.",
		Run: runE20,
	})
}

func runE20(o Options) ([]*table.Table, error) {
	const d = 8
	reps := repsFor(o)
	tb := table.New("E20: median-counter vs four-choice, d=8",
		"n", "protocol", "rounds/quiet", "tx/n", "tx/n/loglog", "complete frac", "self-terminating")
	master := xrand.New(o.Seed)
	for _, n := range sizes(o) {
		g, err := regular(n, d, master.Split())
		if err != nil {
			return nil, err
		}
		logLogN := math.Log2(math.Log2(float64(n)))

		// Median-counter (stateful, local termination). The engine lives
		// outside the Runner, so the ensemble goes through the batch
		// layer's Replicate primitive instead of a Batch of Scenarios.
		type slot struct {
			quiet, tx float64
			complete  bool
		}
		slots := make([]slot, reps)
		err = regcast.Replicate(context.Background(), master.Uint64(), reps, o.ReplicationWorkers,
			func(rep int, rng *regcast.Rand) error {
				res, err := mediancounter.Run(mediancounter.Config{
					Graph:  g,
					Source: rng.IntN(n),
					RNG:    rng.Split(),
				})
				if err != nil {
					return err
				}
				slots[rep] = slot{
					quiet:    float64(res.QuietAt),
					tx:       float64(res.Transmissions) / float64(n),
					complete: res.AllInformed,
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
		var quiet, tx, complete float64
		for _, s := range slots {
			quiet += s.quiet
			tx += s.tx
			if s.complete {
				complete++
			}
		}
		tb.AddRow(n, "median-counter", f1(quiet/float64(reps)), f1(tx/float64(reps)),
			f2(tx/float64(reps)/logLogN), f2(complete/float64(reps)), true)

		// Four-choice (oblivious, fixed horizon).
		proto, err := core.NewAlgorithm1(n)
		if err != nil {
			return nil, err
		}
		st, err := measure(o, g, proto, master.Uint64(), reps)
		if err != nil {
			return nil, err
		}
		tb.AddRow(n, "four-choice", f1(float64(proto.Horizon())), f1(st.MeanTxPerNode),
			f2(st.MeanTxPerNode/logLogN), f2(st.CompletedFrac), false)
	}
	tb.AddNote("median-counter 'rounds' is the self-detected quiet time; four-choice 'rounds' is its fixed horizon (it cannot know when to stop)")
	tb.AddNote("both are O(n·log log n)-transmission protocols; the counter variant buys local termination with per-node state, which forfeits the strict obliviousness the paper's model demands")
	return []*table.Table{tb}, nil
}
