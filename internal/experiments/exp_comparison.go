package experiments

import (
	"context"
	"fmt"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/core"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Protocol comparison: informed-set trajectories and total cost",
		PaperClaim: "§1: push grows exponentially then pays Θ(log n) saturation rounds; " +
			"pull starts slowly but finishes double-exponentially; push&pull and the " +
			"four-choice algorithm combine the good ends — the classic gossip 'figure'.",
		Run: runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Choice-count ablation (the §5 open question)",
		PaperClaim: "§5: four choices give O(n·log log n); the authors believe three " +
			"suffice; two are open; one falls back to the Ω(n·log n/log d) regime.",
		Run: runE10,
	})
	register(Experiment{
		ID:    "E11",
		Title: "Sequentialised model (footnote 2)",
		PaperClaim: "Footnote 2: one dial per round avoiding the last three partners is " +
			"equivalent to the four-choice model with a ×4 round stretch and the same " +
			"transmission behaviour.",
		Run: runE11,
	})
}

func runE9(o Options) ([]*table.Table, error) {
	n := 1 << 14
	if o.Quick {
		n = 1 << 11
	}
	const d = 8
	master := xrand.New(o.Seed)
	g, err := regular(n, d, master.Split())
	if err != nil {
		return nil, err
	}

	four, err := core.NewAlgorithm1(n)
	if err != nil {
		return nil, err
	}
	push, err := baseline.NewPush(n, 1)
	if err != nil {
		return nil, err
	}
	pull, err := baseline.NewPull(n, 1)
	if err != nil {
		return nil, err
	}
	pp, err := baseline.NewPushPull(n, 1)
	if err != nil {
		return nil, err
	}
	protos := []regcast.Protocol{push, pull, pp, four}

	// Trajectories: informed fraction at each round, one run per protocol.
	traj := make([][]float64, len(protos))
	summary := table.New(fmt.Sprintf("E9b: protocol summary, n=%d d=%d", n, d),
		"protocol", "choices", "completion round", "tx/n", "completed")
	maxRounds := 0
	for i, p := range protos {
		sc, err := regcast.NewScenario(regcast.Static(g), p,
			regcast.WithRNG(master.Split()), regcast.WithRecordRounds())
		if err != nil {
			return nil, err
		}
		res, err := o.runner().Run(context.Background(), sc)
		if err != nil {
			return nil, err
		}
		for _, rm := range res.PerRound {
			traj[i] = append(traj[i], float64(rm.Informed)/float64(n))
		}
		if len(traj[i]) > maxRounds {
			maxRounds = len(traj[i])
		}
		comp := "-"
		if res.FirstAllInformed > 0 {
			comp = fmt.Sprintf("%d", res.FirstAllInformed)
		}
		summary.AddRow(p.Name(), p.Choices(), comp,
			f1(float64(res.Transmissions)/float64(n)), res.AllInformed)
	}

	curves := table.New(fmt.Sprintf("E9a: informed fraction per round, n=%d d=%d", n, d),
		"round", "push", "pull", "push&pull", "4-choice")
	for r := 0; r < maxRounds; r++ {
		row := []any{r + 1}
		done := 0
		for i := range protos {
			if r < len(traj[i]) {
				row = append(row, f3(traj[i][r]))
				if traj[i][r] >= 1 {
					done++
				}
			} else {
				row = append(row, "-")
				done++
			}
		}
		curves.AddRow(row...)
		if done == len(protos) {
			break
		}
	}
	curves.AddNote("pull's flat start (the source must be dialled) and push's long tail are the §1 asymmetry; the 4-choice curve saturates fastest")
	summary.AddNote("push&pull's per-node cost carries a small constant (~1/log d) on its Ω(log n/log d) growth, so at feasible n it can undercut the 4-choice constant — the separation the paper proves is in the growth rate (see E2's fits), not the level at one n")
	return []*table.Table{curves, summary}, nil
}

func runE10(o Options) ([]*table.Table, error) {
	const d = 8
	reps := repsFor(o)
	tb := table.New("E10: k-choice ablation of the paper's schedule, d=8",
		"n", "k", "tx/n", "completed", "informed frac")
	master := xrand.New(o.Seed)
	ns := sizes(o)
	// The sweep is the point here, but keep the table readable: use the
	// smallest, middle and largest n.
	ns = []int{ns[0], ns[len(ns)/2], ns[len(ns)-1]}
	for _, n := range ns {
		g, err := regular(n, d, master.Split())
		if err != nil {
			return nil, err
		}
		for k := 1; k <= 4; k++ {
			proto, err := core.NewAlgorithm1(n, core.WithChoices(k))
			if err != nil {
				return nil, err
			}
			st, err := measure(o, g, proto, master.Uint64(), reps)
			if err != nil {
				return nil, err
			}
			tb.AddRow(n, k, f1(st.MeanTxPerNode), pct(st.CompletedFrac), f3(st.InformedFrac))
		}
	}
	tb.AddNote("k=4 is the paper's protocol; k=3 (the §5 conjecture) and even k=2 (open) complete with flat per-node cost at these scales")
	tb.AddNote("k=1 also completes — Phase 4's push chains mop up — but its tx/n grows with n (the Theorem 1 regime), while k ≥ 2 stays flat")
	return []*table.Table{tb}, nil
}

func runE11(o Options) ([]*table.Table, error) {
	const d = 8
	reps := repsFor(o)
	tb := table.New("E11: four-choice vs sequentialised (memory-3) model, d=8",
		"n", "model", "rounds (mean)", "round ratio", "tx/n", "completed")
	master := xrand.New(o.Seed)
	ns := sizes(o)
	ns = ns[:len(ns)-1] // the ×4 horizon makes the largest size slow
	for _, n := range ns {
		g, err := regular(n, d, master.Split())
		if err != nil {
			return nil, err
		}
		base, err := core.NewAlgorithm1(n)
		if err != nil {
			return nil, err
		}
		seq := core.NewSequentialised(base)
		stBase, err := measure(o, g, base, master.Uint64(), reps)
		if err != nil {
			return nil, err
		}
		stSeq, err := measure(o, g, seq, master.Uint64(), reps, regcast.WithAvoidRecent(seq.Memory()))
		if err != nil {
			return nil, err
		}
		tb.AddRow(n, "four-choice", f1(stBase.MeanRounds), "1.00", f1(stBase.MeanTxPerNode), pct(stBase.CompletedFrac))
		ratio := "-"
		if stBase.MeanRounds > 0 {
			ratio = f2(stSeq.MeanRounds / stBase.MeanRounds)
		}
		tb.AddRow(n, "sequentialised", f1(stSeq.MeanRounds), ratio, f1(stSeq.MeanTxPerNode), pct(stSeq.CompletedFrac))
	}
	tb.AddNote("footnote 2 predicts a round ratio near 4 and matching per-node transmissions")
	return []*table.Table{tb}, nil
}
