package experiments

import (
	"math"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/stats"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Quasirandom push (Doerr et al., ref [9]) vs fully random push",
		PaperClaim: "§1.1 cites [9]: the quasirandom model (random list start, then " +
			"successive neighbours) matches the classical O(log n) push time on random " +
			"graphs while derandomising all but the starting point — an extension " +
			"experiment beyond the paper's own evaluation.",
		Run: runE17,
	})
}

func runE17(o Options) ([]*table.Table, error) {
	const d = 8
	reps := repsFor(o)
	tb := table.New("E17: push completion time, uniform vs quasirandom dialing, d=8",
		"n", "uniform rounds", "quasirandom rounds", "uniform tx/n*", "quasirandom tx/n*", "both complete")
	master := xrand.New(o.Seed)
	var logNs, uni, quasi []float64
	for _, n := range sizes(o) {
		g, err := regular(n, d, master.Split())
		if err != nil {
			return nil, err
		}
		push, err := baseline.NewPush(n, 1)
		if err != nil {
			return nil, err
		}
		stUni, err := measure(o, g, push, master.Uint64(), reps, regcast.WithStopEarly())
		if err != nil {
			return nil, err
		}
		stQuasi, err := measure(o, g, push, master.Uint64(), reps,
			regcast.WithStopEarly(), regcast.WithDialStrategy(regcast.DialQuasirandom))
		if err != nil {
			return nil, err
		}
		tb.AddRow(n, f1(stUni.MeanRounds), f1(stQuasi.MeanRounds),
			f1(stUni.MeanTxPerNode), f1(stQuasi.MeanTxPerNode),
			stUni.CompletedFrac == 1 && stQuasi.CompletedFrac == 1)
		logNs = append(logNs, math.Log2(float64(n)))
		uni = append(uni, stUni.MeanRounds)
		quasi = append(quasi, stQuasi.MeanRounds)
	}
	if fu, err := stats.FitLine(logNs, uni); err == nil {
		if fq, err := stats.FitLine(logNs, quasi); err == nil {
			tb.AddNote("rounds ≈ %.2f·log n (uniform) vs %.2f·log n (quasirandom): same O(log n) class, quasirandom slightly ahead (no repeated dials within a list sweep)", fu.Slope, fq.Slope)
		}
	}
	tb.AddNote("*oracle-stop accounting for both, so the columns are comparable")
	return []*table.Table{tb}, nil
}
