package experiments

import (
	"context"
	"fmt"

	"regcast"
	"regcast/internal/core"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Robustness to communication failures",
		PaperClaim: "Abstract / §1: the algorithm efficiently handles limited communication " +
			"failures — completion should degrade gracefully as channel-failure and " +
			"message-loss probabilities grow.",
		Run: runE12,
	})
	register(Experiment{
		ID:    "E13",
		Title: "Robustness to wrong n estimates and to churn",
		PaperClaim: "Abstract / §1: only a constant-factor estimate of n is required, and the " +
			"algorithm is robust against limited changes in the size of the network.",
		Run: runE13,
	})
}

func runE12(o Options) ([]*table.Table, error) {
	n := 1 << 13
	if o.Quick {
		n = 1 << 11
	}
	const d = 8
	reps := repsFor(o)
	master := xrand.New(o.Seed)
	g, err := regular(n, d, master.Split())
	if err != nil {
		return nil, err
	}
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		return nil, err
	}

	chans := table.New(fmt.Sprintf("E12a: channel-failure sweep, n=%d d=%d", n, d),
		"failure prob", "completed", "informed frac", "rounds (mean)", "tx/n")
	for _, p := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		st, err := measure(o, g, proto, master.Uint64(), reps, regcast.WithChannelFailure(p))
		if err != nil {
			return nil, err
		}
		chans.AddRow(f2(p), pct(st.CompletedFrac), f3(st.InformedFrac), f1(st.MeanRounds), f1(st.MeanTxPerNode))
	}
	chans.AddNote("failed channels waste the dial but carry nothing; the schedule's slack absorbs moderate rates")

	loss := table.New(fmt.Sprintf("E12b: message-loss sweep, n=%d d=%d", n, d),
		"loss prob", "completed", "informed frac", "rounds (mean)", "tx/n")
	for _, p := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		st, err := measure(o, g, proto, master.Uint64(), reps, regcast.WithMessageLoss(p))
		if err != nil {
			return nil, err
		}
		loss.AddRow(f2(p), pct(st.CompletedFrac), f3(st.InformedFrac), f1(st.MeanRounds), f1(st.MeanTxPerNode))
	}
	loss.AddNote("lost transmissions still count toward tx/n, as in the paper's accounting")
	return []*table.Table{chans, loss}, nil
}

func runE13(o Options) ([]*table.Table, error) {
	n := 1 << 12
	if o.Quick {
		n = 1 << 10
	}
	const d = 8
	reps := repsFor(o)
	master := xrand.New(o.Seed)

	// Part a: wrong n estimates on a static graph.
	g, err := regular(n, d, master.Split())
	if err != nil {
		return nil, err
	}
	est := table.New(fmt.Sprintf("E13a: n-estimate error sweep, true n=%d d=%d", n, d),
		"estimate ñ", "ñ/n", "horizon", "completed", "informed frac", "tx/n")
	for _, factor := range []float64{0.125, 0.25, 0.5, 1, 2, 4, 8} {
		ne := int(float64(n) * factor)
		proto, err := core.NewAlgorithm1(ne)
		if err != nil {
			return nil, err
		}
		st, err := measure(o, g, proto, master.Uint64(), reps)
		if err != nil {
			return nil, err
		}
		est.AddRow(ne, f3(factor), proto.Horizon(), pct(st.CompletedFrac), f3(st.InformedFrac), f1(st.MeanTxPerNode))
	}
	est.AddNote("constant-factor misestimates keep completing (underestimates shorten Phase 1 and cut it close; overestimates just pay longer schedules)")

	// Part b: churn-rate sweep on the maintained overlay. Every
	// replication needs its own overlay (the churner mutates it); since
	// the batch layer builds per-replication topologies from a
	// declarative spec, the whole sweep is one OverlaySpec scenario per
	// rate — and the spec's epoch-stamped CSR view keeps even these churn
	// runs on the engines' fast path.
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		return nil, err
	}
	churn := table.New(fmt.Sprintf("E13b: churn sweep on the d-regular overlay, n≈%d d=%d", n, d),
		"join/leave prob per round", "informed frac (alive)", "overlay intact")
	for _, q := range []float64{0, 0.001, 0.002, 0.005, 0.01, 0.02} {
		spec := &recordingOverlaySpec{
			OverlaySpec: regcast.OverlaySpec{N: n, D: d, Headroom: n, JoinProb: q, LeaveProb: q, MixSteps: 5},
			topos:       make([]regcast.Topology, reps),
		}
		sc, err := regcast.NewScenarioSpec(spec, proto, regcast.WithSeed(master.Uint64()))
		if err != nil {
			return nil, err
		}
		res, err := regcast.Batch{
			Scenario:           sc,
			Replications:       reps,
			ReplicationWorkers: o.ReplicationWorkers,
			Runner:             o.runner(),
		}.Run(context.Background())
		if err != nil {
			return nil, err
		}
		intact := true
		for _, topo := range spec.topos {
			if topo == nil {
				continue
			}
			if err := topo.(interface{ CheckInvariants() error }).CheckInvariants(); err != nil {
				intact = false
			}
		}
		churn.AddRow(f3(q), f3(res.InformedFrac.Mean), intact)
	}
	churn.AddNote("peers joining after the pull round are unreachable by design; the shortfall tracks churn_rate × post-pull rounds (the paper's 'limited changes' caveat)")
	return []*table.Table{est, churn}, nil
}

// recordingOverlaySpec wraps regcast.OverlaySpec to keep each built
// topology, so the experiment can verify overlay invariants after the
// batch (built topologies expose the overlay's CheckInvariants). Writes
// go to distinct per-rep slots, matching the batch pool's concurrency
// contract.
type recordingOverlaySpec struct {
	regcast.OverlaySpec
	topos []regcast.Topology
}

func (s *recordingOverlaySpec) Build(rep int, rng *regcast.Rand) (regcast.Topology, error) {
	topo, err := s.OverlaySpec.Build(rep, rng)
	if err == nil {
		s.topos[rep] = topo
	}
	return topo, err
}
