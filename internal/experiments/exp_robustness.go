package experiments

import (
	"context"
	"fmt"

	"regcast"
	"regcast/internal/core"
	"regcast/internal/p2p/overlay"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Robustness to communication failures",
		PaperClaim: "Abstract / §1: the algorithm efficiently handles limited communication " +
			"failures — completion should degrade gracefully as channel-failure and " +
			"message-loss probabilities grow.",
		Run: runE12,
	})
	register(Experiment{
		ID:    "E13",
		Title: "Robustness to wrong n estimates and to churn",
		PaperClaim: "Abstract / §1: only a constant-factor estimate of n is required, and the " +
			"algorithm is robust against limited changes in the size of the network.",
		Run: runE13,
	})
}

func runE12(o Options) ([]*table.Table, error) {
	n := 1 << 13
	if o.Quick {
		n = 1 << 11
	}
	const d = 8
	reps := repsFor(o)
	master := xrand.New(o.Seed)
	g, err := regular(n, d, master.Split())
	if err != nil {
		return nil, err
	}
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		return nil, err
	}

	chans := table.New(fmt.Sprintf("E12a: channel-failure sweep, n=%d d=%d", n, d),
		"failure prob", "completed", "informed frac", "rounds (mean)", "tx/n")
	for _, p := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		st, err := measure(o, g, proto, master.Uint64(), reps, regcast.WithChannelFailure(p))
		if err != nil {
			return nil, err
		}
		chans.AddRow(f2(p), pct(st.CompletedFrac), f3(st.InformedFrac), f1(st.MeanRounds), f1(st.MeanTxPerNode))
	}
	chans.AddNote("failed channels waste the dial but carry nothing; the schedule's slack absorbs moderate rates")

	loss := table.New(fmt.Sprintf("E12b: message-loss sweep, n=%d d=%d", n, d),
		"loss prob", "completed", "informed frac", "rounds (mean)", "tx/n")
	for _, p := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		st, err := measure(o, g, proto, master.Uint64(), reps, regcast.WithMessageLoss(p))
		if err != nil {
			return nil, err
		}
		loss.AddRow(f2(p), pct(st.CompletedFrac), f3(st.InformedFrac), f1(st.MeanRounds), f1(st.MeanTxPerNode))
	}
	loss.AddNote("lost transmissions still count toward tx/n, as in the paper's accounting")
	return []*table.Table{chans, loss}, nil
}

func runE13(o Options) ([]*table.Table, error) {
	n := 1 << 12
	if o.Quick {
		n = 1 << 10
	}
	const d = 8
	reps := repsFor(o)
	master := xrand.New(o.Seed)

	// Part a: wrong n estimates on a static graph.
	g, err := regular(n, d, master.Split())
	if err != nil {
		return nil, err
	}
	est := table.New(fmt.Sprintf("E13a: n-estimate error sweep, true n=%d d=%d", n, d),
		"estimate ñ", "ñ/n", "horizon", "completed", "informed frac", "tx/n")
	for _, factor := range []float64{0.125, 0.25, 0.5, 1, 2, 4, 8} {
		ne := int(float64(n) * factor)
		proto, err := core.NewAlgorithm1(ne)
		if err != nil {
			return nil, err
		}
		st, err := measure(o, g, proto, master.Uint64(), reps)
		if err != nil {
			return nil, err
		}
		est.AddRow(ne, f3(factor), proto.Horizon(), pct(st.CompletedFrac), f3(st.InformedFrac), f1(st.MeanTxPerNode))
	}
	est.AddNote("constant-factor misestimates keep completing (underestimates shorten Phase 1 and cut it close; overestimates just pay longer schedules)")

	// Part b: churn-rate sweep on the maintained overlay. Every
	// replication needs its own overlay (the churner mutates it), so this
	// batch builds per-replication scenarios through Batch.New instead of
	// replicating one fixed Scenario.
	churn := table.New(fmt.Sprintf("E13b: churn sweep on the d-regular overlay, n≈%d d=%d", n, d),
		"join/leave prob per round", "informed frac (alive)", "overlay intact")
	for _, q := range []float64{0, 0.001, 0.002, 0.005, 0.01, 0.02} {
		q := q
		ovs := make([]*overlay.Overlay, reps)
		res, err := regcast.Batch{
			Seed:               master.Uint64(),
			Replications:       reps,
			ReplicationWorkers: o.ReplicationWorkers,
			Runner:             o.runner(),
			New: func(rep int, rng *regcast.Rand) (regcast.Scenario, error) {
				ov, err := overlay.New(n, d, n, rng.Split())
				if err != nil {
					return regcast.Scenario{}, err
				}
				ch, err := overlay.NewChurner(ov, q, q, 5, rng.Split())
				if err != nil {
					return regcast.Scenario{}, err
				}
				proto, err := core.NewAlgorithm1(n)
				if err != nil {
					return regcast.Scenario{}, err
				}
				ovs[rep] = ov
				return regcast.NewScenario(churningOverlay{ov, ch}, proto, regcast.WithRNG(rng.Split()))
			},
		}.Run(context.Background())
		if err != nil {
			return nil, err
		}
		intact := true
		for _, ov := range ovs {
			if ov == nil {
				continue
			}
			if err := ov.CheckInvariants(); err != nil {
				intact = false
			}
		}
		churn.AddRow(f3(q), f3(res.InformedFrac.Mean), intact)
	}
	churn.AddNote("peers joining after the pull round are unreachable by design; the shortfall tracks churn_rate × post-pull rounds (the paper's 'limited changes' caveat)")
	return []*table.Table{est, churn}, nil
}

// churningOverlay combines an overlay with its churner so the engine sees
// a single dynamic topology.
type churningOverlay struct {
	*overlay.Overlay
	ch *overlay.Churner
}

var _ regcast.Stepper = churningOverlay{}

func (c churningOverlay) Step(round int) []int { return c.ch.Step(round) }
