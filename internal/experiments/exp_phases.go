package experiments

import (
	"context"
	"fmt"
	"math"

	"regcast"
	"regcast/internal/core"
	"regcast/internal/graph"
	"regcast/internal/table"
	"regcast/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Phase 1: exponential growth of the newly informed set",
		PaperClaim: "Lemmas 1–2: during Phase 1 (only newly informed nodes push, four " +
			"choices each), |I⁺(t+1)| > 2·|I⁺(t)| while the informed set is below n/8; " +
			"a constant fraction of nodes is informed by the end of Phase 1.",
		Run: runE5,
	})
	register(Experiment{
		ID:    "E6",
		Title: "Phase 2: constant-factor decay of the uninformed set",
		PaperClaim: "Lemma 3 / Corollary 2: each Phase 2 round shrinks the uninformed set " +
			"by a constant factor c > 1, ending with at most n/log⁵n uninformed nodes.",
		Run: runE6,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Unused-edge census through Phase 2",
		PaperClaim: "Lemma 4: |U(t)|, the number of nodes incident to at least one unused " +
			"edge, stays Ω(n·(1−1/d)^{10·(t−α·log n+1)}) throughout Phase 2.",
		Run: runE7,
	})
	register(Experiment{
		ID:    "E8",
		Title: "Residual-degree structure of the uninformed set",
		PaperClaim: "Lemma 8 / Observation 1: at the end of Phase 2, h₁ ≈ Θ(h²d/n) and " +
			"hᵢ ≈ Θ(h·(hd/n)^i) for i ∈ {4,5} — the uninformed set looks like a random " +
			"graph with its conditional degree sequence.",
		Run: runE8,
	})
}

// phaseProfileRun runs Algorithm 1 with a deliberately small α (short
// Phase 1, so a sizeable uninformed set survives into Phase 2) and a large
// β (long Phase 2, so the decay is observable over several rounds) —
// with the default constants the Phase 1 cascade already covers the graph
// at laptop sizes. It returns per-round metrics.
func phaseProfileRun(o Options, n, d int, alpha, beta float64, seed uint64, trackEdges bool) (*core.FourChoice, regcast.Result, *graph.Graph, error) {
	master := xrand.New(seed)
	g, err := regular(n, d, master.Split())
	if err != nil {
		return nil, regcast.Result{}, nil, err
	}
	proto, err := core.NewAlgorithm1(n, core.WithAlpha(alpha), core.WithBeta(beta))
	if err != nil {
		return nil, regcast.Result{}, nil, err
	}
	opts := []regcast.ScenarioOption{regcast.WithRNG(master.Split()), regcast.WithRecordRounds()}
	if trackEdges {
		opts = append(opts, regcast.WithTrackEdgeUse())
	}
	sc, err := regcast.NewScenario(regcast.Static(g), proto, opts...)
	if err != nil {
		return nil, regcast.Result{}, nil, err
	}
	res, err := o.runner().Run(context.Background(), sc)
	return proto, res, g, err
}

func runE5(o Options) ([]*table.Table, error) {
	n := 1 << 15
	if o.Quick {
		n = 1 << 12
	}
	const d = 8
	proto, res, _, err := phaseProfileRun(o, n, d, core.DefaultAlpha, core.DefaultBeta, o.Seed, false)
	if err != nil {
		return nil, err
	}
	t1, _, _, _ := proto.PhaseBoundaries()
	tb := table.New(fmt.Sprintf("E5: Phase 1 growth, n=%d d=%d", n, d),
		"round", "|I+(t)|", "growth |I+(t)|/|I+(t-1)|", "informed", "informed/n")
	prevNew := 1 // the source counts as the round-0 cohort
	for _, rm := range res.PerRound {
		if rm.Round > t1 || rm.Informed > n/2 {
			break
		}
		ratio := "-"
		if prevNew > 0 && rm.Round > 1 {
			ratio = f2(float64(rm.NewlyInformed) / float64(prevNew))
		}
		tb.AddRow(rm.Round, rm.NewlyInformed, ratio, rm.Informed, f3(float64(rm.Informed)/float64(n)))
		prevNew = rm.NewlyInformed
		if rm.NewlyInformed == 0 {
			break
		}
	}
	// End-of-phase coverage.
	endInformed := 0
	for _, rm := range res.PerRound {
		if rm.Round == t1 {
			endInformed = rm.Informed
		}
	}
	tb.AddNote("paper predicts growth factor > 2 below n/8 informed (observed factors ≈ 3–4 with four choices)")
	tb.AddNote("informed at end of Phase 1 (round %d): %d/%d = %.1f%% — Corollary 1 needs ≥ 12.5%%",
		t1, endInformed, n, 100*float64(endInformed)/float64(n))
	return []*table.Table{tb}, nil
}

func runE6(o Options) ([]*table.Table, error) {
	n := 1 << 15
	if o.Quick {
		n = 1 << 12
	}
	const d = 8
	// α = 0.4 keeps Phase 1 short enough that Phase 2 receives a
	// non-trivial uninformed set to shrink.
	const alpha = 0.4
	proto, res, _, err := phaseProfileRun(o, n, d, alpha, 2.5, o.Seed, false)
	if err != nil {
		return nil, err
	}
	t1, t2, _, _ := proto.PhaseBoundaries()
	tb := table.New(fmt.Sprintf("E6: Phase 2 decay, n=%d d=%d α=%g", n, d, alpha),
		"round", "h(t) uninformed", "h(t)/h(t-1)", "n/log2(n)^5 target")
	target := float64(n) / math.Pow(math.Log2(float64(n)), 5)
	prevH := -1
	for _, rm := range res.PerRound {
		if rm.Round < t1 || rm.Round > t2 {
			continue
		}
		h := n - rm.Informed
		ratio := "-"
		if prevH > 0 && h > 0 {
			ratio = f3(float64(h) / float64(prevH))
		}
		tb.AddRow(rm.Round, h, ratio, f2(target))
		prevH = h
	}
	tb.AddNote("Lemma 3 predicts a constant per-round shrink factor < 1; with four pushes per informed node the factor is ≈ e⁻⁴ per round until saturation")
	return []*table.Table{tb}, nil
}

func runE7(o Options) ([]*table.Table, error) {
	n := 1 << 14
	if o.Quick {
		n = 1 << 11
	}
	const d = 8
	const alpha = 0.4
	proto, res, _, err := phaseProfileRun(o, n, d, alpha, 2.5, o.Seed, true)
	if err != nil {
		return nil, err
	}
	t1, t2, _, _ := proto.PhaseBoundaries()
	tb := table.New(fmt.Sprintf("E7: unused-edge nodes |U(t)| through Phase 2, n=%d d=%d", n, d),
		"round", "|U(t)|", "bound n·(1-1/d)^{10(t-T1+1)}", "|U(t)|/bound")
	for _, rm := range res.PerRound {
		if rm.Round < t1 || rm.Round > t2 {
			continue
		}
		bound := float64(n) * math.Pow(1-1/float64(d), float64(10*(rm.Round-t1+1)))
		ratio := float64(rm.UnusedEdgeNodes) / bound
		tb.AddRow(rm.Round, rm.UnusedEdgeNodes, f1(bound), f2(ratio))
	}
	tb.AddNote("Lemma 4 asserts |U(t)| = Ω(bound): the ratio column must stay bounded away from 0")
	return []*table.Table{tb}, nil
}

func runE8(o Options) ([]*table.Table, error) {
	n := 1 << 15
	reps := 10
	if o.Quick {
		n = 1 << 12
		reps = 4
	}
	const d = 16
	// Lemma 8's formulas hold in the regime h·d/n < 1 with h large enough
	// that h₄/h₅ have non-trivial counts. Lemma 5 says H(t) is a random
	// graph with its conditional degree sequence at *every* t, so we
	// measure at the round where h(t) lands closest to that window.
	hTarget := 1.6 * math.Pow(float64(n)/float64(d), 0.8)
	tb := table.New(fmt.Sprintf("E8: residual degrees of H(t*) with h≈%.0f, n=%d d=%d (mean over %d runs)", hTarget, n, d, reps),
		"quantity", "measured (mean)", "prediction (mean)", "measured/prediction")
	// Each replication runs its own broadcast and reduces it to the
	// residual-degree counts; the slots are merged in replication order
	// after the pool drains, so the table is independent of
	// ReplicationWorkers.
	type slot struct {
		used                bool
		h, h1, h4, h5       float64
		pred1, pred4, pred5 float64
	}
	slots := make([]slot, reps)
	err := regcast.Replicate(context.Background(), o.Seed, reps, o.ReplicationWorkers,
		func(rep int, rng *regcast.Rand) error {
			_, res, g, err := phaseProfileRun(o, n, d, 0.6, 2.5, rng.Uint64(), false)
			if err != nil {
				return err
			}
			// Locate t*: the recorded round whose uninformed count is
			// closest to the target window (and strictly inside the
			// hd/n < 1 regime).
			bestT, bestH := -1, 0
			for _, rm := range res.PerRound {
				hh := n - rm.Informed
				if float64(hh)*float64(d)/float64(n) >= 0.9 || hh == 0 {
					continue
				}
				if bestT < 0 || math.Abs(float64(hh)-hTarget) < math.Abs(float64(bestH)-hTarget) {
					bestT, bestH = rm.Round, hh
				}
			}
			if bestT < 0 {
				return nil
			}
			s := &slots[rep]
			s.used = true
			inH := make([]bool, n)
			for v := 0; v < n; v++ {
				if res.InformedAt[v] == regcast.Uninformed || int(res.InformedAt[v]) > bestT {
					inH[v] = true
				}
			}
			hh := float64(bestH)
			s.h = hh
			p := hh / float64(n)
			s.pred1 = hh * binomTail(d, p, 1)
			s.pred4 = hh * binomTail(d, p, 4)
			s.pred5 = hh * binomTail(d, p, 5)
			for v := 0; v < n; v++ {
				if !inH[v] {
					continue
				}
				nb := g.NeighborsInSet(v, inH)
				if nb >= 1 {
					s.h1++
				}
				if nb >= 4 {
					s.h4++
				}
				if nb >= 5 {
					s.h5++
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	var h, h1, h4, h5, pred1, pred4, pred5 float64
	used := 0
	for _, s := range slots {
		if !s.used {
			continue
		}
		used++
		h += s.h
		h1 += s.h1
		h4 += s.h4
		h5 += s.h5
		pred1 += s.pred1
		pred4 += s.pred4
		pred5 += s.pred5
	}
	if used == 0 {
		tb.AddNote("no run produced an uninformed set in the measurable window")
		return []*table.Table{tb}, nil
	}
	fr := float64(used)
	h, h1, h4, h5 = h/fr, h1/fr, h4/fr, h5/fr
	pred1, pred4, pred5 = pred1/fr, pred4/fr, pred5/fr
	tb.AddRow("h = |H(t*)|", f1(h), "-", "-")
	tb.AddRow("h1 (≥1 uninformed neighbour)", f1(h1), f1(pred1), ratioStr(h1, pred1))
	tb.AddRow("h4 (≥4 uninformed neighbours)", f1(h4), f2(pred4), ratioStr(h4, pred4))
	tb.AddRow("h5 (≥5 uninformed neighbours)", f1(h5), f2(pred5), ratioStr(h5, pred5))
	tb.AddNote("prediction = h·P[Bin(d, h/n) ≥ i], the uniform-random-subset baseline behind Lemma 8's Θ(h·(hd²/s)^i)")
	tb.AddNote("ratios grow with i because the broadcast process leaves positively correlated uninformed clusters — the Θ-form's shape (geometric decay in i at rate ~h·d/n) still holds (%d/%d runs in window)", used, reps)
	return []*table.Table{tb}, nil
}

// binomTail returns P[Bin(d, p) >= i] computed by direct summation.
func binomTail(d int, p float64, i int) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	tail := 0.0
	for k := i; k <= d; k++ {
		tail += binomCoeff(d, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(d-k))
	}
	return tail
}

// binomCoeff returns C(n, k) as a float64.
func binomCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	c := 1.0
	for j := 0; j < k; j++ {
		c *= float64(n-j) / float64(j+1)
	}
	return c
}

func ratioStr(measured, pred float64) string {
	if pred <= 0 {
		return "-"
	}
	return f2(measured / pred)
}
