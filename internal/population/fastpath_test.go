package population

import (
	"testing"

	"regcast/internal/xrand"
)

// fastpathCases is the fast≡reference bit-identity matrix: every
// built-in protocol from an adversarial start. Herman exercises the
// ring-table path; leader election the batch-kernel path (25 state
// bits — no table, no counts); approximate majority the full
// table+counts path.
func fastpathCases(t *testing.T) []struct {
	name string
	cfg  Config
} {
	t.Helper()
	le, err := NewLeaderElection(3000)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := NewHerman(301)
	if err != nil {
		t.Fatal(err)
	}
	hmInit, err := InitTokens(301, 3)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		cfg  Config
	}{
		{"leader/all-leaders", Config{N: 3000, Pair: le, Init: InitAllLeaders, MaxSteps: 40}},
		{"leader/poisoned", Config{N: 3000, Pair: le, Init: InitPoisoned, MaxSteps: 40}},
		{"herman/3-tokens", Config{N: 301, Ring: hm, Init: hmInit, MaxSteps: 60}},
		{"majority/close-race", Config{N: 3000, Pair: NewApproxMajority(), Init: InitMajority(0.51), MaxSteps: 40}},
		{"majority/blank-heavy", Config{N: 3000, Pair: NewApproxMajority(), Init: func(i, n int, coin uint64) State {
			if i == 0 {
				return MajX
			}
			if i == 1 {
				return MajY
			}
			return MajBlank
		}, MaxSteps: 40}},
	}
}

// TestFastPathMatchesReference pins the two-path contract: for every
// protocol, every worker count, and a non-default shard count, the fast
// path's full trace (per-step stats, final configuration, result) is
// bit-identical to the reference path's.
func TestFastPathMatchesReference(t *testing.T) {
	for _, tc := range fastpathCases(t) {
		for _, workers := range []int{0, 1, 4} {
			for _, shards := range []int{0, 7} {
				cfg := tc.cfg
				cfg.Workers = workers
				cfg.Shards = shards

				ref := cfg
				ref.DisableFastPath = true
				ref.RNG = xrand.New(99)
				refHash, _ := traceHash(t, ref)

				fast := cfg
				fast.RNG = xrand.New(99)
				fastHash, _ := traceHash(t, fast)

				if fastHash != refHash {
					t.Errorf("%s workers=%d shards=%d: fast trace %x != reference %x",
						tc.name, workers, shards, fastHash, refHash)
				}
			}
		}
	}
}

// TestFastPathMatchesReferenceWithInteractionObserver covers the
// partially-engaged shape: a per-interaction observer forces the
// reference apply loop while batched draws stay on.
func TestFastPathMatchesReferenceWithInteractionObserver(t *testing.T) {
	run := func(disable bool) ([]popEvent, uint64) {
		le, err := NewLeaderElection(500)
		if err != nil {
			t.Fatal(err)
		}
		rec := &recordingObserver{}
		cfg := Config{N: 500, Pair: le, Init: InitAllLeaders, MaxSteps: 10,
			RNG: xrand.New(5), Observer: rec, DisableFastPath: disable}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h := uint64(1469598103934665603)
		for _, s := range res.Final {
			h = (h ^ uint64(s)) * 1099511628211
		}
		return rec.events, h
	}
	fastEv, fastH := run(false)
	refEv, refH := run(true)
	if fastH != refH {
		t.Fatalf("final configuration diverged: %x != %x", fastH, refH)
	}
	if len(fastEv) != len(refEv) {
		t.Fatalf("interaction count diverged: %d != %d", len(fastEv), len(refEv))
	}
	for i := range fastEv {
		if fastEv[i] != refEv[i] {
			t.Fatalf("interaction %d diverged: %+v != %+v", i, fastEv[i], refEv[i])
		}
	}
}

type popEvent struct{ step, a, b int }

type recordingObserver struct {
	events []popEvent
}

func (r *recordingObserver) OnSuperStep(SuperStepStats) {}
func (r *recordingObserver) OnInteraction(step, a, b int) {
	r.events = append(r.events, popEvent{step, a, b})
}

// TestCountsMatchesScan cross-checks the incremental occupancy vector:
// after every super-step of a fast-path majority run, the engine's
// counts-derived measure must equal a fresh O(n) scan of the live
// configuration, and at the end the counts vector itself must equal
// the final configuration's histogram.
func TestCountsMatchesScan(t *testing.T) {
	p := NewApproxMajority()
	e, err := newEngine(Config{N: 2000, Pair: p, Init: InitMajority(0.52),
		MaxSteps: 50, RNG: xrand.New(17)})
	if err != nil {
		t.Fatal(err)
	}
	if e.counts == nil || e.table == nil {
		t.Fatalf("majority run should engage table+counts (table=%v counts=%v)",
			e.table != nil, e.counts != nil)
	}
	for step := 1; step <= 50; step++ {
		e.pairStep(step)
		if got, want := e.measure(), p.Measure(e.states); got != want {
			t.Fatalf("step %d: counts measure %d != scan measure %d", step, got, want)
		}
	}
	var hist [3]int64
	for _, s := range e.states {
		hist[s]++
	}
	for st, c := range e.counts {
		if c != hist[st] {
			t.Fatalf("counts[%d] = %d, configuration histogram has %d", st, c, hist[st])
		}
	}
}

// TestLeaderApplyPairsMatchesTransition pins the hand-fused leader
// kernel against per-pair Transition on random configurations,
// including timer-expired states that arm the promotion lane.
func TestLeaderApplyPairsMatchesTransition(t *testing.T) {
	le, err := NewLeaderElection(64)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(23)
	for trial := 0; trial < 200; trial++ {
		states := make([]State, 64)
		for i := range states {
			// Random role/value, timer biased to the promotion region.
			tim := State(r.Uint64()) & leTimMask
			if trial%2 == 1 {
				tim = leTimMask // expired: promotion lane armed
			}
			states[i] = leState(r.Uint64()&1 == 1, State(r.Uint64())&leValMask, tim)
		}
		pairs := make([]PairDraw, 32)
		r.FillPairDraws(pairs, 64)

		want := append([]State(nil), states...)
		wantChanged := 0
		for _, d := range pairs {
			na, nb := le.Transition(want[d.A], want[d.B], d.Coin)
			if na != want[d.A] {
				wantChanged++
			}
			if nb != want[d.B] {
				wantChanged++
			}
			want[d.A], want[d.B] = na, nb
		}

		gotChanged := le.ApplyPairs(states, pairs)
		if gotChanged != wantChanged {
			t.Fatalf("trial %d: changed %d != %d", trial, gotChanged, wantChanged)
		}
		for i := range states {
			if states[i] != want[i] {
				t.Fatalf("trial %d: agent %d: %#x != %#x", trial, i, states[i], want[i])
			}
		}
	}
}

// TestTableCompilerDeclinesMisdeclaredProtocols: a protocol whose
// Transition escapes its declared StateBound must fall back to the
// reference component, not index out of range.
func TestTableCompilerDeclinesMisdeclaredProtocols(t *testing.T) {
	e, err := newEngine(Config{N: 100, Pair: escapingProto{}, MaxSteps: 5, RNG: xrand.New(3)})
	if err != nil {
		t.Fatal(err)
	}
	if e.table != nil {
		t.Fatal("table compiled for a protocol whose Transition escapes StateBound")
	}
	if _, err := Run(Config{N: 100, Pair: escapingProto{}, MaxSteps: 5, RNG: xrand.New(3)}); err != nil {
		t.Fatal(err)
	}
}

// escapingProto declares 2 states but transitions to state 2.
type escapingProto struct{}

func (escapingProto) Name() string { return "escaping" }
func (escapingProto) Transition(a, b State, coin uint64) (State, State) {
	return 2, b
}
func (escapingProto) Measure(cfg []State) int { return 1 }
func (escapingProto) StateBound() int         { return 2 }
func (escapingProto) CoinBits() int           { return 0 }

// TestPairStepSteadyStateAllocFree guards the 0-alloc steady state:
// with the quota buffers preallocated at construction, super-steps
// allocate nothing, on both paths.
func TestPairStepSteadyStateAllocFree(t *testing.T) {
	for _, disable := range []bool{false, true} {
		e, err := newEngine(Config{N: 5000, Pair: NewApproxMajority(),
			Init: InitMajority(0.6), MaxSteps: 100, RNG: xrand.New(7),
			DisableFastPath: disable})
		if err != nil {
			t.Fatal(err)
		}
		step := 0
		allocs := testing.AllocsPerRun(20, func() {
			step++
			e.pairStep(step)
		})
		if allocs != 0 {
			t.Errorf("disable=%v: %v allocs per super-step, want 0", disable, allocs)
		}
	}
}

// TestApproxMajorityConverges sanity-checks the new protocol's
// dynamics: a 60/40 race must reach consensus on X.
func TestApproxMajorityConverges(t *testing.T) {
	res, err := Run(Config{N: 2000, Pair: NewApproxMajority(),
		Init: InitMajority(0.6), RNG: xrand.New(41)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no consensus after %d steps (measure %d)", res.Steps, res.Measure)
	}
	for i, s := range res.Final {
		if s != MajX {
			t.Fatalf("agent %d ended %d, want majority opinion X", i, s)
		}
	}
}
