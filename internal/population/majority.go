// Approximate majority (the three-state "undecided-state dynamics" of
// Angluin, Aspnes, Eisenstat, DISC 2007): agents hold opinion X,
// opinion Y, or are blank/undecided. When two opposing opinions meet
// the responder goes blank; a blank responder adopts the initiator's
// opinion. The population converges to consensus on the initial
// majority opinion with high probability in O(n log n) interactions,
// even against a bounded adversary — the canonical fast, robust
// population-protocol computation.
//
// The protocol is the showcase workload for the engine's table fast
// path: three states, deterministic transitions (CoinBits 0), so the
// whole dynamics compiles into a 16-entry lookup table, and the
// progress measure factors through the occupancy vector, so the
// per-super-step Measure is three counter reads instead of an O(n)
// scan.

package population

// ApproxMajority state values. Blank is the zero state so that a nil
// Init starts an all-blank (inert) population.
const (
	MajBlank State = 0 // undecided
	MajX     State = 1 // opinion X
	MajY     State = 2 // opinion Y
)

// ApproxMajority is the three-state approximate-majority PairProtocol.
// It is stateless; the zero value is ready to use.
type ApproxMajority struct{}

// NewApproxMajority builds the protocol.
func NewApproxMajority() *ApproxMajority { return &ApproxMajority{} }

// Name implements PairProtocol.
func (p *ApproxMajority) Name() string { return "approx-majority" }

// Transition implements PairProtocol: the initiator converts the
// responder — an opposing opinion to blank, a blank to the initiator's
// opinion. The initiator never changes, and the coin word is unused
// (the dynamics are deterministic given the pair).
func (p *ApproxMajority) Transition(a, b State, coin uint64) (State, State) {
	switch {
	case a == MajX && b == MajY, a == MajY && b == MajX:
		return a, MajBlank
	case b == MajBlank && a != MajBlank:
		return a, a
	default:
		return a, b
	}
}

// Measure implements PairProtocol: the number of distinct opinion
// classes present (X-holders, Y-holders, blanks), so 1 means consensus
// — every agent holds the same opinion, or every agent is blank.
func (p *ApproxMajority) Measure(cfg []State) int {
	var have [3]bool
	for _, s := range cfg {
		have[s&3] = true
	}
	m := 0
	for _, h := range have {
		if h {
			m++
		}
	}
	return m
}

// StateBound implements TableProtocol and CountsProtocol.
func (p *ApproxMajority) StateBound() int { return 3 }

// CoinBits implements TableProtocol: the transition is deterministic.
func (p *ApproxMajority) CoinBits() int { return 0 }

// MeasureCounts implements CountsProtocol: Measure from the occupancy
// vector in three reads.
func (p *ApproxMajority) MeasureCounts(counts []int64) int {
	m := 0
	for _, c := range counts {
		if c > 0 {
			m++
		}
	}
	return m
}

// InitMajority builds an initial configuration with ⌈frac·n⌉ agents
// holding X and the rest holding Y — frac barely above ½ is the
// adversarial close-race start where approximate majority must still
// pick the (slim) majority with high probability. frac is clamped to
// [0, 1].
func InitMajority(frac float64) func(i, n int, coin uint64) State {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return func(i, n int, coin uint64) State {
		// ⌈frac·n⌉ X-agents, deterministically, by index threshold.
		if float64(i) < frac*float64(n) {
			return MajX
		}
		return MajY
	}
}
