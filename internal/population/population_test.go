package population

import (
	"hash/fnv"
	"math"
	"testing"

	"regcast/internal/xrand"
)

// traceHash runs a config and returns an FNV-1a hash over every
// super-step's stats plus the final configuration — a full-trace
// fingerprint for bit-identity tests.
func traceHash(t *testing.T, cfg Config) (uint64, Result) {
	t.Helper()
	h := fnv.New64a()
	word := func(x uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(x >> (8 * i))
		}
		h.Write(b[:])
	}
	cfg.Observer = observerFunc(func(s SuperStepStats) {
		word(uint64(s.Step))
		word(uint64(s.Interactions))
		word(uint64(s.Changed))
		word(uint64(s.Measure))
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, s := range res.Final {
		word(uint64(s))
	}
	word(uint64(res.Steps))
	word(uint64(res.Interactions))
	word(uint64(res.ConvergedAt))
	return h.Sum64(), res
}

type observerFunc func(SuperStepStats)

func (f observerFunc) OnSuperStep(s SuperStepStats) { f(s) }

func TestPairTraceWorkerIndependent(t *testing.T) {
	le, err := NewLeaderElection(300)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{N: 300, Pair: le, Init: InitAllLeaders}
	var want uint64
	for i, workers := range []int{0, 1, 4} {
		cfg := base
		cfg.Workers = workers
		cfg.RNG = xrand.New(7)
		got, res := traceHash(t, cfg)
		if i == 0 {
			want = got
			if !res.Converged {
				t.Fatalf("leader election did not converge in %d steps (measure %d)", res.Steps, res.Measure)
			}
			continue
		}
		if got != want {
			t.Fatalf("workers=%d trace hash %#x, want %#x (workers=0)", workers, got, want)
		}
	}
}

func TestRingTraceWorkerIndependent(t *testing.T) {
	hm, err := NewHerman(101)
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitTokens(101, 5)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{N: 101, Ring: hm, Init: init}
	var want uint64
	for i, workers := range []int{0, 1, 4} {
		cfg := base
		cfg.Workers = workers
		cfg.RNG = xrand.New(11)
		got, res := traceHash(t, cfg)
		if i == 0 {
			want = got
			if !res.Converged {
				t.Fatalf("Herman ring did not converge in %d steps (measure %d)", res.Steps, res.Measure)
			}
			continue
		}
		if got != want {
			t.Fatalf("workers=%d trace hash %#x, want %#x (workers=0)", workers, got, want)
		}
	}
}

func TestLeaderElectionConvergesFromCanonicalStarts(t *testing.T) {
	for _, tc := range []struct {
		name string
		init func(i, n int, coin uint64) State
	}{
		{"all-leaders", InitAllLeaders},
		{"leaderless", InitLeaderless},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				le, err := NewLeaderElection(200)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(Config{N: 200, Pair: le, Init: tc.init, RNG: xrand.New(seed)})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("seed %d: not converged after %d steps (measure %d)", seed, res.Steps, res.Measure)
				}
				if got := le.Measure(res.Final); got != 1 {
					t.Fatalf("seed %d: final configuration has %d leaders, want 1", seed, got)
				}
			}
		})
	}
}

// TestLeaderElectionInteractionEnvelope pins the Θ(n log n) convergence
// claim at small n: over a few seeds, the mean interactions-to-convergence
// from the all-leaders start must land within a generous constant band
// around n·ln n. The bounds were calibrated empirically and have an order
// of magnitude of slack on each side, so they fail on asymptotic
// regressions (e.g. the rank epidemic degrading to Θ(n²)) and not on
// seed noise.
func TestLeaderElectionInteractionEnvelope(t *testing.T) {
	for _, n := range []int{128, 256, 512} {
		var sum float64
		const seeds = 8
		for seed := uint64(1); seed <= seeds; seed++ {
			le, err := NewLeaderElection(n)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{N: n, Pair: le, Init: InitAllLeaders, RNG: xrand.New(seed)})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("n=%d seed %d: not converged after %d steps", n, seed, res.Steps)
			}
			sum += float64(res.ConvergedInteractions)
		}
		mean := sum / seeds
		nlogn := float64(n) * math.Log(float64(n))
		if ratio := mean / nlogn; ratio < 0.05 || ratio > 30 {
			t.Fatalf("n=%d: mean interactions to convergence %.0f is %.2f·n·ln n, outside the [0.05, 30] envelope", n, mean, ratio)
		}
	}
}

func TestHermanTokenParityAndConvergence(t *testing.T) {
	const n = 51
	for _, k := range []int{3, 5, 9} {
		hm, err := NewHerman(n)
		if err != nil {
			t.Fatal(err)
		}
		init, err := InitTokens(n, k)
		if err != nil {
			t.Fatal(err)
		}
		// The initial configuration must carry exactly k tokens.
		cfg0 := make([]State, n)
		for i := range cfg0 {
			cfg0[i] = init(i, n, 0)
		}
		if got := hm.Measure(cfg0); got != k {
			t.Fatalf("InitTokens(%d, %d) built %d tokens", n, k, got)
		}
		parity := &parityObserver{t: t}
		res, err := Run(Config{N: n, Ring: hm, Init: init, RNG: xrand.New(uint64(k)), Observer: parity})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("k=%d: not converged after %d steps (measure %d)", k, res.Steps, res.Measure)
		}
		if res.Measure != 1 {
			t.Fatalf("k=%d: final token count %d, want 1", k, res.Measure)
		}
		if parity.steps == 0 {
			t.Fatal("observer saw no super-steps")
		}
	}
}

// parityObserver checks the odd-token invariant and token monotonicity
// every super-step.
type parityObserver struct {
	t     *testing.T
	steps int
	last  int
}

func (p *parityObserver) OnSuperStep(s SuperStepStats) {
	p.steps++
	if s.Measure%2 == 0 {
		p.t.Fatalf("step %d: even token count %d on an odd ring", s.Step, s.Measure)
	}
	if p.last != 0 && s.Measure > p.last {
		p.t.Fatalf("step %d: token count rose from %d to %d", s.Step, p.last, s.Measure)
	}
	p.last = s.Measure
}

// fixpointProtocol sends every agent to state 1 and then never changes
// anything; its measure is the number of agents NOT at 1 plus one, so it
// reaches measure 1 exactly when the configuration is silent.
type fixpointProtocol struct{}

func (fixpointProtocol) Name() string { return "fixpoint" }
func (fixpointProtocol) Transition(a, b State, coin uint64) (State, State) {
	return 1, 1
}
func (fixpointProtocol) Measure(cfg []State) int {
	m := 1
	for _, s := range cfg {
		if s != 1 {
			m++
		}
	}
	return m
}

func TestSilentConfigurationHalts(t *testing.T) {
	res, err := Run(Config{N: 64, Pair: fixpointProtocol{}, RNG: xrand.New(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged && !res.Silent {
		t.Fatalf("fixpoint protocol neither converged nor went silent in %d steps", res.Steps)
	}
	if res.Measure != 1 {
		t.Fatalf("final measure %d, want 1", res.Measure)
	}
	// With all agents at the fixpoint, no interaction changes state: the
	// run must stop long before the default budget.
	if res.Steps >= 256 {
		t.Fatalf("run consumed %d steps; silent halting did not trigger", res.Steps)
	}
}

func TestInteractionObserver(t *testing.T) {
	le, err := NewLeaderElection(16)
	if err != nil {
		t.Fatal(err)
	}
	io := &interactionCounter{n: 16}
	res, err := Run(Config{N: 16, Pair: le, Init: InitAllLeaders, RNG: xrand.New(5), Observer: io})
	if err != nil {
		t.Fatal(err)
	}
	if int64(io.count) != res.Interactions {
		t.Fatalf("observer saw %d interactions, result says %d", io.count, res.Interactions)
	}
}

type interactionCounter struct {
	n     int
	count int
}

func (c *interactionCounter) OnSuperStep(SuperStepStats) {}
func (c *interactionCounter) OnInteraction(step, a, b int) {
	if a == b || a < 0 || b < 0 || a >= c.n || b >= c.n {
		panic("invalid interaction pair")
	}
	c.count++
}

func TestConfigValidation(t *testing.T) {
	le, _ := NewLeaderElection(8)
	hm, _ := NewHerman(9)
	for name, cfg := range map[string]Config{
		"no-protocol":   {N: 8},
		"two-protocols": {N: 9, Pair: le, Ring: hm},
		"pair-n-1":      {N: 1, Pair: le},
		"neg-shards":    {N: 8, Pair: le, Shards: -1},
		"neg-batch":     {N: 8, Pair: le, BatchSize: -1},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", name)
		}
	}
	if _, err := NewHerman(10); err == nil {
		t.Error("NewHerman accepted an even ring")
	}
	if _, err := NewHerman(1); err == nil {
		t.Error("NewHerman accepted n=1")
	}
	if _, err := InitTokens(9, 4); err == nil {
		t.Error("InitTokens accepted an even token count")
	}
	if _, err := NewLeaderElection(1); err == nil {
		t.Error("NewLeaderElection accepted n=1")
	}
}
