// Self-stabilizing leader election under the uniform random-pair
// scheduler, after the ranked-timeout family of protocols (Austin,
// Berenbrink, Friedetzky, Götte, Hintze; arXiv:2505.01210): a max-rank
// epidemic demotes lower-ranked leaders, a freshness-epidemic timer
// detects a leaderless configuration, and timeouts regenerate leaders
// with fresh random ranks.

package population

import (
	"errors"
	"math/bits"
)

// LeaderElection state layout (one uint32 per agent):
//
//	bit  0      — role: 1 = leader, 0 = follower
//	bits 1..16  — value v: own rank for a leader, max rank seen otherwise
//	bits 17..24 — timer: steps-since-freshness counter, saturating at 255
//
// Dynamics per interaction (symmetric in the two agents):
//
//  1. Rank epidemic: both agents adopt m = max(v_a, v_b); a leader whose
//     value is below m is demoted. If both survive as leaders (equal top
//     rank), the initiator wins the tie.
//  2. Timer: if a leader is present both timers reset to 0 (freshness
//     spreads epidemically from leaders); otherwise both become
//     min(t_a, t_b)+1, so a timer can only grow large when every
//     epidemic path to a leader is stale.
//  3. Timeout: a follower whose aged timer reaches the threshold
//     C = 8·log2(n)+16 promotes itself to leader with probability 1/16
//     (thinned by coin bits, so a leaderless burst creates O(n/16)
//     candidate leaders rather than n) and draws a fresh uniform 16-bit
//     rank from the coin.
//
// From the canonical adversarial starts — all agents leaders, or no
// leaders with expired timers — the protocol converges to exactly one
// leader in Θ(n log n) interactions: the rank epidemic resolves the
// all-leaders start like a max-propagation rumor, and the timeout burst
// plus rank epidemic resolves the leaderless start. The worst
// *arbitrary* start (a poisoned max-seen value above every live rank
// with no leader) additionally waits for a promotion to draw a rank at
// least the poison, an expected 2^16/(2^16−m) extra promotions — the
// rank-space factor of the space–time trade-off in arXiv:2505.01210.
// That slow tail is exactly why the rank field gets 16 of the 32 bits.
type LeaderElection struct {
	n       int
	timeout uint32
}

const (
	leRoleBit  State = 1 << 0
	leValShift       = 1
	leValMask  State = 0xFFFF
	leTimShift       = 17
	leTimMask  State = 0xFF
)

func leState(leader bool, v, t State) State {
	s := (v&leValMask)<<leValShift | (t&leTimMask)<<leTimShift
	if leader {
		s |= leRoleBit
	}
	return s
}

func leDecode(s State) (leader bool, v, t State) {
	return s&leRoleBit != 0, (s >> leValShift) & leValMask, (s >> leTimShift) & leTimMask
}

// NewLeaderElection builds the protocol for an n-agent clique.
func NewLeaderElection(n int) (*LeaderElection, error) {
	if n < 2 {
		return nil, errors.New("population: leader election needs at least 2 agents")
	}
	return &LeaderElection{
		n:       n,
		timeout: uint32(8*bits.Len(uint(n)) + 16),
	}, nil
}

// Name implements PairProtocol.
func (p *LeaderElection) Name() string { return "leader-election" }

// Transition implements PairProtocol; a is the initiator, b the
// responder. The initiator slices its promotion randomness from the low
// 32 coin bits, the responder from the high 32.
func (p *LeaderElection) Transition(a, b State, coin uint64) (State, State) {
	la, va, ta := leDecode(a)
	lb, vb, tb := leDecode(b)

	// 1. Rank epidemic with initiator-wins tie-break.
	m := va
	if vb > m {
		m = vb
	}
	la = la && va == m
	lb = lb && vb == m
	if la && lb {
		lb = false
	}

	// 2. Timer: leader freshness resets, follower-only pairs age.
	var t State
	if !la && !lb {
		t = ta
		if tb < t {
			t = tb
		}
		if t < leTimMask {
			t++
		}
	}
	ta, tb = t, t

	// 3. Timeout promotion, thinned to probability 1/16.
	va, vb = m, m
	if !la && !lb {
		if ca := uint32(coin); ta >= State(p.timeout) && ca&0xF == 0 {
			la, va, ta = true, State(ca>>4)&leValMask, 0
		}
		if cb := uint32(coin >> 32); tb >= State(p.timeout) && cb&0xF == 0 {
			lb, vb, tb = true, State(cb>>4)&leValMask, 0
		}
	}
	return leState(la, va, ta), leState(lb, vb, tb)
}

// Measure implements PairProtocol: the number of leaders. The scan is
// branchless — it runs once per super-step over the full configuration.
func (p *LeaderElection) Measure(cfg []State) int {
	leaders := 0
	for _, s := range cfg {
		leaders += int(s & leRoleBit)
	}
	return leaders
}

// InitAllLeaders is the canonical "everyone thinks they lead" adversarial
// start: every agent a leader with the distinct rank i, timer fresh. The
// rank epidemic must demote all but the top-ranked agent.
func InitAllLeaders(i, n int, coin uint64) State {
	return leState(true, State(i)&leValMask, 0)
}

// InitLeaderless is the canonical "no leader, detection due" adversarial
// start: every agent a follower with distinct rank i and an expired
// timer, so the timeout machinery must regenerate and then thin leaders.
func InitLeaderless(i, n int, coin uint64) State {
	return leState(false, State(i)&leValMask, leTimMask)
}

// InitPoisoned is the worst-case start documented on LeaderElection: no
// leaders, expired timers, and every agent's max-seen value poisoned to
// the top of the rank space, so recovery must wait for a promotion to
// draw the maximum rank.
func InitPoisoned(i, n int, coin uint64) State {
	return leState(false, leValMask, leTimMask)
}

// ApplyPairs implements BatchProtocol: the Transition logic inlined over
// a pre-drawn block, so the engine's fast path pays no interface call
// per interaction. Two reshapings keep the loop lean: the rank epidemic
// compares value bits in packed position (masking instead of the
// decode/re-encode round-trip), and data-dependent selects compile to
// conditional moves — the rank comparison and role bits are coin flips
// during the epidemic phase, so branches here would mispredict half the
// time. Observationally identical to per-pair Transition —
// TestLeaderApplyPairsMatchesTransition and the fast≡reference matrix
// pin that.
func (p *LeaderElection) ApplyPairs(states []State, pairs []PairDraw) (changed int) {
	const valBits = leValMask << leValShift
	timeout := State(p.timeout)
	for j := range pairs {
		d := pairs[j]
		a := states[d.A]
		b := states[d.B]

		// Rank epidemic with initiator-wins tie-break, on in-place
		// value bits.
		av := a & valBits
		bv := b & valBits
		mv := av
		if bv > mv {
			mv = bv
		}
		la := a&leRoleBit != 0 && av == mv
		lb := b&leRoleBit != 0 && bv == mv && !la
		noLeader := !la && !lb

		// Timer: aged min for follower-only pairs, 0 when a leader is
		// present (t stays 0 through the !noLeader lane, which also
		// disarms the timeout below — timeout is at least 16).
		ta := (a >> leTimShift) & leTimMask
		tb := (b >> leTimShift) & leTimMask
		if tb < ta {
			ta = tb
		}
		ta += b2s(ta < leTimMask)
		var t State
		if noLeader {
			t = ta
		}

		// Timeout promotion, thinned to probability 1/16; each agent
		// slices its own half of the coin word.
		base := mv | t<<leTimShift
		ca := State(uint32(d.Coin))
		cb := State(uint32(d.Coin >> 32))
		na := base | b2s(la)
		if t >= timeout && ca&0xF == 0 {
			na = leRoleBit | (ca>>4&leValMask)<<leValShift
		}
		nb := base | b2s(lb)
		if t >= timeout && cb&0xF == 0 {
			nb = leRoleBit | (cb>>4&leValMask)<<leValShift
		}

		states[d.A] = na
		states[d.B] = nb
		changed += b2i(na != a) + b2i(nb != b)
	}
	return changed
}

// b2s is b2i for State-typed bit arithmetic.
func b2s(b bool) State {
	if b {
		return 1
	}
	return 0
}
