// Package population implements the pairwise-interaction (population
// protocol) engine family: anonymous agents with a small state space,
// advanced either by uniform random ordered pairs (the classic
// population-protocol scheduler, PairProtocol) or by synchronous ring
// steps (RingProtocol, for Herman-style self-stabilizing rings).
//
// The engine is the second instance of the repository's deterministic
// sharded super-step contract (internal/sched; the first is the
// phone-call round engine in internal/phonecall). Interactions are
// batched into super-steps of Config.BatchSize pairs; each super-step
// partitions its interaction quota over Config.Shards shards, each shard
// draws its pairs and coin words from its own split PRNG stream
// concurrently, and the drawn interactions are then applied to the
// configuration sequentially in shard order by the coordinating
// goroutine. Pair draws are state-independent, so the parallel drawing
// phase cannot observe — and therefore cannot depend on — the order in
// which transitions are applied. The consequence is stronger than in the
// phone-call engine: the sequential driver (Workers 0 or 1, shard passes
// inline) and the sharded driver execute the *same* trace, bit-identical
// for every worker count at a fixed shard count.
//
// The ring driver keeps the same shape with a synchronous twist: each
// super-step is one simultaneous update of all n agents, double-buffered
// so shard passes write disjoint ranges of the next configuration, with
// coin words drawn from the shard's own stream only at positions where
// RingProtocol.NeedsCoin reports a coin flip.
//
// A run halts when the protocol's progress measure reaches 1 and stays
// there for SilenceWindow consecutive super-steps (Converged), when no
// agent state changes for SilenceWindow consecutive super-steps (a
// silent configuration, Silent), at MaxSteps, or when Config.Halt asks.
package population

import (
	"errors"
	"math/bits"

	"regcast/internal/sched"
	"regcast/internal/xrand"
)

// State is one agent's state word. Protocols pack their fields into it;
// population-protocol state spaces are small by definition, and 32 bits
// keep the configuration slice compact and the double buffer cheap.
type State = uint32

// PairProtocol is an agent-state machine driven by the uniform
// random-ordered-pair scheduler: each interaction picks an ordered pair
// (initiator a, responder b) of distinct agents uniformly at random and
// replaces their states with Transition(a, b, coin).
type PairProtocol interface {
	// Name identifies the protocol in traces and reports.
	Name() string
	// Transition maps the (initiator, responder) states to their
	// successors. coin is a fresh uniform 64-bit word drawn for this
	// interaction; protocols needing randomness slice bits from it, and
	// deterministic protocols ignore it (the word is always drawn, so
	// stream consumption does not depend on the configuration).
	Transition(a, b State, coin uint64) (State, State)
	// Measure reports the protocol's progress measure on a
	// configuration — the number of leaders, tokens, or other witnesses.
	// The engine declares convergence when Measure reaches 1 and stays
	// there for Config.SilenceWindow consecutive super-steps.
	Measure(cfg []State) int
}

// RingProtocol is an agent-state machine driven by the synchronous ring
// scheduler: each super-step simultaneously replaces every agent's state
// with Update(self, pred, coin), where pred is the state of the agent's
// ring predecessor in the current configuration.
type RingProtocol interface {
	// Name identifies the protocol in traces and reports.
	Name() string
	// NeedsCoin reports whether this agent flips a coin this step. Coin
	// words are consumed from the owning shard's stream only when it
	// returns true, in ascending agent order within the shard.
	NeedsCoin(self, pred State) bool
	// Update maps (self, predecessor) to the agent's next state. coin is
	// a fresh uniform word when NeedsCoin reported true, and zero
	// otherwise.
	Update(self, pred State, coin uint64) State
	// Measure is the progress measure, as for PairProtocol.
	Measure(cfg []State) int
}

// SuperStepStats is the per-super-step record streamed to Observers.
type SuperStepStats struct {
	Step         int // 1-based super-step index
	Interactions int // interactions applied this step (BatchSize, or N for rings)
	Changed      int // agent-state writes that changed a state this step
	Measure      int // protocol progress measure after this step
}

// Observer consumes per-super-step statistics online.
type Observer interface {
	OnSuperStep(SuperStepStats)
}

// InteractionObserver is an optional extension of Observer: when the
// configured Observer also implements it, the pair driver reports every
// applied interaction, in the deterministic application order. (The ring
// driver does not emit per-interaction events; its super-step IS the
// interaction.)
type InteractionObserver interface {
	OnInteraction(step, initiator, responder int)
}

// Config describes one population-protocol run. Exactly one of Pair and
// Ring must be set; it selects the scheduler.
type Config struct {
	N    int          // number of agents
	Pair PairProtocol // uniform random ordered-pair scheduler
	Ring RingProtocol // synchronous ring scheduler

	// Init maps an agent index to its initial state; coin is a fresh
	// uniform word from the run's dedicated init stream. Nil starts every
	// agent in the zero state. Self-stabilizing protocols are exercised
	// from adversarial Inits.
	Init func(i, n int, coin uint64) State

	RNG *xrand.Rand // master stream for the run; nil seeds a default

	MaxSteps      int // super-step budget; 0 selects a per-scheduler default
	BatchSize     int // pair interactions per super-step; 0 means N
	SilenceWindow int // consecutive steps confirming convergence/silence; 0 means 3

	Workers int // sched worker goroutines; 0 or 1 inline, WorkersAuto = GOMAXPROCS
	Shards  int // shard count (fixes the trace); 0 means sched.DefaultShards

	// DisableFastPath forces the reference interface-dispatch path even
	// when the protocol is table-compilable. The fast path is bit-identical
	// to the reference path (the fastpath tests pin this), so the switch
	// exists for cross-validation and benchmarking, not as a correctness
	// escape hatch — the same discipline as the phone-call engine's flag.
	DisableFastPath bool

	Observer Observer    // optional per-super-step (and per-interaction) hook
	Halt     func() bool // optional cooperative cancellation, polled per step
}

// Result summarises one run.
type Result struct {
	Steps        int   // super-steps executed
	Interactions int64 // total interactions applied
	Measure      int   // final progress measure
	Converged    bool  // measure reached 1 and held for SilenceWindow steps
	ConvergedAt  int   // first step of the sustained measure-1 run (-1 if never)
	// ConvergedInteractions is the cumulative interaction count at
	// ConvergedAt — the natural convergence-time unit of the
	// population-protocol literature.
	ConvergedInteractions int64
	Silent                bool    // no state changed for SilenceWindow steps
	Final                 []State // final configuration (owned by the caller)
}

// DefaultSilenceWindow is the confirmation window used when
// Config.SilenceWindow is 0: measure 1 (or zero changes) must hold for
// this many consecutive super-steps before the run halts.
const DefaultSilenceWindow = 3

// PairDraw is one pre-drawn interaction: the ordered pair and its coin
// word. Draws are state-independent, which is what lets the drawing
// phase run concurrently while transitions apply sequentially. The type
// is xrand's batched draw record, so the fast path's FillPairDraws block
// sampler, the reference scalar loop, and BatchProtocol.ApplyPairs all
// share the same buffers.
type PairDraw = xrand.PairDraw

// pairDraw is the engine-internal spelling of PairDraw.
type pairDraw = PairDraw

// popShard owns one slice of each super-step's work: a contiguous
// interaction quota [qlo, qhi) for the pair driver, the contiguous agent
// range [lo, hi) for the ring driver, and the shard's own PRNG stream.
type popShard struct {
	stream   *xrand.Rand
	qlo, qhi int // interaction quota (pair driver)
	lo, hi   int // agent range (ring driver)
	pairs    []pairDraw
	changed  int
}

type engine struct {
	cfg     Config
	n       int
	states  []State
	next    []State // ring double buffer
	shards  []popShard
	workers int

	interactions int64

	// Fast-path state; see fastpath.go for the compilation rules. fast
	// selects the batched-draw/specialised-apply step functions; the
	// remaining fields engage independently per protocol capability.
	fast        bool
	table       []uint64 // compiled pair transition table (nil = interface dispatch)
	tshift      uint32   // state index shift: entry index is ((a<<tshift)|b)<<tcoin | coin bits
	tcoin       uint32   // coin bits folded into the table index
	counts      []int64  // incremental occupancy vector (nil = O(n) measure scan)
	countsProto CountsProtocol
	batch       BatchProtocol // devirtualised whole-block apply (nil = per-pair dispatch)
	ringNeeds   []bool        // compiled RingProtocol.NeedsCoin table
	ringUpd     []State       // compiled RingProtocol.Update table
}

// Run executes one population-protocol run to convergence, silence, or
// the step budget.
func Run(cfg Config) (Result, error) {
	e, err := newEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	return e.run(), nil
}

func newEngine(cfg Config) (*engine, error) {
	if (cfg.Pair == nil) == (cfg.Ring == nil) {
		return nil, errors.New("population: exactly one of Config.Pair and Config.Ring must be set")
	}
	minN := 1
	if cfg.Pair != nil {
		minN = 2 // an ordered pair needs two distinct agents
	}
	if cfg.N < minN {
		return nil, errors.New("population: Config.N too small for the selected scheduler")
	}
	if cfg.RNG == nil {
		cfg.RNG = xrand.New(0)
	}
	if cfg.Shards == 0 {
		cfg.Shards = sched.DefaultShards
	}
	if cfg.Shards < 1 {
		return nil, errors.New("population: Config.Shards must be positive")
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = cfg.N
	}
	if cfg.BatchSize < 1 {
		return nil, errors.New("population: Config.BatchSize must be positive")
	}
	if cfg.SilenceWindow == 0 {
		cfg.SilenceWindow = DefaultSilenceWindow
	}
	if cfg.MaxSteps == 0 {
		if cfg.Pair != nil {
			// ~256·log2(n) super-steps of BatchSize interactions: a
			// generous Θ(n log n)-interaction budget at BatchSize = n.
			cfg.MaxSteps = 256 * bits.Len(uint(cfg.N))
		} else {
			// Herman-style rings converge in O(n²) expected steps
			// (conjectured 4n²/27); 2n² leaves ample slack.
			cfg.MaxSteps = 2 * cfg.N * cfg.N
		}
	}

	e := &engine{cfg: cfg, n: cfg.N}
	e.states = make([]State, e.n)
	if cfg.Ring != nil {
		e.next = make([]State, e.n)
	}

	// Seeding order is part of the trace contract: the init stream is the
	// first Split of the master, then shard i's stream is the (i+1)-th.
	// Neither depends on Workers, so neither does the trace.
	initStream := cfg.RNG.Split()
	if cfg.Init != nil {
		for i := range e.states {
			e.states[i] = cfg.Init(i, e.n, initStream.Uint64())
		}
	}
	e.shards = make([]popShard, cfg.Shards)
	for i := range e.shards {
		sh := &e.shards[i]
		sh.stream = cfg.RNG.Split()
		sh.qlo, sh.qhi = sched.Bounds(i, cfg.BatchSize, cfg.Shards)
		sh.lo, sh.hi = sched.Bounds(i, e.n, cfg.Shards)
		if cfg.Pair != nil {
			// Preallocate the interaction quota once, here, so no super-step
			// — first included — grows the buffer via append: the engine's
			// steady state is allocation-free (the fastpath tests guard it).
			sh.pairs = make([]pairDraw, 0, sh.qhi-sh.qlo)
		}
	}
	e.workers = sched.Resolve(cfg.Workers, cfg.Shards)
	e.compileFastPath()
	return e, nil
}

func (e *engine) measure() int {
	if e.counts != nil {
		// The incremental occupancy vector is kept exact under Init and
		// every applied transition, so the O(states) fold replaces the
		// O(n) scan with the same value (the cross-check test pins this).
		return e.countsProto.MeasureCounts(e.counts)
	}
	if e.cfg.Pair != nil {
		return e.cfg.Pair.Measure(e.states)
	}
	return e.cfg.Ring.Measure(e.states)
}

func (e *engine) run() Result {
	res := Result{ConvergedAt: -1}
	window := e.cfg.SilenceWindow

	// runLen counts consecutive super-steps (the initial configuration
	// counts as step 0) at measure 1; quiet counts consecutive steps with
	// no state change.
	runLen, quiet := 0, 0
	runStartStep := 0
	var runStartInteractions int64
	if e.measure() == 1 {
		runLen = 1
	}

	for step := 1; step <= e.cfg.MaxSteps; step++ {
		var inter, changed int
		if e.cfg.Pair != nil {
			inter, changed = e.pairStep(step)
		} else {
			inter, changed = e.ringStep()
		}
		e.interactions += int64(inter)
		res.Steps = step

		m := e.measure()
		if obs := e.cfg.Observer; obs != nil {
			obs.OnSuperStep(SuperStepStats{Step: step, Interactions: inter, Changed: changed, Measure: m})
		}

		if m == 1 {
			if runLen == 0 {
				runStartStep = step
				runStartInteractions = e.interactions
			}
			runLen++
		} else {
			runLen = 0
		}
		if changed == 0 {
			quiet++
		} else {
			quiet = 0
		}

		if runLen >= window {
			res.Converged = true
			break
		}
		if quiet >= window {
			res.Silent = true
			// A silent configuration at measure 1 is converged forever,
			// even if the measure-1 run is younger than the window.
			res.Converged = runLen > 0
			break
		}
		if e.cfg.Halt != nil && e.cfg.Halt() {
			break
		}
	}

	if res.Converged {
		res.ConvergedAt = runStartStep
		res.ConvergedInteractions = runStartInteractions
	}
	res.Interactions = e.interactions
	res.Measure = e.measure()
	res.Final = e.states
	return res
}

// pairStep runs one super-step of the pair driver: every shard draws its
// interaction quota from its own stream (concurrently when Workers > 1),
// then the coordinator applies all drawn transitions sequentially in
// shard order. Because draws are state-independent, both phases produce
// the same trace at every worker count. When the fast path is compiled
// (fastpath.go) both phases run their batched/devirtualised twins —
// bit-identical, so the dispatch here is invisible in every trace.
func (e *engine) pairStep(step int) (interactions, changed int) {
	if e.fast {
		return e.fastPairStep(step)
	}
	if e.workers <= 1 {
		for i := range e.shards {
			e.drawPairs(&e.shards[i])
		}
	} else {
		sched.Pool(e.workers, len(e.shards), func(i int) { e.drawPairs(&e.shards[i]) })
	}
	return e.applyPairs(step)
}

// applyPairs is the reference apply phase: one interface call per drawn
// interaction, in shard order. The fast path reuses it verbatim when an
// InteractionObserver is attached (the per-interaction callback dominates
// the loop there anyway).
func (e *engine) applyPairs(step int) (interactions, changed int) {
	iobs, _ := e.cfg.Observer.(InteractionObserver)
	proto := e.cfg.Pair
	for i := range e.shards {
		for _, d := range e.shards[i].pairs {
			sa, sb := e.states[d.A], e.states[d.B]
			na, nb := proto.Transition(sa, sb, d.Coin)
			if na != sa {
				e.states[d.A] = na
				changed++
			}
			if nb != sb {
				e.states[d.B] = nb
				changed++
			}
			interactions++
			if iobs != nil {
				iobs.OnInteraction(step, int(d.A), int(d.B))
			}
		}
	}
	return interactions, changed
}

// drawPairs fills a shard's pre-drawn interaction buffer: ordered pairs
// of distinct agents, uniform over the n·(n−1) possibilities, plus one
// coin word each — all from the shard's own stream.
func (e *engine) drawPairs(sh *popShard) {
	sh.pairs = sh.pairs[:0]
	n := e.n
	for j := sh.qlo; j < sh.qhi; j++ {
		a := sh.stream.IntN(n)
		b := sh.stream.IntN(n - 1)
		if b >= a {
			b++
		}
		sh.pairs = append(sh.pairs, pairDraw{A: int32(a), B: int32(b), Coin: sh.stream.Uint64()})
	}
}

// ringStep runs one synchronous ring super-step: each shard computes the
// next state of its own agent range into the double buffer (disjoint
// writes, so passes may run concurrently), drawing coin words from its
// stream only where the protocol flips one; then the buffers swap.
func (e *engine) ringStep() (interactions, changed int) {
	switch {
	case e.ringUpd != nil && e.workers <= 1:
		for i := range e.shards {
			e.ringPassTable(&e.shards[i])
		}
	case e.ringUpd != nil:
		sched.Pool(e.workers, len(e.shards), func(i int) { e.ringPassTable(&e.shards[i]) })
	case e.workers <= 1:
		for i := range e.shards {
			e.ringPass(&e.shards[i])
		}
	default:
		sched.Pool(e.workers, len(e.shards), func(i int) { e.ringPass(&e.shards[i]) })
	}
	for i := range e.shards {
		changed += e.shards[i].changed
	}
	e.states, e.next = e.next, e.states
	return e.n, changed
}

func (e *engine) ringPass(sh *popShard) {
	proto := e.cfg.Ring
	n := e.n
	sh.changed = 0
	for v := sh.lo; v < sh.hi; v++ {
		self := e.states[v]
		pred := e.states[(v-1+n)%n]
		var coin uint64
		if proto.NeedsCoin(self, pred) {
			coin = sh.stream.Uint64()
		}
		nv := proto.Update(self, pred, coin)
		e.next[v] = nv
		if nv != self {
			sh.changed++
		}
	}
}
