// The population engine's fast path: table-compiled transitions, an
// incremental occupancy measure, and batched pair draws.
//
// The two-path contract mirrors the phone-call engine's (see DESIGN.md,
// "Two-path engine contract"): the reference path is the plain
// interface-dispatch loop in population.go, the fast path below is pinned
// bit-identical to it — same streams, same trace, same observer events —
// for every Workers × Shards combination, and Config.DisableFastPath
// forces the reference path for cross-validation and benchmarking. The
// fast path engages automatically; its three components engage
// independently, by protocol capability:
//
//   - Batched draws (always, pair driver): each shard's interaction quota
//     is filled by xrand.FillPairDraws, which keeps the xoshiro state in
//     registers for the whole block and consumes the stream exactly as
//     the scalar IntN/IntN/Uint64 loop would.
//   - Devirtualised transitions (TableProtocol): when the declared state
//     space fits (StateBound ≤ MaxTableStates) and the declared coin
//     arity is small, Transition is compiled into a flat dense []uint64
//     table indexed by ((a<<k)|b)<<c | coin-bits, each word packing the
//     next pair plus its changed-agent count — the apply loop's interface
//     call becomes a slice load. RingTableProtocol is the synchronous
//     twin: NeedsCoin and Update compile into tables the ring pass
//     indexes the same way.
//   - Incremental measure (CountsProtocol): the engine keeps an exact
//     per-state occupancy vector under Init and every applied transition,
//     so the per-super-step Measure becomes an O(states) fold
//     (MeasureCounts) instead of an O(n) configuration scan.
//
// A protocol that misdeclares its bounds cannot corrupt the run: the
// compiler verifies every initial state and every table output against
// StateBound and declines (falling back to the reference behaviour of
// that component) on any violation, so table indices stay in range by
// induction.
package population

import (
	"math/bits"

	"regcast/internal/sched"
)

// TableProtocol is the optional PairProtocol extension behind the
// devirtualised fast path: protocols with a small declared state space
// and coin arity have their Transition compiled into a dense lookup
// table at engine construction.
type TableProtocol interface {
	PairProtocol
	// StateBound returns S: every state Init emits and Transition returns
	// is < S. The transition table engages when S <= MaxTableStates.
	StateBound() int
	// CoinBits returns c, the coin arity: Transition consults only the
	// low c bits of its coin word (0 for deterministic protocols). Coin
	// words are always drawn in full, so declaring c never changes the
	// stream — only how many coin columns the table needs.
	CoinBits() int
}

// CountsProtocol is the optional measure-through-occupancy extension: a
// protocol whose Measure factors through the per-state occupancy vector
// implements MeasureCounts, and the engine replaces the O(n) per-step
// configuration scan with an incrementally maintained counts vector and
// an O(states) fold. MeasureCounts(counts) must equal Measure(cfg)
// whenever counts is the exact occupancy of cfg.
type CountsProtocol interface {
	StateBound() int
	MeasureCounts(counts []int64) int
}

// RingTableProtocol is TableProtocol's synchronous twin for the ring
// driver: NeedsCoin and Update compile into dense tables. Update must
// consult only the low CoinBits bits of its coin word.
type RingTableProtocol interface {
	RingProtocol
	StateBound() int
	CoinBits() int
}

// BatchProtocol is the devirtualisation hook for pair protocols whose
// state space is too large to table-compile (LeaderElection carries 25
// state bits, so a dense table is off the menu): ApplyPairs applies
// Transition to every pre-drawn pair in slice order, in place, and
// returns how many agent states changed. Implementations must be
// observationally identical to calling Transition per pair — the
// fast≡reference matrix tests pin this — which lets the concrete
// transition logic inline into one tight loop instead of paying an
// interface call per interaction. It engages only when the incremental
// counts vector is not in play (ApplyPairs does not maintain counts).
type BatchProtocol interface {
	PairProtocol
	ApplyPairs(states []State, pairs []PairDraw) (changed int)
}

const (
	// MaxTableStates is the largest declared state space the table
	// compiler accepts: 256 states fill a 64K-entry (512 KiB) table at
	// coin arity 0, comfortably cache-resident.
	MaxTableStates = 256
	// maxTableCoinBits caps the coin columns per (a, b) cell.
	maxTableCoinBits = 8
	// maxTableBits caps the total table index width (2k+c), bounding the
	// table at 1<<20 words = 8 MiB.
	maxTableBits = 20
	// maxCountsStates caps the incremental occupancy vector (512 KiB of
	// int64 at the cap); the counts path needs no table, so it accepts
	// wider state spaces than the transition compiler.
	maxCountsStates = 1 << 16
	// fuseBlock is the single-threaded draw/apply interleave grain: small
	// enough that a block of PairDraws lives in L1 between fill and apply,
	// large enough to amortise the two calls per block.
	fuseBlock = 256
)

// compileFastPath decides, once, at construction, which fast-path
// components this run can use. It never changes a trace: every compiled
// component is bit-identical to the reference behaviour it replaces.
func (e *engine) compileFastPath() {
	if e.cfg.DisableFastPath {
		return
	}
	if e.cfg.Ring != nil {
		e.compileRingTable()
		return
	}
	e.fast = true // batched draws engage for every pair protocol
	if _, ok := e.cfg.Observer.(InteractionObserver); ok {
		// Per-interaction observation keeps the reference apply loop (the
		// callback dominates it) and the scan measure (counts are
		// maintained only by the specialised apply loops).
		return
	}
	e.compileCounts()
	e.compileTable()
	if e.table == nil && e.counts == nil {
		e.batch, _ = e.cfg.Pair.(BatchProtocol)
	}
}

// compileCounts engages the incremental occupancy vector when the
// protocol supports it and the initial configuration respects the
// declared bound.
func (e *engine) compileCounts() {
	cp, ok := e.cfg.Pair.(CountsProtocol)
	if !ok {
		return
	}
	s := cp.StateBound()
	if s < 1 || s > maxCountsStates {
		return
	}
	bound := State(s)
	counts := make([]int64, s)
	for _, st := range e.states {
		if st >= bound {
			return // Init escaped the declared space: keep the scan
		}
		counts[st]++
	}
	e.counts, e.countsProto = counts, cp
}

// compileTable compiles PairProtocol.Transition into the dense table.
func (e *engine) compileTable() {
	tp, ok := e.cfg.Pair.(TableProtocol)
	if !ok {
		return
	}
	s, c := tp.StateBound(), tp.CoinBits()
	if s < 1 || s > MaxTableStates || c < 0 || c > maxTableCoinBits {
		return
	}
	k := uint(bits.Len(uint(s - 1)))
	if 2*k+uint(c) > maxTableBits {
		return
	}
	bound := State(s)
	for _, st := range e.states {
		if st >= bound {
			return
		}
	}
	table := make([]uint64, 1<<(2*k+uint(c)))
	for a := 0; a < s; a++ {
		for b := 0; b < s; b++ {
			for coin := 0; coin < 1<<c; coin++ {
				na, nb := tp.Transition(State(a), State(b), uint64(coin))
				if na >= bound || nb >= bound {
					return // Transition escaped the declared space
				}
				w := uint64(na) | uint64(nb)<<8
				if na != State(a) {
					w += 1 << 16
				}
				if nb != State(b) {
					w += 1 << 16
				}
				table[((a<<k)|b)<<c|coin] = w
			}
		}
	}
	e.table = table
	e.tshift = uint32(k)
	e.tcoin = uint32(c)
}

// compileRingTable compiles RingProtocol.NeedsCoin and .Update into
// dense tables for the synchronous driver.
func (e *engine) compileRingTable() {
	tp, ok := e.cfg.Ring.(RingTableProtocol)
	if !ok {
		return
	}
	s, c := tp.StateBound(), tp.CoinBits()
	if s < 1 || s > MaxTableStates || c < 0 || c > maxTableCoinBits {
		return
	}
	k := uint(bits.Len(uint(s - 1)))
	if 2*k+uint(c) > maxTableBits {
		return
	}
	bound := State(s)
	for _, st := range e.states {
		if st >= bound {
			return
		}
	}
	needs := make([]bool, 1<<(2*k))
	upd := make([]State, 1<<(2*k+uint(c)))
	for self := 0; self < s; self++ {
		for pred := 0; pred < s; pred++ {
			si := (self << k) | pred
			needs[si] = tp.NeedsCoin(State(self), State(pred))
			for coin := 0; coin < 1<<c; coin++ {
				nv := tp.Update(State(self), State(pred), uint64(coin))
				if nv >= bound {
					return
				}
				upd[si<<c|coin] = nv
			}
		}
	}
	e.ringNeeds, e.ringUpd = needs, upd
	e.tshift = uint32(k)
	e.tcoin = uint32(c)
	e.fast = true
}

// fastPairStep is pairStep's fast twin: batched draws, then the most
// specialised apply loop the compiled components allow. Single-threaded
// runs fuse the two phases per shard — the shard's pair block is drawn
// and applied while still cache-resident instead of round-tripping the
// whole super-step's buffers through memory; with workers the draw
// phase fans out first, exactly like the reference path. Both shapes
// consume the per-shard streams identically, so the trace cannot
// depend on the choice.
func (e *engine) fastPairStep(step int) (interactions, changed int) {
	if _, ok := e.cfg.Observer.(InteractionObserver); ok {
		// Per-interaction observation keeps the reference apply loop;
		// only the batched draws engage.
		if e.workers <= 1 {
			for i := range e.shards {
				e.fastDrawPairs(&e.shards[i])
			}
		} else {
			sched.Pool(e.workers, len(e.shards), func(i int) { e.fastDrawPairs(&e.shards[i]) })
		}
		return e.applyPairs(step)
	}
	if e.workers <= 1 {
		// Fused draw/apply in micro-blocks: one xoshiro stream is a
		// serial dependency chain (~12 cycles per pair), so a separate
		// draw phase is latency-bound while the apply phase is
		// throughput-bound. Alternating small blocks lets the
		// out-of-order core overlap the next block's generator chain
		// with the previous block's apply work, and the block stays in
		// L1 between fill and apply. Stream consumption and apply order
		// are exactly those of the phase-separated shape, so the trace
		// cannot depend on the choice.
		for i := range e.shards {
			sh := &e.shards[i]
			q := sh.qhi - sh.qlo
			sh.pairs = sh.pairs[:q]
			interactions += q
			for off := 0; off < q; off += fuseBlock {
				end := off + fuseBlock
				if end > q {
					end = q
				}
				blk := sh.pairs[off:end]
				sh.stream.FillPairDraws(blk, e.n)
				changed += e.applyShardFast(blk)
			}
		}
		return interactions, changed
	}
	sched.Pool(e.workers, len(e.shards), func(i int) { e.fastDrawPairs(&e.shards[i]) })
	for i := range e.shards {
		pairs := e.shards[i].pairs
		interactions += len(pairs)
		changed += e.applyShardFast(pairs)
	}
	return interactions, changed
}

// applyShardFast applies one shard's pre-drawn block through the most
// specialised loop available. Transitions always apply sequentially in
// shard order — only drawing parallelises — so this is called from one
// goroutine.
func (e *engine) applyShardFast(pairs []pairDraw) int {
	switch {
	case e.table != nil && e.counts != nil:
		return applyTableShardCounts(pairs, e.states, e.table, e.counts, e.tshift, e.tcoin, uint32(1)<<e.tcoin-1)
	case e.table != nil:
		return applyTableShard(pairs, e.states, e.table, e.tshift, e.tcoin, uint32(1)<<e.tcoin-1)
	case e.batch != nil:
		return e.batch.ApplyPairs(e.states, pairs)
	case e.counts != nil:
		return applyShardCounts(pairs, e.states, e.counts, e.cfg.Pair)
	default:
		return applyShard(pairs, e.states, e.cfg.Pair)
	}
}

// fastDrawPairs fills a shard's full quota through the block sampler —
// the same stream consumption as drawPairs, with the generator state in
// registers across the block.
func (e *engine) fastDrawPairs(sh *popShard) {
	sh.pairs = sh.pairs[:sh.qhi-sh.qlo]
	sh.stream.FillPairDraws(sh.pairs, e.n)
}

// applyShard is the fast apply loop for protocols without a compiled
// table: still one Transition interface call per interaction, but over
// a pre-drawn block with unconditional stores. The per-shard apply
// helpers are free functions with minimal live state so the hot loops
// stay register-resident — the out-of-order window then spans enough
// iterations to overlap the uniform-random state misses on its own.
func applyShard(pairs []pairDraw, states []State, proto PairProtocol) (changed int) {
	for j := range pairs {
		d := pairs[j]
		sa, sb := states[d.A], states[d.B]
		na, nb := proto.Transition(sa, sb, d.Coin)
		states[d.A] = na
		states[d.B] = nb
		changed += b2i(na != sa) + b2i(nb != sb)
	}
	return changed
}

func applyShardCounts(pairs []pairDraw, states []State, counts []int64, proto PairProtocol) (changed int) {
	for j := range pairs {
		d := pairs[j]
		sa, sb := states[d.A], states[d.B]
		na, nb := proto.Transition(sa, sb, d.Coin)
		states[d.A] = na
		states[d.B] = nb
		if na != sa || nb != sb {
			changed += b2i(na != sa) + b2i(nb != sb)
			// The ±1 pair for an agent that did not change cancels
			// itself, so updating both agents under one branch is exact;
			// skipping fully quiet interactions keeps the counter
			// read-modify-write chains off the quiescent-phase hot loop.
			counts[sa]--
			counts[na]++
			counts[sb]--
			counts[nb]++
		}
	}
	return changed
}

// applyTableShard is the devirtualised apply loop: the interface call
// becomes a load from the compiled table, with the changed-agent count
// packed in the same word.
func applyTableShard(pairs []pairDraw, states []State, table []uint64, k, c, cmask uint32) (changed int) {
	for j := range pairs {
		d := pairs[j]
		sa, sb := states[d.A], states[d.B]
		w := table[(sa<<k|sb)<<c|State(uint32(d.Coin)&cmask)]
		na, nb := State(w&0xFF), State(w>>8&0xFF)
		states[d.A] = na
		states[d.B] = nb
		changed += int(w >> 16 & 3)
	}
	return changed
}

func applyTableShardCounts(pairs []pairDraw, states []State, table []uint64, counts []int64, k, c, cmask uint32) (changed int) {
	for j := range pairs {
		d := pairs[j]
		sa, sb := states[d.A], states[d.B]
		w := table[(sa<<k|sb)<<c|State(uint32(d.Coin)&cmask)]
		na, nb := State(w&0xFF), State(w>>8&0xFF)
		states[d.A] = na
		states[d.B] = nb
		if w>>16 != 0 {
			changed += int(w >> 16 & 3)
			counts[sa]--
			counts[na]++
			counts[sb]--
			counts[nb]++
		}
	}
	return changed
}

// ringPassTable is ringPass with the two interface calls per agent
// replaced by table loads, and the predecessor state carried across the
// iteration instead of re-read through a modulo index.
func (e *engine) ringPassTable(sh *popShard) {
	needs, upd := e.ringNeeds, e.ringUpd
	k, c := e.tshift, e.tcoin
	cmask := uint64(1)<<c - 1
	states, next := e.states, e.next
	n := e.n
	sh.changed = 0
	pred := states[(sh.lo-1+n)%n]
	for v := sh.lo; v < sh.hi; v++ {
		self := states[v]
		si := self<<k | pred
		var coin uint64
		if needs[si] {
			coin = sh.stream.Uint64()
		}
		nv := upd[uint64(si)<<c|coin&cmask]
		next[v] = nv
		sh.changed += b2i(nv != self)
		pred = self
	}
}

// b2i is the branchless bool-to-int the apply loops use for changed
// accounting (the compiler lowers it to a flag set, not a branch).
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
