// Herman's self-stabilizing token ring (synchronous coin-flip variant;
// analysed by Bruna, Grigore, Kiefer, Ouaknine, Worrell,
// arXiv:1504.01130): N agents on an odd ring each hold one bit x_i, and
// agent i is said to hold a token iff x_i == x_{i−1}. Every synchronous
// step, a token holder re-randomises its bit (the token then stays or
// merges with its successor's) while a non-holder copies its
// predecessor's bit. Any configuration of an odd ring carries an odd
// number of tokens — the count is N minus the (always even) number of
// bit changes around the ring — and token count never increases, so the
// protocol converges from every start to exactly one circulating token.
// The conjectured worst case (three equally spaced tokens) takes
// expected 4N²/27 steps.

package population

import "errors"

// Herman is the RingProtocol for Herman's token ring. State is the
// single bit x_i in bit 0.
type Herman struct {
	n int
}

// NewHerman builds the protocol for an n-agent ring; n must be odd (an
// even ring admits token-free configurations, which break
// self-stabilization) and at least 3.
func NewHerman(n int) (*Herman, error) {
	if n < 3 || n%2 == 0 {
		return nil, errors.New("population: Herman's ring needs an odd n >= 3")
	}
	return &Herman{n: n}, nil
}

// Name implements RingProtocol.
func (p *Herman) Name() string { return "herman-ring" }

// NeedsCoin implements RingProtocol: a coin is flipped exactly at token
// positions (x_i == x_{i−1}).
func (p *Herman) NeedsCoin(self, pred State) bool { return self&1 == pred&1 }

// Update implements RingProtocol: token holders take the coin bit,
// non-holders copy the predecessor.
func (p *Herman) Update(self, pred State, coin uint64) State {
	if self&1 == pred&1 {
		return State(coin & 1)
	}
	return pred & 1
}

// StateBound implements RingTableProtocol: states are the single bit.
func (p *Herman) StateBound() int { return 2 }

// CoinBits implements RingTableProtocol: Update consults one coin bit.
func (p *Herman) CoinBits() int { return 1 }

// Measure implements RingProtocol: the number of tokens.
func (p *Herman) Measure(cfg []State) int {
	n := len(cfg)
	tokens := 0
	for i := range cfg {
		if cfg[i]&1 == cfg[(i+n-1)%n]&1 {
			tokens++
		}
	}
	return tokens
}

// InitTokens builds an adversarial initial configuration with exactly k
// equally spaced tokens on an n-ring (k odd, 1 <= k <= n; k = 3 is the
// conjectured worst case). The bit string is constructed by walking the
// ring: a token position repeats the previous bit, a non-token position
// flips it; the wrap-around is consistent because n−k is even.
func InitTokens(n, k int) (func(i, n int, coin uint64) State, error) {
	if k < 1 || k > n || k%2 == 0 {
		return nil, errors.New("population: token count must be odd and within [1, n]")
	}
	token := make([]bool, n)
	for j := 0; j < k; j++ {
		token[j*n/k] = true
	}
	x := make([]State, n)
	x[0] = 0
	for i := 1; i < n; i++ {
		if token[i] {
			x[i] = x[i-1]
		} else {
			x[i] = 1 - x[i-1]
		}
	}
	return func(i, n int, coin uint64) State { return x[i] }, nil
}
