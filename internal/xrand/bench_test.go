package xrand

import (
	"fmt"
	"testing"
)

// BenchmarkDistinctK measures the k-distinct samplers in isolation, so
// sampler regressions are visible without running a full simulation. The
// grid covers the engine's real workloads: k in {1, 2, 4} (standard dial,
// two-choice, the paper's four-choice) at deg = 16 (the scale-bench
// degree, Fisher–Yates branch) and deg = 4095 (a complete-graph-like
// degree, rejection branch). "generic" is the DistinctK path the
// reference engine uses; "small" is the Distinct2/3/4 fast path (IntN for
// k = 1).
func BenchmarkDistinctK(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		for _, n := range []int{16, 4095} {
			b.Run(fmt.Sprintf("generic/k=%d/deg=%d", k, n), func(b *testing.B) {
				r := New(1)
				dst := make([]int, 0, k)
				scratch := make([]int, n)
				b.ReportAllocs()
				var sink int
				for i := 0; i < b.N; i++ {
					dst = r.DistinctK(dst, k, n, scratch)
					sink += dst[0]
				}
				_ = sink
			})
			b.Run(fmt.Sprintf("small/k=%d/deg=%d", k, n), func(b *testing.B) {
				r := New(1)
				b.ReportAllocs()
				var sink int
				for i := 0; i < b.N; i++ {
					switch k {
					case 1:
						sink += r.IntN(n)
					case 2:
						a, _ := r.Distinct2(n)
						sink += a
					case 4:
						a, _, _, _ := r.Distinct4(n)
						sink += a
					}
				}
				_ = sink
			})
		}
	}
}
