// Package xrand provides a small, fast, deterministic pseudo-random number
// generator together with the sampling primitives the simulator needs
// (k-distinct selection, shuffles, binomial and geometric variates).
//
// The generator is xoshiro256★★ seeded through SplitMix64, which gives
// high-quality 64-bit output from a single user-supplied seed and supports
// cheap "splitting": deriving independent child streams for per-node
// randomness in the concurrent runtime and for the per-shard streams of
// the sharded phone-call engine (internal/phonecall/parallel.go), whose
// reproducibility-across-worker-counts guarantee rests on Split being
// deterministic. All randomness in this repository flows through this
// package so that every simulation is reproducible from one seed; see
// DESIGN.md for the seeding discipline.
package xrand

import (
	"fmt"
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random generator. It is NOT safe for
// concurrent use; derive per-goroutine generators with Split.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances the given state and returns the next SplitMix64 output.
// It is used only for seeding, as recommended by the xoshiro authors.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *Rand {
	var r Rand
	r.Seed(seed)
	return &r
}

// Seed re-seeds the generator in place.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	r.s0 = splitMix64(&sm)
	r.s1 = splitMix64(&sm)
	r.s2 = splitMix64(&sm)
	r.s3 = splitMix64(&sm)
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
}

// Uint64 returns the next 64 random bits (xoshiro256★★ step).
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Split returns a new generator whose stream is statistically independent of
// the parent's. The child is seeded from the parent's output, so splitting is
// itself deterministic.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// SplitN derives n independent child generators in one deterministic pass.
// It is the seeding primitive of the batch replication engine: the children
// are precomputed in index order from the parent's stream, so child i is
// the same generator no matter how many workers later consume the slice —
// which is what makes replication ensembles bit-identical across worker
// counts.
func (r *Rand) SplitN(n int) []*Rand {
	out := make([]*Rand, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// PairDraw is one pre-drawn ordered-pair interaction: two distinct values
// in [0, n) and a raw 64-bit coin word. It is the record type of the
// population engine's batched draw path (FillPairDraws); the fields are
// int32 to keep the record at 16 bytes, one quarter of a cache line.
type PairDraw struct {
	A, B int32
	Coin uint64
}

// step256 advances one xoshiro256★★ state held in locals and returns the
// output word plus the successor state. It is the register-resident twin
// of (*Rand).Uint64 — same update, same output — written as a pure
// function of values so batched samplers can keep the generator state in
// registers across a whole block instead of loading and storing the four
// state words through the Rand pointer on every draw. Any change to
// Uint64 must be mirrored here (TestFillPairDrawsMatchesScalar pins the
// equivalence).
func step256(s0, s1, s2, s3 uint64) (res, t0, t1, t2, t3 uint64) {
	res = bits.RotateLeft64(s1*5, 7) * 9
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = bits.RotateLeft64(s3, 45)
	return res, s0, s1, s2, s3
}

// lemire maps a raw 64-bit word onto [0, n) by Lemire's multiply-shift,
// reporting whether the draw landed in the rejection window (lo < n) and
// must be resolved by lemireReject. Split from the rejection loop so the
// batched samplers keep the overwhelmingly common accept case branch-free
// and inline.
func lemire(x, n uint64) (v, lo uint64) {
	hi, lo := bits.Mul64(x, n)
	return hi, lo
}

// FillPairDraws fills dst with ordered pairs of distinct values in
// [0, n) — uniform over the n·(n−1) ordered pairs — plus one raw coin
// word each, consuming the stream EXACTLY as the per-element sequence
//
//	a := r.IntN(n); b := r.IntN(n-1); if b >= a { b++ }; coin := r.Uint64()
//
// would: same draws, same values, in the same order, including Lemire
// rejection re-draws. Callers can therefore switch between the scalar
// loop and this batched one without changing a run's trace. The batching
// win is mechanical: the xoshiro state lives in registers for the whole
// block and the two Lemire reductions inline, instead of three
// pointer-bound generator calls per element. It panics if n < 2.
func (r *Rand) FillPairDraws(dst []PairDraw, n int) {
	if n < 2 {
		panic(fmt.Sprintf("xrand: FillPairDraws called with n=%d", n))
	}
	un := uint64(n)
	un1 := un - 1
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := range dst {
		var x uint64
		x, s0, s1, s2, s3 = step256(s0, s1, s2, s3)
		a, lo := lemire(x, un)
		if lo < un { // rejection window: resolve with scalar re-draws
			r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
			a = r.lemireReject(a, lo, un)
			s0, s1, s2, s3 = r.s0, r.s1, r.s2, r.s3
		}
		x, s0, s1, s2, s3 = step256(s0, s1, s2, s3)
		b, lo := lemire(x, un1)
		if lo < un1 {
			r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
			b = r.lemireReject(b, lo, un1)
			s0, s1, s2, s3 = r.s0, r.s1, r.s2, r.s3
		}
		if b >= a {
			b++
		}
		var coin uint64
		coin, s0, s1, s2, s3 = step256(s0, s1, s2, s3)
		dst[i] = PairDraw{A: int32(a), B: int32(b), Coin: coin}
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// lemireReject resolves a Lemire draw that landed in the rejection
// window, exactly as the tail of Uint64N does.
func (r *Rand) lemireReject(hi, lo, n uint64) uint64 {
	thresh := -n % n
	for lo < thresh {
		hi, lo = bits.Mul64(r.Uint64(), n)
	}
	return hi
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("xrand: IntN called with n=%d", n))
	}
	return int(r.Uint64N(uint64(n)))
}

// Uint64N returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64N(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64N called with n=0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	default:
		return r.Float64() < p
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomises the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		swap(i, j)
	}
}

// DistinctK fills dst with k distinct uniform values from [0, n) and returns
// dst[:k]. It panics if k > n or k < 0. The selection is a partial
// Fisher-Yates over a caller-reusable scratch slice: if scratch has capacity
// >= n it is reused, avoiding allocation on hot paths.
//
// The returned values are in random order (each k-subset and each ordering
// is equally likely).
func (r *Rand) DistinctK(dst []int, k, n int, scratch []int) []int {
	if k < 0 || k > n {
		panic(fmt.Sprintf("xrand: DistinctK k=%d n=%d", k, n))
	}
	dst = dst[:0]
	if k == 0 {
		return dst
	}
	// For very sparse selection, rejection sampling beats O(n) setup.
	if rejectionRegime(k, n) {
		return r.distinctKRejection(dst, k, n)
	}
	if cap(scratch) < n {
		scratch = make([]int, n)
	}
	scratch = scratch[:n]
	for i := range scratch {
		scratch[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.IntN(n-i)
		scratch[i], scratch[j] = scratch[j], scratch[i]
		dst = append(dst, scratch[i])
	}
	return dst
}

// rejectionRegime reports whether a k-of-n distinct selection samples by
// rejection rather than partial Fisher–Yates. It is THE regime predicate:
// DistinctK and distinctSmall share it, which is what keeps the small-k
// samplers stream-compatible with DistinctK if the threshold is ever
// tuned. (Note for k <= 4 it reduces to n >= 64.)
func rejectionRegime(k, n int) bool {
	return n >= 64 && k*8 <= n
}

// distinctKRejection draws k distinct values by rejection; only used when k
// is small relative to n so the expected number of retries is O(1).
func (r *Rand) distinctKRejection(dst []int, k, n int) []int {
	for len(dst) < k {
		v := r.IntN(n)
		dup := false
		for _, u := range dst {
			if u == v {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, v)
		}
	}
	return dst
}

// distinctSmall fills out[:k] (k <= 4) with k distinct uniform values from
// [0, n), consuming the stream EXACTLY as DistinctK would: the same
// rejection-vs-Fisher–Yates branch condition and, per branch, the same
// draws in the same order. Callers can therefore switch between the two
// without changing a run's trace. Unlike DistinctK it never allocates:
// the rejection regime (the hot one — n >= 64 holds whenever k <= 4 and
// n >= 64) checks duplicates against out itself, and the small-n
// Fisher–Yates regime delegates to DistinctK over a stack scratch (n < 64
// is what makes that scratch fixed-size).
func (r *Rand) distinctSmall(out *[4]int, k, n int) {
	if k < 0 || k > n || k > 4 {
		panic(fmt.Sprintf("xrand: distinctSmall k=%d n=%d", k, n))
	}
	if rejectionRegime(k, n) {
		filled := 0
		for filled < k {
			v := r.IntN(n)
			dup := false
			for t := 0; t < filled; t++ {
				if out[t&3] == v {
					dup = true
					break
				}
			}
			if !dup {
				out[filled&3] = v
				filled++
			}
		}
		return
	}
	var scratch [64]int
	var dst [4]int
	copy(out[:], r.DistinctK(dst[:0], k, n, scratch[:]))
}

// Distinct2 returns two distinct uniform values from [0, n) without
// allocating. It is stream-compatible with DistinctK(dst, 2, n, scratch):
// same draws, same values, in the same order. It panics if n < 2.
func (r *Rand) Distinct2(n int) (a, b int) {
	var out [4]int
	r.distinctSmall(&out, 2, n)
	return out[0], out[1]
}

// Distinct3 is Distinct2 for three values. It panics if n < 3.
func (r *Rand) Distinct3(n int) (a, b, c int) {
	var out [4]int
	r.distinctSmall(&out, 3, n)
	return out[0], out[1], out[2]
}

// Distinct4 is Distinct2 for four values — the paper's four-choice dial.
// It panics if n < 4.
func (r *Rand) Distinct4(n int) (a, b, c, d int) {
	var out [4]int
	r.distinctSmall(&out, 4, n)
	return out[0], out[1], out[2], out[3]
}

// Binomial returns a Binomial(n, p) variate. For small n it sums Bernoulli
// trials; for large n it uses a normal approximation with continuity
// correction, clamped to [0, n]. The approximation is adequate for the
// statistical sanity checks in this repository (not for cryptography or
// exact tail computations).
func (r *Rand) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		c := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				c++
			}
		}
		return c
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	v := int(math.Round(mean + sd*r.NormFloat64()))
	if v < 0 {
		v = 0
	}
	if v > n {
		v = n
	}
	return v
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials (support {0, 1, 2, ...}). It panics if p <= 0 or p > 1.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("xrand: Geometric p=%v", p))
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Exp returns an exponential variate with rate lambda.
func (r *Rand) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic(fmt.Sprintf("xrand: Exp lambda=%v", lambda))
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / lambda
}
