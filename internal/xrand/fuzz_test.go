package xrand

import "testing"

// FuzzDistinctK drives DistinctK with arbitrary parameters and verifies
// the core contract: exactly k distinct in-range values, regardless of
// seed, k/n combination or scratch capacity.
func FuzzDistinctK(f *testing.F) {
	f.Add(uint64(1), uint16(4), uint16(16), uint8(0))
	f.Add(uint64(2), uint16(0), uint16(1), uint8(3))
	f.Add(uint64(3), uint16(100), uint16(100), uint8(50))
	f.Add(uint64(4), uint16(5), uint16(1000), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, kRaw, nRaw uint16, scratchCap uint8) {
		n := int(nRaw)%2000 + 1
		k := int(kRaw) % (n + 1)
		r := New(seed)
		scratch := make([]int, int(scratchCap))
		got := r.DistinctK(nil, k, n, scratch)
		if len(got) != k {
			t.Fatalf("len = %d, want %d", len(got), k)
		}
		seen := make(map[int]bool, k)
		for _, v := range got {
			if v < 0 || v >= n {
				t.Fatalf("value %d out of [0,%d)", v, n)
			}
			if seen[v] {
				t.Fatalf("duplicate %d", v)
			}
			seen[v] = true
		}
	})
}

// FuzzUint64N verifies range correctness of the Lemire reduction.
func FuzzUint64N(f *testing.F) {
	f.Add(uint64(1), uint64(1))
	f.Add(uint64(2), uint64(7))
	f.Add(uint64(3), uint64(1<<63))
	f.Fuzz(func(t *testing.T, seed, n uint64) {
		if n == 0 {
			return
		}
		r := New(seed)
		for i := 0; i < 16; i++ {
			if v := r.Uint64N(n); v >= n {
				t.Fatalf("Uint64N(%d) = %d", n, v)
			}
		}
	})
}
