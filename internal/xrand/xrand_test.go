package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverged: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatalf("split children collided at step %d", i)
		}
	}
}

func TestSplitNMatchesSequentialSplits(t *testing.T) {
	a := New(11)
	b := New(11)
	got := a.SplitN(5)
	for i := 0; i < 5; i++ {
		want := b.Split()
		for step := 0; step < 10; step++ {
			if g, w := got[i].Uint64(), want.Uint64(); g != w {
				t.Fatalf("SplitN child %d diverges from sequential Split at step %d: %d != %d", i, step, g, w)
			}
		}
	}
	// The parent streams must also agree afterwards.
	if a.Uint64() != b.Uint64() {
		t.Error("parent streams diverge after SplitN vs sequential splits")
	}
}

func TestSplitNEmpty(t *testing.T) {
	if out := New(1).SplitN(0); len(out) != 0 {
		t.Fatalf("SplitN(0) returned %d children", len(out))
	}
}

func TestIntNRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.IntN(n)
			if v < 0 || v >= n {
				t.Fatalf("IntN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestIntNUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.IntN(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestBoolEdgeCases(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / draws; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) empirical rate %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestDistinctKProperty(t *testing.T) {
	r := New(33)
	prop := func(seed uint64, kRaw, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw) % (n + 1)
		rr := New(seed)
		got := rr.DistinctK(nil, k, n, nil)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: nil}); err != nil {
		t.Error(err)
	}
	_ = r
}

func TestDistinctKFullSelection(t *testing.T) {
	r := New(44)
	got := r.DistinctK(nil, 10, 10, nil)
	seen := make([]bool, 10)
	for _, v := range got {
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("DistinctK(10,10) missing %d", i)
		}
	}
}

func TestDistinctKScratchReuse(t *testing.T) {
	r := New(55)
	scratch := make([]int, 16)
	dst := make([]int, 0, 4)
	for i := 0; i < 100; i++ {
		out := r.DistinctK(dst, 4, 16, scratch)
		if len(out) != 4 {
			t.Fatalf("len=%d", len(out))
		}
	}
}

func TestDistinctKUniformMarginals(t *testing.T) {
	// Each element of [0,n) should appear in a k-subset with probability k/n.
	r := New(66)
	const n, k, draws = 12, 4, 60000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		for _, v := range r.DistinctK(nil, k, n, nil) {
			counts[v]++
		}
	}
	want := float64(draws) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d chosen %d times, want about %v", i, c, want)
		}
	}
}

func TestDistinctKRejectionPath(t *testing.T) {
	// k*8 <= n and n >= 64 exercises the rejection branch.
	r := New(77)
	got := r.DistinctK(nil, 5, 1000, nil)
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 1000 || seen[v] {
			t.Fatalf("rejection path produced invalid sample %v", got)
		}
		seen[v] = true
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(88)
	cases := []struct {
		n int
		p float64
	}{{20, 0.5}, {50, 0.1}, {1000, 0.3}, {10000, 0.01}}
	for _, c := range cases {
		const draws = 3000
		sum := 0.0
		for i := 0; i < draws; i++ {
			v := r.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", c.n, c.p, v)
			}
			sum += float64(v)
		}
		mean := sum / draws
		want := float64(c.n) * c.p
		sd := math.Sqrt(want * (1 - c.p))
		if math.Abs(mean-want) > 6*sd/math.Sqrt(draws)*math.Sqrt(draws)*0.2+4*sd/math.Sqrt(draws) {
			// generous tolerance: 4 standard errors plus 20% of sd
			t.Errorf("Binomial(%d,%v) mean %v, want about %v", c.n, c.p, mean, want)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(99)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0,.5)=%d", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10,0)=%d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10,1)=%d", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(101)
	const p, draws = 0.25, 50000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / draws
	want := (1 - p) / p // 3
	if math.Abs(mean-want) > 0.15 {
		t.Errorf("Geometric(%v) mean %v want %v", p, mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(103)
	for i := 0; i < 50; i++ {
		if v := r.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(105)
	const lambda, draws = 2.0, 50000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.Exp(lambda)
		if v < 0 {
			t.Fatalf("Exp produced negative %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1/lambda) > 0.02 {
		t.Errorf("Exp(%v) mean %v want %v", lambda, mean, 1/lambda)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(107)
	const draws = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v", variance)
	}
}

func TestSeedAllZeroGuard(t *testing.T) {
	var r Rand
	r.Seed(0)
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		t.Fatal("all-zero internal state after Seed(0)")
	}
	// Must still produce varied output.
	a, b := r.Uint64(), r.Uint64()
	if a == b {
		t.Fatalf("degenerate output %d %d", a, b)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkDistinctK4of16(b *testing.B) {
	r := New(1)
	dst := make([]int, 0, 4)
	scratch := make([]int, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = r.DistinctK(dst, 4, 16, scratch)
	}
}

// TestFillPairDrawsMatchesScalar pins the batched pair sampler to the
// scalar draw sequence it documents: same stream consumption, same
// values, same final generator state. Small n values make Lemire
// rejections (probability n/2^64 per draw) unreachable either way, so
// the equivalence being tested is the register-resident step/reduce
// pipeline, including the b >= a adjustment.
func TestFillPairDrawsMatchesScalar(t *testing.T) {
	for _, n := range []int{2, 3, 7, 100, 1 << 20} {
		batched := New(uint64(n) * 77)
		scalar := New(uint64(n) * 77)

		dst := make([]PairDraw, 257)
		batched.FillPairDraws(dst, n)
		for i, d := range dst {
			a := scalar.IntN(n)
			b := scalar.IntN(n - 1)
			if b >= a {
				b++
			}
			coin := scalar.Uint64()
			if int(d.A) != a || int(d.B) != b || d.Coin != coin {
				t.Fatalf("n=%d draw %d: batched (%d,%d,%x) != scalar (%d,%d,%x)",
					n, i, d.A, d.B, d.Coin, a, b, coin)
			}
			if d.A == d.B {
				t.Fatalf("n=%d draw %d: pair not distinct", n, i)
			}
		}
		if b0, s0 := batched.Uint64(), scalar.Uint64(); b0 != s0 {
			t.Fatalf("n=%d: stream positions diverged after the block", n)
		}
	}
}
