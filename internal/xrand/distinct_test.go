package xrand

import (
	"fmt"
	"testing"
)

// TestDistinctSmallMatchesDistinctK is the stream-compatibility contract
// of the small-k samplers: for every k in {2,3,4} and every n from k up
// past the rejection threshold, DistinctN must return the same values as
// DistinctK AND leave the generator in the same state (checked by drawing
// one more word from both streams). This is what lets the phone-call fast
// path swap samplers without changing a run's trace.
func TestDistinctSmallMatchesDistinctK(t *testing.T) {
	sizes := []int{2, 3, 4, 5, 7, 8, 15, 16, 31, 63, 64, 65, 100, 1000}
	for k := 2; k <= 4; k++ {
		for _, n := range sizes {
			if n < k {
				continue
			}
			t.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(t *testing.T) {
				for seed := uint64(1); seed <= 50; seed++ {
					ra, rb := New(seed), New(seed)
					want := ra.DistinctK(nil, k, n, nil)
					var got [4]int
					switch k {
					case 2:
						got[0], got[1] = rb.Distinct2(n)
					case 3:
						got[0], got[1], got[2] = rb.Distinct3(n)
					case 4:
						got[0], got[1], got[2], got[3] = rb.Distinct4(n)
					}
					for i := 0; i < k; i++ {
						if got[i] != want[i] {
							t.Fatalf("seed %d: Distinct%d(%d)[%d] = %d, DistinctK = %d",
								seed, k, n, i, got[i], want[i])
						}
					}
					if ra.Uint64() != rb.Uint64() {
						t.Fatalf("seed %d: stream positions diverged after Distinct%d(%d)", seed, k, n)
					}
				}
			})
		}
	}
}

// TestDistinctSmallDistinctness checks the values really are distinct and
// in range on both branches (Fisher–Yates n < 64, rejection n >= 64).
func TestDistinctSmallDistinctness(t *testing.T) {
	r := New(9)
	for _, n := range []int{4, 5, 16, 64, 200} {
		for trial := 0; trial < 200; trial++ {
			a, b, c, d := r.Distinct4(n)
			vals := [4]int{a, b, c, d}
			for i, v := range vals {
				if v < 0 || v >= n {
					t.Fatalf("n=%d: value %d out of range", n, v)
				}
				for j := i + 1; j < 4; j++ {
					if v == vals[j] {
						t.Fatalf("n=%d: duplicate value %d at positions %d,%d", n, v, i, j)
					}
				}
			}
		}
	}
}

// TestDistinctSmallCoverage is a cheap uniformity smoke: over many draws
// of Distinct2 on a small range every ordered pair must appear. (The
// distributional guarantees proper are inherited from DistinctK through
// the draw-for-draw equivalence pinned above.)
func TestDistinctSmallCoverage(t *testing.T) {
	const n = 5
	r := New(11)
	seen := map[[2]int]int{}
	for trial := 0; trial < 4000; trial++ {
		a, b := r.Distinct2(n)
		seen[[2]int{a, b}]++
	}
	if len(seen) != n*(n-1) {
		t.Fatalf("saw %d ordered pairs, want %d", len(seen), n*(n-1))
	}
}

// TestDistinctSmallPanics pins the k > n guard.
func TestDistinctSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Distinct4(3) did not panic")
		}
	}()
	New(1).Distinct4(3)
}
