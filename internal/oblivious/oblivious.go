// Package oblivious provides the machinery behind experiment E4, the
// empirical companion to the paper's lower bound (Theorem 1): any strictly
// oblivious distributed O(log n)-time Monte Carlo broadcast in the
// standard one-choice phone call model needs Ω(n·log n / log d)
// transmissions on a random d-regular graph.
//
// A strictly oblivious algorithm is, per §2, one whose per-node decisions
// depend only on the current round and the round the node received the
// message. Such an algorithm with a fixed horizon H is fully described by
// two boolean tables indexed by round — whether informed nodes push and
// whether they pull — plus, in full generality, a dependence on the
// receipt round. Schedule captures the time-indexed form (the form all
// classical protocols take); the phonecall.Protocol interface itself
// captures the general form.
package oblivious

import (
	"fmt"
	"math"

	"regcast/internal/phonecall"
)

// Schedule is a strictly oblivious one-choice protocol given by per-round
// push/pull bits. Round t (1-based) pushes iff PushAt[t-1] and pulls iff
// PullAt[t-1].
type Schedule struct {
	ScheduleName string
	PushAt       []bool
	PullAt       []bool
}

var _ phonecall.Protocol = (*Schedule)(nil)

// NewSchedule validates and returns a schedule. The two tables must have
// equal, positive length.
func NewSchedule(name string, pushAt, pullAt []bool) (*Schedule, error) {
	if len(pushAt) == 0 || len(pushAt) != len(pullAt) {
		return nil, fmt.Errorf("oblivious: schedule %q tables must be equal length >= 1, got %d/%d",
			name, len(pushAt), len(pullAt))
	}
	return &Schedule{
		ScheduleName: name,
		PushAt:       append([]bool(nil), pushAt...),
		PullAt:       append([]bool(nil), pullAt...),
	}, nil
}

// Name implements phonecall.Protocol.
func (s *Schedule) Name() string { return "oblivious/" + s.ScheduleName }

// Choices implements phonecall.Protocol: the standard model dials one
// neighbour per round.
func (s *Schedule) Choices() int { return 1 }

// Horizon implements phonecall.Protocol.
func (s *Schedule) Horizon() int { return len(s.PushAt) }

// SendPush implements phonecall.Protocol.
func (s *Schedule) SendPush(t, informedAt int) bool {
	return t >= 1 && t <= len(s.PushAt) && s.PushAt[t-1]
}

// SendPull implements phonecall.Protocol.
func (s *Schedule) SendPull(t, informedAt int) bool {
	return t >= 1 && t <= len(s.PullAt) && s.PullAt[t-1]
}

// AlwaysPush returns the schedule that pushes in all of the given rounds.
func AlwaysPush(horizon int) (*Schedule, error) {
	push := make([]bool, horizon)
	for i := range push {
		push[i] = true
	}
	return NewSchedule("always-push", push, make([]bool, horizon))
}

// AlwaysPull returns the schedule that pulls in all of the given rounds.
func AlwaysPull(horizon int) (*Schedule, error) {
	pull := make([]bool, horizon)
	for i := range pull {
		pull[i] = true
	}
	return NewSchedule("always-pull", make([]bool, horizon), pull)
}

// AlwaysBoth returns the schedule that pushes and pulls in every round.
func AlwaysBoth(horizon int) (*Schedule, error) {
	both := make([]bool, horizon)
	for i := range both {
		both[i] = true
	}
	return NewSchedule("always-push-pull", both, append([]bool(nil), both...))
}

// PushThenPull pushes for the first switchAt rounds and pulls afterwards —
// the shape Karp et al. identified as optimal on complete graphs.
func PushThenPull(switchAt, horizon int) (*Schedule, error) {
	if switchAt < 0 || switchAt > horizon {
		return nil, fmt.Errorf("oblivious: switchAt=%d out of [0,%d]", switchAt, horizon)
	}
	push := make([]bool, horizon)
	pull := make([]bool, horizon)
	for i := range push {
		if i < switchAt {
			push[i] = true
		} else {
			pull[i] = true
		}
	}
	return NewSchedule(fmt.Sprintf("push-then-pull@%d", switchAt), push, pull)
}

// Alternating pushes in odd rounds and pulls in even rounds.
func Alternating(horizon int) (*Schedule, error) {
	push := make([]bool, horizon)
	pull := make([]bool, horizon)
	for i := range push {
		if i%2 == 0 {
			push[i] = true
		} else {
			pull[i] = true
		}
	}
	return NewSchedule("alternating", push, pull)
}

// TransmissionBound returns the Theorem 1 reference curve
// n·log₂(n)/log₂(d): the minimum transmission count (up to a constant) of
// any strictly oblivious O(log n)-time algorithm in the one-choice model.
func TransmissionBound(n, d int) float64 {
	if n < 2 || d < 2 {
		return 0
	}
	return float64(n) * math.Log2(float64(n)) / math.Log2(float64(d))
}
