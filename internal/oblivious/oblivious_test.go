package oblivious

import (
	"math"
	"testing"

	"regcast/internal/graph"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

func TestNewScheduleValidation(t *testing.T) {
	if _, err := NewSchedule("x", nil, nil); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := NewSchedule("x", make([]bool, 3), make([]bool, 4)); err == nil {
		t.Error("mismatched tables accepted")
	}
	s, err := NewSchedule("x", []bool{true}, []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if s.Horizon() != 1 || s.Choices() != 1 {
		t.Errorf("horizon=%d choices=%d", s.Horizon(), s.Choices())
	}
}

func TestScheduleIsDefensivelyCopied(t *testing.T) {
	push := []bool{true, true}
	pull := []bool{false, false}
	s, err := NewSchedule("copy", push, pull)
	if err != nil {
		t.Fatal(err)
	}
	push[0] = false
	if !s.SendPush(1, 0) {
		t.Error("schedule shares caller's backing array")
	}
}

func TestConstructors(t *testing.T) {
	ap, err := AlwaysPush(10)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt <= 10; tt++ {
		if !ap.SendPush(tt, 0) || ap.SendPull(tt, 0) {
			t.Fatalf("AlwaysPush wrong at round %d", tt)
		}
	}
	apl, err := AlwaysPull(10)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt <= 10; tt++ {
		if apl.SendPush(tt, 0) || !apl.SendPull(tt, 0) {
			t.Fatalf("AlwaysPull wrong at round %d", tt)
		}
	}
	both, err := AlwaysBoth(5)
	if err != nil {
		t.Fatal(err)
	}
	if !both.SendPush(3, 0) || !both.SendPull(3, 0) {
		t.Error("AlwaysBoth wrong")
	}
	alt, err := Alternating(4)
	if err != nil {
		t.Fatal(err)
	}
	if !alt.SendPush(1, 0) || alt.SendPull(1, 0) || alt.SendPush(2, 0) || !alt.SendPull(2, 0) {
		t.Error("Alternating wrong")
	}
}

func TestPushThenPull(t *testing.T) {
	s, err := PushThenPull(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt <= 3; tt++ {
		if !s.SendPush(tt, 0) || s.SendPull(tt, 0) {
			t.Fatalf("round %d should push only", tt)
		}
	}
	for tt := 4; tt <= 6; tt++ {
		if s.SendPush(tt, 0) || !s.SendPull(tt, 0) {
			t.Fatalf("round %d should pull only", tt)
		}
	}
	if _, err := PushThenPull(7, 6); err == nil {
		t.Error("switchAt > horizon accepted")
	}
	if _, err := PushThenPull(-1, 6); err == nil {
		t.Error("negative switchAt accepted")
	}
}

func TestOutOfRangeRoundsAreSilent(t *testing.T) {
	s, err := AlwaysBoth(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.SendPush(0, 0) || s.SendPush(4, 0) || s.SendPull(0, 0) || s.SendPull(4, 0) {
		t.Error("schedule active outside its horizon")
	}
}

func TestTransmissionBound(t *testing.T) {
	// n log₂ n / log₂ d at n=1024, d=4: 1024*10/2 = 5120.
	if b := TransmissionBound(1024, 4); math.Abs(b-5120) > 1e-9 {
		t.Errorf("bound = %v, want 5120", b)
	}
	if TransmissionBound(1, 4) != 0 || TransmissionBound(1024, 1) != 0 {
		t.Error("degenerate inputs should give 0")
	}
	// Larger d weakens the bound (log d in the denominator).
	if TransmissionBound(1024, 16) >= TransmissionBound(1024, 4) {
		t.Error("bound not decreasing in d")
	}
}

func TestSchedulesRunInEngine(t *testing.T) {
	g, err := graph.RandomRegular(256, 6, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	horizon := 3 * 8 // 3·log₂(256)
	mk := func(f func(int) (*Schedule, error)) *Schedule {
		s, err := f(horizon)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for _, s := range []*Schedule{mk(AlwaysPush), mk(AlwaysBoth)} {
		res, err := phonecall.Run(phonecall.Config{
			Topology: phonecall.NewStatic(g), Protocol: s, RNG: xrand.New(2),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllInformed {
			t.Errorf("%s informed %d/256", s.Name(), res.Informed)
		}
	}
}

func TestOneChoicePushPaysNearTheBound(t *testing.T) {
	// Theorem 1 in practice: a completing one-choice push run on G(n,d)
	// costs Ω(n log n / log d) transmissions. Check that the measured cost
	// is at least a 1/8 fraction of the reference curve (constants in the
	// theorem are generous) and of the right order.
	const n, d = 2048, 8
	g, err := graph.RandomRegular(n, d, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := AlwaysPush(3 * 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phonecall.Run(phonecall.Config{
		Topology: phonecall.NewStatic(g), Protocol: s, RNG: xrand.New(4), StopEarly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatal("push incomplete")
	}
	bound := TransmissionBound(n, d)
	if float64(res.Transmissions) < bound/8 {
		t.Errorf("transmissions %d below bound/8 = %v — lower bound violated?", res.Transmissions, bound/8)
	}
}
