package phonecall

import (
	"testing"

	"regcast/internal/xrand"
)

// shallowRNG implements only Uint64, not the full generator interface the
// multi engine needs; it must be rejected at construction.
type shallowRNG struct{}

func (shallowRNG) Uint64() uint64 { return 0 }

func TestTrackEdgeUseValidation(t *testing.T) {
	g := testGraph(t, 32, 4, 20)
	if _, err := NewEngine(Config{
		Topology: NewStatic(g), Protocol: pushProto{1, 10}, RNG: xrand.New(1),
		TrackEdgeUse: true, // RecordRounds missing
	}); err == nil {
		t.Error("TrackEdgeUse without RecordRounds accepted")
	}
}

func TestUnusedEdgeCensus(t *testing.T) {
	g := testGraph(t, 128, 6, 21)
	res, err := Run(Config{
		Topology: NewStatic(g), Protocol: pushProto{1, 40}, RNG: xrand.New(2),
		RecordRounds: true, TrackEdgeUse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := 128 + 1
	for _, rm := range res.PerRound {
		if rm.UnusedEdgeNodes > prev {
			t.Fatalf("U(t) increased at round %d: %d > %d", rm.Round, rm.UnusedEdgeNodes, prev)
		}
		if rm.UnusedEdgeNodes < 0 || rm.UnusedEdgeNodes > 128 {
			t.Fatalf("U(t) out of range at round %d: %d", rm.Round, rm.UnusedEdgeNodes)
		}
		prev = rm.UnusedEdgeNodes
	}
	first := res.PerRound[0].UnusedEdgeNodes
	if first < 126 {
		t.Errorf("after one push round U(1) = %d, should be nearly n", first)
	}
	last := res.PerRound[len(res.PerRound)-1].UnusedEdgeNodes
	if last >= first {
		t.Errorf("U(t) never decreased: first=%d last=%d", first, last)
	}
}

func TestSilentRunLeavesAllEdgesUnused(t *testing.T) {
	g := testGraph(t, 64, 4, 22)
	res, err := Run(Config{
		Topology: NewStatic(g), Protocol: silentProto{5}, RNG: xrand.New(3),
		RecordRounds: true, TrackEdgeUse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rm := range res.PerRound {
		if rm.UnusedEdgeNodes != 64 {
			t.Fatalf("silent run: U(%d) = %d, want 64", rm.Round, rm.UnusedEdgeNodes)
		}
	}
}

func TestMultiEngineValidation(t *testing.T) {
	g := testGraph(t, 32, 4, 23)
	topo := NewStatic(g)
	proto := pushProto{1, 10}
	rng := xrand.New(1)
	if _, err := NewMultiEngine(MultiConfig{Protocol: proto, RNG: rng, Rounds: 5}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := NewMultiEngine(MultiConfig{Topology: topo, Protocol: proto, RNG: rng, Rounds: 0}); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := NewMultiEngine(MultiConfig{Topology: topo, Protocol: proto, RNG: shallowRNG{}, Rounds: 5}); err == nil {
		t.Error("bad RNG accepted")
	}
	if _, err := NewMultiEngine(MultiConfig{
		Topology: topo, Protocol: proto, RNG: rng, Rounds: 5,
		Messages: []Message{{ID: 0, Origin: 99}},
	}); err == nil {
		t.Error("bad origin accepted")
	}
	if _, err := NewMultiEngine(MultiConfig{
		Topology: topo, Protocol: proto, RNG: rng, Rounds: 5,
		Messages: []Message{{ID: 0, Origin: 0, CreatedAt: -1}},
	}); err == nil {
		t.Error("negative creation round accepted")
	}
}

func TestMultiEngineSingleMessageMatchesSingleEngine(t *testing.T) {
	// A one-message multi run must complete like a single-engine run.
	g := testGraph(t, 128, 6, 24)
	proto := pushProto{1, 40}
	eng, err := NewMultiEngine(MultiConfig{
		Topology: NewStatic(g),
		Protocol: proto,
		Messages: []Message{{ID: 0, Origin: 0, CreatedAt: 0}},
		Rounds:   40,
		RNG:      xrand.New(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if len(res.PerMessage) != 1 {
		t.Fatal("missing message result")
	}
	mr := res.PerMessage[0]
	if !mr.AllInformed {
		t.Errorf("message informed %d/128", mr.Informed)
	}
	if mr.Transmissions == 0 || res.Transmissions != mr.Transmissions {
		t.Errorf("transmission accounting: %d vs %d", mr.Transmissions, res.Transmissions)
	}
	recv := eng.ReceivedAt(0)
	if recv[0] != 0 {
		t.Errorf("origin receipt round = %d, want 0", recv[0])
	}
}

func TestMultiEngineStaggeredCreation(t *testing.T) {
	g := testGraph(t, 128, 6, 25)
	proto := pushProto{2, 30}
	eng, err := NewMultiEngine(MultiConfig{
		Topology: NewStatic(g),
		Protocol: proto,
		Messages: []Message{
			{ID: 0, Origin: 0, CreatedAt: 0},
			{ID: 1, Origin: 64, CreatedAt: 10},
		},
		Rounds: 45,
		RNG:    xrand.New(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	for _, mr := range res.PerMessage {
		if !mr.AllInformed {
			t.Errorf("message %d informed %d/128", mr.Message.ID, mr.Informed)
		}
	}
	// The late message cannot have finished before it was created.
	if res.PerMessage[1].FirstAllInformed <= 10 {
		t.Errorf("late message finished at round %d", res.PerMessage[1].FirstAllInformed)
	}
	recv := eng.ReceivedAt(1)
	for v, r := range recv {
		if r != Uninformed && r != 10 && int(r) <= 10 && v != 64 {
			t.Errorf("node %d received late message at round %d", v, r)
		}
	}
}

func TestMultiEngineMessageInactiveAfterHorizon(t *testing.T) {
	// With horizon 2 and a sparse start, the message must freeze after age
	// 2: no receipts later than CreatedAt+2.
	g := testGraph(t, 256, 6, 26)
	proto := pushProto{1, 2}
	eng, err := NewMultiEngine(MultiConfig{
		Topology: NewStatic(g),
		Protocol: proto,
		Messages: []Message{{ID: 0, Origin: 0, CreatedAt: 3}},
		Rounds:   20,
		RNG:      xrand.New(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if res.PerMessage[0].AllInformed {
		t.Error("horizon-2 push cannot inform 256 nodes")
	}
	for v, r := range eng.ReceivedAt(0) {
		if r != Uninformed && int(r) > 3+2 {
			t.Errorf("node %d received frozen message at round %d", v, r)
		}
	}
}

func TestMultiEngineWithLossAndFailures(t *testing.T) {
	g := testGraph(t, 128, 6, 27)
	eng, err := NewMultiEngine(MultiConfig{
		Topology:           NewStatic(g),
		Protocol:           pushProto{2, 40},
		Messages:           []Message{{ID: 0, Origin: 0, CreatedAt: 0}, {ID: 1, Origin: 5, CreatedAt: 2}},
		Rounds:             45,
		RNG:                xrand.New(8),
		ChannelFailureProb: 0.2,
		MessageLossProb:    0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	for _, mr := range res.PerMessage {
		if !mr.AllInformed {
			t.Errorf("message %d informed %d/128 under moderate failures", mr.Message.ID, mr.Informed)
		}
	}
	if res.Transmissions != res.PerMessage[0].Transmissions+res.PerMessage[1].Transmissions {
		t.Error("transmission totals inconsistent")
	}
	if res.ChannelsDialed == 0 {
		t.Error("no channel accounting")
	}
}

func TestMultiEngineTotalLossSpreadsNothing(t *testing.T) {
	g := testGraph(t, 64, 6, 28)
	eng, err := NewMultiEngine(MultiConfig{
		Topology:        NewStatic(g),
		Protocol:        pushProto{1, 10},
		Messages:        []Message{{ID: 0, Origin: 3, CreatedAt: 0}},
		Rounds:          10,
		RNG:             xrand.New(9),
		MessageLossProb: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if res.PerMessage[0].Informed != 1 {
		t.Errorf("informed %d with total loss", res.PerMessage[0].Informed)
	}
	if res.PerMessage[0].Transmissions == 0 {
		t.Error("transmissions should still be counted under loss")
	}
}
