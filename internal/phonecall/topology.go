// Package phonecall implements the (modified) random phone call model of
// Karp et al. as used by Berenbrink, Elsässer & Friedetzky: in every
// synchronous round each node dials k distinct neighbours, establishing
// bidirectional channels; informed nodes may then push (transmit over the
// channels they dialled) and/or pull (transmit over the channels on which
// they were dialled). The engine counts message transmissions and opened
// channels, injects channel failures and message loss, and supports both a
// frozen graph and a churning overlay through the Topology interface.
//
// Protocols are strictly address-oblivious by construction: the only
// information a Protocol sees is the current round and the round at which a
// node first received the message — exactly the model the paper's lower
// bound (§2) is proved against.
package phonecall

import "regcast/internal/graph"

// Topology is the engine's view of the network. Static graphs and dynamic
// overlays both implement it. Node ids are dense in [0, NumNodes()); dead
// ids (departed or not-yet-joined peers) report Alive() == false and are
// skipped by the engine.
type Topology interface {
	// NumNodes returns the size of the id space (including dead ids).
	NumNodes() int
	// Degree returns the number of incident stubs of v.
	Degree(v int) int
	// Neighbor returns the i-th neighbour of v, 0 <= i < Degree(v).
	Neighbor(v, i int) int
	// Alive reports whether v currently participates in the network.
	Alive(v int) bool
}

// Stepper is an optional interface for topologies that evolve over time
// (churn). The engine invokes Step after every completed round.
//
// Budget contract: the engine caches the per-round dial budget
// (DialBudget) and recomputes it only after a Step that changed
// membership — one that reported joined nodes or moved the alive count.
// A Step that changes node degrees while keeping membership fixed must
// therefore be paired with a membership change to be re-budgeted;
// degree-preserving rewiring (the overlay's mix and leave re-pairing)
// needs no recomputation by construction. Every topology in this
// repository satisfies the contract, and the churn-overlay budget test
// pins it per round.
type Stepper interface {
	// Step advances the topology by one round. It returns the ids of nodes
	// that joined during this step (the engine resets their message state).
	Step(round int) (joined []int)
}

// CSRViewer is the optional interface behind the zero-interface fast
// path (fastpath.go): a topology that exposes its adjacency as
// epoch-stamped compressed-sparse-row arrays. The engine engages the
// fast path on any topology implementing it — frozen graphs and churning
// overlays alike — and re-fetches the view only when the epoch advances
// (it checks once after every Stepper.Step), so churn runs execute
// fast-path rounds between churn events instead of falling back to
// interface dispatch permanently.
//
// Contract:
//
//   - The adjacency of an alive node v is adj[offsets[v]:offsets[v+1]],
//     and offsets[v+1]-offsets[v] == Degree(v) for every alive v.
//   - alive is a bitset over node ids (bit v of alive[v/64]); nil means
//     every id is alive. The bits must agree with Alive(v). The rows of
//     dead ids are unspecified and are never read — a fixed-stride
//     implementation may leave stale entries there.
//   - Adjacency entries may reference dead ids; the engine re-checks
//     target liveness exactly where the reference path calls Alive.
//   - epoch changes whenever the contents of offsets, adj or alive
//     change. The slices may be reallocated between epochs, so consumers
//     must re-fetch all four values when the epoch moves; while the
//     epoch is unchanged the slices are stable and read-only.
type CSRViewer interface {
	Topology
	CSRView() (offsets, adj []int32, alive []uint64, epoch uint64)
}

// ImplicitNeighbors is computable adjacency: Degree and NeighborAt
// arithmetic instead of stored CSR arrays. NeighborAt(v, i) for
// i in [0, Degree(v)) must enumerate exactly the slice a materialised
// CSR row for v would hold, in the same order — that equivalence is
// what keeps the implicit fast path bit-identical to the dense one.
// Implementations must be goroutine-safe and must not consume any of
// the run's randomness (seeded families replay their own streams).
type ImplicitNeighbors interface {
	Degree(v int) int
	NeighborAt(v, i int) int32
}

// ImplicitViewer is the second viewer contract behind the fast path,
// for topologies whose adjacency is computed rather than stored. It
// mirrors CSRViewer exactly — same alive-bitset semantics, same epoch
// invalidation rules — with ImplicitNeighbors standing in for the
// offsets/adj arrays:
//
//   - nbrs.Degree(v) must equal Degree(v) for every alive v, and
//     nbrs.NeighborAt(v, i) must equal Neighbor(v, i).
//   - alive is a bitset over node ids (bit v of alive[v/64]); nil means
//     every id is alive. Rows of dead ids are never read.
//   - NeighborAt may return dead ids; the engine re-checks target
//     liveness exactly where the reference path calls Alive.
//   - epoch changes whenever nbrs or alive change; consumers re-fetch
//     all three values when it moves.
//
// When a topology implements both viewer interfaces the engine prefers
// CSRView (indexing a slice beats recomputing arithmetic only when the
// arrays already exist — and if they exist, use them).
type ImplicitViewer interface {
	Topology
	ImplicitView() (nbrs ImplicitNeighbors, alive []uint64, epoch uint64)
}

// AliveCounter is an optional interface for topologies that can report
// their alive-node count in O(1) (the churn overlay maintains one). The
// engine uses it for the per-round completion check and for membership-
// change detection in the dial-budget cache, instead of an O(n) Alive
// scan. The count must agree with what scanning Alive would find.
type AliveCounter interface {
	AliveCount() int
}

// DialBudgeter is an optional interface for topologies that can compute
// the per-round dial budget without an O(n) interface scan — uniform-
// degree implicit families answer in O(1). The result must equal what
// the generic DialBudget scan would return.
type DialBudgeter interface {
	DialBudget(k int) int64
}

// DialBudget returns the per-round dial budget the model mandates on
// topo: every alive node dials min(k, degree) neighbours. All engines and
// the facade charge ChannelsDialed with this one formula.
func DialBudget(topo Topology, k int) int64 {
	if b, ok := topo.(DialBudgeter); ok {
		return b.DialBudget(k)
	}
	var total int64
	n := topo.NumNodes()
	for v := 0; v < n; v++ {
		if !topo.Alive(v) {
			continue
		}
		d := topo.Degree(v)
		if d > k {
			d = k
		}
		total += int64(d)
	}
	return total
}

// Static adapts an immutable graph.Graph to the Topology interface.
type Static struct {
	G *graph.Graph
}

var _ Topology = Static{}

// NewStatic wraps g as a Topology.
func NewStatic(g *graph.Graph) Static { return Static{G: g} }

// NumNodes implements Topology.
func (s Static) NumNodes() int { return s.G.NumNodes() }

// Degree implements Topology.
func (s Static) Degree(v int) int { return s.G.Degree(v) }

// Neighbor implements Topology.
func (s Static) Neighbor(v, i int) int { return s.G.Neighbor(v, i) }

// Alive implements Topology; every node of a static graph is alive.
func (s Static) Alive(int) bool { return true }

// CSRView implements CSRViewer: the graph's own CSR arrays, a nil alive
// bitset (every node is alive) and a constant epoch (the graph never
// changes).
func (s Static) CSRView() (offsets, adj []int32, alive []uint64, epoch uint64) {
	offsets, adj = s.G.CSR()
	return offsets, adj, nil, 0
}

// Implicit adapts an immutable graph.Implicit family to the Topology
// interface, exposing it to the fast path through ImplicitViewer. It is
// the algebraic twin of Static: every node alive, constant epoch, no
// stored adjacency.
type Implicit struct {
	F graph.Implicit
}

var (
	_ Topology       = Implicit{}
	_ ImplicitViewer = Implicit{}
	_ AliveCounter   = Implicit{}
	_ DialBudgeter   = Implicit{}
)

// NewImplicit wraps an implicit graph family as a Topology.
func NewImplicit(f graph.Implicit) Implicit { return Implicit{F: f} }

// NumNodes implements Topology.
func (t Implicit) NumNodes() int { return t.F.NumNodes() }

// Degree implements Topology.
func (t Implicit) Degree(v int) int { return t.F.Degree(v) }

// Neighbor implements Topology.
func (t Implicit) Neighbor(v, i int) int { return int(t.F.NeighborAt(v, i)) }

// Alive implements Topology; every node of an implicit family is alive.
func (t Implicit) Alive(int) bool { return true }

// AliveCount implements AliveCounter in O(1), keeping the reference
// path's per-round completion check off the O(n) Alive scan.
func (t Implicit) AliveCount() int { return t.F.NumNodes() }

// ImplicitView implements ImplicitViewer: the family's own arithmetic,
// a nil alive bitset and a constant epoch.
func (t Implicit) ImplicitView() (nbrs ImplicitNeighbors, alive []uint64, epoch uint64) {
	return t.F, nil, 0
}

// DialBudget implements DialBudgeter: uniform-degree families answer in
// O(1), degree-array families with one slice scan, and anything else
// falls back to the arithmetic degree scan (no interface dispatch).
func (t Implicit) DialBudget(k int) int64 {
	n := t.F.NumNodes()
	switch f := t.F.(type) {
	case graph.UniformDegree:
		d := f.UniformDegree()
		if d > k {
			d = k
		}
		return int64(n) * int64(d)
	case graph.DegreeArray:
		var total int64
		for _, d := range f.Degrees() {
			if int(d) > k {
				total += int64(k)
			} else {
				total += int64(d)
			}
		}
		return total
	default:
		var total int64
		for v := 0; v < n; v++ {
			d := t.F.Degree(v)
			if d > k {
				d = k
			}
			total += int64(d)
		}
		return total
	}
}
