package phonecall

import (
	"testing"
	"testing/quick"

	"regcast/internal/graph"
	"regcast/internal/xrand"
)

// tableProto is a schedule driven by arbitrary boolean tables, used to
// throw randomised schedules at the engine and check its invariants.
type tableProto struct {
	k    int
	push []bool
	pull []bool
}

func (p tableProto) Name() string { return "table" }
func (p tableProto) Choices() int { return p.k }
func (p tableProto) Horizon() int { return len(p.push) }
func (p tableProto) SendPush(t, ia int) bool {
	return t >= 1 && t <= len(p.push) && p.push[t-1]
}
func (p tableProto) SendPull(t, ia int) bool {
	return t >= 1 && t <= len(p.pull) && p.pull[t-1]
}

// TestEngineInvariantsUnderRandomSchedules drives the engine with random
// schedules, choice counts and failure rates, and verifies the structural
// invariants that must hold for ANY protocol:
//
//  1. the source is informed at round 0 and never loses that state;
//  2. InformedAt values are within [0, rounds];
//  3. per-round informed counts are monotone and consistent with receipts;
//  4. a node can only be informed if some round transmitted (tx > 0 or
//     informed == 1);
//  5. transmissions equal the per-round sum.
func TestEngineInvariantsUnderRandomSchedules(t *testing.T) {
	g, err := graph.RandomRegular(96, 6, xrand.New(50))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed uint64, pushBits, pullBits uint32, kRaw uint8, failRaw, lossRaw uint8) bool {
		const horizon = 24
		push := make([]bool, horizon)
		pull := make([]bool, horizon)
		for i := 0; i < horizon; i++ {
			push[i] = pushBits>>(i%32)&1 == 1 || i%7 == int(seed%7)
			pull[i] = pullBits>>(i%32)&1 == 1
		}
		k := int(kRaw)%4 + 1
		cfg := Config{
			Topology:           NewStatic(g),
			Protocol:           tableProto{k: k, push: push, pull: pull},
			Source:             int(seed % uint64(g.NumNodes())),
			RNG:                xrand.New(seed),
			ChannelFailureProb: float64(failRaw%50) / 100,
			MessageLossProb:    float64(lossRaw%50) / 100,
			RecordRounds:       true,
		}
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		// (1) and (2)
		if res.InformedAt[cfg.Source] != 0 {
			return false
		}
		for _, ia := range res.InformedAt {
			if ia != Uninformed && (ia < 0 || int(ia) > res.Rounds) {
				return false
			}
		}
		// (3) and (5)
		var tx int64
		prev := 1
		for _, rm := range res.PerRound {
			if rm.Informed < prev || rm.Informed != prev+rm.NewlyInformed {
				return false
			}
			prev = rm.Informed
			tx += rm.Transmissions
		}
		if tx != res.Transmissions {
			return false
		}
		// (4)
		if res.Informed > 1 && res.Transmissions == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestReceiptRoundMatchesTransmittingRound cross-checks that every node's
// InformedAt round actually had transmissions.
func TestReceiptRoundMatchesTransmittingRound(t *testing.T) {
	g, err := graph.RandomRegular(128, 6, xrand.New(51))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology:     NewStatic(g),
		Protocol:     pushProto{2, 40},
		RNG:          xrand.New(52),
		RecordRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	txAt := map[int]int64{}
	for _, rm := range res.PerRound {
		txAt[rm.Round] = rm.Transmissions
	}
	for v, ia := range res.InformedAt {
		if ia <= 0 {
			continue
		}
		if txAt[int(ia)] == 0 {
			t.Errorf("node %d informed in round %d which had no transmissions", v, ia)
		}
	}
}

// TestNoSpontaneousInformation runs heavy loss and confirms only delivered
// transmissions inform nodes: with ChannelFailureProb 1, nothing spreads.
func TestNoSpontaneousInformation(t *testing.T) {
	g, err := graph.RandomRegular(64, 6, xrand.New(53))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology:           NewStatic(g),
		Protocol:           pushProto{4, 30},
		RNG:                xrand.New(54),
		ChannelFailureProb: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 1 {
		t.Errorf("informed %d with all channels failed", res.Informed)
	}
	if res.Transmissions != 0 {
		t.Errorf("transmissions %d over failed channels", res.Transmissions)
	}
}

// TestPullCountsOnePerIncomingChannel pins the pull accounting: on a star
// where only the hub is informed and pulls, the number of transmissions in
// a round equals the number of leaves that dialled the hub (all of them:
// leaves have degree 1).
func TestPullCountsOnePerIncomingChannel(t *testing.T) {
	const leaves = 7
	edges := make([][2]int32, leaves)
	for i := 0; i < leaves; i++ {
		edges[i] = [2]int32{0, int32(i + 1)}
	}
	g, err := graph.NewFromEdges(leaves+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology:     NewStatic(g),
		Protocol:     pullProto{1, 1},
		Source:       0,
		RNG:          xrand.New(55),
		RecordRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every leaf dials the hub (its only neighbour); hub answers each.
	if res.PerRound[0].Transmissions != leaves {
		t.Errorf("pull transmissions = %d, want %d", res.PerRound[0].Transmissions, leaves)
	}
	if !res.AllInformed {
		t.Error("single pull round on star should inform every leaf")
	}
}

// TestDeadSourceRejected ensures a dead source fails construction on a
// dynamic topology.
type deadTopology struct{ Static }

func (d deadTopology) Alive(v int) bool { return v != 0 }

func TestDeadSourceRejected(t *testing.T) {
	g, err := graph.RandomRegular(16, 4, xrand.New(56))
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewEngine(Config{
		Topology: deadTopology{NewStatic(g)},
		Protocol: pushProto{1, 5},
		Source:   0,
		RNG:      xrand.New(57),
	})
	if err == nil {
		t.Error("dead source accepted")
	}
}
