package phonecall

import (
	"testing"

	"regcast/internal/graph"
	"regcast/internal/xrand"
)

// pushPullProto pushes and pulls in every round.
type pushPullProto struct {
	k, horizon int
}

func (p pushPullProto) Name() string            { return "test-pushpull" }
func (p pushPullProto) Choices() int            { return p.k }
func (p pushPullProto) Horizon() int            { return p.horizon }
func (p pushPullProto) SendPush(t, ia int) bool { return true }
func (p pushPullProto) SendPull(t, ia int) bool { return true }

// runWorkers runs cfg with the given worker count and a fixed seed.
func runWorkers(t *testing.T, cfg Config, workers int) Result {
	t.Helper()
	cfg.Workers = workers
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertSameTrace fails unless a and b are bit-identical runs.
func assertSameTrace(t *testing.T, a, b Result) {
	t.Helper()
	if a.Rounds != b.Rounds || a.Transmissions != b.Transmissions ||
		a.ChannelsDialed != b.ChannelsDialed || a.FirstAllInformed != b.FirstAllInformed ||
		a.Informed != b.Informed || a.AllInformed != b.AllInformed {
		t.Fatalf("summaries differ:\n%+v\n%+v", a, b)
	}
	for v := range a.InformedAt {
		if a.InformedAt[v] != b.InformedAt[v] {
			t.Fatalf("InformedAt[%d] = %d vs %d", v, a.InformedAt[v], b.InformedAt[v])
		}
	}
	if len(a.PerRound) != len(b.PerRound) {
		t.Fatalf("PerRound lengths differ: %d vs %d", len(a.PerRound), len(b.PerRound))
	}
	for i := range a.PerRound {
		if a.PerRound[i] != b.PerRound[i] {
			t.Fatalf("PerRound[%d] differs: %+v vs %+v", i, a.PerRound[i], b.PerRound[i])
		}
	}
}

// TestShardedTraceIndependentOfWorkers is the core determinism contract:
// for a fixed seed and shard count, the sharded engine produces
// bit-identical traces for every worker count, across the full feature
// matrix (push, pull, push&pull, loss, channel failure, quasirandom
// dialing, dial memory, edge-use tracking).
func TestShardedTraceIndependentOfWorkers(t *testing.T) {
	g := testGraph(t, 512, 8, 21)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"push", Config{Protocol: pushProto{2, 60}, RecordRounds: true}},
		{"pull", Config{Protocol: pullProto{1, 80}, RecordRounds: true}},
		{"push-pull", Config{Protocol: pushPullProto{2, 40}, RecordRounds: true}},
		{"lossy", Config{Protocol: pushPullProto{2, 60}, MessageLossProb: 0.3, ChannelFailureProb: 0.2, RecordRounds: true}},
		{"quasirandom", Config{Protocol: pushProto{2, 60}, DialStrategy: DialQuasirandom, RecordRounds: true}},
		{"avoid-recent", Config{Protocol: pushProto{1, 120}, AvoidRecent: 3, RecordRounds: true}},
		{"edge-use", Config{Protocol: pushPullProto{2, 40}, TrackEdgeUse: true, RecordRounds: true}},
		{"stop-early", Config{Protocol: pushProto{4, 100}, StopEarly: true, RecordRounds: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Topology = NewStatic(g)
			cfg.Source = 7
			for _, workers := range []int{2, 3, 8} {
				cfg.RNG = xrand.New(1234)
				base := runWorkers(t, cfg, 1)
				cfg.RNG = xrand.New(1234)
				par := runWorkers(t, cfg, workers)
				assertSameTrace(t, base, par)
			}
		})
	}
}

// churnTopo is a static ring whose highest-id node dies after round 3 and
// rejoins (uninformed) after round 6, exercising the Stepper path.
type churnTopo struct {
	g     *graph.Graph
	round int
}

func (c *churnTopo) NumNodes() int         { return c.g.NumNodes() }
func (c *churnTopo) Degree(v int) int      { return c.g.Degree(v) }
func (c *churnTopo) Neighbor(v, i int) int { return c.g.Neighbor(v, i) }
func (c *churnTopo) Alive(v int) bool {
	if v == c.g.NumNodes()-1 {
		return c.round < 3 || c.round >= 6
	}
	return true
}
func (c *churnTopo) Step(round int) []int {
	c.round = round
	if round == 6 {
		return []int{c.g.NumNodes() - 1}
	}
	return nil
}

// TestShardedChurnMatchesAcrossWorkers runs the sharded engine on a
// churning topology and checks worker-count independence there too.
func TestShardedChurnMatchesAcrossWorkers(t *testing.T) {
	g := testGraph(t, 128, 6, 31)
	run := func(workers int) Result {
		res, err := Run(Config{
			Topology:     &churnTopo{g: g},
			Protocol:     pushProto{2, 40},
			Source:       0,
			RNG:          xrand.New(77),
			RecordRounds: true,
			Workers:      workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	assertSameTrace(t, run(1), run(8))
}

// TestShardedTraceIndependentOfShardGeometry checks odd shard counts
// (including more shards than nodes) still broadcast correctly; shard
// count is part of the trace definition, so only self-consistency across
// worker counts is required, not equality across shard counts.
func TestShardedShardGeometry(t *testing.T) {
	g := testGraph(t, 100, 6, 41)
	for _, shards := range []int{1, 3, 17, 100, 250} {
		cfg := Config{
			Topology: NewStatic(g),
			Protocol: pushProto{2, 60},
			Shards:   shards,
		}
		cfg.RNG = xrand.New(5)
		a := runWorkers(t, cfg, 1)
		cfg.RNG = xrand.New(5)
		b := runWorkers(t, cfg, 4)
		assertSameTrace(t, a, b)
		if !a.AllInformed {
			t.Errorf("shards=%d: broadcast incomplete (%d/%d)", shards, a.Informed, a.AliveNodes)
		}
	}
}

// TestShardedEquivalentStatistics cross-validates the sharded path
// against the legacy sequential engine: same graph, same protocol, many
// seeds. The two paths consume randomness in different orders, so traces
// differ bit-wise by design (Workers=1 vs Workers=8 is the bit-identical
// comparison; see TestShardedTraceIndependentOfWorkers) — but their
// distributions must coincide. Over 30 seeds the measured agreement is
// ~0.03 rounds and ~0.5% transmissions, so the gates below (1 round, 3%)
// have an order-of-magnitude margin while still catching a skewed
// sharded implementation (e.g. correlated shard streams).
func TestShardedEquivalentStatistics(t *testing.T) {
	g := testGraph(t, 512, 8, 51)
	const reps = 30
	stat := func(workers int) (meanRounds, meanTx float64) {
		for seed := uint64(0); seed < reps; seed++ {
			cfg := Config{
				Topology:  NewStatic(g),
				Protocol:  pushProto{1, 200},
				RNG:       xrand.New(1000 + seed),
				StopEarly: true,
				Workers:   workers,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllInformed {
				t.Fatalf("workers=%d seed=%d: incomplete", workers, seed)
			}
			meanRounds += float64(res.FirstAllInformed)
			meanTx += float64(res.Transmissions)
		}
		return meanRounds / reps, meanTx / reps
	}
	seqRounds, seqTx := stat(0)
	parRounds, parTx := stat(4)
	if diff := seqRounds - parRounds; diff > 1 || diff < -1 {
		t.Errorf("legacy mean rounds %.2f vs sharded %.2f differ too much", seqRounds, parRounds)
	}
	if ratio := parTx / seqTx; ratio < 0.97 || ratio > 1.03 {
		t.Errorf("legacy mean tx %.1f vs sharded %.1f differ too much (ratio %.4f)", seqTx, parTx, ratio)
	}
}

// TestShardedEdgeUseMatchesLegacyCensus checks the per-shard edge-use
// buffers reproduce the legacy engine's census semantics: U(t) is
// non-increasing and reaches the same final value for every worker count.
func TestShardedEdgeUse(t *testing.T) {
	g := testGraph(t, 128, 6, 61)
	cfg := Config{
		Topology:     NewStatic(g),
		Protocol:     pushPullProto{2, 30},
		RecordRounds: true,
		TrackEdgeUse: true,
	}
	cfg.RNG = xrand.New(9)
	res := runWorkers(t, cfg, 8)
	prev := g.NumNodes() + 1
	for _, rm := range res.PerRound {
		if rm.UnusedEdgeNodes > prev {
			t.Fatalf("U(t) increased: %d -> %d at round %d", prev, rm.UnusedEdgeNodes, rm.Round)
		}
		prev = rm.UnusedEdgeNodes
	}
	if prev != 0 {
		t.Errorf("push&pull for 30 rounds left %d nodes with unused edges", prev)
	}
}

// TestWorkersAutoAndValidation covers the new Config surface.
func TestWorkersAutoAndValidation(t *testing.T) {
	g := testGraph(t, 64, 4, 71)
	cfg := Config{Topology: NewStatic(g), Protocol: pushProto{1, 40}, RNG: xrand.New(2), Workers: WorkersAuto}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Errorf("WorkersAuto run incomplete: %d/%d", res.Informed, res.AliveNodes)
	}

	cfg.Workers = -2
	if _, err := NewEngine(cfg); err == nil {
		t.Error("Workers=-2 accepted")
	}
	cfg.Workers = 1
	cfg.Shards = -1
	if _, err := NewEngine(cfg); err == nil {
		t.Error("Shards=-1 accepted")
	}
}

// TestShardedSilentAndBudget mirrors the legacy silent-protocol test on
// the sharded path: no transmissions, but the full dial budget is charged
// (every alive node dials min(k, degree) channels per round).
func TestShardedSilentAndBudget(t *testing.T) {
	g := testGraph(t, 64, 4, 81)
	res, err := Run(Config{
		Topology: NewStatic(g),
		Protocol: silentProto{20},
		RNG:      xrand.New(3),
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 1 || res.Transmissions != 0 {
		t.Errorf("silent sharded run: informed=%d tx=%d", res.Informed, res.Transmissions)
	}
	if res.ChannelsDialed != int64(64*1*20) {
		t.Errorf("ChannelsDialed = %d, want %d", res.ChannelsDialed, 64*20)
	}
}
