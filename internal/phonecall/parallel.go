package phonecall

import (
	"regcast/internal/sched"
)

// WorkersAuto, given as Config.Workers, selects GOMAXPROCS worker
// goroutines for the sharded engine.
const WorkersAuto = sched.WorkersAuto

// DefaultShards is the shard count used when Config.Shards is 0. It comes
// from the shared scheduler substrate (internal/sched): a fixed constant —
// deliberately NOT tied to GOMAXPROCS — so that a run's trace depends only
// on (seed, topology, protocol, shard count) and is reproducible across
// machines and worker counts.
//
// Determinism scope: "the sequential path" of the sharded engine is
// Workers == 1 (the same shard passes executed inline), and that is what
// every parallel run is bit-identical to. The legacy Workers == 0 engine
// consumes the run RNG as one stream in a different order, so its traces
// necessarily differ bit-wise from any sharded run with the same seed;
// the two engines are validated against each other distributionally
// (TestShardedEquivalentStatistics) instead. Per-shard streams are what
// make worker-count independence possible at all — a single shared
// stream would make the draw order depend on goroutine scheduling.
const DefaultShards = sched.DefaultShards

// parShard is one node partition of the sharded engine. A shard owns the
// contiguous node range [lo, hi), its own PRNG stream (derived
// deterministically from the run RNG and the shard index), and its own
// outbox, so the per-round shard passes share no mutable state.
type parShard struct {
	lo, hi int
	ds     dialState

	// Per-round outputs, merged sequentially in shard-index order.
	outbox  []int32 // candidate receivers queued by this shard
	usedBuf []int64 // edge keys that carried a transmission (TrackEdgeUse)
	tx      int64   // transmissions sent by this shard

	_ [24]byte // pad to soften false sharing between adjacent shards
}

// initShards prepares the sharded engine: resolve the worker count,
// partition the node range, and derive one independent PRNG stream per
// shard from the run RNG (stream i is the i-th Split of cfg.RNG, so the
// whole run remains reproducible from the master seed).
func (e *Engine) initShards() {
	nShards := e.cfg.Shards
	if nShards == 0 {
		nShards = DefaultShards
	}
	e.workers = sched.Resolve(e.cfg.Workers, nShards)
	e.shards = make([]parShard, nShards)
	for i := range e.shards {
		sh := &e.shards[i]
		sh.lo, sh.hi = sched.Bounds(i, e.n, nShards)
		sh.ds = newDialState(e.cfg.RNG.Split(), e.k)
	}
	e.roundCount = make([]int64, e.proto.Horizon()+1)
}

// runSharded is the parallel counterpart of Run. Each round runs three
// steps: (1) compute the protocol's push/pull decision tables for the
// round, (2) run the dial/push/pull pass of every shard — concurrently on
// up to Workers goroutines — with each shard drawing only from its own
// PRNG stream and writing only its own dial rows and outbox, and (3)
// merge the per-shard outboxes into the global receipt queue in shard
// order. Because shard streams and the merge order are fixed, the result
// is bit-identical for every worker count.
func (e *Engine) runSharded() Result {
	res := Result{FirstAllInformed: -1}
	e.informedAt[e.cfg.Source] = 0
	e.roundCount[0] = 1
	informedCount := 1
	obs := e.cfg.Observer
	if obs != nil {
		obs.OnInformed(e.cfg.Source, 0)
	}

	horizon := e.proto.Horizon()
	neverPulls := false
	if pf, ok := e.proto.(PullFree); ok {
		neverPulls = pf.NeverPulls()
	}
	stepper, _ := e.topo.(Stepper)

	for t := 1; t <= horizon; t++ {
		// Step 1: decision tables. A node's behaviour this round is a pure
		// function of its receipt round, so one table lookup per node
		// replaces per-node Protocol calls in the hot shard passes.
		anyPush, anyPull := false, false
		for ia := 0; ia < t; ia++ {
			e.pushDec[ia] = e.proto.SendPush(t, ia)
			e.pullDec[ia] = !neverPulls && e.proto.SendPull(t, ia)
			if e.roundCount[ia] > 0 {
				anyPush = anyPush || e.pushDec[ia]
				anyPull = anyPull || e.pullDec[ia]
			}
		}
		dialAll := anyPull || e.cfg.AvoidRecent > 0

		// Step 2: shard passes (the parallel section).
		if anyPush || dialAll {
			e.runShardPasses(t, anyPush, anyPull, dialAll)
		} else {
			for i := range e.shards {
				sh := &e.shards[i]
				sh.tx, sh.outbox, sh.usedBuf = 0, sh.outbox[:0], sh.usedBuf[:0]
			}
		}

		// Step 3: merge outboxes in shard-index order (deterministic).
		var roundTx int64
		for i := range e.shards {
			sh := &e.shards[i]
			roundTx += sh.tx
			for _, w := range sh.outbox {
				if e.isPending[w] {
					continue
				}
				e.isPending[w] = true
				e.pending = append(e.pending, w)
			}
			if e.fast {
				for _, id := range sh.usedBuf {
					e.markUsedID(int32(id))
				}
			} else {
				for _, key := range sh.usedBuf {
					e.markUsedKey(key)
				}
			}
		}

		// Apply receipts at the end of the round.
		newly := len(e.pending)
		for _, v := range e.pending {
			e.isPending[v] = false
			e.informedAt[v] = int32(t)
			if obs != nil {
				obs.OnInformed(int(v), t)
			}
		}
		e.roundCount[t] += int64(newly)
		e.pending = e.pending[:0]
		informedCount += newly

		e.recordRound(&res, t, newly, informedCount, roundTx)

		// Churn happens between rounds; joiners start uninformed. Unlike
		// the sequential path this one must also keep the per-cohort
		// counts (roundCount) consistent.
		if stepper != nil {
			joined := stepper.Step(t)
			for _, v := range joined {
				if ia := e.informedAt[v]; ia != Uninformed {
					e.roundCount[ia]--
					e.informedAt[v] = Uninformed
				}
			}
			e.refreshCSR()
			informedCount = e.recount()
			e.refreshBudget(joined)
		}

		if e.noteCompletion(&res, t, informedCount, stepper != nil) {
			break
		}
		if e.cfg.Halt != nil && e.cfg.Halt() {
			break
		}
	}

	e.finishResult(&res)
	return res
}

// runShardPasses executes shardPass for every shard, inline when a single
// worker is configured (the sequential special case) and on a small
// work-stealing pool otherwise. Shard-to-worker assignment is arbitrary;
// shard results are not, so scheduling cannot influence the outcome.
func (e *Engine) runShardPasses(t int, anyPush, anyPull, dialAll bool) {
	if e.workers <= 1 {
		// No func-value indirection here: the inline path must stay
		// allocation-free per round, and a captured func variable would be
		// moved to the heap by the worker closure below.
		if e.fast {
			for i := range e.shards {
				e.shardPassFast(&e.shards[i], t, anyPush, anyPull, dialAll)
			}
		} else {
			for i := range e.shards {
				e.shardPass(&e.shards[i], t, anyPush, anyPull, dialAll)
			}
		}
		return
	}
	sched.Pool(e.workers, len(e.shards), func(i int) {
		if e.fast {
			e.shardPassFast(&e.shards[i], t, anyPush, anyPull, dialAll)
		} else {
			e.shardPass(&e.shards[i], t, anyPush, anyPull, dialAll)
		}
	})
}

// shardPass runs one round for the nodes a shard owns: dial sampling,
// push transmissions, then pull transmissions, in ascending node order.
// It reads informedAt (frozen during the round) and writes only the
// shard's own dial rows, per-node dial memory/cursors, and outbox, so
// concurrent shard passes never race. Delivery candidates are queued in
// the outbox; global dedup happens in the sequential merge.
func (e *Engine) shardPass(sh *parShard, t int, anyPush, anyPull, dialAll bool) {
	sh.tx = 0
	sh.outbox = sh.outbox[:0]
	sh.usedBuf = sh.usedBuf[:0]
	track := e.usedEdges != nil
	loss := e.cfg.MessageLossProb

	for v := sh.lo; v < sh.hi; v++ {
		alive := e.topo.Alive(v)
		ia := e.informedAt[v]
		sender := anyPush && alive && ia != Uninformed && int(ia) < t && e.pushDec[ia]
		if dialAll {
			if alive {
				e.sampleDialsFor(v, &sh.ds)
			} else {
				e.clearDialRow(v)
			}
		} else if sender {
			e.sampleDialsFor(v, &sh.ds)
		}
		if !sender {
			continue
		}
		base := v * e.k
		for j := 0; j < e.k; j++ {
			w := e.dialTargets[base+j]
			if w < 0 {
				continue
			}
			sh.tx++
			if track {
				sh.usedBuf = append(sh.usedBuf, edgeKey(v, int(w)))
			}
			if loss > 0 && e.msgLost(&sh.ds) {
				continue
			}
			if e.informedAt[w] == Uninformed && e.topo.Alive(int(w)) {
				sh.outbox = append(sh.outbox, w)
			}
		}
	}

	if !anyPull {
		return
	}
	// Pull is evaluated caller-side: every channel v→w the shard's nodes
	// dialled lets an informed, pulling callee w answer the caller v. The
	// receiver is always the shard's own node v.
	for v := sh.lo; v < sh.hi; v++ {
		if !e.topo.Alive(v) {
			continue
		}
		uninformedCaller := e.informedAt[v] == Uninformed
		base := v * e.k
		for j := 0; j < e.k; j++ {
			w := e.dialTargets[base+j]
			if w < 0 {
				continue
			}
			wia := e.informedAt[w]
			if wia == Uninformed || int(wia) >= t || !e.pullDec[wia] {
				continue
			}
			sh.tx++
			if track {
				sh.usedBuf = append(sh.usedBuf, edgeKey(v, int(w)))
			}
			if loss > 0 && e.msgLost(&sh.ds) {
				continue
			}
			if uninformedCaller {
				sh.outbox = append(sh.outbox, int32(v))
			}
		}
	}
}
