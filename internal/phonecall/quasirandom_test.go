package phonecall

import (
	"testing"

	"regcast/internal/graph"
	"regcast/internal/xrand"
)

func TestDialStrategyString(t *testing.T) {
	if DialUniform.String() != "uniform" || DialQuasirandom.String() != "quasirandom" {
		t.Error("strategy names wrong")
	}
	if DialStrategy(9).String() == "" {
		t.Error("unknown strategy empty")
	}
}

func TestDialStrategyValidation(t *testing.T) {
	g := testGraph(t, 16, 4, 30)
	base := Config{Topology: NewStatic(g), Protocol: pushProto{1, 10}, RNG: xrand.New(1)}

	bad := base
	bad.DialStrategy = DialStrategy(7)
	if _, err := NewEngine(bad); err == nil {
		t.Error("unknown strategy accepted")
	}
	conflict := base
	conflict.DialStrategy = DialQuasirandom
	conflict.AvoidRecent = 3
	if _, err := NewEngine(conflict); err == nil {
		t.Error("quasirandom + AvoidRecent accepted")
	}
	ok := base
	ok.DialStrategy = DialQuasirandom
	if _, err := NewEngine(ok); err != nil {
		t.Errorf("valid quasirandom config rejected: %v", err)
	}
}

func TestQuasirandomCoversListWithoutRepeats(t *testing.T) {
	// On a star hub with degree 6 and k=1 push, the quasirandom cursor
	// walks the whole neighbour list: all 6 leaves are informed after
	// exactly 6 rounds, deterministically (only the start is random).
	const leaves = 6
	edges := make([][2]int32, leaves)
	for i := 0; i < leaves; i++ {
		edges[i] = [2]int32{0, int32(i + 1)}
	}
	g, err := graph.NewFromEdges(leaves+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 10; seed++ {
		res, err := Run(Config{
			Topology:     NewStatic(g),
			Protocol:     pushProto{1, leaves},
			Source:       0,
			RNG:          xrand.New(seed),
			DialStrategy: DialQuasirandom,
			RecordRounds: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllInformed {
			t.Fatalf("seed %d: quasirandom hub informed %d/%d in %d rounds",
				seed, res.Informed, leaves+1, leaves)
		}
		// Exactly one new leaf per round: no repeats within a sweep.
		for _, rm := range res.PerRound {
			if rm.NewlyInformed != 1 {
				t.Fatalf("seed %d round %d informed %d leaves (want exactly 1)",
					seed, rm.Round, rm.NewlyInformed)
			}
		}
	}
}

func TestQuasirandomBroadcastCompletes(t *testing.T) {
	g := testGraph(t, 512, 8, 31)
	res, err := Run(Config{
		Topology:     NewStatic(g),
		Protocol:     pushProto{1, 100},
		RNG:          xrand.New(32),
		DialStrategy: DialQuasirandom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("quasirandom push informed %d/512", res.Informed)
	}
}

func TestQuasirandomFourChoiceWindow(t *testing.T) {
	// With k=4 on a degree-8 node, two consecutive rounds cover all 8
	// neighbours: a pushing hub informs 4 + 4 distinct leaves.
	const leaves = 8
	edges := make([][2]int32, leaves)
	for i := 0; i < leaves; i++ {
		edges[i] = [2]int32{0, int32(i + 1)}
	}
	g, err := graph.NewFromEdges(leaves+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology:     NewStatic(g),
		Protocol:     pushProto{4, 2},
		Source:       0,
		RNG:          xrand.New(33),
		DialStrategy: DialQuasirandom,
		RecordRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerRound[0].NewlyInformed != 4 || res.PerRound[1].NewlyInformed != 4 {
		t.Errorf("per-round informs %d, %d — want 4, 4 (cursor must not rewind)",
			res.PerRound[0].NewlyInformed, res.PerRound[1].NewlyInformed)
	}
}
