package phonecall

import (
	"fmt"
	"math/bits"

	"regcast/internal/xrand"
)

// DialStrategy selects how a node picks the neighbours it dials.
type DialStrategy int

const (
	// DialUniform is the (modified) random phone call model: k distinct
	// neighbours chosen independently and uniformly every round.
	DialUniform DialStrategy = iota
	// DialQuasirandom is the quasirandom rumor-spreading model of Doerr,
	// Friedrich & Sauerwald (cited as [9] in the paper): each node starts
	// at a uniformly random position of its (fixed) neighbour list and
	// from then on dials successive list entries, k per round. Intended
	// for push-only schedules (a pull round would advance the cursors of
	// uninformed nodes too, which the quasirandom model does not define).
	DialQuasirandom
)

// String implements fmt.Stringer.
func (s DialStrategy) String() string {
	switch s {
	case DialUniform:
		return "uniform"
	case DialQuasirandom:
		return "quasirandom"
	default:
		return fmt.Sprintf("dialstrategy(%d)", int(s))
	}
}

// Config describes one broadcast simulation.
type Config struct {
	// Topology is the network; required.
	Topology Topology
	// Protocol is the broadcast schedule; required.
	Protocol Protocol
	// Source is the node that creates the message in round 0.
	Source int
	// RNG drives all randomness; required.
	RNG *xrand.Rand
	// ChannelFailureProb is the probability that a dialled channel fails to
	// establish (no communication in either direction over it this round).
	ChannelFailureProb float64
	// MessageLossProb is the probability that an individual transmission is
	// lost in transit. Lost transmissions still count as transmissions.
	MessageLossProb float64
	// GeometricFaults selects the randomness-efficient fault sampler: the
	// per-decision Bernoulli draws for ChannelFailureProb and
	// MessageLossProb are replaced by Geometric(p) skip counters per PRNG
	// stream (one draw per fault event instead of one per decision). The
	// fault processes are distribution-identical, but the stream is
	// consumed in a different order, so traces differ bit-wise from the
	// default Bernoulli mode — which is why this is an explicit opt-in
	// compatibility switch rather than the default. Within geometric mode
	// all determinism contracts hold unchanged (same seed => same trace,
	// worker-count independence, fast path bit-identical to the reference
	// path).
	GeometricFaults bool
	// DisableFastPath forces the reference interface-dispatch path even on
	// a frozen Static topology. The fast path is bit-identical to the
	// reference path (golden tests pin this), so the switch exists for
	// verification and benchmarking, not for correctness workarounds.
	DisableFastPath bool
	// DialStrategy selects the neighbour-selection discipline (default
	// DialUniform). DialQuasirandom is incompatible with AvoidRecent.
	DialStrategy DialStrategy
	// AvoidRecent, when > 0, enables the sequentialised model of footnote 2:
	// each node remembers the partners it dialled in the last AvoidRecent
	// rounds and excludes them from the current choice. It disables the
	// sender-only dial-sampling optimisation because memory must advance
	// every round for every node.
	AvoidRecent int
	// RecordRounds enables per-round metrics in the Result.
	RecordRounds bool
	// TrackEdgeUse enables the unused-edge census of Lemma 4: an edge
	// counts as used once a transmission crossed it in either direction,
	// and RoundMetrics.UnusedEdgeNodes records |U(t)|, the number of nodes
	// still incident to at least one unused edge. Requires RecordRounds
	// and a simple static topology (parallel edges would be conflated).
	TrackEdgeUse bool
	// StopEarly stops the run as soon as every alive node is informed.
	// Leave it false to measure the transmission cost of the full schedule
	// (the honest accounting used throughout EXPERIMENTS.md).
	StopEarly bool
	// Workers selects the engine implementation. 0 (the default) runs the
	// classic single-stream sequential engine, preserving the exact RNG
	// consumption order of earlier releases. Any value >= 1 runs the
	// sharded engine (see parallel.go) with min(Workers, Shards) worker
	// goroutines; Workers == 1 executes the shard passes inline and is the
	// sequential special case of the parallel path. WorkersAuto (-1) uses
	// GOMAXPROCS workers. For a fixed seed and shard count the sharded
	// engine's results are bit-identical for every worker count.
	Workers int
	// Shards is the number of node partitions (and independent PRNG
	// streams) of the sharded engine; 0 means DefaultShards. The shard
	// count — not the worker count — determines the trace, so keep it
	// fixed when comparing runs. Ignored when Workers == 0.
	Shards int
	// Observer, when non-nil, receives streaming per-round callbacks (see
	// Observer). It never changes the trace: observers are called after all
	// of a round's randomness has been drawn.
	Observer Observer
	// Halt, when non-nil, is polled once at the end of every round; a true
	// return stops the run early with the partial result accumulated so
	// far. The facade uses it to honour context cancellation.
	Halt func() bool
}

// RoundMetrics captures the state of one simulated round.
type RoundMetrics struct {
	Round         int
	NewlyInformed int
	Informed      int
	Transmissions int64
	ChannelsDial  int64
	// UnusedEdgeNodes is |U(t)| when Config.TrackEdgeUse is set (else 0).
	UnusedEdgeNodes int
}

// Result summarises a completed run.
type Result struct {
	// Rounds is the number of rounds actually executed.
	Rounds int
	// Informed is the number of informed alive nodes when the run ended.
	Informed int
	// AliveNodes is the number of alive nodes when the run ended.
	AliveNodes int
	// AllInformed reports whether every alive node was informed at the end.
	AllInformed bool
	// FirstAllInformed is the earliest round after which every alive node
	// was informed, or -1 if that never happened.
	FirstAllInformed int
	// Transmissions is the total number of message transmissions (lost
	// transmissions included, as in the paper's accounting).
	Transmissions int64
	// ChannelsDialed is the total number of channel dials mandated by the
	// model (every alive node dials min(k, degree) neighbours per round).
	ChannelsDialed int64
	// InformedAt[v] is the round in which v first received the message
	// (Uninformed if never).
	InformedAt []int32
	// PerRound holds per-round metrics when Config.RecordRounds is set.
	PerRound []RoundMetrics
}

// Engine runs one message broadcast under the random phone call model.
type Engine struct {
	cfg   Config
	topo  Topology
	proto Protocol

	n          int
	k          int
	informedAt []int32
	groups     [][]int32 // groups[t] = nodes first informed in round t
	pending    []int32   // nodes newly informed in the current round
	isPending  []bool

	dialTargets []int32   // flat n×k; Uninformed (-1) marks "no channel"
	seq         dialState // RNG + scratch of the sequential path

	// CSR fast path (see fastpath.go): when the topology exposes an
	// epoch-stamped CSR view (CSRViewer — frozen Static graphs and the
	// churning overlay alike), the round loops index these raw arrays
	// instead of calling Topology.Degree/Neighbor/Alive through the
	// interface. aliveBits is the view's liveness bitset (nil = every id
	// alive, the frozen-graph case); csrEpoch is the epoch the slices
	// were fetched at — after every Stepper.Step the engine re-fetches
	// the view iff the epoch advanced (refreshCSR).
	fast      bool
	fastView  CSRViewer
	csrOff    []int32
	csrAdj    []int32
	aliveBits []uint64
	csrEpoch  uint64

	// Implicit fast path (see fastpath_implicit.go): when the topology
	// exposes computable adjacency (ImplicitViewer) and no CSR view, the
	// dial samplers call impNbrs.Degree/NeighborAt arithmetic instead of
	// indexing csrOff/csrAdj — no adjacency array is ever built. All
	// other fast-path machinery (aliveBits, csrEpoch, the push/pull/shard
	// loops, which only read dialTargets) is shared unchanged.
	impView ImplicitViewer
	impNbrs ImplicitNeighbors

	// sharded-engine state (Config.Workers != 0); see parallel.go
	workers    int
	shards     []parShard
	roundCount []int64 // nodes currently informed at round r, by r

	// Per-round protocol decision tables, indexed by receipt round: both
	// engine paths fill them once per round, so SendPush/SendPull is
	// called O(rounds · cohorts) times instead of inside node loops.
	pushDec []bool
	pullDec []bool

	// memory for the sequentialised model (AvoidRecent > 0)
	recent    []int32 // flat n×AvoidRecent ring of recent partners
	recentPos []int

	// listCursor holds each node's position in its neighbour list for the
	// quasirandom strategy (-1 until the first dial draws the start).
	listCursor []int32

	// budget caches the per-round dial budget. For frozen topologies it is
	// computed once; for dynamic ones it is recomputed only after a Step
	// that changed membership (joins reported, or the alive count moved —
	// budgetAlive remembers the count the cache was computed for).
	budget      int64
	budgetAlive int

	// aliveCounter, when the topology supports it, answers aliveCount in
	// O(1) instead of an O(n) Alive scan.
	aliveCounter AliveCounter

	// Edge-use census (Config.TrackEdgeUse): usedEdges records undirected
	// edges that carried a transmission; unusedDeg[v] counts v's incident
	// edges not yet used. The fast path replaces the map with a bitset
	// over dense edge ids (usedBits); slotEdge maps every CSR adjacency
	// slot to its edge id (parallel edges share one id, matching the
	// map's endpoint-keyed semantics), edgeEndA/B recover the endpoints,
	// and dialEdge mirrors dialTargets with the dialled edge ids.
	usedEdges map[int64]struct{}
	unusedDeg []int32
	slotEdge  []int32
	edgeEndA  []int32
	edgeEndB  []int32
	usedBits  []uint64
	dialEdge  []int32
}

// NewEngine validates cfg and prepares a run.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("phonecall: Config.Topology is required")
	}
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("phonecall: Config.Protocol is required")
	}
	if cfg.RNG == nil {
		return nil, fmt.Errorf("phonecall: Config.RNG is required")
	}
	n := cfg.Topology.NumNodes()
	if cfg.Source < 0 || cfg.Source >= n {
		return nil, fmt.Errorf("phonecall: source %d out of range [0,%d)", cfg.Source, n)
	}
	if !cfg.Topology.Alive(cfg.Source) {
		return nil, fmt.Errorf("phonecall: source %d is not alive", cfg.Source)
	}
	if cfg.Protocol.Choices() < 1 {
		return nil, fmt.Errorf("phonecall: protocol %q dials %d < 1 neighbours", cfg.Protocol.Name(), cfg.Protocol.Choices())
	}
	if cfg.Protocol.Horizon() < 1 {
		return nil, fmt.Errorf("phonecall: protocol %q has horizon %d < 1", cfg.Protocol.Name(), cfg.Protocol.Horizon())
	}
	if cfg.ChannelFailureProb < 0 || cfg.ChannelFailureProb > 1 {
		return nil, fmt.Errorf("phonecall: ChannelFailureProb %v out of [0,1]", cfg.ChannelFailureProb)
	}
	if cfg.MessageLossProb < 0 || cfg.MessageLossProb > 1 {
		return nil, fmt.Errorf("phonecall: MessageLossProb %v out of [0,1]", cfg.MessageLossProb)
	}
	if cfg.AvoidRecent < 0 {
		return nil, fmt.Errorf("phonecall: AvoidRecent %d < 0", cfg.AvoidRecent)
	}
	if cfg.DialStrategy != DialUniform && cfg.DialStrategy != DialQuasirandom {
		return nil, fmt.Errorf("phonecall: unknown dial strategy %d", cfg.DialStrategy)
	}
	if cfg.DialStrategy == DialQuasirandom && cfg.AvoidRecent > 0 {
		return nil, fmt.Errorf("phonecall: DialQuasirandom is incompatible with AvoidRecent")
	}
	if cfg.Workers < WorkersAuto {
		return nil, fmt.Errorf("phonecall: Workers %d invalid (use WorkersAuto, 0 or a positive count)", cfg.Workers)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("phonecall: Shards %d < 0", cfg.Shards)
	}
	e := &Engine{
		cfg:   cfg,
		topo:  cfg.Topology,
		proto: cfg.Protocol,
		n:     n,
		k:     cfg.Protocol.Choices(),
	}
	// The zero-interface fast path engages on any topology exposing an
	// epoch-stamped CSR view — frozen Static graphs and churning overlays
	// alike: the CSR arrays are fetched once (and re-fetched only when the
	// epoch advances after a churn Step), and every per-node Degree/
	// Neighbor/Alive interface call in the round loops disappears
	// (fastpath.go).
	if cv, ok := cfg.Topology.(CSRViewer); ok && !cfg.DisableFastPath {
		e.fast = true
		e.fastView = cv
		e.csrOff, e.csrAdj, e.aliveBits, e.csrEpoch = cv.CSRView()
	} else if iv, ok := cfg.Topology.(ImplicitViewer); ok && !cfg.DisableFastPath {
		// The implicit fast path: same round loops, but the dial samplers
		// compute neighbours arithmetically (fastpath_implicit.go) instead
		// of indexing CSR arrays. A topology exposing both views takes the
		// CSR branch above — if the arrays exist, indexing them is cheaper
		// than recomputing.
		e.fast = true
		e.impView = iv
		e.impNbrs, e.aliveBits, e.csrEpoch = iv.ImplicitView()
	}
	e.aliveCounter, _ = cfg.Topology.(AliveCounter)
	e.informedAt = make([]int32, n)
	for i := range e.informedAt {
		e.informedAt[i] = Uninformed
	}
	e.groups = make([][]int32, cfg.Protocol.Horizon()+1)
	e.isPending = make([]bool, n)
	e.dialTargets = make([]int32, n*e.k)
	e.seq = newDialState(cfg.RNG, e.k)
	// Preallocate the receipt queue so the round loops never grow it, and
	// the per-round protocol decision tables shared by both engine paths.
	e.pending = make([]int32, 0, n)
	e.pushDec = make([]bool, cfg.Protocol.Horizon()+1)
	e.pullDec = make([]bool, cfg.Protocol.Horizon()+1)
	if cfg.AvoidRecent > 0 {
		e.recent = make([]int32, n*cfg.AvoidRecent)
		for i := range e.recent {
			e.recent[i] = -1
		}
		e.recentPos = make([]int, n)
	}
	if cfg.DialStrategy == DialQuasirandom {
		e.listCursor = make([]int32, n)
		for i := range e.listCursor {
			e.listCursor[i] = -1 // start position drawn at first dial
		}
	}
	if cfg.TrackEdgeUse {
		if !cfg.RecordRounds {
			return nil, fmt.Errorf("phonecall: TrackEdgeUse requires RecordRounds")
		}
		if _, dynamic := cfg.Topology.(Stepper); dynamic {
			return nil, fmt.Errorf("phonecall: TrackEdgeUse requires a static topology")
		}
		// The dense-edge-id census enumerates every CSR slot, which is only
		// well-defined on a fully-alive materialised view (dead rows hold
		// unspecified entries, and an implicit topology has no slots to
		// enumerate); a partially-alive CSR topology or an implicit one
		// takes the reference path with the endpoint-keyed map instead.
		if e.aliveBits != nil || e.impNbrs != nil {
			e.fast = false
			e.fastView = nil
			e.csrOff, e.csrAdj, e.aliveBits = nil, nil, nil
			e.impView, e.impNbrs = nil, nil
		}
		e.unusedDeg = make([]int32, n)
		for v := 0; v < n; v++ {
			e.unusedDeg[v] = int32(cfg.Topology.Degree(v))
		}
		if e.fast {
			e.initEdgeCensus()
		} else {
			e.usedEdges = make(map[int64]struct{})
		}
	}
	e.budget = DialBudget(cfg.Topology, e.k)
	e.budgetAlive = e.aliveCount()
	if cfg.Workers != 0 {
		e.initShards()
	}
	return e, nil
}

// Run executes the full schedule and returns the result.
func (e *Engine) Run() Result {
	if e.cfg.Workers != 0 {
		return e.runSharded()
	}
	res := Result{FirstAllInformed: -1}
	e.informedAt[e.cfg.Source] = 0
	e.groups[0] = append(e.groups[0], int32(e.cfg.Source))
	informedCount := 1
	obs := e.cfg.Observer
	if obs != nil {
		obs.OnInformed(e.cfg.Source, 0)
	}

	horizon := e.proto.Horizon()
	neverPulls := false
	if pf, ok := e.proto.(PullFree); ok {
		neverPulls = pf.NeverPulls()
	}
	stepper, _ := e.topo.(Stepper)

	for t := 1; t <= horizon; t++ {
		// Fill the round's decision tables; a node's behaviour is a pure
		// function of its receipt round, so one lookup per cohort (push)
		// or per callee (pull) replaces Protocol calls in the node loops.
		anyPull, anyPush := false, false
		for ia := 0; ia < t; ia++ {
			e.pushDec[ia] = e.proto.SendPush(t, ia)
			e.pullDec[ia] = !neverPulls && e.proto.SendPull(t, ia)
			if ia < len(e.groups) && len(e.groups[ia]) > 0 {
				anyPush = anyPush || e.pushDec[ia]
				anyPull = anyPull || e.pullDec[ia]
			}
		}

		var roundTx int64
		dialAll := anyPull || e.cfg.AvoidRecent > 0
		if dialAll {
			e.sampleAllDials()
		}

		// Push deliveries: senders transmit over their dialled channels.
		if anyPush {
			for ia := 0; ia < t && ia < len(e.groups); ia++ {
				if len(e.groups[ia]) == 0 || !e.pushDec[ia] {
					continue
				}
				if e.fast {
					roundTx += e.pushGroupFast(e.groups[ia], ia, dialAll)
				} else {
					roundTx += e.pushGroup(e.groups[ia], ia, dialAll)
				}
			}
		}

		// Pull deliveries: every established channel v→w lets an informed,
		// pulling w answer the caller v.
		if anyPull {
			if e.fast {
				roundTx += e.pullScanFast(t)
			} else {
				roundTx += e.pullScan(t)
			}
		}

		// Apply receipts at the end of the round.
		newly := len(e.pending)
		for _, v := range e.pending {
			e.isPending[v] = false
			e.informedAt[v] = int32(t)
			if obs != nil {
				obs.OnInformed(int(v), t)
			}
			if t < len(e.groups) {
				e.groups[t] = append(e.groups[t], v)
			}
		}
		e.pending = e.pending[:0]
		informedCount += newly

		e.recordRound(&res, t, newly, informedCount, roundTx)

		// Churn happens between rounds. Joiners start uninformed, and both
		// joins and departures invalidate the incremental informed counter.
		if stepper != nil {
			joined := stepper.Step(t)
			for _, v := range joined {
				e.informedAt[v] = Uninformed
			}
			e.refreshCSR()
			informedCount = e.recount()
			e.refreshBudget(joined)
		}

		if e.noteCompletion(&res, t, informedCount, stepper != nil) {
			break
		}
		if e.cfg.Halt != nil && e.cfg.Halt() {
			break
		}
	}

	e.finishResult(&res)
	return res
}

// pushGroup sends from every member of one receipt cohort over its
// dialled channels (the reference interface path; fastpath.go holds the
// CSR twin). It returns the transmissions charged.
func (e *Engine) pushGroup(group []int32, ia int, dialAll bool) int64 {
	var tx int64
	loss := e.cfg.MessageLossProb
	for _, v := range group {
		if e.informedAt[v] != int32(ia) || !e.topo.Alive(int(v)) {
			continue // stale entry (node churned out / reset)
		}
		if !dialAll {
			e.sampleDialsFor(int(v), &e.seq)
		}
		base := int(v) * e.k
		for j := 0; j < e.k; j++ {
			w := e.dialTargets[base+j]
			if w < 0 {
				continue
			}
			tx++
			e.markUsed(int(v), int(w))
			if loss > 0 && e.msgLost(&e.seq) {
				continue
			}
			e.deliver(w)
		}
	}
	return tx
}

// pullScan walks every established channel v→w and lets an informed,
// pulling callee w answer the caller v (reference interface path). It
// returns the transmissions charged.
func (e *Engine) pullScan(t int) int64 {
	var tx int64
	loss := e.cfg.MessageLossProb
	for v := 0; v < e.n; v++ {
		if !e.topo.Alive(v) {
			continue
		}
		base := v * e.k
		for j := 0; j < e.k; j++ {
			w := e.dialTargets[base+j]
			if w < 0 {
				continue
			}
			ia := e.informedAt[w]
			if ia == Uninformed || int(ia) >= t {
				continue // callee uninformed (this round's receipts excluded)
			}
			if !e.pullDec[ia] {
				continue
			}
			tx++
			e.markUsed(v, int(w))
			if loss > 0 && e.msgLost(&e.seq) {
				continue
			}
			e.deliver(int32(v))
		}
	}
	return tx
}

// recordRound charges the round's totals to res and, when RecordRounds or
// an Observer is set, materialises the per-round metrics (both engine
// paths share it). With neither consumer it stays allocation-free.
func (e *Engine) recordRound(res *Result, t, newly, informedCount int, roundTx int64) {
	budget := e.dialBudget()
	res.Transmissions += roundTx
	res.ChannelsDialed += budget
	res.Rounds = t
	if !e.cfg.RecordRounds && e.cfg.Observer == nil {
		return
	}
	rm := RoundMetrics{
		Round:         t,
		NewlyInformed: newly,
		Informed:      informedCount,
		Transmissions: roundTx,
		ChannelsDial:  budget,
	}
	if e.cfg.TrackEdgeUse {
		for v := 0; v < e.n; v++ {
			if e.unusedDeg[v] > 0 {
				rm.UnusedEdgeNodes++
			}
		}
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.OnRound(rm)
	}
	if e.cfg.RecordRounds {
		res.PerRound = append(res.PerRound, rm)
	}
}

// noteCompletion updates FirstAllInformed after round t and reports
// whether the run should stop early. Churn can re-introduce uninformed
// nodes after completion, which resets the completion round.
func (e *Engine) noteCompletion(res *Result, t, informedCount int, churning bool) (stop bool) {
	if informedCount >= e.aliveCount() {
		if res.FirstAllInformed < 0 {
			res.FirstAllInformed = t
		}
		return e.cfg.StopEarly
	}
	if churning {
		res.FirstAllInformed = -1
	}
	return false
}

// finishResult fills the end-of-run summary fields from the final state.
func (e *Engine) finishResult(res *Result) {
	res.AliveNodes = e.aliveCount()
	res.Informed = 0
	if e.fast {
		for v := 0; v < e.n; v++ {
			if e.aliveFast(v) && e.informedAt[v] != Uninformed {
				res.Informed++
			}
		}
	} else {
		for v := 0; v < e.n; v++ {
			if e.topo.Alive(v) && e.informedAt[v] != Uninformed {
				res.Informed++
			}
		}
	}
	res.AllInformed = res.Informed == res.AliveNodes && res.AliveNodes > 0
	res.InformedAt = append([]int32(nil), e.informedAt...)
}

// edgeKey canonically encodes the undirected edge (v,w).
func edgeKey(v, w int) int64 {
	if v > w {
		v, w = w, v
	}
	return int64(v)<<32 | int64(w)
}

// markUsed records that edge (v,w) carried a transmission (Lemma 4's
// census). The first use decrements both endpoints' unused-edge counters
// (twice at v for a self-loop).
func (e *Engine) markUsed(v, w int) {
	if e.usedEdges == nil {
		return
	}
	e.markUsedKey(edgeKey(v, w))
}

// markUsedKey is markUsed for a pre-encoded edge key (the sharded engine
// buffers keys per shard and merges them here, in shard order).
func (e *Engine) markUsedKey(key int64) {
	if _, done := e.usedEdges[key]; done {
		return
	}
	e.usedEdges[key] = struct{}{}
	e.unusedDeg[int(key>>32)]--
	e.unusedDeg[int(key&0xffffffff)]--
}

// deliver marks w as newly informed this round unless already informed or
// dead. Receipts only take effect at the end of the round.
func (e *Engine) deliver(w int32) {
	if !e.topo.Alive(int(w)) {
		return
	}
	if e.informedAt[w] != Uninformed || e.isPending[w] {
		return
	}
	e.isPending[w] = true
	e.pending = append(e.pending, w)
}

// dialState bundles a PRNG stream with its reusable sampling scratch and
// the geometric fault-skip counters. The sequential path owns one; every
// shard of the parallel engine owns its own, which is what makes the
// per-shard passes race-free and deterministic regardless of worker count.
type dialState struct {
	rng     *xrand.Rand
	dialIdx []int
	scratch []int

	// chanGap/lossGap are the Config.GeometricFaults skip counters: the
	// number of fault-free decisions left before the next channel failure
	// / message loss on this stream (-1 = not drawn yet; counters are
	// drawn lazily so a stream that never reaches a decision point never
	// consumes randomness for it).
	chanGap int
	lossGap int
}

// newDialState builds a dialState for one PRNG stream.
func newDialState(rng *xrand.Rand, k int) dialState {
	return dialState{rng: rng, dialIdx: make([]int, 0, k), chanGap: -1, lossGap: -1}
}

// chanFails decides whether the next dialled channel fails to establish.
// Callers must guard with ChannelFailureProb > 0.
func (e *Engine) chanFails(ds *dialState) bool {
	if !e.cfg.GeometricFaults {
		return ds.rng.Bool(e.cfg.ChannelFailureProb)
	}
	if ds.chanGap < 0 {
		ds.chanGap = ds.rng.Geometric(e.cfg.ChannelFailureProb)
	}
	if ds.chanGap == 0 {
		ds.chanGap = -1
		return true
	}
	ds.chanGap--
	return false
}

// msgLost decides whether the next transmission is lost in transit.
// Callers must guard with MessageLossProb > 0.
func (e *Engine) msgLost(ds *dialState) bool {
	if !e.cfg.GeometricFaults {
		return ds.rng.Bool(e.cfg.MessageLossProb)
	}
	if ds.lossGap < 0 {
		ds.lossGap = ds.rng.Geometric(e.cfg.MessageLossProb)
	}
	if ds.lossGap == 0 {
		ds.lossGap = -1
		return true
	}
	ds.lossGap--
	return false
}

// scratchFor returns a scratch slice with capacity >= n for DistinctK.
func (ds *dialState) scratchFor(n int) []int {
	if cap(ds.scratch) < n {
		ds.scratch = make([]int, n)
	}
	return ds.scratch
}

// sampleAllDials samples the dial targets of every alive node.
func (e *Engine) sampleAllDials() {
	if e.fast {
		for v := 0; v < e.n; v++ {
			if e.aliveFast(v) {
				e.sampleDialsFast(v, &e.seq)
			} else {
				e.clearDialRow(v)
			}
		}
		return
	}
	for v := 0; v < e.n; v++ {
		if e.topo.Alive(v) {
			e.sampleDialsFor(v, &e.seq)
		} else {
			e.clearDialRow(v)
		}
	}
}

// clearDialRow marks every dial slot of v as "no channel".
func (e *Engine) clearDialRow(v int) {
	base := v * e.k
	for j := 0; j < e.k; j++ {
		e.dialTargets[base+j] = Uninformed
	}
}

// sampleDialsFor fills e.dialTargets for node v: min(k, deg) distinct
// neighbours, with dead targets and failed channels recorded as -1. All
// randomness is drawn from ds, which must own node v (the engine-level
// state for the sequential path, the owning shard's for the parallel one).
// This is the reference interface path; sampleDialsFast is its CSR twin.
func (e *Engine) sampleDialsFor(v int, ds *dialState) {
	base := v * e.k
	for j := 0; j < e.k; j++ {
		e.dialTargets[base+j] = Uninformed
	}
	deg := e.topo.Degree(v)
	if deg == 0 {
		return
	}
	if e.cfg.AvoidRecent > 0 {
		e.sampleWithMemory(v, deg, ds)
		return
	}
	if e.cfg.DialStrategy == DialQuasirandom {
		e.sampleQuasirandom(v, deg, ds)
		return
	}
	kk := e.k
	if kk > deg {
		kk = deg
	}
	ds.dialIdx = ds.rng.DistinctK(ds.dialIdx, kk, deg, ds.scratchFor(deg))
	for j, idx := range ds.dialIdx {
		w := e.topo.Neighbor(v, idx)
		if !e.topo.Alive(w) {
			continue
		}
		if e.cfg.ChannelFailureProb > 0 && e.chanFails(ds) {
			continue
		}
		e.dialTargets[base+j] = int32(w)
	}
}

// sampleQuasirandom dials the next k entries of v's neighbour list,
// drawing a uniform start position on the first dial (Doerr et al.'s
// quasirandom model).
func (e *Engine) sampleQuasirandom(v, deg int, ds *dialState) {
	base := v * e.k
	if e.listCursor[v] < 0 {
		e.listCursor[v] = int32(ds.rng.IntN(deg))
	}
	kk := e.k
	if kk > deg {
		kk = deg
	}
	cur := int(e.listCursor[v])
	for j := 0; j < kk; j++ {
		w := e.topo.Neighbor(v, (cur+j)%deg)
		if !e.topo.Alive(w) {
			continue
		}
		if e.cfg.ChannelFailureProb > 0 && e.chanFails(ds) {
			continue
		}
		e.dialTargets[base+j] = int32(w)
	}
	e.listCursor[v] = int32((cur + kk) % deg)
}

// sampleWithMemory implements footnote 2's sequentialised model: one dial
// per round, chosen uniformly among neighbours not contacted in the last
// AvoidRecent rounds. If every neighbour is recent (possible only when
// degree <= AvoidRecent), the choice falls back to uniform.
func (e *Engine) sampleWithMemory(v, deg int, ds *dialState) {
	r := e.cfg.AvoidRecent
	memBase := v * r
	choice := -1
	for attempt := 0; attempt < 4*deg+16; attempt++ {
		idx := ds.rng.IntN(deg)
		w := e.topo.Neighbor(v, idx)
		recent := false
		for i := 0; i < r; i++ {
			if e.recent[memBase+i] == int32(w) {
				recent = true
				break
			}
		}
		if !recent {
			choice = w
			break
		}
	}
	if choice < 0 {
		choice = e.topo.Neighbor(v, ds.rng.IntN(deg))
	}
	// Record the partner regardless of channel failure: the node dialled it.
	e.recent[memBase+e.recentPos[v]] = int32(choice)
	e.recentPos[v] = (e.recentPos[v] + 1) % r
	if !e.topo.Alive(choice) {
		return
	}
	if e.cfg.ChannelFailureProb > 0 && e.chanFails(ds) {
		return
	}
	e.dialTargets[v*e.k] = int32(choice)
}

// dialBudget returns the number of dials the model mandates per round.
// The value is cached: frozen topologies compute it once in NewEngine,
// dynamic ones refresh it after membership changes (refreshBudget), so
// the O(n) DialBudget scan no longer runs every round.
func (e *Engine) dialBudget() int64 {
	return e.budget
}

// refreshBudget recomputes the cached dial budget after a topology Step,
// but only when membership actually changed: joins were reported or the
// alive count moved. Steps that merely rewire edges degree-preservingly
// (the overlay's Mix) leave the budget untouched. A Stepper that changes
// degrees without any membership change would need to pair the change
// with a join/leave to be budgeted — no topology in this repository does
// that, and the per-round budget test on the churn overlay pins the
// cached values against fresh DialBudget scans.
func (e *Engine) refreshBudget(joined []int) {
	alive := e.aliveCount()
	if len(joined) == 0 && alive == e.budgetAlive {
		return
	}
	e.budgetAlive = alive
	e.budget = DialBudget(e.topo, e.k)
}

// aliveCount returns the number of alive nodes.
func (e *Engine) aliveCount() int {
	if e.fast && e.aliveBits == nil {
		return e.n
	}
	if _, ok := e.topo.(Static); ok {
		return e.n
	}
	if e.aliveCounter != nil {
		return e.aliveCounter.AliveCount()
	}
	if e.fast {
		c := 0
		for _, w := range e.aliveBits {
			c += bits.OnesCount64(w)
		}
		return c
	}
	c := 0
	for v := 0; v < e.n; v++ {
		if e.topo.Alive(v) {
			c++
		}
	}
	return c
}

// aliveFast reports liveness from the CSR view's bitset (nil = all
// alive). Fast-path loops use it exactly where the reference path calls
// Topology.Alive; neither draws randomness, which is what keeps the two
// paths bit-identical.
func (e *Engine) aliveFast(v int) bool {
	return e.aliveBits == nil || e.aliveBits[uint(v)>>6]&(1<<(uint(v)&63)) != 0
}

// refreshCSR re-fetches the topology's fast-path view (CSR or implicit)
// after a churn Step, but only when the epoch advanced — the contract
// that lets churn runs keep the fast path between churn events at the
// cost of one epoch compare per round.
func (e *Engine) refreshCSR() {
	if e.impView != nil {
		nbrs, alive, epoch := e.impView.ImplicitView()
		if epoch == e.csrEpoch {
			return
		}
		e.impNbrs, e.aliveBits, e.csrEpoch = nbrs, alive, epoch
		return
	}
	if e.fastView == nil {
		return
	}
	off, adj, alive, epoch := e.fastView.CSRView()
	if epoch == e.csrEpoch {
		return
	}
	e.csrOff, e.csrAdj, e.aliveBits, e.csrEpoch = off, adj, alive, epoch
}

// recount recomputes the informed-alive count after churn invalidated the
// incremental counter (on the fast path over the CSR view's bitset —
// callers refresh the view first).
func (e *Engine) recount() int {
	c := 0
	if e.fast {
		for v := 0; v < e.n; v++ {
			if e.aliveFast(v) && e.informedAt[v] != Uninformed {
				c++
			}
		}
		return c
	}
	for v := 0; v < e.n; v++ {
		if e.topo.Alive(v) && e.informedAt[v] != Uninformed {
			c++
		}
	}
	return c
}

// Run is a convenience wrapper: build an engine from cfg and run it.
func Run(cfg Config) (Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run(), nil
}
