package phonecall

// Uninformed is the sentinel receipt round for nodes that have not yet
// received the message.
const Uninformed = -1

// Protocol is a strictly oblivious broadcast protocol in the (modified)
// random phone call model. All decisions are functions of the current round
// t and of the round at which the deciding node first received the message
// (informedAt). Protocols therefore cannot base decisions on neighbour
// identities or on the history of communication partners, matching the
// model of §1.2 and the lower-bound model of §2 of the paper.
//
// Rounds are numbered from 1; the message is created at the source in
// round 0 (so the source has informedAt == 0 and the message's age in
// round t is t).
type Protocol interface {
	// Name identifies the protocol in traces and result tables.
	Name() string
	// Choices returns k, the number of distinct neighbours every node dials
	// per round (1 in the standard phone call model, 4 in the paper's
	// modified model). Nodes of degree < k dial all their neighbours.
	Choices() int
	// Horizon returns the total number of rounds the schedule runs for.
	// The engine stops after Horizon rounds regardless of progress (the
	// algorithms in the paper are Monte Carlo with a fixed running time).
	Horizon() int
	// SendPush reports whether a node informed in round informedAt (>= 0)
	// transmits the message over its outgoing (dialled) channels in round t.
	// It is only consulted for nodes with informedAt < t: a message received
	// in the current round cannot be forwarded in the same round.
	SendPush(t, informedAt int) bool
	// SendPull reports whether a node informed in round informedAt (>= 0)
	// transmits the message over its incoming channels in round t (i.e.
	// answers the nodes that dialled it).
	SendPull(t, informedAt int) bool
}

// PullFree is an optional marker for protocols that never pull. The engine
// uses it to skip dial sampling for nodes whose channels cannot carry the
// message, which keeps push-only rounds proportional to the number of
// senders instead of n. Protocols that sometimes pull simply don't
// implement it; the engine then asks SendPull round by round.
type PullFree interface {
	// NeverPulls reports that SendPull is false for all inputs.
	NeverPulls() bool
}
