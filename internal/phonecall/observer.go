package phonecall

// Observer receives streaming per-round callbacks while a run executes, so
// callers can consume metrics online instead of retaining a full trace
// (Config.RecordRounds) in memory. Both engine paths invoke observers from
// the coordinating goroutine only, in a deterministic order:
//
//   - OnInformed(source, 0) once, before round 1;
//   - for every round t, OnInformed(v, t) for each node first informed in
//     round t (in the engine's receipt order), then OnRound with round t's
//     metrics.
//
// Under churn a node can lose the message when it rejoins and be informed
// again later, so OnInformed may fire more than once for the same node.
// A nil Config.Observer adds no allocations and no per-round work to the
// steady-state loop beyond a nil check.
type Observer interface {
	// OnRound is called once per executed round, after the round's receipts
	// have been applied.
	OnRound(RoundMetrics)
	// OnInformed is called when node first receives the message (in round
	// `round`; 0 is the source's creation round).
	OnInformed(node, round int)
}
