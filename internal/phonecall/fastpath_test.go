// Package phonecall_test holds the cross-package contracts of the engine:
// the CSR fast path pinned bit-identical to the reference interface path
// across the E1–E20 configuration matrix (built from the real protocol
// packages, which the internal test package cannot import), the geometric
// fault-skipping mode's determinism and statistics, and the dial-budget
// cache exercised on the E13b churn overlay.
package phonecall_test

import (
	"fmt"
	"testing"

	"regcast/internal/baseline"
	"regcast/internal/core"
	"regcast/internal/graph"
	"regcast/internal/oblivious"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// sameResult fails unless a and b are bit-identical runs.
func sameResult(t *testing.T, label string, a, b phonecall.Result) {
	t.Helper()
	if a.Rounds != b.Rounds || a.Transmissions != b.Transmissions ||
		a.ChannelsDialed != b.ChannelsDialed || a.FirstAllInformed != b.FirstAllInformed ||
		a.Informed != b.Informed || a.AllInformed != b.AllInformed || a.AliveNodes != b.AliveNodes {
		t.Fatalf("%s: summaries differ:\n%+v\n%+v", label, a, b)
	}
	for v := range a.InformedAt {
		if a.InformedAt[v] != b.InformedAt[v] {
			t.Fatalf("%s: InformedAt[%d] = %d vs %d", label, v, a.InformedAt[v], b.InformedAt[v])
		}
	}
	if len(a.PerRound) != len(b.PerRound) {
		t.Fatalf("%s: PerRound lengths differ: %d vs %d", label, len(a.PerRound), len(b.PerRound))
	}
	for i := range a.PerRound {
		if a.PerRound[i] != b.PerRound[i] {
			t.Fatalf("%s: PerRound[%d] differs: %+v vs %+v", label, i, a.PerRound[i], b.PerRound[i])
		}
	}
}

func mustRegular(t testing.TB, n, d int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegular(n, d, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// goldenCase is one configuration of the E1–E20 matrix. The experiments
// field records which experiments the configuration stands in for (E15
// and E20 run on their own engines — MultiEngine and the median-counter
// state machine — which do not have a CSR fast path and are out of
// scope here).
type goldenCase struct {
	name        string
	experiments string
	topo        func(t *testing.T) phonecall.Topology
	proto       func(t *testing.T, n int) phonecall.Protocol
	mutate      func(cfg *phonecall.Config)
}

const goldenN = 512

func regularTopo(d int) func(t *testing.T) phonecall.Topology {
	return func(t *testing.T) phonecall.Topology {
		return phonecall.NewStatic(mustRegular(t, goldenN, d, 1701))
	}
}

func goldenCases() []goldenCase {
	fourChoice := func(t *testing.T, n int) phonecall.Protocol {
		p, err := core.New(n, 8)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	push := func(k int) func(t *testing.T, n int) phonecall.Protocol {
		return func(t *testing.T, n int) phonecall.Protocol {
			p, err := baseline.NewPush(n, k)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
	}
	return []goldenCase{
		{
			name: "four-choice-alg1", experiments: "E1 E2 E5 E6 E9 E13a E19",
			topo: regularTopo(8), proto: fourChoice,
		},
		{
			name: "four-choice-alg2", experiments: "E3",
			topo: regularTopo(8),
			proto: func(t *testing.T, n int) phonecall.Protocol {
				p, err := core.NewAlgorithm2(n)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
		{
			name: "push-k1-stop-early", experiments: "E2 E9 E19",
			topo: regularTopo(8), proto: push(1),
			mutate: func(cfg *phonecall.Config) { cfg.StopEarly = true },
		},
		{
			name: "pull-k1", experiments: "E9",
			topo: regularTopo(8),
			proto: func(t *testing.T, n int) phonecall.Protocol {
				p, err := baseline.NewPull(n, 1)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
		{
			name: "push-pull-k1", experiments: "E9 E18",
			topo: regularTopo(8),
			proto: func(t *testing.T, n int) phonecall.Protocol {
				p, err := baseline.NewPushPull(n, 1)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
		{
			name: "push-k2", experiments: "E10",
			topo: regularTopo(8), proto: push(2),
		},
		{
			name: "push-k3", experiments: "E10",
			topo: regularTopo(8), proto: push(3),
		},
		{
			name: "oblivious-always-both", experiments: "E4",
			topo: regularTopo(8),
			proto: func(t *testing.T, n int) phonecall.Protocol {
				p, err := oblivious.AlwaysBoth(60)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
		{
			name: "oblivious-push-then-pull", experiments: "E4",
			topo: regularTopo(8),
			proto: func(t *testing.T, n int) phonecall.Protocol {
				p, err := oblivious.PushThenPull(9, 60)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
		{
			name: "sequentialised-memory3", experiments: "E11",
			topo: regularTopo(8),
			proto: func(t *testing.T, n int) phonecall.Protocol {
				base, err := core.NewAlgorithm1(n)
				if err != nil {
					t.Fatal(err)
				}
				return core.NewSequentialised(base)
			},
			mutate: func(cfg *phonecall.Config) {
				cfg.AvoidRecent = cfg.Protocol.(*core.Sequentialised).Memory()
			},
		},
		{
			name: "four-choice-channel-failure", experiments: "E12",
			topo: regularTopo(8), proto: fourChoice,
			mutate: func(cfg *phonecall.Config) { cfg.ChannelFailureProb = 0.2 },
		},
		{
			name: "four-choice-message-loss", experiments: "E12",
			topo: regularTopo(8), proto: fourChoice,
			mutate: func(cfg *phonecall.Config) { cfg.MessageLossProb = 0.2 },
		},
		{
			name: "push-pull-k2-edge-census", experiments: "E7 E8",
			topo: regularTopo(8),
			proto: func(t *testing.T, n int) phonecall.Protocol {
				p, err := baseline.NewPushPull(n, 2)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			mutate: func(cfg *phonecall.Config) { cfg.TrackEdgeUse = true },
		},
		{
			name: "quasirandom-push", experiments: "E17",
			topo: regularTopo(8), proto: push(1),
			mutate: func(cfg *phonecall.Config) { cfg.DialStrategy = phonecall.DialQuasirandom },
		},
		{
			name: "complete-graph-rejection-regime", experiments: "E14 E16",
			topo: func(t *testing.T) phonecall.Topology {
				g, err := graph.Complete(128)
				if err != nil {
					t.Fatal(err)
				}
				return phonecall.NewStatic(g)
			},
			proto: func(t *testing.T, n int) phonecall.Protocol {
				p, err := core.New(128, 127)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
		{
			name: "ring-degree-cap", experiments: "E16",
			topo: func(t *testing.T) phonecall.Topology {
				g, err := graph.Ring(96)
				if err != nil {
					t.Fatal(err)
				}
				return phonecall.NewStatic(g)
			},
			proto: func(t *testing.T, n int) phonecall.Protocol {
				p, err := baseline.NewPush(96, 4) // k=4 capped by degree 2
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
	}
}

// TestFastPathGoldenE1toE20 pins the tentpole contract: for every
// configuration shape the E1–E20 experiments use — protocols, dial
// strategies, fault models, dial memory, the edge census, degree regimes
// — the CSR fast path produces bit-identical traces to the reference
// interface path, on the sequential engine and on the sharded engine at
// several worker counts. Geometric fault skipping changes RNG consumption
// relative to Bernoulli mode, but fast-vs-reference identity holds inside
// each mode, so both are pinned.
func TestFastPathGoldenE1toE20(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			topo := tc.topo(t)
			proto := tc.proto(t, topo.NumNodes())
			for _, geometric := range []bool{false, true} {
				for _, workers := range []int{0, 1, 4} {
					base := phonecall.Config{
						Topology:        topo,
						Protocol:        proto,
						Source:          3,
						RecordRounds:    true,
						Workers:         workers,
						GeometricFaults: geometric,
					}
					if tc.mutate != nil {
						tc.mutate(&base)
					}
					if base.TrackEdgeUse && workers == 0 && geometric {
						// covered; keep the matrix small
						continue
					}
					run := func(disable bool) phonecall.Result {
						cfg := base
						cfg.DisableFastPath = disable
						cfg.RNG = xrand.New(20260726)
						res, err := phonecall.Run(cfg)
						if err != nil {
							t.Fatal(err)
						}
						return res
					}
					label := fmt.Sprintf("%s workers=%d geometric=%v (%s)", tc.name, workers, geometric, tc.experiments)
					sameResult(t, label, run(false), run(true))
				}
			}
		})
	}
}

// dynamicRing is a small churning topology (one node flaps) WITHOUT a
// CSR view; the fast path must not engage on it, and forcing the
// reference path must be a no-op — both runs take the same code path and
// must match trivially. (Churning topologies WITH a CSR view — the
// overlay — engage the fast path and are pinned bit-identical to the
// reference path by TestFastPathGoldenChurn.)
type dynamicRing struct {
	g     *graph.Graph
	round int
}

func (c *dynamicRing) NumNodes() int         { return c.g.NumNodes() }
func (c *dynamicRing) Degree(v int) int      { return c.g.Degree(v) }
func (c *dynamicRing) Neighbor(v, i int) int { return c.g.Neighbor(v, i) }
func (c *dynamicRing) Alive(v int) bool {
	if v == c.g.NumNodes()-1 {
		return c.round < 3 || c.round >= 6
	}
	return true
}
func (c *dynamicRing) Step(round int) []int {
	c.round = round
	if round == 6 {
		return []int{c.g.NumNodes() - 1}
	}
	return nil
}

// TestFastPathDisengagesOnChurn covers viewless dynamic topologies: they
// stay on the reference path and DisableFastPath changes nothing.
func TestFastPathDisengagesOnChurn(t *testing.T) {
	g := mustRegular(t, 128, 6, 31)
	push, err := baseline.NewPush(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(disable bool) phonecall.Result {
		res, err := phonecall.Run(phonecall.Config{
			Topology:        &dynamicRing{g: g},
			Protocol:        push,
			RNG:             xrand.New(77),
			RecordRounds:    true,
			DisableFastPath: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sameResult(t, "churn (E13b shape)", run(false), run(true))
}

// TestGeometricFaultsDeterminism pins the compatibility contract of
// Config.GeometricFaults: same seed => same trace, worker-count
// independence on the sharded engine, and a genuinely different stream
// consumption than Bernoulli mode (the reason the switch exists).
func TestGeometricFaultsDeterminism(t *testing.T) {
	g := mustRegular(t, 256, 8, 91)
	pp, err := baseline.NewPushPull(256, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int, geometric bool) phonecall.Result {
		res, err := phonecall.Run(phonecall.Config{
			Topology:           phonecall.NewStatic(g),
			Protocol:           pp,
			RNG:                xrand.New(5),
			ChannelFailureProb: 0.15,
			MessageLossProb:    0.25,
			GeometricFaults:    geometric,
			RecordRounds:       true,
			Workers:            workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sameResult(t, "geometric same-seed", run(0, true), run(0, true))
	sameResult(t, "geometric workers 1 vs 8", run(1, true), run(8, true))

	bern, geom := run(0, false), run(0, true)
	same := bern.Transmissions == geom.Transmissions && bern.FirstAllInformed == geom.FirstAllInformed
	if same {
		for v := range bern.InformedAt {
			if bern.InformedAt[v] != geom.InformedAt[v] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("geometric mode reproduced the Bernoulli trace exactly; the compatibility switch is not switching anything")
	}
}

// longPushProto is a one-choice always-push schedule with an explicit
// horizon, for statistics that must outlive the baseline schedules'
// c·log n budget under heavy loss.
type longPushProto struct{ horizon int }

func (p longPushProto) Name() string            { return "test-long-push" }
func (p longPushProto) Choices() int            { return 1 }
func (p longPushProto) Horizon() int            { return p.horizon }
func (p longPushProto) SendPush(t, ia int) bool { return true }
func (p longPushProto) SendPull(t, ia int) bool { return false }
func (p longPushProto) NeverPulls() bool        { return true }

// TestGeometricFaultsStatistics checks the geometric skip counters
// realise the right fault rates.
//
// Channel failures have an exact per-round expectation: on a push-only
// schedule every informed sender dials min(k, d) channels and each
// independently fails with probability p, so over the whole run
// E[transmissions] = (1-p) × (dialled sender channels). Both quantities
// are measurable from the per-round metrics, and the ratio must land
// within a few standard errors of 1-p.
//
// Message loss has no per-transmission observable (duplicates mask
// deliveries), so the two modes are compared distributionally instead:
// mean completion round and mean transmissions over many seeds must
// agree between Bernoulli and geometric sampling, as in the sharded-vs-
// sequential equivalence test.
func TestGeometricFaultsStatistics(t *testing.T) {
	g := mustRegular(t, 512, 8, 121)
	push, err := baseline.NewPush(512, 1)
	if err != nil {
		t.Fatal(err)
	}

	const p = 0.3
	var senderDials, tx int64
	for seed := uint64(0); seed < 10; seed++ {
		res, err := phonecall.Run(phonecall.Config{
			Topology:           phonecall.NewStatic(g),
			Protocol:           push,
			RNG:                xrand.New(1000 + seed),
			ChannelFailureProb: p,
			GeometricFaults:    true,
			RecordRounds:       true,
		})
		if err != nil {
			t.Fatal(err)
		}
		informed := int64(1)
		for _, rm := range res.PerRound {
			senderDials += informed // every informed node dials one channel
			informed = int64(rm.Informed)
		}
		tx += res.Transmissions
	}
	got := float64(tx) / float64(senderDials)
	want := 1 - p
	// senderDials ~ 700k trials; 4 standard errors of a Bernoulli mean is
	// well under 0.005 — use 0.01 for slack.
	if got < want-0.01 || got > want+0.01 {
		t.Errorf("geometric channel-failure rate: established fraction %.4f, want %.2f +/- 0.01", got, want)
	}

	// A generous horizon: the baseline schedule's c·log n rounds can fall
	// short under 30% loss, and an incomplete run would skew the means.
	const reps = 30
	longPush := longPushProto{horizon: 400}
	stat := func(geometric bool) (meanRounds, meanTx float64) {
		for seed := uint64(0); seed < reps; seed++ {
			res, err := phonecall.Run(phonecall.Config{
				Topology:        phonecall.NewStatic(g),
				Protocol:        longPush,
				RNG:             xrand.New(4000 + seed),
				MessageLossProb: 0.3,
				GeometricFaults: geometric,
				StopEarly:       true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllInformed {
				t.Fatalf("lossy push incomplete at seed %d", seed)
			}
			meanRounds += float64(res.FirstAllInformed)
			meanTx += float64(res.Transmissions)
		}
		return meanRounds / reps, meanTx / reps
	}
	bRounds, bTx := stat(false)
	gRounds, gTx := stat(true)
	if diff := bRounds - gRounds; diff > 1.5 || diff < -1.5 {
		t.Errorf("mean completion rounds: Bernoulli %.2f vs geometric %.2f differ too much", bRounds, gRounds)
	}
	if ratio := gTx / bTx; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("mean transmissions: Bernoulli %.1f vs geometric %.1f (ratio %.4f) differ too much", bTx, gTx, ratio)
	}
}
