package phonecall_test

import (
	"testing"

	"regcast/internal/baseline"
	"regcast/internal/graph"
	"regcast/internal/p2p/overlay"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// The dial-budget cache (refreshBudget) replaces the per-round O(n)
// DialBudget scan for dynamic topologies. These tests pin it two ways:
// on the real E13b churn overlay every per-round ChannelsDial must equal
// what a fresh scan of the stepped topology would charge, and on a
// membership-stable stepper the engine must not consult Degree at all
// after construction.

// churningTopo drives an overlay with its churner (the E13b combination)
// and records, after every step, the alive count the next round's budget
// must reflect.
type churningTopo struct {
	*overlay.Overlay
	ch         *overlay.Churner
	aliveAfter []int
}

var _ phonecall.Stepper = (*churningTopo)(nil)
var _ phonecall.AliveCounter = (*churningTopo)(nil)

func (c *churningTopo) Step(round int) []int {
	joined := c.ch.Step(round)
	c.aliveAfter = append(c.aliveAfter, c.Overlay.AliveCount())
	return joined
}

// TestChurnBudgetMatchesTopologyE13b runs the E13b churn overlay under
// real join/leave/mix churn and checks every round's ChannelsDial against
// the overlay's ground truth: alive × min(k, d) (the maintained overlay
// keeps every alive peer at exactly degree d between rounds). A stale
// budget cache — recomputed never, or on the wrong rounds — cannot pass,
// and neither could a cache that misses leave-only or join+leave steps.
func TestChurnBudgetMatchesTopologyE13b(t *testing.T) {
	const (
		n = 256
		d = 8
		k = 2
	)
	for _, workers := range []int{0, 2} {
		master := xrand.New(42)
		ov, err := overlay.New(n, d, n, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		ch, err := overlay.NewChurner(ov, 0.02, 0.02, 5, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		topo := &churningTopo{Overlay: ov, ch: ch}
		push, err := baseline.NewPush(n, k)
		if err != nil {
			t.Fatal(err)
		}
		initialAlive := ov.AliveCount()
		res, err := phonecall.Run(phonecall.Config{
			Topology:     topo,
			Protocol:     push,
			RNG:          master.Split(),
			RecordRounds: true,
			Workers:      workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ch.Joins == 0 || ch.Leaves == 0 {
			t.Fatalf("churn did not exercise joins (%d) and leaves (%d)", ch.Joins, ch.Leaves)
		}
		for i, rm := range res.PerRound {
			aliveBefore := initialAlive
			if i > 0 {
				aliveBefore = topo.aliveAfter[i-1]
			}
			want := int64(aliveBefore) * int64(k)
			if rm.ChannelsDial != want {
				t.Fatalf("workers=%d round %d: ChannelsDial = %d, want alive(%d) × k(%d) = %d",
					workers, rm.Round, rm.ChannelsDial, aliveBefore, k, want)
			}
		}
	}
}

// meteredStatic is a static graph with a no-op Stepper: membership never
// changes, and every Degree call is counted.
type meteredStatic struct {
	g           *graph.Graph
	degreeCalls int
}

func (m *meteredStatic) NumNodes() int { return m.g.NumNodes() }
func (m *meteredStatic) Degree(v int) int {
	m.degreeCalls++
	return m.g.Degree(v)
}
func (m *meteredStatic) Neighbor(v, i int) int { return m.g.Neighbor(v, i) }
func (m *meteredStatic) Alive(v int) bool      { return true }
func (m *meteredStatic) Step(round int) []int  { return nil }

// silentK1 opens channels but never transmits, so the only possible
// Degree consumer after construction is a dial-budget recomputation.
type silentK1 struct{ horizon int }

func (p silentK1) Name() string            { return "test-silent" }
func (p silentK1) Choices() int            { return 1 }
func (p silentK1) Horizon() int            { return p.horizon }
func (p silentK1) SendPush(t, ia int) bool { return false }
func (p silentK1) SendPull(t, ia int) bool { return false }

// TestBudgetNotRecomputedWithoutMembershipChange is the sharp form of the
// fix: a dynamic topology whose steps never change membership must not be
// Degree-scanned again after NewEngine — before the cache, DialBudget ran
// its O(n) scan every round.
func TestBudgetNotRecomputedWithoutMembershipChange(t *testing.T) {
	g := mustRegular(t, 128, 6, 7)
	topo := &meteredStatic{g: g}
	res, err := phonecall.Run(phonecall.Config{
		Topology:     topo,
		Protocol:     silentK1{horizon: 50},
		RNG:          xrand.New(3),
		RecordRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	setup := 128 // one DialBudget scan in NewEngine
	if topo.degreeCalls != setup {
		t.Errorf("membership-stable stepper run made %d Degree calls, want %d (setup scan only)",
			topo.degreeCalls, setup)
	}
	if res.ChannelsDialed != int64(50*128) {
		t.Errorf("ChannelsDialed = %d, want %d", res.ChannelsDialed, 50*128)
	}
}
