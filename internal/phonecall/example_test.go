package phonecall_test

import (
	"fmt"
	"log"

	"regcast/internal/baseline"
	"regcast/internal/graph"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// Example runs the classical one-choice push protocol and inspects the
// per-round trace: exponential growth, then the long saturation tail that
// costs push its Θ(n·log n) transmissions.
func Example() {
	g, err := graph.RandomRegular(1024, 8, xrand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	push, err := baseline.NewPush(1024, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := phonecall.Run(phonecall.Config{
		Topology:     phonecall.NewStatic(g),
		Protocol:     push,
		RNG:          xrand.New(2),
		RecordRounds: true,
		StopEarly:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("completed:", res.AllInformed)
	half := 0
	for _, rm := range res.PerRound {
		if rm.Informed >= 512 {
			half = rm.Round
			break
		}
	}
	fmt.Println("half informed by round:", half)
	fmt.Println("tail rounds after half:", res.FirstAllInformed-half)
	// Output:
	// completed: true
	// half informed by round: 13
	// tail rounds after half: 7
}
