package phonecall

import (
	"fmt"
	"testing"

	"regcast/internal/graph"
	"regcast/internal/xrand"
)

// TestFastPathEngagement pins when the CSR fast path engages: on any
// topology exposing an epoch-stamped CSR view (frozen Static graphs and
// CSRViewer implementations with liveness bitsets alike), and never when
// DisableFastPath asks for the reference path or the topology offers no
// view.
func TestFastPathEngagement(t *testing.T) {
	g := testGraph(t, 64, 4, 1)
	base := Config{Topology: NewStatic(g), Protocol: pushProto{1, 10}, RNG: xrand.New(1)}

	e, err := NewEngine(base)
	if err != nil {
		t.Fatal(err)
	}
	if !e.fast {
		t.Error("Static topology did not engage the fast path")
	}
	if e.csrOff == nil || e.csrAdj == nil {
		t.Error("fast engine is missing its CSR view")
	}
	if e.aliveBits != nil {
		t.Error("Static view carries an alive bitset; it should be nil (all alive)")
	}

	ref := base
	ref.DisableFastPath = true
	e, err = NewEngine(ref)
	if err != nil {
		t.Fatal(err)
	}
	if e.fast {
		t.Error("DisableFastPath did not force the reference path")
	}

	dyn := base
	dyn.Topology = &churnTopo{g: g}
	e, err = NewEngine(dyn)
	if err != nil {
		t.Fatal(err)
	}
	if e.fast {
		t.Error("a Stepper without a CSR view engaged the fast path")
	}

	viewed := base
	viewed.Topology = newViewTopo(g, 64-1) // highest id dead
	e, err = NewEngine(viewed)
	if err != nil {
		t.Fatal(err)
	}
	if !e.fast {
		t.Error("CSRViewer topology did not engage the fast path")
	}
	if e.aliveBits == nil {
		t.Error("partially-alive CSR view lost its alive bitset")
	}
	if e.aliveCount() != 63 {
		t.Errorf("aliveCount over the bitset = %d, want 63", e.aliveCount())
	}

	// The dense edge census needs a fully-alive view; with dead ids the
	// engine must take the reference path (which records the census in
	// the endpoint-keyed map).
	census := viewed
	census.RecordRounds = true
	census.TrackEdgeUse = true
	e, err = NewEngine(census)
	if err != nil {
		t.Fatal(err)
	}
	if e.fast {
		t.Error("edge census on a partially-alive view kept the fast path")
	}
	if e.usedEdges == nil {
		t.Error("edge census on a partially-alive view lost the reference map")
	}
}

// viewTopo adapts a frozen graph into a partially-alive CSRViewer — the
// minimal stand-in for overlay-shaped topologies in engine unit tests.
type viewTopo struct {
	g     *graph.Graph
	alive []uint64
}

func newViewTopo(g *graph.Graph, dead ...int) *viewTopo {
	v := &viewTopo{g: g, alive: make([]uint64, (g.NumNodes()+63)/64)}
	for i := 0; i < g.NumNodes(); i++ {
		v.alive[uint(i)>>6] |= 1 << (uint(i) & 63)
	}
	for _, d := range dead {
		v.alive[uint(d)>>6] &^= 1 << (uint(d) & 63)
	}
	return v
}

func (v *viewTopo) NumNodes() int         { return v.g.NumNodes() }
func (v *viewTopo) Degree(n int) int      { return v.g.Degree(n) }
func (v *viewTopo) Neighbor(n, i int) int { return v.g.Neighbor(n, i) }
func (v *viewTopo) Alive(n int) bool      { return v.alive[uint(n)>>6]&(1<<(uint(n)&63)) != 0 }
func (v *viewTopo) CSRView() (offsets, adj []int32, alive []uint64, epoch uint64) {
	offsets, adj = v.g.CSR()
	return offsets, adj, v.alive, 0
}

// TestEdgeCensusBitset unit-tests the CSR census structures against the
// reference map semantics: parallel edges between the same endpoints
// share one id (the map conflates them by endpoint key), a self-loop's
// two slots share one id, and the first markUsedID decrements both
// endpoints' unused counters exactly once (twice at v for a self-loop).
func TestEdgeCensusBitset(t *testing.T) {
	// Node 0: self-loop; nodes 1,2: double (parallel) edge; nodes 2,3: simple.
	g, err := graph.NewFromEdges(4, [][2]int32{{0, 0}, {0, 1}, {1, 2}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{
		Topology:     NewStatic(g),
		Protocol:     pushProto{1, 4},
		RNG:          xrand.New(1),
		RecordRounds: true,
		TrackEdgeUse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.usedEdges != nil {
		t.Fatal("fast engine built the reference census map")
	}
	if len(e.edgeEndA) != 4 {
		t.Fatalf("census found %d distinct edges, want 4 (self-loop, conflated double edge, 0-1, 2-3)", len(e.edgeEndA))
	}
	// The two slots of the parallel pair 1-2 at node 1 must share an id.
	var ids []int32
	off, adj := g.CSR()
	for s := off[1]; s < off[2]; s++ {
		if adj[s] == 2 {
			ids = append(ids, e.slotEdge[s])
		}
	}
	if len(ids) != 2 || ids[0] != ids[1] {
		t.Fatalf("parallel edges got ids %v, want one shared id", ids)
	}

	wantDeg := []int32{3, 3, 3, 1}
	for v, want := range wantDeg {
		if e.unusedDeg[v] != want {
			t.Fatalf("unusedDeg[%d] = %d, want %d", v, e.unusedDeg[v], want)
		}
	}
	// Self-loop at 0: first use decrements node 0 twice; repeat is a no-op.
	loop := e.slotEdge[off[0]]
	e.markUsedID(loop)
	e.markUsedID(loop)
	if e.unusedDeg[0] != 1 {
		t.Errorf("after self-loop use, unusedDeg[0] = %d, want 1", e.unusedDeg[0])
	}
	// Parallel edge 1-2: one id, so one decrement at each endpoint ever.
	e.markUsedID(ids[0])
	e.markUsedID(ids[0])
	if e.unusedDeg[1] != 2 || e.unusedDeg[2] != 2 {
		t.Errorf("after double-edge use, unusedDeg[1,2] = %d,%d, want 2,2", e.unusedDeg[1], e.unusedDeg[2])
	}
}

// TestFastPathZeroAllocsSteadyState is the CSR fast path's allocation
// guard: with no observer, the steady-state round loop of both engine
// paths (sequential and sharded-inline) allocates nothing — including in
// geometric fault-skipping mode, whose skip counters live in dialState.
// Two runs differing only in horizon must allocate identically; any
// per-round allocation would surface hundreds of times over the gap.
func TestFastPathZeroAllocsSteadyState(t *testing.T) {
	g := testGraph(t, 256, 8, 6)
	for _, tc := range []struct {
		name      string
		workers   int
		geometric bool
		loss      float64
	}{
		{"sequential", 0, false, 0},
		{"sharded-inline", 1, false, 0},
		{"sequential-geometric", 0, true, 0.2},
		{"sharded-geometric", 1, true, 0.2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			allocs := func(horizon int) float64 {
				return testing.AllocsPerRun(5, func() {
					e, err := NewEngine(Config{
						Topology:        NewStatic(g),
						Protocol:        pushProto{1, horizon},
						RNG:             xrand.New(5),
						Workers:         tc.workers,
						GeometricFaults: tc.geometric,
						MessageLossProb: tc.loss,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !e.fast {
						t.Fatal("fast path did not engage")
					}
					e.Run()
				})
			}
			short, long := allocs(60), allocs(360)
			if extra := long - short; extra >= 1 {
				t.Errorf("fast path allocates per round: %.1f extra allocs over 300 extra rounds (%.3f/round)",
					extra, extra/300)
			}
		})
	}
}

// benchDialGraph builds the BenchmarkDial topologies: a random 16-regular
// graph (the scale-bench degree, Fisher–Yates sampling regime) and a
// complete graph (degree n-1, the rejection regime).
func benchDialGraph(b *testing.B, name string, n int) *graph.Graph {
	b.Helper()
	var (
		g   *graph.Graph
		err error
	)
	if name == "deg=16" {
		g, err = graph.RandomRegular(n, 16, xrand.New(7))
	} else {
		g, err = graph.Complete(n)
	}
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkDial measures one dial-sampling call — the engines' innermost
// hot operation — on both paths, so sampler regressions show up without
// running a full simulation. Grid: k in {1, 2, 4} × degree in {16, n-1}
// × {interface reference path, CSR fast path}.
func BenchmarkDial(b *testing.B) {
	const n = 1024
	for _, k := range []int{1, 2, 4} {
		for _, gname := range []string{"deg=16", "deg=n-1"} {
			g := benchDialGraph(b, gname, n)
			for _, path := range []string{"interface", "csr"} {
				name := fmt.Sprintf("%s/k=%d/%s", path, k, gname)
				b.Run(name, func(b *testing.B) {
					e, err := NewEngine(Config{
						Topology:        NewStatic(g),
						Protocol:        pushProto{k, 10},
						RNG:             xrand.New(1),
						DisableFastPath: path == "interface",
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					if path == "csr" {
						for i := 0; i < b.N; i++ {
							e.sampleDialsFast(i&(n-1), &e.seq)
						}
					} else {
						for i := 0; i < b.N; i++ {
							e.sampleDialsFor(i&(n-1), &e.seq)
						}
					}
				})
			}
		}
	}
}
