package phonecall_test

import (
	"fmt"
	"testing"

	"regcast/internal/baseline"
	"regcast/internal/core"
	"regcast/internal/p2p/overlay"
	"regcast/internal/phonecall"
	"regcast/internal/xrand"
)

// churnTopo fuses an overlay with its churner, exactly like the facade's
// OverlaySpec topology and experiment E13b: the engine sees one dynamic
// topology that is simultaneously a Stepper and (through the embedded
// overlay) a CSRViewer + AliveCounter.
type churnTopo struct {
	*overlay.Overlay
	ch *overlay.Churner
}

func (c churnTopo) Step(round int) []int { return c.ch.Step(round) }

var (
	_ phonecall.Stepper   = churnTopo{}
	_ phonecall.CSRViewer = churnTopo{}
)

// churnGolden describes one churn configuration of the golden matrix.
type churnGolden struct {
	name                string
	joinProb, leaveProb float64
	mixSteps            int
	proto               func(t *testing.T, n int) phonecall.Protocol
	mutate              func(cfg *phonecall.Config)
}

// buildChurnTopo constructs a fresh overlay + churner pair from seed.
// Fast and reference runs each get their own instance (churn mutates the
// topology), built from the same seed so both experience the identical
// membership trajectory — the churner draws only from its own streams.
func buildChurnTopo(t *testing.T, n, d int, g churnGolden, seed uint64) churnTopo {
	t.Helper()
	master := xrand.New(seed)
	ov, err := overlay.New(n, d, n, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	ch, err := overlay.NewChurner(ov, g.joinProb, g.leaveProb, g.mixSteps, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	return churnTopo{ov, ch}
}

// TestFastPathGoldenChurn extends the tentpole bit-identity contract to
// churning topologies: on the overlay (an epoch-stamped CSRViewer), the
// fast path must reproduce the reference interface path draw for draw —
// across join/leave churn, degree-preserving mix-only churn, fault
// models, pull schedules, and both engines at several worker counts.
func TestFastPathGoldenChurn(t *testing.T) {
	const n, d = 192, 8
	alg1 := func(t *testing.T, n int) phonecall.Protocol {
		p, err := core.NewAlgorithm1(n)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	push := func(t *testing.T, n int) phonecall.Protocol {
		p, err := baseline.NewPush(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []churnGolden{
		{
			// E13b's shape: joins and leaves move membership every round,
			// so the alive bitset, the CSR rows and the epoch all churn.
			name: "join-leave", joinProb: 0.03, leaveProb: 0.03, mixSteps: 3,
			proto: alg1,
		},
		{
			// Degree-preserving rewiring only: membership is fixed but the
			// adjacency (and hence the epoch) changes every round — the
			// config that catches a stale-CSR bug the join/leave case could
			// mask behind membership refreshes.
			name: "mix-only", joinProb: 0, leaveProb: 0, mixSteps: 25,
			proto: push,
		},
		{
			name: "join-leave-channel-failure", joinProb: 0.02, leaveProb: 0.05, mixSteps: 2,
			proto:  alg1,
			mutate: func(cfg *phonecall.Config) { cfg.ChannelFailureProb = 0.2 },
		},
		{
			name: "mix-only-message-loss-geometric", joinProb: 0, leaveProb: 0, mixSteps: 10,
			proto: alg1,
			mutate: func(cfg *phonecall.Config) {
				cfg.MessageLossProb = 0.15
				cfg.GeometricFaults = true
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{0, 1, 4} {
				run := func(disable bool) phonecall.Result {
					topo := buildChurnTopo(t, n, d, tc, 1712)
					cfg := phonecall.Config{
						Topology:        topo,
						Protocol:        tc.proto(t, n),
						Source:          5,
						RNG:             xrand.New(20260726),
						RecordRounds:    true,
						Workers:         workers,
						DisableFastPath: disable,
					}
					if tc.mutate != nil {
						tc.mutate(&cfg)
					}
					res, err := phonecall.Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				label := fmt.Sprintf("%s workers=%d", tc.name, workers)
				sameResult(t, label, run(false), run(true))
			}
		})
	}
}

// TestChurnRunActuallyChurns guards the goldens against vacuity: the
// join/leave configuration must end with a different membership than it
// started with, so the alive bitset and epoch paths really execute.
func TestChurnRunActuallyChurns(t *testing.T) {
	topo := buildChurnTopo(t, 192, 8, churnGolden{joinProb: 0.05, leaveProb: 0.05, mixSteps: 3}, 7)
	proto, err := core.NewAlgorithm1(192)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phonecall.Run(phonecall.Config{
		Topology: topo,
		Protocol: proto,
		RNG:      xrand.New(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if topo.ch.Joins == 0 || topo.ch.Leaves == 0 {
		t.Fatalf("churner performed %d joins / %d leaves; the golden matrix would be vacuous", topo.ch.Joins, topo.ch.Leaves)
	}
	if err := topo.CheckInvariants(); err != nil {
		t.Fatalf("overlay invariants broken after a fast-path churn run: %v", err)
	}
	if res.Rounds == 0 {
		t.Fatal("run executed no rounds")
	}
}
