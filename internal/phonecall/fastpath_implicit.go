package phonecall

// Implicit-view dial samplers: the arithmetic twins of the CSR samplers
// in fastpath.go, engaged when the topology exposes ImplicitViewer and
// no CSR view. Adjacency is computed per draw — impNbrs.Degree(v) and
// impNbrs.NeighborAt(v, idx) replace the csrOff/csrAdj loads — and no
// adjacency array ever exists. Everything else is byte-for-byte the CSR
// structure: the same sampler-selection switch (stream-compatible with
// DistinctK in every arm), the same dead-target-before-fault-draw order
// on partially-alive views, the same fault helpers.
//
// Bit-identity contract: because NeighborAt draws none of the run's
// randomness and ImplicitNeighbors must enumerate exactly the rows a
// materialised CSR view would hold, a run over graph.Implicit `f` is
// bit-identical to the same run over Static{Materialize(f)} — the
// implicit facade tests pin this across engines and worker counts.
//
// The edge census never runs here (NewEngine falls an implicit topology
// with TrackEdgeUse back to the reference map census: there are no CSR
// slots to enumerate edge ids from), so these twins carry no dialEdge
// branches. On the fully-alive arm the fault draw happens before the
// neighbor computation — the draw order between the two is unobservable
// (NeighborAt consumes no run randomness), and skipping the computation
// for failed channels saves the replay work on streamed families.

// sampleDialsImplicit is the implicit twin of sampleDialsFast.
func (e *Engine) sampleDialsImplicit(v int, ds *dialState) {
	base := v * e.k
	for j := 0; j < e.k; j++ {
		e.dialTargets[base+j] = Uninformed
	}
	deg := e.impNbrs.Degree(v)
	if deg == 0 {
		return
	}
	if e.cfg.AvoidRecent > 0 {
		e.sampleWithMemoryImplicit(v, deg, ds)
		return
	}
	if e.cfg.DialStrategy == DialQuasirandom {
		e.sampleQuasirandomImplicit(v, deg, ds)
		return
	}
	kk := e.k
	if kk > deg {
		kk = deg
	}
	// Sampler selection: identical to sampleDialsFast, arm for arm.
	var picks [4]int
	var idxs []int
	switch {
	case kk == 1:
		picks[0] = ds.rng.IntN(deg)
		idxs = picks[:1]
	case kk == 2 && deg >= 64:
		picks[0], picks[1] = ds.rng.Distinct2(deg)
		idxs = picks[:2]
	case kk == 3 && deg >= 64:
		picks[0], picks[1], picks[2] = ds.rng.Distinct3(deg)
		idxs = picks[:3]
	case kk == 4 && deg >= 64:
		picks[0], picks[1], picks[2], picks[3] = ds.rng.Distinct4(deg)
		idxs = picks[:4]
	default:
		ds.dialIdx = ds.rng.DistinctK(ds.dialIdx, kk, deg, ds.scratchFor(deg))
		idxs = ds.dialIdx
	}
	failure := e.cfg.ChannelFailureProb
	if e.aliveBits != nil {
		// Partially-alive view: dead target skips the slot before the
		// fault draw, exactly like the reference path's Alive(w) check.
		for j, idx := range idxs {
			w := e.impNbrs.NeighborAt(v, idx)
			if !e.aliveFast(int(w)) {
				continue
			}
			if failure > 0 && e.chanFails(ds) {
				continue
			}
			e.dialTargets[base+j] = w
		}
		return
	}
	for j, idx := range idxs {
		if failure > 0 && e.chanFails(ds) {
			continue
		}
		e.dialTargets[base+j] = e.impNbrs.NeighborAt(v, idx)
	}
}

// sampleQuasirandomImplicit is the implicit twin of sampleQuasirandomFast.
func (e *Engine) sampleQuasirandomImplicit(v, deg int, ds *dialState) {
	base := v * e.k
	if e.listCursor[v] < 0 {
		e.listCursor[v] = int32(ds.rng.IntN(deg))
	}
	kk := e.k
	if kk > deg {
		kk = deg
	}
	cur := int(e.listCursor[v])
	failure := e.cfg.ChannelFailureProb
	for j := 0; j < kk; j++ {
		idx := cur + j
		if idx >= deg {
			idx -= deg
		}
		w := e.impNbrs.NeighborAt(v, idx)
		if e.aliveBits != nil && !e.aliveFast(int(w)) {
			continue // dead target: skip before the fault draw (reference order)
		}
		if failure > 0 && e.chanFails(ds) {
			continue
		}
		e.dialTargets[base+j] = w
	}
	e.listCursor[v] = int32((cur + kk) % deg)
}

// sampleWithMemoryImplicit is the implicit twin of sampleWithMemoryFast
// (footnote 2's sequentialised model: one dial avoiding recent partners).
func (e *Engine) sampleWithMemoryImplicit(v, deg int, ds *dialState) {
	r := e.cfg.AvoidRecent
	memBase := v * r
	choice := -1
	for attempt := 0; attempt < 4*deg+16; attempt++ {
		idx := ds.rng.IntN(deg)
		w := int(e.impNbrs.NeighborAt(v, idx))
		recent := false
		for i := 0; i < r; i++ {
			if e.recent[memBase+i] == int32(w) {
				recent = true
				break
			}
		}
		if !recent {
			choice = w
			break
		}
	}
	if choice < 0 {
		choice = int(e.impNbrs.NeighborAt(v, ds.rng.IntN(deg)))
	}
	// Record the partner regardless of channel failure: the node dialled it.
	e.recent[memBase+e.recentPos[v]] = int32(choice)
	e.recentPos[v] = (e.recentPos[v] + 1) % r
	if e.aliveBits != nil && !e.aliveFast(choice) {
		return // dead partner: recorded but no channel (reference order)
	}
	if e.cfg.ChannelFailureProb > 0 && e.chanFails(ds) {
		return
	}
	e.dialTargets[v*e.k] = int32(choice)
}
