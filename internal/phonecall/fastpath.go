package phonecall

// This file is the zero-interface hot path of both engines. When the
// topology exposes an epoch-stamped CSR view (CSRViewer; frozen Static
// graphs and the churning overlay alike, unless Config.DisableFastPath),
// NewEngine fetches the view's raw arrays once and the round loops run
// against raw slices: no Topology.Degree/Neighbor/Alive dynamic dispatch
// in dial sampling, the push loop, or the pull scan, small-k distinct
// samplers (xrand.Distinct2/3/4) instead of the scratch-based DistinctK,
// and — with Config.TrackEdgeUse — a CSR-indexed bitset census instead of
// the edge-key map. On a churning topology the view is re-fetched only
// when its epoch advances (refreshCSR, once per Step), and liveness is a
// bitset probe (aliveFast) placed exactly where the reference path calls
// Topology.Alive.
//
// Contract: for identical Config (minus DisableFastPath) and seed, the
// fast path produces bit-identical Results to the reference interface
// path, because it consumes the PRNG stream draw-for-draw identically:
// the small-k samplers are stream-compatible with DistinctK, alive checks
// draw no randomness (bitset probes on churn views, vacuous on frozen
// graphs), and the fault helpers (chanFails/msgLost) are shared with the
// reference path. Golden tests (fastpath_test.go) pin this across the
// E1–E20 configuration matrix and across churn overlay configurations.

// sampleDialsFast is the CSR twin of sampleDialsFor: it fills node v's
// dialTargets row (and, when the edge census is on, its dialEdge row)
// without interface calls, alive checks, or O(deg) scratch. On an
// implicit view (no CSR arrays) it dispatches to the arithmetic twin in
// fastpath_implicit.go — the push/pull/shard loops above never touch
// adjacency, so this is the fast path's only implicit/dense branch.
func (e *Engine) sampleDialsFast(v int, ds *dialState) {
	if e.impNbrs != nil {
		e.sampleDialsImplicit(v, ds)
		return
	}
	base := v * e.k
	for j := 0; j < e.k; j++ {
		e.dialTargets[base+j] = Uninformed
	}
	off := int(e.csrOff[v])
	deg := int(e.csrOff[v+1]) - off
	if deg == 0 {
		return
	}
	if e.cfg.AvoidRecent > 0 {
		e.sampleWithMemoryFast(v, off, deg, ds)
		return
	}
	if e.cfg.DialStrategy == DialQuasirandom {
		e.sampleQuasirandomFast(v, off, deg, ds)
		return
	}
	kk := e.k
	if kk > deg {
		kk = deg
	}
	// Sampler selection, stream-compatible with DistinctK in every arm.
	// k == 1 is a single IntN on either of DistinctK's branches. For
	// k <= 4 in the rejection regime (deg >= 64, where xrand's shared
	// rejectionRegime predicate holds) the scratch-free Distinct2/3/4
	// win; below it DistinctK's vectorised scratch init measures faster
	// (BenchmarkDistinctK). The deg >= 64 gate here is a performance
	// choice only — both arms are stream-identical for any deg, so a
	// retuned xrand threshold cannot break bit-identity.
	var picks [4]int
	var idxs []int
	switch {
	case kk == 1:
		picks[0] = ds.rng.IntN(deg)
		idxs = picks[:1]
	case kk == 2 && deg >= 64:
		picks[0], picks[1] = ds.rng.Distinct2(deg)
		idxs = picks[:2]
	case kk == 3 && deg >= 64:
		picks[0], picks[1], picks[2] = ds.rng.Distinct3(deg)
		idxs = picks[:3]
	case kk == 4 && deg >= 64:
		picks[0], picks[1], picks[2], picks[3] = ds.rng.Distinct4(deg)
		idxs = picks[:4]
	default:
		ds.dialIdx = ds.rng.DistinctK(ds.dialIdx, kk, deg, ds.scratchFor(deg))
		idxs = ds.dialIdx
	}
	failure := e.cfg.ChannelFailureProb
	if e.aliveBits != nil {
		// Churn view: a dead target skips the slot before the fault draw,
		// exactly like the reference path's Alive(w) check (no census on
		// partially-alive views; NewEngine guarantees dialEdge == nil here).
		for j, idx := range idxs {
			w := e.csrAdj[off+idx]
			if !e.aliveFast(int(w)) {
				continue
			}
			if failure > 0 && e.chanFails(ds) {
				continue
			}
			e.dialTargets[base+j] = w
		}
		return
	}
	if e.dialEdge == nil {
		for j, idx := range idxs {
			if failure > 0 && e.chanFails(ds) {
				continue
			}
			e.dialTargets[base+j] = e.csrAdj[off+idx]
		}
		return
	}
	for j, idx := range idxs {
		if failure > 0 && e.chanFails(ds) {
			continue
		}
		e.dialTargets[base+j] = e.csrAdj[off+idx]
		e.dialEdge[base+j] = e.slotEdge[off+idx]
	}
}

// sampleQuasirandomFast is the CSR twin of sampleQuasirandom.
func (e *Engine) sampleQuasirandomFast(v, off, deg int, ds *dialState) {
	base := v * e.k
	if e.listCursor[v] < 0 {
		e.listCursor[v] = int32(ds.rng.IntN(deg))
	}
	kk := e.k
	if kk > deg {
		kk = deg
	}
	cur := int(e.listCursor[v])
	failure := e.cfg.ChannelFailureProb
	for j := 0; j < kk; j++ {
		idx := cur + j
		if idx >= deg {
			idx -= deg
		}
		w := e.csrAdj[off+idx]
		if e.aliveBits != nil && !e.aliveFast(int(w)) {
			continue // dead target: skip before the fault draw (reference order)
		}
		if failure > 0 && e.chanFails(ds) {
			continue
		}
		e.dialTargets[base+j] = w
		if e.dialEdge != nil {
			e.dialEdge[base+j] = e.slotEdge[off+idx]
		}
	}
	e.listCursor[v] = int32((cur + kk) % deg)
}

// sampleWithMemoryFast is the CSR twin of sampleWithMemory (footnote 2's
// sequentialised model: one dial per round avoiding recent partners).
func (e *Engine) sampleWithMemoryFast(v, off, deg int, ds *dialState) {
	r := e.cfg.AvoidRecent
	memBase := v * r
	choice := -1
	slot := -1
	for attempt := 0; attempt < 4*deg+16; attempt++ {
		idx := ds.rng.IntN(deg)
		w := int(e.csrAdj[off+idx])
		recent := false
		for i := 0; i < r; i++ {
			if e.recent[memBase+i] == int32(w) {
				recent = true
				break
			}
		}
		if !recent {
			choice, slot = w, off+idx
			break
		}
	}
	if choice < 0 {
		idx := ds.rng.IntN(deg)
		choice, slot = int(e.csrAdj[off+idx]), off+idx
	}
	// Record the partner regardless of channel failure: the node dialled it.
	e.recent[memBase+e.recentPos[v]] = int32(choice)
	e.recentPos[v] = (e.recentPos[v] + 1) % r
	if e.aliveBits != nil && !e.aliveFast(choice) {
		return // dead partner: recorded but no channel (reference order)
	}
	if e.cfg.ChannelFailureProb > 0 && e.chanFails(ds) {
		return
	}
	e.dialTargets[v*e.k] = int32(choice)
	if e.dialEdge != nil {
		e.dialEdge[v*e.k] = e.slotEdge[slot]
	}
}

// pushGroupFast is the CSR twin of pushGroup: one receipt cohort sends
// over its dialled channels, with delivery inlined. Liveness is a bitset
// probe (vacuously true on frozen views, where cohort entries are never
// stale either; the receipt-round check is kept because it is one load
// and documents the invariant).
func (e *Engine) pushGroupFast(group []int32, ia int, dialAll bool) int64 {
	var tx int64
	loss := e.cfg.MessageLossProb
	k := e.k
	census := e.dialEdge != nil
	for _, v := range group {
		if e.informedAt[v] != int32(ia) || !e.aliveFast(int(v)) {
			continue
		}
		if !dialAll {
			e.sampleDialsFast(int(v), &e.seq)
		}
		base := int(v) * k
		for j := 0; j < k; j++ {
			w := e.dialTargets[base+j]
			if w < 0 {
				continue
			}
			tx++
			if census {
				e.markUsedID(e.dialEdge[base+j])
			}
			if loss > 0 && e.msgLost(&e.seq) {
				continue
			}
			if e.aliveFast(int(w)) && e.informedAt[w] == Uninformed && !e.isPending[w] {
				e.isPending[w] = true
				e.pending = append(e.pending, w)
			}
		}
	}
	return tx
}

// pullScanFast is the CSR twin of pullScan: every established channel
// v→w lets an informed, pulling callee w answer the caller v.
func (e *Engine) pullScanFast(t int) int64 {
	var tx int64
	loss := e.cfg.MessageLossProb
	k := e.k
	census := e.dialEdge != nil
	for v := 0; v < e.n; v++ {
		if !e.aliveFast(v) {
			continue
		}
		base := v * k
		for j := 0; j < k; j++ {
			w := e.dialTargets[base+j]
			if w < 0 {
				continue
			}
			ia := e.informedAt[w]
			if ia == Uninformed || int(ia) >= t || !e.pullDec[ia] {
				continue
			}
			tx++
			if census {
				e.markUsedID(e.dialEdge[base+j])
			}
			if loss > 0 && e.msgLost(&e.seq) {
				continue
			}
			if e.informedAt[v] == Uninformed && !e.isPending[v] {
				e.isPending[v] = true
				e.pending = append(e.pending, int32(v))
			}
		}
	}
	return tx
}

// shardPassFast is the CSR twin of shardPass: one round for the node
// range a shard owns, drawing only from the shard's own stream. Census
// hits are buffered as edge ids (not edge keys) and merged by
// markUsedID, in shard order, exactly like the reference path's keys.
func (e *Engine) shardPassFast(sh *parShard, t int, anyPush, anyPull, dialAll bool) {
	sh.tx = 0
	sh.outbox = sh.outbox[:0]
	sh.usedBuf = sh.usedBuf[:0]
	census := e.dialEdge != nil
	loss := e.cfg.MessageLossProb
	k := e.k

	for v := sh.lo; v < sh.hi; v++ {
		alive := e.aliveFast(v)
		ia := e.informedAt[v]
		sender := anyPush && alive && ia != Uninformed && int(ia) < t && e.pushDec[ia]
		if dialAll {
			if alive {
				e.sampleDialsFast(v, &sh.ds)
			} else {
				e.clearDialRow(v)
			}
		} else if sender {
			e.sampleDialsFast(v, &sh.ds)
		}
		if !sender {
			continue
		}
		base := v * k
		for j := 0; j < k; j++ {
			w := e.dialTargets[base+j]
			if w < 0 {
				continue
			}
			sh.tx++
			if census {
				sh.usedBuf = append(sh.usedBuf, int64(e.dialEdge[base+j]))
			}
			if loss > 0 && e.msgLost(&sh.ds) {
				continue
			}
			if e.informedAt[w] == Uninformed && e.aliveFast(int(w)) {
				sh.outbox = append(sh.outbox, w)
			}
		}
	}

	if !anyPull {
		return
	}
	for v := sh.lo; v < sh.hi; v++ {
		if !e.aliveFast(v) {
			continue
		}
		uninformedCaller := e.informedAt[v] == Uninformed
		base := v * k
		for j := 0; j < k; j++ {
			w := e.dialTargets[base+j]
			if w < 0 {
				continue
			}
			wia := e.informedAt[w]
			if wia == Uninformed || int(wia) >= t || !e.pullDec[wia] {
				continue
			}
			sh.tx++
			if census {
				sh.usedBuf = append(sh.usedBuf, int64(e.dialEdge[base+j]))
			}
			if loss > 0 && e.msgLost(&sh.ds) {
				continue
			}
			if uninformedCaller {
				sh.outbox = append(sh.outbox, int32(v))
			}
		}
	}
}

// initEdgeCensus builds the fast path's census structures: a dense edge
// id per CSR adjacency slot (parallel edges between the same endpoints
// share one id, so the census conflates them exactly like the reference
// map, and a self-loop's two slots share one id that decrements its
// node's counter twice on first use).
func (e *Engine) initEdgeCensus() {
	e.slotEdge = make([]int32, len(e.csrAdj))
	ids := make(map[int64]int32, len(e.csrAdj)/2)
	for v := 0; v < e.n; v++ {
		for s := int(e.csrOff[v]); s < int(e.csrOff[v+1]); s++ {
			w := int(e.csrAdj[s])
			key := edgeKey(v, w)
			id, ok := ids[key]
			if !ok {
				id = int32(len(e.edgeEndA))
				ids[key] = id
				a, b := v, w
				if a > b {
					a, b = b, a
				}
				e.edgeEndA = append(e.edgeEndA, int32(a))
				e.edgeEndB = append(e.edgeEndB, int32(b))
			}
			e.slotEdge[s] = id
		}
	}
	e.usedBits = make([]uint64, (len(e.edgeEndA)+63)/64)
	e.dialEdge = make([]int32, e.n*e.k)
}

// markUsedID is markUsedKey for the fast path's dense edge ids: the first
// transmission over an edge sets its bit and decrements both endpoints'
// unused-edge counters (twice at v for a self-loop).
func (e *Engine) markUsedID(id int32) {
	word, bit := id>>6, uint64(1)<<(id&63)
	if e.usedBits[word]&bit != 0 {
		return
	}
	e.usedBits[word] |= bit
	e.unusedDeg[e.edgeEndA[id]]--
	e.unusedDeg[e.edgeEndB[id]]--
}
