package phonecall

import (
	"testing"

	"regcast/internal/graph"
	"regcast/internal/xrand"
)

// pushProto is a test protocol: k-choice, push in every round, never pull.
type pushProto struct {
	k, horizon int
}

func (p pushProto) Name() string            { return "test-push" }
func (p pushProto) Choices() int            { return p.k }
func (p pushProto) Horizon() int            { return p.horizon }
func (p pushProto) SendPush(t, ia int) bool { return true }
func (p pushProto) SendPull(t, ia int) bool { return false }
func (p pushProto) NeverPulls() bool        { return true }

// pullProto pulls in every round and never pushes.
type pullProto struct {
	k, horizon int
}

func (p pullProto) Name() string            { return "test-pull" }
func (p pullProto) Choices() int            { return p.k }
func (p pullProto) Horizon() int            { return p.horizon }
func (p pullProto) SendPush(t, ia int) bool { return false }
func (p pullProto) SendPull(t, ia int) bool { return true }

// silentProto opens channels but never transmits.
type silentProto struct{ horizon int }

func (p silentProto) Name() string            { return "test-silent" }
func (p silentProto) Choices() int            { return 1 }
func (p silentProto) Horizon() int            { return p.horizon }
func (p silentProto) SendPush(t, ia int) bool { return false }
func (p silentProto) SendPull(t, ia int) bool { return false }

func testGraph(t *testing.T, n, d int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegular(n, d, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	g := testGraph(t, 20, 4, 1)
	valid := Config{Topology: NewStatic(g), Protocol: pushProto{1, 10}, RNG: xrand.New(1)}

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil topology", func(c *Config) { c.Topology = nil }},
		{"nil protocol", func(c *Config) { c.Protocol = nil }},
		{"nil rng", func(c *Config) { c.RNG = nil }},
		{"source negative", func(c *Config) { c.Source = -1 }},
		{"source too large", func(c *Config) { c.Source = 20 }},
		{"bad failure prob", func(c *Config) { c.ChannelFailureProb = 1.5 }},
		{"bad loss prob", func(c *Config) { c.MessageLossProb = -0.1 }},
		{"negative memory", func(c *Config) { c.AvoidRecent = -1 }},
		{"zero choices", func(c *Config) { c.Protocol = pushProto{0, 10} }},
		{"zero horizon", func(c *Config) { c.Protocol = pushProto{1, 0} }},
	}
	for _, tc := range cases {
		cfg := valid
		tc.mutate(&cfg)
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewEngine(valid); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestPushBroadcastCompletes(t *testing.T) {
	g := testGraph(t, 256, 6, 2)
	res, err := Run(Config{
		Topology: NewStatic(g),
		Protocol: pushProto{1, 100},
		Source:   0,
		RNG:      xrand.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("push did not complete: %d/%d informed", res.Informed, res.AliveNodes)
	}
	if res.FirstAllInformed < 1 || res.FirstAllInformed > 100 {
		t.Errorf("FirstAllInformed = %d", res.FirstAllInformed)
	}
	if res.Transmissions == 0 {
		t.Error("no transmissions recorded")
	}
}

func TestPullBroadcastCompletes(t *testing.T) {
	g := testGraph(t, 256, 6, 4)
	res, err := Run(Config{
		Topology: NewStatic(g),
		Protocol: pullProto{1, 150},
		Source:   5,
		RNG:      xrand.New(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("pull did not complete: %d/%d informed", res.Informed, res.AliveNodes)
	}
}

func TestSilentProtocolInformsNobody(t *testing.T) {
	g := testGraph(t, 64, 4, 6)
	res, err := Run(Config{
		Topology: NewStatic(g),
		Protocol: silentProto{20},
		Source:   0,
		RNG:      xrand.New(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 1 {
		t.Errorf("silent run informed %d nodes", res.Informed)
	}
	if res.Transmissions != 0 {
		t.Errorf("silent run transmitted %d times", res.Transmissions)
	}
	// Channels are still dialled: the phone call model opens them blindly.
	if res.ChannelsDialed != int64(64*1*20) {
		t.Errorf("ChannelsDialed = %d, want %d", res.ChannelsDialed, 64*20)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := testGraph(t, 128, 5, 8)
	run := func() Result {
		res, err := Run(Config{
			Topology: NewStatic(g),
			Protocol: pushProto{2, 50},
			Source:   3,
			RNG:      xrand.New(99),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Transmissions != b.Transmissions || a.FirstAllInformed != b.FirstAllInformed {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
	for v := range a.InformedAt {
		if a.InformedAt[v] != b.InformedAt[v] {
			t.Fatalf("InformedAt[%d] differs", v)
		}
	}
}

func TestStopEarly(t *testing.T) {
	g := testGraph(t, 128, 6, 9)
	full, err := Run(Config{
		Topology: NewStatic(g), Protocol: pushProto{4, 200}, RNG: xrand.New(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	early, err := Run(Config{
		Topology: NewStatic(g), Protocol: pushProto{4, 200}, RNG: xrand.New(1), StopEarly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if early.Rounds >= full.Rounds {
		t.Errorf("StopEarly did not shorten run: %d vs %d", early.Rounds, full.Rounds)
	}
	if early.Rounds != early.FirstAllInformed {
		t.Errorf("StopEarly stopped at %d but completed at %d", early.Rounds, early.FirstAllInformed)
	}
	if early.Transmissions >= full.Transmissions {
		t.Error("StopEarly should cut transmissions of an always-push schedule")
	}
}

func TestRecordRounds(t *testing.T) {
	g := testGraph(t, 64, 4, 10)
	res, err := Run(Config{
		Topology: NewStatic(g), Protocol: pushProto{1, 30}, RNG: xrand.New(2), RecordRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRound) != res.Rounds {
		t.Fatalf("PerRound has %d entries for %d rounds", len(res.PerRound), res.Rounds)
	}
	var tx int64
	prevInformed := 1
	for i, rm := range res.PerRound {
		if rm.Round != i+1 {
			t.Errorf("round numbering broken at %d", i)
		}
		if rm.Informed < prevInformed {
			t.Errorf("informed count decreased at round %d", rm.Round)
		}
		if rm.Informed != prevInformed+rm.NewlyInformed {
			t.Errorf("round %d: informed %d != prev %d + new %d", rm.Round, rm.Informed, prevInformed, rm.NewlyInformed)
		}
		prevInformed = rm.Informed
		tx += rm.Transmissions
	}
	if tx != res.Transmissions {
		t.Errorf("per-round transmissions sum %d != total %d", tx, res.Transmissions)
	}
}

func TestMonotoneInformedAndSourceZero(t *testing.T) {
	g := testGraph(t, 100, 4, 11)
	res, err := Run(Config{
		Topology: NewStatic(g), Protocol: pushProto{4, 60}, Source: 42, RNG: xrand.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InformedAt[42] != 0 {
		t.Errorf("source InformedAt = %d, want 0", res.InformedAt[42])
	}
	for v, ia := range res.InformedAt {
		if ia == Uninformed {
			continue
		}
		if ia < 0 || int(ia) > res.Rounds {
			t.Errorf("node %d informedAt %d out of range", v, ia)
		}
	}
}

func TestChannelFailureSlowsBroadcast(t *testing.T) {
	g := testGraph(t, 256, 6, 12)
	const reps = 10
	var cleanRounds, faultyRounds int
	for seed := uint64(0); seed < reps; seed++ {
		clean, err := Run(Config{
			Topology: NewStatic(g), Protocol: pushProto{1, 300}, RNG: xrand.New(seed), StopEarly: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		faulty, err := Run(Config{
			Topology: NewStatic(g), Protocol: pushProto{1, 300}, RNG: xrand.New(seed),
			ChannelFailureProb: 0.5, StopEarly: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !clean.AllInformed || !faulty.AllInformed {
			t.Fatal("push with long horizon should complete even at 50% failures")
		}
		cleanRounds += clean.FirstAllInformed
		faultyRounds += faulty.FirstAllInformed
	}
	if faultyRounds <= cleanRounds {
		t.Errorf("failures did not slow broadcast: faulty %d vs clean %d", faultyRounds, cleanRounds)
	}
}

func TestMessageLossCountsTransmissions(t *testing.T) {
	g := testGraph(t, 128, 6, 13)
	// With loss probability 1 nothing is delivered but pushes still count.
	res, err := Run(Config{
		Topology: NewStatic(g), Protocol: pushProto{1, 20}, RNG: xrand.New(4), MessageLossProb: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 1 {
		t.Errorf("loss=1 informed %d nodes", res.Informed)
	}
	if res.Transmissions != 20 { // source pushes 1 channel × 20 rounds
		t.Errorf("loss=1 transmissions = %d, want 20", res.Transmissions)
	}
}

func TestChoicesCappedByDegree(t *testing.T) {
	// Ring has degree 2 but protocol asks for 4 choices: engine must cap.
	g, err := graph.Ring(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology: NewStatic(g), Protocol: pushProto{4, 64}, RNG: xrand.New(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Error("broadcast on ring did not complete")
	}
	// Dial budget: min(4, 2) = 2 per node per round.
	if res.ChannelsDialed != int64(16*2*res.Rounds) {
		t.Errorf("ChannelsDialed = %d", res.ChannelsDialed)
	}
}

func TestFourChoicesAreDistinct(t *testing.T) {
	// On a star graph seen from the hub, 4 choices out of degree n-1 must be
	// 4 distinct leaves. Push from hub: exactly 4 leaves informed per round.
	const leaves = 10
	edges := make([][2]int32, leaves)
	for i := 0; i < leaves; i++ {
		edges[i] = [2]int32{0, int32(i + 1)}
	}
	g, err := graph.NewFromEdges(leaves+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology: NewStatic(g), Protocol: pushProto{4, 1}, Source: 0, RNG: xrand.New(6), RecordRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerRound[0].NewlyInformed != 4 {
		t.Errorf("hub informed %d leaves in one round, want exactly 4 (distinct choices)", res.PerRound[0].NewlyInformed)
	}
}

func TestSequentialisedMemoryAvoidsRepeats(t *testing.T) {
	// With AvoidRecent=3 on a degree-4 graph, four consecutive dials from a
	// node are distinct, so a star hub informs all 4 leaves in 4 rounds.
	edges := [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}}
	g, err := graph.NewFromEdges(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology:    NewStatic(g),
		Protocol:    pushProto{1, 4},
		Source:      0,
		RNG:         xrand.New(7),
		AvoidRecent: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Errorf("sequentialised hub informed only %d/5 in 4 rounds", res.Informed)
	}
}

func TestRunWrapperPropagatesError(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("Run with empty config did not error")
	}
}

func TestPushTransmissionCountMatchesSchedule(t *testing.T) {
	// Every informed node pushes over exactly min(k,d) channels per round;
	// on K5 with k=1 and horizon 3, transmissions = sum of informed counts
	// over rounds 1..3 (each informed node sends exactly once per round).
	g, err := graph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology: NewStatic(g), Protocol: pushProto{1, 3}, RNG: xrand.New(8), RecordRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	informed := int64(1)
	for _, rm := range res.PerRound {
		want += informed
		informed = int64(rm.Informed)
	}
	if res.Transmissions != want {
		t.Errorf("transmissions %d, want %d", res.Transmissions, want)
	}
}
