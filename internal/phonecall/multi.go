package phonecall

import "fmt"

// Message is one rumour in a multi-message run. Messages are created at
// their origin node at the end of round CreatedAt (the origin knows the
// message from round CreatedAt+1 onward), and each message follows the
// protocol schedule relative to its own age, exactly as in the paper
// ("the algorithm will be run for every message"; nodes combine all
// messages due in the same direction into one physical packet, but the
// analysis — and our accounting — counts transmissions per message).
type Message struct {
	ID        int
	Origin    int
	CreatedAt int
}

// MultiConfig describes a multi-message run.
type MultiConfig struct {
	Topology Topology
	Protocol Protocol
	Messages []Message
	// Rounds is the total number of rounds to simulate. Messages whose
	// schedule extends past this horizon simply stop early.
	Rounds             int
	RNG                interface{ Uint64() uint64 }
	ChannelFailureProb float64
	MessageLossProb    float64
}

// MessageResult summarises the dissemination of one message.
type MessageResult struct {
	Message          Message
	Transmissions    int64
	Informed         int
	AllInformed      bool
	FirstAllInformed int // absolute round; -1 if never
}

// MultiResult summarises a completed multi-message run.
type MultiResult struct {
	Rounds         int
	PerMessage     []MessageResult
	Transmissions  int64 // sum of per-message transmissions
	ChannelsDialed int64
}

// rngLike is the minimal generator interface MultiEngine needs; it is
// satisfied by *xrand.Rand.
type rngLike interface {
	Uint64() uint64
	IntN(n int) int
	Bool(p float64) bool
	DistinctK(dst []int, k, n int, scratch []int) []int
}

// MultiEngine simulates many concurrently disseminating messages that share
// the per-round channels, as in a replicated-database workload.
type MultiEngine struct {
	cfg   MultiConfig
	topo  Topology
	proto Protocol
	rng   rngLike

	n, k       int
	receivedAt [][]int32 // [msg][node] absolute round of first receipt
	dials      []int32
	scratch    []int
	dialIdx    []int
}

// NewMultiEngine validates cfg and prepares a run.
func NewMultiEngine(cfg MultiConfig) (*MultiEngine, error) {
	if cfg.Topology == nil || cfg.Protocol == nil {
		return nil, fmt.Errorf("phonecall: MultiConfig requires Topology and Protocol")
	}
	rng, ok := cfg.RNG.(rngLike)
	if !ok {
		return nil, fmt.Errorf("phonecall: MultiConfig.RNG must be an *xrand.Rand-compatible generator")
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("phonecall: MultiConfig.Rounds = %d < 1", cfg.Rounds)
	}
	n := cfg.Topology.NumNodes()
	for _, m := range cfg.Messages {
		if m.Origin < 0 || m.Origin >= n {
			return nil, fmt.Errorf("phonecall: message %d origin %d out of range", m.ID, m.Origin)
		}
		if m.CreatedAt < 0 {
			return nil, fmt.Errorf("phonecall: message %d created at negative round %d", m.ID, m.CreatedAt)
		}
	}
	e := &MultiEngine{
		cfg:   cfg,
		topo:  cfg.Topology,
		proto: cfg.Protocol,
		rng:   rng,
		n:     n,
		k:     cfg.Protocol.Choices(),
	}
	e.receivedAt = make([][]int32, len(cfg.Messages))
	for i := range e.receivedAt {
		e.receivedAt[i] = make([]int32, n)
		for v := range e.receivedAt[i] {
			e.receivedAt[i][v] = Uninformed
		}
	}
	e.dials = make([]int32, n*e.k)
	return e, nil
}

// Run executes the configured number of rounds.
func (e *MultiEngine) Run() MultiResult {
	res := MultiResult{Rounds: e.cfg.Rounds}
	res.PerMessage = make([]MessageResult, len(e.cfg.Messages))
	tx := make([]int64, len(e.cfg.Messages))
	firstAll := make([]int, len(e.cfg.Messages))
	for i := range firstAll {
		firstAll[i] = -1
	}

	horizon := e.proto.Horizon()
	// pending[m] lists nodes that receive message m this round.
	pending := make([][]int32, len(e.cfg.Messages))
	isPending := make([]bool, e.n)

	for t := 1; t <= e.cfg.Rounds; t++ {
		// Activate messages created at the end of earlier rounds.
		for mi, m := range e.cfg.Messages {
			if m.CreatedAt == t-1 && e.receivedAt[mi][m.Origin] == Uninformed {
				e.receivedAt[mi][m.Origin] = int32(m.CreatedAt)
			}
		}

		e.sampleDials()
		var budget int64
		for v := 0; v < e.n; v++ {
			if !e.topo.Alive(v) {
				continue
			}
			d := e.topo.Degree(v)
			if d > e.k {
				d = e.k
			}
			budget += int64(d)
		}
		res.ChannelsDialed += budget

		for mi, m := range e.cfg.Messages {
			age := t - m.CreatedAt
			if age < 1 || age > horizon {
				continue // message inactive this round
			}
			recv := e.receivedAt[mi]
			// Push: every informed node whose schedule says push at this age.
			for v := 0; v < e.n; v++ {
				ia := recv[v]
				if ia == Uninformed || int(ia) >= t || !e.topo.Alive(v) {
					continue
				}
				iaAge := int(ia) - m.CreatedAt
				if !e.proto.SendPush(age, iaAge) {
					continue
				}
				base := v * e.k
				for j := 0; j < e.k; j++ {
					w := e.dials[base+j]
					if w < 0 {
						continue
					}
					tx[mi]++
					if e.cfg.MessageLossProb > 0 && e.rng.Bool(e.cfg.MessageLossProb) {
						continue
					}
					e.deliverMulti(mi, w, pending, isPending)
				}
			}
			// Pull: callers receive from informed callees that answer.
			for v := 0; v < e.n; v++ {
				if !e.topo.Alive(v) {
					continue
				}
				base := v * e.k
				for j := 0; j < e.k; j++ {
					w := e.dials[base+j]
					if w < 0 {
						continue
					}
					ia := recv[w]
					if ia == Uninformed || int(ia) >= t {
						continue
					}
					iaAge := int(ia) - m.CreatedAt
					if !e.proto.SendPull(age, iaAge) {
						continue
					}
					tx[mi]++
					if e.cfg.MessageLossProb > 0 && e.rng.Bool(e.cfg.MessageLossProb) {
						continue
					}
					e.deliverMulti(mi, int32(v), pending, isPending)
				}
			}
			// Apply receipts for this message at end of round.
			for _, v := range pending[mi] {
				isPending[v] = false
				recv[v] = int32(t)
			}
			pending[mi] = pending[mi][:0]

			if firstAll[mi] < 0 && e.countInformed(mi) == e.aliveCount() {
				firstAll[mi] = t
			}
		}
	}

	for mi, m := range e.cfg.Messages {
		informed := e.countInformed(mi)
		res.PerMessage[mi] = MessageResult{
			Message:          m,
			Transmissions:    tx[mi],
			Informed:         informed,
			AllInformed:      informed == e.aliveCount(),
			FirstAllInformed: firstAll[mi],
		}
		res.Transmissions += tx[mi]
	}
	return res
}

// deliverMulti queues node w to receive message mi at the end of the round.
func (e *MultiEngine) deliverMulti(mi int, w int32, pending [][]int32, isPending []bool) {
	if !e.topo.Alive(int(w)) {
		return
	}
	if e.receivedAt[mi][w] != Uninformed || isPending[w] {
		return
	}
	isPending[w] = true
	pending[mi] = append(pending[mi], w)
}

// sampleDials fills e.dials with this round's channel targets for all nodes.
func (e *MultiEngine) sampleDials() {
	for v := 0; v < e.n; v++ {
		base := v * e.k
		for j := 0; j < e.k; j++ {
			e.dials[base+j] = Uninformed
		}
		if !e.topo.Alive(v) {
			continue
		}
		deg := e.topo.Degree(v)
		if deg == 0 {
			continue
		}
		kk := e.k
		if kk > deg {
			kk = deg
		}
		if cap(e.scratch) < deg {
			e.scratch = make([]int, deg)
		}
		e.dialIdx = e.rng.DistinctK(e.dialIdx, kk, deg, e.scratch)
		for j, idx := range e.dialIdx {
			w := e.topo.Neighbor(v, idx)
			if !e.topo.Alive(w) {
				continue
			}
			if e.cfg.ChannelFailureProb > 0 && e.rng.Bool(e.cfg.ChannelFailureProb) {
				continue
			}
			e.dials[base+j] = int32(w)
		}
	}
}

// countInformed returns how many alive nodes know message mi.
func (e *MultiEngine) countInformed(mi int) int {
	c := 0
	for v := 0; v < e.n; v++ {
		if e.topo.Alive(v) && e.receivedAt[mi][v] != Uninformed {
			c++
		}
	}
	return c
}

// aliveCount returns the number of alive nodes.
func (e *MultiEngine) aliveCount() int {
	if _, ok := e.topo.(Static); ok {
		return e.n
	}
	c := 0
	for v := 0; v < e.n; v++ {
		if e.topo.Alive(v) {
			c++
		}
	}
	return c
}

// ReceivedAt exposes, for message index mi, the round each node first
// received it (Uninformed if never). The returned slice is a copy.
func (e *MultiEngine) ReceivedAt(mi int) []int32 {
	return append([]int32(nil), e.receivedAt[mi]...)
}
