package viz

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasic(t *testing.T) {
	out, err := Chart(40, 10, Series{Name: "informed", Values: []float64{0, 0.1, 0.5, 0.9, 1}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 13 { // 10 grid + axis + x-label + legend
		t.Fatalf("expected 13 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "* informed") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "1 .. 5") {
		t.Error("x range missing")
	}
	// Highest value must land in the top grid row, lowest in the bottom.
	if !strings.Contains(lines[0], "*") {
		t.Errorf("top row empty:\n%s", out)
	}
	if !strings.Contains(lines[9], "*") {
		t.Errorf("bottom row empty:\n%s", out)
	}
}

func TestChartMultipleSeries(t *testing.T) {
	out, err := Chart(30, 8,
		Series{Name: "a", Values: []float64{1, 2, 3}},
		Series{Name: "b", Values: []float64{3, 2, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Errorf("markers not assigned:\n%s", out)
	}
}

func TestChartCustomMarker(t *testing.T) {
	out, err := Chart(20, 4, Series{Name: "c", Values: []float64{1, 2}, Marker: '~'})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "~ c") {
		t.Error("custom marker ignored")
	}
}

func TestChartErrors(t *testing.T) {
	if _, err := Chart(4, 10, Series{Name: "x", Values: []float64{1}}); err == nil {
		t.Error("tiny width accepted")
	}
	if _, err := Chart(20, 1, Series{Name: "x", Values: []float64{1}}); err == nil {
		t.Error("tiny height accepted")
	}
	if _, err := Chart(20, 5); err == nil {
		t.Error("no series accepted")
	}
	if _, err := Chart(20, 5, Series{Name: "x"}); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := Chart(20, 5, Series{Name: "x", Values: []float64{math.NaN()}}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestChartFlatSeries(t *testing.T) {
	out, err := Chart(20, 5, Series{Name: "flat", Values: []float64{2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("flat series not plotted")
	}
}

func TestSparkline(t *testing.T) {
	s, err := Sparkline([]float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("length %d", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Errorf("scaling wrong: %q", s)
	}
	if runes[0] == runes[1] || runes[1] == runes[2] {
		t.Errorf("middle value not distinct: %q", s)
	}
}

func TestSparklineFlat(t *testing.T) {
	s, err := Sparkline([]float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s != "▁▁" {
		t.Errorf("flat sparkline %q", s)
	}
}

func TestSparklineErrors(t *testing.T) {
	if _, err := Sparkline(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Sparkline([]float64{math.Inf(1)}); err == nil {
		t.Error("Inf accepted")
	}
}
