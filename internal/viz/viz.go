// Package viz renders numeric series as plain-text charts for terminal
// output — the "figures" accompanying the experiment tables. It is
// dependency-free and deterministic: cmd/broadcast-sim uses it for the
// informed-fraction trajectory of a traced run (-trace), and the examples
// use it to visualise phase structure. Like package table, its output
// contains no timestamps or nondeterminism, so charts are reproducible
// from the run seed.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	Values []float64
	// Marker is the rune plotted for this series; assigned automatically
	// if zero.
	Marker rune
}

var defaultMarkers = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Chart renders the series into a width×height character grid with a
// y-axis label column and an x-axis. X is the sample index (scaled to
// width); Y is scaled to the joint min/max of all series.
func Chart(width, height int, series ...Series) (string, error) {
	if width < 8 || height < 2 {
		return "", fmt.Errorf("viz: chart size %dx%d too small", width, height)
	}
	if len(series) == 0 {
		return "", fmt.Errorf("viz: no series")
	}
	maxLen := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return "", fmt.Errorf("viz: series %q contains non-finite value", s.Name)
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if maxLen == 0 {
		return "", fmt.Errorf("viz: all series empty")
	}
	if hi == lo {
		hi = lo + 1 // flat data: give the band some height
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i, v := range s.Values {
			col := 0
			if maxLen > 1 {
				col = i * (width - 1) / (maxLen - 1)
			}
			rowFrac := (v - lo) / (hi - lo)
			row := height - 1 - int(math.Round(rowFrac*float64(height-1)))
			grid[row][col] = marker
		}
	}

	var b strings.Builder
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3g ", hi)
		case height - 1:
			label = fmt.Sprintf("%7.3g ", lo)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("\n")
	}
	b.WriteString(strings.Repeat(" ", 8) + "+" + strings.Repeat("-", width) + "\n")
	b.WriteString(strings.Repeat(" ", 9) + fmt.Sprintf("1 .. %d (samples)", maxLen) + "\n")
	legend := make([]string, 0, len(series))
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
	}
	b.WriteString(strings.Repeat(" ", 9) + strings.Join(legend, "   ") + "\n")
	return b.String(), nil
}

// Sparkline renders values as a single line using block characters,
// scaled to the series' own min/max.
func Sparkline(values []float64) (string, error) {
	if len(values) == 0 {
		return "", fmt.Errorf("viz: empty sparkline")
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return "", fmt.Errorf("viz: non-finite value")
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return strings.Repeat(string(blocks[0]), len(values)), nil
	}
	var b strings.Builder
	for _, v := range values {
		idx := int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		b.WriteRune(blocks[idx])
	}
	return b.String(), nil
}
