// Package sched is the engine-family-neutral scheduler substrate: the
// shard partitioning, worker resolution, and work-stealing pool that every
// deterministic sharded super-step engine in this repository shares. The
// phone-call round engine (internal/phonecall) and the
// pairwise-interaction population engine (internal/population) are two
// instances of the same Scheduler shape, and this package is the part
// they have in common.
//
// # The deterministic sharded super-step contract
//
// A super-step engine advances in discrete steps (a phone-call round, a
// batch of pairwise interactions, a synchronous ring step). Each step
// runs in two phases:
//
//  1. Shard passes: the work items of the step are partitioned into
//     Shards contiguous ranges (Bounds). Each shard draws only from its
//     own PRNG stream — stream i is the i-th Split of the run RNG — and
//     writes only shard-private state, so passes may run concurrently on
//     any number of workers (Pool).
//  2. Merge: per-shard outputs are folded into the global state
//     sequentially, in ascending shard order, by the coordinating
//     goroutine.
//
// Because the per-shard streams are derived deterministically and the
// merge order is fixed, a step's outcome is a pure function of (seed,
// configuration, shard count): the worker count — including the inline
// one-worker case — can never change a trace, only the wall-clock time.
// The shard count does determine the trace, which is why DefaultShards is
// a fixed constant rather than a function of GOMAXPROCS.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkersAuto selects GOMAXPROCS worker goroutines.
const WorkersAuto = -1

// DefaultShards is the shard count engines use when their config leaves
// it zero. It is a fixed constant — deliberately NOT tied to GOMAXPROCS —
// so that a run's trace depends only on (seed, topology/protocol, shard
// count) and is reproducible across machines and worker counts.
const DefaultShards = 64

// Resolve maps a Workers knob (WorkersAuto, or an explicit count) to the
// concrete number of worker goroutines for nShards shards: GOMAXPROCS for
// WorkersAuto, and never more workers than shards.
func Resolve(workers, nShards int) int {
	if workers == WorkersAuto {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nShards {
		workers = nShards
	}
	return workers
}

// Bounds returns the contiguous range [lo, hi) of n work items that shard
// i of nShards owns. The partition is balanced to within one item and
// covers [0, n) exactly.
func Bounds(i, n, nShards int) (lo, hi int) {
	return i * n / nShards, (i + 1) * n / nShards
}

// Pool executes pass(shard) for every shard in [0, nShards) on workers
// goroutines with atomic work stealing, and returns when all passes have
// finished. Shard-to-worker assignment is arbitrary; under the contract
// above shard results are not, so scheduling cannot influence the
// outcome.
//
// Pool is the parallel branch only: callers keep their own inline loop
// for the workers <= 1 case, because the pass closure would otherwise be
// heap-allocated on hot per-step paths that must stay allocation-free.
func Pool(workers, nShards int, pass func(shard int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nShards {
					return
				}
				pass(i)
			}
		}()
	}
	wg.Wait()
}
