package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestBoundsPartitionExactly(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{0, 4}, {1, 4}, {7, 3}, {64, 64}, {100, 64}, {1 << 16, 64}, {5, 8},
	} {
		prev := 0
		total := 0
		for i := 0; i < tc.shards; i++ {
			lo, hi := Bounds(i, tc.n, tc.shards)
			if lo != prev {
				t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", tc.n, tc.shards, i, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d shards=%d: shard %d has hi %d < lo %d", tc.n, tc.shards, i, hi, lo)
			}
			if hi-lo > tc.n/tc.shards+1 {
				t.Fatalf("n=%d shards=%d: shard %d owns %d items, imbalanced", tc.n, tc.shards, i, hi-lo)
			}
			total += hi - lo
			prev = hi
		}
		if prev != tc.n || total != tc.n {
			t.Fatalf("n=%d shards=%d: partition covers %d items ending at %d", tc.n, tc.shards, total, prev)
		}
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(WorkersAuto, 1<<20); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(WorkersAuto) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(128, 64); got != 64 {
		t.Fatalf("Resolve(128, 64) = %d, want clamp to 64 shards", got)
	}
	if got := Resolve(3, 64); got != 3 {
		t.Fatalf("Resolve(3, 64) = %d, want 3", got)
	}
}

func TestPoolRunsEveryShardOnce(t *testing.T) {
	const shards = 257
	for _, workers := range []int{2, 4, 16} {
		var counts [shards]atomic.Int64
		Pool(workers, shards, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times", workers, i, got)
			}
		}
	}
}
