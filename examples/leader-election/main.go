// Leader election: run the self-stabilizing population protocol on an
// n-agent clique from both canonical adversarial starts — everyone a
// leader, and nobody a leader — and watch the interaction scheduler
// converge to exactly one leader in Θ(n·log n) interactions. Programmed
// entirely against the public regcast facade (the SchedulerInteractions
// side: PopulationScenario + RunPopulation).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"

	"regcast"
)

func main() {
	nFlag := flag.Int("n", 1<<10, "number of agents")
	flag.Parse()
	n := *nFlag

	starts := []struct {
		name string
		init func(i, n int, coin uint64) regcast.PopulationState
	}{
		{"all leaders", regcast.InitAllLeaders},
		{"no leaders", regcast.InitLeaderless},
	}
	for _, start := range starts {
		le, err := regcast.NewLeaderElection(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("start %q: n=%d agents, uniform random pairs\n", start.name, n)
		fmt.Println("  step  changed  leaders")

		sc := regcast.PopulationScenario{
			N:        n,
			Pair:     le,
			Init:     start.init,
			Seed:     42,
			Observer: stepPrinter{},
		}
		// The sharded driver executes the same trace as the sequential
		// one — worker count never changes a result, only wall-clock.
		res, err := regcast.RunPopulation(context.Background(), sc,
			regcast.WithWorkers(regcast.WorkersAuto))
		if err != nil {
			log.Fatal(err)
		}

		nlogn := float64(n) * math.Log(float64(n))
		fmt.Printf("  converged=%v at super-step %d: %d interactions = %.2f·n·ln n\n\n",
			res.Converged, res.ConvergedAt, res.ConvergedInteractions,
			float64(res.ConvergedInteractions)/nlogn)
	}
}

// stepPrinter streams per-super-step stats as the engine produces them.
type stepPrinter struct{}

func (stepPrinter) OnSuperStep(s regcast.SuperStepStats) {
	fmt.Printf("  %4d  %7d  %7d\n", s.Step, s.Changed, s.Measure)
}
