// Quickstart: broadcast one message on a random 8-regular graph with the
// paper's four-choice algorithm and compare against the classic push
// protocol — the headline result of the paper, programmed entirely
// against the public regcast facade.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/core"
)

func main() {
	nFlag := flag.Int("n", 1<<14, "network size")
	flag.Parse()
	n, d := *nFlag, 8
	master := regcast.NewRand(42)

	// A random d-regular topology, as a P2P overlay would maintain.
	g, err := regcast.NewRegularGraph(n, d, master.Split())
	if err != nil {
		log.Fatal(err)
	}

	// The paper's protocol: four distinct dials per round, phased schedule.
	fourChoice, err := core.New(n, d)
	if err != nil {
		log.Fatal(err)
	}
	// The baseline: one dial per round, push until done.
	push, err := baseline.NewPush(n, 1)
	if err != nil {
		log.Fatal(err)
	}

	for _, proto := range []regcast.Protocol{fourChoice, push} {
		scenario, err := regcast.NewScenario(regcast.Static(g), proto,
			regcast.WithRNG(master.Split()))
		if err != nil {
			log.Fatal(err)
		}
		// The sharded engine: GOMAXPROCS workers, results reproducible
		// from the seed and independent of the worker count.
		res, err := regcast.Run(context.Background(), scenario,
			regcast.WithWorkers(regcast.WorkersAuto))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s informed %5d/%d in %2d rounds, %7d transmissions (%.1f per node)\n",
			proto.Name(), res.Informed, n, res.FirstAllInformed,
			res.Transmissions, float64(res.Transmissions)/float64(n))
	}
	fmt.Println("\nThe four-choice schedule pays O(log log n) transmissions per node;")
	fmt.Println("push pays Θ(log n). The gap widens as n grows (see EXPERIMENTS.md, E2).")
}
