// TCP cluster example: sixteen gossip nodes, each with its own loopback
// TCP listener, spreading a rumour with push&pull anti-entropy over real
// sockets — the deployment-shaped counterpart of the simulator, driven
// through the same public Scenario/Runner API: only the engine changes,
// the scenario and the streaming observer stay identical.
package main

import (
	"context"
	"fmt"
	"log"

	"regcast"
	"regcast/internal/baseline"
)

func main() {
	const n, d, k = 16, 4, 2

	g, err := regcast.NewRegularGraph(n, d, regcast.NewRand(3))
	if err != nil {
		log.Fatal(err)
	}
	// The protocol contributes its fan-out (k dials per tick) and tick
	// budget; on a transport engine the push&pull exchange itself runs as
	// anti-entropy over the wire.
	proto, err := baseline.NewPushPull(n, k)
	if err != nil {
		log.Fatal(err)
	}

	scenario, err := regcast.NewScenario(regcast.Static(g), proto,
		regcast.WithSeed(3),
		regcast.WithObserver(regcast.ObserverFuncs{
			Round: func(rs regcast.RoundStats) {
				fmt.Printf("tick %2d: %2d/%d nodes know the rumour (%d packets this tick)\n",
					rs.Round, rs.Informed, n, rs.Transmissions)
			},
		}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rumour inserted at node 0; gossiping over real TCP sockets...\n\n")
	res, err := regcast.Run(context.Background(), scenario,
		regcast.WithEngine(regcast.EngineTCPTransport))
	if err != nil {
		log.Fatal(err)
	}
	if !res.AllInformed {
		log.Fatalf("rumour reached only %d/%d nodes in %d ticks", res.Informed, n, res.Rounds)
	}
	fmt.Printf("\nall %d nodes informed over TCP in %d ticks (%d packets on the wire)\n",
		n, res.FirstAllInformed, res.Transmissions)
}
