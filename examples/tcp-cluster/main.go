// TCP cluster example: sixteen gossip nodes, each with its own loopback
// TCP listener, spreading a rumour with push&pull anti-entropy over real
// sockets. This is the deployment-shaped counterpart of the simulator:
// the same random-neighbour contact pattern, but with JSON packets on
// the wire instead of simulated channels.
package main

import (
	"fmt"
	"log"
	"time"

	"regcast/internal/graph"
	"regcast/internal/transport"
	"regcast/internal/xrand"
)

func main() {
	const n, d, k = 16, 4, 2

	g, err := graph.RandomRegular(n, d, xrand.New(3))
	if err != nil {
		log.Fatal(err)
	}
	tr, err := transport.NewTCP(n, 1024)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := transport.NewCluster(g, tr, k, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := cluster.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	for i := 0; i < n; i++ {
		fmt.Printf("node %2d listening on %s\n", i, tr.Addr(i))
	}

	rumor := transport.Rumor{ID: "release-1.0", Payload: "ship it"}
	if err := cluster.Insert(0, rumor); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrumour %q inserted at node 0\n", rumor.ID)

	for tick := 1; tick <= 30; tick++ {
		if err := cluster.Tick(); err != nil {
			log.Fatal(err)
		}
		// Give the sockets a moment to drain before counting.
		deadline := time.Now().Add(500 * time.Millisecond)
		for time.Now().Before(deadline) && cluster.CountKnowing(rumor.ID) < n {
			time.Sleep(5 * time.Millisecond)
		}
		know := cluster.CountKnowing(rumor.ID)
		fmt.Printf("tick %2d: %2d/%d nodes know the rumour (%d packets sent)\n",
			tick, know, n, cluster.PacketsSent())
		if know == n {
			fmt.Println("\nall nodes informed over real TCP sockets")
			return
		}
	}
	log.Fatal("rumour did not reach all nodes in 30 ticks")
}
