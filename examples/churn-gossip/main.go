// Churn gossip example: broadcasting on a peer-to-peer overlay that keeps
// changing underneath the protocol. The overlay stays exactly d-regular
// through joins (edge splicing) and leaves (stub re-pairing) while a
// churner adds and removes peers every round, plus channel failures —
// the operating conditions the paper's robustness claims address.
//
// The whole setting is declared as a regcast.OverlaySpec: the spec builds
// a fresh overlay + churner per run, and because the overlay maintains an
// epoch-stamped CSR view, even these churning runs execute on the
// engines' zero-interface fast path.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"regcast"
	"regcast/internal/core"
)

func main() {
	n := flag.Int("n", 2048, "overlay size (alive peers)")
	flag.Parse()
	const d = 8
	master := regcast.NewRand(11)

	for _, churnRate := range []float64{0, 0.002, 0.01} {
		spec := regcast.OverlaySpec{
			N: *n, D: d,
			JoinProb:  churnRate,
			LeaveProb: churnRate,
			MixSteps:  10,
		}
		proto, err := core.NewAlgorithm1(*n)
		if err != nil {
			log.Fatal(err)
		}
		scenario, err := regcast.NewScenarioSpec(spec, proto,
			regcast.WithSeed(master.Uint64()),
			regcast.WithChannelFailure(0.05))
		if err != nil {
			log.Fatal(err)
		}
		res, err := regcast.Run(context.Background(), scenario)
		if err != nil {
			log.Fatal(err)
		}
		frac := float64(res.Informed) / float64(res.AliveNodes)
		fmt.Printf("churn %.1f%%/round: informed %4d/%4d alive peers (%.1f%%) in %d rounds\n",
			100*churnRate, res.Informed, res.AliveNodes, 100*frac, res.Rounds)
	}

	fmt.Println("\nPeers that join after the pull round are unreachable within the fixed")
	fmt.Println("schedule — the shortfall tracks churn_rate × remaining rounds (E13b).")
}
