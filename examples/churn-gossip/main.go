// Churn gossip example: broadcasting on a peer-to-peer overlay that keeps
// changing underneath the protocol. The overlay stays exactly d-regular
// through joins (edge splicing) and leaves (stub re-pairing) while a
// churner adds and removes peers every round, plus channel failures —
// the operating conditions the paper's robustness claims address.
package main

import (
	"context"
	"fmt"
	"log"

	"regcast"
	"regcast/internal/core"
	"regcast/internal/p2p/overlay"
)

// churningTopology fuses the overlay with its churner so the engine sees
// one dynamic topology (it implements regcast.Stepper).
type churningTopology struct {
	*overlay.Overlay
	ch *overlay.Churner
}

func (c churningTopology) Step(round int) []int { return c.ch.Step(round) }

func main() {
	const n, d = 2048, 8
	master := regcast.NewRand(11)

	for _, churnRate := range []float64{0, 0.002, 0.01} {
		ovRun, err := overlay.New(n, d, n, master.Split())
		if err != nil {
			log.Fatal(err)
		}
		ch, err := overlay.NewChurner(ovRun, churnRate, churnRate, 10, master.Split())
		if err != nil {
			log.Fatal(err)
		}
		proto, err := core.NewAlgorithm1(n)
		if err != nil {
			log.Fatal(err)
		}
		scenario, err := regcast.NewScenario(churningTopology{ovRun, ch}, proto,
			regcast.WithRNG(master.Split()),
			regcast.WithChannelFailure(0.05))
		if err != nil {
			log.Fatal(err)
		}
		res, err := regcast.Run(context.Background(), scenario)
		if err != nil {
			log.Fatal(err)
		}
		frac := float64(res.Informed) / float64(res.AliveNodes)
		fmt.Printf("churn %.1f%%/round: informed %4d/%4d alive (%.1f%%), %d joins, %d leaves, overlay intact: %v\n",
			100*churnRate, res.Informed, res.AliveNodes, 100*frac,
			ch.Joins, ch.Leaves, ovRun.CheckInvariants() == nil)
	}

	fmt.Println("\nPeers that join after the pull round are unreachable within the fixed")
	fmt.Println("schedule — the shortfall tracks churn_rate × remaining rounds (E13b).")
}
