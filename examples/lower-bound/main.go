// Lower-bound demo (Theorem 1): in the standard one-choice phone call
// model, every strictly oblivious O(log n)-time broadcast pays
// Ω(n·log n / log d) transmissions — no matter how cleverly the push/pull
// rounds are arranged. This example tries several schedule shapes on
// G(n,d) and shows that none get below a constant fraction of the bound,
// while the four-choice algorithm (a different model) changes the game.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/bits"

	"regcast"
	"regcast/internal/core"
	"regcast/internal/oblivious"
)

func main() {
	nFlag := flag.Int("n", 1<<13, "network size")
	flag.Parse()
	n, d := *nFlag, 8
	master := regcast.NewRand(21)
	g, err := regcast.NewRegularGraph(n, d, master.Split())
	if err != nil {
		log.Fatal(err)
	}
	bound := oblivious.TransmissionBound(n, d)
	fmt.Printf("G(%d,%d): Theorem 1 reference n·log₂n/log₂d = %.0f transmissions\n\n", n, d, bound)

	logN := bits.Len(uint(n - 1)) // ⌈log₂ n⌉
	horizon := 3 * logN           // 3·log₂ n rounds — the O(log n) budget
	mk := func(s *oblivious.Schedule, err error) *oblivious.Schedule {
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	schedules := []*oblivious.Schedule{
		mk(oblivious.AlwaysPush(horizon)),
		mk(oblivious.AlwaysBoth(horizon)),
		mk(oblivious.PushThenPull(logN, horizon)),
		mk(oblivious.Alternating(horizon)),
	}

	for _, s := range schedules {
		scenario, err := regcast.NewScenario(regcast.Static(g), s,
			regcast.WithRNG(master.Split()),
			regcast.WithStopEarly()) // the cheapest accounting any schedule can claim
		if err != nil {
			log.Fatal(err)
		}
		res, err := regcast.Run(context.Background(), scenario)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s complete=%-5v tx=%8d  tx/bound=%.2f\n",
			s.Name(), res.AllInformed, res.Transmissions,
			float64(res.Transmissions)/bound)
	}

	four, err := core.New(n, d)
	if err != nil {
		log.Fatal(err)
	}
	scenario, err := regcast.NewScenario(regcast.Static(g), four,
		regcast.WithRNG(master.Split()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := regcast.Run(context.Background(), scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s complete=%-5v tx=%8d  (outside the one-choice model: %d dials/round)\n",
		four.Name(), res.AllInformed, res.Transmissions, four.Choices())
	fmt.Println("\nEvery one-choice schedule sits at a constant fraction of the Ω-bound;")
	fmt.Println("escaping it requires changing the model — the paper's four choices.")
}
