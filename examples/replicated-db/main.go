// Replicated database example: the paper's motivating application.
// 512 replicas hold a last-writer-wins key-value store; writes issued at
// random replicas spread as rumours under the four-choice schedule, and
// the cluster converges to identical stores at O(n·log log n)
// transmissions per update.
package main

import (
	"fmt"
	"log"

	"regcast"
	"regcast/internal/core"
	"regcast/internal/p2p/replica"
)

func main() {
	const n, d = 512, 8
	master := regcast.NewRand(7)

	g, err := regcast.NewRegularGraph(n, d, master.Split())
	if err != nil {
		log.Fatal(err)
	}
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		log.Fatal(err)
	}

	// A write-heavy workload: 30 updates to 6 keys, issued at random
	// replicas over 60 rounds.
	rng := master.Split()
	var writes []replica.Write
	for i := 0; i < 30; i++ {
		writes = append(writes, replica.Write{
			Key:    fmt.Sprintf("user:%d/profile", i%6),
			Value:  fmt.Sprintf("revision-%d", i),
			Origin: rng.IntN(n),
			Round:  i * 2,
		})
	}

	topo := regcast.Static(g)
	rep, err := replica.Run(replica.Config{
		Topology: topo,
		Protocol: proto,
		RNG:      master.Split(),
	}, writes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replicas: %d, updates: %d\n", n, len(writes))
	fmt.Printf("converged: %v (stores identical: %v) at round %d\n",
		rep.Converged, replica.StoresConverged(topo, rep.Stores), rep.ConvergedAtRound)
	fmt.Printf("transmissions per update: %.0f (%.1f per replica)\n",
		rep.TransmissionsPerUpdate, rep.TransmissionsPerUpdate/float64(n))

	fmt.Println("\nfinal values on replica 0:")
	for k := 0; k < 6; k++ {
		key := fmt.Sprintf("user:%d/profile", k)
		if v, ok := rep.Stores[0].Get(key); ok {
			fmt.Printf("  %s = %s\n", key, v)
		}
	}
}
