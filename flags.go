package regcast

import (
	"flag"
	"fmt"
)

// CommonFlags is the flag surface shared by every regcast command:
// one -seed and one -workers flag with identical names, defaults, and
// semantics across binaries, parsed through this single helper so the
// commands cannot drift apart again.
type CommonFlags struct {
	// Seed is the master random seed; all of a command's randomness
	// (topology generation and the runs themselves) derives from it.
	Seed uint64
	// Workers selects the simulation engine: 0 = classic sequential
	// engine, -1 = sharded engine with GOMAXPROCS workers, n >= 1 =
	// sharded engine with n workers.
	Workers int
	// SchedulerName is the raw -scheduler value ("rounds" or
	// "interactions"); Validate parses it and Scheduler returns the
	// typed selection.
	SchedulerName string
	// Topology is the raw -topology value (the ParseTopologySpec string
	// form, e.g. "hypercube:dim=27"); empty means the command's own
	// topology flags apply. Validate parses it and TopologySpec returns
	// the parsed spec.
	Topology string

	scheduler Scheduler
	spec      TopologySpec
}

// AddCommonFlags registers the canonical -seed/-workers/-scheduler flags
// on fs and returns the struct their parsed values land in.
func AddCommonFlags(fs *flag.FlagSet) *CommonFlags {
	f := &CommonFlags{}
	fs.Uint64Var(&f.Seed, "seed", 1, "master random seed (topology and runs derive from it)")
	fs.IntVar(&f.Workers, "workers", 0,
		"engine workers: 0 = classic sequential engine, -1 = GOMAXPROCS (sharded), n = n workers (sharded)")
	fs.StringVar(&f.SchedulerName, "scheduler", SchedulerRounds.String(),
		"engine family: rounds = phone-call round model, interactions = population-protocol pairwise interactions")
	fs.StringVar(&f.Topology, "topology", "",
		"topology spec override, family:key=val,... (e.g. hypercube:dim=27, torus:rows=64,cols=64, gnp-stream:n=4096,p=0.004, regular:n=4096,d=8; see regcast.ParseTopologySpec)")
	return f
}

// Validate rejects flag values no engine accepts.
func (f *CommonFlags) Validate() error {
	if f.Workers < WorkersAuto {
		return fmt.Errorf("-workers %d invalid (use -1, 0 or a positive count)", f.Workers)
	}
	s, err := ParseScheduler(f.SchedulerName)
	if err != nil {
		return fmt.Errorf("-scheduler %q invalid (use rounds or interactions)", f.SchedulerName)
	}
	f.scheduler = s
	if f.Topology != "" {
		spec, err := ParseTopologySpec(f.Topology)
		if err != nil {
			return fmt.Errorf("-topology: %w", err)
		}
		f.spec = spec
	}
	return nil
}

// Scheduler returns the engine family the -scheduler flag selected;
// call Validate first.
func (f *CommonFlags) Scheduler() Scheduler { return f.scheduler }

// TopologySpec returns the spec the -topology flag selected, or nil when
// the flag was not given; call Validate first.
func (f *CommonFlags) TopologySpec() TopologySpec { return f.spec }

// Rand returns the master RNG derived from -seed; Split it per consumer.
func (f *CommonFlags) Rand() *Rand { return NewRand(f.Seed) }

// RunnerOptions translates the -workers flag into the Runner engine
// selection — the single definition of the flag's semantics.
func (f *CommonFlags) RunnerOptions() []RunnerOption {
	return []RunnerOption{WithWorkers(f.Workers)}
}

// Runner builds the Runner the flags select.
func (f *CommonFlags) Runner() Runner {
	return NewRunner(f.RunnerOptions()...)
}
