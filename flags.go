package regcast

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// CommonFlags is the flag surface shared by every regcast command:
// one -seed and one -workers flag with identical names, defaults, and
// semantics across binaries, parsed through this single helper so the
// commands cannot drift apart again.
type CommonFlags struct {
	// Seed is the master random seed; all of a command's randomness
	// (topology generation and the runs themselves) derives from it.
	Seed uint64
	// Workers selects the simulation engine: 0 = classic sequential
	// engine, -1 = sharded engine with GOMAXPROCS workers, n >= 1 =
	// sharded engine with n workers.
	Workers int
	// SchedulerName is the raw -scheduler value ("rounds" or
	// "interactions"); Validate parses it and Scheduler returns the
	// typed selection.
	SchedulerName string
	// Topology is the raw -topology value (the ParseTopologySpec string
	// form, e.g. "hypercube:dim=27"); empty means the command's own
	// topology flags apply. Validate parses it and TopologySpec returns
	// the parsed spec.
	Topology string
	// PopFastPath mirrors the population engine's two-path contract on
	// the command line: true (the default) lets the engine auto-engage
	// its compiled fast path, false forces the reference per-pair
	// components — the cross-validation and A/B-benchmark switch.
	PopFastPath bool

	scheduler Scheduler
	spec      TopologySpec
}

// AddCommonFlags registers the canonical -seed/-workers/-scheduler flags
// on fs and returns the struct their parsed values land in.
func AddCommonFlags(fs *flag.FlagSet) *CommonFlags {
	f := &CommonFlags{}
	fs.Uint64Var(&f.Seed, "seed", 1, "master random seed (topology and runs derive from it)")
	fs.IntVar(&f.Workers, "workers", 0,
		"engine workers: 0 = classic sequential engine, -1 = GOMAXPROCS (sharded), n = n workers (sharded)")
	fs.StringVar(&f.SchedulerName, "scheduler", SchedulerRounds.String(),
		"engine family: rounds = phone-call round model, interactions = population-protocol pairwise interactions")
	fs.StringVar(&f.Topology, "topology", "",
		"topology spec override, family:key=val,... (e.g. hypercube:dim=27, torus:rows=64,cols=64, gnp-stream:n=4096,p=0.004, regular:n=4096,d=8; see regcast.ParseTopologySpec)")
	fs.BoolVar(&f.PopFastPath, "pop-fastpath", true,
		"population engine fast path (table/counts/batch kernels); false forces the reference per-pair components")
	return f
}

// Validate rejects flag values no engine accepts.
func (f *CommonFlags) Validate() error {
	if f.Workers < WorkersAuto {
		return fmt.Errorf("-workers %d invalid (use -1, 0 or a positive count)", f.Workers)
	}
	s, err := ParseScheduler(f.SchedulerName)
	if err != nil {
		return fmt.Errorf("-scheduler %q invalid (use rounds or interactions)", f.SchedulerName)
	}
	f.scheduler = s
	if f.Topology != "" {
		spec, err := ParseTopologySpec(f.Topology)
		if err != nil {
			return fmt.Errorf("-topology: %w", err)
		}
		f.spec = spec
	}
	return nil
}

// Scheduler returns the engine family the -scheduler flag selected;
// call Validate first.
func (f *CommonFlags) Scheduler() Scheduler { return f.scheduler }

// TopologySpec returns the spec the -topology flag selected, or nil when
// the flag was not given; call Validate first.
func (f *CommonFlags) TopologySpec() TopologySpec { return f.spec }

// Rand returns the master RNG derived from -seed; Split it per consumer.
func (f *CommonFlags) Rand() *Rand { return NewRand(f.Seed) }

// RunnerOptions translates the -workers flag into the Runner engine
// selection — the single definition of the flag's semantics — plus the
// population fast-path switch when -pop-fastpath=false.
func (f *CommonFlags) RunnerOptions() []RunnerOption {
	opts := []RunnerOption{WithWorkers(f.Workers)}
	if !f.PopFastPath {
		opts = append(opts, WithoutPopulationFastPath())
	}
	return opts
}

// Runner builds the Runner the flags select.
func (f *CommonFlags) Runner() Runner {
	return NewRunner(f.RunnerOptions()...)
}

// TransportFlags is the shared flag surface for commands that can run a
// scenario over the resilient gossip daemon, optionally under injected
// chaos. Register with AddTransportFlags, check Validate, and pass
// RunnerOptions() alongside CommonFlags.RunnerOptions().
type TransportFlags struct {
	// Daemon selects EngineDaemonTransport (persistent peers, dial
	// scheduler, dedup, health metrics).
	Daemon bool
	// Chaos enables the seeded fault plan; implies Daemon.
	Chaos bool
	// ChaosSeed seeds every fault decision (0 = derive from -seed).
	ChaosSeed uint64
	// Drop / Duplicate / Reorder are per-packet fault probabilities.
	Drop      float64
	Duplicate float64
	Reorder   float64
	// DelayProb delays a packet by Delay with the given probability.
	DelayProb float64
	Delay     time.Duration
	// Partition is an optional "from:until" tick window during which the
	// node set is split into two halves (low ids vs high ids).
	Partition string
	// Crash is an optional "node:from:until" transport-level
	// crash-restart window.
	Crash string
	// Mailbox is the per-node inbox capacity of the transport engines.
	Mailbox int

	partition *PartitionWindow // parsed by Validate (nil when unset)
	crash     *CrashWindow
}

// AddTransportFlags registers the canonical daemon/chaos flags on fs.
func AddTransportFlags(fs *flag.FlagSet) *TransportFlags {
	f := &TransportFlags{}
	fs.BoolVar(&f.Daemon, "daemon", false,
		"run over the resilient gossip daemon (persistent peers, dial scheduler, dedup, health metrics)")
	fs.BoolVar(&f.Chaos, "chaos", false,
		"inject seeded, reproducible faults in front of the daemon (implies -daemon)")
	fs.Uint64Var(&f.ChaosSeed, "chaos-seed", 0, "fault-plan seed (0 = derive from -seed)")
	fs.Float64Var(&f.Drop, "chaos-drop", 0.2, "per-packet drop probability under -chaos")
	fs.Float64Var(&f.Duplicate, "chaos-dup", 0, "per-packet duplication probability under -chaos")
	fs.Float64Var(&f.Reorder, "chaos-reorder", 0, "per-packet pairwise-reorder probability under -chaos")
	fs.Float64Var(&f.DelayProb, "chaos-delay-prob", 0, "per-packet delay probability under -chaos")
	fs.DurationVar(&f.Delay, "chaos-delay", 5*time.Millisecond, "delay applied to delayed packets")
	fs.StringVar(&f.Partition, "chaos-partition", "",
		"partition window from:until (ticks, half-open); splits nodes into low/high halves")
	fs.StringVar(&f.Crash, "chaos-crash", "",
		"crash-restart window node:from:until (ticks, half-open)")
	fs.IntVar(&f.Mailbox, "mailbox", 0, "per-node transport mailbox capacity (0 = engine default)")
	return f
}

// Validate parses the window flags and rejects out-of-range values.
func (f *TransportFlags) Validate() error {
	if f.Chaos {
		f.Daemon = true
	}
	for name, p := range map[string]float64{
		"-chaos-drop": f.Drop, "-chaos-dup": f.Duplicate,
		"-chaos-reorder": f.Reorder, "-chaos-delay-prob": f.DelayProb,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("%s %v out of [0,1]", name, p)
		}
	}
	if f.Mailbox < 0 {
		return fmt.Errorf("-mailbox %d negative", f.Mailbox)
	}
	if f.Partition != "" {
		from, until, err := parseWindow2(f.Partition)
		if err != nil {
			return fmt.Errorf("-chaos-partition: %w", err)
		}
		f.partition = &PartitionWindow{From: from, Until: until}
	}
	if f.Crash != "" {
		parts := strings.Split(f.Crash, ":")
		if len(parts) != 3 {
			return fmt.Errorf("-chaos-crash: want node:from:until, got %q", f.Crash)
		}
		node, err1 := strconv.Atoi(parts[0])
		from, until, err2 := parseWindow2(parts[1] + ":" + parts[2])
		if err1 != nil || err2 != nil || node < 0 {
			return fmt.Errorf("-chaos-crash: want node:from:until, got %q", f.Crash)
		}
		f.crash = &CrashWindow{Node: node, From: from, Until: until}
	}
	return nil
}

// parseWindow2 parses "from:until" into a half-open int window.
func parseWindow2(s string) (from, until int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want from:until, got %q", s)
	}
	from, err1 := strconv.Atoi(parts[0])
	until, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || from < 0 || until < from {
		return 0, 0, fmt.Errorf("want 0 <= from <= until, got %q", s)
	}
	return from, until, nil
}

// FaultConfig assembles the chaos schedule the flags describe, splitting
// n nodes into low/high halves for the partition window. It returns nil
// when -chaos is off. seed is used when -chaos-seed is 0.
func (f *TransportFlags) FaultConfig(n int, seed uint64) *FaultConfig {
	if !f.Chaos {
		return nil
	}
	cfg := &FaultConfig{
		Seed:      f.ChaosSeed,
		Drop:      f.Drop,
		Duplicate: f.Duplicate,
		Reorder:   f.Reorder,
		DelayProb: f.DelayProb,
		Delay:     f.Delay,
	}
	if cfg.Seed == 0 {
		cfg.Seed = seed
	}
	if f.partition != nil {
		w := *f.partition
		for v := 0; v < n/2; v++ {
			w.A = append(w.A, v)
		}
		cfg.Partitions = []PartitionWindow{w}
	}
	if f.crash != nil {
		cfg.Crashes = []CrashWindow{*f.crash}
	}
	return cfg
}

// RunnerOptions translates the flags into Runner options for an n-node
// scenario; empty when -daemon/-chaos are off. Apply after
// CommonFlags.RunnerOptions so the engine selection wins.
func (f *TransportFlags) RunnerOptions(n int, seed uint64) []RunnerOption {
	var opts []RunnerOption
	if !f.Daemon {
		return opts
	}
	opts = append(opts, WithEngine(EngineDaemonTransport))
	if f.Mailbox > 0 {
		opts = append(opts, WithMailbox(f.Mailbox))
	}
	if cfg := f.FaultConfig(n, seed); cfg != nil {
		opts = append(opts, WithTransportFaults(*cfg))
	}
	return opts
}
