package regcast

import (
	"context"
	"strings"
	"testing"
)

// TestRunAcceptsEveryScenarioKind pins the sealed AnyScenario union: the
// single Runner.Run entry point executes both scenario kinds, by value
// and by pointer, and a population run through it folds into the shared
// Result shape with exactly the PopulationBatch metric mapping.
func TestRunAcceptsEveryScenarioKind(t *testing.T) {
	le, err := NewLeaderElection(128)
	if err != nil {
		t.Fatal(err)
	}
	sc := PopulationScenario{N: 128, Pair: le, Init: InitAllLeaders, Seed: 9}

	pres, err := RunPopulation(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !pres.Converged {
		t.Fatal("leader election did not converge; pick a different seed for this pin")
	}

	for _, s := range []AnyScenario{sc, &sc} {
		res, err := Run(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != pres.Steps {
			t.Errorf("Rounds = %d, want super-steps %d", res.Rounds, pres.Steps)
		}
		if res.ChannelsDialed != pres.Interactions {
			t.Errorf("ChannelsDialed = %d, want total interactions %d", res.ChannelsDialed, pres.Interactions)
		}
		if !res.AllInformed || res.Informed != 128 || res.AliveNodes != 128 {
			t.Errorf("converged mapping: AllInformed=%v Informed=%d AliveNodes=%d", res.AllInformed, res.Informed, res.AliveNodes)
		}
		if res.FirstAllInformed != pres.ConvergedAt {
			t.Errorf("FirstAllInformed = %d, want convergence step %d", res.FirstAllInformed, pres.ConvergedAt)
		}
		if res.Transmissions != pres.ConvergedInteractions {
			t.Errorf("Transmissions = %d, want interactions to convergence %d", res.Transmissions, pres.ConvergedInteractions)
		}
	}

	// Broadcast scenarios keep working through the same entry point, by
	// value and by pointer.
	g, err := NewRegularGraph(256, 8, NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewFourChoice(256, 8)
	if err != nil {
		t.Fatal(err)
	}
	bsc, err := NewScenario(Static(g), proto, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	byVal, err := Run(context.Background(), bsc)
	if err != nil {
		t.Fatal(err)
	}
	byPtr, err := Run(context.Background(), &bsc)
	if err != nil {
		t.Fatal(err)
	}
	if byVal.Rounds != byPtr.Rounds || byVal.Transmissions != byPtr.Transmissions {
		t.Error("value and pointer Scenario runs diverged")
	}

	if _, err := Run(context.Background(), nil); err == nil {
		t.Error("Run accepted a nil scenario")
	}
}

// TestRunPopulationWrapperUnchanged pins that the deprecated
// RunPopulation wrappers still return the population-specific result the
// new Run cannot carry (Measure, convergence detail) — byte-compatible
// behaviour for pre-AnyScenario callers.
func TestRunPopulationWrapperUnchanged(t *testing.T) {
	le, err := NewLeaderElection(64)
	if err != nil {
		t.Fatal(err)
	}
	sc := PopulationScenario{N: 64, Pair: le, Init: InitAllLeaders, Seed: 4}
	direct, err := RunPopulation(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	viaRunner, err := NewRunner().RunPopulation(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Steps != viaRunner.Steps || direct.Interactions != viaRunner.Interactions ||
		direct.Measure != viaRunner.Measure || direct.ConvergedAt != viaRunner.ConvergedAt {
		t.Error("package-level and Runner RunPopulation diverged")
	}
	if direct.Converged && direct.Measure != 1 {
		t.Errorf("converged leader election left %d leaders", direct.Measure)
	}
}

// TestRunRejectsForeignScenario documents the sealed union: the only way
// to get an unsupported-kind error is a new in-package kind that forgot
// its Run case, and the error names the offending type.
func TestRunRejectsForeignScenario(t *testing.T) {
	_, err := NewRunner().Run(context.Background(), badScenario{})
	if err == nil || !strings.Contains(err.Error(), "badScenario") {
		t.Errorf("want an unsupported-kind error naming the type, got %v", err)
	}
}

// badScenario simulates an in-package scenario kind missing its Run
// case; external packages cannot construct one (anyScenario is
// unexported), which is the point of the sealed interface.
type badScenario struct{}

func (badScenario) anyScenario() {}
