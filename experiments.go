package regcast

import "regcast/internal/experiments"

// Experiment is one registered paper-reproduction measurement; its Run
// method regenerates the corresponding EXPERIMENTS.md tables.
type Experiment = experiments.Experiment

// ExperimentOptions selects the experiment profile. Its Workers field uses
// the same semantics as CommonFlags.Workers (0 sequential, -1 sharded with
// GOMAXPROCS workers, n sharded with n workers); build it from parsed
// flags with CommonFlags.ExperimentOptions.
type ExperimentOptions = experiments.Options

// Experiments returns every registered experiment ordered by numeric ID.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID looks an experiment up by its DESIGN.md identifier
// ("E1", "E2", ...).
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }
