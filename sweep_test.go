package regcast_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"regcast"
)

// miniSweep is a 2×2 grid over n and a fault probability, small enough
// for unit tests.
func miniSweep(rw int, timing bool) regcast.Sweep {
	return regcast.Sweep{
		Name: "mini",
		Seed: 5,
		Axes: []regcast.Axis{
			regcast.Vals("n", 128, 256),
			regcast.Vals("loss", 0.0, 0.2),
		},
		Replications:       4,
		ReplicationWorkers: rw,
		Timing:             timing,
		Build: func(p regcast.Point) (regcast.Batch, error) {
			n := p.Value("n").(int)
			loss := p.Value("loss").(float64)
			rng := regcast.NewRand(p.Seed)
			g, err := regcast.NewRegularGraph(n, 8, rng.Split())
			if err != nil {
				return regcast.Batch{}, err
			}
			proto, err := regcast.NewFourChoice(n, 8)
			if err != nil {
				return regcast.Batch{}, err
			}
			sc, err := regcast.NewScenario(regcast.Static(g), proto,
				regcast.WithSeed(rng.Uint64()), regcast.WithMessageLoss(loss))
			if err != nil {
				return regcast.Batch{}, err
			}
			return regcast.Batch{Scenario: sc, RandomizeSource: true}, nil
		},
	}
}

func TestSweepPointsGridOrder(t *testing.T) {
	s := miniSweep(0, false)
	points := s.Points()
	if len(points) != 4 {
		t.Fatalf("grid has %d points, want 4", len(points))
	}
	wantLabels := []string{
		"n=128/loss=0", "n=128/loss=0.2", "n=256/loss=0", "n=256/loss=0.2",
	}
	seeds := map[uint64]bool{}
	for i, p := range points {
		if p.Index != i {
			t.Errorf("point %d has Index %d", i, p.Index)
		}
		if p.Label() != wantLabels[i] {
			t.Errorf("point %d label %q, want %q (last axis varies fastest)", i, p.Label(), wantLabels[i])
		}
		if seeds[p.Seed] {
			t.Errorf("point %d reuses seed %d", i, p.Seed)
		}
		seeds[p.Seed] = true
		if got := p.Value("n").(int); got != []int{128, 128, 256, 256}[i] {
			t.Errorf("point %d n = %d", i, got)
		}
	}
	// Params mirror the labels.
	if prm := points[1].Params(); len(prm) != 2 || prm[1] != (regcast.Param{Axis: "loss", Value: "0.2"}) {
		t.Errorf("params %+v", points[1].Params())
	}
}

// TestSweepReportDeterministicAcrossWorkers is the regcast-bench
// acceptance contract at the library level: the serialised report bytes
// (JSON and CSV, timing off) are identical for every ReplicationWorkers
// value.
func TestSweepReportDeterministicAcrossWorkers(t *testing.T) {
	render := func(rw int) (string, string) {
		rep, err := miniSweep(rw, false).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := rep.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j0, c0 := render(0)
	for _, rw := range []int{1, 4} {
		j, c := render(rw)
		if j != j0 {
			t.Errorf("JSON report differs at ReplicationWorkers=%d:\n%s\nvs\n%s", rw, j, j0)
		}
		if c != c0 {
			t.Errorf("CSV report differs at ReplicationWorkers=%d:\n%s\nvs\n%s", rw, c, c0)
		}
	}
	if !strings.Contains(j0, `"schema": "`+regcast.ReportSchema+`"`) {
		t.Errorf("JSON lacks the schema stamp:\n%s", j0)
	}
	// Timing off: no wall-clock fields may appear.
	if strings.Contains(j0, `"wall_clock_ms"`) {
		t.Errorf("deterministic report carries wall_clock_ms:\n%s", j0)
	}
	if !strings.HasPrefix(c0, "index,label,replications,") {
		t.Errorf("CSV header malformed:\n%s", c0)
	}
	if got := strings.Count(c0, "\n"); got != 5 { // header + 4 cells
		t.Errorf("CSV has %d lines, want 5:\n%s", got, c0)
	}
}

func TestSweepTiming(t *testing.T) {
	rep, err := miniSweep(0, true).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var j bytes.Buffer
	if err := rep.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(j.String(), `"wall_clock_ms"`) {
		t.Errorf("timing report lacks wall_clock_ms:\n%s", j.String())
	}
}

func TestSweepCellContents(t *testing.T) {
	rep, err := miniSweep(0, false).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "mini" || rep.Seed != 5 || rep.Schema != regcast.ReportSchema {
		t.Errorf("report header wrong: %+v", rep)
	}
	for _, cell := range rep.Cells {
		if cell.Replications != 4 {
			t.Errorf("cell %s replications %d, want 4 (sweep default)", cell.Label, cell.Replications)
		}
		if cell.InformedFrac.Mean <= 0 {
			t.Errorf("cell %s informs nobody", cell.Label)
		}
	}
	// Loss-free cells must complete; the four-choice schedule has slack
	// for loss 0.2 too but we only assert the clean cells.
	for _, i := range []int{0, 2} {
		if rep.Cells[i].CompletedFrac != 1 {
			t.Errorf("loss-free cell %s incomplete: %+v", rep.Cells[i].Label, rep.Cells[i].CompletedFrac)
		}
	}
}

func TestSweepBuildErrors(t *testing.T) {
	s := miniSweep(0, false)
	s.Build = nil
	if _, err := s.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "Build") {
		t.Errorf("nil Build error: %v", err)
	}
	s = miniSweep(0, false)
	s.Axes = []regcast.Axis{{Name: "empty"}}
	if _, err := s.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "empty axis") {
		t.Errorf("empty axis error: %v", err)
	}
}
