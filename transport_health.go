package regcast

import (
	"regcast/internal/transport"
)

// The resilient gossip daemon (EngineDaemonTransport) and its fault
// injector surface here: health snapshots come back on Result.Transport,
// and chaos schedules go in through WithTransportFaults. The underlying
// machinery lives in internal/transport — persistent per-peer
// connections behind a backoff dial scheduler, bounded send queues with
// drop accounting, expiring-bucket rumour dedup, and a seeded FaultPlan
// whose drop/delay/duplicate/reorder/partition/crash decisions are pure
// functions of (seed, peer pair, packet sequence, epoch), so chaos runs
// replay bit-identically.
type (
	// TransportHealth is a transport engine's metrics snapshot: dials,
	// redials, retries, per-bucket drop accounting, dedup hits, and
	// per-peer link state. Its LedgerGap method checks that every packet
	// handed to Send is accounted by exactly one outcome — zero at
	// quiescence, asserted by the chaos soak tests.
	TransportHealth = transport.Health
	// TransportPeerHealth is one peer's row in a TransportHealth snapshot.
	TransportPeerHealth = transport.PeerHealth
	// TransportFaultStats is the fault-injection ledger attached to a
	// TransportHealth when a chaos run wrapped the transport.
	TransportFaultStats = transport.FaultStats
	// FaultConfig is a seeded, reproducible chaos schedule for the
	// transport engines: probabilistic drop/duplicate/reorder/delay plus
	// epoch-windowed partitions and crash-restarts.
	FaultConfig = transport.FaultConfig
	// PartitionWindow splits the node set in two for a range of fault
	// epochs (the daemon engine advances one epoch per tick).
	PartitionWindow = transport.PartitionWindow
	// CrashWindow takes one node down for a range of fault epochs; its
	// persistent connections are severed at the crash and redialed with
	// backoff after the restart.
	CrashWindow = transport.CrashWindow
)

// WithTransportFaults injects a seeded fault plan between the gossip
// cluster and the transport. Transport engines only (Run rejects other
// engines); the fault epoch advances once per tick, so PartitionWindow
// and CrashWindow ranges are tick ranges. The resulting
// Result.Transport.Faults carries the injection ledger.
func WithTransportFaults(cfg FaultConfig) RunnerOption {
	return func(r *Runner) { r.faults = &cfg }
}
