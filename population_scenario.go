package regcast

import (
	"context"
	"fmt"

	"regcast/internal/population"
)

// Population-protocol facade: the SchedulerInteractions counterpart of
// Scenario/Run. A PopulationScenario describes one run of an
// agent-state machine under the uniform random-pair scheduler (or the
// synchronous ring scheduler), and Runner.RunPopulation executes it on
// the same engine selection the phone-call scenarios use —
// EngineSequential and EngineSharded produce bit-identical traces here,
// because population pair draws are state-independent (see
// internal/population).

// Facade aliases for the population engine's vocabulary.
type (
	// PopulationState is one agent's packed state word.
	PopulationState = population.State
	// PairProtocol is an agent-state machine under uniform random ordered
	// pairs; see internal/population.
	PairProtocol = population.PairProtocol
	// RingProtocol is an agent-state machine under synchronous ring steps.
	RingProtocol = population.RingProtocol
	// SuperStepStats is the per-super-step record streamed to observers.
	SuperStepStats = population.SuperStepStats
	// PopulationObserver consumes per-super-step statistics online.
	PopulationObserver = population.Observer
	// InteractionObserver optionally extends PopulationObserver with
	// per-interaction events from the pair driver.
	InteractionObserver = population.InteractionObserver
	// PopulationResult summarises one population run.
	PopulationResult = population.Result
	// LeaderElection is the self-stabilizing ranked-timeout leader
	// election protocol (uniform pairs on the clique).
	LeaderElection = population.LeaderElection
	// HermanRing is Herman's self-stabilizing token ring (synchronous
	// coin-flip variant).
	HermanRing = population.Herman
	// ApproxMajority is the three-state approximate-majority protocol
	// (undecided-state dynamics) — the showcase workload for the
	// population engine's table fast path.
	ApproxMajority = population.ApproxMajority

	// TablePairProtocol is the optional PairProtocol extension that lets
	// the engine compile Transition into a dense lookup table; see
	// population.TableProtocol for the StateBound/CoinBits contract.
	TablePairProtocol = population.TableProtocol
	// CountsPairProtocol is the optional measure-through-occupancy
	// extension: the engine maintains an exact per-state occupancy vector
	// and folds it with MeasureCounts instead of scanning all n agents.
	CountsPairProtocol = population.CountsProtocol
	// BatchPairProtocol is the devirtualisation hook for protocols whose
	// state space is too large to table-compile: ApplyPairs applies a
	// whole pre-drawn block in one loop.
	BatchPairProtocol = population.BatchProtocol
	// RingTableProtocol is the table extension for ring protocols.
	RingTableProtocol = population.RingTableProtocol
)

// Approximate-majority state values (facade names for the population
// package's constants).
const (
	MajorityBlank = population.MajBlank
	MajorityX     = population.MajX
	MajorityY     = population.MajY
)

// NewLeaderElection builds the self-stabilizing leader-election protocol
// for an n-agent clique.
func NewLeaderElection(n int) (*LeaderElection, error) {
	return population.NewLeaderElection(n)
}

// NewHermanRing builds Herman's token ring for an odd n-agent ring.
func NewHermanRing(n int) (*HermanRing, error) {
	return population.NewHerman(n)
}

// NewApproxMajority builds the three-state approximate-majority
// protocol.
func NewApproxMajority() *ApproxMajority { return population.NewApproxMajority() }

// InitMajority builds an initial configuration with ceil(frac*n) agents
// holding opinion X and the rest opinion Y; frac barely above 1/2 is
// the adversarial close-race start.
func InitMajority(frac float64) func(i, n int, coin uint64) PopulationState {
	return population.InitMajority(frac)
}

// InitAllLeaders is the canonical adversarial start for leader election:
// every agent a leader with a distinct rank.
func InitAllLeaders(i, n int, coin uint64) PopulationState {
	return population.InitAllLeaders(i, n, coin)
}

// InitLeaderless is the canonical adversarial start for leader election:
// no leaders, expired timers.
func InitLeaderless(i, n int, coin uint64) PopulationState {
	return population.InitLeaderless(i, n, coin)
}

// InitPoisoned is the worst-case leader-election start: leaderless with
// every max-seen value poisoned to the top of the rank space.
func InitPoisoned(i, n int, coin uint64) PopulationState {
	return population.InitPoisoned(i, n, coin)
}

// HermanInitTokens builds an adversarial Herman start with exactly k
// equally spaced tokens on an n-ring (k odd; k = 3 is the conjectured
// worst case).
func HermanInitTokens(n, k int) (func(i, n int, coin uint64) PopulationState, error) {
	return population.InitTokens(n, k)
}

// PopulationScenario describes one population-protocol run: the agent
// count, the protocol (exactly one of Pair and Ring), an optional
// adversarial initial configuration, and the run's seed and budgets.
// The zero values of the budget fields select the engine defaults
// documented on population.Config.
type PopulationScenario struct {
	// N is the number of agents.
	N int
	// Pair selects the uniform random ordered-pair scheduler.
	Pair PairProtocol
	// Ring selects the synchronous ring scheduler.
	Ring RingProtocol
	// Init maps an agent index to its initial state (nil = zero states);
	// coin is a fresh word from the run's init stream.
	Init func(i, n int, coin uint64) PopulationState
	// Seed is the run's master seed.
	Seed uint64
	// RNG, when non-nil, overrides Seed with an explicit master stream —
	// the hook PopulationBatch uses to inject per-replication streams.
	// Runs sharing an RNG value are not independent; prefer Seed.
	RNG *Rand
	// MaxSteps, BatchSize and SilenceWindow bound the run; zero selects
	// the defaults documented on population.Config.
	MaxSteps      int
	BatchSize     int
	SilenceWindow int
	// Observer receives per-super-step statistics (and, if it also
	// implements InteractionObserver, per-interaction events).
	Observer PopulationObserver
}

// anyScenario marks PopulationScenario as a member of the sealed
// AnyScenario union, so Runner.Run accepts it directly.
func (PopulationScenario) anyScenario() {}

// RunPopulation executes one population scenario on the simulation
// engines and returns the full PopulationResult (Measure and the
// population-specific convergence fields included).
//
// Deprecated: Runner.Run accepts a PopulationScenario directly and is
// the single entry point for every scenario kind; use it unless the
// population-specific result fields are needed. RunPopulation remains a
// supported thin wrapper over the same execution path — the two run
// identical traces.
func (r Runner) RunPopulation(ctx context.Context, s PopulationScenario) (PopulationResult, error) {
	return r.runPopulation(ctx, s)
}

// runPopulation executes one population scenario on the simulation
// engines. EngineSequential runs the shard passes inline;
// EngineSharded runs them on the worker pool; both execute the same
// trace, bit-identical for every worker count at a fixed shard count.
// Other engines reject the scenario. Cancelling ctx stops the run at
// the next super-step boundary and returns ctx.Err() alongside the
// partial result.
func (r Runner) runPopulation(ctx context.Context, s PopulationScenario) (PopulationResult, error) {
	var workers int
	switch r.engine {
	case EngineSequential:
		workers = 0
	case EngineSharded:
		workers = r.workers
		if workers == 0 {
			workers = WorkersAuto
		}
	default:
		return PopulationResult{}, fmt.Errorf("regcast: the %v engine cannot run population scenarios (use EngineSequential or EngineSharded)", r.engine)
	}
	rng := s.RNG
	if rng == nil {
		rng = NewRand(s.Seed)
	}
	res, err := population.Run(population.Config{
		N:               s.N,
		Pair:            s.Pair,
		Ring:            s.Ring,
		Init:            s.Init,
		RNG:             rng,
		MaxSteps:        s.MaxSteps,
		BatchSize:       s.BatchSize,
		SilenceWindow:   s.SilenceWindow,
		Workers:         workers,
		Shards:          r.shards,
		DisableFastPath: r.noFastPath || r.noPopFastPath,
		Observer:        s.Observer,
		Halt:            haltFor(ctx),
	})
	if err != nil {
		return PopulationResult{}, err
	}
	return res, ctxErr(ctx)
}

// RunPopulation executes the scenario with default runner options — the
// sequential driver unless opts say otherwise.
//
// Deprecated: Run accepts a PopulationScenario directly; use it unless
// the population-specific result fields are needed.
func RunPopulation(ctx context.Context, s PopulationScenario, opts ...RunnerOption) (PopulationResult, error) {
	return NewRunner(opts...).runPopulation(ctx, s)
}
