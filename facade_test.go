package regcast_test

import (
	"context"
	"errors"
	"hash/fnv"
	"reflect"
	"strings"
	"testing"

	"regcast"
	"regcast/internal/baseline"
	"regcast/internal/core"
)

// hashTrace fingerprints an InformedAt trace for the bit-identity pins.
func hashTrace(informedAt []int32) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range informedAt {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// goldenGraph is the fixed topology of the determinism pins.
func goldenGraph(t testing.TB) *regcast.Graph {
	t.Helper()
	g, err := regcast.NewRegularGraph(2048, 8, regcast.NewRand(1001))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

type golden struct {
	rounds, firstAll, informed int
	tx, dials                  int64
	hash                       uint64
}

func checkGolden(t *testing.T, name string, res regcast.Result, want golden) {
	t.Helper()
	got := golden{res.Rounds, res.FirstAllInformed, res.Informed,
		res.Transmissions, res.ChannelsDialed, hashTrace(res.InformedAt)}
	if got != want {
		t.Errorf("%s: trace diverged from the pre-facade engine:\ngot  %+v\nwant %+v", name, got, want)
	}
}

// TestFacadeTraceGoldenSequential pins that a facade run on the default
// (sequential) engine is bit-identical to the pre-redesign engine: the
// golden values were captured by calling phonecall.Run directly, before
// the facade and the observer plumbing existed.
func TestFacadeTraceGoldenSequential(t *testing.T) {
	g := goldenGraph(t)
	four, err := core.New(2048, 8)
	if err != nil {
		t.Fatal(err)
	}
	scenario, err := regcast.NewScenario(regcast.Static(g), four, regcast.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := regcast.Run(context.Background(), scenario)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != regcast.EngineSequential {
		t.Fatalf("default engine = %v, want sequential", res.Engine)
	}
	checkGolden(t, "seq/fourchoice", res, golden{46, 23, 2048, 32720, 376832, 0xc5537e0064da52f0})
}

// TestFacadeTraceGoldenSharded pins the sharded engine at a fixed shard
// count: bit-identical to the pre-redesign sharded engine, for every
// worker count.
func TestFacadeTraceGoldenSharded(t *testing.T) {
	g := goldenGraph(t)
	four, err := core.New(2048, 8)
	if err != nil {
		t.Fatal(err)
	}
	scenario, err := regcast.NewScenario(regcast.Static(g), four, regcast.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	for workers := 1; workers <= 4; workers++ {
		res, err := regcast.Run(context.Background(), scenario,
			regcast.WithWorkers(workers), regcast.WithShards(16))
		if err != nil {
			t.Fatal(err)
		}
		if res.Engine != regcast.EngineSharded {
			t.Fatalf("engine = %v, want sharded", res.Engine)
		}
		checkGolden(t, "sharded16/fourchoice", res, golden{46, 23, 2048, 32720, 376832, 0xd6df1d4371527f14})
	}
}

// TestFacadeTraceGoldenQuasirandom pins the quasirandom dial strategy
// through the facade (push-only baseline, early stop).
func TestFacadeTraceGoldenQuasirandom(t *testing.T) {
	g := goldenGraph(t)
	push, err := baseline.NewPush(2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	scenario, err := regcast.NewScenario(regcast.Static(g), push,
		regcast.WithSeed(7),
		regcast.WithDialStrategy(regcast.DialQuasirandom),
		regcast.WithStopEarly())
	if err != nil {
		t.Fatal(err)
	}
	res, err := regcast.Run(context.Background(), scenario)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "seq/push/quasirandom", res, golden{17, 17, 2048, 11626, 34816, 0xb913c0fdd6f67d65})
}

// recordingObserver captures the full callback stream.
type recordingObserver struct {
	rounds     []regcast.RoundStats
	informedAt map[int]int
}

func (r *recordingObserver) OnRound(rs regcast.RoundStats) { r.rounds = append(r.rounds, rs) }
func (r *recordingObserver) OnInformed(node, round int) {
	if r.informedAt == nil {
		r.informedAt = map[int]int{}
	}
	if _, dup := r.informedAt[node]; dup {
		panic("OnInformed fired twice for one node on a static topology")
	}
	r.informedAt[node] = round
}

// TestObserverStreamsResult checks, on every simulation engine, that the
// streamed callbacks carry exactly the data of the retained trace: the
// OnRound stream equals Result.PerRound and the OnInformed stream equals
// Result.InformedAt.
func TestObserverStreamsResult(t *testing.T) {
	g, err := regcast.NewRegularGraph(512, 8, regcast.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	four, err := core.New(512, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts []regcast.RunnerOption
	}{
		{"sequential", nil},
		{"sharded", []regcast.RunnerOption{regcast.WithWorkers(4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			obs := &recordingObserver{}
			scenario, err := regcast.NewScenario(regcast.Static(g), four,
				regcast.WithSeed(9),
				regcast.WithRecordRounds(),
				regcast.WithObserver(obs))
			if err != nil {
				t.Fatal(err)
			}
			res, err := regcast.Run(context.Background(), scenario, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(obs.rounds, res.PerRound) {
				t.Errorf("OnRound stream differs from Result.PerRound")
			}
			if len(obs.informedAt) != res.Informed {
				t.Errorf("OnInformed fired for %d nodes, result says %d informed", len(obs.informedAt), res.Informed)
			}
			for node, round := range obs.informedAt {
				if int(res.InformedAt[node]) != round {
					t.Errorf("OnInformed(%d, %d) disagrees with InformedAt[%d] = %d", node, round, node, res.InformedAt[node])
				}
			}
		})
	}
}

// TestGoroutineEngineThroughFacade runs the goroutine-per-node runtime via
// the Runner: the facade must reconstruct PerRound from the observer
// stream and report a complete broadcast.
func TestGoroutineEngineThroughFacade(t *testing.T) {
	g, err := regcast.NewRegularGraph(256, 8, regcast.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	four, err := core.New(256, 8)
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	scenario, err := regcast.NewScenario(regcast.Static(g), four,
		regcast.WithSeed(13),
		regcast.WithRecordRounds(),
		regcast.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	res, err := regcast.Run(context.Background(), scenario,
		regcast.WithEngine(regcast.EngineGoroutinePerNode))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("goroutine engine incomplete: %d/%d", res.Informed, res.AliveNodes)
	}
	if len(res.PerRound) != res.Rounds {
		t.Fatalf("PerRound has %d entries for %d rounds", len(res.PerRound), res.Rounds)
	}
	if !reflect.DeepEqual(obs.rounds, res.PerRound) {
		t.Error("user observer stream differs from reconstructed PerRound")
	}
	var tx int64
	for _, rm := range res.PerRound {
		tx += rm.Transmissions
	}
	if tx != res.Transmissions {
		t.Errorf("per-round transmissions sum %d != total %d", tx, res.Transmissions)
	}
	if res.ChannelsDialed != int64(res.Rounds)*int64(256*4) {
		t.Errorf("ChannelsDialed = %d, want rounds×n×k = %d", res.ChannelsDialed, res.Rounds*256*4)
	}
	// Determinism: same seed, same trace, regardless of scheduling (a
	// fresh scenario, because the recording observer rejects replays).
	scenario2, err := regcast.NewScenario(regcast.Static(g), four, regcast.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := regcast.Run(context.Background(), scenario2,
		regcast.WithEngine(regcast.EngineGoroutinePerNode))
	if err != nil {
		t.Fatal(err)
	}
	if hashTrace(res.InformedAt) != hashTrace(res2.InformedAt) {
		t.Error("goroutine engine not reproducible from the seed")
	}
}

// TestScenarioValidation exercises the fail-fast construction errors,
// including the quasirandom/pull incompatibility that used to live only
// in comments.
func TestScenarioValidation(t *testing.T) {
	g, err := regcast.NewRegularGraph(64, 6, regcast.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	push, err := baseline.NewPush(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	pushpull, err := baseline.NewPushPull(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := core.New(64, 6)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		topo    regcast.Topology
		proto   regcast.Protocol
		opts    []regcast.ScenarioOption
		wantErr string
	}{
		{"nil topology", nil, push, nil, "requires a Topology"},
		{"nil protocol", regcast.Static(g), nil, nil, "requires a Protocol"},
		{"source out of range", regcast.Static(g), push,
			[]regcast.ScenarioOption{regcast.WithSource(64)}, "out of range"},
		{"bad failure prob", regcast.Static(g), push,
			[]regcast.ScenarioOption{regcast.WithChannelFailure(1.5)}, "out of [0,1]"},
		{"bad loss prob", regcast.Static(g), push,
			[]regcast.ScenarioOption{regcast.WithMessageLoss(-0.1)}, "out of [0,1]"},
		{"quasirandom with pulling protocol", regcast.Static(g), pushpull,
			[]regcast.ScenarioOption{regcast.WithDialStrategy(regcast.DialQuasirandom)}, "push-only"},
		{"quasirandom with non-PullFree protocol", regcast.Static(g), four,
			[]regcast.ScenarioOption{regcast.WithDialStrategy(regcast.DialQuasirandom)}, "push-only"},
		{"quasirandom with dial memory", regcast.Static(g), push,
			[]regcast.ScenarioOption{
				regcast.WithDialStrategy(regcast.DialQuasirandom),
				regcast.WithAvoidRecent(3),
			}, "incompatible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := regcast.NewScenario(tc.topo, tc.proto, tc.opts...)
			if err == nil {
				t.Fatal("NewScenario accepted an invalid scenario")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	// The valid quasirandom combination still works.
	if _, err := regcast.NewScenario(regcast.Static(g), push,
		regcast.WithDialStrategy(regcast.DialQuasirandom)); err != nil {
		t.Fatalf("push-only quasirandom scenario rejected: %v", err)
	}
}

// TestRunCancellation checks that a cancelled context stops a run at a
// round boundary and surfaces ctx.Err().
func TestRunCancellation(t *testing.T) {
	g, err := regcast.NewRegularGraph(512, 8, regcast.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	push, err := baseline.NewPush(512, 1)
	if err != nil {
		t.Fatal(err)
	}
	scenario, err := regcast.NewScenario(regcast.Static(g), push, regcast.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range [][]regcast.RunnerOption{
		nil,
		{regcast.WithWorkers(2)},
		{regcast.WithEngine(regcast.EngineGoroutinePerNode)},
	} {
		res, err := regcast.Run(ctx, scenario, opts...)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run with cancelled ctx returned %v, want context.Canceled", err)
		}
		if res.Rounds >= push.Horizon() {
			t.Fatalf("cancelled run still executed all %d rounds", res.Rounds)
		}
	}
}

// TestRunnerRejectsInvalidCombos checks the engine-compatibility errors.
func TestRunnerRejectsInvalidCombos(t *testing.T) {
	g, err := regcast.NewRegularGraph(64, 4, regcast.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	push, err := baseline.NewPush(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := regcast.NewScenario(regcast.Static(g), push, regcast.WithMessageLoss(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regcast.Run(context.Background(), lossy,
		regcast.WithEngine(regcast.EngineGossipTransport)); err == nil {
		t.Error("transport engine accepted simulated message loss")
	}
	memory, err := regcast.NewScenario(regcast.Static(g), push, regcast.WithAvoidRecent(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regcast.Run(context.Background(), memory,
		regcast.WithEngine(regcast.EngineGoroutinePerNode)); err == nil {
		t.Error("goroutine engine accepted dial memory")
	}
	if _, err := regcast.Run(context.Background(), regcast.Scenario{}); err == nil {
		t.Error("zero-value Scenario accepted")
	}
}
