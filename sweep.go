package regcast

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"regcast/internal/xrand"
)

// AxisValue is one setting of a swept parameter: a label for reports and
// an opaque value handed to the sweep's Build function.
type AxisValue struct {
	Label string
	Value any
}

// Axis is one swept parameter: a name and an ordered list of values.
type Axis struct {
	Name   string
	Values []AxisValue
}

// Vals builds an Axis whose labels are the fmt.Sprint of each value — the
// common case for numeric axes: Vals("n", 1024, 4096, 16384).
func Vals(name string, values ...any) Axis {
	ax := Axis{Name: name}
	for _, v := range values {
		ax.Values = append(ax.Values, AxisValue{Label: fmt.Sprint(v), Value: v})
	}
	return ax
}

// Val builds a labelled AxisValue, for axes whose values don't print
// usefully (protocol constructors, topology builders, fault models).
func Val(label string, value any) AxisValue {
	return AxisValue{Label: label, Value: value}
}

// TopologyAxis builds the conventional "topology" axis from labelled
// declarative specs, so grids can sweep whole topology families —
// including dynamic ones:
//
//	regcast.TopologyAxis(
//		regcast.Val("regular", regcast.RegularGraphSpec{N: n, D: 8}),
//		regcast.Val("hypercube", regcast.HypercubeSpec{Dim: 12}),
//		regcast.Val("overlay-churn", regcast.OverlaySpec{N: n, D: 8, JoinProb: 0.01, LeaveProb: 0.01}),
//	)
//
// Build functions read the spec back with
// p.Value("topology").(regcast.TopologySpec) and hand it to
// NewScenarioSpec.
func TopologyAxis(specs ...AxisValue) Axis {
	return Axis{Name: "topology", Values: specs}
}

// ChurnAxis builds the conventional "churn" axis: per-round join/leave
// probabilities for overlay topologies, labelled by rate.
func ChurnAxis(rates ...float64) Axis {
	ax := Axis{Name: "churn"}
	for _, q := range rates {
		ax.Values = append(ax.Values, AxisValue{Label: fmt.Sprint(q), Value: q})
	}
	return ax
}

// Point is one cell of a sweep's grid: a value fixed on every axis, plus
// the cell's deterministic seed.
type Point struct {
	// Index is the cell's position in the grid's row-major order (the
	// last axis varies fastest).
	Index int
	// Seed is the cell's derived master seed; Build functions should seed
	// their scenario (or Batch.Seed) from it so the whole grid is a pure
	// function of Sweep.Seed.
	Seed uint64

	axes   []Axis
	choice []int // choice[i] indexes axes[i].Values
}

// Value returns the point's value on the named axis. It panics on an
// unknown axis name — a programming error in the Build function.
func (p Point) Value(axis string) any {
	for i, ax := range p.axes {
		if ax.Name == axis {
			return ax.Values[p.choice[i]].Value
		}
	}
	panic(fmt.Sprintf("regcast: sweep point has no axis %q", axis))
}

// Label returns the point's canonical cell label, "axis=value" pairs
// joined with "/" in axis order (e.g. "n=1024/protocol=push").
func (p Point) Label() string {
	parts := make([]string, len(p.axes))
	for i, ax := range p.axes {
		parts[i] = ax.Name + "=" + ax.Values[p.choice[i]].Label
	}
	return strings.Join(parts, "/")
}

// Params returns the point's axis settings as report parameters.
func (p Point) Params() []Param {
	out := make([]Param, len(p.axes))
	for i, ax := range p.axes {
		out[i] = Param{Axis: ax.Name, Value: ax.Values[p.choice[i]].Label}
	}
	return out
}

// Sweep crosses parameter axes (network size, protocol, topology, fault
// model, ...) into an ordered grid of Batches and runs them in grid order.
// Cells run sequentially — each cell's Batch parallelises internally — so
// a sweep's Report inherits the batch layer's determinism: for a fixed
// Seed and grid it is bit-identical for every ReplicationWorkers value.
type Sweep struct {
	// Name identifies the sweep in its Report.
	Name string
	// Seed is the grid's master seed; every cell's Point.Seed derives from
	// it in grid order.
	Seed uint64
	// Axes are the swept parameters; their cross product is the grid, in
	// row-major order with the last axis varying fastest. A sweep with no
	// axes has exactly one cell.
	Axes []Axis
	// Build constructs the cell's Batch from a grid point. The returned
	// Batch inherits the sweep's Replications, ReplicationWorkers and
	// Runner for any field it leaves zero. Exactly one of Build and
	// BuildPopulation is required.
	Build func(p Point) (Batch, error)
	// BuildPopulation constructs the cell's PopulationBatch instead, for
	// sweeps over the interaction scheduler; cells fold into the same
	// CellReport shape under PopulationBatch's metric mapping. It
	// inherits the sweep defaults exactly as Build does.
	BuildPopulation func(p Point) (PopulationBatch, error)
	// Replications is the default replication count for cells whose Batch
	// leaves Replications zero.
	Replications int
	// ReplicationWorkers is the default pool width for cells whose Batch
	// leaves ReplicationWorkers zero (0 = serial, as in Batch).
	ReplicationWorkers int
	// Runner is the default engine for cells whose Batch leaves Runner
	// zero.
	Runner Runner
	// Timing records each cell's wall-clock time in the Report. It is off
	// by default because wall-clock breaks the bit-identical-output
	// guarantee; turn it on for perf-trajectory reports (regcast-bench
	// -timing).
	Timing bool
	// MemStats samples runtime.MemStats around each cell and records the
	// allocation per replication (topology construction included) and the
	// post-cell OS heap in the Report — the memory-wall companion to
	// Timing, and like it environment-dependent, so it breaks the
	// bit-identical-output guarantee and is off by default
	// (regcast-bench -mem). Each cell pays one runtime.GC() so the
	// TotalAlloc delta is not polluted by a collection mid-cell changing
	// allocation batching.
	MemStats bool
}

// Points materialises the grid in row-major order, with each cell's
// derived seed.
func (s Sweep) Points() []Point {
	total := 1
	for _, ax := range s.Axes {
		total *= len(ax.Values)
	}
	if total == 0 {
		return nil
	}
	master := xrand.New(s.Seed)
	points := make([]Point, 0, total)
	choice := make([]int, len(s.Axes))
	for i := 0; i < total; i++ {
		p := Point{Index: i, Seed: master.Uint64(), axes: s.Axes, choice: append([]int(nil), choice...)}
		points = append(points, p)
		for a := len(choice) - 1; a >= 0; a-- { // last axis fastest
			choice[a]++
			if choice[a] < len(s.Axes[a].Values) {
				break
			}
			choice[a] = 0
		}
	}
	return points
}

// Run executes every cell in grid order and collects the Report.
func (s Sweep) Run(ctx context.Context) (*Report, error) {
	if (s.Build == nil) == (s.BuildPopulation == nil) {
		return nil, fmt.Errorf("regcast: sweep %q needs exactly one of Build and BuildPopulation", s.Name)
	}
	points := s.Points()
	if len(points) == 0 {
		return nil, fmt.Errorf("regcast: sweep %q has an empty axis", s.Name)
	}
	report := &Report{
		Schema: ReportSchema,
		Name:   s.Name,
		Seed:   s.Seed,
		Cells:  make([]CellReport, 0, len(points)),
	}
	for _, p := range points {
		var res BatchResult
		var memBefore runtime.MemStats
		if s.MemStats {
			runtime.GC()
			runtime.ReadMemStats(&memBefore)
		}
		start := time.Now()
		if s.Build != nil {
			b, err := s.Build(p)
			if err != nil {
				return nil, fmt.Errorf("regcast: sweep %q cell %s: %w", s.Name, p.Label(), err)
			}
			if b.Replications == 0 {
				b.Replications = s.Replications
			}
			if b.ReplicationWorkers == 0 {
				b.ReplicationWorkers = s.ReplicationWorkers
			}
			if b.Runner == (Runner{}) {
				b.Runner = s.Runner
			}
			start = time.Now()
			if res, err = b.Run(ctx); err != nil {
				return nil, fmt.Errorf("regcast: sweep %q cell %s: %w", s.Name, p.Label(), err)
			}
		} else {
			b, err := s.BuildPopulation(p)
			if err != nil {
				return nil, fmt.Errorf("regcast: sweep %q cell %s: %w", s.Name, p.Label(), err)
			}
			if b.Replications == 0 {
				b.Replications = s.Replications
			}
			if b.ReplicationWorkers == 0 {
				b.ReplicationWorkers = s.ReplicationWorkers
			}
			if b.Runner == (Runner{}) {
				b.Runner = s.Runner
			}
			start = time.Now()
			if res, err = b.Run(ctx); err != nil {
				return nil, fmt.Errorf("regcast: sweep %q cell %s: %w", s.Name, p.Label(), err)
			}
		}
		cell := CellReport{
			Index:         p.Index,
			Label:         p.Label(),
			Params:        p.Params(),
			Replications:  res.Replications,
			Completed:     res.Completed,
			CompletedFrac: res.CompletedFrac(),
			Rounds:        res.Rounds,
			Transmissions: res.Transmissions,
			TxPerNode:     res.TxPerNode,
			InformedFrac:  res.InformedFrac,
		}
		if s.Timing {
			cell.WallClockMS = float64(time.Since(start).Microseconds()) / 1000
		}
		if s.MemStats {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			if res.Replications > 0 {
				cell.AllocBPerOp = (after.TotalAlloc - memBefore.TotalAlloc) / uint64(res.Replications)
			}
			cell.HeapSysBytes = after.HeapSys
		}
		report.Cells = append(report.Cells, cell)
	}
	return report, nil
}
