package regcast_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"regcast"
	"regcast/internal/core"
)

// overlayChurnScenario is the spec scenario the churn determinism tests
// share: a churning OverlaySpec — dynamic topology, rebuilt fresh per
// replication by the batch layer.
func overlayChurnScenario(t testing.TB, seed uint64) regcast.Scenario {
	t.Helper()
	const n, d = 192, 8
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := regcast.NewScenarioSpec(
		regcast.OverlaySpec{N: n, D: d, JoinProb: 0.02, LeaveProb: 0.02, MixSteps: 3},
		proto, regcast.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestBatchAcceptsDynamicSpec is the tentpole's batch contract: a batch
// over a dynamic (churning) TopologySpec scenario runs — no Batch.New
// escape hatch — and its aggregate JSON and CSV report bytes are
// identical for every ReplicationWorkers value and every engine worker
// count with the same trace contract (the sharded engine at any worker
// count).
func TestBatchAcceptsDynamicSpec(t *testing.T) {
	runReport := func(repWorkers, engineWorkers int) ([]byte, []byte) {
		sweep := regcast.Sweep{
			Name:               "churn-spec",
			Seed:               99,
			Replications:       6,
			ReplicationWorkers: repWorkers,
			Runner:             regcast.NewRunner(regcast.WithWorkers(engineWorkers)),
			Build: func(p regcast.Point) (regcast.Batch, error) {
				return regcast.Batch{Scenario: overlayChurnScenario(t, p.Seed), RandomizeSource: true}, nil
			},
		}
		report, err := sweep.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := report.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := report.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}

	baseJSON, baseCSV := runReport(0, 1)
	if !strings.Contains(string(baseJSON), `"replications": 6`) {
		t.Fatalf("implausible churn-spec report:\n%s", baseJSON)
	}
	for _, rw := range []int{1, 4} {
		for _, ew := range []int{1, 4} {
			gotJSON, gotCSV := runReport(rw, ew)
			if !bytes.Equal(gotJSON, baseJSON) {
				t.Errorf("ReplicationWorkers=%d engineWorkers=%d changes the JSON report:\n%s\nvs\n%s", rw, ew, gotJSON, baseJSON)
			}
			if !bytes.Equal(gotCSV, baseCSV) {
				t.Errorf("ReplicationWorkers=%d engineWorkers=%d changes the CSV report", rw, ew)
			}
		}
	}
}

// TestSpecScenarioFastPathBitIdentity extends the two-path contract to
// churn at the facade level: running the OverlaySpec scenario with
// WithoutFastPath must reproduce the exact trace of the default (CSR
// fast path) run, on both simulation engines.
func TestSpecScenarioFastPathBitIdentity(t *testing.T) {
	for _, workers := range []int{0, 2} {
		run := func(opts ...regcast.RunnerOption) regcast.Result {
			sc := overlayChurnScenario(t, 1234)
			opts = append([]regcast.RunnerOption{regcast.WithWorkers(workers)}, opts...)
			res, err := regcast.Run(context.Background(), sc, opts...)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		fast, ref := run(), run(regcast.WithoutFastPath())
		label := fmt.Sprintf("workers=%d", workers)
		if fast.Rounds != ref.Rounds || fast.Transmissions != ref.Transmissions ||
			fast.ChannelsDialed != ref.ChannelsDialed || fast.Informed != ref.Informed ||
			fast.AliveNodes != ref.AliveNodes || fast.FirstAllInformed != ref.FirstAllInformed {
			t.Fatalf("%s: fast vs reference summaries differ:\n%+v\n%+v", label, fast, ref)
		}
		for v := range fast.InformedAt {
			if fast.InformedAt[v] != ref.InformedAt[v] {
				t.Fatalf("%s: InformedAt[%d] = %d (fast) vs %d (reference)", label, v, fast.InformedAt[v], ref.InformedAt[v])
			}
		}
	}
}

// TestBatchNewComposesWithSpecScenario: the two escape hatches compose —
// a Batch.New builder may return a spec scenario (per-replication
// observers on a per-replication-built dynamic topology); the batch
// materialises it on the scenario's own stream, deterministically
// across pool widths.
func TestBatchNewComposesWithSpecScenario(t *testing.T) {
	const n = 192
	proto, err := core.NewAlgorithm1(n)
	if err != nil {
		t.Fatal(err)
	}
	run := func(rw int, explicitRNG bool) ([]int64, []byte) {
		informed := make([]int64, 6) // per-rep observer tallies
		res, err := regcast.Batch{
			Seed:               31,
			Replications:       6,
			ReplicationWorkers: rw,
			New: func(rep int, rng *regcast.Rand) (regcast.Scenario, error) {
				opts := []regcast.ScenarioOption{regcast.WithObserver(regcast.ObserverFuncs{
					Informed: func(node, round int) { informed[rep]++ },
				})}
				if explicitRNG {
					opts = append(opts, regcast.WithRNG(rng.Split()))
				}
				// Without WithRNG, the spec builds on the replication
				// stream — the builder-just-forwards default.
				return regcast.NewScenarioSpec(
					regcast.OverlaySpec{N: n, D: 8, JoinProb: 0.02, LeaveProb: 0.02, MixSteps: 3},
					proto, opts...)
			},
		}.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return informed, buf
	}
	for _, explicitRNG := range []bool{true, false} {
		serialObs, serialJSON := run(0, explicitRNG)
		allSame := true
		for rep, c := range serialObs {
			if c == 0 {
				t.Fatalf("explicitRNG=%v replication %d: observer saw no informed events", explicitRNG, rep)
			}
			if c != serialObs[0] {
				allSame = false
			}
		}
		if allSame {
			t.Errorf("explicitRNG=%v: every replication informed the same count; per-replication spec building is not drawing from the replication streams", explicitRNG)
		}
		pooledObs, pooledJSON := run(4, explicitRNG)
		if !bytes.Equal(pooledJSON, serialJSON) {
			t.Errorf("explicitRNG=%v: New+spec batch differs across pool widths:\n%s\nvs\n%s", explicitRNG, pooledJSON, serialJSON)
		}
		for rep := range serialObs {
			if serialObs[rep] != pooledObs[rep] {
				t.Errorf("explicitRNG=%v replication %d: observer tallies differ across pool widths: %d vs %d", explicitRNG, rep, serialObs[rep], pooledObs[rep])
			}
		}
	}
}

// TestSpecScenarioRunDeterminism: a spec scenario rebuilds its topology
// every Run from its own seed, so repeated runs are identical and the
// scenario value stays reusable (nothing is memoised into it).
func TestSpecScenarioRunDeterminism(t *testing.T) {
	sc := overlayChurnScenario(t, 7)
	a, err := regcast.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := regcast.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("two runs of the same spec scenario differ:\n%s\nvs\n%s", aj, bj)
	}
	if a.AliveNodes == 0 || a.Rounds == 0 {
		t.Fatalf("implausible spec-scenario result: %+v", a)
	}
}

// TestStaticSpecsBuild covers every static spec family end to end: the
// built topologies have the declared shape and run a broadcast through
// the public Runner.
func TestStaticSpecsBuild(t *testing.T) {
	cases := []struct {
		name string
		spec regcast.TopologySpec
		n    int
	}{
		{"regular", regcast.RegularGraphSpec{N: 128, D: 8}, 128},
		{"config-model", regcast.ConfigurationModelSpec{N: 128, D: 8}, 128},
		{"config-model-erased", regcast.ConfigurationModelSpec{N: 128, D: 8, Erased: true}, 128},
		{"gnp", regcast.GnpSpec{N: 128, P: 0.1}, 128},
		{"hypercube", regcast.HypercubeSpec{Dim: 7}, 128},
		{"torus", regcast.TorusSpec{Rows: 8, Cols: 16}, 128},
		{"overlay-static", regcast.OverlaySpec{N: 128, D: 8}, 256}, // headroom defaults to N: id space 2n
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := tc.spec.Build(0, regcast.NewRand(5))
			if err != nil {
				t.Fatal(err)
			}
			if topo.NumNodes() != tc.n {
				t.Fatalf("built %d node ids, want %d", topo.NumNodes(), tc.n)
			}
			proto, err := regcast.NewFourChoice(128, 8)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := regcast.NewScenarioSpec(tc.spec, proto, regcast.WithSeed(3))
			if err != nil {
				t.Fatal(err)
			}
			res, err := regcast.Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds == 0 || res.Informed < 2 {
				t.Fatalf("implausible run on %s: %+v", tc.name, res)
			}
		})
	}
}

// TestSpecScenarioValidation pins the deferred validation contract:
// construction-time errors for what needs no topology, build-time errors
// for what does.
func TestSpecScenarioValidation(t *testing.T) {
	proto, err := regcast.NewFourChoice(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regcast.NewScenarioSpec(nil, proto); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := regcast.NewScenarioSpec(regcast.RegularGraphSpec{N: 64, D: 8}, nil); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := regcast.NewScenarioSpec(regcast.RegularGraphSpec{N: 64, D: 8}, proto,
		regcast.WithSource(-1)); err == nil {
		t.Error("negative source accepted at construction")
	}
	// Out-of-range source only surfaces once the topology exists.
	sc, err := regcast.NewScenarioSpec(regcast.RegularGraphSpec{N: 64, D: 8}, proto,
		regcast.WithSource(64))
	if err != nil {
		t.Fatalf("deferred-validation scenario rejected early: %v", err)
	}
	if _, err := regcast.Run(context.Background(), sc); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range source on a built topology: error %v, want out-of-range", err)
	}
	// A spec whose Build fails surfaces the builder's error.
	bad, err := regcast.NewScenarioSpec(regcast.RegularGraphSpec{N: 8, D: 9}, proto)
	if err != nil {
		t.Fatalf("spec construction should not build: %v", err)
	}
	if _, err := regcast.Run(context.Background(), bad); err == nil {
		t.Error("failing Build did not surface at run time")
	}
	// FixedTopology is unwrapped eagerly, so a constant spec over a
	// dynamic (Stepper) instance hits the batch layer's shared-instance
	// rejection exactly like NewScenario would — replications must not
	// share one churning topology.
	churnTopo, err := regcast.OverlaySpec{N: 64, D: 8, JoinProb: 0.01, LeaveProb: 0.01}.Build(0, regcast.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	proto64, err := regcast.NewFourChoice(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	fixedDyn, err := regcast.NewScenarioSpec(regcast.FixedTopology(churnTopo), proto64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (regcast.Batch{Scenario: fixedDyn, Replications: 3}).Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "Stepper") {
		t.Errorf("batch over FixedTopology(stepper) spec: error %v, want the shared-Stepper rejection", err)
	}
}
