package regcast_test

import (
	"context"
	"sync/atomic"
	"testing"

	"regcast"
	"regcast/experiments"
	"regcast/internal/baseline"
)

// Each benchmark regenerates one experiment from DESIGN.md's index in the
// Quick profile (the Full profile is cmd/experiments' job). The benchmark
// numbers measure the cost of reproducing the experiment; the scientific
// content is in the emitted tables, printed once under -v via b.Log.
//
// The Quick profile is also the -short contract of this file: experiment
// benches run the same bounded workload with and without -short, so the
// CI benchmark smoke (`go test -short -bench . -benchtime 1x`) can never
// grow a large sweep — the scale sweeps live in scale_bench_test.go and
// skip themselves under -short.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(experiments.Options{Seed: uint64(i) + 1, Quick: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			for _, tb := range tables {
				b.Log("\n" + tb.String())
			}
		}
	}
}

// BenchmarkE1Time reproduces E1: Algorithm 1 completion time vs n
// (Theorem 2's O(log n) round bound).
func BenchmarkE1Time(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2Transmissions reproduces E2: O(n·log log n) transmissions vs
// push's Θ(n·log n) (Theorem 2's message bound).
func BenchmarkE2Transmissions(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3LargeDegree reproduces E3: Algorithm 2 on d ≈ log n
// (Theorem 3).
func BenchmarkE3LargeDegree(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4LowerBound reproduces E4: one-choice oblivious schedules vs
// the Ω(n·log n/log d) bound (Theorem 1).
func BenchmarkE4LowerBound(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Phase1Growth reproduces E5: doubling of the newly informed
// set during Phase 1 (Lemmas 1–2).
func BenchmarkE5Phase1Growth(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Phase2Decay reproduces E6: constant-factor shrinkage of the
// uninformed set during Phase 2 (Lemma 3 / Corollary 2).
func BenchmarkE6Phase2Decay(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7UnusedEdges reproduces E7: the unused-edge census bound
// (Lemma 4).
func BenchmarkE7UnusedEdges(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8ResidualDegrees reproduces E8: h₁/h₄/h₅ structure of the
// uninformed set at the end of Phase 2 (Lemma 8 / Observation 1).
func BenchmarkE8ResidualDegrees(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9ProtocolComparison reproduces E9: the push/pull/push&pull/
// four-choice trajectory figure (§1).
func BenchmarkE9ProtocolComparison(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10ChoiceAblation reproduces E10: k ∈ {1,2,3,4} choices (§5
// open question).
func BenchmarkE10ChoiceAblation(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11Sequentialised reproduces E11: the memory-3 sequentialised
// model (footnote 2).
func BenchmarkE11Sequentialised(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12Failures reproduces E12: channel-failure and message-loss
// sweeps (robustness, abstract).
func BenchmarkE12Failures(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13Robustness reproduces E13: n-estimate error and churn sweeps
// (robustness, abstract).
func BenchmarkE13Robustness(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14GraphModel reproduces E14: configuration-model structure and
// expansion (§1.2 model sanity).
func BenchmarkE14GraphModel(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15ReplicatedDB reproduces E15: replicated-database convergence
// cost (§1 application).
func BenchmarkE15ReplicatedDB(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16ProductK5 reproduces E16: the §5 counterexample (Cartesian
// product with K5), an extension beyond the paper's own evaluation.
func BenchmarkE16ProductK5(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17Quasirandom reproduces E17: quasirandom vs uniform dialing
// (ref [9]), extension.
func BenchmarkE17Quasirandom(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18AntiEntropy reproduces E18: broadcast + anti-entropy
// backstop under loss (Demers architecture), extension.
func BenchmarkE18AntiEntropy(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE19PushConstant reproduces E19: the Fountoulakis–Panagiotou
// completion constant C_d (ref [20]), extension.
func BenchmarkE19PushConstant(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkE20MedianCounter reproduces E20: Karp et al.'s self-terminating
// median-counter push&pull (ref [25]), extension.
func BenchmarkE20MedianCounter(b *testing.B) { benchExperiment(b, "E20") }

// steadyPush is a push-only protocol with a configurable horizon, used to
// hold the engines in their steady-state round loop (everyone informed,
// every round still executing) for the observer-overhead guards.
type steadyPush struct{ horizon int }

func (p steadyPush) Name() string            { return "steady-push" }
func (p steadyPush) Choices() int            { return 1 }
func (p steadyPush) Horizon() int            { return p.horizon }
func (p steadyPush) SendPush(t, ia int) bool { return true }
func (p steadyPush) SendPull(t, ia int) bool { return false }
func (p steadyPush) NeverPulls() bool        { return true }

// TestNilObserverZeroAllocsPerRound guards the facade's core performance
// contract: with no observer registered, the steady-state round loop of
// both simulation engines allocates nothing. Two runs that differ only in
// horizon must show identical allocation counts — any per-round
// allocation would surface ~hundreds of times over the horizon gap.
func TestNilObserverZeroAllocsPerRound(t *testing.T) {
	g, err := regcast.NewRegularGraph(256, 8, regcast.NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 0},
		{"sharded-inline", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			allocs := func(horizon int) float64 {
				scenario, err := regcast.NewScenario(regcast.Static(g), steadyPush{horizon}, regcast.WithSeed(5))
				if err != nil {
					t.Fatal(err)
				}
				runner := regcast.NewRunner(regcast.WithWorkers(tc.workers))
				return testing.AllocsPerRun(5, func() {
					if _, err := runner.Run(context.Background(), scenario); err != nil {
						t.Fatal(err)
					}
				})
			}
			short, long := allocs(80), allocs(400)
			if extra := long - short; extra >= 1 {
				t.Errorf("nil-observer run allocates per round: %.1f extra allocs over 320 extra rounds (%.3f/round)",
					extra, extra/320)
			}
		})
	}
}

// countingObserver is the cheapest useful observer: two counters.
type countingObserver struct {
	rounds   atomic.Int64
	informed atomic.Int64
}

func (c *countingObserver) OnRound(regcast.RoundStats) { c.rounds.Add(1) }
func (c *countingObserver) OnInformed(int, int)        { c.informed.Add(1) }

// BenchmarkObserverOverhead measures the cost the streaming Observer adds
// to a broadcast, against the nil-observer fast path (which the guard
// above pins at 0 allocs/round).
func BenchmarkObserverOverhead(b *testing.B) {
	const n, d = 4096, 8
	g, err := regcast.NewRegularGraph(n, d, regcast.NewRand(6))
	if err != nil {
		b.Fatal(err)
	}
	push, err := baseline.NewPush(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, withObserver := range []bool{false, true} {
		name := "nil-observer"
		opts := []regcast.ScenarioOption{regcast.WithSeed(3), regcast.WithStopEarly()}
		if withObserver {
			name = "counting-observer"
			opts = append(opts, regcast.WithObserver(&countingObserver{}))
		}
		b.Run(name, func(b *testing.B) {
			scenario, err := regcast.NewScenario(regcast.Static(g), push, opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := regcast.Run(context.Background(), scenario); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
